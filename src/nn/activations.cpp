#include "nn/activations.hpp"

#include "tensor/kernels/kernels.hpp"

namespace cq::nn {

Tensor ReLU::forward(const Tensor& x) {
  // Write into fresh (pool-recycled) storage instead of copy-then-overwrite.
  Tensor y = x.like();
  const float* xd = x.data();
  if (cap_ > 0.0f)
    kernels::relu_cap(xd, y.data(), y.numel(), cap_);
  else
    kernels::relu(xd, y.data(), y.numel());
  if (mode_ == Mode::kTrain) cache_.push_back(x);
  return y;
}

Tensor ReLU::backward(const Tensor& grad_out) {
  CQ_CHECK_MSG(!cache_.empty(), "relu backward without matching forward");
  Tensor x = std::move(cache_.back());
  cache_.pop_back();
  CQ_CHECK(grad_out.same_shape(x));
  Tensor g = grad_out.like();
  if (cap_ > 0.0f)
    kernels::relu_cap_grad(x.data(), grad_out.data(), g.data(), g.numel(),
                           cap_);
  else
    kernels::relu_grad(x.data(), grad_out.data(), g.data(), g.numel());
  return g;
}

Tensor GELU::forward(const Tensor& x) {
  Tensor y = x.like();
  kernels::gelu(x.data(), y.data(), y.numel());
  if (mode_ == Mode::kTrain) cache_.push_back(x);
  return y;
}

Tensor GELU::backward(const Tensor& grad_out) {
  CQ_CHECK_MSG(!cache_.empty(), "gelu backward without matching forward");
  Tensor x = std::move(cache_.back());
  cache_.pop_back();
  CQ_CHECK(grad_out.same_shape(x));
  Tensor g = grad_out.like();
  kernels::gelu_grad(x.data(), grad_out.data(), g.data(), g.numel());
  return g;
}

Tensor Flatten::forward(const Tensor& x) {
  CQ_CHECK(x.shape().rank() >= 2);
  if (mode_ == Mode::kTrain) shapes_.push_back(x.shape());
  const auto n = x.dim(0);
  return x.reshape(Shape{n, x.numel() / n});
}

Tensor Flatten::backward(const Tensor& grad_out) {
  CQ_CHECK_MSG(!shapes_.empty(), "flatten backward without matching forward");
  Shape s = std::move(shapes_.back());
  shapes_.pop_back();
  return grad_out.reshape(std::move(s));
}

}  // namespace cq::nn
