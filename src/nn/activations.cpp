#include "nn/activations.hpp"

namespace cq::nn {

Tensor ReLU::forward(const Tensor& x) {
  // Write into fresh (pool-recycled) storage instead of copy-then-overwrite.
  Tensor y = x.like();
  float* d = y.data();
  const float* xd = x.data();
  const auto n = y.numel();
  if (cap_ > 0.0f) {
    for (std::int64_t i = 0; i < n; ++i)
      d[i] = xd[i] < 0.0f ? 0.0f : (xd[i] > cap_ ? cap_ : xd[i]);
  } else {
    for (std::int64_t i = 0; i < n; ++i) d[i] = xd[i] > 0.0f ? xd[i] : 0.0f;
  }
  if (mode_ == Mode::kTrain) cache_.push_back(x);
  return y;
}

Tensor ReLU::backward(const Tensor& grad_out) {
  CQ_CHECK_MSG(!cache_.empty(), "relu backward without matching forward");
  Tensor x = std::move(cache_.back());
  cache_.pop_back();
  CQ_CHECK(grad_out.same_shape(x));
  Tensor g = grad_out.like();
  float* gd = g.data();
  const float* god = grad_out.data();
  const float* xd = x.data();
  const auto n = g.numel();
  if (cap_ > 0.0f) {
    for (std::int64_t i = 0; i < n; ++i)
      gd[i] = (xd[i] <= 0.0f || xd[i] >= cap_) ? 0.0f : god[i];
  } else {
    for (std::int64_t i = 0; i < n; ++i) gd[i] = xd[i] <= 0.0f ? 0.0f : god[i];
  }
  return g;
}

Tensor Flatten::forward(const Tensor& x) {
  CQ_CHECK(x.shape().rank() >= 2);
  if (mode_ == Mode::kTrain) shapes_.push_back(x.shape());
  const auto n = x.dim(0);
  return x.reshape(Shape{n, x.numel() / n});
}

Tensor Flatten::backward(const Tensor& grad_out) {
  CQ_CHECK_MSG(!shapes_.empty(), "flatten backward without matching forward");
  Shape s = std::move(shapes_.back());
  shapes_.pop_back();
  return grad_out.reshape(std::move(s));
}

}  // namespace cq::nn
