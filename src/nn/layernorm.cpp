#include "nn/layernorm.hpp"

#include <cmath>

namespace cq::nn {

namespace detail {

void layernorm_rows(const float* x, float* y, std::int64_t rows,
                    std::int64_t cols, const float* gamma, const float* beta,
                    float eps, float* xhat, float* inv_std) {
  for (std::int64_t r = 0; r < rows; ++r) {
    const float* xr = x + r * cols;
    float* yr = y + r * cols;
    double sum = 0.0, sq = 0.0;
    for (std::int64_t c = 0; c < cols; ++c) {
      sum += xr[c];
      sq += static_cast<double>(xr[c]) * xr[c];
    }
    const double mean = sum / static_cast<double>(cols);
    const double var = sq / static_cast<double>(cols) - mean * mean;
    const float m = static_cast<float>(mean);
    const float is = 1.0f / std::sqrt(static_cast<float>(var) + eps);
    if (inv_std != nullptr) inv_std[r] = is;
    if (xhat != nullptr) {
      float* xh = xhat + r * cols;
      for (std::int64_t c = 0; c < cols; ++c) {
        const float h = (xr[c] - m) * is;
        xh[c] = h;
        yr[c] = h * gamma[c] + beta[c];
      }
    } else {
      for (std::int64_t c = 0; c < cols; ++c)
        yr[c] = (xr[c] - m) * is * gamma[c] + beta[c];
    }
  }
}

}  // namespace detail

LayerNorm::LayerNorm(std::int64_t dim, float eps, std::string name)
    : dim_(dim),
      eps_(eps),
      gamma_(Tensor::ones(Shape{dim}), name + ".gamma", /*decay=*/false),
      beta_(Tensor::zeros(Shape{dim}), name + ".beta", /*decay=*/false) {
  CQ_CHECK(dim > 0);
}

Tensor LayerNorm::forward(const Tensor& x) {
  CQ_CHECK_MSG(x.shape().rank() >= 1 && x.dim(x.shape().rank() - 1) == dim_,
               "layernorm input " << x.shape().str() << " expects last dim "
                                  << dim_);
  const auto rows = x.numel() / dim_;
  Tensor y = Tensor::empty(x.shape());
  if (mode_ == Mode::kTrain) {
    Cache entry;
    entry.xhat = Tensor::empty(x.shape());
    entry.inv_std = Tensor::empty(Shape{rows});
    detail::layernorm_rows(x.data(), y.data(), rows, dim_, gamma_.value.data(),
                           beta_.value.data(), eps_, entry.xhat.data(),
                           entry.inv_std.data());
    cache_.push_back(std::move(entry));
  } else {
    detail::layernorm_rows(x.data(), y.data(), rows, dim_, gamma_.value.data(),
                           beta_.value.data(), eps_, nullptr, nullptr);
  }
  return y;
}

Tensor LayerNorm::backward(const Tensor& grad_out) {
  CQ_CHECK_MSG(!cache_.empty(), "layernorm backward without matching forward");
  Cache entry = std::move(cache_.back());
  cache_.pop_back();
  CQ_CHECK(grad_out.same_shape(entry.xhat));
  const auto rows = grad_out.numel() / dim_;
  Tensor gx = Tensor::empty(grad_out.shape());
  float* dgamma = gamma_.grad.data();
  float* dbeta = beta_.grad.data();
  const float* gamma = gamma_.value.data();
  for (std::int64_t r = 0; r < rows; ++r) {
    const float* g = grad_out.data() + r * dim_;
    const float* xh = entry.xhat.data() + r * dim_;
    float* out = gx.data() + r * dim_;
    const float is = entry.inv_std[r];
    // dxhat = g * gamma; dx = is/D * (D*dxhat - sum(dxhat) - xhat*sum(dxhat*xhat))
    double s1 = 0.0, s2 = 0.0;
    for (std::int64_t c = 0; c < dim_; ++c) {
      const double dxh = static_cast<double>(g[c]) * gamma[c];
      s1 += dxh;
      s2 += dxh * xh[c];
      dgamma[c] += g[c] * xh[c];
      dbeta[c] += g[c];
    }
    const float mean_dxh = static_cast<float>(s1 / dim_);
    const float mean_dxh_xh = static_cast<float>(s2 / dim_);
    for (std::int64_t c = 0; c < dim_; ++c) {
      const float dxh = g[c] * gamma[c];
      out[c] = is * (dxh - mean_dxh - xh[c] * mean_dxh_xh);
    }
  }
  return gx;
}

void LayerNorm::collect_parameters(std::vector<Parameter*>& out) {
  out.push_back(&gamma_);
  out.push_back(&beta_);
}

}  // namespace cq::nn
