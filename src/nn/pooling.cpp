#include "nn/pooling.hpp"

#include <limits>

namespace cq::nn {

MaxPool2d::MaxPool2d(std::int64_t kernel, std::int64_t stride,
                     std::int64_t pad)
    : kernel_(kernel), stride_(stride), pad_(pad) {
  CQ_CHECK(kernel > 0 && stride > 0 && pad >= 0 && pad < kernel);
}

Tensor MaxPool2d::forward(const Tensor& x) {
  CQ_CHECK(x.shape().rank() == 4);
  const auto n = x.dim(0), c = x.dim(1), h = x.dim(2), w = x.dim(3);
  const auto oh = (h + 2 * pad_ - kernel_) / stride_ + 1;
  const auto ow = (w + 2 * pad_ - kernel_) / stride_ + 1;
  CQ_CHECK(oh > 0 && ow > 0);
  Tensor y = Tensor::empty(Shape{n, c, oh, ow});  // every element written
  Cache entry;
  entry.in_shape = x.shape();
  entry.argmax.resize(static_cast<std::size_t>(y.numel()));

  std::int64_t oidx = 0;
  for (std::int64_t img = 0; img < n; ++img) {
    for (std::int64_t ch = 0; ch < c; ++ch) {
      const float* plane = x.data() + (img * c + ch) * h * w;
      const std::int64_t plane_off = (img * c + ch) * h * w;
      for (std::int64_t oy = 0; oy < oh; ++oy) {
        for (std::int64_t ox = 0; ox < ow; ++ox, ++oidx) {
          float best = -std::numeric_limits<float>::infinity();
          std::int64_t best_idx = -1;
          for (std::int64_t ky = 0; ky < kernel_; ++ky) {
            const std::int64_t iy = oy * stride_ + ky - pad_;
            if (iy < 0 || iy >= h) continue;
            for (std::int64_t kx = 0; kx < kernel_; ++kx) {
              const std::int64_t ix = ox * stride_ + kx - pad_;
              if (ix < 0 || ix >= w) continue;
              const float v = plane[iy * w + ix];
              if (v > best) {
                best = v;
                best_idx = plane_off + iy * w + ix;
              }
            }
          }
          CQ_DCHECK(best_idx >= 0);
          y[oidx] = best;
          entry.argmax[static_cast<std::size_t>(oidx)] = best_idx;
        }
      }
    }
  }
  if (mode_ == Mode::kTrain) cache_.push_back(std::move(entry));
  return y;
}

Tensor MaxPool2d::backward(const Tensor& grad_out) {
  CQ_CHECK_MSG(!cache_.empty(), "maxpool backward without matching forward");
  Cache entry = std::move(cache_.back());
  cache_.pop_back();
  CQ_CHECK(static_cast<std::size_t>(grad_out.numel()) == entry.argmax.size());
  Tensor grad_in(entry.in_shape);
  for (std::int64_t i = 0; i < grad_out.numel(); ++i)
    grad_in[entry.argmax[static_cast<std::size_t>(i)]] += grad_out[i];
  return grad_in;
}

AvgPool2d::AvgPool2d(std::int64_t kernel, std::int64_t stride)
    : kernel_(kernel), stride_(stride) {
  CQ_CHECK(kernel > 0 && stride > 0);
}

Tensor AvgPool2d::forward(const Tensor& x) {
  CQ_CHECK(x.shape().rank() == 4);
  const auto n = x.dim(0), c = x.dim(1), h = x.dim(2), w = x.dim(3);
  const auto oh = (h - kernel_) / stride_ + 1;
  const auto ow = (w - kernel_) / stride_ + 1;
  CQ_CHECK(oh > 0 && ow > 0);
  Tensor y = Tensor::empty(Shape{n, c, oh, ow});  // every element written
  const float inv = 1.0f / static_cast<float>(kernel_ * kernel_);
  std::int64_t oidx = 0;
  for (std::int64_t img = 0; img < n; ++img)
    for (std::int64_t ch = 0; ch < c; ++ch) {
      const float* plane = x.data() + (img * c + ch) * h * w;
      for (std::int64_t oy = 0; oy < oh; ++oy)
        for (std::int64_t ox = 0; ox < ow; ++ox, ++oidx) {
          double s = 0.0;
          for (std::int64_t ky = 0; ky < kernel_; ++ky)
            for (std::int64_t kx = 0; kx < kernel_; ++kx)
              s += plane[(oy * stride_ + ky) * w + (ox * stride_ + kx)];
          y[oidx] = static_cast<float>(s) * inv;
        }
    }
  if (mode_ == Mode::kTrain) shapes_.push_back(x.shape());
  return y;
}

Tensor AvgPool2d::backward(const Tensor& grad_out) {
  CQ_CHECK_MSG(!shapes_.empty(), "avgpool backward without matching forward");
  Shape in_shape = std::move(shapes_.back());
  shapes_.pop_back();
  const auto n = in_shape[0], c = in_shape[1], h = in_shape[2],
             w = in_shape[3];
  const auto oh = grad_out.dim(2), ow = grad_out.dim(3);
  Tensor grad_in(in_shape);
  const float inv = 1.0f / static_cast<float>(kernel_ * kernel_);
  std::int64_t oidx = 0;
  for (std::int64_t img = 0; img < n; ++img)
    for (std::int64_t ch = 0; ch < c; ++ch) {
      float* plane = grad_in.data() + (img * c + ch) * h * w;
      for (std::int64_t oy = 0; oy < oh; ++oy)
        for (std::int64_t ox = 0; ox < ow; ++ox, ++oidx) {
          const float g = grad_out[oidx] * inv;
          for (std::int64_t ky = 0; ky < kernel_; ++ky)
            for (std::int64_t kx = 0; kx < kernel_; ++kx)
              plane[(oy * stride_ + ky) * w + (ox * stride_ + kx)] += g;
        }
    }
  return grad_in;
}

Tensor GlobalAvgPool::forward(const Tensor& x) {
  CQ_CHECK(x.shape().rank() == 4);
  const auto n = x.dim(0), c = x.dim(1), h = x.dim(2), w = x.dim(3);
  const auto spatial = h * w;
  Tensor y = Tensor::empty(Shape{n, c});  // every element written
  const float inv = 1.0f / static_cast<float>(spatial);
  for (std::int64_t img = 0; img < n; ++img)
    for (std::int64_t ch = 0; ch < c; ++ch) {
      const float* plane = x.data() + (img * c + ch) * spatial;
      double s = 0.0;
      for (std::int64_t i = 0; i < spatial; ++i) s += plane[i];
      y.at(img, ch) = static_cast<float>(s) * inv;
    }
  if (mode_ == Mode::kTrain) shapes_.push_back(x.shape());
  return y;
}

Tensor GlobalAvgPool::backward(const Tensor& grad_out) {
  CQ_CHECK_MSG(!shapes_.empty(), "gap backward without matching forward");
  Shape in_shape = std::move(shapes_.back());
  shapes_.pop_back();
  const auto n = in_shape[0], c = in_shape[1], h = in_shape[2],
             w = in_shape[3];
  const auto spatial = h * w;
  CQ_CHECK(grad_out.shape().rank() == 2 && grad_out.dim(0) == n &&
           grad_out.dim(1) == c);
  Tensor grad_in = Tensor::empty(in_shape);  // every plane fully assigned
  const float inv = 1.0f / static_cast<float>(spatial);
  for (std::int64_t img = 0; img < n; ++img)
    for (std::int64_t ch = 0; ch < c; ++ch) {
      const float g = grad_out.at(img, ch) * inv;
      float* plane = grad_in.data() + (img * c + ch) * spatial;
      for (std::int64_t i = 0; i < spatial; ++i) plane[i] = g;
    }
  return grad_in;
}

}  // namespace cq::nn
