// Sequential container: forward chains children; backward runs in reverse.
#pragma once

#include <memory>

#include "nn/module.hpp"

namespace cq::nn {

class Sequential : public Module {
 public:
  Sequential() = default;

  /// Append a child module; returns a reference for further configuration.
  template <typename M, typename... Args>
  M& emplace(Args&&... args) {
    auto m = std::make_unique<M>(std::forward<Args>(args)...);
    M& ref = *m;
    m->set_mode(mode());
    children_.push_back(std::move(m));
    return ref;
  }

  void append(std::unique_ptr<Module> m);

  const char* type_name() const override { return "Sequential"; }
  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;
  void visit_children(const std::function<void(Module&)>& fn) override;

  std::size_t size() const { return children_.size(); }
  Module& child(std::size_t i) { return *children_.at(i); }

 private:
  std::vector<std::unique_ptr<Module>> children_;
};

}  // namespace cq::nn
