#include "nn/linear.hpp"

#include <cmath>
#include <utility>

#include "core/trace.hpp"
#include "nn/init.hpp"
#include "tensor/gemm.hpp"
#include "tensor/kernels/kernels.hpp"

namespace cq::nn {

Linear::Linear(std::int64_t in_features, std::int64_t out_features, Rng& rng,
               bool bias, std::string name)
    : in_features_(in_features),
      out_features_(out_features),
      has_bias_(bias) {
  CQ_CHECK(in_features > 0 && out_features > 0);
  weight_ = Parameter(init::he_uniform(Shape{out_features, in_features},
                                       in_features, rng),
                      name + ".weight", /*decay=*/true);
  if (has_bias_)
    bias_ = Parameter(Tensor::zeros(Shape{out_features}), name + ".bias",
                      /*decay=*/false);
}

Tensor Linear::forward(const Tensor& x) {
  CQ_TRACE_SCOPE_N("nn.linear.fwd", x.dim(0));
  CQ_CHECK_MSG(x.shape().rank() == 2 && x.dim(1) == in_features_,
               "linear input " << x.shape().str() << " expects [N, "
                               << in_features_ << "]");
  const bool transformed = transform_ && transform_->active();
  // Quantize-on-pack: an affine transform is folded into the GEMM's packing
  // of W (no quantized tensor materialized); otherwise fall back to apply().
  std::optional<gemm::QuantSpec> wq;
  Tensor w_eff;
  if (transformed) {
    wq = transform_->pack_spec(weight_);
    if (!wq) w_eff = transform_->apply(weight_);
  }
  const Tensor& w = wq || !transformed ? weight_.value : w_eff;

  gemm::Epilogue ep;
  if (has_bias_) {
    ep.bias = std::as_const(bias_.value).data();
    ep.bias_kind = gemm::Epilogue::Bias::kPerCol;
  }
  if (fused_act_ != FusedAct::kNone) {
    CQ_CHECK_MSG(mode_ == Mode::kEval,
                 "fused activation is eval-only: backward needs the "
                 "pre-activation values");
    ep.act = fused_act_ == FusedAct::kRelu ? gemm::Epilogue::Act::kRelu
                                           : gemm::Epilogue::Act::kReluCap;
    ep.cap = fused_cap_;
  }

  const auto batch = x.dim(0);
  // gemm fully writes y, so skip the zero-fill.
  Tensor y = Tensor::empty(Shape{batch, out_features_});  // y = act(x W^T + b)
  gemm::gemm(gemm::Trans::kNT, batch, out_features_, in_features_, x.data(),
             w.data(), y.data(), /*accumulate=*/false, ep, nullptr,
             wq ? &*wq : nullptr);
  if (mode_ == Mode::kTrain) {
    Cache entry;
    entry.input = x;
    if (transformed) {
      if (wq)
        entry.weight_spec = wq;
      else
        entry.effective_weight = std::move(w_eff);
    }
    cache_.push_back(std::move(entry));
  }
  return y;
}

Tensor Linear::backward(const Tensor& grad_out) {
  CQ_TRACE_SCOPE_N("nn.linear.bwd", grad_out.dim(0));
  CQ_CHECK_MSG(!cache_.empty(), "linear backward without matching forward");
  Cache entry = std::move(cache_.back());
  cache_.pop_back();
  CQ_CHECK(grad_out.shape().rank() == 2 && grad_out.dim(1) == out_features_);
  CQ_CHECK(grad_out.dim(0) == entry.input.dim(0));

  const auto batch = grad_out.dim(0);
  // Straight-through estimator: dL/dW_master := dL/dW_effective.
  // dW[out,in] += grad_out^T[out,batch] * x[batch,in], accumulated in place.
  gemm::gemm(gemm::Trans::kTN, out_features_, in_features_, batch,
             grad_out.data(), entry.input.data(), weight_.grad.data(),
             /*accumulate=*/true);
  if (has_bias_) {
    kernels::add_rows(grad_out.data(), batch, out_features_,
                      bias_.grad.data());
  }
  // grad_in = grad_out * W_effective. In the quantize-on-pack case the
  // effective weight is re-derived from the master weight and the cached
  // spec — valid because backward always runs before the optimizer step
  // that would rewrite the master values.
  const Tensor& w_used =
      entry.effective_weight ? *entry.effective_weight : weight_.value;
  Tensor grad_in = Tensor::empty(Shape{batch, in_features_});  // grad_out * W
  gemm::gemm(gemm::Trans::kNN, batch, in_features_, out_features_,
             grad_out.data(), w_used.data(), grad_in.data(),
             /*accumulate=*/false, gemm::Epilogue{}, nullptr,
             entry.weight_spec ? &*entry.weight_spec : nullptr);
  return grad_in;
}

void Linear::collect_parameters(std::vector<Parameter*>& out) {
  out.push_back(&weight_);
  if (has_bias_) out.push_back(&bias_);
}

}  // namespace cq::nn
