#include "nn/init.hpp"

#include <cmath>

#include "util/check.hpp"

namespace cq::nn::init {

Tensor he_uniform(Shape shape, std::int64_t fan_in, Rng& rng) {
  CQ_CHECK(fan_in > 0);
  const float b = std::sqrt(6.0f / static_cast<float>(fan_in));
  return Tensor::uniform(std::move(shape), rng, -b, b);
}

Tensor he_normal(Shape shape, std::int64_t fan_in, Rng& rng) {
  CQ_CHECK(fan_in > 0);
  const float s = std::sqrt(2.0f / static_cast<float>(fan_in));
  return Tensor::randn(std::move(shape), rng, 0.0f, s);
}

Tensor xavier_uniform(Shape shape, std::int64_t fan_in, std::int64_t fan_out,
                      Rng& rng) {
  CQ_CHECK(fan_in > 0 && fan_out > 0);
  const float b = std::sqrt(6.0f / static_cast<float>(fan_in + fan_out));
  return Tensor::uniform(std::move(shape), rng, -b, b);
}

}  // namespace cq::nn::init
