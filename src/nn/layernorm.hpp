// LayerNorm over the last dimension — the transformer normalizer.
//
// Accepts any rank >= 1: every leading dimension is treated as a row, the
// last dimension is normalized ([N, seq, dim] normalizes each [dim] token
// vector independently). Unlike BatchNorm there are no running statistics:
// the same per-row arithmetic runs in train and eval mode, which is what
// lets the graph executor reproduce the eager output bitwise by calling the
// same row helper (detail::layernorm_rows) the module does.
#pragma once

#include "nn/module.hpp"

namespace cq::nn {

namespace detail {
/// The shared row normalizer: for each of `rows` rows of `cols` floats,
///   y = (x - mean) / sqrt(var + eps) * gamma + beta
/// with mean/var accumulated in a fixed left-to-right float loop, so every
/// caller (eager module, graph executor) gets identical bits. When `xhat` /
/// `inv_std` are non-null they receive the normalized rows ([rows, cols])
/// and per-row 1/sqrt(var+eps) ([rows]) for the backward pass. x and y may
/// alias only when xhat is null.
void layernorm_rows(const float* x, float* y, std::int64_t rows,
                    std::int64_t cols, const float* gamma, const float* beta,
                    float eps, float* xhat, float* inv_std);
}  // namespace detail

class LayerNorm : public Module {
 public:
  explicit LayerNorm(std::int64_t dim, float eps = 1e-5f,
                     std::string name = "ln");

  const char* type_name() const override { return "LayerNorm"; }
  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;
  void collect_parameters(std::vector<Parameter*>& out) override;
  std::size_t pending_caches() const override { return cache_.size(); }

  std::int64_t dim() const { return dim_; }
  float eps() const { return eps_; }
  const Tensor& gamma() const { return gamma_.value; }
  const Tensor& beta() const { return beta_.value; }

 protected:
  void on_clear_cache() override { cache_.clear(); }

 private:
  struct Cache {
    Tensor xhat;     // normalized input, same shape as x
    Tensor inv_std;  // [rows]
  };

  std::int64_t dim_;
  float eps_;
  Parameter gamma_;
  Parameter beta_;
  std::vector<Cache> cache_;
};

}  // namespace cq::nn
