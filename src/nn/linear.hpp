// Fully connected layer y = x W^T + b, with optional weight transform
// (fake quantization) applied on the forward path.
//
// The bias add rides the GEMM epilogue (no separate pass over y), and when
// the installed transform exposes a pack_spec() the fake quantization is
// folded into the GEMM packing of W — the layer then never materializes a
// quantized weight tensor, caching only the tiny QuantSpec for backward.
#pragma once

#include <memory>
#include <optional>

#include "nn/module.hpp"

namespace cq::nn {

class Linear : public Module {
 public:
  /// Activation fused into the forward GEMM's epilogue (eval mode only:
  /// backward needs the pre-activation values a fused pass never yields).
  enum class FusedAct { kNone, kRelu, kReluCap };

  /// He-uniform initialized weight [out_features, in_features].
  Linear(std::int64_t in_features, std::int64_t out_features, Rng& rng,
         bool bias = true, std::string name = "linear");

  const char* type_name() const override { return "Linear"; }
  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;
  void collect_parameters(std::vector<Parameter*>& out) override;
  std::size_t pending_caches() const override { return cache_.size(); }

  /// Install/replace the weight transform (nullptr disables).
  void set_weight_transform(std::shared_ptr<const WeightTransform> t) {
    transform_ = std::move(t);
  }

  /// Fuse an activation into the forward epilogue. Checked against train
  /// mode at forward time; `cap` is the ReLU6-style ceiling for kReluCap.
  void set_fused_activation(FusedAct act, float cap = 0.0f) {
    fused_act_ = act;
    fused_cap_ = cap;
  }

  std::int64_t in_features() const { return in_features_; }
  std::int64_t out_features() const { return out_features_; }
  Parameter& weight() { return weight_; }
  Parameter* bias() { return has_bias_ ? &bias_ : nullptr; }

 protected:
  void on_clear_cache() override { cache_.clear(); }

 private:
  struct Cache {
    Tensor input;  // [N, in]
    // Exactly one of these is set when the transform was active: the spec
    // when quantize-on-pack applied, the tensor when the transform had to
    // materialize (e.g. Gaussian perturbation).
    std::optional<Tensor> effective_weight;
    std::optional<gemm::QuantSpec> weight_spec;
  };

  std::int64_t in_features_;
  std::int64_t out_features_;
  bool has_bias_;
  Parameter weight_;
  Parameter bias_;
  std::shared_ptr<const WeightTransform> transform_;
  FusedAct fused_act_ = FusedAct::kNone;
  float fused_cap_ = 0.0f;
  std::vector<Cache> cache_;
};

}  // namespace cq::nn
