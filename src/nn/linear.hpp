// Fully connected layer y = x W^T + b, with optional weight transform
// (fake quantization) applied on the forward path.
#pragma once

#include <memory>
#include <optional>

#include "nn/module.hpp"

namespace cq::nn {

class Linear : public Module {
 public:
  /// He-uniform initialized weight [out_features, in_features].
  Linear(std::int64_t in_features, std::int64_t out_features, Rng& rng,
         bool bias = true, std::string name = "linear");

  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;
  void collect_parameters(std::vector<Parameter*>& out) override;
  std::size_t pending_caches() const override { return cache_.size(); }

  /// Install/replace the weight transform (nullptr disables).
  void set_weight_transform(std::shared_ptr<const WeightTransform> t) {
    transform_ = std::move(t);
  }

  std::int64_t in_features() const { return in_features_; }
  std::int64_t out_features() const { return out_features_; }
  Parameter& weight() { return weight_; }
  Parameter* bias() { return has_bias_ ? &bias_ : nullptr; }

 protected:
  void on_clear_cache() override { cache_.clear(); }

 private:
  struct Cache {
    Tensor input;             // [N, in]
    std::optional<Tensor> effective_weight;  // set iff transform was active
  };

  std::int64_t in_features_;
  std::int64_t out_features_;
  bool has_bias_;
  Parameter weight_;
  Parameter bias_;
  std::shared_ptr<const WeightTransform> transform_;
  std::vector<Cache> cache_;
};

}  // namespace cq::nn
