#include "nn/module.hpp"

#include "util/check.hpp"

namespace cq::nn {

void Module::collect_parameters(std::vector<Parameter*>& out) {
  visit_children([&out](Module& m) { m.collect_parameters(out); });
}

void Module::collect_buffers(std::vector<Tensor*>& out) {
  visit_children([&out](Module& m) { m.collect_buffers(out); });
}

void Module::visit_children(const std::function<void(Module&)>& /*fn*/) {}

void Module::set_mode(Mode mode) {
  mode_ = mode;
  on_set_mode(mode);
  visit_children([mode](Module& m) { m.set_mode(mode); });
}

void Module::clear_cache() {
  on_clear_cache();
  visit_children([](Module& m) { m.clear_cache(); });
}

std::vector<Parameter*> Module::parameters() {
  std::vector<Parameter*> out;
  collect_parameters(out);
  return out;
}

void Module::zero_grad() {
  for (Parameter* p : parameters()) p->zero_grad();
}

std::int64_t Module::parameter_count() {
  std::int64_t n = 0;
  for (Parameter* p : parameters()) n += p->value.numel();
  return n;
}

void copy_parameters(Module& src, Module& dst) {
  auto sp = src.parameters();
  auto dp = dst.parameters();
  CQ_CHECK_MSG(sp.size() == dp.size(), "parameter count mismatch in copy");
  for (std::size_t i = 0; i < sp.size(); ++i) {
    CQ_CHECK_MSG(sp[i]->value.same_shape(dp[i]->value),
                 "parameter shape mismatch at " << sp[i]->name);
    dp[i]->value = sp[i]->value;
    dp[i]->bump_version();
  }
  std::vector<Tensor*> sb, db;
  src.collect_buffers(sb);
  dst.collect_buffers(db);
  CQ_CHECK_MSG(sb.size() == db.size(), "buffer count mismatch in copy");
  for (std::size_t i = 0; i < sb.size(); ++i) *db[i] = *sb[i];
}

void ema_update(Module& src, Module& dst, float momentum) {
  CQ_CHECK(momentum >= 0.0f && momentum <= 1.0f);
  auto sp = src.parameters();
  auto dp = dst.parameters();
  CQ_CHECK_MSG(sp.size() == dp.size(), "parameter count mismatch in ema");
  for (std::size_t i = 0; i < sp.size(); ++i) {
    Tensor& d = dp[i]->value;
    const Tensor& s = sp[i]->value;
    CQ_CHECK(d.same_shape(s));
    d.mul_(momentum);
    d.add_(s, 1.0f - momentum);
    dp[i]->bump_version();
  }
  std::vector<Tensor*> sb, db;
  src.collect_buffers(sb);
  dst.collect_buffers(db);
  CQ_CHECK_MSG(sb.size() == db.size(), "buffer count mismatch in ema");
  for (std::size_t i = 0; i < sb.size(); ++i) {
    db[i]->mul_(momentum);
    db[i]->add_(*sb[i], 1.0f - momentum);
  }
}

std::vector<Tensor> snapshot_state(Module& module) {
  std::vector<Tensor> state;
  for (Parameter* p : module.parameters()) state.push_back(p->value);
  std::vector<Tensor*> buffers;
  module.collect_buffers(buffers);
  for (Tensor* b : buffers) state.push_back(*b);
  return state;
}

void restore_state(Module& module, const std::vector<Tensor>& state) {
  auto params = module.parameters();
  std::vector<Tensor*> buffers;
  module.collect_buffers(buffers);
  CQ_CHECK_MSG(state.size() == params.size() + buffers.size(),
               "state size mismatch in restore");
  std::size_t i = 0;
  for (Parameter* p : params) {
    CQ_CHECK(state[i].same_shape(p->value));
    p->value = state[i++];
    p->bump_version();
  }
  for (Tensor* b : buffers) {
    CQ_CHECK(state[i].same_shape(*b));
    *b = state[i++];
  }
}

}  // namespace cq::nn
