// Spatial pooling layers (NCHW).
#pragma once

#include "nn/module.hpp"

namespace cq::nn {

/// Max pooling with square window. Caches argmax indices for backward.
class MaxPool2d : public Module {
 public:
  MaxPool2d(std::int64_t kernel, std::int64_t stride, std::int64_t pad = 0);

  const char* type_name() const override { return "MaxPool2d"; }
  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;
  std::size_t pending_caches() const override { return cache_.size(); }

  std::int64_t kernel() const { return kernel_; }
  std::int64_t stride() const { return stride_; }
  std::int64_t pad() const { return pad_; }

 protected:
  void on_clear_cache() override { cache_.clear(); }

 private:
  struct Cache {
    Shape in_shape;
    std::vector<std::int64_t> argmax;  // flat index into the input, per output
  };
  std::int64_t kernel_, stride_, pad_;
  std::vector<Cache> cache_;
};

/// Average pooling with square window.
class AvgPool2d : public Module {
 public:
  AvgPool2d(std::int64_t kernel, std::int64_t stride);

  const char* type_name() const override { return "AvgPool2d"; }
  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;
  std::size_t pending_caches() const override { return shapes_.size(); }

 protected:
  void on_clear_cache() override { shapes_.clear(); }

 private:
  std::int64_t kernel_, stride_;
  std::vector<Shape> shapes_;
};

/// Global average pooling [N, C, H, W] -> [N, C].
class GlobalAvgPool : public Module {
 public:
  const char* type_name() const override { return "GlobalAvgPool"; }
  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;
  std::size_t pending_caches() const override { return shapes_.size(); }

 protected:
  void on_clear_cache() override { shapes_.clear(); }

 private:
  std::vector<Shape> shapes_;
};

}  // namespace cq::nn
