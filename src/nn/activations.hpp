// Pointwise activations and shape adapters.
#pragma once

#include "nn/module.hpp"

namespace cq::nn {

/// ReLU, with an optional upper clip (cap = 6 gives ReLU6 for MobileNetV2;
/// cap <= 0 means unbounded).
class ReLU : public Module {
 public:
  explicit ReLU(float cap = 0.0f) : cap_(cap) {}

  /// Upper clip; <= 0 means plain (unbounded) ReLU. Deployment compilers
  /// read this to reproduce ReLU6 and to fuse the activation into GEMM
  /// epilogues.
  float cap() const { return cap_; }

  const char* type_name() const override { return "ReLU"; }
  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;
  std::size_t pending_caches() const override { return cache_.size(); }

 protected:
  void on_clear_cache() override { cache_.clear(); }

 private:
  float cap_;
  std::vector<Tensor> cache_;  // inputs
};

/// GELU (tanh approximation, kernels::gelu) — the transformer MLP
/// activation. Pointwise over any shape.
class GELU : public Module {
 public:
  const char* type_name() const override { return "GELU"; }
  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;
  std::size_t pending_caches() const override { return cache_.size(); }

 protected:
  void on_clear_cache() override { cache_.clear(); }

 private:
  std::vector<Tensor> cache_;  // inputs
};

/// Flatten [N, C, H, W] -> [N, C*H*W].
class Flatten : public Module {
 public:
  const char* type_name() const override { return "Flatten"; }
  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;
  std::size_t pending_caches() const override { return shapes_.size(); }

 protected:
  void on_clear_cache() override { shapes_.clear(); }

 private:
  std::vector<Shape> shapes_;
};

}  // namespace cq::nn
