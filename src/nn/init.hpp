// Weight initialization schemes.
#pragma once

#include "tensor/tensor.hpp"

namespace cq::nn::init {

/// Kaiming/He uniform: U(-b, b) with b = sqrt(6 / fan_in). Suited to ReLU
/// networks (He et al., 2015).
Tensor he_uniform(Shape shape, std::int64_t fan_in, Rng& rng);

/// Kaiming/He normal: N(0, sqrt(2 / fan_in)).
Tensor he_normal(Shape shape, std::int64_t fan_in, Rng& rng);

/// Xavier/Glorot uniform: U(-b, b) with b = sqrt(6 / (fan_in + fan_out)).
Tensor xavier_uniform(Shape shape, std::int64_t fan_in, std::int64_t fan_out,
                      Rng& rng);

}  // namespace cq::nn::init
