#include "nn/batchnorm.hpp"

#include <cmath>

namespace cq::nn {

BatchNorm2d::BatchNorm2d(std::int64_t channels, float momentum, float eps,
                         std::string name)
    : channels_(channels),
      momentum_(momentum),
      eps_(eps),
      gamma_(Tensor::ones(Shape{channels}), name + ".gamma", /*decay=*/false),
      beta_(Tensor::zeros(Shape{channels}), name + ".beta", /*decay=*/false),
      running_mean_(Tensor::zeros(Shape{channels})),
      running_var_(Tensor::ones(Shape{channels})) {
  CQ_CHECK(channels > 0);
}

Tensor BatchNorm2d::forward(const Tensor& x) {
  CQ_CHECK_MSG(x.shape().rank() == 4 && x.dim(1) == channels_,
               "bn input " << x.shape().str() << " expects [N, " << channels_
                           << ", H, W]");
  const auto n = x.dim(0), h = x.dim(2), w = x.dim(3);
  const auto spatial = h * w;
  const auto count = n * spatial;
  // Every element of y / xhat / inv_std is written below.
  Tensor y = Tensor::empty(x.shape());

  if (mode_ == Mode::kTrain) {
    Cache entry;
    entry.xhat = Tensor::empty(x.shape());
    entry.inv_std = Tensor::empty(Shape{channels_});
    entry.n = n;
    entry.h = h;
    entry.w = w;
    for (std::int64_t c = 0; c < channels_; ++c) {
      double sum = 0.0, sq = 0.0;
      for (std::int64_t img = 0; img < n; ++img) {
        const float* p = x.data() + (img * channels_ + c) * spatial;
        for (std::int64_t s = 0; s < spatial; ++s) {
          sum += p[s];
          sq += static_cast<double>(p[s]) * p[s];
        }
      }
      const double mean = sum / static_cast<double>(count);
      const double var = sq / static_cast<double>(count) - mean * mean;
      const float inv_std =
          1.0f / std::sqrt(static_cast<float>(var) + eps_);
      entry.inv_std[c] = inv_std;
      running_mean_[c] = (1.0f - momentum_) * running_mean_[c] +
                         momentum_ * static_cast<float>(mean);
      running_var_[c] = (1.0f - momentum_) * running_var_[c] +
                        momentum_ * static_cast<float>(var);
      const float g = gamma_.value[c], b = beta_.value[c];
      const float m = static_cast<float>(mean);
      for (std::int64_t img = 0; img < n; ++img) {
        const float* p = x.data() + (img * channels_ + c) * spatial;
        float* xh = entry.xhat.data() + (img * channels_ + c) * spatial;
        float* yo = y.data() + (img * channels_ + c) * spatial;
        for (std::int64_t s = 0; s < spatial; ++s) {
          const float v = (p[s] - m) * inv_std;
          xh[s] = v;
          yo[s] = g * v + b;
        }
      }
    }
    cache_.push_back(std::move(entry));
  } else {
    for (std::int64_t c = 0; c < channels_; ++c) {
      const float inv_std = 1.0f / std::sqrt(running_var_[c] + eps_);
      const float m = running_mean_[c];
      const float g = gamma_.value[c], b = beta_.value[c];
      for (std::int64_t img = 0; img < n; ++img) {
        const float* p = x.data() + (img * channels_ + c) * spatial;
        float* yo = y.data() + (img * channels_ + c) * spatial;
        for (std::int64_t s = 0; s < spatial; ++s)
          yo[s] = g * (p[s] - m) * inv_std + b;
      }
    }
  }
  return y;
}

Tensor BatchNorm2d::backward(const Tensor& grad_out) {
  CQ_CHECK_MSG(!cache_.empty(), "bn backward without matching forward");
  Cache entry = std::move(cache_.back());
  cache_.pop_back();
  const auto n = entry.n, h = entry.h, w = entry.w;
  const auto spatial = h * w;
  const auto count = n * spatial;
  CQ_CHECK(grad_out.shape().rank() == 4 && grad_out.dim(0) == n &&
           grad_out.dim(1) == channels_ && grad_out.dim(2) == h &&
           grad_out.dim(3) == w);

  Tensor grad_in = Tensor::empty(grad_out.shape());
  for (std::int64_t c = 0; c < channels_; ++c) {
    // Accumulate dgamma, dbeta, and the two reduction terms of the BN
    // input-gradient formula.
    double dgamma = 0.0, dbeta = 0.0;
    for (std::int64_t img = 0; img < n; ++img) {
      const float* go = grad_out.data() + (img * channels_ + c) * spatial;
      const float* xh = entry.xhat.data() + (img * channels_ + c) * spatial;
      for (std::int64_t s = 0; s < spatial; ++s) {
        dgamma += static_cast<double>(go[s]) * xh[s];
        dbeta += go[s];
      }
    }
    gamma_.grad[c] += static_cast<float>(dgamma);
    beta_.grad[c] += static_cast<float>(dbeta);

    const float g = gamma_.value[c];
    const float inv_std = entry.inv_std[c];
    const float inv_count = 1.0f / static_cast<float>(count);
    const float mean_dy = static_cast<float>(dbeta) * inv_count;
    const float mean_dy_xhat = static_cast<float>(dgamma) * inv_count;
    for (std::int64_t img = 0; img < n; ++img) {
      const float* go = grad_out.data() + (img * channels_ + c) * spatial;
      const float* xh = entry.xhat.data() + (img * channels_ + c) * spatial;
      float* gi = grad_in.data() + (img * channels_ + c) * spatial;
      for (std::int64_t s = 0; s < spatial; ++s)
        gi[s] = g * inv_std * (go[s] - mean_dy - xh[s] * mean_dy_xhat);
    }
  }
  return grad_in;
}

void BatchNorm2d::collect_parameters(std::vector<Parameter*>& out) {
  out.push_back(&gamma_);
  out.push_back(&beta_);
}

void BatchNorm2d::collect_buffers(std::vector<Tensor*>& out) {
  out.push_back(&running_mean_);
  out.push_back(&running_var_);
}

}  // namespace cq::nn
