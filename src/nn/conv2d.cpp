#include "nn/conv2d.hpp"

#include <utility>

#include "core/trace.hpp"
#include "nn/init.hpp"
#include "tensor/gemm.hpp"

namespace cq::nn {

Conv2d::Conv2d(const Conv2dSpec& spec, Rng& rng, std::string name)
    : spec_(spec) {
  CQ_CHECK(spec.in_channels > 0 && spec.out_channels > 0);
  CQ_CHECK(spec.kernel > 0 && spec.stride > 0 && spec.pad >= 0);
  CQ_CHECK_MSG(spec.groups > 0 && spec.in_channels % spec.groups == 0 &&
                   spec.out_channels % spec.groups == 0,
               "groups must divide both channel counts");
  const auto cin_g = spec.in_channels / spec.groups;
  const auto fan_in = cin_g * spec.kernel * spec.kernel;
  weight_ = Parameter(
      init::he_normal(Shape{spec.out_channels, fan_in}, fan_in, rng),
      name + ".weight", /*decay=*/true);
  if (spec.bias)
    bias_ = Parameter(Tensor::zeros(Shape{spec.out_channels}), name + ".bias",
                      /*decay=*/false);
}

ConvGeometry Conv2d::group_geometry(std::int64_t in_h,
                                    std::int64_t in_w) const {
  ConvGeometry g;
  g.in_channels = spec_.in_channels / spec_.groups;
  g.in_h = in_h;
  g.in_w = in_w;
  g.kernel_h = g.kernel_w = spec_.kernel;
  g.stride = spec_.stride;
  g.pad = spec_.pad;
  return g;
}

Tensor Conv2d::forward(const Tensor& x) {
  CQ_TRACE_SCOPE_N("nn.conv.fwd", x.dim(0));
  CQ_CHECK_MSG(x.shape().rank() == 4 && x.dim(1) == spec_.in_channels,
               "conv input " << x.shape().str() << " expects [N, "
                             << spec_.in_channels << ", H, W]");
  const auto n = x.dim(0), in_h = x.dim(2), in_w = x.dim(3);
  const auto g = group_geometry(in_h, in_w);
  const auto oh = g.out_h(), ow = g.out_w();
  CQ_CHECK_MSG(oh > 0 && ow > 0, "conv output would be empty for input "
                                     << x.shape().str());

  const bool transformed = transform_ && transform_->active();
  // Quantize-on-pack: fold an affine fake quantization into the GEMM's
  // packing of W; otherwise materialize via apply().
  std::optional<gemm::QuantSpec> wq;
  Tensor w_eff;
  if (transformed) {
    wq = transform_->pack_spec(weight_);
    if (!wq) w_eff = transform_->apply(weight_);
  }
  const Tensor& w_fwd = wq || !transformed ? weight_.value : w_eff;
  const gemm::QuantSpec* qa = wq ? &*wq : nullptr;

  const auto groups = spec_.groups;
  const auto cout_g = spec_.out_channels / groups;
  const auto cin_g = g.in_channels;
  const auto krows = g.col_rows();  // cin_g * K * K

  // Fully overwritten below (gemm writes every output element).
  Tensor y = Tensor::empty(Shape{n, spec_.out_channels, oh, ow});
  cols_.resize(Shape{krows, oh * ow});
  float* cols = cols_.data();
  const float* W = w_fwd.data();
  const float* bias = spec_.bias ? std::as_const(bias_.value).data() : nullptr;
  const float* x_base = x.data();
  float* y_base = y.data();
  for (std::int64_t img = 0; img < n; ++img) {
    const float* in_base = x_base + img * spec_.in_channels * in_h * in_w;
    float* out_base = y_base + img * spec_.out_channels * oh * ow;
    for (std::int64_t grp = 0; grp < groups; ++grp) {
      im2col(in_base + grp * cin_g * in_h * in_w, g, cols);
      // out[cout_g, oh*ow] = W_grp[cout_g, krows] * cols[krows, oh*ow],
      // with the per-channel bias fused as a per-row epilogue (GEMM rows
      // are output channels here).
      const float* wg = W + grp * cout_g * krows;
      float* og = out_base + grp * cout_g * oh * ow;
      gemm::Epilogue ep;
      if (bias != nullptr) {
        ep.bias = bias + grp * cout_g;
        ep.bias_kind = gemm::Epilogue::Bias::kPerRow;
      }
      gemm::gemm(gemm::Trans::kNN, cout_g, oh * ow, krows, wg, cols, og,
                 /*accumulate=*/false, ep, qa, nullptr);
    }
  }

  if (mode_ == Mode::kTrain) {
    Cache entry;
    entry.input = x;
    if (transformed) {
      if (wq)
        entry.weight_spec = wq;
      else
        entry.effective_weight = std::move(w_eff);
    }
    cache_.push_back(std::move(entry));
  }
  return y;
}

Tensor Conv2d::backward(const Tensor& grad_out) {
  CQ_TRACE_SCOPE_N("nn.conv.bwd", grad_out.dim(0));
  CQ_CHECK_MSG(!cache_.empty(), "conv backward without matching forward");
  Cache entry = std::move(cache_.back());
  cache_.pop_back();

  const Tensor& x = entry.input;
  const auto n = x.dim(0), in_h = x.dim(2), in_w = x.dim(3);
  const auto g = group_geometry(in_h, in_w);
  const auto oh = g.out_h(), ow = g.out_w();
  CQ_CHECK(grad_out.shape().rank() == 4 && grad_out.dim(0) == n &&
           grad_out.dim(1) == spec_.out_channels && grad_out.dim(2) == oh &&
           grad_out.dim(3) == ow);

  const auto groups = spec_.groups;
  const auto cout_g = spec_.out_channels / groups;
  const auto cin_g = g.in_channels;
  const auto krows = g.col_rows();
  const auto spatial = oh * ow;

  const Tensor& w_used =
      entry.effective_weight ? *entry.effective_weight : weight_.value;
  const float* W = w_used.data();
  float* Wg = weight_.grad.data();

  // grad_in must start zeroed: col2im scatter-adds into it.
  Tensor grad_in(x.shape());
  cols_.resize(Shape{krows, spatial});
  dcols_.resize(Shape{krows, spatial});
  float* cols = cols_.data();
  float* dcols = dcols_.data();

  const float* x_base = x.data();
  const float* go_all = grad_out.data();
  float* gi_all = grad_in.data();
  for (std::int64_t img = 0; img < n; ++img) {
    const float* in_base = x_base + img * spec_.in_channels * in_h * in_w;
    const float* go_base = go_all + img * spec_.out_channels * spatial;
    float* gi_base = gi_all + img * spec_.in_channels * in_h * in_w;
    for (std::int64_t grp = 0; grp < groups; ++grp) {
      // Recompute cols (cheaper in memory than caching per-image columns).
      im2col(in_base + grp * cin_g * in_h * in_w, g, cols);
      const float* go = go_base + grp * cout_g * spatial;
      // dW_grp += go[cout_g, spatial] * cols^T[spatial, krows]
      float* wg_grad = Wg + grp * cout_g * krows;
      gemm::gemm(gemm::Trans::kNT, cout_g, krows, spatial, go, cols, wg_grad,
                 /*accumulate=*/true);
      // dcols[krows, spatial] = W_grp^T[krows, cout_g] * go[cout_g, spatial].
      // With quantize-on-pack the effective weight is re-derived from the
      // master weight and the cached spec (backward precedes the optimizer
      // step, so the master values still match the forward's).
      const float* wgrp = W + grp * cout_g * krows;
      gemm::gemm(gemm::Trans::kTN, krows, spatial, cout_g, wgrp, go, dcols,
                 /*accumulate=*/false, gemm::Epilogue{},
                 entry.weight_spec ? &*entry.weight_spec : nullptr, nullptr);
      col2im(dcols, g, gi_base + grp * cin_g * in_h * in_w);
    }
    if (spec_.bias) {
      for (std::int64_t oc = 0; oc < spec_.out_channels; ++oc) {
        const float* gorow = go_base + oc * spatial;
        double s = 0.0;
        for (std::int64_t sp = 0; sp < spatial; ++sp) s += gorow[sp];
        bias_.grad[oc] += static_cast<float>(s);
      }
    }
  }
  return grad_in;
}

void Conv2d::collect_parameters(std::vector<Parameter*>& out) {
  out.push_back(&weight_);
  if (spec_.bias) out.push_back(&bias_);
}

}  // namespace cq::nn
