// 2-D convolution (NCHW) via im2col + matmul, with grouped / depthwise
// support and an optional weight transform (fake quantization).
#pragma once

#include <memory>
#include <optional>

#include "nn/module.hpp"
#include "tensor/im2col.hpp"

namespace cq::nn {

struct Conv2dSpec {
  std::int64_t in_channels = 0;
  std::int64_t out_channels = 0;
  std::int64_t kernel = 3;
  std::int64_t stride = 1;
  std::int64_t pad = 1;
  std::int64_t groups = 1;
  bool bias = false;  // conv layers are usually followed by BatchNorm
};

class Conv2d : public Module {
 public:
  Conv2d(const Conv2dSpec& spec, Rng& rng, std::string name = "conv");

  const char* type_name() const override { return "Conv2d"; }
  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;
  void collect_parameters(std::vector<Parameter*>& out) override;
  std::size_t pending_caches() const override { return cache_.size(); }

  void set_weight_transform(std::shared_ptr<const WeightTransform> t) {
    transform_ = std::move(t);
  }

  const Conv2dSpec& spec() const { return spec_; }
  Parameter& weight() { return weight_; }

 protected:
  void on_clear_cache() override { cache_.clear(); }

 private:
  struct Cache {
    Tensor input;  // [N, Cin, H, W]
    // Exactly one of these is set when the transform was active: the spec
    // when quantize-on-pack applied, the tensor otherwise (e.g. Gaussian).
    std::optional<Tensor> effective_weight;
    std::optional<gemm::QuantSpec> weight_spec;
  };

  ConvGeometry group_geometry(std::int64_t in_h, std::int64_t in_w) const;

  Conv2dSpec spec_;
  Parameter weight_;  // [Cout, (Cin/groups) * K * K]
  Parameter bias_;
  std::shared_ptr<const WeightTransform> transform_;
  std::vector<Cache> cache_;
  Tensor cols_, dcols_;  // per-image im2col scratch, reused across calls
};

}  // namespace cq::nn
