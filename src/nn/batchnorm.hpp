// BatchNorm2d over NCHW activations.
//
// Training mode normalizes with batch statistics and updates running
// estimates; eval mode uses the running estimates. Note that in Contrastive
// Quant the encoder runs several branches per iteration, so running stats are
// updated once per branch — this mirrors what a multi-view PyTorch pipeline
// does and is intentional.
#pragma once

#include "nn/module.hpp"

namespace cq::nn {

class BatchNorm2d : public Module {
 public:
  explicit BatchNorm2d(std::int64_t channels, float momentum = 0.1f,
                       float eps = 1e-5f, std::string name = "bn");

  const char* type_name() const override { return "BatchNorm2d"; }
  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;
  void collect_parameters(std::vector<Parameter*>& out) override;
  void collect_buffers(std::vector<Tensor*>& out) override;
  std::size_t pending_caches() const override { return cache_.size(); }

  std::int64_t channels() const { return channels_; }
  float eps() const { return eps_; }
  const Tensor& running_mean() const { return running_mean_; }
  const Tensor& running_var() const { return running_var_; }
  const Tensor& gamma() const { return gamma_.value; }
  const Tensor& beta() const { return beta_.value; }

 protected:
  void on_clear_cache() override { cache_.clear(); }

 private:
  struct Cache {
    Tensor xhat;     // normalized input, same shape as x
    Tensor inv_std;  // [C]
    std::int64_t n = 0, h = 0, w = 0;
  };

  std::int64_t channels_;
  float momentum_;
  float eps_;
  Parameter gamma_;
  Parameter beta_;
  Tensor running_mean_;
  Tensor running_var_;
  std::vector<Cache> cache_;
};

}  // namespace cq::nn
