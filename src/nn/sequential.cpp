#include "nn/sequential.hpp"

#include "util/check.hpp"

namespace cq::nn {

void Sequential::append(std::unique_ptr<Module> m) {
  CQ_CHECK(m != nullptr);
  m->set_mode(mode());
  children_.push_back(std::move(m));
}

Tensor Sequential::forward(const Tensor& x) {
  Tensor h = x;
  for (auto& child : children_) h = child->forward(h);
  return h;
}

Tensor Sequential::backward(const Tensor& grad_out) {
  Tensor g = grad_out;
  for (auto it = children_.rbegin(); it != children_.rend(); ++it)
    g = (*it)->backward(g);
  return g;
}

void Sequential::visit_children(const std::function<void(Module&)>& fn) {
  for (auto& child : children_) fn(*child);
}

}  // namespace cq::nn
