// Module protocol: explicit layer-wise forward/backward with cache stacks.
//
// Why cache *stacks*: Contrastive Quant pushes several views of a batch
// through the *same* encoder (at different quantization levels) before the
// loss is known, then backpropagates each branch. Every module therefore
// keeps a LIFO stack of forward caches:
//
//   forward(v1); forward(v2); ... ; backward(g2); backward(g1);
//
// INVARIANT: backward() calls must mirror forward() calls in reverse (LIFO)
// order while the module is in training mode. Parameter gradients accumulate
// across branches, which is exactly the sum-of-losses semantics CQ needs.
//
// Eval-mode forwards push no caches and must not be followed by backward().
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "tensor/gemm.hpp"
#include "tensor/tensor.hpp"

namespace cq::nn {

/// A learnable tensor and its gradient accumulator.
struct Parameter {
  Tensor value;
  Tensor grad;
  std::string name;
  /// Parameters flagged false are excluded from weight decay (biases, BN).
  bool decay = true;
  /// Monotonic counter bumped whenever `value` is rewritten (optimizer step,
  /// EMA update, checkpoint restore). Weight transforms key their memoized
  /// results on (parameter, version) so a weight that hasn't changed is never
  /// re-quantized within an iteration.
  std::uint64_t version = 0;

  Parameter() = default;
  Parameter(Tensor v, std::string n, bool decay_flag = true)
      : value(std::move(v)), grad(Tensor::zeros(value.shape())),
        name(std::move(n)), decay(decay_flag) {}

  void zero_grad() { grad.fill(0.0f); }
  void bump_version() { ++version; }
};

enum class Mode { kTrain, kEval };

/// Hook that rewrites a weight tensor on its way into a layer's forward pass.
/// The quantization library implements this (fake-quant with a straight-
/// through estimator); nn stays independent of quant.
class WeightTransform {
 public:
  virtual ~WeightTransform() = default;
  /// Whether the transform currently does anything (e.g. bits < 32).
  virtual bool active() const = 0;
  /// The transformed weight used for the forward pass. Takes the whole
  /// Parameter (not just the tensor) so implementations can memoize per
  /// (parameter identity, version) — CQ pushes 2–4 branches through the same
  /// encoder per iteration and the weight only changes at optimizer steps.
  virtual Tensor apply(const Parameter& weight) const = 0;
  /// Quantize-on-pack fast path: when the transform is an affine fake
  /// quantization (Eq. 10), return the QuantSpec describing it so layers can
  /// fold it into the GEMM packing stage and never materialize a transformed
  /// weight tensor. nullopt (the default) means "no pack fusion" — layers
  /// must then fall back to apply(). Stochastic transforms (Gaussian
  /// perturbation) return nullopt so each branch keeps independent noise.
  virtual std::optional<gemm::QuantSpec> pack_spec(
      const Parameter& /*weight*/) const {
    return std::nullopt;
  }
};

class Module {
 public:
  virtual ~Module() = default;
  Module() = default;
  Module(const Module&) = delete;
  Module& operator=(const Module&) = delete;

  /// Stable type tag ("Conv2d", "ReLU", ...) used by the graph tracer for
  /// node labels and by its unsupported-module diagnostics. Override in every
  /// concrete module; the base returns "Module" so forgetting one is visible
  /// in dumps rather than a crash.
  virtual const char* type_name() const { return "Module"; }

  /// Forward pass. In training mode, pushes a cache entry consumed by the
  /// matching backward() call.
  virtual Tensor forward(const Tensor& x) = 0;

  /// Backward pass: consumes the most recent cache entry, accumulates
  /// parameter gradients, and returns the gradient w.r.t. that forward's
  /// input.
  virtual Tensor backward(const Tensor& grad_out) = 0;

  /// Append this module's parameters (and its children's) to `out`.
  virtual void collect_parameters(std::vector<Parameter*>& out);

  /// Append non-learnable state (e.g. BatchNorm running stats) to `out`.
  /// Included in copy_parameters / ema_update so BYOL target networks track
  /// normalization state as well as weights.
  virtual void collect_buffers(std::vector<Tensor*>& out);

  /// Visit direct children (containers override).
  virtual void visit_children(const std::function<void(Module&)>& fn);

  /// Train/eval mode, propagated to children.
  void set_mode(Mode mode);
  Mode mode() const { return mode_; }

  /// Drop any un-consumed forward caches (this module and children).
  void clear_cache();

  /// Number of pending (un-consumed) forward caches on this module.
  virtual std::size_t pending_caches() const { return 0; }

  std::vector<Parameter*> parameters();
  void zero_grad();
  /// Total learnable scalar count.
  std::int64_t parameter_count();

 protected:
  /// Module-local hooks invoked by set_mode / clear_cache.
  virtual void on_set_mode(Mode /*mode*/) {}
  virtual void on_clear_cache() {}

  Mode mode_ = Mode::kTrain;
};

/// Copies all parameter values from src into dst (shapes must match
/// pairwise, in collection order). Used by BYOL's target-network updates and
/// by checkpoint restore.
void copy_parameters(Module& src, Module& dst);

/// dst <- momentum * dst + (1 - momentum) * src, parameter-wise (EMA).
void ema_update(Module& src, Module& dst, float momentum);

/// Deep copy of all parameter values and buffers, in collection order.
/// snapshot/restore lets an evaluator fine-tune an encoder and then put the
/// pretrained weights back.
std::vector<Tensor> snapshot_state(Module& module);
void restore_state(Module& module, const std::vector<Tensor>& state);

}  // namespace cq::nn
