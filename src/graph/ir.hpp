// Static op-graph IR the serving compiler lowers checkpoints into.
//
// A Graph is a flat DAG: `nodes` in execution (topological) order, `values`
// holding the tensors that flow between them. The tracer (tracer.hpp) emits
// one node per nn module, UNFUSED — BatchNorm, ReLU and ActQuant appear as
// their own nodes — and the pass pipeline (passes.hpp) rewrites the graph
// (conv+BN folding, epilogue fusion, lowering selection, dead-op
// elimination) before the arena planner (plan.hpp) and executor
// (executor.hpp) turn it into a runnable plan. New fusions become passes
// over this IR instead of hand-edits scattered across nn/, deploy/ and
// serve/ (DESIGN.md §13).
//
// Shapes are PER-SAMPLE (no batch dimension): every op in the supported set
// is batch-parallel, so a plan compiled at `max_batch` serves any batch
// width 1..max_batch from the same arena. Constants (weights, folded
// biases, BN statistics) live on the nodes as copy-on-write tensors; the
// graph owns its weights and survives the source module tree.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "nn/conv2d.hpp"
#include "tensor/gemm.hpp"
#include "tensor/shape.hpp"
#include "tensor/tensor.hpp"

namespace cq::graph {

enum class Op : std::uint8_t {
  kConv2d,
  kBatchNorm,  // eval-mode affine from running stats; folded away by passes
  kRelu,
  kMaxPool,
  kGlobalAvgPool,
  kFlatten,   // pure shape adapter; eliminated by passes
  kLinear,
  kAdd,       // residual join, optional fused trailing ReLU
  kIdentity,  // ActQuant placeholder (serving drops fake quantization)
  // Transformer ops (ViT backbone, DESIGN.md §16).
  kPatchEmbed,  // strided im2row + linear + learned positional embeddings
  kLayerNorm,   // row-wise over the last axis (gamma/beta in bn_gamma/bn_beta)
  kGelu,        // elementwise tanh-form GELU
  kAttnCore,    // fused-QKV [seq,3*dim] -> multi-head attention -> [seq,dim]
  kSeqMean,     // mean over the sequence axis: [seq,dim] -> [dim]
};

const char* op_name(Op op);

/// Which compute path executes a conv/linear node. kInt8 nodes quantize
/// per-output-channel weights at plan-build time and run on the igemm
/// micro-kernels; everything else runs the fp32 gemm/kernels primitives.
enum class Precision : std::uint8_t { kF32, kInt8 };

/// How a conv lowers its input into a GEMM operand. Both are bitwise-equal
/// (shared micro-kernel and k-panel order, see tensor/im2col.hpp); the
/// select_conv_lowering pass picks by layer geometry only, so batched and
/// serial forwards stay bitwise identical.
enum class ConvLowering : std::uint8_t {
  kUndecided,  // executor defaults to kIm2col
  kIm2col,     // row-major column matrix, gemm kNN
  kIm2row,     // patch-major transpose, gemm kNT (thumbnail spatial sizes)
};

using ValueId = std::int32_t;
inline constexpr ValueId kNoValue = -1;

struct Value {
  Shape shape;       // per-sample: [C,H,W] feature maps, [D] feature rows
  std::string name;  // debug label for dump()
};

/// One op. Only the fields its `op` reads are meaningful; keeping a single
/// flat struct (instead of a class hierarchy) is what lets passes rewrite
/// nodes in place and the executor switch on `op` without virtual dispatch.
struct Node {
  Op op = Op::kIdentity;
  std::vector<ValueId> inputs;
  ValueId output = kNoValue;
  std::string label;  // source module name ("stage1.conv2", ...)

  // kConv2d / kLinear
  nn::Conv2dSpec conv;                // kConv2d geometry
  Tensor weight;                      // conv [Cout, krows]; linear [out, in]
  std::vector<float> bias;            // empty = all-zero
  gemm::Epilogue::Act act = gemm::Epilogue::Act::kNone;  // fused epilogue
  float act_cap = 0.0f;
  ConvLowering lowering = ConvLowering::kUndecided;
  Precision precision = Precision::kF32;

  // kRelu
  float relu_cap = 0.0f;  // <= 0: unbounded
  // kMaxPool
  std::int64_t pool_kernel = 0, pool_stride = 0, pool_pad = 0;
  // kAdd
  bool add_relu = false;
  // kBatchNorm (copied out of the module so the graph owns its constants);
  // kLayerNorm reuses bn_gamma / bn_beta / bn_eps.
  Tensor bn_gamma, bn_beta, bn_mean, bn_var;
  float bn_eps = 0.0f;
  // kPatchEmbed: learned positional embeddings [seq, dim], added after the
  // patch projection (geometry rides in `conv`, projection in weight/bias).
  Tensor pos_embed;
  // kAttnCore
  std::int64_t attn_heads = 0;
};

struct Graph {
  std::vector<Node> nodes;  // execution order
  std::vector<Value> values;
  ValueId input = kNoValue;
  ValueId output = kNoValue;

  ValueId add_value(Shape per_sample_shape, std::string name);
  const Value& value(ValueId id) const;
  Value& value(ValueId id);

  /// Node index producing `id`, or -1 for the graph input (or an orphan).
  std::int64_t producer(ValueId id) const;
  /// How many node inputs (plus the graph output) read `id`.
  std::size_t use_count(ValueId id) const;

  /// Rewire every consumer of `from` (including the graph output) to `to`.
  void replace_uses(ValueId from, ValueId to);
  /// Drop nodes flagged in `dead` (size == nodes.size()), keeping order.
  void erase_nodes(const std::vector<bool>& dead);
};

/// Text form, one node per line:
///   %id = op(%in, ...) [per-sample shape] key=value... ; label
/// The overload in plan.hpp appends arena offsets once a plan exists — the
/// debugging surface for every pass (examples/compile_inspect.cpp).
std::string dump(const Graph& g);

}  // namespace cq::graph
