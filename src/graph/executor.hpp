// Compiled-plan executor: runs a pass-processed graph through the existing
// gemm / kernels / igemm primitives, with every intermediate and scratch
// buffer resolved to an offset in ONE preallocated arena (plan.hpp) and
// weights prepacked per node at build time (fp32 linear -> gemm packed-B
// slivers; int8 conv/linear -> igemm packed-A + row sums + per-channel
// scales, exactly the eager deploy ctor recipe).
//
// Bitwise contract (the serving gates): a compiled forward reproduces the
// eager module-by-module paths bit for bit — serve::Fp32Network for fp32
// plans, deploy::Int8Network for int8 plans — and a batch-N forward equals
// N batch-1 forwards bitwise at any width 1..max_batch. Both hold because
// every node body here is the same operation sequence as its eager twin
// (same lowering choice per geometry, same GEMM entry points, same
// epilogue folding, same per-sample quantization scales), only the buffer
// addresses differ. tests/test_graph.cpp pins this per pass.
//
// forward() is const-free and reuses the arena: zero heap allocations in
// steady state at ANY batch width (the prewarm regression in
// tests/test_serve.cpp), and one CompiledModel per serving thread — the
// arena makes it non-reentrant by construction.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/ir.hpp"
#include "graph/passes.hpp"
#include "graph/plan.hpp"
#include "nn/sequential.hpp"

namespace cq::graph {

struct CompileOptions {
  std::int64_t max_batch = 1;
  Precision precision = Precision::kF32;
  bool run_passes = true;  // off: caller drives passes itself (tests)
};

class CompiledModel {
 public:
  /// Takes a graph whose pipeline has already run — kBatchNorm, kIdentity
  /// and kFlatten must be gone (throws CheckError naming the offender
  /// otherwise) — plans the arena at `max_batch`, and prepacks weights.
  CompiledModel(Graph g, std::int64_t max_batch);

  CompiledModel(CompiledModel&&) = default;
  CompiledModel& operator=(CompiledModel&&) = default;
  CompiledModel(const CompiledModel&) = delete;
  CompiledModel& operator=(const CompiledModel&) = delete;

  /// x: [n, ...per-sample dims], 1 <= n <= max_batch(). Returns [n, ...]
  /// features; the reference stays valid until the next forward.
  const Tensor& forward(const Tensor& x);

  const Graph& graph() const { return graph_; }
  const ArenaPlan& plan() const { return plan_; }
  const std::vector<PassResult>& pass_log() const { return pass_log_; }
  std::int64_t max_batch() const { return max_batch_; }
  std::int64_t arena_bytes() const { return plan_.arena_bytes; }

  /// Indices of the int8 kConv2d / kLinear nodes, in execution order — the
  /// layers whose weight quantization scales CPT-V calibration perturbs.
  std::vector<std::size_t> int8_nodes() const;
  /// Node i's current per-output-channel weight scales (empty for fp32).
  const std::vector<float>& node_scales(std::size_t i) const {
    return state_[i].scales;
  }
  /// Re-quantize node i's weights with externally chosen per-output-channel
  /// scales (quant/ptq.cpp's accept/reject loop) and repack for igemm. The
  /// node must be an int8 kConv2d / kLinear; scales must have one positive
  /// entry per output channel.
  void requantize_node(std::size_t i, const std::vector<float>& scales);

 private:
  friend CompiledModel compile(nn::Sequential&, const Shape&,
                               const CompileOptions&);

  /// Per-node immutable compute state built once in the ctor.
  struct NodeState {
    // fp32 kLinear: weights in gemm packed-B sliver layout when the shape
    // fits a single k-panel (in <= kKC, out <= kNC); empty -> gemm(kNT)
    // fallback on the raw weight.
    std::vector<float> packed_b;
    // int8 kConv2d / kLinear: igemm packed weights + epilogue operands.
    std::vector<std::int8_t> packed_a;
    std::vector<std::int32_t> rowsum;
    std::vector<float> scales;
    std::int64_t pa_group = 0;  // packed bytes per conv group
    // Bias always materialized (zeros when the node has none) so epilogues
    // can point at it unconditionally.
    std::vector<float> bias;
  };

  /// Quantize + igemm-pack node i's weights. `scales` is per-output-channel
  /// (weight.dim(0) entries) or null for the min-max default.
  void quantize_int8_weights(std::size_t i, const float* scales);

  float* arena_ptr(std::int64_t offset) {
    return reinterpret_cast<float*>(base_ + offset);
  }
  const float* in_ptr(ValueId id, const Tensor& x) const;
  float* out_value_ptr(ValueId id);

  Graph graph_;
  std::int64_t max_batch_ = 1;
  ArenaPlan plan_;
  std::vector<PassResult> pass_log_;
  std::vector<std::uint8_t> arena_;  // one buffer for every intermediate
  std::uint8_t* base_ = nullptr;     // kArenaAlign-aligned start
  std::vector<NodeState> state_;
  Tensor out_;
};

/// trace -> run_default_passes (unless opts.run_passes is off) -> plan ->
/// prepack. The one-call entry the serving instances use.
CompiledModel compile(nn::Sequential& net, const Shape& sample_shape,
                      const CompileOptions& opts);

}  // namespace cq::graph
