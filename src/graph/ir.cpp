#include "graph/ir.hpp"

#include <cstdio>

#include "util/check.hpp"

namespace cq::graph {

const char* op_name(Op op) {
  switch (op) {
    case Op::kConv2d: return "conv2d";
    case Op::kBatchNorm: return "batchnorm";
    case Op::kRelu: return "relu";
    case Op::kMaxPool: return "maxpool";
    case Op::kGlobalAvgPool: return "gap";
    case Op::kFlatten: return "flatten";
    case Op::kLinear: return "linear";
    case Op::kAdd: return "add";
    case Op::kIdentity: return "identity";
    case Op::kPatchEmbed: return "patch_embed";
    case Op::kLayerNorm: return "layernorm";
    case Op::kGelu: return "gelu";
    case Op::kAttnCore: return "attn_core";
    case Op::kSeqMean: return "seq_mean";
  }
  return "?";
}

ValueId Graph::add_value(Shape per_sample_shape, std::string name) {
  values.push_back(Value{std::move(per_sample_shape), std::move(name)});
  return static_cast<ValueId>(values.size() - 1);
}

const Value& Graph::value(ValueId id) const {
  CQ_CHECK(id >= 0 && static_cast<std::size_t>(id) < values.size());
  return values[static_cast<std::size_t>(id)];
}

Value& Graph::value(ValueId id) {
  CQ_CHECK(id >= 0 && static_cast<std::size_t>(id) < values.size());
  return values[static_cast<std::size_t>(id)];
}

std::int64_t Graph::producer(ValueId id) const {
  for (std::size_t i = 0; i < nodes.size(); ++i)
    if (nodes[i].output == id) return static_cast<std::int64_t>(i);
  return -1;
}

std::size_t Graph::use_count(ValueId id) const {
  std::size_t uses = 0;
  for (const Node& n : nodes)
    for (ValueId in : n.inputs)
      if (in == id) ++uses;
  if (output == id) ++uses;
  return uses;
}

void Graph::replace_uses(ValueId from, ValueId to) {
  for (Node& n : nodes)
    for (ValueId& in : n.inputs)
      if (in == from) in = to;
  if (output == from) output = to;
}

void Graph::erase_nodes(const std::vector<bool>& dead) {
  CQ_CHECK(dead.size() == nodes.size());
  std::vector<Node> kept;
  kept.reserve(nodes.size());
  for (std::size_t i = 0; i < nodes.size(); ++i)
    if (!dead[i]) kept.push_back(std::move(nodes[i]));
  nodes = std::move(kept);
}

namespace detail {

std::string node_line(const Graph& g, const Node& n) {
  std::string s = "%" + std::to_string(n.output) + " = ";
  s += op_name(n.op);
  s += "(";
  for (std::size_t i = 0; i < n.inputs.size(); ++i) {
    if (i) s += ", ";
    s += "%" + std::to_string(n.inputs[i]);
  }
  s += ")";
  if (n.output != kNoValue) {
    s += " ";
    s += g.value(n.output).shape.str();
  }
  char buf[128];
  switch (n.op) {
    case Op::kConv2d: {
      std::snprintf(buf, sizeof buf, " k=%lldx%lld s=%lld p=%lld g=%lld",
                    static_cast<long long>(n.conv.kernel),
                    static_cast<long long>(n.conv.kernel),
                    static_cast<long long>(n.conv.stride),
                    static_cast<long long>(n.conv.pad),
                    static_cast<long long>(n.conv.groups));
      s += buf;
      if (n.lowering != ConvLowering::kUndecided)
        s += n.lowering == ConvLowering::kIm2row ? " im2row" : " im2col";
      if (n.precision == Precision::kInt8) s += " int8";
      if (n.act == gemm::Epilogue::Act::kRelu) s += " +relu";
      if (n.act == gemm::Epilogue::Act::kReluCap) {
        std::snprintf(buf, sizeof buf, " +relu_cap(%g)",
                      static_cast<double>(n.act_cap));
        s += buf;
      }
      break;
    }
    case Op::kLinear:
      if (n.precision == Precision::kInt8) s += " int8";
      if (n.act == gemm::Epilogue::Act::kRelu) s += " +relu";
      if (n.act == gemm::Epilogue::Act::kReluCap) {
        std::snprintf(buf, sizeof buf, " +relu_cap(%g)",
                      static_cast<double>(n.act_cap));
        s += buf;
      }
      break;
    case Op::kRelu:
      if (n.relu_cap > 0.0f) {
        std::snprintf(buf, sizeof buf, " cap=%g",
                      static_cast<double>(n.relu_cap));
        s += buf;
      }
      break;
    case Op::kMaxPool:
      std::snprintf(buf, sizeof buf, " k=%lld s=%lld p=%lld",
                    static_cast<long long>(n.pool_kernel),
                    static_cast<long long>(n.pool_stride),
                    static_cast<long long>(n.pool_pad));
      s += buf;
      break;
    case Op::kAdd:
      if (n.add_relu) s += " +relu";
      break;
    case Op::kPatchEmbed:
      std::snprintf(buf, sizeof buf, " p=%lld",
                    static_cast<long long>(n.conv.kernel));
      s += buf;
      break;
    case Op::kAttnCore:
      std::snprintf(buf, sizeof buf, " h=%lld",
                    static_cast<long long>(n.attn_heads));
      s += buf;
      break;
    default: break;
  }
  if (!n.label.empty()) {
    s += " ; ";
    s += n.label;
  }
  return s;
}

}  // namespace detail

std::string dump(const Graph& g) {
  std::string s = "graph input=%" + std::to_string(g.input) + " " +
                  (g.input != kNoValue ? g.value(g.input).shape.str()
                                       : std::string("[]")) +
                  " output=%" + std::to_string(g.output) + "\n";
  for (const Node& n : g.nodes) {
    s += detail::node_line(g, n);
    s += "\n";
  }
  return s;
}

}  // namespace cq::graph
