#include "graph/tracer.hpp"

#include <string>

#include "models/mobilenetv2.hpp"
#include "models/resnet.hpp"
#include "models/vit.hpp"
#include "nn/activations.hpp"
#include "nn/batchnorm.hpp"
#include "nn/conv2d.hpp"
#include "nn/layernorm.hpp"
#include "nn/linear.hpp"
#include "nn/pooling.hpp"
#include "quant/actquant.hpp"
#include "tensor/im2col.hpp"
#include "util/check.hpp"

namespace cq::graph {

namespace {

ValueId trace_module(Graph& g, nn::Module& child, ValueId cur,
                     const std::string& label);

/// kLinear over a rank-1 [in] or rank-2 [seq, in] per-sample input; the
/// executor just sees more GEMM rows in the rank-2 case.
ValueId linear_node(Graph& g, nn::Linear& linear, ValueId cur,
                    const std::string& label) {
  const Shape& in = g.value(cur).shape;
  CQ_CHECK_MSG((in.rank() == 1 || in.rank() == 2) &&
                   in.dim(in.rank() - 1) == linear.in_features(),
               "tracer: linear " << label << " expects [..,"
                                 << linear.in_features() << "], got "
                                 << in.str());
  Node n;
  n.op = Op::kLinear;
  n.inputs = {cur};
  n.label = label;
  n.weight = linear.weight().value;
  if (linear.bias() != nullptr) {
    n.bias.resize(static_cast<std::size_t>(linear.out_features()));
    for (std::int64_t i = 0; i < linear.out_features(); ++i)
      n.bias[static_cast<std::size_t>(i)] = linear.bias()->value[i];
  }
  const Shape out = in.rank() == 1
                        ? Shape{linear.out_features()}
                        : Shape{in.dim(0), linear.out_features()};
  n.output = g.add_value(out, label);
  g.nodes.push_back(std::move(n));
  return g.nodes.back().output;
}

ValueId layernorm_node(Graph& g, nn::LayerNorm& ln, ValueId cur,
                       const std::string& label) {
  const Shape& in = g.value(cur).shape;
  CQ_CHECK_MSG(in.rank() >= 1 && in.dim(in.rank() - 1) == ln.dim(),
               "tracer: layernorm " << label << " dim mismatch on "
                                    << in.str());
  Node n;
  n.op = Op::kLayerNorm;
  n.inputs = {cur};
  n.label = label;
  n.bn_gamma = ln.gamma();
  n.bn_beta = ln.beta();
  n.bn_eps = ln.eps();
  n.output = g.add_value(in, label);
  g.nodes.push_back(std::move(n));
  return g.nodes.back().output;
}

ValueId trace_sequential(Graph& g, nn::Sequential& seq, ValueId cur,
                         const std::string& prefix) {
  for (std::size_t i = 0; i < seq.size(); ++i) {
    nn::Module& child = seq.child(i);
    cur = trace_module(g, child,
                       cur, prefix + std::to_string(i) + ":" +
                                child.type_name());
  }
  return cur;
}

ValueId trace_module(Graph& g, nn::Module& child, ValueId cur,
                     const std::string& label) {
  const Shape& in = g.value(cur).shape;

  if (auto* conv = dynamic_cast<nn::Conv2d*>(&child)) {
    const nn::Conv2dSpec& spec = conv->spec();
    CQ_CHECK_MSG(in.rank() == 3 && in.dim(0) == spec.in_channels,
                 "tracer: conv " << label << " expects [" << spec.in_channels
                                 << ",H,W], got " << in.str());
    ConvGeometry geo;
    geo.in_channels = spec.in_channels / spec.groups;
    geo.in_h = in.dim(1);
    geo.in_w = in.dim(2);
    geo.kernel_h = geo.kernel_w = spec.kernel;
    geo.stride = spec.stride;
    geo.pad = spec.pad;
    Node n;
    n.op = Op::kConv2d;
    n.inputs = {cur};
    n.label = label;
    n.conv = spec;
    n.weight = conv->weight().value;  // COW handle; passes detach on mutate
    n.output = g.add_value(Shape{spec.out_channels, geo.out_h(), geo.out_w()},
                           label);
    g.nodes.push_back(std::move(n));
    return g.nodes.back().output;
  }

  if (auto* bn = dynamic_cast<nn::BatchNorm2d*>(&child)) {
    CQ_CHECK_MSG(in.rank() == 3 && in.dim(0) == bn->channels(),
                 "tracer: batchnorm " << label << " channels mismatch on "
                                      << in.str());
    Node n;
    n.op = Op::kBatchNorm;
    n.inputs = {cur};
    n.label = label;
    n.bn_gamma = bn->gamma();
    n.bn_beta = bn->beta();
    n.bn_mean = bn->running_mean();
    n.bn_var = bn->running_var();
    n.bn_eps = bn->eps();
    n.output = g.add_value(in, label);
    g.nodes.push_back(std::move(n));
    return g.nodes.back().output;
  }

  if (auto* relu = dynamic_cast<nn::ReLU*>(&child)) {
    Node n;
    n.op = Op::kRelu;
    n.inputs = {cur};
    n.label = label;
    n.relu_cap = relu->cap();
    n.output = g.add_value(in, label);
    g.nodes.push_back(std::move(n));
    return g.nodes.back().output;
  }

  if (dynamic_cast<quant::ActQuant*>(&child) != nullptr) {
    // Serving drops fake quantization; the identity node records where it
    // stood (visible in a post-trace dump) until eliminate_identities runs.
    Node n;
    n.op = Op::kIdentity;
    n.inputs = {cur};
    n.label = label;
    n.output = g.add_value(in, label);
    g.nodes.push_back(std::move(n));
    return g.nodes.back().output;
  }

  if (auto* pool = dynamic_cast<nn::MaxPool2d*>(&child)) {
    CQ_CHECK_MSG(in.rank() == 3,
                 "tracer: maxpool " << label << " on " << in.str());
    const auto oh =
        (in.dim(1) + 2 * pool->pad() - pool->kernel()) / pool->stride() + 1;
    const auto ow =
        (in.dim(2) + 2 * pool->pad() - pool->kernel()) / pool->stride() + 1;
    Node n;
    n.op = Op::kMaxPool;
    n.inputs = {cur};
    n.label = label;
    n.pool_kernel = pool->kernel();
    n.pool_stride = pool->stride();
    n.pool_pad = pool->pad();
    n.output = g.add_value(Shape{in.dim(0), oh, ow}, label);
    g.nodes.push_back(std::move(n));
    return g.nodes.back().output;
  }

  if (dynamic_cast<nn::GlobalAvgPool*>(&child) != nullptr) {
    CQ_CHECK_MSG(in.rank() == 3, "tracer: gap " << label << " on " << in.str());
    Node n;
    n.op = Op::kGlobalAvgPool;
    n.inputs = {cur};
    n.label = label;
    n.output = g.add_value(Shape{in.dim(0)}, label);
    g.nodes.push_back(std::move(n));
    return g.nodes.back().output;
  }

  if (dynamic_cast<nn::Flatten*>(&child) != nullptr) {
    Node n;
    n.op = Op::kFlatten;
    n.inputs = {cur};
    n.label = label;
    n.output = g.add_value(Shape{in.numel()}, label);
    g.nodes.push_back(std::move(n));
    return g.nodes.back().output;
  }

  if (auto* linear = dynamic_cast<nn::Linear*>(&child))
    return linear_node(g, *linear, cur, label);

  if (auto* ln = dynamic_cast<nn::LayerNorm*>(&child))
    return layernorm_node(g, *ln, cur, label);

  if (dynamic_cast<nn::GELU*>(&child) != nullptr) {
    Node n;
    n.op = Op::kGelu;
    n.inputs = {cur};
    n.label = label;
    n.output = g.add_value(in, label);
    g.nodes.push_back(std::move(n));
    return g.nodes.back().output;
  }

  if (auto* pe = dynamic_cast<models::PatchEmbed*>(&child)) {
    const ConvGeometry& geo = pe->geometry();
    CQ_CHECK_MSG(in.rank() == 3 && in.dim(0) == geo.in_channels &&
                     in.dim(1) == geo.in_h && in.dim(2) == geo.in_w,
                 "tracer: patch_embed " << label << " geometry mismatch on "
                                        << in.str());
    Node n;
    n.op = Op::kPatchEmbed;
    n.inputs = {cur};
    n.label = label;
    n.conv.in_channels = geo.in_channels;
    n.conv.out_channels = pe->dim();
    n.conv.kernel = geo.kernel_h;
    n.conv.stride = geo.stride;
    n.conv.pad = 0;
    n.conv.groups = 1;
    n.weight = pe->proj().weight().value;
    if (pe->proj().bias() != nullptr) {
      n.bias.resize(static_cast<std::size_t>(pe->dim()));
      for (std::int64_t i = 0; i < pe->dim(); ++i)
        n.bias[static_cast<std::size_t>(i)] = pe->proj().bias()->value[i];
    }
    n.pos_embed = pe->pos().value;
    n.output = g.add_value(Shape{pe->seq(), pe->dim()}, label);
    g.nodes.push_back(std::move(n));
    return g.nodes.back().output;
  }

  if (auto* block = dynamic_cast<models::VitBlock*>(&child)) {
    // Mirror the eager forward node for node:
    //   x2 = x + proj(attn(qkv(ln1(x))));  y = actq(x2 + fc2(gelu(fc1(ln2))))
    CQ_CHECK_MSG(in.rank() == 2 && in.dim(1) == block->dim(),
                 "tracer: vit_block " << label << " expects [seq,"
                                      << block->dim() << "], got " << in.str());
    // `in` is a reference into g.values and dies on the first add_value
    // below; the block's activation shape is invariant, so copy it once.
    const Shape io = in;
    ValueId a = layernorm_node(g, block->ln1(), cur, label + ".ln1");
    a = linear_node(g, block->qkv(), a, label + ".qkv");
    Node attn;
    attn.op = Op::kAttnCore;
    attn.inputs = {a};
    attn.label = label + ".attn";
    attn.attn_heads = block->heads();
    attn.output = g.add_value(io, label + ".attn");
    g.nodes.push_back(std::move(attn));
    a = g.nodes.back().output;
    a = linear_node(g, block->proj(), a, label + ".proj");
    Node add1;
    add1.op = Op::kAdd;
    add1.inputs = {cur, a};
    add1.label = label + ".res1";
    add1.output = g.add_value(io, label + ".res1");
    g.nodes.push_back(std::move(add1));
    const ValueId x2 = g.nodes.back().output;
    ValueId b = layernorm_node(g, block->ln2(), x2, label + ".ln2");
    b = linear_node(g, block->fc1(), b, label + ".fc1");
    Node gelu;
    gelu.op = Op::kGelu;
    gelu.inputs = {b};
    gelu.label = label + ".gelu";
    gelu.output = g.add_value(g.value(b).shape, label + ".gelu");
    g.nodes.push_back(std::move(gelu));
    b = g.nodes.back().output;
    b = linear_node(g, block->fc2(), b, label + ".fc2");
    Node add2;
    add2.op = Op::kAdd;
    add2.inputs = {x2, b};
    add2.label = label + ".res2";
    add2.output = g.add_value(io, label + ".res2");
    g.nodes.push_back(std::move(add2));
    // The trailing ActQuant, as everywhere: an identity placeholder that
    // eliminate_identities drops.
    Node id;
    id.op = Op::kIdentity;
    id.inputs = {g.nodes.back().output};
    id.label = label + ".actq";
    id.output = g.add_value(io, label + ".actq");
    g.nodes.push_back(std::move(id));
    return g.nodes.back().output;
  }

  if (dynamic_cast<models::SeqMeanPool*>(&child) != nullptr) {
    CQ_CHECK_MSG(in.rank() == 2,
                 "tracer: seq_mean " << label << " on " << in.str());
    Node n;
    n.op = Op::kSeqMean;
    n.inputs = {cur};
    n.label = label;
    n.output = g.add_value(Shape{in.dim(1)}, label);
    g.nodes.push_back(std::move(n));
    return g.nodes.back().output;
  }

  if (auto* block = dynamic_cast<models::BasicBlock*>(&child)) {
    const ValueId main_out =
        trace_sequential(g, block->main_path(), cur, label + ".main.");
    ValueId skip_out = cur;  // identity skip
    if (block->shortcut_path() != nullptr)
      skip_out = trace_sequential(g, *block->shortcut_path(), cur,
                                  label + ".shortcut.");
    CQ_CHECK(g.value(main_out).shape == g.value(skip_out).shape);
    Node n;
    n.op = Op::kAdd;
    n.inputs = {main_out, skip_out};
    n.label = label;
    n.add_relu = true;
    n.output = g.add_value(g.value(main_out).shape, label);
    g.nodes.push_back(std::move(n));
    return g.nodes.back().output;
  }

  if (auto* block = dynamic_cast<models::InvertedResidual*>(&child)) {
    const ValueId body_out =
        trace_sequential(g, block->body(), cur, label + ".body.");
    if (!block->uses_residual()) return body_out;
    CQ_CHECK(g.value(body_out).shape == g.value(cur).shape);
    Node n;
    n.op = Op::kAdd;
    n.inputs = {body_out, cur};
    n.label = label;
    n.add_relu = false;
    n.output = g.add_value(g.value(body_out).shape, label);
    g.nodes.push_back(std::move(n));
    return g.nodes.back().output;
  }

  if (auto* seq = dynamic_cast<nn::Sequential*>(&child))
    return trace_sequential(g, *seq, cur, label + ".");

  CQ_CHECK_MSG(false, "graph tracer: unsupported module '"
                          << child.type_name() << "' at " << label);
}

}  // namespace

Graph trace(nn::Sequential& net, const Shape& sample_shape) {
  Graph g;
  g.input = g.add_value(sample_shape, "input");
  g.output = trace_sequential(g, net, g.input, "");
  CQ_CHECK_MSG(!g.nodes.empty(), "graph tracer: empty network");
  return g;
}

}  // namespace cq::graph
