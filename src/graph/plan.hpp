// Liveness-based arena planner: every intermediate value AND every node
// scratch buffer (im2col column matrices, GEMM outputs pending NCHW
// scatter, int8 packing buffers) gets an offset into ONE preallocated
// arena, sized for the plan's max batch width.
//
// Liveness is trivial on a topologically-ordered node list: a value is live
// from its producing step to its last consuming step; node scratch is live
// for exactly its own step. Placement is greedy best-fit in decreasing size
// order — for each buffer, scan the gaps left by already-placed,
// lifetime-overlapping buffers and take the lowest offset that fits. The
// greedy planner is not optimal, but on the ResNet chain (long thin
// lifetime chains, a few residual overlaps) it lands well under half the
// naive sum-of-buffers footprint; plan_arena() reports both numbers so the
// bench and README can state planned-vs-naive honestly.
//
// The graph input and output are EXTERNAL: the caller owns them (the serve
// batcher's collate buffer and the instance's output tensor), so they take
// no arena space and never alias intermediates.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/ir.hpp"

namespace cq::graph {

inline constexpr std::int64_t kArenaAlign = 64;  // cache line
/// value_offset entry for buffers the arena does not own (graph input /
/// output, values dead-code-eliminated before planning).
inline constexpr std::int64_t kExternalOffset = -1;

struct PlannedBuffer {
  std::int64_t bytes = 0;
  std::int64_t first = 0;       // first live step (producing node index)
  std::int64_t last = 0;        // last live step (last consumer)
  ValueId value = kNoValue;     // kNoValue: node scratch
  std::int64_t node = -1;       // producer (values) / owner (scratch)
  std::int64_t slot = -1;       // scratch slot index within the node
  std::int64_t offset = -1;     // assigned by assign_offsets
};

/// Greedy size-descending best-fit placement over the buffers' live
/// intervals; fills every `offset` and returns the peak (unaligned) byte
/// watermark. Exposed separately so the randomized-lifetime no-overlap
/// property test can drive it without a graph.
std::int64_t assign_offsets(std::vector<PlannedBuffer>& buffers,
                            std::int64_t align);

struct ArenaPlan {
  std::vector<PlannedBuffer> buffers;
  /// Per ValueId arena offset; kExternalOffset for input/output/orphans.
  std::vector<std::int64_t> value_offset;
  /// Per node: arena offset of each scratch slot (node_scratch_bytes order).
  std::vector<std::vector<std::int64_t>> scratch_offset;
  std::int64_t arena_bytes = 0;  // planned peak, kArenaAlign-rounded
  std::int64_t naive_bytes = 0;  // every buffer allocated privately
};

/// Per-slot scratch bytes node `i` needs at batch width `batch`. Slot order
/// is the executor's contract: fp32 conv {cols, gout}; int8 conv {cols_f,
/// gout, col_scale, col_inv, packed_b}; int8 linear {in_scale, in_inv,
/// gout, packed_b}; everything else has none.
std::vector<std::int64_t> node_scratch_bytes(const Graph& g, std::size_t i,
                                             std::int64_t batch);

ArenaPlan plan_arena(const Graph& g, std::int64_t max_batch);

/// Deterministic batch partition for the executor's parallel per-image
/// loops (DESIGN.md §14). Every batched buffer the plan allocates is
/// image-strided — image `img` owns elements [img*stride, (img+1)*stride)
/// of each scratch slot — so slice s of `parts` even contiguous slices
/// touches arena bytes disjoint from every other slice. The split is a pure
/// function of (batch, parts): the first batch%parts slices get one extra
/// image, independent of pool size or scheduling, so parallel execution
/// stays bitwise-identical to serial.
struct ImageSlice {
  std::int64_t begin = 0;
  std::int64_t end = 0;  // exclusive
};
ImageSlice image_slice(std::int64_t batch, std::int64_t parts, std::int64_t s);

/// dump() with per-node arena offsets appended.
std::string dump(const Graph& g, const ArenaPlan& plan);

}  // namespace cq::graph
