#include "graph/executor.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>

#include "core/threadpool.hpp"
#include "core/trace.hpp"
#include "deploy/int8.hpp"
#include "graph/tracer.hpp"
#include "models/vit.hpp"
#include "nn/layernorm.hpp"
#include "tensor/im2col.hpp"
#include "tensor/kernels/igemm.hpp"
#include "tensor/kernels/kernels.hpp"
#include "util/check.hpp"

namespace cq::graph {

namespace {

// Batch-parallel dispatch (DESIGN.md §14): split the batch into the
// deterministic image slices plan.cpp defines — every batched value and
// scratch slot is image-strided, so slices touch disjoint arena bytes — and
// run each slice's images on a pool worker. Inline (the exact serial loop)
// at pool size 1 or batch 1; allocation-free either way, preserving the
// ZeroAllocSteadyState contract.
template <typename F>
void for_each_image(std::int64_t n, F&& fn) {
  core::ThreadPool& pool = core::ThreadPool::instance();
  const std::int64_t parts = std::min<std::int64_t>(
      n, static_cast<std::int64_t>(pool.size()) *
             core::ThreadPool::kChunksPerThread);
  pool.parallel_for(parts, 1, [&](std::int64_t s0, std::int64_t s1) {
    for (std::int64_t s = s0; s < s1; ++s) {
      const ImageSlice sl = image_slice(n, parts, s);
      for (std::int64_t img = sl.begin; img < sl.end; ++img) fn(img);
    }
  });
}

ConvGeometry conv_geometry(const Node& n, const Shape& in) {
  ConvGeometry g;
  g.in_channels = n.conv.in_channels / n.conv.groups;
  g.in_h = in.dim(1);
  g.in_w = in.dim(2);
  g.kernel_h = g.kernel_w = n.conv.kernel;
  g.stride = n.conv.stride;
  g.pad = n.conv.pad;
  return g;
}

bool is_int8(const Graph& g) {
  for (const Node& n : g.nodes)
    if ((n.op == Op::kConv2d || n.op == Op::kLinear) &&
        n.precision == Precision::kInt8)
      return true;
  return false;
}

}  // namespace

CompiledModel::CompiledModel(Graph g, std::int64_t max_batch)
    : graph_(std::move(g)), max_batch_(max_batch) {
  CQ_CHECK(max_batch_ >= 1);
  for (const Node& n : graph_.nodes)
    CQ_CHECK_MSG(n.op != Op::kBatchNorm && n.op != Op::kIdentity &&
                     n.op != Op::kFlatten,
                 "CompiledModel: graph still contains " << op_name(n.op)
                     << " (" << n.label << ") — run the pass pipeline first");
  plan_ = plan_arena(graph_, max_batch_);
  arena_.resize(static_cast<std::size_t>(plan_.arena_bytes + kArenaAlign));
  base_ = arena_.data();
  const auto misalign =
      reinterpret_cast<std::uintptr_t>(base_) % kArenaAlign;
  if (misalign != 0) base_ += kArenaAlign - misalign;

  // Prepack weights: the compiled plan never touches raw weight bytes on
  // the forward path (fp32 conv weights stay row-major — gemm packs them
  // per cache block internally, amortized across the whole batch).
  state_.resize(graph_.nodes.size());
  for (std::size_t i = 0; i < graph_.nodes.size(); ++i) {
    const Node& node = graph_.nodes[i];
    NodeState& st = state_[i];
    if (node.op != Op::kConv2d && node.op != Op::kLinear &&
        node.op != Op::kPatchEmbed)
      continue;
    const Tensor& w = node.weight;
    const std::int64_t rows = w.dim(0), cols = w.dim(1);
    st.bias = node.bias;
    if (st.bias.empty()) st.bias.assign(static_cast<std::size_t>(rows), 0.0f);

    if (node.precision == Precision::kInt8) {
      quantize_int8_weights(i, nullptr);
    } else if (node.op == Op::kLinear || node.op == Op::kPatchEmbed) {
      // Single-k-panel shapes prepack into gemm's sliver layout once;
      // gemm_prepacked_b is bit-identical to gemm(kNT) on the raw weight.
      if (cols <= gemm::kKC && rows <= gemm::kNC) {
        st.packed_b.resize(
            static_cast<std::size_t>(gemm::packed_b_floats(cols, rows)));
        gemm::detail::pack_block_b(gemm::Trans::kNT, cols, rows, w.data(),
                                   st.packed_b.data(), nullptr);
      }
    }
  }
}

void CompiledModel::quantize_int8_weights(std::size_t i, const float* scales) {
  // Verbatim the deploy::Int8Network ctor recipe: per-output-channel
  // symmetric weights, igemm-packed per group with row sums — except the
  // scale itself may come from the caller (CPT-V calibration) instead of
  // the min-max default.
  const Node& node = graph_.nodes[i];
  NodeState& st = state_[i];
  const Tensor& w = node.weight;
  const std::int64_t rows = w.dim(0), cols = w.dim(1);
  const std::int64_t groups = node.op == Op::kConv2d ? node.conv.groups : 1;
  const std::int64_t rows_g = rows / groups;
  st.scales.resize(static_cast<std::size_t>(rows));
  st.rowsum.resize(static_cast<std::size_t>(rows));
  std::vector<std::int8_t> wq(static_cast<std::size_t>(rows * cols));
  for (std::int64_t r = 0; r < rows; ++r) {
    float scale;
    if (scales != nullptr) {
      scale = scales[r];
    } else {
      float max_abs = 0.0f;
      for (std::int64_t c = 0; c < cols; ++c)
        max_abs = std::max(max_abs, std::fabs(w.data()[r * cols + c]));
      scale = max_abs > 0.0f ? max_abs / 127.0f : 1.0f;
    }
    CQ_CHECK_MSG(scale > 0.0f, "non-positive weight scale for channel " << r
                                   << " of " << node.label);
    st.scales[static_cast<std::size_t>(r)] = scale;
    deploy::detail::quantize_buffer(w.data() + r * cols, cols, 1.0f / scale,
                                    wq.data() + r * cols);
  }
  st.pa_group = igemm::packed_a_bytes(rows_g, cols);
  st.packed_a.resize(static_cast<std::size_t>(groups * st.pa_group));
  for (std::int64_t grp = 0; grp < groups; ++grp)
    igemm::pack_a_s8(wq.data() + grp * rows_g * cols, rows_g, cols,
                     st.packed_a.data() + grp * st.pa_group,
                     st.rowsum.data() + grp * rows_g);
}

std::vector<std::size_t> CompiledModel::int8_nodes() const {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < graph_.nodes.size(); ++i) {
    const Node& n = graph_.nodes[i];
    if ((n.op == Op::kConv2d || n.op == Op::kLinear) &&
        n.precision == Precision::kInt8)
      out.push_back(i);
  }
  return out;
}

void CompiledModel::requantize_node(std::size_t i,
                                    const std::vector<float>& scales) {
  CQ_CHECK_MSG(i < graph_.nodes.size(), "requantize_node: bad index " << i);
  const Node& node = graph_.nodes[i];
  CQ_CHECK_MSG((node.op == Op::kConv2d || node.op == Op::kLinear) &&
                   node.precision == Precision::kInt8,
               "requantize_node: " << node.label << " is not an int8 node");
  CQ_CHECK_MSG(static_cast<std::int64_t>(scales.size()) == node.weight.dim(0),
               "requantize_node: " << node.label << " expects "
                                   << node.weight.dim(0) << " scales, got "
                                   << scales.size());
  quantize_int8_weights(i, scales.data());
}

const float* CompiledModel::in_ptr(ValueId id, const Tensor& x) const {
  if (id == graph_.input) return x.data();
  if (id == graph_.output) return out_.data();
  const std::int64_t off = plan_.value_offset[static_cast<std::size_t>(id)];
  CQ_CHECK_MSG(off != kExternalOffset,
               "unplanned value %" << id << " read by the executor");
  return reinterpret_cast<const float*>(base_ + off);
}

float* CompiledModel::out_value_ptr(ValueId id) {
  if (id == graph_.output) return out_.data();
  const std::int64_t off = plan_.value_offset[static_cast<std::size_t>(id)];
  CQ_CHECK_MSG(off != kExternalOffset,
               "unplanned value %" << id << " written by the executor");
  return arena_ptr(off);
}

const Tensor& CompiledModel::forward(const Tensor& x) {
  const std::int64_t n = x.dim(0);
  CQ_CHECK_MSG(n >= 1 && n <= max_batch_,
               "compiled plan built for max_batch " << max_batch_
                   << ", got batch " << n);
  CQ_CHECK(x.numel() == n * graph_.value(graph_.input).shape.numel());
  CQ_TRACE_SCOPE_N("graph.forward", n);

  {
    const Shape& os = graph_.value(graph_.output).shape;
    std::vector<std::int64_t> dims;
    dims.reserve(os.rank() + 1);
    dims.push_back(n);
    for (std::size_t d = 0; d < os.rank(); ++d)
      dims.push_back(os.dim(static_cast<std::int64_t>(d)));
    out_.resize(Shape{std::move(dims)});
  }
  const bool int8_plan = is_int8(graph_);

  for (std::size_t i = 0; i < graph_.nodes.size(); ++i) {
    const Node& node = graph_.nodes[i];
    const NodeState& st = state_[i];
    const auto& scratch = plan_.scratch_offset[i];
    const Shape& ishape = graph_.value(node.inputs[0]).shape;
    const float* in_p = in_ptr(node.inputs[0], x);
    float* out_p = out_value_ptr(node.output);

    switch (node.op) {
      case Op::kConv2d: {
        const ConvGeometry geo = conv_geometry(node, ishape);
        const auto oh = geo.out_h(), ow = geo.out_w();
        const auto spatial = oh * ow;
        const auto krows = geo.col_rows();
        const auto cout_g = node.conv.out_channels / node.conv.groups;
        const auto cin_g = geo.in_channels;
        const auto cols = n * spatial;
        const auto in_h = geo.in_h, in_w = geo.in_w;
        const std::int64_t sample_in = node.conv.in_channels * in_h * in_w;

        if (node.precision == Precision::kInt8) {
          CQ_TRACE_SCOPE_N("graph.node.conv_int8", n);
          float* cols_f = arena_ptr(scratch[0]);
          float* gout = arena_ptr(scratch[1]);
          float* col_scale = arena_ptr(scratch[2]);
          float* col_inv = arena_ptr(scratch[3]);
          auto* bp = reinterpret_cast<std::uint8_t*>(base_ + scratch[4]);

          // Image i owns columns [i*spatial, (i+1)*spatial): every one of
          // its columns quantizes with that image's scale, whatever the
          // batch width (deploy/int8.cpp's batch-invariance contract).
          for_each_image(n, [&](std::int64_t img) {
            const float in_scale = deploy::detail::sample_scale(
                in_p + img * sample_in, sample_in);
            const float inv = 1.0f / in_scale;
            for (std::int64_t s = 0; s < spatial; ++s) {
              col_scale[img * spatial + s] = in_scale;
              col_inv[img * spatial + s] = inv;
            }
          });
          igemm::Epilogue ep;
          ep.col_scale = col_scale;
          for (std::int64_t grp = 0; grp < node.conv.groups; ++grp) {
            im2col_batched(in_p + grp * cin_g * in_h * in_w, n, sample_in,
                           geo, cols_f, cols);
            igemm::pack_b_quantized(cols_f, /*rs=*/cols, /*cs=*/1, krows,
                                    cols, col_inv, bp);
            ep.row_scale = st.scales.data() + grp * cout_g;
            ep.bias = st.bias.data() + grp * cout_g;
            igemm::gemm(cout_g, cols, krows,
                        st.packed_a.data() + grp * st.pa_group,
                        st.rowsum.data() + grp * cout_g, bp, gout,
                        /*ldc=*/cols, ep);
            // Scatter: output channel oc writes disjoint NCHW rows, so the
            // oc range splits across workers (pure copies, identical bytes).
            const std::int64_t sg =
                std::max<std::int64_t>(1, (std::int64_t{1} << 14) / cols);
            core::parallel_for(cout_g, sg, [&](std::int64_t o0,
                                               std::int64_t o1) {
              for (std::int64_t oc_local = o0; oc_local < o1; ++oc_local) {
                const float* src = gout + oc_local * cols;
                const std::int64_t oc = grp * cout_g + oc_local;
                if (spatial == 1) {
                  for (std::int64_t img = 0; img < n; ++img)
                    out_p[img * node.conv.out_channels + oc] = src[img];
                } else {
                  for (std::int64_t img = 0; img < n; ++img)
                    std::memcpy(
                        out_p + (img * node.conv.out_channels + oc) * spatial,
                        src + img * spatial,
                        static_cast<std::size_t>(spatial) * sizeof(float));
                }
              }
            });
          }
          break;
        }

        CQ_TRACE_SCOPE_N("graph.node.conv", n);
        const bool patch_major = node.lowering == ConvLowering::kIm2row;
        float* cols_buf = arena_ptr(scratch[0]);
        float* gout = arena_ptr(scratch[1]);
        gemm::Epilogue ep;
        ep.bias_kind = gemm::Epilogue::Bias::kPerRow;
        ep.act = node.act;
        ep.cap = node.act_cap;
        for (std::int64_t grp = 0; grp < node.conv.groups; ++grp) {
          {
            CQ_TRACE_SCOPE_N("serve.lower", n);
            // Image img writes cols_buf slice img*spatial*krows (im2row) or
            // the img*spatial column band (im2col) — disjoint either way.
            for_each_image(n, [&](std::int64_t img) {
              const float* src =
                  in_p + img * sample_in + grp * cin_g * in_h * in_w;
              if (patch_major)
                im2row(src, geo, cols_buf + img * spatial * krows);
              else
                im2col(src, geo, cols_buf + img * spatial, cols);
            });
          }
          ep.bias = st.bias.data() + grp * cout_g;
          gemm::gemm(patch_major ? gemm::Trans::kNT : gemm::Trans::kNN,
                     cout_g, cols, krows,
                     node.weight.data() + grp * cout_g * krows, cols_buf,
                     gout, /*accumulate=*/false, ep);
          const std::int64_t sg =
              std::max<std::int64_t>(1, (std::int64_t{1} << 14) / cols);
          core::parallel_for(cout_g, sg, [&](std::int64_t o0,
                                             std::int64_t o1) {
            for (std::int64_t oc_local = o0; oc_local < o1; ++oc_local) {
              const float* src = gout + oc_local * cols;
              const std::int64_t oc = grp * cout_g + oc_local;
              if (spatial == 1) {
                for (std::int64_t img = 0; img < n; ++img)
                  out_p[img * node.conv.out_channels + oc] = src[img];
              } else {
                for (std::int64_t img = 0; img < n; ++img)
                  std::memcpy(
                      out_p + (img * node.conv.out_channels + oc) * spatial,
                      src + img * spatial,
                      static_cast<std::size_t>(spatial) * sizeof(float));
              }
            }
          });
        }
        break;
      }

      case Op::kLinear: {
        const std::int64_t in = node.weight.dim(1), out = node.weight.dim(0);
        // Rank-2 per-sample inputs ([seq, in], the ViT token Linears) are
        // just more GEMM rows; rank-1 feature rows keep rows == n. Every row
        // lives inside one sample, so per-row scales stay batch-invariant.
        const std::int64_t rows = n * (ishape.numel() / in);
        if (node.precision == Precision::kInt8) {
          CQ_TRACE_SCOPE_N("graph.node.linear_int8", n);
          float* in_scale = arena_ptr(scratch[0]);
          float* in_inv = arena_ptr(scratch[1]);
          float* gout = arena_ptr(scratch[2]);
          auto* bp = reinterpret_cast<std::uint8_t*>(base_ + scratch[3]);
          for_each_image(rows, [&](std::int64_t s) {
            in_scale[s] = deploy::detail::sample_scale(in_p + s * in, in);
            in_inv[s] = 1.0f / in_scale[s];
          });
          igemm::pack_b_quantized(in_p, /*rs=*/1, /*cs=*/in, in, rows, in_inv,
                                  bp);
          igemm::Epilogue ep;
          ep.row_scale = st.scales.data();
          ep.col_scale = in_scale;
          ep.bias = st.bias.data();
          igemm::gemm(out, rows, in, st.packed_a.data(), st.rowsum.data(), bp,
                      gout, /*ldc=*/rows, ep);
          for_each_image(rows, [&](std::int64_t s) {  // transpose [out, rows]
            for (std::int64_t r = 0; r < out; ++r)
              out_p[s * out + r] = gout[r * rows + s];
          });
          break;
        }
        CQ_TRACE_SCOPE_N("graph.node.linear", n);
        gemm::Epilogue ep;
        ep.bias = st.bias.data();
        ep.bias_kind = gemm::Epilogue::Bias::kPerCol;
        ep.act = node.act;
        ep.cap = node.act_cap;
        if (!st.packed_b.empty())
          gemm::gemm_prepacked_b(rows, out, in, in_p, st.packed_b.data(),
                                 out_p, /*accumulate=*/false, ep);
        else
          gemm::gemm(gemm::Trans::kNT, rows, out, in, in_p, node.weight.data(),
                     out_p, /*accumulate=*/false, ep);
        break;
      }

      case Op::kPatchEmbed: {
        CQ_TRACE_SCOPE_N("graph.node.patch_embed", n);
        const ConvGeometry geo = conv_geometry(node, ishape);
        const std::int64_t seq = geo.col_cols();
        const std::int64_t krows = geo.col_rows();
        const std::int64_t dim = node.conv.out_channels;
        const std::int64_t sample_in =
            node.conv.in_channels * geo.in_h * geo.in_w;
        float* patches = arena_ptr(scratch[0]);
        // Image img owns patch rows [img*seq, (img+1)*seq) — disjoint.
        for_each_image(n, [&](std::int64_t img) {
          im2row(in_p + img * sample_in, geo, patches + img * seq * krows);
        });
        gemm::Epilogue ep;
        ep.bias = st.bias.data();
        ep.bias_kind = gemm::Epilogue::Bias::kPerCol;
        const std::int64_t rows = n * seq;
        if (!st.packed_b.empty())
          gemm::gemm_prepacked_b(rows, dim, krows, patches,
                                 st.packed_b.data(), out_p,
                                 /*accumulate=*/false, ep);
        else
          gemm::gemm(gemm::Trans::kNT, rows, dim, krows, patches,
                     node.weight.data(), out_p, /*accumulate=*/false, ep);
        const float* pos = node.pos_embed.data();
        for_each_image(n, [&](std::int64_t img) {
          float* dst = out_p + img * seq * dim;
          for (std::int64_t j = 0; j < seq * dim; ++j) dst[j] += pos[j];
        });
        break;
      }

      case Op::kLayerNorm: {
        CQ_TRACE_SCOPE_N("graph.node.layernorm", n);
        const std::int64_t cols = node.bn_gamma.numel();
        const std::int64_t rows_per = ishape.numel() / cols;
        const float* gamma = node.bn_gamma.data();
        const float* beta = node.bn_beta.data();
        // Row-independent arithmetic: any per-image split matches the eager
        // whole-batch call bit for bit (shared nn::detail::layernorm_rows).
        for_each_image(n, [&](std::int64_t img) {
          nn::detail::layernorm_rows(in_p + img * rows_per * cols,
                                     out_p + img * rows_per * cols, rows_per,
                                     cols, gamma, beta, node.bn_eps,
                                     /*xhat=*/nullptr, /*inv_std=*/nullptr);
        });
        break;
      }

      case Op::kGelu: {
        CQ_TRACE_SCOPE_N("graph.node.gelu", n);
        const std::int64_t count = n * ishape.numel();
        // Elementwise and position-independent, like kRelu above: the vector
        // and scalar-tail lanes are bit-identical, so any contiguous split
        // reproduces the eager single-call output.
        core::parallel_for(count, 1 << 14, [&](std::int64_t b,
                                               std::int64_t e) {
          kernels::gelu(in_p + b, out_p + b, e - b);
        });
        break;
      }

      case Op::kAttnCore: {
        CQ_TRACE_SCOPE_N("graph.node.attn", n);
        const Shape& oshape = graph_.value(node.output).shape;
        const std::int64_t seq = oshape.dim(0), dim = oshape.dim(1);
        const std::int64_t heads = node.attn_heads;
        const std::int64_t per =
            3 * seq * dim +
            models::detail::attention_scratch_floats(seq, dim, heads);
        float* buf = arena_ptr(scratch[0]);
        // Each image gets its own q/k/v + score scratch slice, so the
        // batch-parallel sweep shares nothing across workers; the shared
        // attention_forward helper keeps compiled == eager bitwise.
        for_each_image(n, [&](std::int64_t img) {
          float* qh = buf + img * per;
          float* kh = qh + seq * dim;
          float* vh = kh + seq * dim;
          float* sc = vh + seq * dim;
          models::detail::attention_forward(in_p + img * seq * 3 * dim, seq,
                                            dim, heads, qh, kh, vh,
                                            /*probs=*/nullptr, sc,
                                            out_p + img * seq * dim);
        });
        break;
      }

      case Op::kSeqMean: {
        CQ_TRACE_SCOPE_N("graph.node.seq_mean", n);
        const std::int64_t seq = ishape.dim(0), dim = ishape.dim(1);
        for_each_image(n, [&](std::int64_t img) {
          models::detail::seq_mean_forward(in_p + img * seq * dim, seq, dim,
                                           out_p + img * dim);
        });
        break;
      }

      case Op::kRelu: {
        CQ_TRACE_SCOPE_N("graph.node.relu", n);
        const std::int64_t count = n * ishape.numel();
        // Elementwise: any contiguous split computes identical values. The
        // kernels:: entry points are position-independent, so handing each
        // worker a subrange matches the single serial call bit for bit.
        core::parallel_for(count, 1 << 14, [&](std::int64_t b,
                                               std::int64_t e) {
          if (int8_plan) {  // eager Int8Network runs the kernels:: pass
            if (node.relu_cap > 0.0f)
              kernels::relu_cap(in_p + b, out_p + b, e - b, node.relu_cap);
            else
              kernels::relu(in_p + b, out_p + b, e - b);
          } else {  // eager Fp32Network's plain clipping loop
            for (std::int64_t j = b; j < e; ++j) {
              float v = in_p[j] > 0.0f ? in_p[j] : 0.0f;
              if (node.relu_cap > 0.0f && v > node.relu_cap) v = node.relu_cap;
              out_p[j] = v;
            }
          }
        });
        break;
      }

      case Op::kMaxPool: {
        CQ_TRACE_SCOPE_N("graph.node.maxpool", n);
        const auto c = ishape.dim(0), h = ishape.dim(1), w = ishape.dim(2);
        const auto k = node.pool_kernel, stride = node.pool_stride,
                   pad = node.pool_pad;
        const auto oh = (h + 2 * pad - k) / stride + 1;
        const auto ow = (w + 2 * pad - k) / stride + 1;
        // Plane (img, ch) owns output [pl*oh*ow, (pl+1)*oh*ow): each plane's
        // max reduction is self-contained, so planes split across workers.
        core::parallel_for(n * c, 1, [&](std::int64_t p0, std::int64_t p1) {
          for (std::int64_t pl = p0; pl < p1; ++pl) {
            const float* plane = in_p + pl * h * w;
            std::int64_t o = pl * oh * ow;
            for (std::int64_t oy = 0; oy < oh; ++oy)
              for (std::int64_t ox = 0; ox < ow; ++ox, ++o) {
                float best = -std::numeric_limits<float>::infinity();
                for (std::int64_t ky = 0; ky < k; ++ky)
                  for (std::int64_t kx = 0; kx < k; ++kx) {
                    const auto iy = oy * stride + ky - pad;
                    const auto ix = ox * stride + kx - pad;
                    if (iy < 0 || iy >= h || ix < 0 || ix >= w) continue;
                    best = std::max(best, plane[iy * w + ix]);
                  }
                out_p[o] = best;
              }
          }
        });
        break;
      }

      case Op::kGlobalAvgPool: {
        CQ_TRACE_SCOPE_N("graph.node.gap", n);
        const auto c = ishape.dim(0), spatial = ishape.dim(1) * ishape.dim(2);
        // One double accumulator per plane, never split mid-plane, so the
        // summation order is partition-independent.
        core::parallel_for(n * c, 8, [&](std::int64_t p0, std::int64_t p1) {
          for (std::int64_t pl = p0; pl < p1; ++pl) {
            const float* plane = in_p + pl * spatial;
            double s = 0.0;
            for (std::int64_t j = 0; j < spatial; ++j) s += plane[j];
            out_p[pl] = static_cast<float>(s / spatial);
          }
        });
        break;
      }

      case Op::kAdd: {
        CQ_TRACE_SCOPE_N("graph.node.add", n);
        const float* a = in_p;
        const float* b = in_ptr(node.inputs[1], x);
        const std::int64_t count = n * ishape.numel();
        core::parallel_for(count, 1 << 14, [&](std::int64_t j0,
                                               std::int64_t j1) {
          if (int8_plan) {  // eager residual: in-place add_, then kernels relu
            for (std::int64_t j = j0; j < j1; ++j) out_p[j] = a[j] + b[j];
            if (node.add_relu) kernels::relu(out_p + j0, out_p + j0, j1 - j0);
          } else if (node.add_relu) {
            for (std::int64_t j = j0; j < j1; ++j) {
              const float v = a[j] + b[j];
              out_p[j] = v > 0.0f ? v : 0.0f;
            }
          } else {
            for (std::int64_t j = j0; j < j1; ++j) out_p[j] = a[j] + b[j];
          }
        });
        break;
      }

      default:
        CQ_CHECK_MSG(false, "executor: unexpected op " << op_name(node.op));
    }
  }
  return out_;
}

CompiledModel compile(nn::Sequential& net, const Shape& sample_shape,
                      const CompileOptions& opts) {
  CQ_TRACE_SCOPE("graph.compile");
  Graph g = trace(net, sample_shape);
  std::vector<PassResult> log;
  if (opts.run_passes) log = run_default_passes(g, opts.precision);
  CompiledModel model(std::move(g), opts.max_batch);
  model.pass_log_ = std::move(log);
  return model;
}

}  // namespace cq::graph
