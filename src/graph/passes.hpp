// Compiler passes over the graph IR.
//
// Each pass is a standalone Graph -> Graph rewrite returning how many nodes
// it changed or removed, so tests can run the pipeline one pass at a time
// and pin bitwise equivalence after every stage. run_default_passes() is the
// canonical order:
//
//   eliminate_identities   drop ActQuant placeholders and Flatten adapters
//   fold_batchnorm         conv+BN -> conv with folded weight/bias
//   [lower_int8]           (int8 plans) mark conv/linear for the igemm path
//   fuse_epilogues         fp32 conv/linear + ReLU -> fused GEMM epilogue
//   select_conv_lowering   im2row+kNT vs im2col+kNN by layer geometry
//   eliminate_dead_ops     drop nodes unreachable from the graph output
//
// Epilogue fusion is fp32-only: the int8 epilogue (igemm::Epilogue) carries
// scales and bias but no activation, and the eager Int8Network runs ReLU as
// a separate kernels:: pass — the compiled plan must match it bitwise.
//
// Every pass records a "graph.pass.<name>" span in the aggregate profiler
// (and the span tracer when enabled), so compile time is attributable
// per pass in BENCH_compile.json.
#pragma once

#include <cstddef>
#include <vector>

#include "graph/ir.hpp"

namespace cq::graph {

std::size_t eliminate_identities(Graph& g);
std::size_t fold_batchnorm(Graph& g);
std::size_t lower_int8(Graph& g);
std::size_t fuse_epilogues(Graph& g);
std::size_t select_conv_lowering(Graph& g);
std::size_t eliminate_dead_ops(Graph& g);

struct PassResult {
  const char* name = nullptr;
  std::size_t changed = 0;      // nodes rewritten or removed
  std::size_t nodes_after = 0;  // graph size once the pass ran
};

std::vector<PassResult> run_default_passes(Graph& g, Precision precision);

}  // namespace cq::graph
