#include "graph/passes.hpp"

#include <string>

#include "core/trace.hpp"
#include "deploy/int8.hpp"
#include "util/check.hpp"

namespace cq::graph {

std::size_t eliminate_identities(Graph& g) {
  std::vector<bool> dead(g.nodes.size(), false);
  std::size_t removed = 0;
  // In-order walk: rewiring node i's consumers before visiting them means a
  // chain identity(identity(x)) collapses in one pass.
  for (std::size_t i = 0; i < g.nodes.size(); ++i) {
    Node& n = g.nodes[i];
    if (n.op != Op::kIdentity && n.op != Op::kFlatten) continue;
    g.replace_uses(n.output, n.inputs[0]);
    dead[i] = true;
    ++removed;
  }
  g.erase_nodes(dead);
  return removed;
}

std::size_t fold_batchnorm(Graph& g) {
  std::vector<bool> dead(g.nodes.size(), false);
  std::size_t folded = 0;
  for (std::size_t i = 0; i < g.nodes.size(); ++i) {
    Node& bn = g.nodes[i];
    if (bn.op != Op::kBatchNorm) continue;
    const ValueId in = bn.inputs[0];
    const std::int64_t p = g.producer(in);
    // Fold only when this BN is the conv's sole consumer: another reader of
    // the raw conv output would otherwise see folded values.
    if (p < 0 || g.nodes[static_cast<std::size_t>(p)].op != Op::kConv2d ||
        dead[static_cast<std::size_t>(p)] || g.use_count(in) != 1)
      continue;
    Node& conv = g.nodes[static_cast<std::size_t>(p)];
    CQ_CHECK_MSG(conv.weight.dim(0) == bn.bn_gamma.numel(),
                 "fold_batchnorm: channel mismatch at " << bn.label);
    deploy::fold_batchnorm_arrays(bn.bn_gamma.data(), bn.bn_beta.data(),
                                  bn.bn_mean.data(), bn.bn_var.data(),
                                  bn.bn_eps, conv.weight, conv.bias);
    g.replace_uses(bn.output, conv.output);
    dead[i] = true;
    ++folded;
  }
  g.erase_nodes(dead);
  return folded;
}

std::size_t lower_int8(Graph& g) {
  std::size_t lowered = 0;
  for (Node& n : g.nodes) {
    if (n.op != Op::kConv2d && n.op != Op::kLinear) continue;
    if (n.precision == Precision::kInt8) continue;
    n.precision = Precision::kInt8;
    ++lowered;
  }
  return lowered;
}

std::size_t fuse_epilogues(Graph& g) {
  std::vector<bool> dead(g.nodes.size(), false);
  std::size_t fused = 0;
  for (std::size_t i = 0; i < g.nodes.size(); ++i) {
    Node& relu = g.nodes[i];
    if (relu.op != Op::kRelu) continue;
    const ValueId in = relu.inputs[0];
    const std::int64_t p = g.producer(in);
    if (p < 0) continue;
    Node& prod = g.nodes[static_cast<std::size_t>(p)];
    if ((prod.op != Op::kConv2d && prod.op != Op::kLinear) ||
        dead[static_cast<std::size_t>(p)] ||
        prod.precision != Precision::kF32 ||
        prod.act != gemm::Epilogue::Act::kNone || g.use_count(in) != 1)
      continue;
    prod.act = relu.relu_cap > 0.0f ? gemm::Epilogue::Act::kReluCap
                                    : gemm::Epilogue::Act::kRelu;
    prod.act_cap = relu.relu_cap;
    g.replace_uses(relu.output, in);
    dead[i] = true;
    ++fused;
  }
  g.erase_nodes(dead);
  return fused;
}

std::size_t select_conv_lowering(Graph& g) {
  std::size_t decided = 0;
  for (Node& n : g.nodes) {
    if (n.op != Op::kConv2d) continue;
    const Shape& out = g.value(n.output).shape;
    const std::int64_t spatial = out.dim(1) * out.dim(2);
    // Same geometry-only rule as the eager paths (serve/fp32.cpp,
    // deploy/int8.cpp): the choice never depends on batch width, so batched
    // and serial forwards stay bitwise identical. The int8 path always
    // lowers im2col — pack_b_quantized consumes the row-major column
    // matrix directly.
    ConvLowering want = ConvLowering::kIm2col;
    if (n.precision == Precision::kF32 && spatial <= 16)
      want = ConvLowering::kIm2row;
    if (n.lowering != want) {
      n.lowering = want;
      ++decided;
    }
  }
  return decided;
}

std::size_t eliminate_dead_ops(Graph& g) {
  // Nodes are in topological order, so one reverse sweep propagates
  // liveness from the graph output through every needed input.
  std::vector<bool> needed(g.values.size(), false);
  if (g.output != kNoValue) needed[static_cast<std::size_t>(g.output)] = true;
  std::vector<bool> dead(g.nodes.size(), false);
  std::size_t removed = 0;
  for (std::size_t i = g.nodes.size(); i-- > 0;) {
    const Node& n = g.nodes[i];
    if (n.output == kNoValue || !needed[static_cast<std::size_t>(n.output)]) {
      dead[i] = true;
      ++removed;
      continue;
    }
    for (ValueId in : n.inputs) needed[static_cast<std::size_t>(in)] = true;
  }
  g.erase_nodes(dead);
  return removed;
}

std::vector<PassResult> run_default_passes(Graph& g, Precision precision) {
  std::vector<PassResult> results;
  const auto run = [&](const char* name, std::size_t (*pass)(Graph&)) {
    prof::Counter& c =
        prof::Counter::intern(std::string("graph.pass.") + name);
    trace::Scope span(c, c.name());
    const std::size_t changed = pass(g);
    results.push_back(PassResult{name, changed, g.nodes.size()});
  };
  run("eliminate_identities", eliminate_identities);
  run("fold_batchnorm", fold_batchnorm);
  if (precision == Precision::kInt8) run("lower_int8", lower_int8);
  run("fuse_epilogues", fuse_epilogues);
  run("select_conv_lowering", select_conv_lowering);
  run("eliminate_dead_ops", eliminate_dead_ops);
  return results;
}

}  // namespace cq::graph
