#include "graph/plan.hpp"

#include <algorithm>
#include <numeric>

#include "core/trace.hpp"
#include "models/vit.hpp"
#include "tensor/gemm.hpp"
#include "tensor/im2col.hpp"
#include "tensor/kernels/igemm.hpp"
#include "util/check.hpp"

namespace cq::graph {

namespace {

std::int64_t round_up(std::int64_t v, std::int64_t to) {
  return (v + to - 1) / to * to;
}

ConvGeometry conv_geometry(const Node& n, const Shape& in) {
  ConvGeometry g;
  g.in_channels = n.conv.in_channels / n.conv.groups;
  g.in_h = in.dim(1);
  g.in_w = in.dim(2);
  g.kernel_h = g.kernel_w = n.conv.kernel;
  g.stride = n.conv.stride;
  g.pad = n.conv.pad;
  return g;
}

}  // namespace

std::vector<std::int64_t> node_scratch_bytes(const Graph& g, std::size_t i,
                                             std::int64_t batch) {
  const Node& n = g.nodes[i];
  constexpr std::int64_t kF = sizeof(float);
  switch (n.op) {
    case Op::kConv2d: {
      const ConvGeometry geo = conv_geometry(n, g.value(n.inputs[0]).shape);
      const std::int64_t krows = geo.col_rows();
      const std::int64_t cols = batch * geo.col_cols();
      const std::int64_t cout_g = n.conv.out_channels / n.conv.groups;
      if (n.precision == Precision::kInt8)
        return {krows * cols * kF,  // cols_f (fp32 column matrix)
                cout_g * cols * kF,  // gout (channel-major GEMM out)
                cols * kF,           // col_scale
                cols * kF,           // col_inv
                igemm::packed_b_bytes(krows, cols)};
      return {krows * cols * kF,    // cols (im2col / im2row matrix)
              cout_g * cols * kF};  // gout
    }
    case Op::kLinear: {
      if (n.precision != Precision::kInt8) return {};
      const std::int64_t in = n.weight.dim(1), out = n.weight.dim(0);
      // Rank-2 per-sample inputs ([seq, in], the ViT token Linears) are just
      // more GEMM rows: seq per-sample rows, each its own igemm column.
      const std::int64_t rows =
          batch * (g.value(n.inputs[0]).shape.numel() / in);
      return {rows * kF,        // in_scale
              rows * kF,        // in_inv
              out * rows * kF,  // gout ([out, rows], transposed at scatter)
              igemm::packed_b_bytes(in, rows)};
    }
    case Op::kPatchEmbed: {
      const std::int64_t seq = g.value(n.output).shape.dim(0);
      const std::int64_t krows = n.weight.dim(1);
      return {batch * seq * krows * kF};  // im2row patch matrix [n*seq, krows]
    }
    case Op::kAttnCore: {
      const Shape& out = g.value(n.output).shape;
      const std::int64_t seq = out.dim(0), dim = out.dim(1);
      // Per image: gathered q/k/v heads plus the score+context scratch the
      // shared attention_forward helper needs; sliced per image so the
      // batch-parallel sweep never shares scratch across threads.
      const std::int64_t per =
          3 * seq * dim +
          models::detail::attention_scratch_floats(seq, dim, n.attn_heads);
      return {batch * per * kF};
    }
    default:
      return {};
  }
}

std::int64_t assign_offsets(std::vector<PlannedBuffer>& buffers,
                            std::int64_t align) {
  CQ_CHECK(align > 0);
  std::vector<std::size_t> order(buffers.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  // Largest first; ties broken by start step then index for determinism.
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (buffers[a].bytes != buffers[b].bytes)
      return buffers[a].bytes > buffers[b].bytes;
    if (buffers[a].first != buffers[b].first)
      return buffers[a].first < buffers[b].first;
    return a < b;
  });

  struct Span {
    std::int64_t begin, end;
  };
  std::vector<std::size_t> placed;
  std::vector<Span> spans;
  std::int64_t peak = 0;
  for (std::size_t idx : order) {
    PlannedBuffer& b = buffers[idx];
    CQ_CHECK(b.bytes > 0 && b.first <= b.last);
    spans.clear();
    for (std::size_t p : placed) {
      const PlannedBuffer& o = buffers[p];
      if (o.last < b.first || o.first > b.last) continue;  // disjoint lives
      spans.push_back(Span{o.offset, o.offset + o.bytes});
    }
    std::sort(spans.begin(), spans.end(),
              [](const Span& x, const Span& y) { return x.begin < y.begin; });
    std::int64_t cand = 0;
    for (const Span& s : spans) {
      if (cand + b.bytes <= s.begin) break;  // fits in the gap below s
      cand = std::max(cand, round_up(s.end, align));
    }
    b.offset = cand;
    peak = std::max(peak, cand + b.bytes);
    placed.push_back(idx);
  }
  return peak;
}

ArenaPlan plan_arena(const Graph& g, std::int64_t max_batch) {
  CQ_TRACE_SCOPE_N("graph.plan", static_cast<std::int64_t>(g.nodes.size()));
  CQ_CHECK(max_batch >= 1);
  ArenaPlan plan;
  plan.value_offset.assign(g.values.size(), kExternalOffset);
  plan.scratch_offset.resize(g.nodes.size());

  // One forward sweep fixes producers and last consumers.
  std::vector<std::int64_t> producer(g.values.size(), -1);
  std::vector<std::int64_t> last_use(g.values.size(), -1);
  for (std::size_t i = 0; i < g.nodes.size(); ++i) {
    const Node& n = g.nodes[i];
    for (ValueId in : n.inputs)
      last_use[static_cast<std::size_t>(in)] = static_cast<std::int64_t>(i);
    if (n.output != kNoValue)
      producer[static_cast<std::size_t>(n.output)] =
          static_cast<std::int64_t>(i);
  }

  for (std::size_t v = 0; v < g.values.size(); ++v) {
    const ValueId id = static_cast<ValueId>(v);
    if (id == g.input || id == g.output) continue;  // caller-owned
    if (producer[v] < 0) continue;                  // orphan (pre-DCE input)
    if (last_use[v] < 0) continue;                  // dead value, never read
    PlannedBuffer b;
    b.bytes = g.values[v].shape.numel() * max_batch *
              static_cast<std::int64_t>(sizeof(float));
    b.first = producer[v];
    b.last = last_use[v];
    b.value = id;
    b.node = producer[v];
    plan.buffers.push_back(b);
  }
  for (std::size_t i = 0; i < g.nodes.size(); ++i) {
    const auto slots = node_scratch_bytes(g, i, max_batch);
    plan.scratch_offset[i].assign(slots.size(), kExternalOffset);
    for (std::size_t s = 0; s < slots.size(); ++s) {
      PlannedBuffer b;
      b.bytes = slots[s];
      b.first = b.last = static_cast<std::int64_t>(i);
      b.node = static_cast<std::int64_t>(i);
      b.slot = static_cast<std::int64_t>(s);
      plan.buffers.push_back(b);
    }
  }

  const std::int64_t peak = assign_offsets(plan.buffers, kArenaAlign);
  plan.arena_bytes = round_up(peak, kArenaAlign);
  plan.naive_bytes = 0;
  for (const PlannedBuffer& b : plan.buffers) {
    plan.naive_bytes += b.bytes;
    if (b.value != kNoValue)
      plan.value_offset[static_cast<std::size_t>(b.value)] = b.offset;
    else
      plan.scratch_offset[static_cast<std::size_t>(b.node)]
                         [static_cast<std::size_t>(b.slot)] = b.offset;
  }
  return plan;
}

ImageSlice image_slice(std::int64_t batch, std::int64_t parts,
                       std::int64_t s) {
  const std::int64_t base = batch / parts;
  const std::int64_t rem = batch % parts;
  ImageSlice out;
  out.begin = s * base + (s < rem ? s : rem);
  out.end = out.begin + base + (s < rem ? 1 : 0);
  return out;
}

std::string dump(const Graph& g, const ArenaPlan& plan) {
  std::string s = "arena " + std::to_string(plan.arena_bytes) +
                  " bytes (naive " + std::to_string(plan.naive_bytes) +
                  ")\n" + dump(g);
  // Re-walk: annotate each node line with its output / scratch offsets.
  std::string out;
  out.reserve(s.size() * 2);
  std::size_t node = 0;
  std::size_t pos = 0;
  while (pos < s.size()) {
    const std::size_t nl = s.find('\n', pos);
    std::string line = s.substr(pos, nl - pos);
    if (line.size() > 0 && line[0] == '%' && node < g.nodes.size()) {
      const Node& n = g.nodes[node];
      if (n.output != kNoValue) {
        const std::int64_t off =
            plan.value_offset[static_cast<std::size_t>(n.output)];
        line += off == kExternalOffset ? " @external"
                                       : " @arena+" + std::to_string(off);
      }
      const auto& scratch = plan.scratch_offset[node];
      if (!scratch.empty()) {
        line += " scratch[";
        for (std::size_t i = 0; i < scratch.size(); ++i) {
          if (i) line += ",";
          line += std::to_string(scratch[i]);
        }
        line += "]";
      }
      ++node;
    }
    out += line;
    out += "\n";
    pos = nl == std::string::npos ? s.size() : nl + 1;
  }
  return out;
}

}  // namespace cq::graph
