// Lowers an nn module tree into the graph IR.
//
// The tracer is shape-driven: given the PER-SAMPLE input shape ([C,H,W] for
// backbones, [D] for heads) it walks the Sequential recursively, emits one
// node per module with inferred output shapes, and leaves every module
// UNFUSED — BatchNorm, ReLU and ActQuant come out as their own nodes. All
// fusion/folding/lowering decisions belong to passes.hpp, so a dump() right
// after tracing shows the model exactly as the module tree defines it.
//
// Weights and BN statistics are captured as copy-on-write tensor handles:
// the graph shares storage with the source modules until a pass mutates a
// constant (BN folding), at which point only that node's copy detaches. The
// traced graph therefore survives the source module tree.
//
// Supported children mirror the eager serving compilers (serve/fp32.cpp,
// deploy/int8.cpp): Conv2d, BatchNorm2d, ReLU, MaxPool2d, GlobalAvgPool,
// Flatten, Linear, ActQuant, Sequential, models::BasicBlock,
// models::InvertedResidual. Anything else throws CheckError naming the
// module's type_name().
#pragma once

#include "graph/ir.hpp"
#include "nn/sequential.hpp"

namespace cq::graph {

Graph trace(nn::Sequential& net, const Shape& sample_shape);

}  // namespace cq::graph
