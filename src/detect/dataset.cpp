#include "detect/dataset.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace cq::detect {

DetectionDataset make_detection_dataset(const DetectionConfig& config,
                                        std::int64_t count, Rng& rng) {
  CQ_CHECK(count > 0);
  const auto height = config.synth.height, width = config.synth.width;
  std::vector<data::ClassDef> defs;
  for (int c = 0; c < config.synth.num_classes; ++c)
    defs.push_back(
        data::make_class_def(c, config.synth.num_classes, config.synth.seed));

  DetectionDataset ds;
  ds.images.reserve(static_cast<std::size_t>(count));
  ds.boxes.reserve(static_cast<std::size_t>(count));

  std::int64_t made = 0;
  while (made < count) {
    // Cluttered background: dark base + gradient + soft noise blobs.
    Tensor canvas(Shape{3, height, width});
    const float base[3] = {static_cast<float>(rng.uniform(0.05, 0.3)),
                           static_cast<float>(rng.uniform(0.05, 0.3)),
                           static_cast<float>(rng.uniform(0.05, 0.3))};
    const float ga = static_cast<float>(rng.uniform(0, 6.28318));
    const float gs = static_cast<float>(rng.uniform(0.0, 0.2));
    for (std::int64_t y = 0; y < height; ++y)
      for (std::int64_t x = 0; x < width; ++x) {
        const float fy = (static_cast<float>(y) + 0.5f) / height;
        const float fx = (static_cast<float>(x) + 0.5f) / width;
        const float light =
            gs * ((fx - 0.5f) * std::cos(ga) + (fy - 0.5f) * std::sin(ga));
        for (std::int64_t c = 0; c < 3; ++c)
          canvas[(c * height + y) * width + x] =
              std::clamp(base[c] + light, 0.0f, 1.0f);
      }
    for (int blob = 0; blob < config.clutter_blobs; ++blob) {
      const float bx = static_cast<float>(rng.uniform());
      const float by = static_cast<float>(rng.uniform());
      const float br = static_cast<float>(rng.uniform(0.05, 0.15));
      const float amp = static_cast<float>(rng.uniform(-0.15, 0.15));
      for (std::int64_t y = 0; y < height; ++y)
        for (std::int64_t x = 0; x < width; ++x) {
          const float fy = (static_cast<float>(y) + 0.5f) / height;
          const float fx = (static_cast<float>(x) + 0.5f) / width;
          const float d2 = (fx - bx) * (fx - bx) + (fy - by) * (fy - by);
          const float w = amp * std::exp(-d2 / (2.0f * br * br));
          for (std::int64_t c = 0; c < 3; ++c) {
            float& px = canvas[(c * height + y) * width + x];
            px = std::clamp(px + w, 0.0f, 1.0f);
          }
        }
    }

    // One object, placed clear of the border so the box stays tight.
    const auto cls = defs[rng.uniform_index(defs.size())];
    data::InstanceParams inst = data::sample_instance(rng, 1.0f);
    inst.cx = static_cast<float>(rng.uniform(0.3, 0.7));
    inst.cy = static_cast<float>(rng.uniform(0.3, 0.7));
    inst.scale = static_cast<float>(rng.uniform(0.5, 1.1));
    const auto pixel_box = data::render_onto(canvas, cls, inst);
    if (!pixel_box.valid()) continue;  // degenerate render; resample

    // Mild sensor noise.
    for (std::int64_t i = 0; i < canvas.numel(); ++i)
      canvas[i] = std::clamp(
          canvas[i] + static_cast<float>(rng.normal(0.0, 0.02)), 0.0f, 1.0f);

    BBox box;
    box.x0 = static_cast<float>(pixel_box.x0) / static_cast<float>(width);
    box.y0 = static_cast<float>(pixel_box.y0) / static_cast<float>(height);
    box.x1 = static_cast<float>(pixel_box.x1) / static_cast<float>(width);
    box.y1 = static_cast<float>(pixel_box.y1) / static_cast<float>(height);
    ds.images.push_back(std::move(canvas));
    ds.boxes.push_back(box);
    ++made;
  }
  return ds;
}

}  // namespace cq::detect
