// VOC/COCO-style average precision for single-object detection.
#pragma once

#include <vector>

#include "detect/head.hpp"

namespace cq::detect {

/// AP at a single IoU threshold: detections are ranked by confidence,
/// greedily matched to each image's ground truth, and precision is
/// integrated over recall with the standard interpolated envelope.
float average_precision(std::vector<Detection> detections,
                        const std::vector<BBox>& ground_truth,
                        float iou_threshold);

struct ApResult {
  float ap = 0.0f;    // mean over IoU 0.50 : 0.05 : 0.95 (COCO "AP")
  float ap50 = 0.0f;  // IoU 0.50
  float ap75 = 0.0f;  // IoU 0.75
};

ApResult evaluate_ap(const std::vector<Detection>& detections,
                     const std::vector<BBox>& ground_truth);

}  // namespace cq::detect
