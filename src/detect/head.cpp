#include "detect/head.hpp"

#include <algorithm>
#include <cmath>

#include "data/image.hpp"
#include "nn/activations.hpp"
#include "nn/batchnorm.hpp"
#include "nn/conv2d.hpp"
#include "optim/adam.hpp"
#include "util/check.hpp"
#include "util/logging.hpp"

namespace cq::detect {

namespace {
inline float sigmoid(float x) { return 1.0f / (1.0f + std::exp(-x)); }
}

Detector::Detector(nn::Sequential& trunk, std::int64_t trunk_channels,
                   DetectorConfig config)
    : trunk_(trunk), config_(config), rng_(config.seed) {
  CQ_CHECK(trunk_channels > 0);
  trunk_.set_mode(nn::Mode::kEval);  // frozen features
  head_ = std::make_unique<nn::Sequential>();
  nn::Conv2dSpec c1{.in_channels = trunk_channels,
                    .out_channels = config_.head_hidden,
                    .kernel = 3,
                    .stride = 1,
                    .pad = 1};
  head_->emplace<nn::Conv2d>(c1, rng_, "det.conv1");
  head_->emplace<nn::BatchNorm2d>(config_.head_hidden, 0.1f, 1e-5f, "det.bn");
  head_->emplace<nn::ReLU>();
  nn::Conv2dSpec c2{.in_channels = config_.head_hidden,
                    .out_channels = 5,
                    .kernel = 1,
                    .stride = 1,
                    .pad = 0,
                    .bias = true};
  head_->emplace<nn::Conv2d>(c2, rng_, "det.conv2");
}

Tensor Detector::head_forward(const Tensor& images) {
  return head_->forward(trunk_.forward(images));
}

float Detector::train(const DetectionDataset& dataset) {
  CQ_CHECK(dataset.size() > 0);
  head_->set_mode(nn::Mode::kTrain);
  optim::Adam adam(head_->parameters(), {.lr = config_.lr});
  const auto batch =
      std::min<std::int64_t>(config_.batch_size, dataset.size());
  data::Batcher batcher(dataset.size(), batch, rng_);
  const auto iters = batcher.batches_per_epoch();

  float last_loss = 0.0f;
  for (std::int64_t epoch = 0; epoch < config_.epochs; ++epoch) {
    double epoch_loss = 0.0;
    for (std::int64_t it = 0; it < iters; ++it) {
      const auto idx = batcher.next();
      std::vector<Tensor> images;
      images.reserve(idx.size());
      for (auto i : idx)
        images.push_back(dataset.images[static_cast<std::size_t>(i)]);
      const Tensor out = head_forward(data::stack_images(images));
      const auto n = out.dim(0), gh = out.dim(2), gw = out.dim(3);
      CQ_CHECK(out.dim(1) == 5);

      Tensor grad(out.shape());
      double loss = 0.0;
      const float obj_w =
          1.0f / static_cast<float>(n * gh * gw);
      const float box_w = config_.box_loss_weight / static_cast<float>(n);
      for (std::int64_t img = 0; img < n; ++img) {
        const BBox& gt = dataset.boxes[static_cast<std::size_t>(
            idx[static_cast<std::size_t>(img)])];
        const auto gx = std::min<std::int64_t>(
            gw - 1, static_cast<std::int64_t>(gt.cx() * gw));
        const auto gy = std::min<std::int64_t>(
            gh - 1, static_cast<std::int64_t>(gt.cy() * gh));
        for (std::int64_t y = 0; y < gh; ++y)
          for (std::int64_t x = 0; x < gw; ++x) {
            const bool positive = (y == gy && x == gx);
            const float logit = out.at(img, 0, y, x);
            const float p = sigmoid(logit);
            const float target = positive ? 1.0f : 0.0f;
            loss -= obj_w * (target * std::log(std::max(p, 1e-7f)) +
                             (1.0f - target) *
                                 std::log(std::max(1.0f - p, 1e-7f)));
            grad.at(img, 0, y, x) = obj_w * (p - target);
          }
        // Box regression at the positive cell (cell-relative center).
        const float targets[4] = {
            gt.cx() * static_cast<float>(gw) - static_cast<float>(gx),
            gt.cy() * static_cast<float>(gh) - static_cast<float>(gy),
            gt.width(), gt.height()};
        for (int k = 0; k < 4; ++k) {
          const float raw = out.at(img, k + 1, gy, gx);
          const float s = sigmoid(raw);
          const float diff = s - targets[k];
          loss += box_w * diff * diff;
          grad.at(img, k + 1, gy, gx) =
              box_w * 2.0f * diff * s * (1.0f - s);
        }
      }
      head_->backward(grad);  // trunk is frozen (eval mode, no caches)
      adam.step();
      epoch_loss += loss;
      last_loss = static_cast<float>(loss);
    }
    CQ_LOG_DEBUG << "detector epoch " << epoch << " loss "
                 << epoch_loss / static_cast<double>(iters);
  }
  return last_loss;
}

std::vector<Detection> Detector::detect(const DetectionDataset& dataset) {
  head_->set_mode(nn::Mode::kEval);
  std::vector<Detection> detections;
  detections.reserve(static_cast<std::size_t>(dataset.size()));
  const std::int64_t batch = 32;
  for (std::int64_t start = 0; start < dataset.size(); start += batch) {
    const auto stop = std::min(dataset.size(), start + batch);
    std::vector<Tensor> images;
    for (std::int64_t i = start; i < stop; ++i)
      images.push_back(dataset.images[static_cast<std::size_t>(i)]);
    const Tensor out = head_forward(data::stack_images(images));
    const auto n = out.dim(0), gh = out.dim(2), gw = out.dim(3);
    for (std::int64_t img = 0; img < n; ++img) {
      std::int64_t best_y = 0, best_x = 0;
      float best_logit = out.at(img, 0, 0, 0);
      for (std::int64_t y = 0; y < gh; ++y)
        for (std::int64_t x = 0; x < gw; ++x)
          if (out.at(img, 0, y, x) > best_logit) {
            best_logit = out.at(img, 0, y, x);
            best_y = y;
            best_x = x;
          }
      Detection det;
      det.image_id = start + img;
      det.confidence = sigmoid(best_logit);
      const float cx = (static_cast<float>(best_x) +
                        sigmoid(out.at(img, 1, best_y, best_x))) /
                       static_cast<float>(gw);
      const float cy = (static_cast<float>(best_y) +
                        sigmoid(out.at(img, 2, best_y, best_x))) /
                       static_cast<float>(gh);
      const float w = sigmoid(out.at(img, 3, best_y, best_x));
      const float h = sigmoid(out.at(img, 4, best_y, best_x));
      det.box = box_from_center(cx, cy, w, h);
      detections.push_back(det);
    }
  }
  return detections;
}

}  // namespace cq::detect
