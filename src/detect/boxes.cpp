#include "detect/boxes.hpp"

#include <algorithm>

namespace cq::detect {

float BBox::area() const {
  if (!valid()) return 0.0f;
  return width() * height();
}

float iou(const BBox& a, const BBox& b) {
  if (!a.valid() || !b.valid()) return 0.0f;
  const float ix0 = std::max(a.x0, b.x0);
  const float iy0 = std::max(a.y0, b.y0);
  const float ix1 = std::min(a.x1, b.x1);
  const float iy1 = std::min(a.y1, b.y1);
  if (ix1 <= ix0 || iy1 <= iy0) return 0.0f;
  const float inter = (ix1 - ix0) * (iy1 - iy0);
  return inter / (a.area() + b.area() - inter);
}

BBox box_from_center(float cx, float cy, float w, float h) {
  BBox box;
  box.x0 = std::clamp(cx - 0.5f * w, 0.0f, 1.0f);
  box.y0 = std::clamp(cy - 0.5f * h, 0.0f, 1.0f);
  box.x1 = std::clamp(cx + 0.5f * w, 0.0f, 1.0f);
  box.y1 = std::clamp(cy + 0.5f * h, 0.0f, 1.0f);
  return box;
}

}  // namespace cq::detect
