// Synthetic single-object localization dataset — the Pascal VOC stand-in.
//
// Each canvas contains one object (a SynthVision motif, class sampled from
// the SSL pretraining class set) at a random position/scale over a cluttered
// background (gradient + noise blobs). The label is the object's tight
// bounding box. See DESIGN.md for the substitution rationale.
#pragma once

#include <vector>

#include "data/synth.hpp"
#include "detect/boxes.hpp"

namespace cq::detect {

struct DetectionDataset {
  std::vector<Tensor> images;  // [3,H,W]
  std::vector<BBox> boxes;     // one ground-truth box per image

  std::int64_t size() const { return static_cast<std::int64_t>(images.size()); }
};

struct DetectionConfig {
  data::SynthConfig synth = data::synth_imagenet_config();
  /// Number of distractor noise blobs per canvas.
  int clutter_blobs = 3;
  std::uint64_t seed = 77;
};

DetectionDataset make_detection_dataset(const DetectionConfig& config,
                                        std::int64_t count, Rng& rng);

}  // namespace cq::detect
