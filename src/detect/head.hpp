// Single-object grid detection head on top of a frozen pretrained trunk —
// the YOLO-style transfer task of the paper's Table 3, scaled down.
//
// The trunk (encoder minus global pooling) produces [N, C, h, w]. The head
// predicts 5 channels per cell: an objectness logit and (cx, cy, w, h)
// through sigmoids. The cell containing the ground-truth center is positive;
// objectness trains with BCE over all cells and the box regresses with MSE
// at the positive cell. Inference takes the argmax-objectness cell, giving
// one scored detection per image for VOC-style AP ranking.
#pragma once

#include <memory>

#include "data/dataset.hpp"
#include "detect/dataset.hpp"
#include "nn/sequential.hpp"

namespace cq::detect {

struct Detection {
  float confidence = 0.0f;
  BBox box;
  std::int64_t image_id = 0;
};

struct DetectorConfig {
  std::int64_t epochs = 25;
  std::int64_t batch_size = 16;
  float lr = 2e-3f;
  float box_loss_weight = 5.0f;
  std::int64_t head_hidden = 16;
  std::uint64_t seed = 5;
};

class Detector {
 public:
  /// `trunk` is borrowed, kept frozen (eval mode), and must outlive the
  /// detector. `trunk_channels` is the trunk's output channel count.
  Detector(nn::Sequential& trunk, std::int64_t trunk_channels,
           DetectorConfig config);

  /// Train the head on the dataset; returns the final total loss.
  float train(const DetectionDataset& dataset);

  /// One scored detection per image.
  std::vector<Detection> detect(const DetectionDataset& dataset);

 private:
  Tensor head_forward(const Tensor& images);

  nn::Sequential& trunk_;
  DetectorConfig config_;
  Rng rng_;
  std::unique_ptr<nn::Sequential> head_;
};

}  // namespace cq::detect
