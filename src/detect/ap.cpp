#include "detect/ap.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace cq::detect {

float average_precision(std::vector<Detection> detections,
                        const std::vector<BBox>& ground_truth,
                        float iou_threshold) {
  CQ_CHECK(!ground_truth.empty());
  CQ_CHECK(iou_threshold > 0.0f && iou_threshold < 1.0f);
  const auto num_gt = static_cast<std::int64_t>(ground_truth.size());

  std::sort(detections.begin(), detections.end(),
            [](const Detection& a, const Detection& b) {
              return a.confidence > b.confidence;
            });

  std::vector<bool> matched(ground_truth.size(), false);
  std::vector<int> tp(detections.size(), 0);
  for (std::size_t d = 0; d < detections.size(); ++d) {
    const auto img = detections[d].image_id;
    CQ_CHECK(img >= 0 && img < num_gt);
    if (!matched[static_cast<std::size_t>(img)] &&
        iou(detections[d].box,
            ground_truth[static_cast<std::size_t>(img)]) >= iou_threshold) {
      matched[static_cast<std::size_t>(img)] = true;
      tp[d] = 1;
    }
  }

  // Precision/recall points, then the interpolated envelope integral.
  std::vector<double> precision, recall;
  std::int64_t cum_tp = 0;
  for (std::size_t d = 0; d < detections.size(); ++d) {
    cum_tp += tp[d];
    precision.push_back(static_cast<double>(cum_tp) /
                        static_cast<double>(d + 1));
    recall.push_back(static_cast<double>(cum_tp) /
                     static_cast<double>(num_gt));
  }
  if (precision.empty()) return 0.0f;
  // Envelope: precision[i] = max(precision[i:]).
  for (std::size_t i = precision.size() - 1; i > 0; --i)
    precision[i - 1] = std::max(precision[i - 1], precision[i]);
  double ap = 0.0;
  double prev_recall = 0.0;
  for (std::size_t i = 0; i < precision.size(); ++i) {
    ap += (recall[i] - prev_recall) * precision[i];
    prev_recall = recall[i];
  }
  return static_cast<float>(ap);
}

ApResult evaluate_ap(const std::vector<Detection>& detections,
                     const std::vector<BBox>& ground_truth) {
  ApResult result;
  double sum = 0.0;
  int count = 0;
  for (float t = 0.50f; t < 0.955f; t += 0.05f) {
    const float ap = average_precision(detections, ground_truth, t);
    sum += ap;
    ++count;
    if (std::abs(t - 0.50f) < 1e-4f) result.ap50 = ap;
    if (std::abs(t - 0.75f) < 1e-4f) result.ap75 = ap;
  }
  result.ap = static_cast<float>(sum / count);
  return result;
}

}  // namespace cq::detect
