// Axis-aligned bounding boxes in normalized [0, 1] image coordinates.
#pragma once

#include <cstdint>

namespace cq::detect {

struct BBox {
  float x0 = 0.0f, y0 = 0.0f, x1 = 0.0f, y1 = 0.0f;

  float width() const { return x1 - x0; }
  float height() const { return y1 - y0; }
  float area() const;
  float cx() const { return 0.5f * (x0 + x1); }
  float cy() const { return 0.5f * (y0 + y1); }
  bool valid() const { return x1 > x0 && y1 > y0; }
};

/// Intersection-over-union; 0 for degenerate boxes.
float iou(const BBox& a, const BBox& b);

/// Build a box from center/size, clamped into [0, 1].
BBox box_from_center(float cx, float cy, float w, float h);

}  // namespace cq::detect
