#include "serve/engine.hpp"

#include <algorithm>

#include "core/cq.hpp"
#include "core/trace.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace cq::serve {

namespace {

std::uint64_t micros_between(Clock::time_point a, Clock::time_point b) {
  if (b <= a) return 0;
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(b - a).count());
}

}  // namespace

Engine::Engine(const EngineConfig& config) : config_(config) {
  CQ_CHECK(config_.max_batch > 0);
  CQ_CHECK(config_.queue_capacity > 0);
  CQ_CHECK(config_.in_channels > 0 && config_.in_h > 0 && config_.in_w > 0);

  // One queue shard per worker (min one so a worker-less engine still
  // admits); the configured capacity is split evenly across shards, rounded
  // up so nq shards never hold fewer requests than one queue would have.
  const std::size_t nq = std::max<std::size_t>(1, config_.workers);
  const std::size_t shard_cap =
      std::max<std::size_t>(1, (config_.queue_capacity + nq - 1) / nq);
  for (std::size_t i = 0; i < nq; ++i)
    queues_.push_back(std::make_unique<RequestQueue>(shard_cap));

  // Load the trained encoder: serving is full precision (the checkpointed
  // weights ARE the model; fake-quantization noise belongs to training) and
  // eval mode (running BN statistics — they are what gets folded).
  Rng rng(1);
  encoder_ = models::make_encoder(config_.arch, rng);
  models::load_module(config_.checkpoint, *encoder_.backbone);
  encoder_.policy->set_full_precision();
  encoder_.backbone->set_mode(nn::Mode::kEval);

  // Compile every worker's instance on this thread, before any worker
  // starts: compilation reads the (now frozen) module tree. The arena is
  // planned once at max_batch — narrower batches run inside the same
  // allocation.
  const Shape sample{config_.in_channels, config_.in_h, config_.in_w};
  for (std::size_t i = 0; i < config_.workers; ++i) {
    auto w = std::make_unique<Worker>();
    w->index = i;
    w->model = make_instance(config_.instance, *encoder_.backbone, sample,
                             static_cast<std::int64_t>(config_.max_batch));
    w->batcher = std::make_unique<Batcher>(sample, encoder_.feature_dim);
    workers_.push_back(std::move(w));
  }

  for (auto& w : workers_)
    w->thread = std::thread([this, worker = w.get()] { worker_main(*worker); });
  {
    std::unique_lock<std::mutex> lock(ready_mu_);
    ready_cv_.wait(lock,
                   [this] { return workers_ready_ == workers_.size(); });
  }
  start_time_ = Clock::now();
}

Engine::~Engine() { stop(); }

bool Engine::submit(Request* r) {
  CQ_TRACE_SCOPE("serve.enqueue");
  CQ_CHECK(r != nullptr && r->input != nullptr && r->output != nullptr);
  if (stopping_.load(std::memory_order_acquire)) {
    rejected_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  // Round-robin across shards; when the preferred shard is full, fall back
  // to any shard with room so total capacity equals the sum of the shards.
  const std::size_t nq = queues_.size();
  const std::uint64_t ticket = rr_.fetch_add(1, std::memory_order_relaxed);
  for (std::size_t o = 0; o < nq; ++o) {
    if (queues_[(ticket + o) % nq]->try_push(r)) {
      submitted_.fetch_add(1, std::memory_order_relaxed);
      return true;
    }
  }
  rejected_.fetch_add(1, std::memory_order_relaxed);
  return false;
}

void Engine::stop() {
  std::lock_guard<std::mutex> lock(stop_mu_);
  if (stopped_) return;
  stopping_.store(true, std::memory_order_release);
  for (auto& q : queues_) q->close();
  for (auto& w : workers_)
    if (w->thread.joinable()) w->thread.join();
  // Anything still queued (only possible with zero workers, or requests
  // raced in just before close) was accepted but can no longer run.
  std::vector<Request*> leftovers;
  for (auto& q : queues_) {
    q->drain(leftovers);
    for (Request* r : leftovers) {
      shutdown_failed_.fetch_add(1, std::memory_order_relaxed);
      r->complete(Status::kShutdown);
    }
  }
  stopped_ = true;
}

void Engine::worker_main(Worker& w) {
  // Warmup: the compiled plan's arena already holds every intermediate and
  // scratch buffer at max-batch capacity, so unlike the old eager path
  // (which re-grew per-width scratch and needed a pass at EVERY width),
  // warming at max_batch alone covers all narrower widths — they run
  // inside the same arena, and the instance's output tensor plus the
  // batcher's collate buffer shrink in place (Tensor::resize reuses an
  // unshared larger allocation). Three passes so COW handles that rotate
  // through a spare settle into a pure pool round-trip. Allocations before
  // the fence are warmup; after it, steady state must stay at zero at ANY
  // batch width 1..max_batch (pinned by ZeroAllocAcrossWidths).
  if (config_.prewarm) {
    CQ_TRACE_SCOPE("serve.prewarm");
    for (int pass = 0; pass < 3; ++pass) {
      const Tensor& warm = w.batcher->prewarm(config_.max_batch);
      (void)w.model->forward(warm);
    }
  }
  const std::uint64_t warm_allocs = core::AllocTracker::thread_allocs();
  {
    std::lock_guard<std::mutex> lock(w.stats_mu);
    w.stats.warmup_heap_allocs = warm_allocs;
  }
  {
    // Signal readiness: the constructor blocks until every worker has
    // prewarmed, so the first submitted request never pays warmup latency.
    std::lock_guard<std::mutex> lock(ready_mu_);
    ++workers_ready_;
    ready_cv_.notify_all();
  }

  std::vector<Request*> batch;
  batch.reserve(config_.max_batch);
  // Latency staging, sized once: the steady-state loop must not malloc.
  std::vector<std::uint64_t> queue_us(config_.max_batch);
  std::vector<std::uint64_t> total_us(config_.max_batch);
  RequestQueue& own = *queues_[w.index];
  const std::size_t nq = queues_.size();
  // With siblings to steal from, bound the blocking wait on our own queue
  // so an idle worker re-scans the other shards at this cadence. A request
  // landing in OUR queue still wakes us immediately via its cv — the poll
  // only bounds how stale a sibling backlog can get before we notice it.
  const std::chrono::microseconds first_wait =
      nq > 1 ? std::chrono::microseconds{1000}
             : std::chrono::microseconds::max();
  for (;;) {
    std::size_t stolen = 0;
    {
      // Includes the bounded wait for the batch to fill (max_wait).
      CQ_TRACE_SCOPE("serve.batch_form");
      (void)own.pop_batch_for(batch, config_.max_batch, config_.max_wait,
                              first_wait);
      if (batch.empty() && nq > 1) {
        for (std::size_t o = 1; o < nq && batch.size() < config_.max_batch;
             ++o)
          stolen += queues_[(w.index + o) % nq]->try_pop_some(
              batch, config_.max_batch - batch.size());
      }
    }
    if (batch.empty()) {
      // pop_batch_for returning empty on a closed queue means it drained;
      // the steal sweep above found nothing either, so exit. (stop()
      // closes every shard before joining, and each remaining shard has
      // its own worker to drain it.)
      if (own.closed()) return;
      continue;  // first_wait poll expired with nothing anywhere
    }

    const auto dequeue_time = Clock::now();
    const std::size_t expired = w.batcher->filter_expired(batch, dequeue_time);

    if (!batch.empty()) {
      const std::uint64_t allocs_before = core::AllocTracker::thread_allocs();
      const Tensor* input;
      {
        CQ_TRACE_SCOPE_N("serve.collate", batch.size());
        input = &w.batcher->collate(batch);
      }
      const Tensor* features;
      {
        CQ_TRACE_SCOPE_N("serve.forward", batch.size());
        features = &w.model->forward(*input);
      }
      {
        CQ_TRACE_SCOPE_N("serve.scatter", batch.size());
        w.batcher->scatter(*features, batch);
      }
      const std::uint64_t allocs_after = core::AllocTracker::thread_allocs();

      // Record latencies and stats BEFORE completing: complete() frees the
      // client to destroy the request, and a client that has seen wait()
      // return must observe stats covering its own request.
      const std::size_t n = batch.size();
      const auto done = Clock::now();
      for (std::size_t i = 0; i < n; ++i) {
        queue_us[i] = micros_between(batch[i]->enqueue_time, dequeue_time);
        total_us[i] = micros_between(batch[i]->enqueue_time, done);
      }
      {
        std::lock_guard<std::mutex> lock(w.stats_mu);
        ++w.stats.batches;
        w.stats.served += n;
        w.stats.timed_out += expired;
        w.stats.stolen += stolen;
        w.stats.batch_size_sum += n;
        w.stats.max_batch_seen =
            std::max<std::uint64_t>(w.stats.max_batch_seen, n);
        ++w.stats.batch_hist[std::min(n, kBatchHistBuckets) - 1];
        w.stats.steady_heap_allocs += allocs_after - allocs_before;
        for (std::size_t i = 0; i < n; ++i) {
          w.stats.queue_latency.record(queue_us[i]);
          w.stats.total_latency.record(total_us[i]);
        }
      }
      {
        CQ_TRACE_SCOPE_N("serve.complete", batch.size());
        for (Request* r : batch) r->complete(Status::kOk);
      }
    } else if (expired > 0 || stolen > 0) {
      std::lock_guard<std::mutex> lock(w.stats_mu);
      w.stats.timed_out += expired;
      w.stats.stolen += stolen;
    }
  }
}

EngineStats Engine::stats() const {
  EngineStats s;
  s.submitted = submitted_.load(std::memory_order_relaxed);
  s.rejected_full = rejected_.load(std::memory_order_relaxed);
  s.shutdown_failed = shutdown_failed_.load(std::memory_order_relaxed);
  for (const auto& q : queues_) {
    s.queue_depth += q->depth();
    s.queue_peak_depth += q->peak_depth();
  }
  std::uint64_t batch_size_sum = 0;
  s.workers.reserve(workers_.size());
  for (const auto& w : workers_) {
    WorkerSnapshot ws;
    {
      std::lock_guard<std::mutex> lock(w->stats_mu);
      s.served += w->stats.served;
      s.timed_out += w->stats.timed_out;
      s.batches += w->stats.batches;
      s.stolen += w->stats.stolen;
      batch_size_sum += w->stats.batch_size_sum;
      s.max_batch_seen = std::max(s.max_batch_seen, w->stats.max_batch_seen);
      s.warmup_heap_allocs += w->stats.warmup_heap_allocs;
      s.steady_heap_allocs += w->stats.steady_heap_allocs;
      s.queue_latency.merge(w->stats.queue_latency);
      s.total_latency.merge(w->stats.total_latency);
      for (std::size_t i = 0; i < kBatchHistBuckets; ++i)
        s.batch_hist[i] += w->stats.batch_hist[i];
      ws.served = w->stats.served;
      ws.batches = w->stats.batches;
      ws.timed_out = w->stats.timed_out;
      ws.stolen = w->stats.stolen;
      ws.mean_batch_size =
          w->stats.batches == 0
              ? 0.0
              : static_cast<double>(w->stats.batch_size_sum) /
                    static_cast<double>(w->stats.batches);
      ws.batch_hist = w->stats.batch_hist;
    }
    ws.queue_depth = queues_[w->index]->depth();
    ws.queue_peak_depth = queues_[w->index]->peak_depth();
    s.workers.push_back(ws);
  }
  s.mean_batch_size = s.batches == 0
                          ? 0.0
                          : static_cast<double>(batch_size_sum) /
                                static_cast<double>(s.batches);
  s.uptime_seconds =
      std::chrono::duration<double>(Clock::now() - start_time_).count();
  s.throughput_rps = s.uptime_seconds > 0.0
                         ? static_cast<double>(s.served) / s.uptime_seconds
                         : 0.0;
  return s;
}

}  // namespace cq::serve
