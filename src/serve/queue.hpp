// Bounded lock-free MPMC request queue with fail-fast backpressure and
// deadline-aware batch pops — the admission-control half of the serving
// engine.
//
// Producers call try_push(), which NEVER blocks: a full queue returns false
// immediately so the client can shed load (the TensorRT/Triton "reject at
// admission" policy rather than unbounded buffering). Consumers call
// pop_batch(), which blocks for the FIRST request, then lingers up to
// `max_wait` gathering more — the dynamic micro-batching window.
//
// Implementation (DESIGN.md §14): a Vyukov-style bounded MPMC ring. Each
// cell carries a sequence number; producers claim a slot by CAS on the tail
// ticket, write the request pointer (stamping enqueue_time first), then
// publish with a release store of the cell sequence — consumers claim via
// CAS on the head ticket and acquire-load the same sequence, which is the
// happens-before edge making every request field visible. Push and pop are
// wait-free in the common case (one CAS each, no mutex, no allocation).
// The ONLY blocking is in pop_batch's empty-queue wait: a sleeper-counted
// condition variable that producers touch exclusively when a consumer is
// parked, so the loaded hot path never takes a lock.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <vector>

#include "serve/request.hpp"

namespace cq::serve {

class RequestQueue {
 public:
  /// `capacity` > 0: maximum number of queued (not yet popped) requests.
  explicit RequestQueue(std::size_t capacity);

  /// Enqueue without blocking. Returns false (and leaves `r` untouched) when
  /// the queue is full or closed. On success stamps r->enqueue_time; the
  /// cell-sequence release store / consumer acquire load pair gives the
  /// happens-before edge that makes the stamp (and the request fields)
  /// visible to workers.
  bool try_push(Request* r);

  /// Pop up to `max_batch` requests into `out` (which is cleared first).
  /// Blocks until at least one request is available, then waits at most
  /// `max_wait` past the FIRST request's arrival for the batch to fill.
  /// Returns the number popped; 0 means the queue is closed AND drained —
  /// the consumer should exit.
  std::size_t pop_batch(std::vector<Request*>& out, std::size_t max_batch,
                        std::chrono::microseconds max_wait);

  /// pop_batch that gives up on the FIRST request after `first_wait` instead
  /// of blocking indefinitely. Returns 0 with closed() false when the wait
  /// simply timed out — the sharded engine uses this to interleave sibling
  /// work-stealing scans with the blocking wait on its own queue.
  std::size_t pop_batch_for(std::vector<Request*>& out, std::size_t max_batch,
                            std::chrono::microseconds max_wait,
                            std::chrono::microseconds first_wait);

  /// Non-blocking bulk pop of up to `max` requests APPENDED to `out` (no
  /// clear): the sibling-steal path of the sharded engine. Returns the
  /// number appended.
  std::size_t try_pop_some(std::vector<Request*>& out, std::size_t max);

  /// Reject future pushes and wake all blocked consumers. Already-queued
  /// requests remain poppable (graceful drain).
  void close();

  /// Pop everything immediately without waiting (used by Engine::stop() to
  /// fail leftover requests after the workers exit). Returns count popped.
  std::size_t drain(std::vector<Request*>& out);

  bool closed() const { return closed_.load(std::memory_order_acquire); }
  std::size_t depth() const;       // current queued count (racy snapshot)
  std::size_t peak_depth() const;  // high-water mark since construction

 private:
  /// One ring slot. seq encodes the slot's lap state: == ticket means
  /// "free for the producer holding that ticket"; == ticket + 1 means
  /// "holds the element for the consumer with that ticket"; consumers
  /// release with ticket + capacity (the next lap's producer ticket).
  struct Cell {
    std::atomic<std::size_t> seq;
    Request* req = nullptr;  // guarded by the seq protocol above
  };

  Request* try_pop_one();

  const std::size_t capacity_;
  std::vector<Cell> cells_;
  // Producer / consumer tickets. Monotonic; slot = ticket % capacity_.
  // Padded apart so the two CAS hot words do not false-share.
  alignas(64) std::atomic<std::size_t> tail_{0};
  alignas(64) std::atomic<std::size_t> head_{0};
  alignas(64) std::atomic<std::size_t> peak_{0};
  std::atomic<bool> closed_{false};
  // Empty-queue parking. A consumer registers in sleepers_ BEFORE its final
  // emptiness re-check (done while holding wait_mu_); a producer that
  // observes sleepers_ > 0 after publishing acquires wait_mu_ (empty
  // critical section) and notifies — the same no-missed-wakeup handshake as
  // core::ThreadPool. Producers skip all of it while consumers are active.
  std::mutex wait_mu_;
  std::condition_variable wait_cv_;
  std::atomic<std::int64_t> sleepers_{0};
};

}  // namespace cq::serve
