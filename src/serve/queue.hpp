// Bounded MPMC request queue with fail-fast backpressure and deadline-aware
// batch pops — the admission-control half of the serving engine.
//
// Producers call try_push(), which NEVER blocks: a full queue returns false
// immediately so the client can shed load (the TensorRT/Triton "reject at
// admission" policy rather than unbounded buffering). Consumers call
// pop_batch(), which blocks for the FIRST request, then lingers up to
// `max_wait` gathering more — the dynamic micro-batching window.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <vector>

#include "serve/request.hpp"

namespace cq::serve {

class RequestQueue {
 public:
  /// `capacity` > 0: maximum number of queued (not yet popped) requests.
  explicit RequestQueue(std::size_t capacity);

  /// Enqueue without blocking. Returns false (and leaves `r` untouched) when
  /// the queue is full or closed. On success stamps r->enqueue_time; the
  /// queue mutex release / consumer acquire pair gives the happens-before
  /// edge that makes the stamp (and the request fields) visible to workers.
  bool try_push(Request* r);

  /// Pop up to `max_batch` requests into `out` (which is cleared first).
  /// Blocks until at least one request is available, then waits at most
  /// `max_wait` past the FIRST request's arrival for the batch to fill.
  /// Returns the number popped; 0 means the queue is closed AND drained —
  /// the consumer should exit.
  std::size_t pop_batch(std::vector<Request*>& out, std::size_t max_batch,
                        std::chrono::microseconds max_wait);

  /// Reject future pushes and wake all blocked consumers. Already-queued
  /// requests remain poppable (graceful drain).
  void close();

  /// Pop everything immediately without waiting (used by Engine::stop() to
  /// fail leftover requests after the workers exit). Returns count popped.
  std::size_t drain(std::vector<Request*>& out);

  bool closed() const;
  std::size_t depth() const;       // current queued count
  std::size_t peak_depth() const;  // high-water mark since construction

 private:
  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::vector<Request*> ring_;  // fixed-size ring buffer, allocated once
  std::size_t head_ = 0;        // next pop position
  std::size_t count_ = 0;
  std::size_t peak_ = 0;
  bool closed_ = false;
};

}  // namespace cq::serve
