#include "serve/queue.hpp"

#include <cstddef>

#include "util/check.hpp"

namespace cq::serve {

RequestQueue::RequestQueue(std::size_t capacity)
    : capacity_(capacity), cells_(capacity) {
  CQ_CHECK_MSG(capacity > 0, "queue capacity must be positive");
  // seq == cell index marks every slot free for lap-0 producers.
  for (std::size_t i = 0; i < capacity_; ++i)
    cells_[i].seq.store(i, std::memory_order_relaxed);
}

bool RequestQueue::try_push(Request* r) {
  CQ_CHECK(r != nullptr);
  if (closed_.load(std::memory_order_acquire)) return false;
  std::size_t pos = tail_.load(std::memory_order_relaxed);
  Cell* cell = nullptr;
  for (;;) {
    cell = &cells_[pos % capacity_];
    const std::size_t seq = cell->seq.load(std::memory_order_acquire);
    const std::intptr_t dif =
        static_cast<std::intptr_t>(seq) - static_cast<std::intptr_t>(pos);
    if (dif == 0) {
      // Slot is free for ticket `pos`; claim the ticket. Weak CAS: on
      // failure `pos` is refreshed and the loop retries against whatever
      // slot the new ticket maps to.
      if (tail_.compare_exchange_weak(pos, pos + 1, std::memory_order_relaxed))
        break;
    } else if (dif < 0) {
      // Slot still holds last lap's element: the ring is full. Fail fast —
      // this is the backpressure signal, never a wait.
      return false;
    } else {
      pos = tail_.load(std::memory_order_relaxed);
    }
  }
  // Stamp BEFORE publishing: the seq release store below is the
  // happens-before edge that makes the stamp (and all request fields)
  // visible to the popping worker.
  r->enqueue_time = Clock::now();
  cell->req = r;
  cell->seq.store(pos + 1, std::memory_order_release);

  // High-water mark. Racy-but-conservative: the estimate uses a head
  // snapshot taken after our publish, so it can only under-count.
  const std::intptr_t d =
      static_cast<std::intptr_t>(pos + 1) -
      static_cast<std::intptr_t>(head_.load(std::memory_order_relaxed));
  if (d > 0) {
    std::size_t cur = peak_.load(std::memory_order_relaxed);
    while (static_cast<std::size_t>(d) > cur &&
           !peak_.compare_exchange_weak(cur, static_cast<std::size_t>(d),
                                        std::memory_order_relaxed)) {
    }
  }

  // Wake a parked consumer. The seq_cst fence orders the publish above
  // before the sleepers_ load (Dekker pairing with the consumer's seq_cst
  // register-then-recheck); the empty wait_mu_ critical section closes the
  // residual window, because a consumer re-checks emptiness while HOLDING
  // wait_mu_ — we cannot notify between that check and its wait. Producers
  // skip all of this unless a consumer is actually parked.
  std::atomic_thread_fence(std::memory_order_seq_cst);
  if (sleepers_.load(std::memory_order_relaxed) > 0) {
    { std::lock_guard<std::mutex> lk(wait_mu_); }
    wait_cv_.notify_all();
  }
  return true;
}

Request* RequestQueue::try_pop_one() {
  std::size_t pos = head_.load(std::memory_order_relaxed);
  Cell* cell = nullptr;
  for (;;) {
    cell = &cells_[pos % capacity_];
    const std::size_t seq = cell->seq.load(std::memory_order_acquire);
    const std::intptr_t dif =
        static_cast<std::intptr_t>(seq) - static_cast<std::intptr_t>(pos + 1);
    if (dif == 0) {
      if (head_.compare_exchange_weak(pos, pos + 1, std::memory_order_relaxed))
        break;
    } else if (dif < 0) {
      return nullptr;  // slot not yet published: queue is empty
    } else {
      pos = head_.load(std::memory_order_relaxed);
    }
  }
  Request* r = cell->req;
  // Hand the slot to the producer one full lap ahead.
  cell->seq.store(pos + capacity_, std::memory_order_release);
  return r;
}

std::size_t RequestQueue::try_pop_some(std::vector<Request*>& out,
                                       std::size_t max) {
  std::size_t n = 0;
  while (n < max) {
    Request* r = try_pop_one();
    if (r == nullptr) break;
    out.push_back(r);
    ++n;
  }
  return n;
}

std::size_t RequestQueue::pop_batch(std::vector<Request*>& out,
                                    std::size_t max_batch,
                                    std::chrono::microseconds max_wait) {
  return pop_batch_for(out, max_batch, max_wait,
                       std::chrono::microseconds::max());
}

std::size_t RequestQueue::pop_batch_for(std::vector<Request*>& out,
                                        std::size_t max_batch,
                                        std::chrono::microseconds max_wait,
                                        std::chrono::microseconds first_wait) {
  CQ_CHECK(max_batch > 0);
  out.clear();

  // Phase 1: block for the FIRST request (bounded by first_wait).
  Request* first = try_pop_one();
  if (first == nullptr) {
    const bool bounded = first_wait != std::chrono::microseconds::max();
    const Clock::time_point give_up =
        bounded ? Clock::now() + first_wait : Clock::time_point::max();
    sleepers_.fetch_add(1, std::memory_order_seq_cst);
    {
      std::unique_lock<std::mutex> lk(wait_mu_);
      for (;;) {
        // Emptiness re-check under wait_mu_: a producer that saw us in
        // sleepers_ must take this mutex before notifying, so the pop here
        // and the wait below are atomic with respect to its wakeup.
        first = try_pop_one();
        if (first != nullptr || closed_.load(std::memory_order_acquire))
          break;
        if (bounded) {
          if (wait_cv_.wait_until(lk, give_up) == std::cv_status::timeout)
            break;
        } else {
          wait_cv_.wait(lk);
        }
      }
    }
    sleepers_.fetch_sub(1, std::memory_order_seq_cst);
    if (first == nullptr) first = try_pop_one();  // post-timeout/close look
    if (first == nullptr) return 0;  // closed+drained, or first_wait expired
  }
  out.push_back(first);

  // Phase 2: the batching window opens when the first request is taken —
  // linger up to `max_wait` for stragglers, but never return an empty batch
  // late.
  const Clock::time_point window_end = Clock::now() + max_wait;
  for (;;) {
    while (out.size() < max_batch) {
      Request* r = try_pop_one();
      if (r == nullptr) break;
      out.push_back(r);
    }
    if (out.size() >= max_batch) break;
    if (closed_.load(std::memory_order_acquire)) break;
    if (Clock::now() >= window_end) break;
    sleepers_.fetch_add(1, std::memory_order_seq_cst);
    {
      std::unique_lock<std::mutex> lk(wait_mu_);
      Request* r = try_pop_one();
      if (r != nullptr)
        out.push_back(r);
      else if (!closed_.load(std::memory_order_acquire))
        wait_cv_.wait_until(lk, window_end);
    }
    sleepers_.fetch_sub(1, std::memory_order_seq_cst);
  }
  return out.size();
}

void RequestQueue::close() {
  closed_.store(true, std::memory_order_release);
  // Empty critical section pairs with the consumers' under-lock re-check —
  // identical handshake to try_push's wakeup.
  { std::lock_guard<std::mutex> lk(wait_mu_); }
  wait_cv_.notify_all();
}

std::size_t RequestQueue::drain(std::vector<Request*>& out) {
  out.clear();
  for (Request* r = try_pop_one(); r != nullptr; r = try_pop_one())
    out.push_back(r);
  return out.size();
}

std::size_t RequestQueue::depth() const {
  const std::intptr_t t =
      static_cast<std::intptr_t>(tail_.load(std::memory_order_acquire));
  const std::intptr_t h =
      static_cast<std::intptr_t>(head_.load(std::memory_order_acquire));
  return t > h ? static_cast<std::size_t>(t - h) : 0;
}

std::size_t RequestQueue::peak_depth() const {
  return peak_.load(std::memory_order_acquire);
}

}  // namespace cq::serve
