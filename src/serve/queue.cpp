#include "serve/queue.hpp"

#include "util/check.hpp"

namespace cq::serve {

RequestQueue::RequestQueue(std::size_t capacity) : capacity_(capacity) {
  CQ_CHECK_MSG(capacity > 0, "queue capacity must be positive");
  ring_.resize(capacity);
}

bool RequestQueue::try_push(Request* r) {
  CQ_CHECK(r != nullptr);
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (closed_ || count_ == capacity_) return false;
    r->enqueue_time = Clock::now();
    ring_[(head_ + count_) % capacity_] = r;
    ++count_;
    if (count_ > peak_) peak_ = count_;
  }
  cv_.notify_one();
  return true;
}

std::size_t RequestQueue::pop_batch(std::vector<Request*>& out,
                                    std::size_t max_batch,
                                    std::chrono::microseconds max_wait) {
  CQ_CHECK(max_batch > 0);
  out.clear();
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [this] { return count_ > 0 || closed_; });
  if (count_ == 0) return 0;  // closed and drained

  // The batching window opens when the first request is taken: linger up to
  // `max_wait` for stragglers, but never return an empty batch late.
  const auto window_end = Clock::now() + max_wait;
  for (;;) {
    while (out.size() < max_batch && count_ > 0) {
      out.push_back(ring_[head_]);
      head_ = (head_ + 1) % capacity_;
      --count_;
    }
    if (out.size() >= max_batch || closed_) break;
    if (cv_.wait_until(lock, window_end, [this] {
          return count_ > 0 || closed_;
        })) {
      if (count_ == 0) break;  // woken by close()
      continue;
    }
    break;  // window expired
  }
  return out.size();
}

void RequestQueue::close() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
  }
  cv_.notify_all();
}

std::size_t RequestQueue::drain(std::vector<Request*>& out) {
  out.clear();
  std::lock_guard<std::mutex> lock(mu_);
  while (count_ > 0) {
    out.push_back(ring_[head_]);
    head_ = (head_ + 1) % capacity_;
    --count_;
  }
  return out.size();
}

bool RequestQueue::closed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return closed_;
}

std::size_t RequestQueue::depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return count_;
}

std::size_t RequestQueue::peak_depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return peak_;
}

}  // namespace cq::serve
