#include "serve/batcher.hpp"

#include <algorithm>
#include <cstring>

#include "util/check.hpp"

namespace cq::serve {

Batcher::Batcher(Shape sample_shape, std::int64_t feature_dim)
    : sample_shape_(std::move(sample_shape)),
      sample_numel_(sample_shape_.numel()),
      feature_dim_(feature_dim) {
  CQ_CHECK(sample_shape_.rank() == 3 && feature_dim_ > 0);
}

std::size_t Batcher::filter_expired(std::vector<Request*>& batch,
                                    Clock::time_point now) {
  std::size_t expired = 0;
  auto keep = batch.begin();
  for (Request* r : batch) {
    if (r->deadline < now) {
      r->complete(Status::kTimeout);
      ++expired;
    } else {
      *keep++ = r;
    }
  }
  batch.erase(keep, batch.end());
  return expired;
}

const Tensor& Batcher::collate(const std::vector<Request*>& batch) {
  const auto n = static_cast<std::int64_t>(batch.size());
  CQ_CHECK(n > 0);
  batch_.resize(Shape{n, sample_shape_.dim(0), sample_shape_.dim(1),
                      sample_shape_.dim(2)});
  float* dst = batch_.data();
  for (std::int64_t i = 0; i < n; ++i)
    std::memcpy(dst + i * sample_numel_,
                batch[static_cast<std::size_t>(i)]->input,
                static_cast<std::size_t>(sample_numel_) * sizeof(float));
  return batch_;
}

void Batcher::scatter(const Tensor& features,
                      const std::vector<Request*>& batch) const {
  CQ_CHECK(features.shape().rank() == 2 &&
           features.dim(0) == static_cast<std::int64_t>(batch.size()) &&
           features.dim(1) == feature_dim_);
  const float* src = features.data();
  for (std::size_t i = 0; i < batch.size(); ++i)
    std::memcpy(batch[i]->output,
                src + static_cast<std::int64_t>(i) * feature_dim_,
                static_cast<std::size_t>(feature_dim_) * sizeof(float));
}

const Tensor& Batcher::prewarm(std::size_t max_batch) {
  const auto n = static_cast<std::int64_t>(std::max<std::size_t>(max_batch, 1));
  batch_.resize(Shape{n, sample_shape_.dim(0), sample_shape_.dim(1),
                      sample_shape_.dim(2)});
  batch_.fill(0.0f);
  return batch_;
}

}  // namespace cq::serve
