#include "serve/fp32.hpp"

#include <cstring>
#include <limits>

#include "core/trace.hpp"
#include "deploy/int8.hpp"  // fold_batchnorm
#include "models/mobilenetv2.hpp"
#include "models/resnet.hpp"
#include "nn/activations.hpp"
#include "nn/batchnorm.hpp"
#include "nn/conv2d.hpp"
#include "nn/linear.hpp"
#include "nn/pooling.hpp"
#include "quant/actquant.hpp"
#include "tensor/gemm.hpp"
#include "tensor/im2col.hpp"
#include "util/check.hpp"

namespace cq::serve {

namespace {

/// Conv with folded BN bias and an optionally fused trailing ReLU. Lowers
/// the whole batch into one [krows, N*spatial] column matrix per group and
/// runs a single fused-epilogue GEMM over it, amortizing the packed weight
/// panel across the batch.
class ConvOp : public Fp32Op {
 public:
  ConvOp(const nn::Conv2dSpec& spec, Tensor weight, std::vector<float> bias,
         gemm::Epilogue::Act act, float cap)
      : spec_(spec),
        weight_(std::move(weight)),
        bias_(std::move(bias)),
        act_(act),
        cap_(cap) {}

  const Tensor& forward(const Tensor& x) const override {
    CQ_CHECK(x.shape().rank() == 4 && x.dim(1) == spec_.in_channels);
    const auto n = x.dim(0), in_h = x.dim(2), in_w = x.dim(3);
    ConvGeometry g;
    g.in_channels = spec_.in_channels / spec_.groups;
    g.in_h = in_h;
    g.in_w = in_w;
    g.kernel_h = g.kernel_w = spec_.kernel;
    g.stride = spec_.stride;
    g.pad = spec_.pad;
    const auto oh = g.out_h(), ow = g.out_w();
    const auto spatial = oh * ow;
    const auto krows = g.col_rows();
    const auto cout_g = spec_.out_channels / spec_.groups;
    const auto cin_g = g.in_channels;
    const auto cols = n * spatial;  // all images side by side

    // Deep stages on thumbnail inputs run a handful of output pixels per
    // image; there the row-major im2col walk is per-element bookkeeping
    // while the patch-major transpose (im2row + kNT) writes each patch as
    // one contiguous run. The blocked GEMM's micro-kernel and k-panel order
    // are identical across transpose variants, so both lowerings are
    // bitwise-equal — and the choice depends only on layer geometry, never
    // on batch size, preserving batched-vs-serial bitwise equivalence.
    const bool patch_major = spatial <= 16;
    // Wide-spatial layers stay on the classic split pipeline (im2col row
    // writes, then pack_b's streaming read) rather than the fused
    // im2col_packed + gemm_prepacked_b path: at serving batch widths the
    // sliver-scattered lowering writes cost more than the pack_b pass they
    // delete, so the split path is the faster steady state for the worker
    // (the fused entry points remain in the tensor layer for narrow-width
    // callers, equivalence-pinned by tests/test_gemm.cpp).

    out_.resize(Shape{n, spec_.out_channels, oh, ow});
    cols_.resize(patch_major ? Shape{cols, krows} : Shape{krows, cols});
    gout_.resize(Shape{cout_g, cols});

    gemm::Epilogue ep;
    ep.bias_kind = gemm::Epilogue::Bias::kPerRow;
    ep.act = act_;
    ep.cap = cap_;

    const std::int64_t sample_in = spec_.in_channels * in_h * in_w;
    for (std::int64_t grp = 0; grp < spec_.groups; ++grp) {
      // Batched lowering: image i occupies columns [i*spatial, (i+1)*spatial)
      // of the shared column matrix (rows of the patch matrix).
      {
        CQ_TRACE_SCOPE_N("serve.lower", n);
        for (std::int64_t img = 0; img < n; ++img) {
          const float* src =
              x.data() + img * sample_in + grp * cin_g * in_h * in_w;
          if (patch_major)
            im2row(src, g, cols_.data() + img * spatial * krows);
          else
            im2col(src, g, cols_.data() + img * spatial, cols);
        }
      }
      ep.bias = bias_.data() + grp * cout_g;
      gemm::gemm(patch_major ? gemm::Trans::kNT : gemm::Trans::kNN, cout_g,
                 cols, krows, weight_.data() + grp * cout_g * krows,
                 cols_.data(), gout_.data(), /*accumulate=*/false, ep);
      // GEMM output is channel-major over the whole batch; scatter each
      // (channel, image) plane back to NCHW. One-pixel planes are a plain
      // [cout_g, n] transpose — skip the per-plane memcpy machinery.
      if (spatial == 1) {
        for (std::int64_t oc_local = 0; oc_local < cout_g; ++oc_local) {
          const float* src = gout_.data() + oc_local * cols;
          const std::int64_t oc = grp * cout_g + oc_local;
          for (std::int64_t img = 0; img < n; ++img)
            out_.data()[img * spec_.out_channels + oc] = src[img];
        }
      } else {
        for (std::int64_t oc_local = 0; oc_local < cout_g; ++oc_local) {
          const float* src = gout_.data() + oc_local * cols;
          const std::int64_t oc = grp * cout_g + oc_local;
          for (std::int64_t img = 0; img < n; ++img)
            std::memcpy(
                out_.data() + (img * spec_.out_channels + oc) * spatial,
                src + img * spatial,
                static_cast<std::size_t>(spatial) * sizeof(float));
        }
      }
    }
    return out_;
  }

  const char* name() const override { return "fp32_conv"; }

 private:
  nn::Conv2dSpec spec_;
  Tensor weight_;  // [Cout, krows], BN pre-folded
  std::vector<float> bias_;
  gemm::Epilogue::Act act_;
  float cap_;
  mutable Tensor out_, cols_, gout_;  // retained scratch (zero-alloc steady)
};

class LinearOp : public Fp32Op {
 public:
  LinearOp(Tensor weight, std::vector<float> bias)
      : weight_(std::move(weight)), bias_(std::move(bias)) {}

  const Tensor& forward(const Tensor& x) const override {
    CQ_CHECK(x.shape().rank() == 2 && x.dim(1) == weight_.dim(1));
    const auto n = x.dim(0), out = weight_.dim(0);
    out_.resize(Shape{n, out});
    gemm::Epilogue ep;
    ep.bias = bias_.data();
    ep.bias_kind = gemm::Epilogue::Bias::kPerCol;
    gemm::gemm(gemm::Trans::kNT, n, out, weight_.dim(1), x.data(),
               weight_.data(), out_.data(), /*accumulate=*/false, ep);
    return out_;
  }

  const char* name() const override { return "fp32_linear"; }

 private:
  Tensor weight_;  // [out, in]
  std::vector<float> bias_;
  mutable Tensor out_;
};

class ReluOp : public Fp32Op {
 public:
  explicit ReluOp(float cap) : cap_(cap) {}
  const Tensor& forward(const Tensor& x) const override {
    out_.resize_as(x);
    const float* src = x.data();
    float* dst = out_.data();
    for (std::int64_t i = 0; i < x.numel(); ++i) {
      float v = src[i] > 0.0f ? src[i] : 0.0f;
      if (cap_ > 0.0f && v > cap_) v = cap_;
      dst[i] = v;
    }
    return out_;
  }
  const char* name() const override { return "fp32_relu"; }

 private:
  float cap_;
  mutable Tensor out_;
};

class MaxPoolOp : public Fp32Op {
 public:
  MaxPoolOp(std::int64_t kernel, std::int64_t stride, std::int64_t pad)
      : kernel_(kernel), stride_(stride), pad_(pad) {}
  const Tensor& forward(const Tensor& x) const override {
    const auto n = x.dim(0), c = x.dim(1), h = x.dim(2), w = x.dim(3);
    const auto oh = (h + 2 * pad_ - kernel_) / stride_ + 1;
    const auto ow = (w + 2 * pad_ - kernel_) / stride_ + 1;
    out_.resize(Shape{n, c, oh, ow});
    float* dst = out_.data();
    std::int64_t o = 0;
    for (std::int64_t img = 0; img < n; ++img)
      for (std::int64_t ch = 0; ch < c; ++ch) {
        const float* plane = x.data() + (img * c + ch) * h * w;
        for (std::int64_t oy = 0; oy < oh; ++oy)
          for (std::int64_t ox = 0; ox < ow; ++ox, ++o) {
            float best = -std::numeric_limits<float>::infinity();
            for (std::int64_t ky = 0; ky < kernel_; ++ky)
              for (std::int64_t kx = 0; kx < kernel_; ++kx) {
                const auto iy = oy * stride_ + ky - pad_;
                const auto ix = ox * stride_ + kx - pad_;
                if (iy < 0 || iy >= h || ix < 0 || ix >= w) continue;
                best = std::max(best, plane[iy * w + ix]);
              }
            dst[o] = best;
          }
      }
    return out_;
  }
  const char* name() const override { return "fp32_maxpool"; }

 private:
  std::int64_t kernel_, stride_, pad_;
  mutable Tensor out_;
};

class GlobalAvgPoolOp : public Fp32Op {
 public:
  const Tensor& forward(const Tensor& x) const override {
    const auto n = x.dim(0), c = x.dim(1), spatial = x.dim(2) * x.dim(3);
    out_.resize(Shape{n, c});
    float* dst = out_.data();
    for (std::int64_t img = 0; img < n; ++img)
      for (std::int64_t ch = 0; ch < c; ++ch) {
        const float* plane = x.data() + (img * c + ch) * spatial;
        double s = 0.0;
        for (std::int64_t i = 0; i < spatial; ++i) s += plane[i];
        dst[img * c + ch] = static_cast<float>(s / spatial);
      }
    return out_;
  }
  const char* name() const override { return "fp32_gap"; }

 private:
  mutable Tensor out_;
};

class FlattenOp : public Fp32Op {
 public:
  const Tensor& forward(const Tensor& x) const override {
    const auto n = x.dim(0);
    out_ = x.reshape(Shape{n, x.numel() / n});  // shares storage, no copy
    return out_;
  }
  const char* name() const override { return "fp32_flatten"; }

 private:
  mutable Tensor out_;
};

class ResidualOp : public Fp32Op {
 public:
  ResidualOp(std::vector<std::unique_ptr<Fp32Op>> body,
             std::vector<std::unique_ptr<Fp32Op>> shortcut, bool relu_after)
      : body_(std::move(body)),
        shortcut_(std::move(shortcut)),
        relu_after_(relu_after) {}

  const Tensor& forward(const Tensor& x) const override {
    const Tensor* main = &x;
    for (const auto& op : body_) main = &op->forward(*main);
    const Tensor* skip = &x;
    for (const auto& op : shortcut_) skip = &op->forward(*skip);
    CQ_CHECK(main->same_shape(*skip));
    out_.resize_as(*main);
    const float* a = main->data();
    const float* b = skip->data();
    float* dst = out_.data();
    if (relu_after_) {
      for (std::int64_t i = 0; i < out_.numel(); ++i) {
        const float v = a[i] + b[i];
        dst[i] = v > 0.0f ? v : 0.0f;
      }
    } else {
      for (std::int64_t i = 0; i < out_.numel(); ++i) dst[i] = a[i] + b[i];
    }
    return out_;
  }
  const char* name() const override { return "fp32_residual"; }

 private:
  std::vector<std::unique_ptr<Fp32Op>> body_;
  std::vector<std::unique_ptr<Fp32Op>> shortcut_;
  bool relu_after_;
  mutable Tensor out_;
};

void compile_into(nn::Sequential& seq,
                  std::vector<std::unique_ptr<Fp32Op>>& ops);

/// Compile one child; returns how many children were consumed.
std::size_t compile_child(nn::Sequential& seq, std::size_t index,
                          std::vector<std::unique_ptr<Fp32Op>>& ops) {
  nn::Module& child = seq.child(index);
  if (auto* conv = dynamic_cast<nn::Conv2d*>(&child)) {
    Tensor weight = conv->weight().value;
    std::vector<float> bias;
    std::size_t consumed = 1;
    if (index + 1 < seq.size()) {
      if (auto* bn = dynamic_cast<nn::BatchNorm2d*>(&seq.child(index + 1))) {
        deploy::fold_batchnorm(*bn, weight, bias);
        consumed = 2;
      }
    }
    if (bias.empty())
      bias.assign(static_cast<std::size_t>(conv->spec().out_channels), 0.0f);
    // Peephole: fuse an immediately following ReLU into the GEMM epilogue
    // (bit-identical to a separate pass; see gemm.hpp).
    auto act = gemm::Epilogue::Act::kNone;
    float cap = 0.0f;
    if (index + consumed < seq.size()) {
      if (auto* relu =
              dynamic_cast<nn::ReLU*>(&seq.child(index + consumed))) {
        act = relu->cap() > 0.0f ? gemm::Epilogue::Act::kReluCap
                                 : gemm::Epilogue::Act::kRelu;
        cap = relu->cap();
        ++consumed;
      }
    }
    ops.push_back(std::make_unique<ConvOp>(conv->spec(), std::move(weight),
                                           std::move(bias), act, cap));
    return consumed;
  }
  if (auto* linear = dynamic_cast<nn::Linear*>(&child)) {
    std::vector<float> bias(
        static_cast<std::size_t>(linear->out_features()), 0.0f);
    if (linear->bias() != nullptr)
      for (std::int64_t i = 0; i < linear->out_features(); ++i)
        bias[static_cast<std::size_t>(i)] = linear->bias()->value[i];
    ops.push_back(std::make_unique<LinearOp>(linear->weight().value,
                                             std::move(bias)));
    return 1;
  }
  if (auto* relu = dynamic_cast<nn::ReLU*>(&child)) {
    ops.push_back(std::make_unique<ReluOp>(relu->cap()));
    return 1;
  }
  if (dynamic_cast<quant::ActQuant*>(&child) != nullptr) {
    return 1;  // full-precision serving drops fake quantization
  }
  if (auto* pool = dynamic_cast<nn::MaxPool2d*>(&child)) {
    ops.push_back(std::make_unique<MaxPoolOp>(pool->kernel(), pool->stride(),
                                              pool->pad()));
    return 1;
  }
  if (dynamic_cast<nn::GlobalAvgPool*>(&child) != nullptr) {
    ops.push_back(std::make_unique<GlobalAvgPoolOp>());
    return 1;
  }
  if (dynamic_cast<nn::Flatten*>(&child) != nullptr) {
    ops.push_back(std::make_unique<FlattenOp>());
    return 1;
  }
  if (auto* block = dynamic_cast<models::BasicBlock*>(&child)) {
    std::vector<std::unique_ptr<Fp32Op>> body, shortcut;
    compile_into(block->main_path(), body);
    if (block->shortcut_path() != nullptr)
      compile_into(*block->shortcut_path(), shortcut);
    ops.push_back(std::make_unique<ResidualOp>(
        std::move(body), std::move(shortcut), /*relu_after=*/true));
    return 1;
  }
  if (auto* block = dynamic_cast<models::InvertedResidual*>(&child)) {
    std::vector<std::unique_ptr<Fp32Op>> body;
    compile_into(block->body(), body);
    if (block->uses_residual()) {
      ops.push_back(std::make_unique<ResidualOp>(
          std::move(body), std::vector<std::unique_ptr<Fp32Op>>{},
          /*relu_after=*/false));
    } else {
      for (auto& op : body) ops.push_back(std::move(op));
    }
    return 1;
  }
  CQ_CHECK_MSG(false, "fp32 compiler: unsupported module at index " << index);
}

void compile_into(nn::Sequential& seq,
                  std::vector<std::unique_ptr<Fp32Op>>& ops) {
  std::size_t index = 0;
  while (index < seq.size()) index += compile_child(seq, index, ops);
}

}  // namespace

const Tensor& Fp32Network::forward(const Tensor& x) const {
  CQ_CHECK_MSG(!ops_.empty(), "empty compiled network");
  const Tensor* h = &x;
  for (const auto& op : ops_) h = &op->forward(*h);
  return *h;
}

Fp32Network compile_fp32(nn::Sequential& net) {
  Fp32Network compiled;
  compile_into(net, compiled.ops_);
  return compiled;
}

}  // namespace cq::serve
