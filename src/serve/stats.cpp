#include "serve/stats.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "core/prof.hpp"

namespace cq::serve {

std::size_t LatencyHistogram::bucket_index(std::uint64_t micros) {
  if (micros <= 1) return 0;
  // index = round(log2(micros) * kBucketsPerOctave), computed in floats —
  // the ~19% bucket width dwarfs any log2 rounding.
  const double idx = std::log2(static_cast<double>(micros)) *
                     static_cast<double>(kBucketsPerOctave);
  const auto i = static_cast<std::size_t>(idx + 0.5);
  return std::min(i, kBuckets - 1);
}

double LatencyHistogram::bucket_lower(std::size_t index) {
  return std::exp2(static_cast<double>(index) /
                   static_cast<double>(kBucketsPerOctave));
}

void LatencyHistogram::record(std::uint64_t micros) {
  ++buckets_[bucket_index(micros)];
  ++count_;
  sum_ += micros;
  if (micros > max_) max_ = micros;
}

double LatencyHistogram::percentile(double p) const {
  if (count_ == 0) return 0.0;
  p = std::clamp(p, 0.0, 100.0);
  const double target = p / 100.0 * static_cast<double>(count_);
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    if (buckets_[i] == 0) continue;
    const auto next = seen + buckets_[i];
    if (static_cast<double>(next) >= target) {
      // Interpolate within the bucket by rank.
      const double lo = bucket_lower(i);
      const double hi = bucket_lower(i + 1);
      const double frac =
          buckets_[i] == 0
              ? 0.0
              : (target - static_cast<double>(seen)) /
                    static_cast<double>(buckets_[i]);
      return std::min(lo + (hi - lo) * std::clamp(frac, 0.0, 1.0),
                      static_cast<double>(max_));
    }
    seen = next;
  }
  return static_cast<double>(max_);
}

void LatencyHistogram::merge(const LatencyHistogram& other) {
  for (std::size_t i = 0; i < kBuckets; ++i) buckets_[i] += other.buckets_[i];
  count_ += other.count_;
  sum_ += other.sum_;
  max_ = std::max(max_, other.max_);
}

namespace {

void json_latency(std::ostringstream& os, const char* key,
                  const LatencyHistogram& h) {
  os << "\"" << key << "\": {\"count\": " << h.count()
     << ", \"mean_us\": " << h.mean_micros()
     << ", \"p50_us\": " << h.percentile(50.0)
     << ", \"p90_us\": " << h.percentile(90.0)
     << ", \"p95_us\": " << h.percentile(95.0)
     << ", \"p99_us\": " << h.percentile(99.0)
     << ", \"max_us\": " << h.max_micros() << "}";
}

/// Emit [n1, n2, ...] trimmed at the last non-zero bucket (bucket i = batch
/// size i+1), so an idle worker renders as [] rather than 64 zeros.
void json_batch_hist(std::ostringstream& os, const BatchHist& h) {
  std::size_t last = 0;
  for (std::size_t i = 0; i < h.size(); ++i)
    if (h[i] != 0) last = i + 1;
  os << "[";
  for (std::size_t i = 0; i < last; ++i) {
    if (i) os << ", ";
    os << h[i];
  }
  os << "]";
}

}  // namespace

std::string EngineStats::to_json() const {
  std::ostringstream os;
  os << "{\n"
     << "  \"submitted\": " << submitted << ",\n"
     << "  \"served\": " << served << ",\n"
     << "  \"rejected_full\": " << rejected_full << ",\n"
     << "  \"timed_out\": " << timed_out << ",\n"
     << "  \"shutdown_failed\": " << shutdown_failed << ",\n"
     << "  \"batches\": " << batches << ",\n"
     << "  \"stolen\": " << stolen << ",\n"
     << "  \"mean_batch_size\": " << mean_batch_size << ",\n"
     << "  \"max_batch_seen\": " << max_batch_seen << ",\n"
     << "  \"queue_depth\": " << queue_depth << ",\n"
     << "  \"queue_peak_depth\": " << queue_peak_depth << ",\n"
     << "  \"warmup_heap_allocs\": " << warmup_heap_allocs << ",\n"
     << "  \"steady_heap_allocs\": " << steady_heap_allocs << ",\n"
     << "  \"uptime_seconds\": " << uptime_seconds << ",\n"
     << "  \"throughput_rps\": " << throughput_rps << ",\n  ";
  os << "\"batch_hist\": ";
  json_batch_hist(os, batch_hist);
  os << ",\n  \"workers\": [";
  for (std::size_t i = 0; i < workers.size(); ++i) {
    const WorkerSnapshot& w = workers[i];
    if (i) os << ", ";
    os << "{\"served\": " << w.served << ", \"batches\": " << w.batches
       << ", \"timed_out\": " << w.timed_out << ", \"stolen\": " << w.stolen
       << ", \"mean_batch_size\": " << w.mean_batch_size
       << ", \"queue_depth\": " << w.queue_depth
       << ", \"queue_peak_depth\": " << w.queue_peak_depth
       << ", \"batch_hist\": ";
    json_batch_hist(os, w.batch_hist);
    os << "}";
  }
  os << "],\n  ";
  json_latency(os, "queue_latency", queue_latency);
  os << ",\n  ";
  json_latency(os, "total_latency", total_latency);
  // Aggregate profiler table: per-op wall time over every instrumented
  // scope the process ran (serve pipeline phases, GEMM, lowering, ...).
  os << ",\n  \"profile\": " << prof::json();
  os << "\n}";
  return os.str();
}

}  // namespace cq::serve
