// The serving engine's fp32 fast path: a trained backbone compiled into a
// flat op pipeline tuned for dynamic batches.
//
// Differences from the training-side modules that make batching pay on one
// core (DESIGN.md §10):
//  * BatchNorm is folded into the preceding convolution at compile time
//    (deploy::fold_batchnorm), so inference runs conv+bias only.
//  * Convolutions lower the WHOLE batch side by side (strided im2col into a
//    [krows, N*spatial] matrix) and run ONE fused-epilogue GEMM per group.
//    The packed weight panel is therefore amortized across every request in
//    the batch — this is where dynamic batching buys throughput, since a
//    single core gets no parallelism win from batching.
//  * A ReLU immediately following conv+BN is fused into the GEMM epilogue
//    (bit-identical to the separate pass, see gemm.hpp).
//  * Every op writes into retained member scratch, so steady-state forwards
//    perform zero heap allocations once warmed at the widest batch.
//
// Batch invariance: the blocked GEMM accumulates each output element over k
// in a fixed order independent of the M/N blocking, and the epilogue is
// per-element, so a batch-N forward is BITWISE identical to N batch-1
// forwards. The engine's equivalence tests assert this exactly.
//
// Like deploy::Int8Op, forward() is const but keeps mutable scratch: one
// compiled network per serving thread.
#pragma once

#include <memory>
#include <vector>

#include "nn/sequential.hpp"
#include "tensor/tensor.hpp"

namespace cq::serve {

class Fp32Op {
 public:
  virtual ~Fp32Op() = default;
  virtual const Tensor& forward(const Tensor& x) const = 0;
  virtual const char* name() const = 0;
};

class Fp32Network {
 public:
  /// Forward an [N, C, H, W] batch; returns [N, feature_dim] (or whatever
  /// the final op produces). The reference stays valid until the next call.
  const Tensor& forward(const Tensor& x) const;

  std::size_t op_count() const { return ops_.size(); }
  const Fp32Op& op(std::size_t i) const { return *ops_.at(i); }

 private:
  friend Fp32Network compile_fp32(nn::Sequential& net);
  std::vector<std::unique_ptr<Fp32Op>> ops_;
};

/// Compile a trained backbone (eval-mode semantics: running BN statistics
/// are folded). Supports the same module set as deploy::compile_int8:
/// Conv2d (+BatchNorm2d folded, +ReLU fused), Linear, ReLU, MaxPool2d,
/// GlobalAvgPool, Flatten, ActQuant (dropped), models::BasicBlock,
/// models::InvertedResidual. Throws CheckError on anything else.
Fp32Network compile_fp32(nn::Sequential& net);

}  // namespace cq::serve
