// Dynamic micro-batch assembly: collate popped requests into one NCHW
// tensor, scatter feature rows back, filter expired deadlines.
//
// One Batcher per worker. The batch tensor is prewarmed at the engine's
// max_batch and Tensor::resize keeps capacity, so collating any smaller
// batch reuses the same buffer — no allocation per batch (DESIGN.md §10).
#pragma once

#include <vector>

#include "serve/request.hpp"
#include "tensor/tensor.hpp"

namespace cq::serve {

class Batcher {
 public:
  /// `sample_shape` is one input sample's CHW shape; `feature_dim` the
  /// encoder output width.
  Batcher(Shape sample_shape, std::int64_t feature_dim);

  /// Drop requests whose deadline has already passed, completing them
  /// kTimeout without forwarding. Compacts `batch` in place; returns how
  /// many were expired.
  std::size_t filter_expired(std::vector<Request*>& batch,
                             Clock::time_point now);

  /// Pack the requests' inputs into an [N, C, H, W] tensor (N = size).
  const Tensor& collate(const std::vector<Request*>& batch);

  /// Copy feature row i of `features` ([N, feature_dim]) into request i's
  /// output buffer. Does NOT complete the requests (the worker does, after
  /// recording latency).
  void scatter(const Tensor& features,
               const std::vector<Request*>& batch) const;

  /// Run one throwaway collate at `max_batch` width so the batch buffer and
  /// downstream model scratch reach their steady-state capacity.
  const Tensor& prewarm(std::size_t max_batch);

  std::int64_t sample_numel() const { return sample_numel_; }
  std::int64_t feature_dim() const { return feature_dim_; }

 private:
  Shape sample_shape_;  // CHW
  std::int64_t sample_numel_;
  std::int64_t feature_dim_;
  Tensor batch_;
};

}  // namespace cq::serve
