#include "serve/model.hpp"

namespace cq::serve {

namespace {

// One class serves both precisions: the precision is a CompileOptions
// field, not a code path — the pass pipeline and executor handle the rest.
class GraphInstance : public ModelInstance {
 public:
  GraphInstance(nn::Sequential& backbone, const Shape& sample_shape,
                std::int64_t max_batch, graph::Precision precision)
      : model_(graph::compile(backbone, sample_shape,
                              graph::CompileOptions{max_batch, precision,
                                                    /*run_passes=*/true})),
        kind_(precision == graph::Precision::kInt8 ? "int8" : "fp32") {}

  const Tensor& forward(const Tensor& batch) override {
    return model_.forward(batch);
  }
  const char* kind_name() const override { return kind_; }
  std::int64_t arena_bytes() const override { return model_.arena_bytes(); }
  graph::CompiledModel* compiled() override { return &model_; }

 private:
  graph::CompiledModel model_;
  const char* kind_;
};

}  // namespace

std::unique_ptr<ModelInstance> make_instance(InstanceKind kind,
                                             nn::Sequential& backbone,
                                             const Shape& sample_shape,
                                             std::int64_t max_batch) {
  const auto precision = kind == InstanceKind::kFp32
                             ? graph::Precision::kF32
                             : graph::Precision::kInt8;
  return std::make_unique<GraphInstance>(backbone, sample_shape, max_batch,
                                         precision);
}

}  // namespace cq::serve
