#include "serve/model.hpp"

namespace cq::serve {

namespace {

class Fp32Instance : public ModelInstance {
 public:
  explicit Fp32Instance(nn::Sequential& backbone)
      : net_(compile_fp32(backbone)) {}
  const Tensor& forward(const Tensor& batch) override {
    return net_.forward(batch);
  }
  const char* kind_name() const override { return "fp32"; }

 private:
  Fp32Network net_;
};

class Int8Instance : public ModelInstance {
 public:
  explicit Int8Instance(nn::Sequential& backbone)
      : net_(deploy::compile_int8(backbone)) {}
  const Tensor& forward(const Tensor& batch) override {
    // Int8Network returns by value; keeping the handle in a member makes
    // the buffer round-trip through the pool instead of the heap.
    out_ = net_.forward(batch);
    return out_;
  }
  const char* kind_name() const override { return "int8"; }

 private:
  deploy::Int8Network net_;
  Tensor out_;
};

}  // namespace

std::unique_ptr<ModelInstance> make_instance(InstanceKind kind,
                                             nn::Sequential& backbone) {
  if (kind == InstanceKind::kFp32)
    return std::make_unique<Fp32Instance>(backbone);
  return std::make_unique<Int8Instance>(backbone);
}

}  // namespace cq::serve
