// The embeddable inference engine: checkpoint in, features out.
//
//   Engine engine(config);            // loads + compiles the encoder
//   Request r; r.input = ...; r.output = ...;
//   engine.submit(&r);                // non-blocking, fail-fast
//   if (r.wait() == Status::kOk) ...  // feature vector in r.output
//   engine.stop();                    // graceful: accepted work completes
//
// Architecture (DESIGN.md §10, §14): submit() round-robins across one
// bounded lock-free RequestQueue PER worker (sharded, so producers and the
// worker pool never contend on a single queue lock), falling back to any
// shard with room before rejecting. Each worker pops dynamic micro-batches
// from its OWN queue (fills to max_batch or the max_wait window, whichever
// first), stealing from sibling queues when its own runs empty, then
// filters expired deadlines, collates into a pre-warmed batch tensor,
// forwards through a per-worker compiled ModelInstance, and scatters
// feature rows back. Per-worker stats (latency histograms, batch-size
// histograms, per-queue depths, steal counts, heap-allocation deltas)
// aggregate on demand into EngineStats / stats_json().
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "models/encoder.hpp"
#include "serve/batcher.hpp"
#include "serve/model.hpp"
#include "serve/queue.hpp"
#include "serve/request.hpp"
#include "serve/stats.hpp"

namespace cq::serve {

struct EngineConfig {
  /// Checkpoint produced by models::save_module() for `arch`.
  std::string checkpoint;
  std::string arch = "resnet18";
  /// Input sample geometry (single sample; the engine batches).
  std::int64_t in_channels = 3;
  std::int64_t in_h = 16;
  std::int64_t in_w = 16;
  InstanceKind instance = InstanceKind::kFp32;
  /// Worker threads. 0 is allowed: requests queue but never run — useful
  /// for testing admission control; stop() then fails them kShutdown.
  std::size_t workers = 1;
  /// Micro-batching: a worker takes up to `max_batch` requests, waiting at
  /// most `max_wait` past the first request's arrival for the batch to fill.
  std::size_t max_batch = 8;
  std::chrono::microseconds max_wait{500};
  /// Bounded queue capacity; submit() fails fast when full.
  std::size_t queue_capacity = 64;
  /// Forward once per batch width (max_batch down to 1) per worker at
  /// startup so steady-state serving performs zero heap allocations per
  /// request regardless of how full each micro-batch runs.
  bool prewarm = true;
};

class Engine {
 public:
  /// Loads the checkpoint into a fresh `arch` encoder (full-precision
  /// policy, eval mode), compiles one ModelInstance per worker, prewarms,
  /// and starts the workers. Throws CheckError on a bad checkpoint.
  explicit Engine(const EngineConfig& config);
  ~Engine();

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Non-blocking admission. Returns false — WITHOUT completing the request
  /// or touching its status — when the queue is full or the engine is
  /// stopping; the caller sheds the load. On success the request will reach
  /// a terminal status exactly once.
  bool submit(Request* r);

  /// Graceful shutdown: stop admitting, let workers drain already-accepted
  /// requests (they complete kOk), join, then fail anything left unpopped
  /// (workers == 0) with kShutdown. Idempotent.
  void stop();

  /// Aggregate a stats snapshot across workers. Safe to call while serving.
  EngineStats stats() const;
  std::string stats_json() const { return stats().to_json(); }

  std::int64_t feature_dim() const { return encoder_.feature_dim; }
  std::int64_t sample_numel() const {
    return config_.in_channels * config_.in_h * config_.in_w;
  }
  const EngineConfig& config() const { return config_; }

 private:
  struct Worker {
    std::size_t index = 0;  // also indexes this worker's own queue shard
    std::unique_ptr<ModelInstance> model;
    std::unique_ptr<Batcher> batcher;
    std::thread thread;
    mutable std::mutex stats_mu;
    WorkerStats stats;
  };

  void worker_main(Worker& w);

  EngineConfig config_;
  models::Encoder encoder_;
  /// One shard per worker (min one, so workers == 0 still admits). Total
  /// admission capacity is config.queue_capacity split evenly across shards.
  std::vector<std::unique_ptr<RequestQueue>> queues_;
  std::vector<std::unique_ptr<Worker>> workers_;
  std::atomic<std::uint64_t> rr_{0};  // round-robin submit ticket
  std::atomic<bool> stopping_{false};
  bool stopped_ = false;  // guarded by stop_mu_
  std::mutex stop_mu_;
  // Startup latch: the constructor blocks until every worker has prewarmed.
  std::mutex ready_mu_;
  std::condition_variable ready_cv_;
  std::size_t workers_ready_ = 0;  // guarded by ready_mu_
  std::atomic<std::uint64_t> submitted_{0};
  std::atomic<std::uint64_t> rejected_{0};
  std::atomic<std::uint64_t> shutdown_failed_{0};
  Clock::time_point start_time_;
};

}  // namespace cq::serve
