// A single inference request flowing through the serving engine.
//
// Requests are caller-owned: the client allocates the Request plus the input
// and output buffers, submits a pointer to the engine, and blocks in wait().
// The engine never copies a Request and never allocates on its behalf — the
// input is memcpy'd straight into a worker's pre-warmed batch tensor and the
// feature row is memcpy'd back into `output`. This keeps the steady-state
// request path free of heap traffic (DESIGN.md §10).
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>

namespace cq::serve {

using Clock = std::chrono::steady_clock;

/// Terminal states a request can reach. kPending is the in-flight state.
enum class Status : std::uint8_t {
  kPending,        // submitted (or not yet submitted); wait() would block
  kOk,             // forward ran; `output` holds the feature vector
  kTimeout,        // deadline expired before a worker picked it up
  kRejectedFull,   // bounded queue was full; request was never enqueued
  kShutdown,       // engine stopped before the request could run
};

inline const char* status_name(Status s) {
  switch (s) {
    case Status::kPending: return "pending";
    case Status::kOk: return "ok";
    case Status::kTimeout: return "timeout";
    case Status::kRejectedFull: return "rejected_full";
    case Status::kShutdown: return "shutdown";
  }
  return "?";
}

/// One request. Not copyable/movable once submitted (the engine holds a raw
/// pointer to it). Reusable: call reset() between submissions.
struct Request {
  /// Caller-owned input image, NCHW single sample, exactly
  /// Engine::sample_numel() floats. Must stay valid until wait() returns.
  const float* input = nullptr;
  /// Caller-owned output buffer, Engine::feature_dim() floats. Written only
  /// when the final status is kOk.
  float* output = nullptr;
  /// Absolute deadline. A request still queued past this instant completes
  /// kTimeout without ever touching a model. Clock::time_point::max() (the
  /// default) means "no deadline".
  Clock::time_point deadline = Clock::time_point::max();

  /// Stamped by Engine::submit(); used for queue-latency accounting.
  Clock::time_point enqueue_time{};

  /// Block until a terminal status is assigned, then return it.
  Status wait() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [this] { return status_ != Status::kPending; });
    return status_;
  }

  /// Non-blocking peek at the current status.
  Status status() const {
    std::lock_guard<std::mutex> lock(mu_);
    return status_;
  }

  /// Assign a terminal status and wake the waiter. Called exactly once per
  /// submission, by the engine (or by submit() itself on rejection).
  void complete(Status s) {
    std::lock_guard<std::mutex> lock(mu_);
    status_ = s;
    // Notify while still holding the lock: the waiter owns this Request and
    // may destroy (or reset and resubmit) it the moment wait() returns, so
    // the broadcast must finish before the waiter can re-acquire the mutex
    // and observe the terminal status. Unlock-then-notify would race the
    // notify against the Request's destructor.
    cv_.notify_all();
  }

  /// Make the request submittable again after wait() has returned.
  void reset() {
    std::lock_guard<std::mutex> lock(mu_);
    status_ = Status::kPending;
  }

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  Status status_ = Status::kPending;
};

}  // namespace cq::serve
