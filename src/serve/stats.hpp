// Serving metrics: latency histograms, throughput, queue depth — exported as
// JSON for dashboards and for bench/serve.cpp.
//
// LatencyHistogram uses fixed logarithmic buckets (quarter-octave, i.e. four
// buckets per power of two) spanning 1µs..~70s. Recording is O(1) with no
// allocation, percentile queries interpolate within a bucket, and the
// relative error of any quantile is bounded by the bucket ratio 2^(1/4)
// (~19%) — the same design point as HdrHistogram-style serving metrics.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

namespace cq::serve {

class LatencyHistogram {
 public:
  /// Four buckets per octave over 1µs .. 2^42µs (~52 days, effectively +inf).
  static constexpr std::size_t kBucketsPerOctave = 4;
  static constexpr std::size_t kOctaves = 42;
  static constexpr std::size_t kBuckets = kBucketsPerOctave * kOctaves + 1;

  void record(std::uint64_t micros);

  std::uint64_t count() const { return count_; }
  std::uint64_t max_micros() const { return max_; }
  double mean_micros() const {
    return count_ == 0 ? 0.0 : static_cast<double>(sum_) /
                                   static_cast<double>(count_);
  }
  /// p in [0, 100]. Returns the interpolated bucket value in microseconds.
  double percentile(double p) const;

  /// Merge another histogram into this one (per-worker -> engine rollup).
  void merge(const LatencyHistogram& other);

 private:
  static std::size_t bucket_index(std::uint64_t micros);
  static double bucket_lower(std::size_t index);

  std::array<std::uint64_t, kBuckets> buckets_{};
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t max_ = 0;
};

/// Exact batch-size histogram: bucket i counts batches of size i+1, with the
/// last bucket absorbing anything >= kBatchHistBuckets. Sized past any
/// realistic max_batch so the common case is one-bucket-per-size.
inline constexpr std::size_t kBatchHistBuckets = 64;
using BatchHist = std::array<std::uint64_t, kBatchHistBuckets>;

/// Counters owned by one worker thread; the engine snapshots them under the
/// worker's stats mutex.
struct WorkerStats {
  std::uint64_t batches = 0;
  std::uint64_t served = 0;       // requests completed kOk
  std::uint64_t timed_out = 0;    // expired while queued
  std::uint64_t stolen = 0;       // requests taken from sibling queues
  std::uint64_t batch_size_sum = 0;
  std::uint64_t max_batch_seen = 0;
  BatchHist batch_hist{};         // batch-size distribution, bucket i = size i+1
  /// Heap allocations (pool misses) on this worker's thread during warmup
  /// (first batch at full width) vs steady state afterwards. Steady state
  /// must be zero for the engine's zero-allocation claim to hold.
  std::uint64_t warmup_heap_allocs = 0;
  std::uint64_t steady_heap_allocs = 0;
  LatencyHistogram queue_latency;  // submit -> dequeue
  LatencyHistogram total_latency;  // submit -> completion
};

/// Per-worker slice of an EngineStats snapshot: each worker owns one request
/// queue (the sharded design, DESIGN.md §14), so queue depth/peak are
/// per-worker observables alongside its serving counters.
struct WorkerSnapshot {
  std::uint64_t served = 0;
  std::uint64_t batches = 0;
  std::uint64_t timed_out = 0;
  std::uint64_t stolen = 0;
  double mean_batch_size = 0.0;
  std::size_t queue_depth = 0;       // this worker's own queue, right now
  std::size_t queue_peak_depth = 0;  // its high-water mark
  BatchHist batch_hist{};
};

/// Engine-level snapshot, aggregated across workers on demand.
struct EngineStats {
  std::uint64_t submitted = 0;
  std::uint64_t rejected_full = 0;
  std::uint64_t served = 0;
  std::uint64_t timed_out = 0;
  std::uint64_t shutdown_failed = 0;  // completed kShutdown during stop()
  std::uint64_t batches = 0;
  std::uint64_t stolen = 0;  // cross-queue steals, total
  double mean_batch_size = 0.0;
  std::uint64_t max_batch_seen = 0;
  std::size_t queue_depth = 0;       // summed over all shard queues
  std::size_t queue_peak_depth = 0;  // sum of per-shard high-water marks
  std::uint64_t warmup_heap_allocs = 0;
  std::uint64_t steady_heap_allocs = 0;
  double uptime_seconds = 0.0;
  double throughput_rps = 0.0;  // served / uptime
  LatencyHistogram queue_latency;
  LatencyHistogram total_latency;
  BatchHist batch_hist{};  // merged batch-size distribution
  std::vector<WorkerSnapshot> workers;

  /// Render as a JSON object (latencies in microseconds, p50/p90/p95/p99;
  /// batch_hist arrays trimmed at the last non-empty bucket; one "workers"
  /// entry per worker with its queue depth and histogram).
  std::string to_json() const;
};

}  // namespace cq::serve
