// Compiled model instances the serving workers run.
//
// A ModelInstance wraps one compiled network (fp32 fast path or int8
// deployment) behind a uniform batched-forward interface. Instances keep
// mutable scratch and are NOT thread-safe: the engine compiles one instance
// per worker thread from the same loaded encoder, trading memory for
// lock-free forwards.
#pragma once

#include <memory>

#include "deploy/int8.hpp"
#include "nn/sequential.hpp"
#include "serve/fp32.hpp"

namespace cq::serve {

enum class InstanceKind : std::uint8_t {
  kFp32,  // BN-folded, fused-epilogue fp32 (serve/fp32.hpp)
  kInt8,  // dynamic per-sample int8 (deploy/int8.hpp)
};

inline const char* instance_kind_name(InstanceKind k) {
  return k == InstanceKind::kFp32 ? "fp32" : "int8";
}

class ModelInstance {
 public:
  virtual ~ModelInstance() = default;
  /// Forward an [N, C, H, W] batch to [N, feature_dim]. The reference stays
  /// valid until the next forward on this instance.
  virtual const Tensor& forward(const Tensor& batch) = 0;
  virtual const char* kind_name() const = 0;
};

/// Compile `backbone` (eval-mode semantics) into a fresh instance. Called
/// once per worker at engine construction, on the construction thread.
std::unique_ptr<ModelInstance> make_instance(InstanceKind kind,
                                             nn::Sequential& backbone);

}  // namespace cq::serve
