// Compiled model instances the serving workers run.
//
// A ModelInstance wraps one compiled plan (fp32 or int8 precision) behind a
// uniform batched-forward interface. Both kinds lower through the graph
// compiler (graph/executor.hpp): trace -> pass pipeline -> arena plan at
// the engine's max batch -> prepacked executor. Instances own a mutable
// arena and are NOT thread-safe: the engine compiles one instance per
// worker thread from the same loaded encoder, trading memory for lock-free
// forwards. The compiled paths stay bitwise-identical to the eager
// serve::Fp32Network / deploy::Int8Network twins (tests/test_graph.cpp), so
// swapping the engine onto plans changed no served bytes.
#pragma once

#include <cstdint>
#include <memory>

#include "graph/executor.hpp"
#include "nn/sequential.hpp"

namespace cq::serve {

enum class InstanceKind : std::uint8_t {
  kFp32,  // BN-folded, fused-epilogue fp32 plan
  kInt8,  // dynamic per-sample int8 plan
};

inline const char* instance_kind_name(InstanceKind k) {
  return k == InstanceKind::kFp32 ? "fp32" : "int8";
}

class ModelInstance {
 public:
  virtual ~ModelInstance() = default;
  /// Forward an [N, C, H, W] batch to [N, feature_dim]. The reference stays
  /// valid until the next forward on this instance.
  virtual const Tensor& forward(const Tensor& batch) = 0;
  virtual const char* kind_name() const = 0;
  /// Bytes of the instance's planned arena (0 if the instance has none).
  virtual std::int64_t arena_bytes() const = 0;
  /// The underlying compiled plan, or null for instances that do not run
  /// one. Lets callers retarget quantization state in place — e.g. apply a
  /// CPT-V calibrated scale table (quant/ptq.hpp) to an int8 instance.
  virtual graph::CompiledModel* compiled() { return nullptr; }
};

/// Compile `backbone` (eval-mode semantics) into a fresh instance whose
/// arena is planned for batches up to `max_batch` samples of `sample_shape`.
/// Called once per worker at engine construction, on the construction
/// thread.
std::unique_ptr<ModelInstance> make_instance(InstanceKind kind,
                                             nn::Sequential& backbone,
                                             const Shape& sample_shape,
                                             std::int64_t max_batch);

}  // namespace cq::serve
