#include "tensor/tensor.hpp"

namespace cq {

Tensor::Tensor() : shape_(), data_(1, 0.0f) {}

Tensor::Tensor(Shape shape)
    : shape_(std::move(shape)),
      data_(static_cast<std::size_t>(shape_.numel()), 0.0f) {}

Tensor::Tensor(Shape shape, std::vector<float> data)
    : shape_(std::move(shape)), data_(std::move(data)) {
  CQ_CHECK_MSG(static_cast<std::int64_t>(data_.size()) == shape_.numel(),
               "data size " << data_.size() << " != shape numel "
                            << shape_.numel());
}

Tensor Tensor::full(Shape shape, float value) {
  Tensor t(std::move(shape));
  t.fill(value);
  return t;
}

Tensor Tensor::uniform(Shape shape, Rng& rng, float lo, float hi) {
  Tensor t(std::move(shape));
  for (auto& v : t.data_) v = static_cast<float>(rng.uniform(lo, hi));
  return t;
}

Tensor Tensor::randn(Shape shape, Rng& rng, float mean, float stddev) {
  Tensor t(std::move(shape));
  for (auto& v : t.data_) v = static_cast<float>(rng.normal(mean, stddev));
  return t;
}

Tensor Tensor::from(std::initializer_list<float> values) {
  return Tensor(Shape{static_cast<std::int64_t>(values.size())},
                std::vector<float>(values));
}

float& Tensor::at(std::int64_t r, std::int64_t c) {
  CQ_DCHECK(shape_.rank() == 2);
  return (*this)[r * shape_[1] + c];
}

float Tensor::at(std::int64_t r, std::int64_t c) const {
  CQ_DCHECK(shape_.rank() == 2);
  return (*this)[r * shape_[1] + c];
}

float& Tensor::at(std::int64_t c, std::int64_t h, std::int64_t w) {
  CQ_DCHECK(shape_.rank() == 3);
  return (*this)[(c * shape_[1] + h) * shape_[2] + w];
}

float Tensor::at(std::int64_t c, std::int64_t h, std::int64_t w) const {
  CQ_DCHECK(shape_.rank() == 3);
  return (*this)[(c * shape_[1] + h) * shape_[2] + w];
}

float& Tensor::at(std::int64_t n, std::int64_t c, std::int64_t h,
                  std::int64_t w) {
  CQ_DCHECK(shape_.rank() == 4);
  return (*this)[((n * shape_[1] + c) * shape_[2] + h) * shape_[3] + w];
}

float Tensor::at(std::int64_t n, std::int64_t c, std::int64_t h,
                 std::int64_t w) const {
  CQ_DCHECK(shape_.rank() == 4);
  return (*this)[((n * shape_[1] + c) * shape_[2] + h) * shape_[3] + w];
}

Tensor Tensor::reshape(Shape new_shape) const {
  CQ_CHECK_MSG(new_shape.numel() == numel(),
               "reshape " << shape_.str() << " -> " << new_shape.str()
                          << " changes element count");
  return Tensor(std::move(new_shape), data_);
}

void Tensor::fill(float value) {
  for (auto& v : data_) v = value;
}

Tensor& Tensor::add_(const Tensor& other, float scale) {
  CQ_CHECK_MSG(same_shape(other), "add_ shape mismatch: " << shape_.str()
                                                          << " vs "
                                                          << other.shape_.str());
  const float* src = other.data();
  float* dst = data();
  const auto n = data_.size();
  for (std::size_t i = 0; i < n; ++i) dst[i] += scale * src[i];
  return *this;
}

Tensor& Tensor::mul_(float scale) {
  for (auto& v : data_) v *= scale;
  return *this;
}

}  // namespace cq
