#include "tensor/tensor.hpp"

#include <algorithm>
#include <cstring>

namespace cq {

Tensor::Tensor() : shape_(), numel_(1), storage_(Storage::acquire(1)) {
  storage_.data()[0] = 0.0f;
}

Tensor::Tensor(Shape shape, Uninit)
    : shape_(std::move(shape)),
      numel_(shape_.numel()),
      storage_(Storage::acquire(numel_)) {}

Tensor::Tensor(Shape shape) : Tensor(std::move(shape), Uninit{}) {
  std::memset(storage_.data(), 0,
              static_cast<std::size_t>(numel_) * sizeof(float));
}

Tensor::Tensor(Shape shape, std::vector<float> data)
    : Tensor(std::move(shape), Uninit{}) {
  CQ_CHECK_MSG(static_cast<std::int64_t>(data.size()) == numel_,
               "data size " << data.size() << " != shape numel " << numel_);
  std::copy(data.begin(), data.end(), storage_.data());
}

Tensor Tensor::empty(Shape shape) { return Tensor(std::move(shape), Uninit{}); }

Tensor Tensor::full(Shape shape, float value) {
  Tensor t(std::move(shape), Uninit{});
  t.fill(value);
  return t;
}

Tensor Tensor::uniform(Shape shape, Rng& rng, float lo, float hi) {
  Tensor t(std::move(shape), Uninit{});
  float* d = t.storage_.data();
  for (std::int64_t i = 0; i < t.numel_; ++i)
    d[i] = static_cast<float>(rng.uniform(lo, hi));
  return t;
}

Tensor Tensor::randn(Shape shape, Rng& rng, float mean, float stddev) {
  Tensor t(std::move(shape), Uninit{});
  float* d = t.storage_.data();
  for (std::int64_t i = 0; i < t.numel_; ++i)
    d[i] = static_cast<float>(rng.normal(mean, stddev));
  return t;
}

Tensor Tensor::from(std::initializer_list<float> values) {
  return Tensor(Shape{static_cast<std::int64_t>(values.size())},
                std::vector<float>(values));
}

Tensor& Tensor::resize(const Shape& shape) {
  const auto new_numel = shape.numel();
  if (!storage_.unique() || storage_.capacity() < new_numel)
    storage_ = Storage::acquire(new_numel);
  shape_ = shape;
  numel_ = new_numel;
  return *this;
}

void Tensor::ensure_unique() {
  if (storage_.unique()) return;
  Storage fresh = Storage::acquire(numel_);
  std::memcpy(fresh.data(), storage_.data(),
              static_cast<std::size_t>(numel_) * sizeof(float));
  storage_ = std::move(fresh);
}

float& Tensor::at(std::int64_t r, std::int64_t c) {
  CQ_DCHECK(shape_.rank() == 2);
  return (*this)[r * shape_[1] + c];
}

float Tensor::at(std::int64_t r, std::int64_t c) const {
  CQ_DCHECK(shape_.rank() == 2);
  return (*this)[r * shape_[1] + c];
}

float& Tensor::at(std::int64_t c, std::int64_t h, std::int64_t w) {
  CQ_DCHECK(shape_.rank() == 3);
  return (*this)[(c * shape_[1] + h) * shape_[2] + w];
}

float Tensor::at(std::int64_t c, std::int64_t h, std::int64_t w) const {
  CQ_DCHECK(shape_.rank() == 3);
  return (*this)[(c * shape_[1] + h) * shape_[2] + w];
}

float& Tensor::at(std::int64_t n, std::int64_t c, std::int64_t h,
                  std::int64_t w) {
  CQ_DCHECK(shape_.rank() == 4);
  return (*this)[((n * shape_[1] + c) * shape_[2] + h) * shape_[3] + w];
}

float Tensor::at(std::int64_t n, std::int64_t c, std::int64_t h,
                 std::int64_t w) const {
  CQ_DCHECK(shape_.rank() == 4);
  return (*this)[((n * shape_[1] + c) * shape_[2] + h) * shape_[3] + w];
}

Tensor Tensor::reshape(Shape new_shape) const {
  CQ_CHECK_MSG(new_shape.numel() == numel_,
               "reshape " << shape_.str() << " -> " << new_shape.str()
                          << " changes element count");
  Tensor t = *this;  // shares storage; COW keeps value semantics
  t.shape_ = std::move(new_shape);
  return t;
}

void Tensor::fill(float value) {
  // Full overwrite: no need to preserve shared contents, so detach without
  // copying when shared.
  if (!storage_.unique()) storage_ = Storage::acquire(numel_);
  float* d = storage_.data();
  for (std::int64_t i = 0; i < numel_; ++i) d[i] = value;
}

Tensor& Tensor::add_(const Tensor& other, float scale) {
  CQ_CHECK_MSG(same_shape(other), "add_ shape mismatch: " << shape_.str()
                                                          << " vs "
                                                          << other.shape_.str());
  const float* src = other.data();
  float* dst = data();
  for (std::int64_t i = 0; i < numel_; ++i) dst[i] += scale * src[i];
  return *this;
}

Tensor& Tensor::mul_(float scale) {
  float* d = data();
  for (std::int64_t i = 0; i < numel_; ++i) d[i] *= scale;
  return *this;
}

}  // namespace cq
