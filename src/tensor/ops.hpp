// Eager tensor operations. All ops allocate their result; shapes are
// validated with CQ_CHECK so misuse fails at the call site.
#pragma once

#include <functional>

#include "tensor/tensor.hpp"

namespace cq::ops {

// ---- elementwise -----------------------------------------------------------

Tensor add(const Tensor& a, const Tensor& b);
Tensor sub(const Tensor& a, const Tensor& b);
Tensor mul(const Tensor& a, const Tensor& b);
Tensor scale(const Tensor& a, float s);
Tensor add_scalar(const Tensor& a, float s);
/// Apply `f` to every element.
Tensor map(const Tensor& a, const std::function<float(float)>& f);
Tensor relu(const Tensor& a);
Tensor exp(const Tensor& a);
Tensor log(const Tensor& a);
Tensor sqrt(const Tensor& a);
Tensor clamp(const Tensor& a, float lo, float hi);

// ---- reductions ------------------------------------------------------------

float sum(const Tensor& a);
float mean(const Tensor& a);
float max(const Tensor& a);
float min(const Tensor& a);
/// Index of the max element (first on ties).
std::int64_t argmax(const Tensor& a);
/// L2 norm over all elements.
float norm(const Tensor& a);
/// Dot product over all elements (shapes must match).
float dot(const Tensor& a, const Tensor& b);

/// Row-wise reductions on a rank-2 tensor [N, D].
Tensor row_sum(const Tensor& a);   // -> [N]
Tensor row_max(const Tensor& a);   // -> [N]
/// Argmax along dim 1 of an [N, D] tensor -> vector of indices.
std::vector<std::int64_t> row_argmax(const Tensor& a);

// ---- linear algebra --------------------------------------------------------
//
// All three matmul variants dispatch into the blocked kernels in
// tensor/gemm.hpp: float32 accumulation, no zero-skipping, so NaN/Inf
// propagate identically across variants.

/// C[M,N] = A[M,K] * B[K,N].
Tensor matmul(const Tensor& a, const Tensor& b);
/// C[M,N] = A[K,M]^T * B[K,N].
Tensor matmul_tn(const Tensor& a, const Tensor& b);
/// C[M,N] = A[M,K] * B[N,K]^T.
Tensor matmul_nt(const Tensor& a, const Tensor& b);
/// Transpose of a rank-2 tensor.
Tensor transpose(const Tensor& a);

// ---- neural-net helpers ----------------------------------------------------

/// Row-wise softmax of an [N, D] tensor (numerically stabilized).
Tensor softmax_rows(const Tensor& a);
/// Row-wise log-softmax of an [N, D] tensor.
Tensor log_softmax_rows(const Tensor& a);
/// L2-normalize each row of an [N, D] tensor; rows with norm < eps are left
/// unchanged. Returns the normalized tensor and writes per-row norms into
/// `norms_out` (size N) when non-null.
Tensor l2_normalize_rows(const Tensor& a, Tensor* norms_out = nullptr,
                         float eps = 1e-12f);

}  // namespace cq::ops
