// Eager tensor operations. Every op has a destination-passing `_into`
// variant that resizes `out` (reusing its pooled storage when possible) and
// writes the full result into it; the value-returning APIs are thin wrappers
// that allocate `out` from the pool. Shapes are validated with CQ_CHECK so
// misuse fails at the call site.
//
// _into aliasing contract: elementwise `_into` ops may be called with `out`
// aliasing an input (same object or shared storage) — they read inputs
// through their own handles, so copy-on-write keeps the result correct. The
// matmul/transpose `_into` ops require `out` to be distinct from both inputs
// (checked).
#pragma once

#include <functional>

#include "tensor/tensor.hpp"

namespace cq::ops {

// ---- elementwise -----------------------------------------------------------

Tensor add(const Tensor& a, const Tensor& b);
Tensor sub(const Tensor& a, const Tensor& b);
Tensor mul(const Tensor& a, const Tensor& b);
Tensor scale(const Tensor& a, float s);
Tensor add_scalar(const Tensor& a, float s);
/// Apply `f` to every element.
Tensor map(const Tensor& a, const std::function<float(float)>& f);
Tensor relu(const Tensor& a);
Tensor exp(const Tensor& a);
Tensor log(const Tensor& a);
Tensor sqrt(const Tensor& a);
Tensor clamp(const Tensor& a, float lo, float hi);

Tensor& add_into(const Tensor& a, const Tensor& b, Tensor& out);
Tensor& sub_into(const Tensor& a, const Tensor& b, Tensor& out);
Tensor& mul_into(const Tensor& a, const Tensor& b, Tensor& out);
Tensor& scale_into(const Tensor& a, float s, Tensor& out);
Tensor& add_scalar_into(const Tensor& a, float s, Tensor& out);
Tensor& map_into(const Tensor& a, const std::function<float(float)>& f,
                 Tensor& out);
Tensor& relu_into(const Tensor& a, Tensor& out);
Tensor& clamp_into(const Tensor& a, float lo, float hi, Tensor& out);

// ---- reductions ------------------------------------------------------------

float sum(const Tensor& a);
float mean(const Tensor& a);
float max(const Tensor& a);
float min(const Tensor& a);
/// Index of the max element (first on ties).
std::int64_t argmax(const Tensor& a);
/// L2 norm over all elements.
float norm(const Tensor& a);
/// Dot product over all elements (shapes must match).
float dot(const Tensor& a, const Tensor& b);

/// Row-wise reductions on a rank-2 tensor [N, D].
Tensor row_sum(const Tensor& a);   // -> [N]
Tensor row_max(const Tensor& a);   // -> [N]
/// Argmax along dim 1 of an [N, D] tensor -> vector of indices.
std::vector<std::int64_t> row_argmax(const Tensor& a);

// ---- linear algebra --------------------------------------------------------
//
// All three matmul variants dispatch into the blocked kernels in
// tensor/gemm.hpp: float32 accumulation, no zero-skipping, so NaN/Inf
// propagate identically across variants.

/// C[M,N] = A[M,K] * B[K,N].
Tensor matmul(const Tensor& a, const Tensor& b);
/// C[M,N] = A[K,M]^T * B[K,N].
Tensor matmul_tn(const Tensor& a, const Tensor& b);
/// C[M,N] = A[M,K] * B[N,K]^T.
Tensor matmul_nt(const Tensor& a, const Tensor& b);
/// Transpose of a rank-2 tensor.
Tensor transpose(const Tensor& a);

/// Destination-passing matmuls: `out` is resized to [M,N] (storage reused
/// when possible) and fully overwritten. `out` must not alias `a` or `b`.
Tensor& matmul_into(const Tensor& a, const Tensor& b, Tensor& out);
Tensor& matmul_tn_into(const Tensor& a, const Tensor& b, Tensor& out);
Tensor& matmul_nt_into(const Tensor& a, const Tensor& b, Tensor& out);
Tensor& transpose_into(const Tensor& a, Tensor& out);

// ---- neural-net helpers ----------------------------------------------------

/// Row-wise softmax of an [N, D] tensor (numerically stabilized).
Tensor softmax_rows(const Tensor& a);
/// Row-wise log-softmax of an [N, D] tensor.
Tensor log_softmax_rows(const Tensor& a);
/// L2-normalize each row of an [N, D] tensor; rows with norm < eps are left
/// unchanged. Returns the normalized tensor and writes per-row norms into
/// `norms_out` (size N) when non-null.
Tensor l2_normalize_rows(const Tensor& a, Tensor* norms_out = nullptr,
                         float eps = 1e-12f);

}  // namespace cq::ops
