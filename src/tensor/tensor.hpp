// Tensor: dense, contiguous, row-major float32 array with value semantics.
//
// Deliberately simple (Core Guidelines P.11): no strides, no views, no lazy
// evaluation. Value semantics are preserved via copy-on-write over a
// ref-counted, pool-backed Storage (storage.hpp): copies, reshapes, and
// cache pushes share the buffer; the first mutation through a non-const
// accessor detaches. Destroyed buffers park in a thread-local free-list
// pool, so steady-state training iterations recycle storage instead of
// re-allocating (see cq::tensor::alloc_stats()).
#pragma once

#include <span>
#include <vector>

#include "tensor/shape.hpp"
#include "tensor/storage.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace cq {

class Tensor {
 public:
  /// Empty tensor (rank 0, one element, value 0).
  Tensor();
  /// Zero-initialized tensor of the given shape.
  explicit Tensor(Shape shape);
  /// Tensor with explicit data; data.size() must equal shape.numel().
  Tensor(Shape shape, std::vector<float> data);

  static Tensor zeros(Shape shape) { return Tensor(std::move(shape)); }
  static Tensor full(Shape shape, float value);
  static Tensor ones(Shape shape) { return full(std::move(shape), 1.0f); }
  /// Pool-backed tensor with UNSPECIFIED contents — for destinations that
  /// are fully overwritten (gemm outputs, _into ops). Prefer zeros() when
  /// any element might be read before being written.
  static Tensor empty(Shape shape);
  /// I.i.d. uniform entries in [lo, hi).
  static Tensor uniform(Shape shape, Rng& rng, float lo = 0.0f,
                        float hi = 1.0f);
  /// I.i.d. normal entries.
  static Tensor randn(Shape shape, Rng& rng, float mean = 0.0f,
                      float stddev = 1.0f);
  /// 1-D tensor from values.
  static Tensor from(std::initializer_list<float> values);

  /// Same-shape tensor with unspecified contents (reuse constructor).
  Tensor like() const { return empty(shape_); }

  /// Re-dimension in place, reusing the current buffer when it is unshared
  /// and large enough (otherwise a pool acquire). Contents are UNSPECIFIED
  /// afterwards; this is the reuse path for per-iteration scratch tensors.
  Tensor& resize(const Shape& shape);
  Tensor& resize_as(const Tensor& other) { return resize(other.shape_); }

  const Shape& shape() const { return shape_; }
  std::int64_t numel() const { return numel_; }
  std::int64_t dim(std::int64_t i) const { return shape_.dim(i); }

  float* data() {
    ensure_unique();
    return storage_.data();
  }
  const float* data() const { return storage_.data(); }
  std::span<float> span() {
    return {data(), static_cast<std::size_t>(numel_)};
  }
  std::span<const float> span() const {
    return {storage_.data(), static_cast<std::size_t>(numel_)};
  }

  float& operator[](std::int64_t i) {
    CQ_DCHECK(i >= 0 && i < numel_);
    return data()[i];
  }
  float operator[](std::int64_t i) const {
    CQ_DCHECK(i >= 0 && i < numel_);
    return storage_.data()[i];
  }

  /// 2-D accessor; requires rank 2.
  float& at(std::int64_t r, std::int64_t c);
  float at(std::int64_t r, std::int64_t c) const;
  /// 3-D accessor (CHW images); requires rank 3.
  float& at(std::int64_t c, std::int64_t h, std::int64_t w);
  float at(std::int64_t c, std::int64_t h, std::int64_t w) const;
  /// 4-D accessor (NCHW); requires rank 4.
  float& at(std::int64_t n, std::int64_t c, std::int64_t h, std::int64_t w);
  float at(std::int64_t n, std::int64_t c, std::int64_t h,
           std::int64_t w) const;

  /// Reinterpret as a new shape with the same element count. Shares storage
  /// with this tensor (zero-copy); copy-on-write keeps value semantics.
  Tensor reshape(Shape new_shape) const;

  /// Set all elements to `value`.
  void fill(float value);

  /// In-place elementwise updates (used by optimizers; avoid temporaries).
  Tensor& add_(const Tensor& other, float scale = 1.0f);
  Tensor& mul_(float scale);

  bool same_shape(const Tensor& other) const {
    return shape_ == other.shape_;
  }

  /// True when this tensor's buffer is shared with another handle
  /// (diagnostics/tests).
  bool shares_storage() const { return storage_.use_count() > 1; }

 private:
  struct Uninit {};  // tag: acquire storage, skip zero-fill
  Tensor(Shape shape, Uninit);

  void ensure_unique();

  Shape shape_;
  std::int64_t numel_ = 1;
  Storage storage_;
};

}  // namespace cq
