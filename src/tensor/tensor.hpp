// Tensor: dense, contiguous, row-major float32 array with value semantics.
//
// Deliberately simple (Core Guidelines P.11): no strides, no views, no lazy
// evaluation. Every op in ops.hpp is eager and allocates its result. This is
// exactly enough substrate for the CQ training pipelines and keeps every op
// trivially testable against numeric gradients.
#pragma once

#include <span>
#include <vector>

#include "tensor/shape.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace cq {

class Tensor {
 public:
  /// Empty tensor (rank 0, one element, value 0).
  Tensor();
  /// Zero-initialized tensor of the given shape.
  explicit Tensor(Shape shape);
  /// Tensor with explicit data; data.size() must equal shape.numel().
  Tensor(Shape shape, std::vector<float> data);

  static Tensor zeros(Shape shape) { return Tensor(std::move(shape)); }
  static Tensor full(Shape shape, float value);
  static Tensor ones(Shape shape) { return full(std::move(shape), 1.0f); }
  /// I.i.d. uniform entries in [lo, hi).
  static Tensor uniform(Shape shape, Rng& rng, float lo = 0.0f,
                        float hi = 1.0f);
  /// I.i.d. normal entries.
  static Tensor randn(Shape shape, Rng& rng, float mean = 0.0f,
                      float stddev = 1.0f);
  /// 1-D tensor from values.
  static Tensor from(std::initializer_list<float> values);

  const Shape& shape() const { return shape_; }
  std::int64_t numel() const { return static_cast<std::int64_t>(data_.size()); }
  std::int64_t dim(std::int64_t i) const { return shape_.dim(i); }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }
  std::span<float> span() { return {data_.data(), data_.size()}; }
  std::span<const float> span() const { return {data_.data(), data_.size()}; }

  float& operator[](std::int64_t i) {
    CQ_DCHECK(i >= 0 && i < numel());
    return data_[static_cast<std::size_t>(i)];
  }
  float operator[](std::int64_t i) const {
    CQ_DCHECK(i >= 0 && i < numel());
    return data_[static_cast<std::size_t>(i)];
  }

  /// 2-D accessor; requires rank 2.
  float& at(std::int64_t r, std::int64_t c);
  float at(std::int64_t r, std::int64_t c) const;
  /// 3-D accessor (CHW images); requires rank 3.
  float& at(std::int64_t c, std::int64_t h, std::int64_t w);
  float at(std::int64_t c, std::int64_t h, std::int64_t w) const;
  /// 4-D accessor (NCHW); requires rank 4.
  float& at(std::int64_t n, std::int64_t c, std::int64_t h, std::int64_t w);
  float at(std::int64_t n, std::int64_t c, std::int64_t h,
           std::int64_t w) const;

  /// Reinterpret as a new shape with the same element count.
  Tensor reshape(Shape new_shape) const;

  /// Set all elements to `value`.
  void fill(float value);

  /// In-place elementwise updates (used by optimizers; avoid temporaries).
  Tensor& add_(const Tensor& other, float scale = 1.0f);
  Tensor& mul_(float scale);

  bool same_shape(const Tensor& other) const {
    return shape_ == other.shape_;
  }

 private:
  Shape shape_;
  std::vector<float> data_;
};

}  // namespace cq
