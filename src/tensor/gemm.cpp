// Blocked GEMM implementation (BLIS-style). This translation unit is compiled
// with -march=native (see src/CMakeLists.txt) so the micro-kernel vectorizes
// to the widest SIMD the build machine has; the rest of the library keeps the
// portable baseline flags.
//
// Fusion hooks (DESIGN.md §9):
//  * quantize-on-pack — pack_a/pack_b optionally run each gathered element
//    through gemm::quantize_value, so a fake-quantized operand is only ever
//    materialized sliver-by-sliver inside the packing scratch.
//  * epilogue — bias add + activation applied to the register tile during
//    write-back of the LAST k-panel, after the accumulated sum (and any
//    partial C from earlier panels / accumulate mode) is complete. The
//    per-element operation sequence equals the unfused
//    gemm-then-bias-then-act pipeline, so results are bit-identical.
#include "tensor/gemm.hpp"

#include <algorithm>
#include <cstring>
#include <vector>

#include "core/threadpool.hpp"
#include "core/trace.hpp"
#include "util/check.hpp"

namespace cq::gemm {
namespace {

constexpr std::int64_t MR = kMR;
constexpr std::int64_t NR = kNR;
constexpr std::int64_t MC = kMC;
constexpr std::int64_t KC = kKC;
constexpr std::int64_t NC = kNC;

static_assert(MC % MR == 0 && NC % NR == 0, "cache blocks must tile evenly");

// Element accessors for the logical operands: op(A)(i,p) = a[i*rs + p*cs]
// and op(B)(p,j) = b[p*rs + j*cs]. The transpose variants differ only here.
struct Strides {
  std::int64_t rs, cs;
};

Strides a_strides(Trans t, std::int64_t m, std::int64_t k) {
  // kNN/kNT store A as [M,K]; kTN stores A as [K,M] and reads it transposed.
  return t == Trans::kTN ? Strides{1, m} : Strides{k, 1};
}

Strides b_strides(Trans t, std::int64_t k, std::int64_t n) {
  // kNN/kTN store B as [K,N]; kNT stores B as [N,K] and reads it transposed.
  return t == Trans::kNT ? Strides{1, k} : Strides{n, 1};
}

// Pack an mc x kc block of op(A) into MR-row slivers: sliver s holds rows
// [s*MR, s*MR+MR) laid out p-major so the micro-kernel reads MR contiguous
// floats per k-step. Short edge slivers are zero-padded to full MR. The
// quantized variant folds Eq. 10 into the gather (quantize-on-pack).
//
// Each sliver writes a disjoint kc*MR region at a base derived from its
// index — not a running pointer — so the [sv0, sv1) sliver range can be
// split across pool workers with bit-identical results (the bytes written
// per sliver do not depend on who packs the neighbours).
template <bool Q>
void pack_a_impl(const float* a, Strides s, std::int64_t sv0, std::int64_t sv1,
                 std::int64_t mc, std::int64_t kc, float* ap,
                 const QuantSpec& q) {
  for (std::int64_t sv = sv0; sv < sv1; ++sv) {
    const std::int64_t ir = sv * MR;
    const std::int64_t mr = std::min(MR, mc - ir);
    float* dst = ap + sv * (kc * MR);
    for (std::int64_t p = 0; p < kc; ++p) {
      for (std::int64_t i = 0; i < mr; ++i) {
        const float v = a[(ir + i) * s.rs + p * s.cs];
        *dst++ = Q ? quantize_value(v, q) : v;
      }
      for (std::int64_t i = mr; i < MR; ++i) *dst++ = 0.0f;
    }
  }
}

void pack_a_range(const float* a, Strides s, std::int64_t sv0, std::int64_t sv1,
                  std::int64_t mc, std::int64_t kc, float* ap,
                  const QuantSpec* q) {
  if (q != nullptr)
    pack_a_impl<true>(a, s, sv0, sv1, mc, kc, ap, *q);
  else
    pack_a_impl<false>(a, s, sv0, sv1, mc, kc, ap, QuantSpec{});
}

void pack_a(const float* a, Strides s, std::int64_t mc, std::int64_t kc,
            float* ap, const QuantSpec* q) {
  CQ_TRACE_SCOPE_HOT_BYTES("gemm.pack_a", mc * kc * sizeof(float));
  pack_a_range(a, s, 0, (mc + MR - 1) / MR, mc, kc, ap, q);
}

// Pack a kc x nc block of op(B) into NR-column slivers, zero-padded likewise.
// Sliver-indexed like pack_a_impl so [sv0, sv1) splits across workers.
template <bool Q>
void pack_b_impl(const float* b, Strides s, std::int64_t sv0, std::int64_t sv1,
                 std::int64_t kc, std::int64_t nc, float* bp,
                 const QuantSpec& q) {
  if (s.cs != 1) {
    // Column-strided source (kNT: op(B) columns are contiguous rows of the
    // stored [N, K] matrix). The generic k-outer order below would read
    // with stride K on every element; walk source rows instead — contiguous
    // reads, sliver-strided writes into the (L1-resident) packed buffer.
    // Same values into the same slots, so results stay bit-identical.
    for (std::int64_t sv = sv0; sv < sv1; ++sv) {
      const std::int64_t jr = sv * NR;
      const std::int64_t nr = std::min(NR, nc - jr);
      float* sliver = bp + sv * (kc * NR);
      for (std::int64_t j = 0; j < NR; ++j) {
        if (j < nr) {
          const float* src = b + (jr + j) * s.cs;
          for (std::int64_t p = 0; p < kc; ++p) {
            const float v = src[p * s.rs];
            sliver[p * NR + j] = Q ? quantize_value(v, q) : v;
          }
        } else {
          for (std::int64_t p = 0; p < kc; ++p) sliver[p * NR + j] = 0.0f;
        }
      }
    }
    return;
  }
  for (std::int64_t sv = sv0; sv < sv1; ++sv) {
    const std::int64_t jr = sv * NR;
    const std::int64_t nr = std::min(NR, nc - jr);
    float* dst = bp + sv * (kc * NR);
    for (std::int64_t p = 0; p < kc; ++p) {
      for (std::int64_t j = 0; j < nr; ++j) {
        const float v = b[p * s.rs + (jr + j) * s.cs];
        *dst++ = Q ? quantize_value(v, q) : v;
      }
      for (std::int64_t j = nr; j < NR; ++j) *dst++ = 0.0f;
    }
  }
}

void pack_b_range(const float* b, Strides s, std::int64_t sv0, std::int64_t sv1,
                  std::int64_t kc, std::int64_t nc, float* bp,
                  const QuantSpec* q) {
  if (q != nullptr)
    pack_b_impl<true>(b, s, sv0, sv1, kc, nc, bp, *q);
  else
    pack_b_impl<false>(b, s, sv0, sv1, kc, nc, bp, QuantSpec{});
}

void pack_b(const float* b, Strides s, std::int64_t kc, std::int64_t nc,
            float* bp, const QuantSpec* q) {
  CQ_TRACE_SCOPE_HOT_BYTES("gemm.pack_b", kc * nc * sizeof(float));
  pack_b_range(b, s, 0, (nc + NR - 1) / NR, kc, nc, bp, q);
}

// Epilogue applied to one C element: c = act(c + bias). The same formula is
// used by the register write-back below and the k == 0 fallback, and matches
// the historical separate bias/activation passes element-for-element.
inline float epilogue_elem(float c, float bias, const Epilogue& ep) {
  c += bias;
  switch (ep.act) {
    case Epilogue::Act::kNone:
      break;
    case Epilogue::Act::kRelu:
      c = c > 0.0f ? c : 0.0f;
      break;
    case Epilogue::Act::kReluCap:
      c = c < 0.0f ? 0.0f : (c > ep.cap ? ep.cap : c);
      break;
  }
  return c;
}

// MR x NR register tile over a kc-long packed panel pair. The NR lanes live
// in one GCC vector-extension value per row: this pins the vectorization
// axis to the contiguous B sliver (broadcast-A times vector-B), which GCC's
// loop vectorizer does not reliably pick on its own for the equivalent
// scalar loops. Edge tiles only clip the write-back.
//
// `ep` is non-null only on the final k-panel; `brow`/`bcol` are the bias
// pointers pre-offset to this tile's first row / column.
#if defined(__GNUC__) || defined(__clang__)
typedef float VecNR __attribute__((vector_size(sizeof(float) * NR)));

void micro_kernel(std::int64_t kc, const float* __restrict__ ap,
                  const float* __restrict__ bp, float* __restrict__ c,
                  std::int64_t ldc, std::int64_t mr, std::int64_t nr,
                  bool overwrite, const Epilogue* ep, const float* brow,
                  const float* bcol) {
  VecNR acc[MR] = {};
  for (std::int64_t p = 0; p < kc; ++p) {
    const float* a = ap + p * MR;
    VecNR bv;  // unaligned NR-wide load of the packed B sliver
    __builtin_memcpy(&bv, bp + p * NR, sizeof(bv));
    for (std::int64_t i = 0; i < MR; ++i) acc[i] += a[i] * bv;
  }
  if (mr == MR && nr == NR) {
    VecNR biasv = {};
    if (ep != nullptr && bcol != nullptr)
      __builtin_memcpy(&biasv, bcol, sizeof(biasv));
    for (std::int64_t i = 0; i < MR; ++i) {
      float* crow = c + i * ldc;
      if (!overwrite) {
        VecNR cv;
        __builtin_memcpy(&cv, crow, sizeof(cv));
        acc[i] += cv;
      }
      if (ep != nullptr) {
        if (brow != nullptr)
          acc[i] += brow[i];  // scalar broadcasts across the lanes
        else
          acc[i] += biasv;
        if (ep->act == Epilogue::Act::kRelu) {
          float* lanes = reinterpret_cast<float*>(&acc[i]);
          for (std::int64_t j = 0; j < NR; ++j)
            lanes[j] = lanes[j] > 0.0f ? lanes[j] : 0.0f;
        } else if (ep->act == Epilogue::Act::kReluCap) {
          float* lanes = reinterpret_cast<float*>(&acc[i]);
          for (std::int64_t j = 0; j < NR; ++j)
            lanes[j] = lanes[j] < 0.0f ? 0.0f
                                       : (lanes[j] > ep->cap ? ep->cap
                                                             : lanes[j]);
        }
      }
      __builtin_memcpy(crow, &acc[i], sizeof(acc[i]));
    }
  } else {
    for (std::int64_t i = 0; i < mr; ++i) {
      float* crow = c + i * ldc;
      const float* lanes = reinterpret_cast<const float*>(&acc[i]);
      for (std::int64_t j = 0; j < nr; ++j) {
        float v = overwrite ? lanes[j] : crow[j] + lanes[j];
        if (ep != nullptr)
          v = epilogue_elem(
              v, brow != nullptr ? brow[i] : (bcol != nullptr ? bcol[j] : 0.0f),
              *ep);
        crow[j] = v;
      }
    }
  }
}
#else
void micro_kernel(std::int64_t kc, const float* __restrict__ ap,
                  const float* __restrict__ bp, float* __restrict__ c,
                  std::int64_t ldc, std::int64_t mr, std::int64_t nr,
                  bool overwrite, const Epilogue* ep, const float* brow,
                  const float* bcol) {
  float acc[MR][NR] = {};
  for (std::int64_t p = 0; p < kc; ++p) {
    const float* a = ap + p * MR;
    const float* b = bp + p * NR;
    for (std::int64_t i = 0; i < MR; ++i)
      for (std::int64_t j = 0; j < NR; ++j) acc[i][j] += a[i] * b[j];
  }
  for (std::int64_t i = 0; i < mr; ++i) {
    float* crow = c + i * ldc;
    for (std::int64_t j = 0; j < nr; ++j) {
      float v = overwrite ? acc[i][j] : crow[j] + acc[i][j];
      if (ep != nullptr)
        v = epilogue_elem(
            v, brow != nullptr ? brow[i] : (bcol != nullptr ? bcol[j] : 0.0f),
            *ep);
      crow[j] = v;
    }
  }
}
#endif

// Packing scratch, reused across calls so small GEMMs don't pay an
// allocation each time. thread_local: each CALLING thread (main, serve
// workers) owns one buffer; pool workers only touch it through the pointers
// a dispatch hands them, never through this accessor.
std::vector<float>& scratch(std::size_t need) {
  static thread_local std::vector<float> buf;
  if (buf.size() < need) buf.resize(need);
  return buf;
}

// k == 0 / empty-sum path: C is already zeroed (or holds the accumulate-mode
// values); run the epilogue as a standalone pass with the same formula.
void apply_epilogue_plain(float* c, std::int64_t m, std::int64_t n,
                          const Epilogue& ep) {
  CQ_TRACE_SCOPE_HOT_BYTES("gemm.epilogue", m * n * sizeof(float));
  for (std::int64_t i = 0; i < m; ++i) {
    float* crow = c + i * n;
    const float rbias =
        ep.bias_kind == Epilogue::Bias::kPerRow && ep.bias ? ep.bias[i] : 0.0f;
    for (std::int64_t j = 0; j < n; ++j) {
      const float bias = ep.bias_kind == Epilogue::Bias::kPerCol && ep.bias
                             ? ep.bias[j]
                             : rbias;
      crow[j] = epilogue_elem(crow[j], bias, ep);
    }
  }
}

// Work below this many FLOPs (2*m*n*k) runs serially even when the pool has
// workers: at ~40 GFLOP/s the threshold is ~50us of compute, comfortably
// above the few-microsecond dispatch cost.
constexpr std::int64_t kMinParallelFlops = 2'000'000;

bool want_parallel(std::int64_t m, std::int64_t n, std::int64_t k) {
  return core::ThreadPool::instance().size() > 1 &&
         !core::ThreadPool::on_worker_thread() &&
         2 * m * n * k >= kMinParallelFlops;
}

}  // namespace

void gemm(Trans trans, std::int64_t m, std::int64_t n, std::int64_t k,
          const float* a, const float* b, float* c, bool accumulate,
          const Epilogue& epilogue, const QuantSpec* qa, const QuantSpec* qb) {
  if (m <= 0 || n <= 0) return;
  CQ_TRACE_SCOPE_BYTES("gemm", (m * k + k * n + m * n) * sizeof(float));
  // Identity specs (full precision / zero range) pack raw values.
  if (qa != nullptr && qa->identity) qa = nullptr;
  if (qb != nullptr && qb->identity) qb = nullptr;
  const Epilogue* ep = epilogue.empty() ? nullptr : &epilogue;
  const float* bias_rows =
      ep != nullptr && ep->bias_kind == Epilogue::Bias::kPerRow ? ep->bias
                                                                : nullptr;
  const float* bias_cols =
      ep != nullptr && ep->bias_kind == Epilogue::Bias::kPerCol ? ep->bias
                                                                : nullptr;

  if (k <= 0) {
    if (!accumulate)
      for (std::int64_t i = 0; i < m * n; ++i) c[i] = 0.0f;
    if (ep != nullptr) apply_epilogue_plain(c, m, n, *ep);
    return;
  }
  const Strides as = a_strides(trans, m, k);
  const Strides bs = b_strides(trans, k, n);

  const std::size_t a_cap = static_cast<std::size_t>(MC * KC);
  const std::size_t b_cap = static_cast<std::size_t>(KC * NC);
  std::vector<float>& buf = scratch(a_cap + b_cap);
  float* ap = buf.data();
  float* bp = buf.data() + a_cap;

  // Parallel dispatch (DESIGN.md §14): packing splits by sliver, the kernel
  // phase by output tile. Every tile's kc-long accumulation runs entirely
  // inside one micro_kernel call, so WHERE a tile executes cannot change its
  // result — parallel output is bitwise-identical to serial at every pool
  // size (enforced by the ParallelMatchesSerial fuzz suites).
  core::ThreadPool& pool = core::ThreadPool::instance();
  const bool par = want_parallel(m, n, k);

  for (std::int64_t jc = 0; jc < n; jc += NC) {
    const std::int64_t nc = std::min(NC, n - jc);
    for (std::int64_t pc = 0; pc < k; pc += KC) {
      const std::int64_t kc = std::min(KC, k - pc);
      // The first k-panel either overwrites C or adds into the caller's
      // values; every later panel accumulates on top. The epilogue fires
      // only while writing back the final panel, when the sum is complete.
      const bool overwrite = pc == 0 && !accumulate;
      const Epilogue* panel_ep = pc + kc == k ? ep : nullptr;
      const float* bsrc = b + pc * bs.rs + jc * bs.cs;
      if (par) {
        CQ_TRACE_SCOPE_HOT_BYTES("gemm.pack_b", kc * nc * sizeof(float));
        pool.parallel_for((nc + NR - 1) / NR, 1,
                          [&](std::int64_t sv0, std::int64_t sv1) {
                            pack_b_range(bsrc, bs, sv0, sv1, kc, nc, bp, qb);
                          });
      } else {
        pack_b(bsrc, bs, kc, nc, bp, qb);
      }
      for (std::int64_t ic = 0; ic < m; ic += MC) {
        const std::int64_t mc = std::min(MC, m - ic);
        const float* asrc = a + ic * as.rs + pc * as.cs;
        if (par) {
          CQ_TRACE_SCOPE_HOT_BYTES("gemm.pack_a", mc * kc * sizeof(float));
          pool.parallel_for((mc + MR - 1) / MR, 1,
                            [&](std::int64_t sv0, std::int64_t sv1) {
                              pack_a_range(asrc, as, sv0, sv1, mc, kc, ap, qa);
                            });
        } else {
          pack_a(asrc, as, mc, kc, ap, qa);
        }
        CQ_TRACE_SCOPE_HOT("gemm.kernel");
        // Flat jr-major tile grid: tile t covers C rows [ic+ir, ic+ir+mr)
        // and columns [jc+jr, jc+jr+nr) — disjoint across t by construction.
        const std::int64_t nir = (mc + MR - 1) / MR;
        const std::int64_t ntiles = ((nc + NR - 1) / NR) * nir;
        auto tiles = [&](std::int64_t t0, std::int64_t t1) {
          for (std::int64_t t = t0; t < t1; ++t) {
            const std::int64_t jr = (t / nir) * NR;
            const std::int64_t ir = (t % nir) * MR;
            const std::int64_t nr = std::min(NR, nc - jr);
            const std::int64_t mr = std::min(MR, mc - ir);
            const float* bpp = bp + (jr / NR) * (kc * NR);
            const float* app = ap + (ir / MR) * (kc * MR);
            micro_kernel(
                kc, app, bpp, c + (ic + ir) * n + (jc + jr), n, mr, nr,
                overwrite, panel_ep,
                bias_rows != nullptr ? bias_rows + ic + ir : nullptr,
                bias_cols != nullptr ? bias_cols + jc + jr : nullptr);
          }
        };
        if (par)
          pool.parallel_for(ntiles, 1, tiles);
        else
          tiles(0, ntiles);
      }
    }
  }
}

void gemm(Trans trans, std::int64_t m, std::int64_t n, std::int64_t k,
          const float* a, const float* b, float* c, bool accumulate) {
  gemm(trans, m, n, k, a, b, c, accumulate, Epilogue{}, nullptr, nullptr);
}

void gemm_prepacked_b(std::int64_t m, std::int64_t n, std::int64_t k,
                      const float* a, const float* packed_b, float* c,
                      bool accumulate, const Epilogue& epilogue,
                      const QuantSpec* qa) {
  if (m <= 0 || n <= 0) return;
  CQ_TRACE_SCOPE_BYTES("gemm.prepacked_b",
                       (m * k + k * n + m * n) * sizeof(float));
  CQ_CHECK(k > 0 && k <= KC);
  if (qa != nullptr && qa->identity) qa = nullptr;
  const Epilogue* ep = epilogue.empty() ? nullptr : &epilogue;
  const float* bias_rows =
      ep != nullptr && ep->bias_kind == Epilogue::Bias::kPerRow ? ep->bias
                                                                : nullptr;
  const float* bias_cols =
      ep != nullptr && ep->bias_kind == Epilogue::Bias::kPerCol ? ep->bias
                                                                : nullptr;
  const Strides as{k, 1};  // row-major A, kNN orientation
  // Same scratch request as gemm() so the two entry points share one
  // steady-state buffer instead of ping-ponging its capacity.
  std::vector<float>& buf =
      scratch(static_cast<std::size_t>(MC * KC + KC * NC));
  float* ap = buf.data();

  // Single k-panel: every write-back both completes the sum (epilogue
  // eligible) and owns the overwrite-vs-accumulate decision. The loop nest
  // and per-tile traversal mirror gemm() exactly, so element results are
  // bit-identical; only the source of the packed B slivers differs.
  core::ThreadPool& pool = core::ThreadPool::instance();
  const bool par = want_parallel(m, n, k);
  for (std::int64_t jc = 0; jc < n; jc += NC) {
    const std::int64_t nc = std::min(NC, n - jc);
    for (std::int64_t ic = 0; ic < m; ic += MC) {
      const std::int64_t mc = std::min(MC, m - ic);
      const float* asrc = a + ic * k;
      if (par) {
        CQ_TRACE_SCOPE_HOT_BYTES("gemm.pack_a", mc * k * sizeof(float));
        pool.parallel_for((mc + MR - 1) / MR, 1,
                          [&](std::int64_t sv0, std::int64_t sv1) {
                            pack_a_range(asrc, as, sv0, sv1, mc, k, ap, qa);
                          });
      } else {
        pack_a(asrc, as, mc, k, ap, qa);
      }
      CQ_TRACE_SCOPE_HOT("gemm.kernel");
      const std::int64_t nir = (mc + MR - 1) / MR;
      const std::int64_t ntiles = ((nc + NR - 1) / NR) * nir;
      auto tiles = [&](std::int64_t t0, std::int64_t t1) {
        for (std::int64_t t = t0; t < t1; ++t) {
          const std::int64_t jr = (t / nir) * NR;
          const std::int64_t ir = (t % nir) * MR;
          const std::int64_t nr = std::min(NR, nc - jr);
          const std::int64_t mr = std::min(MR, mc - ir);
          const float* bpp = packed_b + ((jc + jr) / NR) * (k * NR);
          const float* app = ap + (ir / MR) * (k * MR);
          micro_kernel(k, app, bpp, c + (ic + ir) * n + (jc + jr), n, mr, nr,
                       !accumulate, ep,
                       bias_rows != nullptr ? bias_rows + ic + ir : nullptr,
                       bias_cols != nullptr ? bias_cols + jc + jr : nullptr);
        }
      };
      if (par)
        pool.parallel_for(ntiles, 1, tiles);
      else
        tiles(0, ntiles);
    }
  }
}

namespace detail {

void pack_block_b(Trans trans, std::int64_t k, std::int64_t n, const float* b,
                  float* bp, const QuantSpec* q) {
  if (q != nullptr && q->identity) q = nullptr;
  const std::int64_t kc = std::min(k, KC);
  const std::int64_t nc = std::min(n, NC);
  pack_b(b, b_strides(trans, k, n), kc, nc, bp, q);
}

void pack_block_a(Trans trans, std::int64_t m, std::int64_t k, const float* a,
                  float* ap, const QuantSpec* q) {
  if (q != nullptr && q->identity) q = nullptr;
  const std::int64_t mc = std::min(m, MC);
  const std::int64_t kc = std::min(k, KC);
  pack_a(a, a_strides(trans, m, k), mc, kc, ap, q);
}

}  // namespace detail

namespace reference {

void gemm(Trans trans, std::int64_t m, std::int64_t n, std::int64_t k,
          const float* a, const float* b, float* c, bool accumulate) {
  if (m <= 0 || n <= 0) return;
  if (!accumulate && trans != Trans::kNT)
    for (std::int64_t i = 0; i < m * n; ++i) c[i] = 0.0f;
  switch (trans) {
    case Trans::kNN:
      // ikj loop order: unit-stride inner loop over both B and C rows.
      for (std::int64_t i = 0; i < m; ++i) {
        float* crow = c + i * n;
        for (std::int64_t kk = 0; kk < k; ++kk) {
          const float aval = a[i * k + kk];
          const float* brow = b + kk * n;
          for (std::int64_t j = 0; j < n; ++j) crow[j] += aval * brow[j];
        }
      }
      break;
    case Trans::kTN:
      for (std::int64_t kk = 0; kk < k; ++kk) {
        const float* arow = a + kk * m;
        const float* brow = b + kk * n;
        for (std::int64_t i = 0; i < m; ++i) {
          const float aval = arow[i];
          float* crow = c + i * n;
          for (std::int64_t j = 0; j < n; ++j) crow[j] += aval * brow[j];
        }
      }
      break;
    case Trans::kNT:
      // Dot-product form; accumulates in double (the golden behaviour the
      // blocked kernel's float32 tiles are tested against).
      for (std::int64_t i = 0; i < m; ++i) {
        const float* arow = a + i * k;
        float* crow = c + i * n;
        for (std::int64_t j = 0; j < n; ++j) {
          const float* brow = b + j * k;
          double s = accumulate ? static_cast<double>(crow[j]) : 0.0;
          for (std::int64_t kk = 0; kk < k; ++kk)
            s += static_cast<double>(arow[kk]) * brow[kk];
          crow[j] = static_cast<float>(s);
        }
      }
      break;
  }
}

}  // namespace reference
}  // namespace cq::gemm
