#include "tensor/shape.hpp"

#include <sstream>

#include "util/check.hpp"

namespace cq {

Shape::Shape(std::initializer_list<std::int64_t> dims)
    : Shape(std::vector<std::int64_t>(dims)) {}

Shape::Shape(std::vector<std::int64_t> dims) : dims_(std::move(dims)) {
  for (auto d : dims_) CQ_CHECK_MSG(d > 0, "non-positive dim in " << str());
}

std::int64_t Shape::numel() const {
  std::int64_t n = 1;
  for (auto d : dims_) n *= d;
  return n;
}

std::int64_t Shape::dim(std::int64_t i) const {
  const auto r = static_cast<std::int64_t>(rank());
  if (i < 0) i += r;
  CQ_CHECK_MSG(i >= 0 && i < r, "dim index " << i << " out of range for "
                                             << str());
  return dims_[static_cast<std::size_t>(i)];
}

std::string Shape::str() const {
  std::ostringstream os;
  os << "[";
  for (std::size_t i = 0; i < dims_.size(); ++i) {
    if (i) os << ", ";
    os << dims_[i];
  }
  os << "]";
  return os.str();
}

}  // namespace cq
