#include "tensor/im2col.hpp"

namespace cq {

void im2col(const float* image, const ConvGeometry& g, float* cols) {
  const auto oh = g.out_h(), ow = g.out_w();
  std::int64_t row = 0;
  for (std::int64_t c = 0; c < g.in_channels; ++c) {
    const float* chan = image + c * g.in_h * g.in_w;
    for (std::int64_t kh = 0; kh < g.kernel_h; ++kh) {
      for (std::int64_t kw = 0; kw < g.kernel_w; ++kw, ++row) {
        float* out_row = cols + row * oh * ow;
        for (std::int64_t y = 0; y < oh; ++y) {
          const std::int64_t iy = y * g.stride + kh - g.pad;
          if (iy < 0 || iy >= g.in_h) {
            for (std::int64_t x = 0; x < ow; ++x) out_row[y * ow + x] = 0.0f;
            continue;
          }
          const float* in_row = chan + iy * g.in_w;
          for (std::int64_t x = 0; x < ow; ++x) {
            const std::int64_t ix = x * g.stride + kw - g.pad;
            out_row[y * ow + x] =
                (ix >= 0 && ix < g.in_w) ? in_row[ix] : 0.0f;
          }
        }
      }
    }
  }
}

void im2col_into(const float* image, const ConvGeometry& g, Tensor& cols) {
  cols.resize(Shape{g.col_rows(), g.col_cols()});
  im2col(image, g, cols.data());
}

void col2im(const float* cols, const ConvGeometry& g, float* image_grad) {
  const auto oh = g.out_h(), ow = g.out_w();
  std::int64_t row = 0;
  for (std::int64_t c = 0; c < g.in_channels; ++c) {
    float* chan = image_grad + c * g.in_h * g.in_w;
    for (std::int64_t kh = 0; kh < g.kernel_h; ++kh) {
      for (std::int64_t kw = 0; kw < g.kernel_w; ++kw, ++row) {
        const float* in_row = cols + row * oh * ow;
        for (std::int64_t y = 0; y < oh; ++y) {
          const std::int64_t iy = y * g.stride + kh - g.pad;
          if (iy < 0 || iy >= g.in_h) continue;
          float* out_row = chan + iy * g.in_w;
          for (std::int64_t x = 0; x < ow; ++x) {
            const std::int64_t ix = x * g.stride + kw - g.pad;
            if (ix >= 0 && ix < g.in_w) out_row[ix] += in_row[y * ow + x];
          }
        }
      }
    }
  }
}

}  // namespace cq
