#include "tensor/im2col.hpp"

#include <algorithm>
#include <cstring>

#include "core/threadpool.hpp"
#include "core/trace.hpp"
#include "tensor/gemm.hpp"

namespace cq {

void im2col(const float* image, const ConvGeometry& g, float* cols) {
  im2col(image, g, cols, g.col_cols());
}

void im2col(const float* image, const ConvGeometry& g, float* cols,
            std::int64_t col_stride) {
  const auto oh = g.out_h(), ow = g.out_w();
  CQ_TRACE_SCOPE_BYTES("im2col", g.col_rows() * oh * ow * sizeof(float));
  CQ_DCHECK(col_stride >= oh * ow);
  std::int64_t row = 0;
  for (std::int64_t c = 0; c < g.in_channels; ++c) {
    const float* chan = image + c * g.in_h * g.in_w;
    for (std::int64_t kh = 0; kh < g.kernel_h; ++kh) {
      for (std::int64_t kw = 0; kw < g.kernel_w; ++kw, ++row) {
        float* out_row = cols + row * col_stride;
        // The x positions with an in-bounds source pixel form one contiguous
        // run: 0 <= x*stride + kw - pad < in_w. Hoisting that range out of
        // the pixel loop turns the interior into a straight copy (memcpy for
        // stride 1) framed by zero fills — im2col is the hottest pre-GEMM
        // pass, and the per-element bounds test defeats vectorization.
        const std::int64_t off = kw - g.pad;
        std::int64_t x0 = off < 0 ? (-off + g.stride - 1) / g.stride : 0;
        std::int64_t x1 =  // inclusive; negative when the whole row is pad
            off < g.in_w ? (g.in_w - 1 - off) / g.stride : -1;
        x0 = std::min(x0, ow);
        x1 = std::min(x1, ow - 1);
        // Same hoist for y: rows outside [y0, y1] read only padding.
        const std::int64_t yoff = kh - g.pad;
        std::int64_t y0 = yoff < 0 ? (-yoff + g.stride - 1) / g.stride : 0;
        std::int64_t y1 = yoff < g.in_h ? (g.in_h - 1 - yoff) / g.stride : -1;
        y0 = std::min(y0, oh);
        y1 = std::min(y1, oh - 1);
        std::fill(out_row, out_row + y0 * ow, 0.0f);
        std::fill(out_row + (y1 + 1) * ow, out_row + oh * ow, 0.0f);
        if (g.stride == 1 && ow == g.in_w && y1 >= y0 && x1 >= x0) {
          // Width-preserving stride-1 conv: consecutive y rows advance both
          // source and destination by exactly `ow`, so the whole valid
          // region [y0..y1] x [x0..x1] is ONE contiguous copy (it also
          // overwrites the pad columns in between with stale neighbours —
          // the per-row edge fills below fix those up).
          std::memcpy(out_row + y0 * ow + x0,
                      chan + (y0 + yoff) * g.in_w + off + x0,
                      static_cast<std::size_t>((y1 - y0) * ow + x1 - x0 + 1) *
                          sizeof(float));
          for (std::int64_t y = y0; y <= y1; ++y) {
            float* dst = out_row + y * ow;
            for (std::int64_t x = 0; x < x0; ++x) dst[x] = 0.0f;
            for (std::int64_t x = x1 + 1; x < ow; ++x) dst[x] = 0.0f;
          }
          continue;
        }
        for (std::int64_t y = y0; y <= y1; ++y) {
          const std::int64_t iy = y * g.stride + yoff;
          float* dst = out_row + y * ow;
          const float* src = chan + iy * g.in_w + off;
          std::fill(dst, dst + x0, 0.0f);
          if (g.stride == 1) {
            if (x1 >= x0)
              std::memcpy(dst + x0, src + x0,
                          static_cast<std::size_t>(x1 - x0 + 1) *
                              sizeof(float));
          } else {
            for (std::int64_t x = x0; x <= x1; ++x) dst[x] = src[x * g.stride];
          }
          if (x1 + 1 < ow) std::fill(dst + x1 + 1, dst + ow, 0.0f);
        }
      }
    }
  }
}

void im2col_batched(const float* images, std::int64_t n,
                    std::int64_t sample_stride, const ConvGeometry& g,
                    float* cols, std::int64_t col_stride) {
  const auto oh = g.out_h(), ow = g.out_w();
  const auto spatial = oh * ow;
  CQ_TRACE_SCOPE_BYTES("im2col",
                       g.col_rows() * n * spatial * sizeof(float));
  CQ_DCHECK(col_stride >= n * spatial);
  // Patch row `row` (one (c, kh, kw) triple) writes only cols[row *
  // col_stride ...), so rows split freely across pool workers — pure data
  // movement, identical bytes at any split. The grain keeps each chunk
  // moving at least ~32k floats so small lowerings run inline.
  const std::int64_t kk = g.kernel_h * g.kernel_w;
  const std::int64_t grain =
      std::max<std::int64_t>(1, (std::int64_t{1} << 15) / (n * spatial + 1));
  core::parallel_for(g.col_rows(), grain, [&](std::int64_t r0,
                                              std::int64_t r1) {
    for (std::int64_t row = r0; row < r1; ++row) {
      const std::int64_t c = row / kk;
      const std::int64_t kh = (row % kk) / g.kernel_w;
      const std::int64_t kw = row % g.kernel_w;
      const std::int64_t chan_off = c * g.in_h * g.in_w;
      {
        // Identical range hoist to the strided single-image overload above
        // (same copy/fill structure, so the bytes match bit for bit) —
        // computed once per patch row here instead of once per (row, image).
        const std::int64_t off = kw - g.pad;
        std::int64_t x0 = off < 0 ? (-off + g.stride - 1) / g.stride : 0;
        std::int64_t x1 =
            off < g.in_w ? (g.in_w - 1 - off) / g.stride : -1;
        x0 = std::min(x0, ow);
        x1 = std::min(x1, ow - 1);
        const std::int64_t yoff = kh - g.pad;
        std::int64_t y0 = yoff < 0 ? (-yoff + g.stride - 1) / g.stride : 0;
        std::int64_t y1 = yoff < g.in_h ? (g.in_h - 1 - yoff) / g.stride : -1;
        y0 = std::min(y0, oh);
        y1 = std::min(y1, oh - 1);
        const bool contiguous =
            g.stride == 1 && ow == g.in_w && y1 >= y0 && x1 >= x0;
        for (std::int64_t img = 0; img < n; ++img) {
          const float* chan = images + img * sample_stride + chan_off;
          float* out_row = cols + row * col_stride + img * spatial;
          std::fill(out_row, out_row + y0 * ow, 0.0f);
          std::fill(out_row + (y1 + 1) * ow, out_row + oh * ow, 0.0f);
          if (contiguous) {
            std::memcpy(out_row + y0 * ow + x0,
                        chan + (y0 + yoff) * g.in_w + off + x0,
                        static_cast<std::size_t>((y1 - y0) * ow + x1 - x0 +
                                                 1) *
                            sizeof(float));
            for (std::int64_t y = y0; y <= y1; ++y) {
              float* dst = out_row + y * ow;
              for (std::int64_t x = 0; x < x0; ++x) dst[x] = 0.0f;
              for (std::int64_t x = x1 + 1; x < ow; ++x) dst[x] = 0.0f;
            }
            continue;
          }
          for (std::int64_t y = y0; y <= y1; ++y) {
            const std::int64_t iy = y * g.stride + yoff;
            float* dst = out_row + y * ow;
            const float* src = chan + iy * g.in_w + off;
            std::fill(dst, dst + x0, 0.0f);
            if (g.stride == 1) {
              if (x1 >= x0)
                std::memcpy(dst + x0, src + x0,
                            static_cast<std::size_t>(x1 - x0 + 1) *
                                sizeof(float));
            } else {
              for (std::int64_t x = x0; x <= x1; ++x)
                dst[x] = src[x * g.stride];
            }
            if (x1 + 1 < ow) std::fill(dst + x1 + 1, dst + ow, 0.0f);
          }
        }
      }
    }
  });
}

void im2col_into(const float* image, const ConvGeometry& g, Tensor& cols) {
  cols.resize(Shape{g.col_rows(), g.col_cols()});
  im2col(image, g, cols.data());
}

void im2col_packed(const float* image, const ConvGeometry& g, float* packed,
                   std::int64_t col0) {
  const auto oh = g.out_h(), ow = g.out_w();
  CQ_TRACE_SCOPE_BYTES("im2col.packed",
                       g.col_rows() * oh * ow * sizeof(float));
  const auto spatial = oh * ow;
  const auto kc = g.col_rows();
  CQ_CHECK(kc <= gemm::kKC);
  constexpr std::int64_t NR = gemm::kNR;
  CQ_CHECK(col0 % NR == 0 && spatial % NR == 0);

  // Sliver-outer walk: finish each kc x NR packed sliver before moving on,
  // so writes stream sequentially through the packed buffer and reads hit
  // the (small) input plane — the p-outer order of plain im2col would
  // revisit every sliver once per patch row, touching the whole packed
  // matrix col_rows times. A sliver spans NR consecutive output pixels,
  // which cross y-rows; segment that span once per sliver, then emit each
  // segment as a zero-framed contiguous copy for every patch row.
  struct Seg {
    std::int64_t t, len, y, xs;
  };
  Seg segs[NR];
  for (std::int64_t s = 0; s < spatial; s += NR) {
    int nsegs = 0;
    for (std::int64_t t = 0; t < NR;) {
      const std::int64_t j = s + t;
      const std::int64_t y = j / ow, xs = j % ow;
      const std::int64_t len = std::min(NR - t, ow - xs);
      segs[nsegs++] = Seg{t, len, y, xs};
      t += len;
    }
    float* sliver = packed + ((col0 + s) / NR) * (kc * NR);
    std::int64_t p = 0;
    for (std::int64_t c = 0; c < g.in_channels; ++c) {
      const float* chan = image + c * g.in_h * g.in_w;
      for (std::int64_t kh = 0; kh < g.kernel_h; ++kh) {
        const std::int64_t yoff = kh - g.pad;
        for (std::int64_t kw = 0; kw < g.kernel_w; ++kw, ++p) {
          const std::int64_t off = kw - g.pad;
          const std::int64_t x0 =
              off < 0 ? (-off + g.stride - 1) / g.stride : 0;
          const std::int64_t x1 =
              off < g.in_w ? (g.in_w - 1 - off) / g.stride : -1;
          float* dst = sliver + p * NR;
          for (int si = 0; si < nsegs; ++si) {
            const Seg& sg = segs[si];
            const std::int64_t iy = sg.y * g.stride + yoff;
            if (iy < 0 || iy >= g.in_h) {
              for (std::int64_t i = 0; i < sg.len; ++i) dst[sg.t + i] = 0.0f;
              continue;
            }
            const float* srow = chan + iy * g.in_w;
            const std::int64_t i0 = std::max<std::int64_t>(0, x0 - sg.xs);
            const std::int64_t i1 =
                std::min<std::int64_t>(sg.len - 1, x1 - sg.xs);
            for (std::int64_t i = 0; i < i0; ++i) dst[sg.t + i] = 0.0f;
            if (g.stride == 1) {
              for (std::int64_t i = i0; i <= i1; ++i)
                dst[sg.t + i] = srow[sg.xs + i + off];
            } else {
              for (std::int64_t i = i0; i <= i1; ++i)
                dst[sg.t + i] = srow[(sg.xs + i) * g.stride + off];
            }
            for (std::int64_t i = i1 + 1; i < sg.len; ++i) dst[sg.t + i] = 0.0f;
          }
        }
      }
    }
  }
}

void im2row(const float* image, const ConvGeometry& g, float* rows) {
  const auto oh = g.out_h(), ow = g.out_w();
  CQ_TRACE_SCOPE_BYTES("im2row", g.col_rows() * oh * ow * sizeof(float));
  float* dst = rows;
  for (std::int64_t y = 0; y < oh; ++y) {
    for (std::int64_t x = 0; x < ow; ++x) {
      // The kw positions reading an in-bounds pixel form one contiguous run
      // (ix = x*stride - pad + kw steps by 1 in kw), so each (c, kh) slice
      // of the patch is a zero-framed memcpy regardless of stride.
      const std::int64_t ix0 = x * g.stride - g.pad;
      const std::int64_t kw0 = std::max<std::int64_t>(0, -ix0);
      const std::int64_t kw1 =
          std::min<std::int64_t>(g.kernel_w - 1, g.in_w - 1 - ix0);
      for (std::int64_t c = 0; c < g.in_channels; ++c) {
        const float* chan = image + c * g.in_h * g.in_w;
        for (std::int64_t kh = 0; kh < g.kernel_h; ++kh, dst += g.kernel_w) {
          const std::int64_t iy = y * g.stride + kh - g.pad;
          // Hand loops, not memcpy/fill: spans here are kernel_w floats
          // (typically 3), where libc call overhead dwarfs the copy.
          if (iy < 0 || iy >= g.in_h || kw1 < kw0) {
            for (std::int64_t i = 0; i < g.kernel_w; ++i) dst[i] = 0.0f;
            continue;
          }
          const float* src = chan + iy * g.in_w + ix0;
          for (std::int64_t i = 0; i < kw0; ++i) dst[i] = 0.0f;
          for (std::int64_t i = kw0; i <= kw1; ++i) dst[i] = src[i];
          for (std::int64_t i = kw1 + 1; i < g.kernel_w; ++i) dst[i] = 0.0f;
        }
      }
    }
  }
}

void col2im(const float* cols, const ConvGeometry& g, float* image_grad) {
  const auto oh = g.out_h(), ow = g.out_w();
  CQ_TRACE_SCOPE_BYTES("col2im", g.col_rows() * oh * ow * sizeof(float));
  std::int64_t row = 0;
  for (std::int64_t c = 0; c < g.in_channels; ++c) {
    float* chan = image_grad + c * g.in_h * g.in_w;
    for (std::int64_t kh = 0; kh < g.kernel_h; ++kh) {
      for (std::int64_t kw = 0; kw < g.kernel_w; ++kw, ++row) {
        const float* in_row = cols + row * oh * ow;
        for (std::int64_t y = 0; y < oh; ++y) {
          const std::int64_t iy = y * g.stride + kh - g.pad;
          if (iy < 0 || iy >= g.in_h) continue;
          float* out_row = chan + iy * g.in_w;
          for (std::int64_t x = 0; x < ow; ++x) {
            const std::int64_t ix = x * g.stride + kw - g.pad;
            if (ix >= 0 && ix < g.in_w) out_row[ix] += in_row[y * ow + x];
          }
        }
      }
    }
  }
}

}  // namespace cq
