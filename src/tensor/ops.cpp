#include "tensor/ops.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "tensor/gemm.hpp"
#include "tensor/kernels/kernels.hpp"

namespace cq::ops {

namespace {
void check_same_shape(const Tensor& a, const Tensor& b, const char* op) {
  CQ_CHECK_MSG(a.same_shape(b), op << " shape mismatch: " << a.shape().str()
                                   << " vs " << b.shape().str());
}
}  // namespace

// ---- elementwise (_into cores) ---------------------------------------------

Tensor& add_into(const Tensor& a, const Tensor& b, Tensor& out) {
  check_same_shape(a, b, "add");
  out.resize_as(a);
  float* dst = out.data();
  const float* pa = a.data();
  const float* pb = b.data();
  const auto n = a.numel();
  for (std::int64_t i = 0; i < n; ++i) dst[i] = pa[i] + pb[i];
  return out;
}

Tensor& sub_into(const Tensor& a, const Tensor& b, Tensor& out) {
  check_same_shape(a, b, "sub");
  out.resize_as(a);
  float* dst = out.data();
  const float* pa = a.data();
  const float* pb = b.data();
  const auto n = a.numel();
  for (std::int64_t i = 0; i < n; ++i) dst[i] = pa[i] - pb[i];
  return out;
}

Tensor& mul_into(const Tensor& a, const Tensor& b, Tensor& out) {
  check_same_shape(a, b, "mul");
  out.resize_as(a);
  float* dst = out.data();
  const float* pa = a.data();
  const float* pb = b.data();
  const auto n = a.numel();
  for (std::int64_t i = 0; i < n; ++i) dst[i] = pa[i] * pb[i];
  return out;
}

Tensor& scale_into(const Tensor& a, float s, Tensor& out) {
  out.resize_as(a);
  float* dst = out.data();
  const float* pa = a.data();
  const auto n = a.numel();
  for (std::int64_t i = 0; i < n; ++i) dst[i] = pa[i] * s;
  return out;
}

Tensor& add_scalar_into(const Tensor& a, float s, Tensor& out) {
  out.resize_as(a);
  float* dst = out.data();
  const float* pa = a.data();
  const auto n = a.numel();
  for (std::int64_t i = 0; i < n; ++i) dst[i] = pa[i] + s;
  return out;
}

Tensor& map_into(const Tensor& a, const std::function<float(float)>& f,
                 Tensor& out) {
  out.resize_as(a);
  float* dst = out.data();
  const float* pa = a.data();
  const auto n = a.numel();
  for (std::int64_t i = 0; i < n; ++i) dst[i] = f(pa[i]);
  return out;
}

Tensor& relu_into(const Tensor& a, Tensor& out) {
  out.resize_as(a);
  kernels::relu(a.data(), out.data(), a.numel());
  return out;
}

Tensor& clamp_into(const Tensor& a, float lo, float hi, Tensor& out) {
  CQ_CHECK(lo <= hi);
  out.resize_as(a);
  float* dst = out.data();
  const float* pa = a.data();
  const auto n = a.numel();
  for (std::int64_t i = 0; i < n; ++i) dst[i] = std::clamp(pa[i], lo, hi);
  return out;
}

// ---- elementwise (value wrappers) ------------------------------------------

Tensor add(const Tensor& a, const Tensor& b) {
  Tensor out = a.like();
  return std::move(add_into(a, b, out));
}

Tensor sub(const Tensor& a, const Tensor& b) {
  Tensor out = a.like();
  return std::move(sub_into(a, b, out));
}

Tensor mul(const Tensor& a, const Tensor& b) {
  Tensor out = a.like();
  return std::move(mul_into(a, b, out));
}

Tensor scale(const Tensor& a, float s) {
  Tensor out = a.like();
  return std::move(scale_into(a, s, out));
}

Tensor add_scalar(const Tensor& a, float s) {
  Tensor out = a.like();
  return std::move(add_scalar_into(a, s, out));
}

Tensor map(const Tensor& a, const std::function<float(float)>& f) {
  Tensor out = a.like();
  return std::move(map_into(a, f, out));
}

Tensor relu(const Tensor& a) {
  Tensor out = a.like();
  return std::move(relu_into(a, out));
}

Tensor exp(const Tensor& a) {
  // Vectorized polynomial exp (kernel layer), < 2 ulp vs std::exp.
  Tensor out = a.like();
  kernels::vexp(a.data(), out.data(), a.numel());
  return out;
}

Tensor log(const Tensor& a) {
  return map(a, [](float v) { return std::log(v); });
}

Tensor sqrt(const Tensor& a) {
  return map(a, [](float v) { return std::sqrt(v); });
}

Tensor clamp(const Tensor& a, float lo, float hi) {
  Tensor out = a.like();
  return std::move(clamp_into(a, lo, hi, out));
}

// ---- reductions ------------------------------------------------------------

float sum(const Tensor& a) {
  // Kahan summation: cheap insurance for long reductions in fp32.
  double s = 0.0;
  for (std::int64_t i = 0; i < a.numel(); ++i) s += a[i];
  return static_cast<float>(s);
}

float mean(const Tensor& a) {
  return sum(a) / static_cast<float>(a.numel());
}

float max(const Tensor& a) {
  if (a.numel() == 0) return -std::numeric_limits<float>::infinity();
  float lo, hi;
  kernels::minmax(a.data(), a.numel(), &lo, &hi);
  return hi;
}

float min(const Tensor& a) {
  if (a.numel() == 0) return std::numeric_limits<float>::infinity();
  float lo, hi;
  kernels::minmax(a.data(), a.numel(), &lo, &hi);
  return lo;
}

std::int64_t argmax(const Tensor& a) {
  std::int64_t best = 0;
  for (std::int64_t i = 1; i < a.numel(); ++i)
    if (a[i] > a[best]) best = i;
  return best;
}

float norm(const Tensor& a) {
  double s = 0.0;
  for (std::int64_t i = 0; i < a.numel(); ++i)
    s += static_cast<double>(a[i]) * a[i];
  return static_cast<float>(std::sqrt(s));
}

float dot(const Tensor& a, const Tensor& b) {
  check_same_shape(a, b, "dot");
  double s = 0.0;
  for (std::int64_t i = 0; i < a.numel(); ++i)
    s += static_cast<double>(a[i]) * b[i];
  return static_cast<float>(s);
}

Tensor row_sum(const Tensor& a) {
  CQ_CHECK(a.shape().rank() == 2);
  const auto n = a.dim(0), d = a.dim(1);
  Tensor out = Tensor::empty(Shape{n});
  kernels::row_sum(a.data(), n, d, out.data());
  return out;
}

Tensor row_max(const Tensor& a) {
  CQ_CHECK(a.shape().rank() == 2);
  const auto n = a.dim(0), d = a.dim(1);
  Tensor out = Tensor::empty(Shape{n});
  for (std::int64_t r = 0; r < n; ++r) {
    float m = -std::numeric_limits<float>::infinity();
    for (std::int64_t c = 0; c < d; ++c) m = std::max(m, a.at(r, c));
    out[r] = m;
  }
  return out;
}

std::vector<std::int64_t> row_argmax(const Tensor& a) {
  CQ_CHECK(a.shape().rank() == 2);
  const auto n = a.dim(0), d = a.dim(1);
  std::vector<std::int64_t> out(static_cast<std::size_t>(n));
  for (std::int64_t r = 0; r < n; ++r) {
    std::int64_t best = 0;
    for (std::int64_t c = 1; c < d; ++c)
      if (a.at(r, c) > a.at(r, best)) best = c;
    out[static_cast<std::size_t>(r)] = best;
  }
  return out;
}

// ---- linear algebra --------------------------------------------------------

namespace {
void check_no_alias(const Tensor& a, const Tensor& b, const Tensor& out,
                    const char* op) {
  CQ_CHECK_MSG(out.data() != a.data() && out.data() != b.data(),
               op << "_into: out must not alias an input");
}
}  // namespace

Tensor& matmul_into(const Tensor& a, const Tensor& b, Tensor& out) {
  CQ_CHECK(a.shape().rank() == 2 && b.shape().rank() == 2);
  const auto m = a.dim(0), k = a.dim(1), n = b.dim(1);
  CQ_CHECK_MSG(b.dim(0) == k, "matmul inner dims: " << a.shape().str() << " * "
                                                    << b.shape().str());
  out.resize(Shape{m, n});
  check_no_alias(a, b, out, "matmul");
  gemm::gemm(gemm::Trans::kNN, m, n, k, a.data(), b.data(), out.data());
  return out;
}

Tensor& matmul_tn_into(const Tensor& a, const Tensor& b, Tensor& out) {
  CQ_CHECK(a.shape().rank() == 2 && b.shape().rank() == 2);
  const auto k = a.dim(0), m = a.dim(1), n = b.dim(1);
  CQ_CHECK_MSG(b.dim(0) == k, "matmul_tn inner dims: " << a.shape().str()
                                                       << "^T * "
                                                       << b.shape().str());
  out.resize(Shape{m, n});
  check_no_alias(a, b, out, "matmul_tn");
  gemm::gemm(gemm::Trans::kTN, m, n, k, a.data(), b.data(), out.data());
  return out;
}

Tensor& matmul_nt_into(const Tensor& a, const Tensor& b, Tensor& out) {
  CQ_CHECK(a.shape().rank() == 2 && b.shape().rank() == 2);
  const auto m = a.dim(0), k = a.dim(1), n = b.dim(0);
  CQ_CHECK_MSG(b.dim(1) == k, "matmul_nt inner dims: " << a.shape().str()
                                                       << " * "
                                                       << b.shape().str()
                                                       << "^T");
  out.resize(Shape{m, n});
  check_no_alias(a, b, out, "matmul_nt");
  gemm::gemm(gemm::Trans::kNT, m, n, k, a.data(), b.data(), out.data());
  return out;
}

Tensor& transpose_into(const Tensor& a, Tensor& out) {
  CQ_CHECK(a.shape().rank() == 2);
  const auto m = a.dim(0), n = a.dim(1);
  out.resize(Shape{n, m});
  CQ_CHECK_MSG(out.data() != a.data(), "transpose_into: out must not alias a");
  for (std::int64_t i = 0; i < m; ++i)
    for (std::int64_t j = 0; j < n; ++j) out.at(j, i) = a.at(i, j);
  return out;
}

Tensor matmul(const Tensor& a, const Tensor& b) {
  Tensor c;
  return std::move(matmul_into(a, b, c));
}

Tensor matmul_tn(const Tensor& a, const Tensor& b) {
  Tensor c;
  return std::move(matmul_tn_into(a, b, c));
}

Tensor matmul_nt(const Tensor& a, const Tensor& b) {
  Tensor c;
  return std::move(matmul_nt_into(a, b, c));
}

Tensor transpose(const Tensor& a) {
  Tensor out;
  return std::move(transpose_into(a, out));
}

// ---- neural-net helpers ----------------------------------------------------

Tensor softmax_rows(const Tensor& a) {
  CQ_CHECK(a.shape().rank() == 2);
  const auto n = a.dim(0), d = a.dim(1);
  Tensor out = a;
  kernels::softmax_rows(out.data(), n, d);
  return out;
}

Tensor log_softmax_rows(const Tensor& a) {
  CQ_CHECK(a.shape().rank() == 2);
  const auto n = a.dim(0), d = a.dim(1);
  Tensor out = a;
  kernels::log_softmax_rows(out.data(), n, d);
  return out;
}

Tensor l2_normalize_rows(const Tensor& a, Tensor* norms_out, float eps) {
  CQ_CHECK(a.shape().rank() == 2);
  const auto n = a.dim(0), d = a.dim(1);
  Tensor out = a;
  if (norms_out == nullptr) {
    kernels::l2_normalize_rows(out.data(), n, d, nullptr, eps);
  } else {
    Tensor norms = Tensor::empty(Shape{n});
    kernels::l2_normalize_rows(out.data(), n, d, norms.data(), eps);
    *norms_out = std::move(norms);
  }
  return out;
}

}  // namespace cq::ops
