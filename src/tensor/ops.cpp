#include "tensor/ops.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "tensor/gemm.hpp"

namespace cq::ops {

namespace {
void check_same_shape(const Tensor& a, const Tensor& b, const char* op) {
  CQ_CHECK_MSG(a.same_shape(b), op << " shape mismatch: " << a.shape().str()
                                   << " vs " << b.shape().str());
}
}  // namespace

Tensor add(const Tensor& a, const Tensor& b) {
  check_same_shape(a, b, "add");
  Tensor out = a;
  out.add_(b);
  return out;
}

Tensor sub(const Tensor& a, const Tensor& b) {
  check_same_shape(a, b, "sub");
  Tensor out = a;
  out.add_(b, -1.0f);
  return out;
}

Tensor mul(const Tensor& a, const Tensor& b) {
  check_same_shape(a, b, "mul");
  Tensor out = a;
  float* dst = out.data();
  const float* src = b.data();
  const auto n = out.numel();
  for (std::int64_t i = 0; i < n; ++i) dst[i] *= src[i];
  return out;
}

Tensor scale(const Tensor& a, float s) {
  Tensor out = a;
  out.mul_(s);
  return out;
}

Tensor add_scalar(const Tensor& a, float s) {
  Tensor out = a;
  for (std::int64_t i = 0; i < out.numel(); ++i) out[i] += s;
  return out;
}

Tensor map(const Tensor& a, const std::function<float(float)>& f) {
  Tensor out = a;
  for (std::int64_t i = 0; i < out.numel(); ++i) out[i] = f(out[i]);
  return out;
}

Tensor relu(const Tensor& a) {
  Tensor out = a;
  float* d = out.data();
  for (std::int64_t i = 0; i < out.numel(); ++i) d[i] = d[i] > 0 ? d[i] : 0.0f;
  return out;
}

Tensor exp(const Tensor& a) {
  Tensor out = a;
  for (std::int64_t i = 0; i < out.numel(); ++i) out[i] = std::exp(out[i]);
  return out;
}

Tensor log(const Tensor& a) {
  Tensor out = a;
  for (std::int64_t i = 0; i < out.numel(); ++i) out[i] = std::log(out[i]);
  return out;
}

Tensor sqrt(const Tensor& a) {
  Tensor out = a;
  for (std::int64_t i = 0; i < out.numel(); ++i) out[i] = std::sqrt(out[i]);
  return out;
}

Tensor clamp(const Tensor& a, float lo, float hi) {
  CQ_CHECK(lo <= hi);
  Tensor out = a;
  for (std::int64_t i = 0; i < out.numel(); ++i)
    out[i] = std::clamp(out[i], lo, hi);
  return out;
}

float sum(const Tensor& a) {
  // Kahan summation: cheap insurance for long reductions in fp32.
  double s = 0.0;
  for (std::int64_t i = 0; i < a.numel(); ++i) s += a[i];
  return static_cast<float>(s);
}

float mean(const Tensor& a) {
  return sum(a) / static_cast<float>(a.numel());
}

float max(const Tensor& a) {
  float m = -std::numeric_limits<float>::infinity();
  for (std::int64_t i = 0; i < a.numel(); ++i) m = std::max(m, a[i]);
  return m;
}

float min(const Tensor& a) {
  float m = std::numeric_limits<float>::infinity();
  for (std::int64_t i = 0; i < a.numel(); ++i) m = std::min(m, a[i]);
  return m;
}

std::int64_t argmax(const Tensor& a) {
  std::int64_t best = 0;
  for (std::int64_t i = 1; i < a.numel(); ++i)
    if (a[i] > a[best]) best = i;
  return best;
}

float norm(const Tensor& a) {
  double s = 0.0;
  for (std::int64_t i = 0; i < a.numel(); ++i)
    s += static_cast<double>(a[i]) * a[i];
  return static_cast<float>(std::sqrt(s));
}

float dot(const Tensor& a, const Tensor& b) {
  check_same_shape(a, b, "dot");
  double s = 0.0;
  for (std::int64_t i = 0; i < a.numel(); ++i)
    s += static_cast<double>(a[i]) * b[i];
  return static_cast<float>(s);
}

Tensor row_sum(const Tensor& a) {
  CQ_CHECK(a.shape().rank() == 2);
  const auto n = a.dim(0), d = a.dim(1);
  Tensor out(Shape{n});
  for (std::int64_t r = 0; r < n; ++r) {
    double s = 0.0;
    for (std::int64_t c = 0; c < d; ++c) s += a.at(r, c);
    out[r] = static_cast<float>(s);
  }
  return out;
}

Tensor row_max(const Tensor& a) {
  CQ_CHECK(a.shape().rank() == 2);
  const auto n = a.dim(0), d = a.dim(1);
  Tensor out(Shape{n});
  for (std::int64_t r = 0; r < n; ++r) {
    float m = -std::numeric_limits<float>::infinity();
    for (std::int64_t c = 0; c < d; ++c) m = std::max(m, a.at(r, c));
    out[r] = m;
  }
  return out;
}

std::vector<std::int64_t> row_argmax(const Tensor& a) {
  CQ_CHECK(a.shape().rank() == 2);
  const auto n = a.dim(0), d = a.dim(1);
  std::vector<std::int64_t> out(static_cast<std::size_t>(n));
  for (std::int64_t r = 0; r < n; ++r) {
    std::int64_t best = 0;
    for (std::int64_t c = 1; c < d; ++c)
      if (a.at(r, c) > a.at(r, best)) best = c;
    out[static_cast<std::size_t>(r)] = best;
  }
  return out;
}

Tensor matmul(const Tensor& a, const Tensor& b) {
  CQ_CHECK(a.shape().rank() == 2 && b.shape().rank() == 2);
  const auto m = a.dim(0), k = a.dim(1), n = b.dim(1);
  CQ_CHECK_MSG(b.dim(0) == k, "matmul inner dims: " << a.shape().str() << " * "
                                                    << b.shape().str());
  Tensor c(Shape{m, n});
  gemm::gemm(gemm::Trans::kNN, m, n, k, a.data(), b.data(), c.data());
  return c;
}

Tensor matmul_tn(const Tensor& a, const Tensor& b) {
  CQ_CHECK(a.shape().rank() == 2 && b.shape().rank() == 2);
  const auto k = a.dim(0), m = a.dim(1), n = b.dim(1);
  CQ_CHECK_MSG(b.dim(0) == k, "matmul_tn inner dims: " << a.shape().str()
                                                       << "^T * "
                                                       << b.shape().str());
  Tensor c(Shape{m, n});
  gemm::gemm(gemm::Trans::kTN, m, n, k, a.data(), b.data(), c.data());
  return c;
}

Tensor matmul_nt(const Tensor& a, const Tensor& b) {
  CQ_CHECK(a.shape().rank() == 2 && b.shape().rank() == 2);
  const auto m = a.dim(0), k = a.dim(1), n = b.dim(0);
  CQ_CHECK_MSG(b.dim(1) == k, "matmul_nt inner dims: " << a.shape().str()
                                                       << " * "
                                                       << b.shape().str()
                                                       << "^T");
  Tensor c(Shape{m, n});
  gemm::gemm(gemm::Trans::kNT, m, n, k, a.data(), b.data(), c.data());
  return c;
}

Tensor transpose(const Tensor& a) {
  CQ_CHECK(a.shape().rank() == 2);
  const auto m = a.dim(0), n = a.dim(1);
  Tensor out(Shape{n, m});
  for (std::int64_t i = 0; i < m; ++i)
    for (std::int64_t j = 0; j < n; ++j) out.at(j, i) = a.at(i, j);
  return out;
}

Tensor softmax_rows(const Tensor& a) {
  CQ_CHECK(a.shape().rank() == 2);
  const auto n = a.dim(0), d = a.dim(1);
  Tensor out = a;
  for (std::int64_t r = 0; r < n; ++r) {
    float m = -std::numeric_limits<float>::infinity();
    for (std::int64_t c = 0; c < d; ++c) m = std::max(m, out.at(r, c));
    double s = 0.0;
    for (std::int64_t c = 0; c < d; ++c) {
      const float e = std::exp(out.at(r, c) - m);
      out.at(r, c) = e;
      s += e;
    }
    const float inv = static_cast<float>(1.0 / s);
    for (std::int64_t c = 0; c < d; ++c) out.at(r, c) *= inv;
  }
  return out;
}

Tensor log_softmax_rows(const Tensor& a) {
  CQ_CHECK(a.shape().rank() == 2);
  const auto n = a.dim(0), d = a.dim(1);
  Tensor out = a;
  for (std::int64_t r = 0; r < n; ++r) {
    float m = -std::numeric_limits<float>::infinity();
    for (std::int64_t c = 0; c < d; ++c) m = std::max(m, out.at(r, c));
    double s = 0.0;
    for (std::int64_t c = 0; c < d; ++c) s += std::exp(out.at(r, c) - m);
    const float lse = m + static_cast<float>(std::log(s));
    for (std::int64_t c = 0; c < d; ++c) out.at(r, c) -= lse;
  }
  return out;
}

Tensor l2_normalize_rows(const Tensor& a, Tensor* norms_out, float eps) {
  CQ_CHECK(a.shape().rank() == 2);
  const auto n = a.dim(0), d = a.dim(1);
  Tensor out = a;
  Tensor norms(Shape{n});
  for (std::int64_t r = 0; r < n; ++r) {
    double s = 0.0;
    for (std::int64_t c = 0; c < d; ++c)
      s += static_cast<double>(out.at(r, c)) * out.at(r, c);
    const float nr = static_cast<float>(std::sqrt(s));
    norms[r] = nr;
    if (nr > eps) {
      const float inv = 1.0f / nr;
      for (std::int64_t c = 0; c < d; ++c) out.at(r, c) *= inv;
    }
  }
  if (norms_out != nullptr) *norms_out = std::move(norms);
  return out;
}

}  // namespace cq::ops
