// int8 GEMM micro-kernels. Like tensor/gemm.cpp this TU is compiled with
// -march=native -ffp-contract=off (see src/CMakeLists.txt): the packing and
// epilogue float math must not be contracted to FMA, and the integer core
// wants the widest SIMD available. Under CQ_FORCE_SCALAR the default
// namespace collapses onto the portable loops — bit-identical results, per
// the determinism contract in igemm.hpp.
//
// There is no KC/NC cache blocking here on purpose: serving-shape operands
// are 4x smaller than fp32 (int8 vs float), the whole packed A is prepacked
// once at network-compile time, and the full-k register accumulation is what
// guarantees "no intermediate rounding" without an int32 C scratch. A B
// sliver is kNR * padded_k bytes — L1/L2-resident for every shape the
// deploy path produces (k <= kMaxK keeps even the worst case ~0.5 MB).
#include "tensor/kernels/igemm.hpp"

#include <cmath>

#include "core/threadpool.hpp"
#include "core/trace.hpp"
#include "util/check.hpp"

#if !defined(CQ_FORCE_SCALAR) && defined(__AVX512F__) && \
    defined(__AVX512BW__) && defined(__AVX512VNNI__)
#define CQ_IGEMM_VNNI 1
#include <immintrin.h>
#else
#define CQ_IGEMM_VNNI 0
#endif

namespace cq::igemm {
namespace {

constexpr std::int64_t MR = kMR;
constexpr std::int64_t NR = kNR;
constexpr std::int64_t KU = kKU;

// ---------------------------------------------------------------------------
// Portable implementations. These ARE igemm::scalar, and also the default
// backend when the build has no VNNI.
// ---------------------------------------------------------------------------

// One shared quantize formula (igemm.hpp documents it); the VNNI pack path
// below reproduces it lane-for-lane with max/min/cvtps, which share x86's
// NaN-takes-the-second-operand and round-half-even semantics.
std::int32_t quantize_impl(float v, float inv_scale) {
  float t = v * inv_scale;
  t = t > -127.0f ? t : -127.0f;  // NaN compares false -> clamps to -127
  t = t < 127.0f ? t : 127.0f;
  return static_cast<std::int32_t>(std::nearbyintf(t));
}

// Pack B slivers [sv0, sv1) (sliver sv covers columns [sv*NR, sv*NR+NR)).
// Each sliver writes a disjoint kp*NR byte region, so ranges split across
// pool workers bitwise-identically to the serial full-range call.
void pack_b_scalar(const float* b, std::int64_t rs, std::int64_t cs,
                   std::int64_t k, std::int64_t n, const float* col_inv_scale,
                   std::uint8_t* bp, std::int64_t sv0, std::int64_t sv1) {
  const std::int64_t kp = padded_k(k);
  for (std::int64_t sv = sv0; sv < sv1; ++sv) {
    const std::int64_t jr = sv * NR;
    const std::int64_t nr = std::min(NR, n - jr);
    std::uint8_t* sliver = bp + sv * (kp * NR);
    // Byte slot for (k-index p, sliver column j): quad-grouped per
    // igemm.hpp — (p / KU) * (NR * KU) + j * KU + p % KU.
    if (cs == 1) {
      // Row-major source (im2col output): k-outer order reads each source
      // row once, contiguously.
      for (std::int64_t p = 0; p < kp; ++p) {
        const float* src = p < k ? b + p * rs + jr : b;  // pad rows unread
        std::uint8_t* dst = sliver + (p / KU) * (NR * KU) + p % KU;
        for (std::int64_t j = 0; j < NR; ++j) {
          const bool live = j < nr && p < k;
          const std::int32_t q =
              live ? quantize_impl(src[j], col_inv_scale[jr + j]) : 0;
          dst[j * KU] = static_cast<std::uint8_t>(q + 128);
        }
      }
    } else {
      // Column-strided source (linear layer reading x[n, k] transposed):
      // each logical column is a contiguous source row, so walk j-outer.
      // Same bytes into the same slots as the k-outer order above.
      for (std::int64_t j = 0; j < NR; ++j) {
        const float* src = j < nr ? b + (jr + j) * cs : b;  // pad cols unread
        const float inv = j < nr ? col_inv_scale[jr + j] : 0.0f;
        for (std::int64_t p = 0; p < kp; ++p) {
          const std::int32_t q =
              (j < nr && p < k) ? quantize_impl(src[p * rs], inv) : 0;
          sliver[(p / KU) * (NR * KU) + j * KU + p % KU] =
              static_cast<std::uint8_t>(q + 128);
        }
      }
    }
  }
}

// Per-tile write-back shared by both portable paths: fold the offset
// correction and scales exactly as documented in igemm.hpp. `acc` holds the
// raw u8*s8 sums for tile rows [ir, ir+mr) x columns [jr, jr+nr).
void write_back_scalar(const std::int32_t acc[MR][NR], std::int64_t ir,
                       std::int64_t jr, std::int64_t mr, std::int64_t nr,
                       const std::int32_t* rowsum, float* c, std::int64_t ldc,
                       const Epilogue& ep) {
  for (std::int64_t i = 0; i < mr; ++i) {
    float* crow = c + (ir + i) * ldc + jr;
    const float rscale = ep.row_scale[ir + i];
    const float bias = ep.bias != nullptr ? ep.bias[ir + i] : 0.0f;
    for (std::int64_t j = 0; j < nr; ++j) {
      const std::int32_t off =
          128 + (ep.col_zp != nullptr ? ep.col_zp[jr + j] : 0);
      const std::int32_t eff = acc[i][j] - off * rowsum[ir + i];
      crow[j] = detail::epilogue_value(eff, rscale, ep.col_scale[jr + j], bias);
    }
  }
}

// Compute output tiles [t0, t1) of the flat jr-major tile grid (tile t is
// jr strip t / nir, ir strip t % nir, nir = ceil(m / MR)). Each tile owns
// its full-k accumulator and a disjoint C region, so any partition of the
// grid produces bitwise-identical output.
void gemm_scalar_tiles(std::int64_t m, std::int64_t n, std::int64_t k,
                       const std::int8_t* ap, const std::int32_t* rowsum,
                       const std::uint8_t* bp, float* c, std::int64_t ldc,
                       const Epilogue& ep, std::int64_t t0, std::int64_t t1) {
  const std::int64_t kp = padded_k(k);
  const std::int64_t k4 = kp / KU;
  const std::int64_t nir = (m + MR - 1) / MR;
  for (std::int64_t t = t0; t < t1; ++t) {
    const std::int64_t jr = (t / nir) * NR;
    const std::int64_t ir = (t % nir) * MR;
    const std::int64_t nr = std::min(NR, n - jr);
    const std::int64_t mr = std::min(MR, m - ir);
    const std::uint8_t* bpp = bp + (jr / NR) * (kp * NR);
    const std::int8_t* app = ap + (ir / MR) * (kp * MR);
    std::int32_t acc[MR][NR] = {};
    for (std::int64_t p = 0; p < k4; ++p) {
      const std::int8_t* aq = app + p * MR * KU;
      const std::uint8_t* bq = bpp + p * NR * KU;
      for (std::int64_t i = 0; i < MR; ++i) {
        for (std::int64_t u = 0; u < KU; ++u) {
          const std::int32_t av = aq[i * KU + u];
          if (av == 0) continue;  // zero A bytes (incl. all pads) are inert
          const std::uint8_t* bu = bq + u;
          for (std::int64_t j = 0; j < NR; ++j)
            acc[i][j] += av * static_cast<std::int32_t>(bu[j * KU]);
        }
      }
    }
    write_back_scalar(acc, ir, jr, mr, nr, rowsum, c, ldc, ep);
  }
}

void gemm_scalar(std::int64_t m, std::int64_t n, std::int64_t k,
                 const std::int8_t* ap, const std::int32_t* rowsum,
                 const std::uint8_t* bp, float* c, std::int64_t ldc,
                 const Epilogue& ep) {
  const std::int64_t ntiles = ((n + NR - 1) / NR) * ((m + MR - 1) / MR);
  gemm_scalar_tiles(m, n, k, ap, rowsum, bp, c, ldc, ep, 0, ntiles);
}

// ---------------------------------------------------------------------------
// AVX-512 VNNI backend.
// ---------------------------------------------------------------------------
#if CQ_IGEMM_VNNI

// Quantize one 16-wide row slice to offset-binary int32 lanes ([1, 255]).
// Masked-off lanes read v = 0 with inv = 0 and produce the pad byte 128 —
// identical to what pack_b_scalar writes, so packed buffers match bitwise.
inline __m512i quantize_row(const float* src, __mmask16 mask, __m512 inv) {
  __m512 t = _mm512_mul_ps(_mm512_maskz_loadu_ps(mask, src), inv);
  t = _mm512_max_ps(t, _mm512_set1_ps(-127.0f));  // NaN -> -127, like scalar
  t = _mm512_min_ps(t, _mm512_set1_ps(127.0f));
  return _mm512_add_epi32(_mm512_cvtps_epi32(t), _mm512_set1_epi32(128));
}

void pack_b_vnni(const float* b, std::int64_t rs, std::int64_t cs,
                 std::int64_t k, std::int64_t n, const float* col_inv_scale,
                 std::uint8_t* bp, std::int64_t sv0, std::int64_t sv1) {
  if (cs != 1) {  // strided gather: the scalar walk is already column-local
    pack_b_scalar(b, rs, cs, k, n, col_inv_scale, bp, sv0, sv1);
    return;
  }
  const std::int64_t kp = padded_k(k);
  const __m512i zero128 = _mm512_set1_epi32(128);
  for (std::int64_t sv = sv0; sv < sv1; ++sv) {
    const std::int64_t jr = sv * NR;
    const std::int64_t nr = std::min(NR, n - jr);
    const __mmask16 mask =
        nr == NR ? static_cast<__mmask16>(0xFFFF)
                 : static_cast<__mmask16>((1u << nr) - 1u);
    const __m512 inv = _mm512_maskz_loadu_ps(mask, col_inv_scale + jr);
    std::uint8_t* sliver = bp + sv * (kp * NR);
    for (std::int64_t p = 0; p < kp; p += KU) {
      // Four k-rows -> one 64-byte quad block. Each offset-binary value
      // fits in 8 bits, so shift-and-or assembles the bytes exactly.
      __m512i q[KU];
      for (std::int64_t u = 0; u < KU; ++u)
        q[u] = p + u < k ? quantize_row(b + (p + u) * rs + jr, mask, inv)
                         : zero128;  // k pad: the offset-binary zero byte
      const __m512i lo =
          _mm512_or_si512(q[0], _mm512_slli_epi32(q[1], 8));
      const __m512i hi =
          _mm512_or_si512(_mm512_slli_epi32(q[2], 16),
                          _mm512_slli_epi32(q[3], 24));
      _mm512_storeu_si512(sliver + (p / KU) * (NR * KU),
                          _mm512_or_si512(lo, hi));
    }
  }
}

// Tile-range form mirroring gemm_scalar_tiles: same flat jr-major grid,
// per-tile register accumulation, disjoint C writes.
void gemm_vnni_tiles(std::int64_t m, std::int64_t n, std::int64_t k,
                     const std::int8_t* ap, const std::int32_t* rowsum,
                     const std::uint8_t* bp, float* c, std::int64_t ldc,
                     const Epilogue& ep, std::int64_t t0, std::int64_t t1) {
  const std::int64_t kp = padded_k(k);
  const std::int64_t k4 = kp / KU;
  const std::int64_t nir = (m + MR - 1) / MR;
  for (std::int64_t t = t0; t < t1; ++t) {
    const std::int64_t jr = (t / nir) * NR;
    const std::int64_t ir = (t % nir) * MR;
    const std::int64_t nr = std::min(NR, n - jr);
    {
      const __mmask16 mask =
          nr == NR ? static_cast<__mmask16>(0xFFFF)
                   : static_cast<__mmask16>((1u << nr) - 1u);
      const std::uint8_t* bpp = bp + (jr / NR) * (kp * NR);
      // Per-column epilogue operands for this tile. Masked-off lanes are
      // zero; they are never stored.
      const __m512i zpv =
          ep.col_zp != nullptr
              ? _mm512_maskz_loadu_epi32(mask, ep.col_zp + jr)
              : _mm512_setzero_si512();
      const __m512i offv = _mm512_add_epi32(zpv, _mm512_set1_epi32(128));
      const __m512 csv = _mm512_maskz_loadu_ps(mask, ep.col_scale + jr);
      const std::int64_t mr = std::min(MR, m - ir);
      const std::int8_t* app = ap + (ir / MR) * (kp * MR);
      __m512i acc[MR] = {};
      for (std::int64_t p = 0; p < k4; ++p) {
        // One zmm of B (16 columns x 4 k-values) against a broadcast dword
        // (4 k-values of one A row): vpdpbusd accumulates the u8*s8 quad
        // products straight into the int32 lanes.
        const __m512i bv = _mm512_loadu_si512(bpp + p * NR * KU);
        const std::int8_t* aq = app + p * MR * KU;
        for (std::int64_t i = 0; i < MR; ++i) {
          std::int32_t adw;
          __builtin_memcpy(&adw, aq + i * KU, sizeof(adw));
          acc[i] = _mm512_dpbusd_epi32(acc[i], bv, _mm512_set1_epi32(adw));
        }
      }
      for (std::int64_t i = 0; i < mr; ++i) {
        // eff = acc - (128 + zp_j) * rowsum_i, then the two-step float fold
        // (mul, add — explicit intrinsics, never contracted) matching
        // detail::epilogue_value lane-for-lane.
        const __m512i corr =
            _mm512_mullo_epi32(offv, _mm512_set1_epi32(rowsum[ir + i]));
        const __m512i eff = _mm512_sub_epi32(acc[i], corr);
        const __m512 sv =
            _mm512_mul_ps(_mm512_set1_ps(ep.row_scale[ir + i]), csv);
        const __m512 out = _mm512_add_ps(
            _mm512_mul_ps(_mm512_cvtepi32_ps(eff), sv),
            _mm512_set1_ps(ep.bias != nullptr ? ep.bias[ir + i] : 0.0f));
        _mm512_mask_storeu_ps(c + (ir + i) * ldc + jr, mask, out);
      }
    }
  }
}

void gemm_vnni(std::int64_t m, std::int64_t n, std::int64_t k,
               const std::int8_t* ap, const std::int32_t* rowsum,
               const std::uint8_t* bp, float* c, std::int64_t ldc,
               const Epilogue& ep) {
  const std::int64_t ntiles = ((n + NR - 1) / NR) * ((m + MR - 1) / MR);
  gemm_vnni_tiles(m, n, k, ap, rowsum, bp, c, ldc, ep, 0, ntiles);
}

#endif  // CQ_IGEMM_VNNI

}  // namespace

const char* backend() {
#if CQ_IGEMM_VNNI
  return "avx512-vnni";
#else
  return "scalar";
#endif
}

void pack_a_s8(const std::int8_t* a, std::int64_t m, std::int64_t k,
               std::int8_t* ap, std::int32_t* rowsum) {
  CQ_TRACE_SCOPE_HOT_BYTES("igemm.pack_a", m * k);
  const std::int64_t kp = padded_k(k);
  for (std::int64_t ir = 0; ir < m; ir += MR) {
    const std::int64_t mr = std::min(MR, m - ir);
    std::int8_t* sliver = ap + (ir / MR) * (kp * MR);
    for (std::int64_t i = 0; i < MR; ++i) {
      const std::int8_t* src = a + (ir + i) * k;
      std::int32_t sum = 0;
      for (std::int64_t p = 0; p < kp; ++p) {
        const std::int8_t v = (i < mr && p < k) ? src[p] : std::int8_t{0};
        sliver[(p / KU) * (MR * KU) + i * KU + (p % KU)] = v;
        sum += v;
      }
      if (i < mr) rowsum[ir + i] = sum;
    }
  }
}

void pack_b_quantized(const float* b, std::int64_t rs, std::int64_t cs,
                      std::int64_t k, std::int64_t n,
                      const float* col_inv_scale, std::uint8_t* bp) {
  CQ_TRACE_SCOPE_HOT_BYTES("igemm.pack_b", k * n * sizeof(float));
  const std::int64_t nsv = (n + NR - 1) / NR;
  auto range = [&](std::int64_t sv0, std::int64_t sv1) {
#if CQ_IGEMM_VNNI
    pack_b_vnni(b, rs, cs, k, n, col_inv_scale, bp, sv0, sv1);
#else
    pack_b_scalar(b, rs, cs, k, n, col_inv_scale, bp, sv0, sv1);
#endif
  };
  // Quantize-on-pack is arithmetic-dense enough to split; small packs run
  // inline (same bytes either way — slivers are partition-independent).
  if (core::ThreadPool::instance().size() > 1 && k * n >= 1 << 16)
    core::parallel_for(nsv, 1, range);
  else
    range(0, nsv);
}

void gemm(std::int64_t m, std::int64_t n, std::int64_t k,
          const std::int8_t* ap, const std::int32_t* rowsum,
          const std::uint8_t* bp, float* c, std::int64_t ldc,
          const Epilogue& ep) {
  if (m <= 0 || n <= 0) return;
  CQ_TRACE_SCOPE_BYTES("igemm", m * k + k * n + m * n * sizeof(float));
  CQ_CHECK(k >= 0 && k <= kMaxK);
  CQ_CHECK(ldc >= n);
  CQ_CHECK(ep.row_scale != nullptr && ep.col_scale != nullptr);
  const std::int64_t ntiles = ((n + NR - 1) / NR) * ((m + MR - 1) / MR);
  auto tiles = [&](std::int64_t t0, std::int64_t t1) {
#if CQ_IGEMM_VNNI
    gemm_vnni_tiles(m, n, k, ap, rowsum, bp, c, ldc, ep, t0, t1);
#else
    gemm_scalar_tiles(m, n, k, ap, rowsum, bp, c, ldc, ep, t0, t1);
#endif
  };
  // Same bar as the fp32 path: ~2 MFLOP of MAC work before fan-out pays.
  if (core::ThreadPool::instance().size() > 1 && 2 * m * n * k >= 2'000'000)
    core::parallel_for(ntiles, 1, tiles);
  else
    tiles(0, ntiles);
}

namespace detail {

float epilogue_value(std::int32_t eff, float row_scale, float col_scale,
                     float bias) {
  // Exactly two float roundings after the one int->float conversion:
  // (1) the folded scale product, (2) the multiply; the add is the third.
  // This TU builds with -ffp-contract=off, so mul+add never fuses — the
  // sequence is what the VNNI epilogue performs per lane with explicit
  // mul_ps/add_ps intrinsics.
  return static_cast<float>(eff) * (row_scale * col_scale) + bias;
}

std::int32_t quantize_value(float v, float inv_scale) {
  return quantize_impl(v, inv_scale);
}

}  // namespace detail

namespace scalar {

void pack_b_quantized(const float* b, std::int64_t rs, std::int64_t cs,
                      std::int64_t k, std::int64_t n,
                      const float* col_inv_scale, std::uint8_t* bp) {
  pack_b_scalar(b, rs, cs, k, n, col_inv_scale, bp, 0, (n + NR - 1) / NR);
}

void gemm(std::int64_t m, std::int64_t n, std::int64_t k,
          const std::int8_t* ap, const std::int32_t* rowsum,
          const std::uint8_t* bp, float* c, std::int64_t ldc,
          const Epilogue& ep) {
  if (m <= 0 || n <= 0) return;
  CQ_CHECK(k >= 0 && k <= kMaxK);
  CQ_CHECK(ldc >= n);
  CQ_CHECK(ep.row_scale != nullptr && ep.col_scale != nullptr);
  gemm_scalar(m, n, k, ap, rowsum, bp, c, ldc, ep);
}

}  // namespace scalar
}  // namespace cq::igemm
