// Binary-embedding kernels: sign/threshold binarization into packed 64-bit
// bitplanes, popcount reductions, and the SIMD Hamming-distance scan that is
// the hot loop of the vector search subsystem (src/search/, DESIGN.md §15).
//
// Like the float kernel layer (kernels.hpp), every primitive is built twice:
//
//   kernels::foo          — the compile-time-detected backend (AVX2 nibble-LUT
//                           popcount + movemask binarization when available)
//   kernels::scalar::foo  — a portable twin, always compiled
//
// All kernels here are integer (or integer-from-float-compare) pipelines, so
// the two instantiations are BIT-IDENTICAL by construction; the fuzz suite in
// tests/test_search.cpp asserts it anyway, including odd word counts and the
// 2-bit layout, because "trivially identical" code is exactly the code that
// grows a subtle tail bug.
//
// Code layout (shared contract with search::Binarizer):
//  * A d-dimensional embedding becomes one row of `words_per_row` u64 words,
//    bits packed LSB-first: logical bit j lives in word j/64, bit j%64.
//  * 1-bit/dim: bit j = (x[j] > threshold[j]).
//  * 2-bit/dim (thermometer): dimension j owns bits 2j and 2j+1 with
//    bit 2j = (x[j] > lo[j]), bit 2j+1 = (x[j] > hi[j]), lo <= hi. Codes are
//    00/01/11 for the three levels, so the XOR-popcount Hamming distance
//    between two codes is exactly sum_j |level_a(j) - level_b(j)| — a 3-level
//    quantized L1 distance, no decode step needed.
//  * Unused bits of the last word MUST be zero (binarize kernels guarantee
//    this), so distances never see garbage and scans can run whole words.
#pragma once

#include <cstdint>

namespace cq::kernels {

// ---- popcount reductions ---------------------------------------------------

/// Total set bits over n words (the primitive the scan is built from; has
/// its own baseline row in BENCH_kernels.json).
std::uint64_t popcount_u64(const std::uint64_t* x, std::int64_t n);

/// Hamming distance between two packed codes of `words` u64 words.
std::uint32_t hamming_distance(const std::uint64_t* a, const std::uint64_t* b,
                               std::int64_t words);

/// out[r] = hamming_distance(query, base + r*words_per_row) for r in
/// [0, rows). Specialized row-parallel paths for words_per_row 1 and 2 (the
/// whole-code-in-one-register layouts small embedding dims produce), and a
/// 4-words-per-step blocked path with a scalar word tail for the rest.
void hamming_scan(const std::uint64_t* query, const std::uint64_t* base,
                  std::int64_t rows, std::int64_t words_per_row,
                  std::uint32_t* out);

/// Compacts the indices i (ascending) with x[i] < limit into `out` and
/// returns the count. This is the top-k feed's pruning primitive: once a scan
/// heap is full, its current k-th best distance is an upper bound, and almost
/// every row fails it — the AVX2 path rejects 8 distances per compare+
/// movemask step instead of one compare per row. Exact (integer compare), so
/// backend and scalar twin emit identical index lists.
std::int64_t filter_lt_u32(const std::uint32_t* x, std::int64_t n,
                           std::uint32_t limit, std::int32_t* out);

// ---- binarization ----------------------------------------------------------

/// Pack `rows` embeddings of `cols` floats into 1-bit/dim codes:
/// bit j of row r = (x[r*cols + j] > thresholds[j]). NaN compares false (the
/// ordered-compare convention of the float kernel layer). Each output row
/// occupies words_per_row u64s (>= ceil(cols/64)); trailing bits and whole
/// padding words are zeroed.
void binarize_1bit(const float* x, std::int64_t rows, std::int64_t cols,
                   const float* thresholds, std::int64_t words_per_row,
                   std::uint64_t* codes);

/// 2-bit/dim thermometer codes: dimension j sets bit 2j when x > lo[j] and
/// bit 2j+1 when x > hi[j]. words_per_row >= ceil(2*cols/64).
void binarize_2bit(const float* x, std::int64_t rows, std::int64_t cols,
                   const float* lo, const float* hi,
                   std::int64_t words_per_row, std::uint64_t* codes);

// ---- fp32 scan (the brute-force baseline + rerank primitive) ---------------

/// out[r] = dot(query, base + r*dim) for r in [0, rows) — the fp32 cosine
/// brute-force scan (embeddings are L2-normalized upstream). Fixed 8-lane
/// accumulation with the kernel layer's combining tree, so backend and
/// scalar twin are bit-identical; the search rerank path uses this, keeping
/// reranked results identical across builds.
void dot_scan(const float* query, const float* base, std::int64_t rows,
              std::int64_t dim, float* out);

// ---- portable reference instantiation --------------------------------------

namespace scalar {
std::uint64_t popcount_u64(const std::uint64_t* x, std::int64_t n);
std::uint32_t hamming_distance(const std::uint64_t* a, const std::uint64_t* b,
                               std::int64_t words);
void hamming_scan(const std::uint64_t* query, const std::uint64_t* base,
                  std::int64_t rows, std::int64_t words_per_row,
                  std::uint32_t* out);
std::int64_t filter_lt_u32(const std::uint32_t* x, std::int64_t n,
                           std::uint32_t limit, std::int32_t* out);
void binarize_1bit(const float* x, std::int64_t rows, std::int64_t cols,
                   const float* thresholds, std::int64_t words_per_row,
                   std::uint64_t* codes);
void binarize_2bit(const float* x, std::int64_t rows, std::int64_t cols,
                   const float* lo, const float* hi,
                   std::int64_t words_per_row, std::uint64_t* codes);
void dot_scan(const float* query, const float* base, std::int64_t rows,
              std::int64_t dim, float* out);
}  // namespace scalar

}  // namespace cq::kernels
