// Kernel layer implementation. Every kernel is a template over the vector
// type, instantiated once for the detected backend (simd::VecF) and once for
// the portable emulation (simd::VecPortable, exported under kernels::scalar).
//
// This TU is compiled with -march=native -ffp-contract=off (or with
// CQ_FORCE_SCALAR and baseline flags under -DCQ_SCALAR_KERNELS=ON, in which
// case VecF *is* VecPortable and the two instantiations coincide). Tails
// shorter than one vector run scalar lane code built from the same IEEE ops
// (fmaf / nearbyintf / sqrt), so backend choice never changes results.
#include "tensor/kernels/kernels.hpp"

#include <cmath>
#include <cstring>

#include "core/trace.hpp"
#include "tensor/kernels/simd.hpp"

namespace cq::kernels {
namespace {

constexpr std::int64_t W = simd::kWidth;

// ---- exp: Cephes-style range reduction + degree-5 polynomial ---------------
//
//   n = round(x * log2(e));  r = x - n*ln2_hi - n*ln2_lo
//   exp(r) = 1 + r + r^2 * P(r),  exp(x) = exp(r) * 2^n
//
// Max error < 2 ulp over the clamped domain. The input clamp keeps 2^n
// constructible from the exponent field: above kExpHi the result saturates
// at exp(kExpHi) ~ 1.7e38, below kExpLo at ~1.2e-38 (the historical
// std::exp path returned inf / denormals there; softmax-style callers
// subtract the row max first so the clamp is never live for them).
constexpr float kExpHi = 88.0f;
constexpr float kExpLo = -87.33654f;
constexpr float kLog2e = 1.44269504088896341f;
constexpr float kLn2Hi = 0.693359375f;
constexpr float kLn2Lo = -2.12194440e-4f;
constexpr float kExpC0 = 1.9875691500e-4f;
constexpr float kExpC1 = 1.3981999507e-3f;
constexpr float kExpC2 = 8.3334519073e-3f;
constexpr float kExpC3 = 4.1665795894e-2f;
constexpr float kExpC4 = 1.6666665459e-1f;
constexpr float kExpC5 = 5.0000001201e-1f;

// Scalar replica of the vector lane algorithm — used for loop tails so a
// value produces the same bits whether it lands in a vector or the tail.
inline float exp_lane(float x) {
  x = x < kExpHi ? x : kExpHi;  // x86 min/max semantics, as in simd.hpp
  x = x > kExpLo ? x : kExpLo;
  const float n = std::nearbyint(x * kLog2e);
  float r = std::fmaf(n, -kLn2Hi, x);
  r = std::fmaf(n, -kLn2Lo, r);
  float p = kExpC0;
  p = std::fmaf(p, r, kExpC1);
  p = std::fmaf(p, r, kExpC2);
  p = std::fmaf(p, r, kExpC3);
  p = std::fmaf(p, r, kExpC4);
  p = std::fmaf(p, r, kExpC5);
  const float y = std::fmaf(p, r * r, r) + 1.0f;
  return y * std::bit_cast<float>(
                 (static_cast<std::int32_t>(n) + 127) << 23);
}

template <class V>
inline V exp_vec(V x) {
  x = V::min(x, V::broadcast(kExpHi));
  x = V::max(x, V::broadcast(kExpLo));
  const V n = V::round_nearest(x * V::broadcast(kLog2e));
  V r = V::fma(n, V::broadcast(-kLn2Hi), x);
  r = V::fma(n, V::broadcast(-kLn2Lo), r);
  V p = V::broadcast(kExpC0);
  p = V::fma(p, r, V::broadcast(kExpC1));
  p = V::fma(p, r, V::broadcast(kExpC2));
  p = V::fma(p, r, V::broadcast(kExpC3));
  p = V::fma(p, r, V::broadcast(kExpC4));
  p = V::fma(p, r, V::broadcast(kExpC5));
  const V y = V::fma(p, r * r, r) + V::broadcast(1.0f);
  return y * V::exp2_int(n);
}

// ---- elementwise templates -------------------------------------------------

template <class V>
void vexp_t(const float* x, float* y, std::int64_t n) {
  std::int64_t i = 0;
  for (; i + W <= n; i += W) exp_vec(V::load(x + i)).store(y + i);
  for (; i < n; ++i) y[i] = exp_lane(x[i]);
}

template <class V>
void relu_t(const float* x, float* y, std::int64_t n) {
  const V zero = V::zero();
  std::int64_t i = 0;
  for (; i + W <= n; i += W) V::max(V::load(x + i), zero).store(y + i);
  for (; i < n; ++i) y[i] = x[i] > 0.0f ? x[i] : 0.0f;
}

template <class V>
void relu_cap_t(const float* x, float* y, std::int64_t n, float cap) {
  const V zero = V::zero(), capv = V::broadcast(cap);
  std::int64_t i = 0;
  for (; i + W <= n; i += W)
    V::min(V::max(V::load(x + i), zero), capv).store(y + i);
  for (; i < n; ++i) {
    float v = x[i] > 0.0f ? x[i] : 0.0f;
    y[i] = v < cap ? v : cap;
  }
}

template <class V>
void relu_grad_t(const float* x, const float* g, float* y, std::int64_t n) {
  const V zero = V::zero();
  std::int64_t i = 0;
  for (; i + W <= n; i += W)
    V::bit_and(V::cmp_gt(V::load(x + i), zero), V::load(g + i)).store(y + i);
  for (; i < n; ++i) y[i] = x[i] > 0.0f ? g[i] : 0.0f;
}

template <class V>
void relu_cap_grad_t(const float* x, const float* g, float* y, std::int64_t n,
                     float cap) {
  const V zero = V::zero(), capv = V::broadcast(cap);
  std::int64_t i = 0;
  for (; i + W <= n; i += W) {
    const V xv = V::load(x + i);
    const V mask = V::bit_and(V::cmp_gt(xv, zero), V::cmp_lt(xv, capv));
    V::bit_and(mask, V::load(g + i)).store(y + i);
  }
  for (; i < n; ++i) y[i] = (x[i] > 0.0f && x[i] < cap) ? g[i] : 0.0f;
}

// ---- GELU (tanh approximation) ---------------------------------------------
//
//   u = sqrt(2/pi) * (x + 0.044715 x^3),  gelu(x) = 0.5 x (1 + tanh(u))
//
// tanh is built from the range-reduced exp above (tanh(u) =
// (1 - e^{-2u}) / (1 + e^{-2u})), so both backends inherit its bit-exact
// lane semantics. The exp input clamp saturates tanh to ±1 well before the
// clamp bounds matter (|u| > ~9 already rounds to ±1 in float).
constexpr float kGeluA = 0.044715f;
constexpr float kGelu3A = 3.0f * kGeluA;
constexpr float kSqrt2OverPi = 0.7978845608028654f;

inline float tanh_lane(float u) {
  const float e = exp_lane(-2.0f * u);
  return (1.0f - e) / (1.0f + e);
}

template <class V>
inline V tanh_vec(V u) {
  const V e = exp_vec(V::broadcast(-2.0f) * u);
  const V one = V::broadcast(1.0f);
  return (one - e) / (one + e);
}

inline float gelu_lane(float x) {
  const float x2 = x * x;
  const float u = kSqrt2OverPi * std::fmaf(kGeluA * x2, x, x);
  return (0.5f * x) * (1.0f + tanh_lane(u));
}

template <class V>
inline V gelu_vec(V x) {
  const V x2 = x * x;
  const V u = V::broadcast(kSqrt2OverPi) *
              V::fma(V::broadcast(kGeluA) * x2, x, x);
  return (V::broadcast(0.5f) * x) *
         (V::broadcast(1.0f) + tanh_vec(u));
}

template <class V>
void gelu_t(const float* x, float* y, std::int64_t n) {
  std::int64_t i = 0;
  for (; i + W <= n; i += W) gelu_vec(V::load(x + i)).store(y + i);
  for (; i < n; ++i) y[i] = gelu_lane(x[i]);
}

//   dgelu/dx = 0.5 (1 + t) + 0.5 x (1 - t^2) u',  t = tanh(u),
//   u' = sqrt(2/pi) (1 + 3*0.044715 x^2)
inline float gelu_grad_lane(float x, float g) {
  const float x2 = x * x;
  const float u = kSqrt2OverPi * std::fmaf(kGeluA * x2, x, x);
  const float t = tanh_lane(u);
  const float du = kSqrt2OverPi * std::fmaf(kGelu3A, x2, 1.0f);
  const float sech2 = 1.0f - t * t;
  const float d = std::fmaf(0.5f * x, sech2 * du, 0.5f * (1.0f + t));
  return g * d;
}

template <class V>
inline V gelu_grad_vec(V x, V g) {
  const V one = V::broadcast(1.0f), half = V::broadcast(0.5f);
  const V x2 = x * x;
  const V u = V::broadcast(kSqrt2OverPi) *
              V::fma(V::broadcast(kGeluA) * x2, x, x);
  const V t = tanh_vec(u);
  const V du = V::broadcast(kSqrt2OverPi) *
               V::fma(V::broadcast(kGelu3A), x2, one);
  const V sech2 = one - t * t;
  const V d = V::fma(half * x, sech2 * du, half * (one + t));
  return g * d;
}

template <class V>
void gelu_grad_t(const float* x, const float* g, float* y, std::int64_t n) {
  std::int64_t i = 0;
  for (; i + W <= n; i += W)
    gelu_grad_vec(V::load(x + i), V::load(g + i)).store(y + i);
  for (; i < n; ++i) y[i] = gelu_grad_lane(x[i], g[i]);
}

// ---- reduction templates ---------------------------------------------------

inline float max2(float a, float b) { return a > b ? a : b; }
inline float min2(float a, float b) { return a < b ? a : b; }

template <class V>
void minmax_t(const float* x, std::int64_t n, float* lo, float* hi) {
  if (n <= 0) {
    *lo = *hi = 0.0f;
    return;
  }
  float l = x[0], h = x[0];
  std::int64_t i = 0;
  if (n >= W) {
    V lv = V::load(x), hv = lv;
    for (i = W; i + W <= n; i += W) {
      const V v = V::load(x + i);
      lv = V::min(lv, v);
      hv = V::max(hv, v);
    }
    l = lv.hmin();
    h = hv.hmax();
  }
  for (; i < n; ++i) {
    l = min2(l, x[i]);
    h = max2(h, x[i]);
  }
  *lo = l;
  *hi = h;
}

template <class V>
float sum_t(const float* x, std::int64_t n) {
  V acc = V::zero();
  std::int64_t i = 0;
  for (; i + W <= n; i += W) acc = acc + V::load(x + i);
  float s = acc.hsum();
  for (; i < n; ++i) s += x[i];
  return s;
}

template <class V>
float row_max(const float* x, std::int64_t n) {
  float m = x[0];
  std::int64_t i = 0;
  if (n >= W) {
    V mv = V::load(x);
    for (i = W; i + W <= n; i += W) mv = V::max(mv, V::load(x + i));
    m = mv.hmax();
  }
  for (; i < n; ++i) m = max2(m, x[i]);
  return m;
}

template <class V>
void row_sum_t(const float* x, std::int64_t rows, std::int64_t cols,
               float* out) {
  for (std::int64_t r = 0; r < rows; ++r) out[r] = sum_t<V>(x + r * cols, cols);
}

// exp(x - m) written in place; returns the sum of the exponentials.
template <class V>
float exp_sub_sum(float* x, std::int64_t n, float m) {
  const V mv = V::broadcast(m);
  V acc = V::zero();
  std::int64_t i = 0;
  for (; i + W <= n; i += W) {
    const V e = exp_vec(V::load(x + i) - mv);
    e.store(x + i);
    acc = acc + e;
  }
  float s = acc.hsum();
  for (; i < n; ++i) {
    const float e = exp_lane(x[i] - m);
    x[i] = e;
    s += e;
  }
  return s;
}

template <class V>
void softmax_rows_t(float* x, std::int64_t rows, std::int64_t cols) {
  if (cols <= 0) return;
  for (std::int64_t r = 0; r < rows; ++r) {
    float* row = x + r * cols;
    const float m = row_max<V>(row, cols);
    const float s = exp_sub_sum<V>(row, cols, m);
    const V sv = V::broadcast(s);
    std::int64_t i = 0;
    for (; i + W <= cols; i += W) (V::load(row + i) / sv).store(row + i);
    for (; i < cols; ++i) row[i] /= s;
  }
}

template <class V>
void log_softmax_rows_t(float* x, std::int64_t rows, std::int64_t cols) {
  if (cols <= 0) return;
  for (std::int64_t r = 0; r < rows; ++r) {
    float* row = x + r * cols;
    const float m = row_max<V>(row, cols);
    // Sum of exp(x - m) without materializing the exponentials.
    const V mv = V::broadcast(m);
    V acc = V::zero();
    std::int64_t i = 0;
    for (; i + W <= cols; i += W)
      acc = acc + exp_vec(V::load(row + i) - mv);
    float s = acc.hsum();
    for (; i < cols; ++i) s += exp_lane(row[i] - m);
    const float shift = m + std::log(s);
    const V shiftv = V::broadcast(shift);
    for (i = 0; i + W <= cols; i += W)
      (V::load(row + i) - shiftv).store(row + i);
    for (; i < cols; ++i) row[i] -= shift;
  }
}

template <class V>
void l2_normalize_rows_t(float* x, std::int64_t rows, std::int64_t cols,
                         float* norms, float eps) {
  for (std::int64_t r = 0; r < rows; ++r) {
    float* row = x + r * cols;
    V acc = V::zero();
    std::int64_t i = 0;
    for (; i + W <= cols; i += W) {
      const V v = V::load(row + i);
      acc = V::fma(v, v, acc);
    }
    float s = acc.hsum();
    for (; i < cols; ++i) s = std::fmaf(row[i], row[i], s);
    const float norm = std::sqrt(s);
    if (norms != nullptr) norms[r] = norm;
    if (norm > eps) {
      const float inv = 1.0f / norm;
      const V iv = V::broadcast(inv);
      for (i = 0; i + W <= cols; i += W)
        (V::load(row + i) * iv).store(row + i);
      for (; i < cols; ++i) row[i] *= inv;
    }
  }
}

// ---- quantization templates ------------------------------------------------

template <class V>
void quantize_t(const float* x, float* y, std::int64_t n,
                const gemm::QuantSpec& q) {
  if (q.identity) {
    if (y != x) std::memcpy(y, x, static_cast<std::size_t>(n) * sizeof(float));
    return;
  }
  const V lov = V::broadcast(q.lo), hiv = V::broadcast(q.hi);
  const V inv = V::broadcast(q.inv_step), stepv = V::broadcast(q.step);
  std::int64_t i = 0;
  for (; i + W <= n; i += W) {
    V v = V::load(x + i);
    if (q.clip) v = V::max(V::min(v, hiv), lov);
    const V r = q.nearest ? V::round_nearest(v * inv) : V::floor(v * inv);
    (stepv * r).store(y + i);
  }
  for (; i < n; ++i) y[i] = gemm::quantize_value(x[i], q);
}

template <class V>
void quantize_masked_t(const float* x, float* y, std::int64_t n,
                       const gemm::QuantSpec& q, std::uint8_t* mask) {
  if (q.identity || !q.clip) {
    quantize_t<V>(x, y, n, q);
    std::memset(mask, 1, static_cast<std::size_t>(n));
    return;
  }
  const V lov = V::broadcast(q.lo), hiv = V::broadcast(q.hi);
  const V inv = V::broadcast(q.inv_step), stepv = V::broadcast(q.step);
  std::int64_t i = 0;
  for (; i + W <= n; i += W) {
    const V v0 = V::load(x + i);
    // Mask from the pre-clamp values; x may alias y, so derive it before the
    // quantized store below overwrites the chunk.
    float orig[W];
    v0.store(orig);
    for (std::int64_t j = 0; j < W; ++j)
      mask[i + j] = (orig[j] < q.lo || orig[j] > q.hi) ? 0 : 1;
    const V v = V::max(V::min(v0, hiv), lov);
    const V r = q.nearest ? V::round_nearest(v * inv) : V::floor(v * inv);
    (stepv * r).store(y + i);
  }
  for (; i < n; ++i) {
    const float v = x[i];
    mask[i] = (v < q.lo || v > q.hi) ? 0 : 1;
    y[i] = gemm::quantize_value(v, q);
  }
}

// ---- parameter update templates --------------------------------------------
//
// These reproduce the historical scalar loops' operation sequence exactly
// (independent mul/add, never fma — the baseline x86-64 build of the old
// loops had no FMA instruction), so switching the optimizers to the kernel
// layer does not move any training trajectory.

template <class V>
void sgd_update_t(float* p, const float* g, float* v, std::int64_t n, float lr,
                  float momentum, float wd, float grad_scale) {
  const V lrv = V::broadcast(lr), mov = V::broadcast(momentum);
  const V wdv = V::broadcast(wd), gsv = V::broadcast(grad_scale);
  std::int64_t i = 0;
  for (; i + W <= n; i += W) {
    const V pv = V::load(p + i);
    const V gv = gsv * V::load(g + i) + wdv * pv;
    const V vv = mov * V::load(v + i) + gv;
    vv.store(v + i);
    (pv - lrv * vv).store(p + i);
  }
  for (; i < n; ++i) {
    const float gi = grad_scale * g[i] + wd * p[i];
    v[i] = momentum * v[i] + gi;
    p[i] -= lr * v[i];
  }
}

template <class V>
void adam_update_t(float* p, const float* g, float* m, float* v,
                   std::int64_t n, float lr, float beta1, float beta2,
                   float eps, float wd, float bc1, float bc2) {
  const V b1 = V::broadcast(beta1), c1 = V::broadcast(1.0f - beta1);
  const V b2 = V::broadcast(beta2), c2 = V::broadcast(1.0f - beta2);
  const V lrv = V::broadcast(lr), epsv = V::broadcast(eps);
  const V wdv = V::broadcast(wd);
  const V ibc1 = V::broadcast(bc1), ibc2 = V::broadcast(bc2);
  std::int64_t i = 0;
  for (; i + W <= n; i += W) {
    const V pv = V::load(p + i);
    const V gv = V::load(g + i) + wdv * pv;
    const V mv = b1 * V::load(m + i) + c1 * gv;
    const V vv = b2 * V::load(v + i) + c2 * gv * gv;  // ((1-b2)*g)*g order
    mv.store(m + i);
    vv.store(v + i);
    const V mhat = mv / ibc1;
    const V vhat = vv / ibc2;
    (pv - (lrv * mhat) / (V::sqrt(vhat) + epsv)).store(p + i);
  }
  for (; i < n; ++i) {
    const float gi = g[i] + wd * p[i];
    m[i] = beta1 * m[i] + (1.0f - beta1) * gi;
    v[i] = beta2 * v[i] + (1.0f - beta2) * gi * gi;
    const float mhat = m[i] / bc1;
    const float vhat = v[i] / bc2;
    p[i] -= (lr * mhat) / (std::sqrt(vhat) + eps);
  }
}

template <class V>
void add_rows_t(const float* src, std::int64_t rows, std::int64_t cols,
                float* dst) {
  for (std::int64_t r = 0; r < rows; ++r) {
    const float* row = src + r * cols;
    std::int64_t i = 0;
    for (; i + W <= cols; i += W)
      (V::load(dst + i) + V::load(row + i)).store(dst + i);
    for (; i < cols; ++i) dst[i] += row[i];
  }
}

}  // namespace

const char* backend() { return simd::kBackend; }
int simd_width() { return simd::kWidth; }

// Default backend entry points.
using simd::VecF;

void vexp(const float* x, float* y, std::int64_t n) { vexp_t<VecF>(x, y, n); }
void relu(const float* x, float* y, std::int64_t n) { relu_t<VecF>(x, y, n); }
void relu_cap(const float* x, float* y, std::int64_t n, float cap) {
  relu_cap_t<VecF>(x, y, n, cap);
}
void relu_grad(const float* x, const float* g, float* y, std::int64_t n) {
  relu_grad_t<VecF>(x, g, y, n);
}
void relu_cap_grad(const float* x, const float* g, float* y, std::int64_t n,
                   float cap) {
  relu_cap_grad_t<VecF>(x, g, y, n, cap);
}
void gelu(const float* x, float* y, std::int64_t n) {
  CQ_TRACE_SCOPE_BYTES("kernels.gelu", 2 * n * sizeof(float));
  gelu_t<VecF>(x, y, n);
}
void gelu_grad(const float* x, const float* g, float* y, std::int64_t n) {
  CQ_TRACE_SCOPE_BYTES("kernels.gelu_grad", 3 * n * sizeof(float));
  gelu_grad_t<VecF>(x, g, y, n);
}
void minmax(const float* x, std::int64_t n, float* lo, float* hi) {
  minmax_t<VecF>(x, n, lo, hi);
}
float sum(const float* x, std::int64_t n) { return sum_t<VecF>(x, n); }
void row_sum(const float* x, std::int64_t rows, std::int64_t cols,
             float* out) {
  row_sum_t<VecF>(x, rows, cols, out);
}
void softmax_rows(float* x, std::int64_t rows, std::int64_t cols) {
  CQ_TRACE_SCOPE_BYTES("kernels.softmax_rows", rows * cols * sizeof(float));
  softmax_rows_t<VecF>(x, rows, cols);
}
void log_softmax_rows(float* x, std::int64_t rows, std::int64_t cols) {
  CQ_TRACE_SCOPE_BYTES("kernels.log_softmax_rows",
                       rows * cols * sizeof(float));
  log_softmax_rows_t<VecF>(x, rows, cols);
}
void l2_normalize_rows(float* x, std::int64_t rows, std::int64_t cols,
                       float* norms, float eps) {
  CQ_TRACE_SCOPE_BYTES("kernels.l2_normalize_rows",
                       rows * cols * sizeof(float));
  l2_normalize_rows_t<VecF>(x, rows, cols, norms, eps);
}
void quantize(const float* x, float* y, std::int64_t n,
              const gemm::QuantSpec& q) {
  CQ_TRACE_SCOPE_BYTES("kernels.quantize", 2 * n * sizeof(float));
  quantize_t<VecF>(x, y, n, q);
}
void quantize_masked(const float* x, float* y, std::int64_t n,
                     const gemm::QuantSpec& q, std::uint8_t* mask) {
  CQ_TRACE_SCOPE_BYTES("kernels.quantize", 2 * n * sizeof(float));
  quantize_masked_t<VecF>(x, y, n, q, mask);
}
void sgd_update(float* p, const float* g, float* v, std::int64_t n, float lr,
                float momentum, float wd, float grad_scale) {
  CQ_TRACE_SCOPE_BYTES("kernels.sgd_update", 3 * n * sizeof(float));
  sgd_update_t<VecF>(p, g, v, n, lr, momentum, wd, grad_scale);
}
void adam_update(float* p, const float* g, float* m, float* v, std::int64_t n,
                 float lr, float beta1, float beta2, float eps, float wd,
                 float bc1, float bc2) {
  CQ_TRACE_SCOPE_BYTES("kernels.adam_update", 4 * n * sizeof(float));
  adam_update_t<VecF>(p, g, m, v, n, lr, beta1, beta2, eps, wd, bc1, bc2);
}
void add_rows(const float* src, std::int64_t rows, std::int64_t cols,
              float* dst) {
  add_rows_t<VecF>(src, rows, cols, dst);
}

// Portable reference entry points (same code on VecPortable).
namespace scalar {
using simd::VecPortable;

void vexp(const float* x, float* y, std::int64_t n) {
  vexp_t<VecPortable>(x, y, n);
}
void relu(const float* x, float* y, std::int64_t n) {
  relu_t<VecPortable>(x, y, n);
}
void relu_cap(const float* x, float* y, std::int64_t n, float cap) {
  relu_cap_t<VecPortable>(x, y, n, cap);
}
void relu_grad(const float* x, const float* g, float* y, std::int64_t n) {
  relu_grad_t<VecPortable>(x, g, y, n);
}
void relu_cap_grad(const float* x, const float* g, float* y, std::int64_t n,
                   float cap) {
  relu_cap_grad_t<VecPortable>(x, g, y, n, cap);
}
void gelu(const float* x, float* y, std::int64_t n) {
  gelu_t<VecPortable>(x, y, n);
}
void gelu_grad(const float* x, const float* g, float* y, std::int64_t n) {
  gelu_grad_t<VecPortable>(x, g, y, n);
}
void minmax(const float* x, std::int64_t n, float* lo, float* hi) {
  minmax_t<VecPortable>(x, n, lo, hi);
}
float sum(const float* x, std::int64_t n) { return sum_t<VecPortable>(x, n); }
void row_sum(const float* x, std::int64_t rows, std::int64_t cols,
             float* out) {
  row_sum_t<VecPortable>(x, rows, cols, out);
}
void softmax_rows(float* x, std::int64_t rows, std::int64_t cols) {
  softmax_rows_t<VecPortable>(x, rows, cols);
}
void log_softmax_rows(float* x, std::int64_t rows, std::int64_t cols) {
  log_softmax_rows_t<VecPortable>(x, rows, cols);
}
void l2_normalize_rows(float* x, std::int64_t rows, std::int64_t cols,
                       float* norms, float eps) {
  l2_normalize_rows_t<VecPortable>(x, rows, cols, norms, eps);
}
void quantize(const float* x, float* y, std::int64_t n,
              const gemm::QuantSpec& q) {
  quantize_t<VecPortable>(x, y, n, q);
}
void quantize_masked(const float* x, float* y, std::int64_t n,
                     const gemm::QuantSpec& q, std::uint8_t* mask) {
  quantize_masked_t<VecPortable>(x, y, n, q, mask);
}
void sgd_update(float* p, const float* g, float* v, std::int64_t n, float lr,
                float momentum, float wd, float grad_scale) {
  sgd_update_t<VecPortable>(p, g, v, n, lr, momentum, wd, grad_scale);
}
void adam_update(float* p, const float* g, float* m, float* v, std::int64_t n,
                 float lr, float beta1, float beta2, float eps, float wd,
                 float bc1, float bc2) {
  adam_update_t<VecPortable>(p, g, m, v, n, lr, beta1, beta2, eps, wd, bc1,
                             bc2);
}
void add_rows(const float* src, std::int64_t rows, std::int64_t cols,
              float* dst) {
  add_rows_t<VecPortable>(src, rows, cols, dst);
}
}  // namespace scalar

}  // namespace cq::kernels
