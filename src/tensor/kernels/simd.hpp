// Fixed-width SIMD vector abstraction for the kernel layer.
//
// Two interchangeable 8-lane float32 vector types:
//   VecAvx2     — __m256 wrapper (compiled in only when the TU has AVX2)
//   VecPortable — float[8] emulation of the exact same lane semantics
// and `VecF`, the compile-time-selected backend. Kernels are written once as
// templates over the vector type (kernels.cpp) and instantiated for both, so
// the portable build and the AVX2 build run the same 8-lane algorithm.
//
// DETERMINISM CONTRACT: every op here is specified lane-wise with IEEE-754
// single-precision semantics, so VecPortable and VecAvx2 produce bit-identical
// results — including the NaN/zero conventions of the x86 min/max
// instructions (min/max return the SECOND operand on NaN or equal-magnitude
// signed zeros) and correctly-rounded fma/sqrt/div. Horizontal reductions fix
// one explicit combining tree. This is what lets tests assert bitwise
// equality between the scalar and SIMD paths, and keeps training runs
// reproducible across build machines (see src/CMakeLists.txt on fp
// contraction).
//
// This header is internal to the kernel TUs (kernels.cpp, gemm.cpp), which
// are all compiled with the same flags; do not include it from headers or
// TUs built with the portable baseline flags, or `VecF` would name different
// types across the library (ODR).
#pragma once

#include <bit>
#include <cmath>
#include <cstdint>
#include <cstring>

#if !defined(CQ_FORCE_SCALAR) && defined(__AVX2__)
#include <immintrin.h>
#define CQ_SIMD_AVX2 1
#endif

namespace cq::simd {

/// Lane count of VecF. Fixed at 8 (one AVX2 register) for every backend so
/// remainder handling and reduction trees are identical everywhere.
inline constexpr int kWidth = 8;

// ---- portable backend ------------------------------------------------------

struct VecPortable {
  float lane[kWidth];

  static VecPortable load(const float* p) {
    VecPortable r;
    std::memcpy(r.lane, p, sizeof(r.lane));
    return r;
  }
  static VecPortable broadcast(float v) {
    VecPortable r;
    for (float& l : r.lane) l = v;
    return r;
  }
  static VecPortable zero() { return broadcast(0.0f); }
  void store(float* p) const { std::memcpy(p, lane, sizeof(lane)); }

  friend VecPortable operator+(VecPortable a, VecPortable b) {
    for (int i = 0; i < kWidth; ++i) a.lane[i] += b.lane[i];
    return a;
  }
  friend VecPortable operator-(VecPortable a, VecPortable b) {
    for (int i = 0; i < kWidth; ++i) a.lane[i] -= b.lane[i];
    return a;
  }
  friend VecPortable operator*(VecPortable a, VecPortable b) {
    for (int i = 0; i < kWidth; ++i) a.lane[i] *= b.lane[i];
    return a;
  }
  friend VecPortable operator/(VecPortable a, VecPortable b) {
    for (int i = 0; i < kWidth; ++i) a.lane[i] /= b.lane[i];
    return a;
  }

  /// x86 semantics: (a OP b) ? a : b — returns b when unordered (NaN).
  static VecPortable min(VecPortable a, VecPortable b) {
    VecPortable r;
    for (int i = 0; i < kWidth; ++i)
      r.lane[i] = a.lane[i] < b.lane[i] ? a.lane[i] : b.lane[i];
    return r;
  }
  static VecPortable max(VecPortable a, VecPortable b) {
    VecPortable r;
    for (int i = 0; i < kWidth; ++i)
      r.lane[i] = a.lane[i] > b.lane[i] ? a.lane[i] : b.lane[i];
    return r;
  }

  /// Correctly-rounded fused multiply-add: a*b + c in one rounding step
  /// (std::fmaf is correct-rounded; matches vfmadd231ps bitwise).
  static VecPortable fma(VecPortable a, VecPortable b, VecPortable c) {
    VecPortable r;
    for (int i = 0; i < kWidth; ++i)
      r.lane[i] = std::fmaf(a.lane[i], b.lane[i], c.lane[i]);
    return r;
  }

  static VecPortable sqrt(VecPortable a) {
    for (float& l : a.lane) l = std::sqrt(l);
    return a;
  }
  static VecPortable round_nearest(VecPortable a) {  // half-to-even
    for (float& l : a.lane) l = std::nearbyint(l);
    return a;
  }
  static VecPortable floor(VecPortable a) {
    for (float& l : a.lane) l = std::floor(l);
    return a;
  }

  /// All-bits lane mask: a > b (ordered). Unordered compares to false.
  static VecPortable cmp_gt(VecPortable a, VecPortable b) {
    VecPortable r;
    for (int i = 0; i < kWidth; ++i)
      r.lane[i] = std::bit_cast<float>(
          a.lane[i] > b.lane[i] ? std::uint32_t{0xFFFFFFFFu} : 0u);
    return r;
  }
  static VecPortable cmp_lt(VecPortable a, VecPortable b) {
    VecPortable r;
    for (int i = 0; i < kWidth; ++i)
      r.lane[i] = std::bit_cast<float>(
          a.lane[i] < b.lane[i] ? std::uint32_t{0xFFFFFFFFu} : 0u);
    return r;
  }
  static VecPortable bit_and(VecPortable a, VecPortable b) {
    VecPortable r;
    for (int i = 0; i < kWidth; ++i)
      r.lane[i] = std::bit_cast<float>(std::bit_cast<std::uint32_t>(a.lane[i]) &
                                       std::bit_cast<std::uint32_t>(b.lane[i]));
    return r;
  }
  /// mask ? a : b, lane-wise (mask lanes are all-ones / all-zeros).
  static VecPortable blend(VecPortable mask, VecPortable a, VecPortable b) {
    VecPortable r;
    for (int i = 0; i < kWidth; ++i)
      r.lane[i] = std::bit_cast<std::uint32_t>(mask.lane[i]) ? a.lane[i]
                                                             : b.lane[i];
    return r;
  }

  /// 2^n for n a small integral-valued float (|n| <= 127): exponent-field
  /// construction, matching the integer pipeline of the AVX2 backend.
  static VecPortable exp2_int(VecPortable n) {
    VecPortable r;
    for (int i = 0; i < kWidth; ++i) {
      const std::int32_t e = static_cast<std::int32_t>(n.lane[i]);
      r.lane[i] = std::bit_cast<float>((e + 127) << 23);
    }
    return r;
  }

  /// Horizontal sum with the fixed tree ((l0+l4)+(l2+l6)) + ((l1+l5)+(l3+l7))
  /// — the cheapest shape for AVX2 (extract-high + movehl + shuffle).
  float hsum() const {
    const float t0 = lane[0] + lane[4], t1 = lane[1] + lane[5];
    const float t2 = lane[2] + lane[6], t3 = lane[3] + lane[7];
    return (t0 + t2) + (t1 + t3);
  }
  float hmax() const {
    const float t0 = max2(lane[0], lane[4]), t1 = max2(lane[1], lane[5]);
    const float t2 = max2(lane[2], lane[6]), t3 = max2(lane[3], lane[7]);
    return max2(max2(t0, t2), max2(t1, t3));
  }
  float hmin() const {
    const float t0 = min2(lane[0], lane[4]), t1 = min2(lane[1], lane[5]);
    const float t2 = min2(lane[2], lane[6]), t3 = min2(lane[3], lane[7]);
    return min2(min2(t0, t2), min2(t1, t3));
  }

 private:
  static float max2(float a, float b) { return a > b ? a : b; }
  static float min2(float a, float b) { return a < b ? a : b; }
};

// ---- AVX2 backend ----------------------------------------------------------

#ifdef CQ_SIMD_AVX2

struct VecAvx2 {
  __m256 v;

  static VecAvx2 load(const float* p) { return {_mm256_loadu_ps(p)}; }
  static VecAvx2 broadcast(float x) { return {_mm256_set1_ps(x)}; }
  static VecAvx2 zero() { return {_mm256_setzero_ps()}; }
  void store(float* p) const { _mm256_storeu_ps(p, v); }

  friend VecAvx2 operator+(VecAvx2 a, VecAvx2 b) {
    return {_mm256_add_ps(a.v, b.v)};
  }
  friend VecAvx2 operator-(VecAvx2 a, VecAvx2 b) {
    return {_mm256_sub_ps(a.v, b.v)};
  }
  friend VecAvx2 operator*(VecAvx2 a, VecAvx2 b) {
    return {_mm256_mul_ps(a.v, b.v)};
  }
  friend VecAvx2 operator/(VecAvx2 a, VecAvx2 b) {
    return {_mm256_div_ps(a.v, b.v)};
  }

  static VecAvx2 min(VecAvx2 a, VecAvx2 b) {
    return {_mm256_min_ps(a.v, b.v)};
  }
  static VecAvx2 max(VecAvx2 a, VecAvx2 b) {
    return {_mm256_max_ps(a.v, b.v)};
  }
  static VecAvx2 fma(VecAvx2 a, VecAvx2 b, VecAvx2 c) {
#ifdef __FMA__
    return {_mm256_fmadd_ps(a.v, b.v, c.v)};
#else
    // No-FMA AVX2 target: fall back to the correctly-rounded libm fma so
    // results still match the portable backend bitwise.
    VecAvx2 r;
    alignas(32) float aa[kWidth], bb[kWidth], cc[kWidth], rr[kWidth];
    _mm256_store_ps(aa, a.v);
    _mm256_store_ps(bb, b.v);
    _mm256_store_ps(cc, c.v);
    for (int i = 0; i < kWidth; ++i) rr[i] = std::fmaf(aa[i], bb[i], cc[i]);
    r.v = _mm256_load_ps(rr);
    return r;
#endif
  }

  static VecAvx2 sqrt(VecAvx2 a) { return {_mm256_sqrt_ps(a.v)}; }
  static VecAvx2 round_nearest(VecAvx2 a) {
    return {_mm256_round_ps(a.v, _MM_FROUND_TO_NEAREST_INT |
                                     _MM_FROUND_NO_EXC)};
  }
  static VecAvx2 floor(VecAvx2 a) { return {_mm256_floor_ps(a.v)}; }

  static VecAvx2 cmp_gt(VecAvx2 a, VecAvx2 b) {
    return {_mm256_cmp_ps(a.v, b.v, _CMP_GT_OQ)};
  }
  static VecAvx2 cmp_lt(VecAvx2 a, VecAvx2 b) {
    return {_mm256_cmp_ps(a.v, b.v, _CMP_LT_OQ)};
  }
  static VecAvx2 bit_and(VecAvx2 a, VecAvx2 b) {
    return {_mm256_and_ps(a.v, b.v)};
  }
  static VecAvx2 blend(VecAvx2 mask, VecAvx2 a, VecAvx2 b) {
    return {_mm256_blendv_ps(b.v, a.v, mask.v)};
  }

  static VecAvx2 exp2_int(VecAvx2 n) {
    const __m256i e = _mm256_cvtps_epi32(n.v);  // round-to-nearest; n integral
    const __m256i bits =
        _mm256_slli_epi32(_mm256_add_epi32(e, _mm256_set1_epi32(127)), 23);
    return {_mm256_castsi256_ps(bits)};
  }

  float hsum() const {
    const __m128 t = _mm_add_ps(_mm256_castps256_ps128(v),
                                _mm256_extractf128_ps(v, 1));
    const __m128 u = _mm_add_ps(t, _mm_movehl_ps(t, t));
    return _mm_cvtss_f32(_mm_add_ss(u, _mm_shuffle_ps(u, u, 1)));
  }
  float hmax() const {
    const __m128 t = _mm_max_ps(_mm256_castps256_ps128(v),
                                _mm256_extractf128_ps(v, 1));
    const __m128 u = _mm_max_ps(t, _mm_movehl_ps(t, t));
    return _mm_cvtss_f32(_mm_max_ss(u, _mm_shuffle_ps(u, u, 1)));
  }
  float hmin() const {
    const __m128 t = _mm_min_ps(_mm256_castps256_ps128(v),
                                _mm256_extractf128_ps(v, 1));
    const __m128 u = _mm_min_ps(t, _mm_movehl_ps(t, t));
    return _mm_cvtss_f32(_mm_min_ss(u, _mm_shuffle_ps(u, u, 1)));
  }
};

using VecF = VecAvx2;
inline constexpr const char* kBackend = "avx2";

#else  // portable fallback

using VecF = VecPortable;
inline constexpr const char* kBackend = "scalar";

#endif

}  // namespace cq::simd
