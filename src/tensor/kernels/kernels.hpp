// Vectorized elementwise / reduction / update kernels on the fixed-width
// VecF type (simd.hpp), shared by ops.cpp, the quantizer, the optimizers and
// the nn layers. Each kernel is written ONCE as a template over the vector
// type and instantiated twice:
//
//   kernels::foo          — the compile-time-detected backend (AVX2+FMA when
//                           the build machine has it, portable otherwise)
//   kernels::scalar::foo  — the portable 8-lane emulation, always built
//
// The two instantiations run the same lane algorithm with IEEE-exact lane
// ops, so their results are BIT-IDENTICAL — asserted by the fuzz suite in
// tests/test_kernels.cpp. This is the repo's determinism contract: a
// scalar-only build (-DCQ_SCALAR_KERNELS=ON) reproduces the SIMD build's
// training trajectories exactly.
//
// Reductions use 8 float lanes with a fixed combining tree. Relative to the
// old sequential double-accumulation loops this reassociates the sum (a
// one-time, deterministic change, covered by the existing tolerance-based
// tests); min/max reductions are order-independent and stay bit-identical
// to the historical loops.
#pragma once

#include <cstdint>

#include "tensor/gemm.hpp"  // gemm::QuantSpec — shared with quantize-on-pack

namespace cq::kernels {

/// Name of the compiled-in default backend: "avx2" or "scalar".
const char* backend();
/// Lane width of the kernel layer (always 8).
int simd_width();

// ---- elementwise math ------------------------------------------------------

/// y = exp(x). Range-reduced degree-5 polynomial, < 2 ulp vs std::exp;
/// identical across backends. Inputs are clamped to the finite exp range
/// ([-87.3, 88.7]): overflow saturates near FLT_MAX, underflow to ~1e-38.
void vexp(const float* x, float* y, std::int64_t n);

/// y = max(x, 0) with the exact lane semantics of the historical scalar loop
/// (x > 0 ? x : 0 — NaN maps to 0).
void relu(const float* x, float* y, std::int64_t n);
/// y = min(max(x, 0), cap) (ReLU6-style).
void relu_cap(const float* x, float* y, std::int64_t n, float cap);
/// y = (x > 0) ? g : 0 — the ReLU backward mask.
void relu_grad(const float* x, const float* g, float* y, std::int64_t n);
/// y = (x > 0 && x < cap) ? g : 0.
void relu_cap_grad(const float* x, const float* g, float* y, std::int64_t n,
                   float cap);
/// y = GELU(x), tanh approximation (Hendrycks & Gimpel):
///   0.5 * x * (1 + tanh(sqrt(2/pi) * (x + 0.044715 x^3)))
/// with tanh built from the same range-reduced exp as vexp, so the SIMD and
/// scalar backends are bit-identical. x and y may alias.
void gelu(const float* x, float* y, std::int64_t n);
/// y = g * dGELU(x)/dx for the tanh-approximation GELU above.
void gelu_grad(const float* x, const float* g, float* y, std::int64_t n);

// ---- reductions ------------------------------------------------------------

/// Min and max over n elements (order-independent, matches sequential).
void minmax(const float* x, std::int64_t n, float* lo, float* hi);
/// Sum with 8-lane accumulation and a fixed reduction tree.
float sum(const float* x, std::int64_t n);
/// out[r] = sum of row r of the row-major [rows, cols] matrix.
void row_sum(const float* x, std::int64_t rows, std::int64_t cols, float* out);
/// In-place row-wise stabilized softmax of a row-major [rows, cols] matrix.
void softmax_rows(float* x, std::int64_t rows, std::int64_t cols);
/// In-place row-wise log-softmax.
void log_softmax_rows(float* x, std::int64_t rows, std::int64_t cols);
/// In-place row L2 normalization; rows with norm <= eps are left unchanged.
/// When `norms` is non-null it receives the per-row norms ([rows] floats).
void l2_normalize_rows(float* x, std::int64_t rows, std::int64_t cols,
                       float* norms, float eps);

// ---- quantization ----------------------------------------------------------

/// y = Eq. 10 affine quantization of x under `q` (gemm::quantize_value
/// lane-wise — bit-identical to the quantize-on-pack GEMM path). Identity
/// specs copy. x and y may alias.
void quantize(const float* x, float* y, std::int64_t n,
              const gemm::QuantSpec& q);
/// Same, additionally writing mask[i] = 0 where x[i] was clamped by the
/// percentile range (1 elsewhere) — the STE clip mask.
void quantize_masked(const float* x, float* y, std::int64_t n,
                     const gemm::QuantSpec& q, std::uint8_t* mask);

// ---- parameter updates -----------------------------------------------------

/// SGD with momentum + decoupled-from-decay gradient scaling, the exact
/// operation sequence of the historical scalar loop (mul/add, no fma):
///   g' = grad_scale * g + wd * p;  v = momentum * v + g';  p -= lr * v.
void sgd_update(float* p, const float* g, float* v, std::int64_t n, float lr,
                float momentum, float wd, float grad_scale);
/// Adam, matching the historical scalar operation sequence:
///   g' = g + wd * p;  m = b1*m + (1-b1)*g';  v = b2*v + (1-b2)*g'*g';
///   p -= lr * (m/bc1) / (sqrt(v/bc2) + eps).
void adam_update(float* p, const float* g, float* m, float* v, std::int64_t n,
                 float lr, float beta1, float beta2, float eps, float wd,
                 float bc1, float bc2);

/// dst[c] += sum over rows of the row-major [rows, cols] matrix, accumulated
/// row-by-row (per-column order identical to the scalar loop) — the bias
/// gradient reduction.
void add_rows(const float* src, std::int64_t rows, std::int64_t cols,
              float* dst);

// ---- portable reference instantiation --------------------------------------

/// The same kernels instantiated on the portable VecPortable backend. Always
/// compiled (even on AVX2 builds) so tests can assert scalar-vs-SIMD bitwise
/// equality at runtime in a single binary.
namespace scalar {
void vexp(const float* x, float* y, std::int64_t n);
void relu(const float* x, float* y, std::int64_t n);
void relu_cap(const float* x, float* y, std::int64_t n, float cap);
void relu_grad(const float* x, const float* g, float* y, std::int64_t n);
void relu_cap_grad(const float* x, const float* g, float* y, std::int64_t n,
                   float cap);
void gelu(const float* x, float* y, std::int64_t n);
void gelu_grad(const float* x, const float* g, float* y, std::int64_t n);
void minmax(const float* x, std::int64_t n, float* lo, float* hi);
float sum(const float* x, std::int64_t n);
void row_sum(const float* x, std::int64_t rows, std::int64_t cols, float* out);
void softmax_rows(float* x, std::int64_t rows, std::int64_t cols);
void log_softmax_rows(float* x, std::int64_t rows, std::int64_t cols);
void l2_normalize_rows(float* x, std::int64_t rows, std::int64_t cols,
                       float* norms, float eps);
void quantize(const float* x, float* y, std::int64_t n,
              const gemm::QuantSpec& q);
void quantize_masked(const float* x, float* y, std::int64_t n,
                     const gemm::QuantSpec& q, std::uint8_t* mask);
void sgd_update(float* p, const float* g, float* v, std::int64_t n, float lr,
                float momentum, float wd, float grad_scale);
void adam_update(float* p, const float* g, float* m, float* v, std::int64_t n,
                 float lr, float beta1, float beta2, float eps, float wd,
                 float bc1, float bc2);
void add_rows(const float* src, std::int64_t rows, std::int64_t cols,
              float* dst);
}  // namespace scalar

}  // namespace cq::kernels
