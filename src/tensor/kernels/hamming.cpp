#include "tensor/kernels/hamming.hpp"

#include <bit>
#include <cstring>

#include "tensor/kernels/simd.hpp"

namespace cq::kernels {

namespace {

// ---- portable core ---------------------------------------------------------
// Every kernel is integer arithmetic (popcounts, shifts, ordered float
// compares), so the portable core and the AVX2 paths below agree bit-for-bit;
// the AVX2 code only changes HOW MANY rows/words one step covers.

inline std::uint64_t pc64(std::uint64_t v) {
  return static_cast<std::uint64_t>(std::popcount(v));
}

std::uint64_t popcount_u64_portable(const std::uint64_t* x, std::int64_t n) {
  std::uint64_t total = 0;
  for (std::int64_t i = 0; i < n; ++i) total += pc64(x[i]);
  return total;
}

std::uint32_t hamming_distance_portable(const std::uint64_t* a,
                                        const std::uint64_t* b,
                                        std::int64_t words) {
  std::uint64_t d = 0;
  for (std::int64_t w = 0; w < words; ++w) d += pc64(a[w] ^ b[w]);
  return static_cast<std::uint32_t>(d);
}

void hamming_scan_portable(const std::uint64_t* query,
                           const std::uint64_t* base, std::int64_t rows,
                           std::int64_t words_per_row, std::uint32_t* out) {
  for (std::int64_t r = 0; r < rows; ++r)
    out[r] =
        hamming_distance_portable(base + r * words_per_row, query,
                                  words_per_row);
}

std::int64_t filter_lt_u32_portable(const std::uint32_t* x, std::int64_t n,
                                    std::uint32_t limit, std::int32_t* out) {
  std::int64_t cnt = 0;
  for (std::int64_t i = 0; i < n; ++i)
    if (x[i] < limit) out[cnt++] = static_cast<std::int32_t>(i);
  return cnt;
}

void binarize_1bit_portable(const float* x, std::int64_t rows,
                            std::int64_t cols, const float* thresholds,
                            std::int64_t words_per_row, std::uint64_t* codes) {
  for (std::int64_t r = 0; r < rows; ++r) {
    const float* row = x + r * cols;
    std::uint64_t* code = codes + r * words_per_row;
    std::memset(code, 0, static_cast<std::size_t>(words_per_row) * 8);
    for (std::int64_t j = 0; j < cols; ++j)
      code[j >> 6] |= static_cast<std::uint64_t>(row[j] > thresholds[j])
                      << (j & 63);
  }
}

void binarize_2bit_portable(const float* x, std::int64_t rows,
                            std::int64_t cols, const float* lo,
                            const float* hi, std::int64_t words_per_row,
                            std::uint64_t* codes) {
  for (std::int64_t r = 0; r < rows; ++r) {
    const float* row = x + r * cols;
    std::uint64_t* code = codes + r * words_per_row;
    std::memset(code, 0, static_cast<std::size_t>(words_per_row) * 8);
    for (std::int64_t j = 0; j < cols; ++j) {
      const std::int64_t b = 2 * j;
      code[b >> 6] |= static_cast<std::uint64_t>(row[j] > lo[j]) << (b & 63);
      code[b >> 6] |= static_cast<std::uint64_t>(row[j] > hi[j])
                      << ((b + 1) & 63);
    }
  }
}

// dot_scan is the one float kernel here; written once over the Vec type so
// backend and portable twin run the identical 8-lane algorithm (two
// accumulators over 16-float steps, one over the last 8-float step, scalar
// mul/add tail) — bit-identical per the simd.hpp determinism contract.
template <class Vec>
void dot_scan_impl(const float* query, const float* base, std::int64_t rows,
                   std::int64_t dim, float* out) {
  for (std::int64_t r = 0; r < rows; ++r) {
    const float* row = base + r * dim;
    Vec acc0 = Vec::zero();
    Vec acc1 = Vec::zero();
    std::int64_t i = 0;
    for (; i + 16 <= dim; i += 16) {
      acc0 = Vec::fma(Vec::load(query + i), Vec::load(row + i), acc0);
      acc1 = Vec::fma(Vec::load(query + i + 8), Vec::load(row + i + 8), acc1);
    }
    if (i + 8 <= dim) {
      acc0 = Vec::fma(Vec::load(query + i), Vec::load(row + i), acc0);
      i += 8;
    }
    float s = (acc0 + acc1).hsum();
    for (; i < dim; ++i) s += query[i] * row[i];
    out[r] = s;
  }
}

// ---- AVX2 paths ------------------------------------------------------------

#ifdef CQ_SIMD_AVX2

/// Per-64-bit-lane popcount of a 256-bit vector: nibble LUT (pshufb) for
/// per-byte counts, then psadbw against zero to sum bytes into the four u64
/// lanes. The standard Mula kernel — ~3x a dependent chain of scalar popcnt
/// at scan footprints.
inline __m256i popcount256(__m256i v) {
  const __m256i lut =
      _mm256_setr_epi8(0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4, 0, 1,
                       1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4);
  const __m256i low = _mm256_set1_epi8(0x0f);
  const __m256i lo = _mm256_and_si256(v, low);
  const __m256i hi = _mm256_and_si256(_mm256_srli_epi16(v, 4), low);
  const __m256i cnt = _mm256_add_epi8(_mm256_shuffle_epi8(lut, lo),
                                      _mm256_shuffle_epi8(lut, hi));
  return _mm256_sad_epu8(cnt, _mm256_setzero_si256());
}

/// Sum of the four u64 lanes.
inline std::uint64_t hsum4_epi64(__m256i v) {
  const __m128i s = _mm_add_epi64(_mm256_castsi256_si128(v),
                                  _mm256_extracti128_si256(v, 1));
  return static_cast<std::uint64_t>(
      _mm_cvtsi128_si64(_mm_add_epi64(s, _mm_unpackhi_epi64(s, s))));
}

std::uint64_t popcount_u64_avx2(const std::uint64_t* x, std::int64_t n) {
  __m256i acc = _mm256_setzero_si256();
  std::int64_t i = 0;
  for (; i + 4 <= n; i += 4)
    acc = _mm256_add_epi64(
        acc, popcount256(_mm256_loadu_si256(
                 reinterpret_cast<const __m256i*>(x + i))));
  std::uint64_t total = hsum4_epi64(acc);
  for (; i < n; ++i) total += pc64(x[i]);
  return total;
}

std::uint32_t hamming_distance_avx2(const std::uint64_t* a,
                                    const std::uint64_t* b,
                                    std::int64_t words) {
  __m256i acc = _mm256_setzero_si256();
  std::int64_t w = 0;
  for (; w + 4 <= words; w += 4) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + w));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + w));
    acc = _mm256_add_epi64(acc, popcount256(_mm256_xor_si256(va, vb)));
  }
  std::uint64_t d = hsum4_epi64(acc);
  for (; w < words; ++w) d += pc64(a[w] ^ b[w]);
  return static_cast<std::uint32_t>(d);
}

void hamming_scan_avx2(const std::uint64_t* query, const std::uint64_t* base,
                       std::int64_t rows, std::int64_t words_per_row,
                       std::uint32_t* out) {
  if (words_per_row == 1) {
    // Whole code in one word: four ROWS per step. The popcount lanes are
    // per-row distances already; compact the u64 lanes (values <= 64) into
    // four u32s with one cross-lane permute.
    const __m256i q = _mm256_set1_epi64x(static_cast<long long>(query[0]));
    const __m256i pack = _mm256_setr_epi32(0, 2, 4, 6, 0, 0, 0, 0);
    std::int64_t r = 0;
    for (; r + 4 <= rows; r += 4) {
      const __m256i v = _mm256_xor_si256(
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(base + r)), q);
      const __m256i pc = _mm256_permutevar8x32_epi32(popcount256(v), pack);
      _mm_storeu_si128(reinterpret_cast<__m128i*>(out + r),
                       _mm256_castsi256_si128(pc));
    }
    for (; r < rows; ++r)
      out[r] = static_cast<std::uint32_t>(pc64(base[r] ^ query[0]));
    return;
  }
  if (words_per_row == 2) {
    // Two rows per step; fold each row's two u64 lanes with an in-lane swap.
    const __m256i q = _mm256_setr_epi64x(static_cast<long long>(query[0]),
                                         static_cast<long long>(query[1]),
                                         static_cast<long long>(query[0]),
                                         static_cast<long long>(query[1]));
    std::int64_t r = 0;
    for (; r + 2 <= rows; r += 2) {
      const __m256i v = _mm256_xor_si256(
          _mm256_loadu_si256(
              reinterpret_cast<const __m256i*>(base + 2 * r)),
          q);
      const __m256i pc = popcount256(v);
      const __m256i s =
          _mm256_add_epi64(pc, _mm256_shuffle_epi32(pc, 0x4E));
      out[r] = static_cast<std::uint32_t>(
          _mm_cvtsi128_si64(_mm256_castsi256_si128(s)));
      out[r + 1] = static_cast<std::uint32_t>(
          _mm_cvtsi128_si64(_mm256_extracti128_si256(s, 1)));
    }
    for (; r < rows; ++r)
      out[r] = static_cast<std::uint32_t>(pc64(base[2 * r] ^ query[0]) +
                                          pc64(base[2 * r + 1] ^ query[1]));
    return;
  }
  for (std::int64_t r = 0; r < rows; ++r)
    out[r] = hamming_distance_avx2(base + r * words_per_row, query,
                                   words_per_row);
}

std::int64_t filter_lt_u32_avx2(const std::uint32_t* x, std::int64_t n,
                                std::uint32_t limit, std::int32_t* out) {
  if (limit == 0) return 0;  // nothing is < 0 unsigned
  // AVX2 has no unsigned compare; x < limit  <=>  min_u(x, limit-1) == x.
  const __m256i cap = _mm256_set1_epi32(static_cast<int>(limit - 1));
  std::int64_t cnt = 0;
  std::int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(x + i));
    const __m256i hit = _mm256_cmpeq_epi32(_mm256_min_epu32(v, cap), v);
    unsigned mask = static_cast<unsigned>(
        _mm256_movemask_ps(_mm256_castsi256_ps(hit)));
    // The all-miss step is the whole point: one load+min+cmp+movemask per 8
    // rows. Survivors peel off lowest-set-bit first, keeping indices
    // ascending like the portable twin.
    while (mask) {
      const int lane = std::countr_zero(mask);
      mask &= mask - 1;
      out[cnt++] = static_cast<std::int32_t>(i) + lane;
    }
  }
  for (; i < n; ++i)
    if (x[i] < limit) out[cnt++] = static_cast<std::int32_t>(i);
  return cnt;
}

void binarize_1bit_avx2(const float* x, std::int64_t rows, std::int64_t cols,
                        const float* thresholds, std::int64_t words_per_row,
                        std::uint64_t* codes) {
  for (std::int64_t r = 0; r < rows; ++r) {
    const float* row = x + r * cols;
    std::uint64_t* code = codes + r * words_per_row;
    std::memset(code, 0, static_cast<std::size_t>(words_per_row) * 8);
    std::int64_t j = 0;
    for (; j + 8 <= cols; j += 8) {
      // _CMP_GT_OQ matches the portable `>` exactly (NaN -> false).
      const unsigned mask = static_cast<unsigned>(_mm256_movemask_ps(
          _mm256_cmp_ps(_mm256_loadu_ps(row + j),
                        _mm256_loadu_ps(thresholds + j), _CMP_GT_OQ)));
      code[j >> 6] |= static_cast<std::uint64_t>(mask) << (j & 63);
    }
    for (; j < cols; ++j)
      code[j >> 6] |= static_cast<std::uint64_t>(row[j] > thresholds[j])
                      << (j & 63);
  }
}

/// Spread the low 8 bits of m so bit i lands at bit 2i (for interleaving the
/// lo/hi thermometer masks of 8 dimensions into 16 adjacent code bits).
inline std::uint64_t spread8(unsigned m) {
  std::uint64_t v = m;
  v = (v | (v << 4)) & 0x0F0Fu;
  v = (v | (v << 2)) & 0x3333u;
  v = (v | (v << 1)) & 0x5555u;
  return v;
}

void binarize_2bit_avx2(const float* x, std::int64_t rows, std::int64_t cols,
                        const float* lo, const float* hi,
                        std::int64_t words_per_row, std::uint64_t* codes) {
  for (std::int64_t r = 0; r < rows; ++r) {
    const float* row = x + r * cols;
    std::uint64_t* code = codes + r * words_per_row;
    std::memset(code, 0, static_cast<std::size_t>(words_per_row) * 8);
    std::int64_t j = 0;
    for (; j + 8 <= cols; j += 8) {
      const __m256 v = _mm256_loadu_ps(row + j);
      const unsigned mlo = static_cast<unsigned>(_mm256_movemask_ps(
          _mm256_cmp_ps(v, _mm256_loadu_ps(lo + j), _CMP_GT_OQ)));
      const unsigned mhi = static_cast<unsigned>(_mm256_movemask_ps(
          _mm256_cmp_ps(v, _mm256_loadu_ps(hi + j), _CMP_GT_OQ)));
      const std::int64_t b = 2 * j;  // multiple of 16: the pair fits one word
      code[b >> 6] |= (spread8(mlo) | (spread8(mhi) << 1)) << (b & 63);
    }
    for (; j < cols; ++j) {
      const std::int64_t b = 2 * j;
      code[b >> 6] |= static_cast<std::uint64_t>(row[j] > lo[j]) << (b & 63);
      code[b >> 6] |= static_cast<std::uint64_t>(row[j] > hi[j])
                      << ((b + 1) & 63);
    }
  }
}

#endif  // CQ_SIMD_AVX2

}  // namespace

// ---- public dispatch -------------------------------------------------------

#ifdef CQ_SIMD_AVX2

std::uint64_t popcount_u64(const std::uint64_t* x, std::int64_t n) {
  return popcount_u64_avx2(x, n);
}
std::uint32_t hamming_distance(const std::uint64_t* a, const std::uint64_t* b,
                               std::int64_t words) {
  return hamming_distance_avx2(a, b, words);
}
void hamming_scan(const std::uint64_t* query, const std::uint64_t* base,
                  std::int64_t rows, std::int64_t words_per_row,
                  std::uint32_t* out) {
  hamming_scan_avx2(query, base, rows, words_per_row, out);
}
std::int64_t filter_lt_u32(const std::uint32_t* x, std::int64_t n,
                           std::uint32_t limit, std::int32_t* out) {
  return filter_lt_u32_avx2(x, n, limit, out);
}
void binarize_1bit(const float* x, std::int64_t rows, std::int64_t cols,
                   const float* thresholds, std::int64_t words_per_row,
                   std::uint64_t* codes) {
  binarize_1bit_avx2(x, rows, cols, thresholds, words_per_row, codes);
}
void binarize_2bit(const float* x, std::int64_t rows, std::int64_t cols,
                   const float* lo, const float* hi,
                   std::int64_t words_per_row, std::uint64_t* codes) {
  binarize_2bit_avx2(x, rows, cols, lo, hi, words_per_row, codes);
}

#else

std::uint64_t popcount_u64(const std::uint64_t* x, std::int64_t n) {
  return popcount_u64_portable(x, n);
}
std::uint32_t hamming_distance(const std::uint64_t* a, const std::uint64_t* b,
                               std::int64_t words) {
  return hamming_distance_portable(a, b, words);
}
void hamming_scan(const std::uint64_t* query, const std::uint64_t* base,
                  std::int64_t rows, std::int64_t words_per_row,
                  std::uint32_t* out) {
  hamming_scan_portable(query, base, rows, words_per_row, out);
}
std::int64_t filter_lt_u32(const std::uint32_t* x, std::int64_t n,
                           std::uint32_t limit, std::int32_t* out) {
  return filter_lt_u32_portable(x, n, limit, out);
}
void binarize_1bit(const float* x, std::int64_t rows, std::int64_t cols,
                   const float* thresholds, std::int64_t words_per_row,
                   std::uint64_t* codes) {
  binarize_1bit_portable(x, rows, cols, thresholds, words_per_row, codes);
}
void binarize_2bit(const float* x, std::int64_t rows, std::int64_t cols,
                   const float* lo, const float* hi,
                   std::int64_t words_per_row, std::uint64_t* codes) {
  binarize_2bit_portable(x, rows, cols, lo, hi, words_per_row, codes);
}

#endif

void dot_scan(const float* query, const float* base, std::int64_t rows,
              std::int64_t dim, float* out) {
  dot_scan_impl<simd::VecF>(query, base, rows, dim, out);
}

namespace scalar {

std::uint64_t popcount_u64(const std::uint64_t* x, std::int64_t n) {
  return popcount_u64_portable(x, n);
}
std::uint32_t hamming_distance(const std::uint64_t* a, const std::uint64_t* b,
                               std::int64_t words) {
  return hamming_distance_portable(a, b, words);
}
void hamming_scan(const std::uint64_t* query, const std::uint64_t* base,
                  std::int64_t rows, std::int64_t words_per_row,
                  std::uint32_t* out) {
  hamming_scan_portable(query, base, rows, words_per_row, out);
}
std::int64_t filter_lt_u32(const std::uint32_t* x, std::int64_t n,
                           std::uint32_t limit, std::int32_t* out) {
  return filter_lt_u32_portable(x, n, limit, out);
}
void binarize_1bit(const float* x, std::int64_t rows, std::int64_t cols,
                   const float* thresholds, std::int64_t words_per_row,
                   std::uint64_t* codes) {
  binarize_1bit_portable(x, rows, cols, thresholds, words_per_row, codes);
}
void binarize_2bit(const float* x, std::int64_t rows, std::int64_t cols,
                   const float* lo, const float* hi,
                   std::int64_t words_per_row, std::uint64_t* codes) {
  binarize_2bit_portable(x, rows, cols, lo, hi, words_per_row, codes);
}
void dot_scan(const float* query, const float* base, std::int64_t rows,
              std::int64_t dim, float* out) {
  dot_scan_impl<simd::VecPortable>(query, base, rows, dim, out);
}

}  // namespace scalar

}  // namespace cq::kernels
