// True int8 GEMM micro-kernel family: the integer-arithmetic compute path
// behind deploy::Int8Network (DESIGN.md §12).
//
// Shapes follow the deployment orientation everywhere: A is the STATIC
// operand (per-output-channel int8 weights, [m, k] row-major, packed once at
// network-compile time), B is the DYNAMIC operand (fp32 activations lowered
// by im2col, quantized to int8 *as they are packed* — the int8 analogue of
// the fp32 path's quantize-on-pack). C is written back in fp32 by an
// epilogue that folds the per-output-channel weight scales, the per-column
// (= per-sample) activation scales and the activation zero points into the
// int32 accumulators at register write-back.
//
// Register tile: kMR x kNR int32 accumulators over k grouped in kKU=4
// quads — the AVX-512 VNNI shape (`vpdpbusd` consumes one u8x4·s8x4 quad per
// int32 lane). B is stored offset-binary (u8 = q + 128) so the unsigned
// operand requirement of vpdpbusd is met for arbitrary-sign activations; the
// epilogue subtracts (128 + zero_point[j]) * rowsum_a[i], computed from the
// A row sums collected during packing, which makes the offset (and any
// per-column zero point) exact — integer arithmetic has no rounding, so
//   acc - (128 + zp_j) * rowsum_i  ==  sum_k a[i,k] * (q[k,j] - zp_j)
// bit-for-bit.
//
// DETERMINISM CONTRACT (mirrors kernels.hpp): igemm::* is the compile-time
// detected backend (AVX-512 VNNI when the build machine has it), and
// igemm::scalar::* is a portable plain-loop twin that is ALWAYS built. The
// integer accumulation is exact in any order, and the two float epilogue
// steps (one multiply, one add — never contracted to fma; this TU builds
// with -ffp-contract=off) are specified per element, so the two backends are
// BIT-IDENTICAL — asserted by tests/test_int8_gemm.cpp. A scalar-only build
// (-DCQ_SCALAR_KERNELS=ON) reproduces the VNNI build's serving outputs
// exactly, and a batch-N forward equals N batch-1 forwards bitwise (the
// property the serving engine's dynamic batcher relies on).
#pragma once

#include <cstdint>

namespace cq::igemm {

/// Register tile and k-grouping. kKU is the number of k values fused into
/// one accumulator step (the vpdpbusd quad); packed buffers pad k up to a
/// multiple of kKU with zeros (zero A bytes contribute nothing).
inline constexpr std::int64_t kMR = 8;
inline constexpr std::int64_t kNR = 16;
inline constexpr std::int64_t kKU = 4;

/// Largest supported k. Bounds every int32 intermediate:
/// |acc| <= k * 255 * 128 and |correction| <= k * 255 * 128, so their
/// difference stays inside int32 for k <= 30000 (checked by gemm()).
inline constexpr std::int64_t kMaxK = 30000;

/// Name of the compiled-in default backend: "avx512-vnni" or "scalar".
const char* backend();

inline std::int64_t round_up(std::int64_t v, std::int64_t to) {
  return (v + to - 1) / to * to;
}
/// k padded to a whole number of kKU quads.
inline std::int64_t padded_k(std::int64_t k) { return round_up(k, kKU); }
/// Bytes of packed-A storage for an [m, k] operand (MR-row slivers,
/// zero-padded short edges).
inline std::int64_t packed_a_bytes(std::int64_t m, std::int64_t k) {
  return round_up(m, kMR) * padded_k(k);
}
/// Bytes of packed-B storage for a [k, n] operand (NR-column slivers).
inline std::int64_t packed_b_bytes(std::int64_t k, std::int64_t n) {
  return round_up(n, kNR) * padded_k(k);
}

/// Pack a signed-int8 A [m, k] (row-major) into MR-row slivers with k
/// grouped in kKU quads: within sliver s, the quad of values
/// a[s*kMR + i, 4p .. 4p+3] lives at bytes ((p * kMR) + i) * 4. Also emits
/// rowsum[i] = sum_k a[i, k] for each of the m rows — the epilogue's offset
/// correction. Pure data movement plus exact integer sums, so there is one
/// shared implementation across backends (like im2col).
void pack_a_s8(const std::int8_t* a, std::int64_t m, std::int64_t k,
               std::int8_t* ap, std::int32_t* rowsum);

/// Quantize-on-pack for the dynamic operand: reads the fp32 matrix with
/// op(B)(p, j) = b[p * rs + j * cs] (rs/cs cover both the im2col [k, n]
/// row-major layout and the linear-layer transposed [n, k] walk), quantizes
/// each element with its column's scale,
///   q = clamp(nearbyint(v * col_inv_scale[j]), -127, 127)
/// (round half to even — matches _mm512_cvtps_epi32 under the default FP
/// environment; NaN clamps to -127), and stores q + 128 as u8 in NR-column
/// slivers: within sliver t, the quad of values for column t*kNR + j at
/// k = 4p .. 4p+3 lives at bytes ((p * kNR) + j) * 4. A zero inv-scale
/// encodes a zero-range column: every element quantizes to 0. Short edges
/// and the k pad hold the offset-binary zero byte (128, i.e. q = 0 — what a
/// 0.0f source element quantizes to, so edge handling needs no special
/// cases); pad positions never reach C because the matching A bytes are 0
/// (k pad) or the lanes are clipped at write-back (column pad).
void pack_b_quantized(const float* b, std::int64_t rs, std::int64_t cs,
                      std::int64_t k, std::int64_t n,
                      const float* col_inv_scale, std::uint8_t* bp);

/// Scale/zero-point fold applied per element at write-back:
///   eff  = acc - (128 + col_zp[j]) * rowsum[i]      (exact, int32)
///   c    = float(eff) * (row_scale[i] * col_scale[j]) + bias[i]
/// row_scale/col_scale are required; bias and col_zp may be null (0).
struct Epilogue {
  const float* row_scale = nullptr;   // [m] per-output-channel weight scales
  const float* col_scale = nullptr;   // [n] per-column activation scales
  const float* bias = nullptr;        // [m] per-row bias, nullptr = 0
  const std::int32_t* col_zp = nullptr;  // [n] activation zero points, 0
};

/// C[m, n] (fp32, row stride ldc >= n, must not alias the packed operands)
/// from packed A (+ its rowsums) and packed B. Accumulates each output
/// element in int32 over the full k in one pass — no intermediate rounding
/// anywhere before the epilogue's single int->float conversion. k == 0
/// writes bias (eff = 0). Requires k <= kMaxK.
void gemm(std::int64_t m, std::int64_t n, std::int64_t k,
          const std::int8_t* ap, const std::int32_t* rowsum,
          const std::uint8_t* bp, float* c, std::int64_t ldc,
          const Epilogue& ep);

namespace detail {
/// The one scale-folding formula (non-inline, compiled in the igemm TU with
/// -ffp-contract=off), shared with tests so a naive int32 reference can
/// reproduce the kernel's float write-back bit-for-bit — the igemm analogue
/// of gemm::quantize_value's "single shared formula" rule.
float epilogue_value(std::int32_t eff, float row_scale, float col_scale,
                     float bias);
/// The one activation-quantization formula (same compilation discipline):
/// clamp(nearbyint(v * inv_scale), -127, 127), NaN -> -127.
std::int32_t quantize_value(float v, float inv_scale);
}  // namespace detail

/// Portable plain-loop twin, always built (even on VNNI builds) so tests
/// can assert backend-vs-scalar bitwise equality at runtime in one binary.
namespace scalar {
void pack_b_quantized(const float* b, std::int64_t rs, std::int64_t cs,
                      std::int64_t k, std::int64_t n,
                      const float* col_inv_scale, std::uint8_t* bp);
void gemm(std::int64_t m, std::int64_t n, std::int64_t k,
          const std::int8_t* ap, const std::int32_t* rowsum,
          const std::uint8_t* bp, float* c, std::int64_t ldc,
          const Epilogue& ep);
}  // namespace scalar

}  // namespace cq::igemm
