#include "tensor/storage.hpp"

#include <bit>
#include <mutex>
#include <new>
#include <vector>

#include "core/prof.hpp"
#include "util/check.hpp"

namespace cq {

namespace {

// Feed the aggregate profiler's per-scope heap-allocation deltas from this
// thread's pool-miss counter (prof lives below the tensor layer and cannot
// call alloc_stats() itself). Static-init registration: prof's registry is a
// Meyers singleton, so the order is safe.
const bool kProfAllocSourceRegistered = [] {
  prof::set_alloc_source(
      [] { return tensor::alloc_stats().cumulative_allocations; });
  return true;
}();

/// Smallest bucket, in floats. Sub-32-element tensors (scalars, per-channel
/// vectors) all share one size class.
constexpr std::int64_t kMinBucketFloats = 32;
constexpr int kNumBuckets = 48;  // 2^5 .. 2^52 floats — far beyond any tensor

std::int64_t bucket_capacity(std::int64_t numel) {
  const auto need =
      static_cast<std::uint64_t>(numel < kMinBucketFloats ? kMinBucketFloats
                                                          : numel);
  return static_cast<std::int64_t>(std::bit_ceil(need));
}

int bucket_index(std::int64_t capacity) {
  return std::bit_width(static_cast<std::uint64_t>(capacity)) - 1;
}

struct Pool {
  std::vector<void*> free_lists[kNumBuckets];  // parked Header blocks
  tensor::AllocStats stats;
};

// Heap-allocated and intentionally never destroyed: Storage handles may
// legally outlive normal thread_local destruction order (e.g. statics).
// Every pool is anchored in a global registry — a TLS pointer alone stops
// being a reachability root once its thread exits, and the profiler's
// alloc-source hook (above) means any thread that records a span owns a
// pool, so exited short-lived threads would otherwise read as leaks under
// LeakSanitizer. The registry itself leaks by design for the same reason.
// tensor::trim_pool() exists for explicit release of parked blocks.
std::mutex& pool_registry_mutex() {
  static std::mutex m;
  return m;
}

std::vector<Pool*>& pool_registry() {
  static std::vector<Pool*>* r = new std::vector<Pool*>();
  return *r;
}

Pool& pool() {
  thread_local Pool* p = [] {
    auto* fresh = new Pool;
    std::lock_guard<std::mutex> lock(pool_registry_mutex());
    pool_registry().push_back(fresh);
    return fresh;
  }();
  return *p;
}

}  // namespace

Storage Storage::acquire(std::int64_t numel) {
  CQ_CHECK_MSG(numel >= 0, "Storage::acquire(" << numel << ")");
  const auto capacity = bucket_capacity(numel);
  const int idx = bucket_index(capacity);
  Pool& p = pool();
  const auto bytes = static_cast<std::int64_t>(capacity) *
                     static_cast<std::int64_t>(sizeof(float));
  Header* h = nullptr;
  auto& list = p.free_lists[idx];
  if (!list.empty()) {
    h = static_cast<Header*>(list.back());
    list.pop_back();
    h->refs.store(1, std::memory_order_relaxed);
    ++p.stats.pool_hits;
    p.stats.pooled_bytes -= bytes;
  } else {
    void* raw =
        ::operator new(sizeof(Header) + static_cast<std::size_t>(bytes));
    h = ::new (raw) Header{{1}, capacity};
    ++p.stats.pool_misses;
    ++p.stats.cumulative_allocations;
  }
  p.stats.live_bytes += bytes;
  if (p.stats.live_bytes > p.stats.peak_live_bytes)
    p.stats.peak_live_bytes = p.stats.live_bytes;
  return Storage(h);
}

void Storage::release() {
  if (h_ == nullptr) return;
  // acq_rel: the last owner must observe every write the other owners made
  // to the payload before it republishes the block through a free list.
  if (h_->refs.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    // Fallback path for cross-thread hand-off: the block parks in the
    // *releasing* thread's pool, whichever thread that is.
    Pool& p = pool();
    const auto bytes = h_->capacity * static_cast<std::int64_t>(sizeof(float));
    p.stats.live_bytes -= bytes;
    p.stats.pooled_bytes += bytes;
    p.free_lists[bucket_index(h_->capacity)].push_back(h_);
  }
  h_ = nullptr;
}

namespace tensor {

AllocStats alloc_stats() { return pool().stats; }

void reset_alloc_counters() {
  Pool& p = pool();
  p.stats.pool_hits = 0;
  p.stats.pool_misses = 0;
}

std::int64_t trim_pool() {
  Pool& p = pool();
  std::int64_t freed = 0;
  for (auto& list : p.free_lists) {
    for (void* block : list) {
      freed += static_cast<detail::StorageHeader*>(block)->capacity *
               static_cast<std::int64_t>(sizeof(float));
      ::operator delete(block);
    }
    list.clear();
  }
  p.stats.pooled_bytes -= freed;
  return freed;
}

}  // namespace tensor
}  // namespace cq
