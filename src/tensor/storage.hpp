// Storage: ref-counted float buffer behind Tensor, backed by a size-bucketed
// thread-local free-list pool.
//
// Why: the CQ pipelines push 2-4 encoder branches per iteration through the
// same modules, so every training step used to re-allocate the whole
// activation set (forward outputs, LIFO backward caches, im2col buffers,
// fake-quantized weights) several times over. Buffers released here are
// parked in per-size-class free lists instead of returning to the heap, so a
// steady-state iteration re-acquires the same blocks it released one branch
// ago. Capacities are rounded up to the next power of two (min 32 floats),
// which lets differently-shaped tensors of similar size share a bucket.
//
// Thread model: the pool and its counters are thread-local, but the refcount
// is atomic, so Storage handles (and therefore Tensors) may be handed across
// threads — the serving engine's workers receive batches assembled from
// client-thread data and free scratch on whichever thread tears the engine
// down. The rules (audited for src/serve/, see DESIGN.md Sec. 10):
//   * Hand-off (move or copy of a handle to another thread) is safe: the
//     atomic refcount makes the last-owner decision race-free.
//   * Concurrent *mutation* of one Tensor is still the caller's problem —
//     COW detaching (non-const data()) from two threads at once is a race on
//     the payload, exactly like any shared buffer.
//   * A buffer released on a thread other than its allocator parks in the
//     *releasing* thread's pool (the fallback path: blocks never cross back,
//     they are simply adopted). Consequence: per-thread byte gauges
//     (live_bytes / pooled_bytes) are home-thread approximations — a thread
//     that frees foreign buffers can show live_bytes < 0 while the allocating
//     thread's stays high. Hit/miss/cumulative counters are exact per thread.
//
// Accounting (cq::tensor::alloc_stats()):
//   pool_hits / pool_misses  — acquires served from a free list vs the heap
//   cumulative_allocations   — lifetime heap allocations (never reset)
//   live_bytes               — bytes held by outstanding Storage handles
//   pooled_bytes             — bytes parked in free lists, ready for reuse
#pragma once

#include <atomic>
#include <cstdint>

namespace cq {

namespace detail {
/// Intrusive block header; the float payload follows immediately. The
/// refcount is atomic so handles can be handed across threads; capacity is
/// immutable after allocation.
struct StorageHeader {
  std::atomic<std::uint64_t> refs;
  std::int64_t capacity;  // floats
};
}  // namespace detail

class Storage {
 public:
  Storage() = default;
  ~Storage() { release(); }

  Storage(const Storage& other) : h_(other.h_) {
    if (h_ != nullptr) h_->refs.fetch_add(1, std::memory_order_relaxed);
  }
  Storage& operator=(const Storage& other) {
    if (this != &other) {
      release();
      h_ = other.h_;
      if (h_ != nullptr) h_->refs.fetch_add(1, std::memory_order_relaxed);
    }
    return *this;
  }
  Storage(Storage&& other) noexcept : h_(other.h_) { other.h_ = nullptr; }
  Storage& operator=(Storage&& other) noexcept {
    if (this != &other) {
      release();
      h_ = other.h_;
      other.h_ = nullptr;
    }
    return *this;
  }

  /// Pool-backed buffer holding at least `numel` floats. Contents are
  /// unspecified (recycled blocks keep their previous bytes).
  static Storage acquire(std::int64_t numel);

  float* data() { return h_ != nullptr ? payload(h_) : nullptr; }
  const float* data() const { return h_ != nullptr ? payload(h_) : nullptr; }

  /// Usable capacity in floats (the bucket size, >= the requested numel).
  std::int64_t capacity() const { return h_ != nullptr ? h_->capacity : 0; }

  std::uint64_t use_count() const {
    return h_ != nullptr ? h_->refs.load(std::memory_order_relaxed) : 0;
  }
  bool unique() const {
    return h_ != nullptr && h_->refs.load(std::memory_order_acquire) == 1;
  }
  explicit operator bool() const { return h_ != nullptr; }

  void reset() {
    release();
    h_ = nullptr;
  }

 private:
  using Header = detail::StorageHeader;

  static float* payload(Header* h) { return reinterpret_cast<float*>(h + 1); }

  explicit Storage(Header* h) : h_(h) {}
  void release();

  Header* h_ = nullptr;
};

namespace tensor {

/// Snapshot of the calling thread's pool counters.
struct AllocStats {
  std::uint64_t pool_hits = 0;    // acquires served from a free list
  std::uint64_t pool_misses = 0;  // acquires that had to hit the heap
  /// Lifetime heap allocations; unlike hits/misses this survives
  /// reset_alloc_counters(), so "flat after warm-up" is directly testable.
  std::uint64_t cumulative_allocations = 0;
  std::int64_t live_bytes = 0;    // held by outstanding Storage handles
  std::int64_t pooled_bytes = 0;  // parked in free lists
  std::int64_t peak_live_bytes = 0;
};

AllocStats alloc_stats();

/// Zero pool_hits / pool_misses (cumulative_allocations and the byte gauges
/// are left alone).
void reset_alloc_counters();

/// Free every parked block back to the heap; returns the bytes released.
/// Live Storage handles are unaffected.
std::int64_t trim_pool();

}  // namespace tensor
}  // namespace cq
