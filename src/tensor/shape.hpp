// Shape: dimension list for dense row-major tensors.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

namespace cq {

/// Immutable-by-convention list of dimensions. All dims must be positive
/// (scalars are represented as rank-0 shapes with numel() == 1).
class Shape {
 public:
  Shape() = default;
  Shape(std::initializer_list<std::int64_t> dims);
  explicit Shape(std::vector<std::int64_t> dims);

  std::size_t rank() const { return dims_.size(); }
  std::int64_t numel() const;

  /// Dimension i; negative i counts from the end (Python-style).
  std::int64_t dim(std::int64_t i) const;
  std::int64_t operator[](std::size_t i) const { return dims_[i]; }

  const std::vector<std::int64_t>& dims() const { return dims_; }

  bool operator==(const Shape& other) const { return dims_ == other.dims_; }
  bool operator!=(const Shape& other) const { return !(*this == other); }

  std::string str() const;

 private:
  std::vector<std::int64_t> dims_;
};

}  // namespace cq
