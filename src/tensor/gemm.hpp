// Single-precision GEMM kernels: one blocked, register-tiled core shared by
// all three transpose variants, plus the naive loops kept as a golden
// reference for equivalence testing.
//
// Storage is row-major throughout (matching Tensor). The transpose variant
// only changes how the packing routines walk A and B; the macro loops and
// micro-kernel are identical for all three, so every forward and backward
// GEMM in the library exercises the same optimized core.
//
// Numerics: the blocked kernels accumulate in float32 register tiles over
// KC-sized panels of k. This replaces the double-precision accumulation the
// old naive NT loop used — a conscious relaxation, pinned by
// tests/test_gemm.cpp (GemmTest.NtAccumulationStaysNearDoubleReference).
// Zeros in A are never skipped, so NaN/Inf in either operand propagate to C
// for every variant (the old kernels skipped zero rows, silently dropping
// 0 * NaN terms).
//
// Two fusion hooks extend the core (DESIGN.md §9):
//  * Epilogue — bias add and ReLU/ReLU-cap applied to the register tile as
//    it is written back on the LAST k-panel. The operation sequence per
//    element ((accumulated sum) + bias, then activation) is exactly the
//    sequence of the unfused gemm-then-bias-pass-then-act-pass pipeline, so
//    fused and unfused results are bit-identical.
//  * QuantSpec — the affine fake-quantization of paper Eq. 10 folded into
//    the A/B packing stage ("quantize-on-pack"): each element is quantized
//    as it is gathered into the packed sliver, so no quantized copy of the
//    operand is ever materialized. quantize_value() is the single shared
//    formula; LinearQuantizer routes through the same QuantSpec, which makes
//    pack-quantized GEMM bit-identical to materialize-then-GEMM.
#pragma once

#include <cmath>
#include <cstdint>

namespace cq::gemm {

/// Which operand is logically transposed. Operand shapes as stored:
///   kNN: C[M,N] = A[M,K]   * B[K,N]
///   kTN: C[M,N] = A[K,M]^T * B[K,N]
///   kNT: C[M,N] = A[M,K]   * B[N,K]^T
enum class Trans { kNN, kTN, kNT };

/// Affine quantizer parameters (paper Eq. 10: A_q = S_a * round(A / S_a)),
/// precomputed from one range pass over the operand. `identity` marks
/// full-precision / zero-range tensors where quantization is a no-op — the
/// packing routines then skip the transform entirely.
struct QuantSpec {
  float step = 0.0f;      // S_a
  float inv_step = 0.0f;  // 1 / S_a
  float lo = 0.0f;        // clamp bounds, used when `clip`
  float hi = 0.0f;
  bool clip = false;      // percentile range mode clamps to [lo, hi]
  bool nearest = true;    // round-to-nearest-even vs floor (Eq. 10 print)
  bool identity = true;
};

/// The one affine-quantization formula, shared by the packing routines and
/// the vectorized kernels::quantize — keeping every path on this exact
/// operation sequence is what makes quantize-on-pack bit-exact. nearbyintf
/// rounds half-to-even under the default FP environment, matching
/// _mm256_round_ps(_MM_FROUND_TO_NEAREST_INT).
inline float quantize_value(float v, const QuantSpec& q) {
  if (q.clip) v = v < q.lo ? q.lo : (v > q.hi ? q.hi : v);
  const float r = q.nearest ? std::nearbyint(v * q.inv_step)
                            : std::floor(v * q.inv_step);
  return q.step * r;
}

/// Fused epilogue, applied to C elements at final write-back:
///   c = act(c + bias), bias indexed per output row or per output column.
struct Epilogue {
  enum class Bias : std::uint8_t { kNone, kPerRow, kPerCol };
  enum class Act : std::uint8_t { kNone, kRelu, kReluCap };

  const float* bias = nullptr;  // [m] for kPerRow, [n] for kPerCol
  Bias bias_kind = Bias::kNone;
  Act act = Act::kNone;
  float cap = 0.0f;  // kReluCap: min(max(c, 0), cap)

  bool empty() const { return bias == nullptr && act == Act::kNone; }
};

/// Blocked GEMM: C = op(A) * op(B), or C += op(A) * op(B) when `accumulate`.
/// C is row-major [M, N] and must not alias A or B. k == 0 zeroes C (unless
/// accumulating), mirroring an empty sum.
void gemm(Trans trans, std::int64_t m, std::int64_t n, std::int64_t k,
          const float* a, const float* b, float* c, bool accumulate = false);

/// Fused variant: optional epilogue (applied after the full k accumulation,
/// including the k == 0 empty-sum case) and optional quantize-on-pack specs
/// for either operand (`qa` for op(A), `qb` for op(B); nullptr or an
/// identity spec packs the raw values).
void gemm(Trans trans, std::int64_t m, std::int64_t n, std::int64_t k,
          const float* a, const float* b, float* c, bool accumulate,
          const Epilogue& epilogue, const QuantSpec* qa = nullptr,
          const QuantSpec* qb = nullptr);

/// GEMM over a B operand the CALLER already laid out in packed sliver
/// format: kNR-column slivers left to right, each sliver kc x kNR floats in
/// k-major order, short trailing slivers zero-padded — i.e. value (p, j) of
/// op(B) lives at packed_b[(j / kNR) * (k * kNR) + p * kNR + j % kNR].
/// This is exactly the layout pack_block_b emits, extended across the full
/// width n, and it lets a producer (e.g. im2col_packed) write B in packed
/// form directly, deleting the separate pack_b read+write pass. Restricted
/// to k <= kKC (a single k-panel) so the sliver sequence is unambiguous.
/// A is row-major [M, K] (kNN orientation). Same micro-kernel, k-order and
/// epilogue sequencing as gemm(), so results are bit-identical to
/// gemm(kNN, ...) on the unpacked operand.
void gemm_prepacked_b(std::int64_t m, std::int64_t n, std::int64_t k,
                      const float* a, const float* packed_b, float* c,
                      bool accumulate, const Epilogue& epilogue,
                      const QuantSpec* qa = nullptr);

namespace reference {
/// The pre-blocking naive loops, kept verbatim as the golden reference (NT
/// still accumulates in double). Same contract as gemm::gemm. The only
/// deliberate change from the historical loops: no zero-skip, so NaN
/// propagation matches the blocked kernels.
void gemm(Trans trans, std::int64_t m, std::int64_t n, std::int64_t k,
          const float* a, const float* b, float* c, bool accumulate = false);
}  // namespace reference

namespace detail {
/// Pack the leading (min(k, kKC) x min(n, kNC)) block of op(B) into
/// NR-column slivers, optionally folding a QuantSpec — exposed so the
/// kernels bench and pack-equivalence tests can exercise the packing stage
/// in isolation. `bp` must hold round_up(nc, kNR) * kc floats.
void pack_block_b(Trans trans, std::int64_t k, std::int64_t n, const float* b,
                  float* bp, const QuantSpec* q);
/// Same for the leading (min(m, kMC) x min(k, kKC)) block of op(A) into
/// MR-row slivers; `ap` must hold round_up(mc, kMR) * kc floats.
void pack_block_a(Trans trans, std::int64_t m, std::int64_t k, const float* a,
                  float* ap, const QuantSpec* q);
}  // namespace detail

// Blocking parameters, exposed so tests can target tile boundaries and the
// bench can report them. kMR x kNR is the register tile; kMC/kKC/kNC are the
// cache-block sizes of the packed A (MC x KC) and B (KC x NC) panels.
inline constexpr std::int64_t kMR = 8;
inline constexpr std::int64_t kNR = 16;
inline constexpr std::int64_t kMC = 128;
inline constexpr std::int64_t kKC = 256;
inline constexpr std::int64_t kNC = 1024;

/// Float count of the packed-B buffer gemm_prepacked_b consumes for a [k, n]
/// operand (kNR-column slivers, short edges zero-padded). Callers that
/// prepack weights ahead of time — the graph executor plans one buffer per
/// linear node — size it with this instead of re-deriving the sliver math.
inline std::int64_t packed_b_floats(std::int64_t k, std::int64_t n) {
  return (n + kNR - 1) / kNR * kNR * k;
}

}  // namespace cq::gemm
