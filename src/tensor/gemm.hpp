// Single-precision GEMM kernels: one blocked, register-tiled core shared by
// all three transpose variants, plus the naive loops kept as a golden
// reference for equivalence testing.
//
// Storage is row-major throughout (matching Tensor). The transpose variant
// only changes how the packing routines walk A and B; the macro loops and
// micro-kernel are identical for all three, so every forward and backward
// GEMM in the library exercises the same optimized core.
//
// Numerics: the blocked kernels accumulate in float32 register tiles over
// KC-sized panels of k. This replaces the double-precision accumulation the
// old naive NT loop used — a conscious relaxation, pinned by
// tests/test_gemm.cpp (GemmTest.NtAccumulationStaysNearDoubleReference).
// Zeros in A are never skipped, so NaN/Inf in either operand propagate to C
// for every variant (the old kernels skipped zero rows, silently dropping
// 0 * NaN terms).
#pragma once

#include <cstdint>

namespace cq::gemm {

/// Which operand is logically transposed. Operand shapes as stored:
///   kNN: C[M,N] = A[M,K]   * B[K,N]
///   kTN: C[M,N] = A[K,M]^T * B[K,N]
///   kNT: C[M,N] = A[M,K]   * B[N,K]^T
enum class Trans { kNN, kTN, kNT };

/// Blocked GEMM: C = op(A) * op(B), or C += op(A) * op(B) when `accumulate`.
/// C is row-major [M, N] and must not alias A or B. k == 0 zeroes C (unless
/// accumulating), mirroring an empty sum.
void gemm(Trans trans, std::int64_t m, std::int64_t n, std::int64_t k,
          const float* a, const float* b, float* c, bool accumulate = false);

namespace reference {
/// The pre-blocking naive loops, kept verbatim as the golden reference (NT
/// still accumulates in double). Same contract as gemm::gemm. The only
/// deliberate change from the historical loops: no zero-skip, so NaN
/// propagation matches the blocked kernels.
void gemm(Trans trans, std::int64_t m, std::int64_t n, std::int64_t k,
          const float* a, const float* b, float* c, bool accumulate = false);
}  // namespace reference

// Blocking parameters, exposed so tests can target tile boundaries and the
// bench can report them. kMR x kNR is the register tile; kMC/kKC/kNC are the
// cache-block sizes of the packed A (MC x KC) and B (KC x NC) panels.
inline constexpr std::int64_t kMR = 8;
inline constexpr std::int64_t kNR = 16;
inline constexpr std::int64_t kMC = 128;
inline constexpr std::int64_t kKC = 256;
inline constexpr std::int64_t kNC = 1024;

}  // namespace cq::gemm
