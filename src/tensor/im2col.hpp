// im2col / col2im lowering for convolution.
//
// Layout convention: the column matrix for one image has shape
// [C_in * KH * KW, OH * OW]; conv forward is then a single matmul with the
// [C_out, C_in*KH*KW] weight matrix.
#pragma once

#include "tensor/tensor.hpp"

namespace cq {

struct ConvGeometry {
  std::int64_t in_channels = 0;
  std::int64_t in_h = 0, in_w = 0;
  std::int64_t kernel_h = 0, kernel_w = 0;
  std::int64_t stride = 1;
  std::int64_t pad = 0;

  std::int64_t out_h() const { return (in_h + 2 * pad - kernel_h) / stride + 1; }
  std::int64_t out_w() const { return (in_w + 2 * pad - kernel_w) / stride + 1; }
  std::int64_t col_rows() const { return in_channels * kernel_h * kernel_w; }
  std::int64_t col_cols() const { return out_h() * out_w(); }
};

/// Lower one CHW image into its column matrix [col_rows, col_cols].
/// `image` must be the contiguous CHW block (C*H*W floats).
void im2col(const float* image, const ConvGeometry& g, float* cols);

/// Strided variant: writes row r of the column matrix at
/// cols[r * col_stride .. r * col_stride + col_cols). With
/// col_stride > col_cols this lowers one image into a slice of a wider
/// batched column matrix [col_rows, batch * col_cols] — the serving engine
/// lowers every image of a dynamic batch side by side and runs ONE GEMM over
/// all of them, amortizing the weight-packing pass across the batch.
/// Requires col_stride >= col_cols.
void im2col(const float* image, const ConvGeometry& g, float* cols,
            std::int64_t col_stride);

/// Batched lowering: lowers `n` images (spaced `sample_stride` floats
/// apart) side by side into a [col_rows, n * col_cols] column matrix with
/// row stride `col_stride` (>= n * col_cols); image i owns columns
/// [i * col_cols, (i+1) * col_cols). Bit-identical to n strided im2col
/// calls, but the per-row source-range geometry (several integer divisions
/// per patch row) is computed once and reused for every image — on
/// thumbnail inputs that bookkeeping rivals the copies themselves, which is
/// exactly the regime the serving engine's dynamic batches live in.
void im2col_batched(const float* images, std::int64_t n,
                    std::int64_t sample_stride, const ConvGeometry& g,
                    float* cols, std::int64_t col_stride);

/// Destination-passing variant: resizes `cols` to [col_rows, col_cols]
/// (reusing its pooled storage when possible) and fully overwrites it.
/// `image` must not alias `cols`.
void im2col_into(const float* image, const ConvGeometry& g, Tensor& cols);

/// Lower one image DIRECTLY into gemm packed-B sliver layout (the format
/// gemm_prepacked_b consumes: kNR-column slivers, k-major within a sliver),
/// writing columns [col0, col0 + col_cols()) of the full packed matrix that
/// starts at `packed`. Fusing the lowering with the packing deletes the
/// separate pack_b read+write pass over the column matrix — on skinny
/// conv GEMMs (small C_out) that pass is a large share of the forward.
/// Requires col_rows() <= gemm::kKC (single k-panel; checked). The caller
/// owns zero-padding of a partial final sliver (alignment is natural when
/// col0 and the total width are multiples of gemm::kNR).
void im2col_packed(const float* image, const ConvGeometry& g, float* packed,
                   std::int64_t col0);

/// Patch-major lowering (im2row): the TRANSPOSE of the im2col matrix,
/// shape [col_cols, col_rows] — one contiguous (c, kh, kw)-ordered patch
/// per output pixel, matching the weight row layout. Paired with
/// gemm::Trans::kNT this is interchangeable with im2col + kNN: the blocked
/// GEMM shares one micro-kernel and k-panel order across transpose
/// variants, so the two lowerings give bit-identical outputs.
/// Worth it when out_h*out_w is small (deep stages on
/// thumbnail inputs): the row-major walk then degenerates into
/// per-element bookkeeping, while patch writes stay contiguous.
void im2row(const float* image, const ConvGeometry& g, float* rows);

/// Scatter-add a column matrix back into a CHW image gradient.
/// `image_grad` must be zero-initialized by the caller (or hold an existing
/// gradient to accumulate into).
void col2im(const float* cols, const ConvGeometry& g, float* image_grad);

}  // namespace cq
