// im2col / col2im lowering for convolution.
//
// Layout convention: the column matrix for one image has shape
// [C_in * KH * KW, OH * OW]; conv forward is then a single matmul with the
// [C_out, C_in*KH*KW] weight matrix.
#pragma once

#include "tensor/tensor.hpp"

namespace cq {

struct ConvGeometry {
  std::int64_t in_channels = 0;
  std::int64_t in_h = 0, in_w = 0;
  std::int64_t kernel_h = 0, kernel_w = 0;
  std::int64_t stride = 1;
  std::int64_t pad = 0;

  std::int64_t out_h() const { return (in_h + 2 * pad - kernel_h) / stride + 1; }
  std::int64_t out_w() const { return (in_w + 2 * pad - kernel_w) / stride + 1; }
  std::int64_t col_rows() const { return in_channels * kernel_h * kernel_w; }
  std::int64_t col_cols() const { return out_h() * out_w(); }
};

/// Lower one CHW image into its column matrix [col_rows, col_cols].
/// `image` must be the contiguous CHW block (C*H*W floats).
void im2col(const float* image, const ConvGeometry& g, float* cols);

/// Destination-passing variant: resizes `cols` to [col_rows, col_cols]
/// (reusing its pooled storage when possible) and fully overwrites it.
/// `image` must not alias `cols`.
void im2col_into(const float* image, const ConvGeometry& g, Tensor& cols);

/// Scatter-add a column matrix back into a CHW image gradient.
/// `image_grad` must be zero-initialized by the caller (or hold an existing
/// gradient to accumulate into).
void col2im(const float* cols, const ConvGeometry& g, float* image_grad);

}  // namespace cq
