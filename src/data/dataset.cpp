#include "data/dataset.hpp"

#include <algorithm>

#include "data/image.hpp"
#include "util/check.hpp"

namespace cq::data {

void Dataset::validate() const {
  CQ_CHECK_MSG(images.size() == labels.size(), "images/labels size mismatch");
  for (int label : labels)
    CQ_CHECK_MSG(label >= 0 && label < num_classes,
                 "label " << label << " outside [0, " << num_classes << ")");
}

Dataset subset_fraction(const Dataset& full, double fraction, Rng& rng) {
  CQ_CHECK(fraction > 0.0 && fraction <= 1.0);
  full.validate();
  std::vector<std::vector<std::int64_t>> by_class(
      static_cast<std::size_t>(full.num_classes));
  for (std::int64_t i = 0; i < full.size(); ++i)
    by_class[static_cast<std::size_t>(full.labels[static_cast<std::size_t>(i)])]
        .push_back(i);

  Dataset out;
  out.num_classes = full.num_classes;
  for (auto& members : by_class) {
    if (members.empty()) continue;
    rng.shuffle(members);
    // Keep ceil(fraction * count) but at least 1 so every class stays
    // represented, mirroring how papers stratify semi-supervised splits.
    const auto keep = std::max<std::int64_t>(
        1, static_cast<std::int64_t>(
               fraction * static_cast<double>(members.size()) + 0.5));
    for (std::int64_t k = 0; k < keep; ++k) {
      const auto i = static_cast<std::size_t>(members[static_cast<std::size_t>(k)]);
      out.images.push_back(full.images[i]);
      out.labels.push_back(full.labels[i]);
    }
  }
  return out;
}

Tensor gather_images(const Dataset& ds,
                     std::span<const std::int64_t> indices) {
  CQ_CHECK(!indices.empty());
  std::vector<Tensor> picked;
  picked.reserve(indices.size());
  for (auto i : indices) {
    CQ_CHECK(i >= 0 && i < ds.size());
    picked.push_back(ds.images[static_cast<std::size_t>(i)]);
  }
  return stack_images(picked);
}

std::vector<int> gather_labels(const Dataset& ds,
                               std::span<const std::int64_t> indices) {
  std::vector<int> labels;
  labels.reserve(indices.size());
  for (auto i : indices) {
    CQ_CHECK(i >= 0 && i < ds.size());
    labels.push_back(ds.labels[static_cast<std::size_t>(i)]);
  }
  return labels;
}

Batcher::Batcher(std::int64_t dataset_size, std::int64_t batch_size, Rng& rng,
                 bool drop_last)
    : dataset_size_(dataset_size),
      batch_size_(batch_size),
      drop_last_(drop_last),
      rng_(&rng) {
  CQ_CHECK(dataset_size > 0 && batch_size > 0);
  CQ_CHECK_MSG(!drop_last || batch_size <= dataset_size,
               "drop_last with batch larger than dataset yields no batches");
  order_.resize(static_cast<std::size_t>(dataset_size));
  for (std::int64_t i = 0; i < dataset_size; ++i)
    order_[static_cast<std::size_t>(i)] = i;
  reshuffle();
}

void Batcher::reshuffle() {
  rng_->shuffle(order_);
  cursor_ = 0;
}

std::vector<std::int64_t> Batcher::next() {
  if (cursor_ >= dataset_size_ ||
      (drop_last_ && cursor_ + batch_size_ > dataset_size_)) {
    reshuffle();
  }
  const auto take = std::min(batch_size_, dataset_size_ - cursor_);
  std::vector<std::int64_t> batch(
      order_.begin() + cursor_, order_.begin() + cursor_ + take);
  cursor_ += take;
  return batch;
}

std::int64_t Batcher::batches_per_epoch() const {
  if (drop_last_) return dataset_size_ / batch_size_;
  return (dataset_size_ + batch_size_ - 1) / batch_size_;
}

}  // namespace cq::data
