#include "data/image.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace cq::data {

namespace {
void check_image(const Tensor& img) {
  CQ_CHECK_MSG(img.shape().rank() == 3 && img.dim(0) == 3,
               "expected [3,H,W] image, got " << img.shape().str());
}
}  // namespace

Tensor resize_bilinear(const Tensor& img, std::int64_t out_h,
                       std::int64_t out_w) {
  check_image(img);
  CQ_CHECK(out_h > 0 && out_w > 0);
  const auto h = img.dim(1), w = img.dim(2);
  Tensor out(Shape{3, out_h, out_w});
  const float sy = static_cast<float>(h) / static_cast<float>(out_h);
  const float sx = static_cast<float>(w) / static_cast<float>(out_w);
  for (std::int64_t c = 0; c < 3; ++c) {
    const float* plane = img.data() + c * h * w;
    float* oplane = out.data() + c * out_h * out_w;
    for (std::int64_t y = 0; y < out_h; ++y) {
      const float fy = (static_cast<float>(y) + 0.5f) * sy - 0.5f;
      const std::int64_t y0 =
          std::clamp<std::int64_t>(static_cast<std::int64_t>(std::floor(fy)),
                                   0, h - 1);
      const std::int64_t y1 = std::min<std::int64_t>(y0 + 1, h - 1);
      const float wy = std::clamp(fy - static_cast<float>(y0), 0.0f, 1.0f);
      for (std::int64_t x = 0; x < out_w; ++x) {
        const float fx = (static_cast<float>(x) + 0.5f) * sx - 0.5f;
        const std::int64_t x0 = std::clamp<std::int64_t>(
            static_cast<std::int64_t>(std::floor(fx)), 0, w - 1);
        const std::int64_t x1 = std::min<std::int64_t>(x0 + 1, w - 1);
        const float wx = std::clamp(fx - static_cast<float>(x0), 0.0f, 1.0f);
        const float v00 = plane[y0 * w + x0], v01 = plane[y0 * w + x1];
        const float v10 = plane[y1 * w + x0], v11 = plane[y1 * w + x1];
        oplane[y * out_w + x] = (1 - wy) * ((1 - wx) * v00 + wx * v01) +
                                wy * ((1 - wx) * v10 + wx * v11);
      }
    }
  }
  return out;
}

Tensor crop(const Tensor& img, std::int64_t top, std::int64_t left,
            std::int64_t height, std::int64_t width) {
  check_image(img);
  const auto h = img.dim(1), w = img.dim(2);
  CQ_CHECK_MSG(top >= 0 && left >= 0 && height > 0 && width > 0 &&
                   top + height <= h && left + width <= w,
               "crop [" << top << "," << left << "," << height << "," << width
                        << "] outside " << img.shape().str());
  Tensor out(Shape{3, height, width});
  for (std::int64_t c = 0; c < 3; ++c)
    for (std::int64_t y = 0; y < height; ++y) {
      const float* src = img.data() + (c * h + top + y) * w + left;
      float* dst = out.data() + (c * height + y) * width;
      std::copy(src, src + width, dst);
    }
  return out;
}

Tensor hflip(const Tensor& img) {
  check_image(img);
  const auto h = img.dim(1), w = img.dim(2);
  Tensor out(img.shape());
  for (std::int64_t c = 0; c < 3; ++c)
    for (std::int64_t y = 0; y < h; ++y) {
      const float* src = img.data() + (c * h + y) * w;
      float* dst = out.data() + (c * h + y) * w;
      for (std::int64_t x = 0; x < w; ++x) dst[x] = src[w - 1 - x];
    }
  return out;
}

Tensor channel_affine(const Tensor& img, const float scale[3],
                      const float shift[3]) {
  check_image(img);
  const auto plane_size = img.dim(1) * img.dim(2);
  Tensor out = img;
  for (std::int64_t c = 0; c < 3; ++c) {
    float* d = out.data() + c * plane_size;
    for (std::int64_t i = 0; i < plane_size; ++i)
      d[i] = std::clamp(scale[c] * (d[i] - 0.5f) + 0.5f + shift[c], 0.0f, 1.0f);
  }
  return out;
}

Tensor grayscale(const Tensor& img) {
  check_image(img);
  const auto plane_size = img.dim(1) * img.dim(2);
  Tensor out(img.shape());
  const float* r = img.data();
  const float* g = img.data() + plane_size;
  const float* b = img.data() + 2 * plane_size;
  for (std::int64_t i = 0; i < plane_size; ++i) {
    const float v = 0.299f * r[i] + 0.587f * g[i] + 0.114f * b[i];
    out[i] = v;
    out[plane_size + i] = v;
    out[2 * plane_size + i] = v;
  }
  return out;
}

Tensor stack_images(const std::vector<Tensor>& images) {
  CQ_CHECK(!images.empty());
  const auto& s = images.front().shape();
  CQ_CHECK(s.rank() == 3);
  const auto n = static_cast<std::int64_t>(images.size());
  Tensor out(Shape{n, s[0], s[1], s[2]});
  const auto per = s.numel();
  for (std::int64_t i = 0; i < n; ++i) {
    CQ_CHECK_MSG(images[static_cast<std::size_t>(i)].shape() == s,
                 "ragged image stack");
    std::copy(images[static_cast<std::size_t>(i)].data(),
              images[static_cast<std::size_t>(i)].data() + per,
              out.data() + i * per);
  }
  return out;
}

}  // namespace cq::data
