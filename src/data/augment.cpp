#include "data/augment.hpp"

#include <algorithm>
#include <cmath>

#include "core/trace.hpp"
#include "data/image.hpp"
#include "util/check.hpp"

namespace cq::data {

AugmentPipeline::AugmentPipeline(AugmentConfig config) : config_(config) {
  CQ_CHECK(config_.min_crop_scale > 0.0f && config_.min_crop_scale <= 1.0f);
}

Tensor AugmentPipeline::operator()(const Tensor& img, Rng& rng) const {
  if (config_.identity) return img;
  const auto h = img.dim(1), w = img.dim(2);
  Tensor out = img;

  // Random resized crop (area-scale sampling as in SimCLR).
  {
    const float area_scale = static_cast<float>(
        rng.uniform(config_.min_crop_scale, 1.0f));
    const float side = std::sqrt(area_scale);
    const auto ch = std::max<std::int64_t>(
        1, static_cast<std::int64_t>(side * static_cast<float>(h)));
    const auto cw = std::max<std::int64_t>(
        1, static_cast<std::int64_t>(side * static_cast<float>(w)));
    const auto top = static_cast<std::int64_t>(
        rng.uniform_index(static_cast<std::uint64_t>(h - ch + 1)));
    const auto left = static_cast<std::int64_t>(
        rng.uniform_index(static_cast<std::uint64_t>(w - cw + 1)));
    out = resize_bilinear(crop(out, top, left, ch, cw), h, w);
  }

  if (rng.bernoulli(config_.flip_prob)) out = hflip(out);

  if (rng.bernoulli(config_.jitter_prob) && config_.jitter_strength > 0.0f) {
    const float s = config_.jitter_strength;
    const float brightness = static_cast<float>(rng.uniform(-s, s));
    const float contrast = 1.0f + static_cast<float>(rng.uniform(-s, s));
    // Saturation jitter via blending towards grayscale.
    const float sat = static_cast<float>(rng.uniform(0.0, s));
    float scale[3], shift[3];
    for (int c = 0; c < 3; ++c) {
      scale[c] = contrast;
      shift[c] = brightness;
    }
    out = channel_affine(out, scale, shift);
    if (sat > 0.0f) {
      Tensor gray = grayscale(out);
      for (std::int64_t i = 0; i < out.numel(); ++i)
        out[i] = (1.0f - sat) * out[i] + sat * gray[i];
    }
  }

  if (rng.bernoulli(config_.grayscale_prob)) out = grayscale(out);

  if (config_.cutout_prob > 0.0f && rng.bernoulli(config_.cutout_prob)) {
    const auto side = std::max<std::int64_t>(
        1, static_cast<std::int64_t>(config_.cutout_frac *
                                     static_cast<float>(std::min(h, w))));
    const auto top = static_cast<std::int64_t>(
        rng.uniform_index(static_cast<std::uint64_t>(h - side + 1)));
    const auto left = static_cast<std::int64_t>(
        rng.uniform_index(static_cast<std::uint64_t>(w - side + 1)));
    for (std::int64_t c = 0; c < 3; ++c)
      for (std::int64_t y = top; y < top + side; ++y)
        for (std::int64_t x = left; x < left + side; ++x)
          out.at(c, y, x) = 0.5f;
  }

  if (config_.noise_sigma > 0.0f) {
    for (std::int64_t i = 0; i < out.numel(); ++i)
      out[i] = std::clamp(
          out[i] + static_cast<float>(rng.normal(0.0, config_.noise_sigma)),
          0.0f, 1.0f);
  }
  return out;
}

Tensor AugmentPipeline::batch(const Dataset& ds,
                              std::span<const std::int64_t> indices,
                              Rng& rng) const {
  CQ_TRACE_SCOPE_N("augment.batch", indices.size());
  CQ_CHECK(!indices.empty());
  std::vector<Tensor> views;
  views.reserve(indices.size());
  for (auto i : indices) {
    CQ_CHECK(i >= 0 && i < ds.size());
    views.push_back((*this)(ds.images[static_cast<std::size_t>(i)], rng));
  }
  return stack_images(views);
}

AugmentPipeline identity_pipeline() {
  AugmentConfig cfg;
  cfg.identity = true;
  return AugmentPipeline(cfg);
}

}  // namespace cq::data
