// SynthVision: procedural image datasets standing in for CIFAR-100/ImageNet.
//
// Each class is a parametric generator — a shape motif with a class-specific
// palette and texture frequency. Each instance perturbs the generator with
// nuisance parameters (position, scale, rotation, color shift, background,
// noise). Class identity is invariant under crops / flips / color jitter
// while instances differ, which is exactly the structure contrastive
// learning exploits on natural images (see DESIGN.md, substitutions).
#pragma once

#include <cstdint>

#include "data/dataset.hpp"
#include "tensor/tensor.hpp"
#include "util/rng.hpp"

namespace cq::data {

enum class Motif {
  kDisk,
  kRing,
  kSquare,
  kFrame,
  kTriangle,
  kCross,
  kStripesH,
  kStripesV,
  kStripesDiag,
  kChecker,
  kDots,
  kDiamond,
};
inline constexpr int kNumMotifs = 12;

struct ClassDef {
  Motif motif = Motif::kDisk;
  float fg[3] = {1, 1, 1};  // foreground color
  float bg[3] = {0, 0, 0};  // background base color
  float freq = 3.0f;        // texture frequency (stripes/checker/dots)
  float base_scale = 0.35f; // nominal object half-extent in [0,1] coords
};

/// Deterministic class definition: motif, palette, and frequency are all
/// functions of (class_id, dataset seed).
ClassDef make_class_def(int class_id, int num_classes, std::uint64_t seed);

struct InstanceParams {
  float cx = 0.5f, cy = 0.5f;  // object center in [0,1] image coords
  float scale = 1.0f;          // multiplier on base_scale
  float rot = 0.0f;            // radians
  float color_shift[3] = {0, 0, 0};
  float bg_gradient = 0.0f;    // background lighting gradient strength
  float bg_angle = 0.0f;
  float noise_sigma = 0.0f;
};

struct SynthConfig {
  int num_classes = 8;
  std::int64_t height = 16;
  std::int64_t width = 16;
  /// Strength of instance nuisance variation in [0, 1].
  float nuisance = 0.5f;
  std::uint64_t seed = 1;
};

/// The CIFAR-100 stand-in: fewer classes, small images, moderate nuisance.
SynthConfig synth_cifar_config();
/// The ImageNet stand-in: more classes, larger images, strong nuisance —
/// preserves the paper's small-vs-large-dataset contrast.
SynthConfig synth_imagenet_config();

/// Sample instance nuisance parameters.
InstanceParams sample_instance(Rng& rng, float nuisance);

/// Render a full image of the class under the given instance parameters.
Tensor render_instance(const ClassDef& cls, const InstanceParams& inst,
                       std::int64_t height, std::int64_t width, Rng& rng);

/// Axis-aligned pixel bounding box (inclusive-exclusive).
struct PixelBox {
  std::int64_t x0 = 0, y0 = 0, x1 = 0, y1 = 0;
  bool valid() const { return x1 > x0 && y1 > y0; }
};

/// Alpha-blend the class motif onto an existing canvas; returns the tight
/// bounding box of rendered foreground pixels. Used by the detection task.
PixelBox render_onto(Tensor& canvas, const ClassDef& cls,
                     const InstanceParams& inst);

/// Generate a labeled dataset: `count` images with uniformly distributed
/// class labels, deterministic given (config, rng).
Dataset make_synth_dataset(const SynthConfig& config, std::int64_t count,
                           Rng& rng);

}  // namespace cq::data
