// Labeled image dataset and batching.
#pragma once

#include <span>
#include <vector>

#include "tensor/tensor.hpp"
#include "util/rng.hpp"

namespace cq::data {

struct Dataset {
  std::vector<Tensor> images;  // each [3,H,W]
  std::vector<int> labels;     // parallel to images
  int num_classes = 0;

  std::int64_t size() const { return static_cast<std::int64_t>(images.size()); }
  bool empty() const { return images.empty(); }
  /// Throws if images/labels disagree or labels are out of range.
  void validate() const;
};

/// Stratified (per-class) random subset keeping ~fraction of each class, at
/// least one sample per class present in the source. Models the paper's
/// "10% / 1% labeled data" fine-tuning splits.
Dataset subset_fraction(const Dataset& full, double fraction, Rng& rng);

/// Stack the images at `indices` into an [N,3,H,W] batch.
Tensor gather_images(const Dataset& ds, std::span<const std::int64_t> indices);
std::vector<int> gather_labels(const Dataset& ds,
                               std::span<const std::int64_t> indices);

/// Epoch-shuffled minibatch index stream. Drops no samples: the final batch
/// of an epoch may be smaller than batch_size (callers that need pair
/// batches of even size can ask for even batches).
class Batcher {
 public:
  Batcher(std::int64_t dataset_size, std::int64_t batch_size, Rng& rng,
          bool drop_last = false);

  /// Next minibatch of indices; reshuffles and wraps at epoch end.
  std::vector<std::int64_t> next();

  std::int64_t batches_per_epoch() const;

 private:
  void reshuffle();

  std::int64_t dataset_size_;
  std::int64_t batch_size_;
  bool drop_last_;
  Rng* rng_;
  std::vector<std::int64_t> order_;
  std::int64_t cursor_ = 0;
};

}  // namespace cq::data
