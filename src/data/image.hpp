// Image helpers. An image is a Tensor of shape [3, H, W] with values
// (nominally) in [0, 1].
#pragma once

#include "tensor/tensor.hpp"

namespace cq::data {

/// Bilinear resize to [3, out_h, out_w].
Tensor resize_bilinear(const Tensor& img, std::int64_t out_h,
                       std::int64_t out_w);

/// Axis-aligned crop; the region must lie inside the image.
Tensor crop(const Tensor& img, std::int64_t top, std::int64_t left,
            std::int64_t height, std::int64_t width);

/// Horizontal mirror.
Tensor hflip(const Tensor& img);

/// Per-channel affine: out = clamp(scale * (img - 0.5) + 0.5 + shift).
Tensor channel_affine(const Tensor& img, const float scale[3],
                      const float shift[3]);

/// Luma grayscale replicated to 3 channels.
Tensor grayscale(const Tensor& img);

/// Stack a list of [3,H,W] images into [N,3,H,W].
Tensor stack_images(const std::vector<Tensor>& images);

}  // namespace cq::data
