#include "data/synth.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "util/check.hpp"

namespace cq::data {

namespace {

constexpr float kPi = std::numbers::pi_v<float>;

void hsv_to_rgb(float h, float s, float v, float rgb[3]) {
  h = h - std::floor(h);  // wrap hue into [0,1)
  const float c = v * s;
  const float hp = h * 6.0f;
  const float x = c * (1.0f - std::fabs(std::fmod(hp, 2.0f) - 1.0f));
  float r = 0, g = 0, b = 0;
  if (hp < 1) {
    r = c; g = x;
  } else if (hp < 2) {
    r = x; g = c;
  } else if (hp < 3) {
    g = c; b = x;
  } else if (hp < 4) {
    g = x; b = c;
  } else if (hp < 5) {
    r = x; b = c;
  } else {
    r = c; b = x;
  }
  const float m = v - c;
  rgb[0] = r + m;
  rgb[1] = g + m;
  rgb[2] = b + m;
}

float smoothstep(float edge0, float edge1, float x) {
  const float t = std::clamp((x - edge0) / (edge1 - edge0), 0.0f, 1.0f);
  return t * t * (3.0f - 2.0f * t);
}

/// Membership in [0,1] of object-local point (u, v); the object nominally
/// occupies |u|,|v| <= 1. `soft` is the anti-aliasing edge width.
float motif_membership(Motif motif, float u, float v, float freq, float soft) {
  const float r = std::sqrt(u * u + v * v);
  switch (motif) {
    case Motif::kDisk:
      return 1.0f - smoothstep(1.0f - soft, 1.0f + soft, r);
    case Motif::kRing: {
      const float d = std::fabs(r - 0.7f);
      return 1.0f - smoothstep(0.3f - soft, 0.3f + soft, d);
    }
    case Motif::kSquare: {
      const float d = std::max(std::fabs(u), std::fabs(v));
      return 1.0f - smoothstep(1.0f - soft, 1.0f + soft, d);
    }
    case Motif::kFrame: {
      const float d = std::max(std::fabs(u), std::fabs(v));
      const float band = std::fabs(d - 0.75f);
      return 1.0f - smoothstep(0.25f - soft, 0.25f + soft, band);
    }
    case Motif::kTriangle: {
      // Upward triangle: inside when v > -1 and below the two slanted edges.
      const float e0 = v + 1.0f;                     // bottom edge
      const float e1 = 1.0f - (v + 2.0f * u);        // right edge
      const float e2 = 1.0f - (v - 2.0f * u);        // left edge
      const float d = std::min({e0, e1, e2});
      return smoothstep(-soft, soft, d);
    }
    case Motif::kCross: {
      const float arm = 0.35f;
      const float in_v = std::fabs(u) < arm ? 1.0f : 0.0f;
      const float in_h = std::fabs(v) < arm ? 1.0f : 0.0f;
      const float inside =
          (std::max(std::fabs(u), std::fabs(v)) <= 1.0f) ? 1.0f : 0.0f;
      return inside * std::max(in_v, in_h);
    }
    case Motif::kStripesH: {
      if (std::max(std::fabs(u), std::fabs(v)) > 1.0f) return 0.0f;
      return 0.5f + 0.5f * std::sin(freq * kPi * v);
    }
    case Motif::kStripesV: {
      if (std::max(std::fabs(u), std::fabs(v)) > 1.0f) return 0.0f;
      return 0.5f + 0.5f * std::sin(freq * kPi * u);
    }
    case Motif::kStripesDiag: {
      if (std::max(std::fabs(u), std::fabs(v)) > 1.0f) return 0.0f;
      return 0.5f + 0.5f * std::sin(freq * kPi * (u + v) * 0.7071f);
    }
    case Motif::kChecker: {
      if (std::max(std::fabs(u), std::fabs(v)) > 1.0f) return 0.0f;
      const float a = std::sin(freq * kPi * u) * std::sin(freq * kPi * v);
      return a > 0.0f ? 1.0f : 0.0f;
    }
    case Motif::kDots: {
      if (r > 1.0f) return 0.0f;
      const float du = std::fmod(std::fabs(u) * freq, 1.0f) - 0.5f;
      const float dv = std::fmod(std::fabs(v) * freq, 1.0f) - 0.5f;
      const float dd = std::sqrt(du * du + dv * dv);
      return 1.0f - smoothstep(0.3f - soft, 0.3f + soft, dd);
    }
    case Motif::kDiamond: {
      const float d = std::fabs(u) + std::fabs(v);
      return 1.0f - smoothstep(1.0f - soft, 1.0f + soft, d);
    }
  }
  return 0.0f;
}

}  // namespace

ClassDef make_class_def(int class_id, int num_classes, std::uint64_t seed) {
  CQ_CHECK(num_classes > 0 && class_id >= 0 && class_id < num_classes);
  ClassDef def;
  def.motif = static_cast<Motif>(class_id % kNumMotifs);
  // Stateless hash stream for per-class constants.
  std::uint64_t h = seed * 0x9E3779B97F4A7C15ULL +
                    static_cast<std::uint64_t>(class_id) + 1;
  const auto u01 = [&h]() {
    return static_cast<float>(splitmix64(h) >> 11) * 0x1.0p-53f;
  };
  // Spread hues evenly over classes, with a seed-dependent rotation; classes
  // that share a motif (id ±12) get well-separated hues.
  const float hue =
      static_cast<float>(class_id) / static_cast<float>(num_classes) +
      0.37f * u01();
  hsv_to_rgb(hue, 0.75f + 0.2f * u01(), 0.85f, def.fg);
  hsv_to_rgb(hue + 0.45f, 0.35f, 0.30f + 0.15f * u01(), def.bg);
  def.freq = 2.0f + static_cast<float>(class_id / kNumMotifs) +
             1.5f * u01();
  def.base_scale = 0.30f + 0.10f * u01();
  return def;
}

SynthConfig synth_cifar_config() {
  SynthConfig c;
  c.num_classes = 8;
  c.height = c.width = 16;
  c.nuisance = 0.5f;
  c.seed = 101;
  return c;
}

SynthConfig synth_imagenet_config() {
  SynthConfig c;
  c.num_classes = 16;
  c.height = c.width = 24;
  c.nuisance = 0.85f;
  c.seed = 202;
  return c;
}

InstanceParams sample_instance(Rng& rng, float nuisance) {
  CQ_CHECK(nuisance >= 0.0f && nuisance <= 1.0f);
  InstanceParams p;
  p.cx = 0.5f + nuisance * 0.25f * static_cast<float>(rng.uniform(-1, 1));
  p.cy = 0.5f + nuisance * 0.25f * static_cast<float>(rng.uniform(-1, 1));
  p.scale = 1.0f + nuisance * 0.5f * static_cast<float>(rng.uniform(-1, 1));
  p.rot = nuisance * kPi * static_cast<float>(rng.uniform(-0.5, 0.5));
  for (auto& c : p.color_shift)
    c = nuisance * 0.15f * static_cast<float>(rng.uniform(-1, 1));
  p.bg_gradient = nuisance * 0.3f * static_cast<float>(rng.uniform());
  p.bg_angle = static_cast<float>(rng.uniform(0, 2 * kPi));
  p.noise_sigma = nuisance * 0.05f * static_cast<float>(rng.uniform());
  return p;
}

Tensor render_instance(const ClassDef& cls, const InstanceParams& inst,
                       std::int64_t height, std::int64_t width, Rng& rng) {
  CQ_CHECK(height > 0 && width > 0);
  Tensor img(Shape{3, height, width});
  // Background: base color with a lighting gradient.
  const float gx = std::cos(inst.bg_angle), gy = std::sin(inst.bg_angle);
  for (std::int64_t y = 0; y < height; ++y) {
    for (std::int64_t x = 0; x < width; ++x) {
      const float fy = (static_cast<float>(y) + 0.5f) /
                       static_cast<float>(height);
      const float fx = (static_cast<float>(x) + 0.5f) /
                       static_cast<float>(width);
      const float light =
          inst.bg_gradient * ((fx - 0.5f) * gx + (fy - 0.5f) * gy);
      for (std::int64_t c = 0; c < 3; ++c)
        img[(c * height + y) * width + x] =
            std::clamp(cls.bg[c] + light, 0.0f, 1.0f);
    }
  }
  render_onto(img, cls, inst);
  if (inst.noise_sigma > 0.0f) {
    for (std::int64_t i = 0; i < img.numel(); ++i)
      img[i] = std::clamp(
          img[i] + static_cast<float>(rng.normal(0.0, inst.noise_sigma)),
          0.0f, 1.0f);
  }
  return img;
}

PixelBox render_onto(Tensor& canvas, const ClassDef& cls,
                     const InstanceParams& inst) {
  CQ_CHECK(canvas.shape().rank() == 3 && canvas.dim(0) == 3);
  const auto height = canvas.dim(1), width = canvas.dim(2);
  const float half = cls.base_scale * inst.scale;
  CQ_CHECK_MSG(half > 0.0f, "non-positive object scale");
  const float cosr = std::cos(inst.rot), sinr = std::sin(inst.rot);
  const float soft =
      1.5f / (half * static_cast<float>(std::min(height, width)));

  PixelBox box{width, height, 0, 0};
  for (std::int64_t y = 0; y < height; ++y) {
    for (std::int64_t x = 0; x < width; ++x) {
      const float fy =
          (static_cast<float>(y) + 0.5f) / static_cast<float>(height);
      const float fx =
          (static_cast<float>(x) + 0.5f) / static_cast<float>(width);
      // Image -> object coordinates: translate, rotate, scale.
      const float dx = (fx - inst.cx) / half;
      const float dy = (fy - inst.cy) / half;
      const float u = cosr * dx + sinr * dy;
      const float v = -sinr * dx + cosr * dy;
      if (std::max(std::fabs(u), std::fabs(v)) > 1.6f) continue;
      const float m = motif_membership(cls.motif, u, v, cls.freq, soft);
      if (m <= 0.01f) continue;
      for (std::int64_t c = 0; c < 3; ++c) {
        float& px = canvas[(c * height + y) * width + x];
        const float fg =
            std::clamp(cls.fg[c] + inst.color_shift[c], 0.0f, 1.0f);
        px = (1.0f - m) * px + m * fg;
      }
      if (m > 0.5f) {
        box.x0 = std::min(box.x0, x);
        box.y0 = std::min(box.y0, y);
        box.x1 = std::max(box.x1, x + 1);
        box.y1 = std::max(box.y1, y + 1);
      }
    }
  }
  if (!box.valid()) box = PixelBox{};
  return box;
}

Dataset make_synth_dataset(const SynthConfig& config, std::int64_t count,
                           Rng& rng) {
  CQ_CHECK(count > 0);
  Dataset ds;
  ds.num_classes = config.num_classes;
  ds.images.reserve(static_cast<std::size_t>(count));
  ds.labels.reserve(static_cast<std::size_t>(count));
  std::vector<ClassDef> defs;
  defs.reserve(static_cast<std::size_t>(config.num_classes));
  for (int c = 0; c < config.num_classes; ++c)
    defs.push_back(make_class_def(c, config.num_classes, config.seed));
  for (std::int64_t i = 0; i < count; ++i) {
    const int label = static_cast<int>(
        rng.uniform_index(static_cast<std::uint64_t>(config.num_classes)));
    const auto inst = sample_instance(rng, config.nuisance);
    ds.images.push_back(render_instance(defs[static_cast<std::size_t>(label)],
                                        inst, config.height, config.width,
                                        rng));
    ds.labels.push_back(label);
  }
  return ds;
}

}  // namespace cq::data
