// SimCLR-style stochastic augmentation pipeline (paper's Aug_1 / Aug_2).
#pragma once

#include "data/dataset.hpp"
#include "tensor/tensor.hpp"
#include "util/rng.hpp"

namespace cq::data {

struct AugmentConfig {
  // Defaults follow SimCLR's recipe scaled to SynthVision: class identity is
  // carried partly by color, so full-strength SimCLR color augmentation
  // (jitter 0.4 / grayscale 0.2 / crop 0.45) destroys the signal at this
  // image scale — tuned values keep SSL >> random-init (see EXPERIMENTS.md).
  /// Random resized crop: area scale sampled in [min_crop_scale, 1].
  float min_crop_scale = 0.6f;
  float flip_prob = 0.5f;
  /// Color jitter strength (brightness / contrast / saturation half-range).
  float jitter_strength = 0.3f;
  float jitter_prob = 0.8f;
  float grayscale_prob = 0.1f;
  float noise_sigma = 0.02f;
  /// Cutout (DeVries & Taylor): with this probability, a random square of
  /// side cutout_frac * min(H, W) is erased to gray.
  float cutout_prob = 0.0f;
  float cutout_frac = 0.3f;
  /// Disable everything (identity pipeline) — used by CQ-Quant (Sec. 4.5).
  bool identity = false;
};

class AugmentPipeline {
 public:
  explicit AugmentPipeline(AugmentConfig config = {});

  const AugmentConfig& config() const { return config_; }

  /// One stochastic view of `img` (output has the same H, W).
  Tensor operator()(const Tensor& img, Rng& rng) const;

  /// A full augmented batch from dataset rows `indices`.
  Tensor batch(const Dataset& ds, std::span<const std::int64_t> indices,
               Rng& rng) const;

 private:
  AugmentConfig config_;
};

/// The identity pipeline used by CQ-Quant.
AugmentPipeline identity_pipeline();

}  // namespace cq::data
