// Learning-rate schedules. The paper uses cosine decay for both pretraining
// and fine-tuning; warmup is standard for contrastive pretraining.
#pragma once

#include <cstdint>

namespace cq::optim {

class CosineSchedule {
 public:
  /// lr(t) decays from base_lr to final_lr over total_steps, after an
  /// optional linear warmup from 0.
  CosineSchedule(float base_lr, std::int64_t total_steps,
                 std::int64_t warmup_steps = 0, float final_lr = 0.0f);

  float lr_at(std::int64_t step) const;

  std::int64_t total_steps() const { return total_steps_; }

 private:
  float base_lr_;
  std::int64_t total_steps_;
  std::int64_t warmup_steps_;
  float final_lr_;
};

}  // namespace cq::optim
