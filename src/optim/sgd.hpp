// SGD with momentum and decoupled-from-biases weight decay — the optimizer
// the paper uses for pretraining and fine-tuning (momentum 0.9).
#pragma once

#include <vector>

#include "nn/module.hpp"

namespace cq::optim {

struct SgdConfig {
  float lr = 0.1f;
  float momentum = 0.9f;
  float weight_decay = 0.0f;
  /// Gradient-norm clipping threshold; <= 0 disables. (CQ-B in the paper
  /// "suffers from severe gradient explosion"; clipping is intentionally off
  /// by default so that instability is observable.)
  float clip_norm = 0.0f;
};

class Sgd {
 public:
  Sgd(std::vector<nn::Parameter*> params, SgdConfig config);

  /// Apply one update from the accumulated gradients, then zero them.
  void step();

  void set_lr(float lr) { config_.lr = lr; }
  float lr() const { return config_.lr; }
  const SgdConfig& config() const { return config_; }

  /// Global gradient L2 norm of the last step() (before clipping); useful
  /// for divergence diagnostics.
  float last_grad_norm() const { return last_grad_norm_; }

 private:
  std::vector<nn::Parameter*> params_;
  std::vector<Tensor> velocity_;
  SgdConfig config_;
  float last_grad_norm_ = 0.0f;
};

}  // namespace cq::optim
