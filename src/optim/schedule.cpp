#include "optim/schedule.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "util/check.hpp"

namespace cq::optim {

CosineSchedule::CosineSchedule(float base_lr, std::int64_t total_steps,
                               std::int64_t warmup_steps, float final_lr)
    : base_lr_(base_lr),
      total_steps_(total_steps),
      warmup_steps_(warmup_steps),
      final_lr_(final_lr) {
  CQ_CHECK(base_lr > 0.0f && total_steps > 0 && warmup_steps >= 0);
  CQ_CHECK(warmup_steps < total_steps);
  CQ_CHECK(final_lr >= 0.0f && final_lr <= base_lr);
}

float CosineSchedule::lr_at(std::int64_t step) const {
  step = std::clamp<std::int64_t>(step, 0, total_steps_ - 1);
  if (step < warmup_steps_) {
    return base_lr_ * static_cast<float>(step + 1) /
           static_cast<float>(warmup_steps_);
  }
  const float progress =
      static_cast<float>(step - warmup_steps_) /
      static_cast<float>(total_steps_ - warmup_steps_);
  const float cosine =
      0.5f * (1.0f + std::cos(std::numbers::pi_v<float> * progress));
  return final_lr_ + (base_lr_ - final_lr_) * cosine;
}

}  // namespace cq::optim
