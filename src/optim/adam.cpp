#include "optim/adam.hpp"

#include <cmath>

#include "util/check.hpp"

namespace cq::optim {

Adam::Adam(std::vector<nn::Parameter*> params, AdamConfig config)
    : params_(std::move(params)), config_(config) {
  CQ_CHECK(!params_.empty());
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (nn::Parameter* p : params_) {
    m_.push_back(Tensor::zeros(p->value.shape()));
    v_.push_back(Tensor::zeros(p->value.shape()));
  }
}

void Adam::step() {
  ++t_;
  const float bc1 =
      1.0f - std::pow(config_.beta1, static_cast<float>(t_));
  const float bc2 =
      1.0f - std::pow(config_.beta2, static_cast<float>(t_));
  for (std::size_t k = 0; k < params_.size(); ++k) {
    nn::Parameter* p = params_[k];
    const float wd = p->decay ? config_.weight_decay : 0.0f;
    for (std::int64_t i = 0; i < p->value.numel(); ++i) {
      const float g = p->grad[i] + wd * p->value[i];
      m_[k][i] = config_.beta1 * m_[k][i] + (1.0f - config_.beta1) * g;
      v_[k][i] = config_.beta2 * v_[k][i] + (1.0f - config_.beta2) * g * g;
      const float mhat = m_[k][i] / bc1;
      const float vhat = v_[k][i] / bc2;
      p->value[i] -= config_.lr * mhat / (std::sqrt(vhat) + config_.eps);
    }
    p->bump_version();  // invalidate memoized weight transforms
    p->zero_grad();
  }
}

}  // namespace cq::optim
