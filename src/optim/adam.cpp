#include "optim/adam.hpp"

#include <cmath>
#include <utility>

#include "core/trace.hpp"
#include "tensor/kernels/kernels.hpp"
#include "util/check.hpp"

namespace cq::optim {

Adam::Adam(std::vector<nn::Parameter*> params, AdamConfig config)
    : params_(std::move(params)), config_(config) {
  CQ_CHECK(!params_.empty());
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (nn::Parameter* p : params_) {
    m_.push_back(Tensor::zeros(p->value.shape()));
    v_.push_back(Tensor::zeros(p->value.shape()));
  }
}

void Adam::step() {
  CQ_TRACE_SCOPE("optim.adam.step");
  ++t_;
  const float bc1 =
      1.0f - std::pow(config_.beta1, static_cast<float>(t_));
  const float bc2 =
      1.0f - std::pow(config_.beta2, static_cast<float>(t_));
  for (std::size_t k = 0; k < params_.size(); ++k) {
    nn::Parameter* p = params_[k];
    const float wd = p->decay ? config_.weight_decay : 0.0f;
    // Vectorized update; same operation sequence as the historical scalar
    // loop, so trajectories are unchanged.
    kernels::adam_update(p->value.data(), std::as_const(p->grad).data(),
                         m_[k].data(), v_[k].data(), p->value.numel(),
                         config_.lr, config_.beta1, config_.beta2,
                         config_.eps, wd, bc1, bc2);
    p->bump_version();  // invalidate memoized weight transforms
    p->zero_grad();
  }
}

}  // namespace cq::optim
