// Adam (Kingma & Ba, 2015). Used by the detection head and available to
// library users; the paper's pipelines use SGD.
#pragma once

#include <vector>

#include "nn/module.hpp"

namespace cq::optim {

struct AdamConfig {
  float lr = 1e-3f;
  float beta1 = 0.9f;
  float beta2 = 0.999f;
  float eps = 1e-8f;
  float weight_decay = 0.0f;
};

class Adam {
 public:
  Adam(std::vector<nn::Parameter*> params, AdamConfig config);

  void step();

  void set_lr(float lr) { config_.lr = lr; }
  float lr() const { return config_.lr; }

 private:
  std::vector<nn::Parameter*> params_;
  std::vector<Tensor> m_;
  std::vector<Tensor> v_;
  AdamConfig config_;
  std::int64_t t_ = 0;
};

}  // namespace cq::optim
