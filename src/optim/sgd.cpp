#include "optim/sgd.hpp"

#include <cmath>

#include "util/check.hpp"

namespace cq::optim {

Sgd::Sgd(std::vector<nn::Parameter*> params, SgdConfig config)
    : params_(std::move(params)), config_(config) {
  CQ_CHECK(!params_.empty());
  CQ_CHECK(config_.momentum >= 0.0f && config_.momentum < 1.0f);
  velocity_.reserve(params_.size());
  for (nn::Parameter* p : params_)
    velocity_.push_back(Tensor::zeros(p->value.shape()));
}

void Sgd::step() {
  // Global grad norm (for diagnostics and optional clipping).
  double sq = 0.0;
  for (nn::Parameter* p : params_)
    for (std::int64_t i = 0; i < p->grad.numel(); ++i)
      sq += static_cast<double>(p->grad[i]) * p->grad[i];
  last_grad_norm_ = static_cast<float>(std::sqrt(sq));

  float grad_scale = 1.0f;
  if (config_.clip_norm > 0.0f && last_grad_norm_ > config_.clip_norm)
    grad_scale = config_.clip_norm / last_grad_norm_;

  for (std::size_t k = 0; k < params_.size(); ++k) {
    nn::Parameter* p = params_[k];
    Tensor& v = velocity_[k];
    const float wd = p->decay ? config_.weight_decay : 0.0f;
    for (std::int64_t i = 0; i < p->value.numel(); ++i) {
      const float g = grad_scale * p->grad[i] + wd * p->value[i];
      v[i] = config_.momentum * v[i] + g;
      p->value[i] -= config_.lr * v[i];
    }
    p->bump_version();  // invalidate memoized weight transforms
    p->zero_grad();
  }
}

}  // namespace cq::optim
