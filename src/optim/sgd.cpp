#include "optim/sgd.hpp"

#include <cmath>
#include <utility>

#include "core/trace.hpp"
#include "tensor/kernels/kernels.hpp"
#include "util/check.hpp"

namespace cq::optim {

Sgd::Sgd(std::vector<nn::Parameter*> params, SgdConfig config)
    : params_(std::move(params)), config_(config) {
  CQ_CHECK(!params_.empty());
  CQ_CHECK(config_.momentum >= 0.0f && config_.momentum < 1.0f);
  velocity_.reserve(params_.size());
  for (nn::Parameter* p : params_)
    velocity_.push_back(Tensor::zeros(p->value.shape()));
}

void Sgd::step() {
  CQ_TRACE_SCOPE("optim.sgd.step");
  // Global grad norm (for diagnostics and optional clipping). Double
  // accumulation kept: the clip threshold comparison is sensitive and this
  // pass is cheap relative to the updates.
  double sq = 0.0;
  for (nn::Parameter* p : params_) {
    const float* g = std::as_const(p->grad).data();
    const auto n = p->grad.numel();
    for (std::int64_t i = 0; i < n; ++i)
      sq += static_cast<double>(g[i]) * g[i];
  }
  last_grad_norm_ = static_cast<float>(std::sqrt(sq));

  float grad_scale = 1.0f;
  if (config_.clip_norm > 0.0f && last_grad_norm_ > config_.clip_norm)
    grad_scale = config_.clip_norm / last_grad_norm_;

  for (std::size_t k = 0; k < params_.size(); ++k) {
    nn::Parameter* p = params_[k];
    Tensor& v = velocity_[k];
    const float wd = p->decay ? config_.weight_decay : 0.0f;
    // Vectorized update; same operation sequence as the historical scalar
    // loop, so trajectories are unchanged.
    kernels::sgd_update(p->value.data(), std::as_const(p->grad).data(),
                        v.data(), p->value.numel(), config_.lr,
                        config_.momentum, wd, grad_scale);
    p->bump_version();  // invalidate memoized weight transforms
    p->zero_grad();
  }
}

}  // namespace cq::optim
