#include "quant/actquant.hpp"

namespace cq::quant {

Tensor ActQuant::forward(const Tensor& x) {
  const auto& qconfig = policy_->quantizer().config();
  const bool needs_mask = qconfig.range == RangeMode::kPercentile &&
                          qconfig.perturb == PerturbMode::kQuantize;
  std::vector<std::uint8_t> mask;
  Tensor y = x;
  if (policy_->active()) {
    y = needs_mask ? policy_->quantizer().quantize(x, policy_->bits(), &mask)
                   : policy_->transform(x);
  }
  if (mode() == nn::Mode::kTrain) {
    if (!policy_->active() || !needs_mask) mask.clear();
    masks_.push_back(std::move(mask));
  }
  return y;
}

Tensor ActQuant::backward(const Tensor& grad_out) {
  CQ_CHECK_MSG(!masks_.empty(), "actquant backward without matching forward");
  std::vector<std::uint8_t> mask = std::move(masks_.back());
  masks_.pop_back();
  if (mask.empty()) return grad_out;  // pure straight-through
  CQ_CHECK(static_cast<std::size_t>(grad_out.numel()) == mask.size());
  Tensor g = grad_out;
  for (std::int64_t i = 0; i < g.numel(); ++i)
    if (mask[static_cast<std::size_t>(i)] == 0) g[i] = 0.0f;
  return g;
}

}  // namespace cq::quant
