// Linear quantizer (paper Eq. 10):
//
//   A_q = S_a * round(A / S_a),   S_a = A_range / (2^q - 1)
//
// where A_range is the dynamic range (max - min) of the tensor. The paper
// prints a floor in Eq. 10; standard linear quantizers (Jacob et al., the
// paper's reference [5]) round to nearest, so rounding is configurable and
// kNearest is the default. bits >= 32 (or a non-finite range) is identity.
//
// RangeMode::kPercentile is an ablation: the range is taken between the
// (1-p) and p quantiles and values outside are clamped, which makes the
// straight-through estimator mask gradients at clamped positions.
#pragma once

#include <cstdint>

#include "tensor/gemm.hpp"
#include "tensor/tensor.hpp"

namespace cq::quant {

enum class RoundingMode { kNearest, kFloor };
enum class RangeMode { kMinMax, kPercentile };

/// What "augmenting at q bits" injects (paper Sec. 4 "Insights" suggests
/// exploring other weight/activation perturbations beyond quantization):
///  kQuantize — Eq. 10 deterministic fake quantization (the paper's CQ);
///  kGaussian — additive Gaussian noise with sigma = S_a / 2, i.e. noise of
///              the same magnitude a q-bit quantizer would inject ("CQ-Noise"
///              extension).
enum class PerturbMode { kQuantize, kGaussian };

struct QuantizerConfig {
  RoundingMode rounding = RoundingMode::kNearest;
  RangeMode range = RangeMode::kMinMax;
  /// Quantile used in kPercentile mode (range = q(p) - q(1-p)).
  double percentile = 0.999;
  PerturbMode perturb = PerturbMode::kQuantize;
};

/// Identity threshold: bit-widths at or above this are treated as "full
/// precision" and left untouched.
inline constexpr int kFullPrecisionBits = 32;

class LinearQuantizer {
 public:
  explicit LinearQuantizer(QuantizerConfig config = {});

  const QuantizerConfig& config() const { return config_; }

  /// The dynamic range [lo, hi] the quantizer would use for `a`.
  struct Range {
    float lo = 0.0f;
    float hi = 0.0f;
    float width() const { return hi - lo; }
  };
  Range dynamic_range(const Tensor& a) const;

  /// Step size S_a for the given tensor and bit-width.
  float step_size(const Tensor& a, int bits) const;

  /// The full affine-quantizer parameters for `a` at `bits` — one range pass
  /// plus the Eq. 10 step. The returned spec drives kernels::quantize and the
  /// GEMM quantize-on-pack path interchangeably (both evaluate
  /// gemm::quantize_value element-wise, so the results are bit-identical to
  /// quantize()). Identity (spec.identity == true) for full precision or
  /// zero/non-finite range.
  gemm::QuantSpec make_spec(const Tensor& a, int bits) const;

  /// Quantize a copy of `a` to `bits` bits. If `clip_mask_out` is non-null it
  /// is resized to a.numel() and set to 1 where the value passed through the
  /// (possibly clamped) quantizer unclipped, 0 where it was clamped — the STE
  /// uses this in kPercentile mode.
  Tensor quantize(const Tensor& a, int bits,
                  std::vector<std::uint8_t>* clip_mask_out = nullptr) const;

  /// Additive Gaussian perturbation matched to the q-bit step size:
  /// out = a + N(0, (S_a / 2)^2). Identity at full precision.
  Tensor perturb_gaussian(const Tensor& a, int bits, Rng& rng) const;

 private:
  QuantizerConfig config_;
};

}  // namespace cq::quant
