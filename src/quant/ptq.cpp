#include "quant/ptq.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "core/losses.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"
#include "util/serialize.hpp"

namespace cq::quant {

namespace {

/// Rows [begin, end) of a [N, D] matrix, copied.
Tensor slice_rows(const Tensor& m, std::int64_t begin, std::int64_t end) {
  const std::int64_t d = m.dim(1);
  Tensor out(Shape{end - begin, d});
  std::copy(m.data() + begin * d, m.data() + end * d, out.data());
  return out;
}

/// Cross-view InfoNCE between the plan's current quantized embeddings and
/// the frozen fp32 references: anchor zq[i], positive zfp[i], negatives the
/// whole fp32 batch (`queue` = L2-normalized zfp). Deliberately NOT the
/// symmetric NT-Xent: its intra-view (q-q, fp-fp) terms let the search lower
/// the loss by spreading the quantized embeddings apart — a uniformity win
/// with zero alignment to the fp32 geometry retrieval consumes. The
/// one-sided form is exactly "does zq[i] still rank zfp[i] first", which is
/// the neighbor structure recall@k measures.
///
/// The loss is reported split over the two halves of the batch (fit/holdout
/// — see the accept rule in calibrate()); both halves share the full-batch
/// negative queue.
struct SplitLoss {
  float fit = 0.0f;
  float holdout = 0.0f;
};

SplitLoss quantized_loss(graph::CompiledModel& qm, const Tensor& calib,
                         const Tensor& zfp, const Tensor& queue,
                         std::int64_t split, float tau) {
  const Tensor& zq = qm.forward(calib);
  const std::int64_t n = zq.dim(0);
  SplitLoss loss;
  loss.fit = core::info_nce_queue(slice_rows(zq, 0, split),
                                  slice_rows(zfp, 0, split), queue, tau)
                 .value;
  loss.holdout = core::info_nce_queue(slice_rows(zq, split, n),
                                      slice_rows(zfp, split, n), queue, tau)
                     .value;
  return loss;
}

/// Per-anchor average over the whole batch (the two halves re-weighted).
float combined(const SplitLoss& loss, std::int64_t split, std::int64_t n) {
  return (loss.fit * static_cast<float>(split) +
          loss.holdout * static_cast<float>(n - split)) /
         static_cast<float>(n);
}

}  // namespace

Tensor l2_normalize_rows(const Tensor& features) {
  CQ_CHECK_MSG(features.shape().rank() == 2,
               "l2_normalize_rows expects [N, D], got "
                   << features.shape().str());
  const std::int64_t n = features.dim(0), d = features.dim(1);
  Tensor out = Tensor::empty(features.shape());
  for (std::int64_t i = 0; i < n; ++i) {
    const float* src = features.data() + i * d;
    float* dst = out.data() + i * d;
    double sq = 0.0;
    for (std::int64_t j = 0; j < d; ++j)
      sq += static_cast<double>(src[j]) * src[j];
    const float inv =
        sq > 0.0 ? 1.0f / static_cast<float>(std::sqrt(sq)) : 0.0f;
    for (std::int64_t j = 0; j < d; ++j) dst[j] = src[j] * inv;
  }
  return out;
}

PtqResult calibrate(graph::CompiledModel& qm, const Tensor& calib,
                    const Tensor& zfp, const PtqConfig& config) {
  const std::int64_t n = calib.dim(0);
  CQ_CHECK_MSG(n >= 2, "PTQ calibration needs >= 2 samples for negatives");
  CQ_CHECK_MSG(n <= qm.max_batch(), "calibration batch "
                                        << n << " exceeds plan max_batch "
                                        << qm.max_batch());
  CQ_CHECK_MSG(zfp.shape().rank() == 2 && zfp.dim(0) == n,
               "fp32 reference embeddings must be [N, D] matching the "
               "calibration batch");
  CQ_CHECK(config.rounds >= 1 && config.candidates >= 1 &&
           config.spread > 0.0f && config.tau > 0.0f &&
           config.min_rel_improvement >= 0.0f);
  const auto nodes = qm.int8_nodes();
  CQ_CHECK_MSG(!nodes.empty(),
               "PTQ calibration on a plan with no int8 nodes — compile with "
               "Precision::kInt8");

  Rng rng(config.seed);
  PtqResult result;
  const Tensor queue = l2_normalize_rows(zfp);
  const std::int64_t split = n / 2;
  SplitLoss cur = quantized_loss(qm, calib, zfp, queue, split, config.tau);
  result.initial_loss = combined(cur, split, n);

  // Coordinate-descent sweeps: one layer at a time, jitter the layer's
  // scale vector by ONE multiplicative factor (the per-channel min-max
  // *shape* is kept; only the layer's operating point moves — shrinking it
  // clips outliers, growing it buys range), keep the proposal only if the
  // contrastive loss drops (CPT-V's evolutionary-search accept rule, with a
  // fixed proposal stream so the accepted table is seed-deterministic).
  //
  // Two deliberate guards against overfitting the calibration batch — at
  // int8 the min-max scales are already close to optimal, so the loss
  // landscape is dominated by noise and an unguarded greedy search happily
  // accepts "improvements" that hurt held-out retrieval:
  //   * one scalar per layer, not per channel (dimensionality);
  //   * a proposal must lower the loss on BOTH halves of the batch — noise
  //     that fits one half does not survive the other;
  //   * each half's drop must clear min_rel_improvement — sub-noise "wins"
  //     are kept out, so a near-optimal starting point stays put.
  const float keep = 1.0f - config.min_rel_improvement;
  std::vector<float> proposal;
  for (int round = 0; round < config.rounds; ++round) {
    for (std::size_t idx : nodes) {
      std::vector<float> best = qm.node_scales(idx);
      proposal.resize(best.size());
      for (int cand = 0; cand < config.candidates; ++cand) {
        const auto jitter = static_cast<float>(
            rng.uniform(-config.spread, config.spread));
        for (std::size_t c = 0; c < best.size(); ++c)
          proposal[c] = best[c] * (1.0f + jitter);
        qm.requantize_node(idx, proposal);
        const SplitLoss trial =
            quantized_loss(qm, calib, zfp, queue, split, config.tau);
        ++result.proposed;
        if (trial.fit < cur.fit * keep && trial.holdout < cur.holdout * keep) {
          cur = trial;
          best = proposal;
          ++result.accepted;
        } else {
          qm.requantize_node(idx, best);  // roll back
        }
      }
    }
  }
  result.final_loss = combined(cur, split, n);

  for (std::size_t idx : nodes) {
    result.table.labels.push_back(qm.graph().nodes[idx].label);
    result.table.scales.push_back(qm.node_scales(idx));
  }
  return result;
}

void apply(graph::CompiledModel& qm, const ScaleTable& table) {
  CQ_CHECK(table.labels.size() == table.scales.size());
  const auto nodes = qm.int8_nodes();
  for (std::size_t e = 0; e < table.labels.size(); ++e) {
    bool found = false;
    for (std::size_t idx : nodes) {
      if (qm.graph().nodes[idx].label != table.labels[e]) continue;
      qm.requantize_node(idx, table.scales[e]);
      found = true;
      break;
    }
    CQ_CHECK_MSG(found, "scale table entry '" << table.labels[e]
                            << "' matches no int8 node in the plan");
  }
}

void ScaleTable::save(const std::string& path) const {
  CQ_CHECK(labels.size() == scales.size());
  BinaryWriter w(path);
  write_checkpoint_header(w);
  w.write_u64(labels.size());
  for (std::size_t i = 0; i < labels.size(); ++i) {
    w.write_string(labels[i]);
    w.write_f32_array(scales[i]);
  }
  w.close();
}

ScaleTable ScaleTable::load(const std::string& path) {
  BinaryReader r(path);
  read_checkpoint_header(r);
  ScaleTable t;
  const auto count = r.read_u64();
  for (std::uint64_t i = 0; i < count; ++i) {
    t.labels.push_back(r.read_string());
    t.scales.push_back(r.read_f32_array());
  }
  r.expect_eof();
  return t;
}

}  // namespace cq::quant
