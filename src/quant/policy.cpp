#include "quant/policy.hpp"

#include <sstream>

#include "core/trace.hpp"
#include "tensor/kernels/kernels.hpp"
#include "util/check.hpp"

namespace cq::quant {

Tensor QuantPolicy::transform(const Tensor& a) const {
  if (!active()) return a;
  if (quantizer_.config().perturb == PerturbMode::kGaussian)
    return quantizer_.perturb_gaussian(a, bits_, noise_rng_);
  return quantizer_.quantize(a, bits_);
}

FakeQuantWeight::Slot& FakeQuantWeight::lookup(
    const nn::Parameter& weight) const {
  const int bits = policy_->bits();
  for (Slot& s : slots_) {
    if (s.param == &weight && s.bits == bits && s.version == weight.version) {
      CQ_PROF_COUNT("quant.weight.memo_hit");
      return s;
    }
  }
  // Miss: one range/scale pass over the master weight.
  CQ_PROF_COUNT("quant.weight.memo_miss");
  ++quantizer_calls_;
  gemm::QuantSpec spec = policy_->quantizer().make_spec(weight.value, bits);
  // Evict the slot whose cached bits match (stale version) or, failing
  // that, slot 0 — branch orders visit precisions in runs, so LRU subtleties
  // don't matter.
  Slot* victim = &slots_[0];
  for (Slot& s : slots_) {
    if (s.param == nullptr || (s.param == &weight && s.bits == bits)) {
      victim = &s;
      break;
    }
    if (s.param == &weight && s.version != weight.version) victim = &s;
  }
  *victim = Slot{&weight, bits, weight.version, spec, Tensor{}, false};
  return *victim;
}

std::optional<gemm::QuantSpec> FakeQuantWeight::pack_spec(
    const nn::Parameter& weight) const {
  if (!policy_->active()) return std::nullopt;
  // Stochastic perturbation cannot be folded into packing: every branch must
  // draw fresh noise, so layers fall back to apply().
  if (policy_->quantizer().config().perturb == PerturbMode::kGaussian)
    return std::nullopt;
  return lookup(weight).spec;
}

Tensor FakeQuantWeight::apply(const nn::Parameter& weight) const {
  CQ_TRACE_SCOPE_BYTES("quant.weight.apply",
                       weight.value.numel() * sizeof(float));
  if (!policy_->active()) return weight.value;
  // Stochastic perturbation must stay fresh per branch; bypass the cache.
  if (policy_->quantizer().config().perturb == PerturbMode::kGaussian) {
    ++quantizer_calls_;
    return policy_->transform(weight.value);
  }
  Slot& s = lookup(weight);
  if (!s.has_value) {
    // Materialize lazily from the cached spec (no extra quantizer call);
    // identity specs share the master weight via copy-on-write.
    if (s.spec.identity) {
      s.value = weight.value;
    } else {
      Tensor q = weight.value;
      float* d = q.data();
      kernels::quantize(d, d, q.numel(), s.spec);
      s.value = std::move(q);
    }
    s.has_value = true;
  }
  return s.value;
}

PrecisionSet::PrecisionSet(std::vector<int> bits) : bits_(std::move(bits)) {
  for (int b : bits_) CQ_CHECK_MSG(b >= 1, "invalid bit-width " << b);
}

PrecisionSet PrecisionSet::range(int lo, int hi) {
  CQ_CHECK(lo >= 1 && lo <= hi);
  std::vector<int> bits;
  bits.reserve(static_cast<std::size_t>(hi - lo + 1));
  for (int b = lo; b <= hi; ++b) bits.push_back(b);
  return PrecisionSet(std::move(bits));
}

int PrecisionSet::sample(Rng& rng) const {
  CQ_CHECK(!bits_.empty());
  return bits_[rng.uniform_index(bits_.size())];
}

std::pair<int, int> PrecisionSet::sample_pair(Rng& rng, bool distinct) const {
  CQ_CHECK(!bits_.empty());
  const int q1 = sample(rng);
  if (!distinct || bits_.size() < 2) return {q1, sample(rng)};
  int q2 = q1;
  while (q2 == q1) q2 = sample(rng);
  return {q1, q2};
}

std::string PrecisionSet::str() const {
  if (bits_.empty()) return "{}";
  // Contiguous ranges print as "lo-hi" to match the paper's notation.
  bool contiguous = true;
  for (std::size_t i = 1; i < bits_.size(); ++i)
    if (bits_[i] != bits_[i - 1] + 1) contiguous = false;
  std::ostringstream os;
  if (contiguous && bits_.size() > 1) {
    os << bits_.front() << "-" << bits_.back();
  } else {
    os << "{";
    for (std::size_t i = 0; i < bits_.size(); ++i) {
      if (i) os << ",";
      os << bits_[i];
    }
    os << "}";
  }
  return os.str();
}

}  // namespace cq::quant
