// ActQuant: fake-quantization of intermediate activations.
//
// Forward quantizes the activation tensor at the policy's current bit-width;
// backward is a straight-through estimator (identity), masked at clamped
// positions when the quantizer uses percentile clipping.
#pragma once

#include <memory>

#include "nn/module.hpp"
#include "quant/policy.hpp"

namespace cq::quant {

class ActQuant : public nn::Module {
 public:
  explicit ActQuant(std::shared_ptr<const QuantPolicy> policy)
      : policy_(std::move(policy)) {}

  const char* type_name() const override { return "ActQuant"; }
  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;
  std::size_t pending_caches() const override { return masks_.size(); }

 protected:
  void on_clear_cache() override { masks_.clear(); }

 private:
  std::shared_ptr<const QuantPolicy> policy_;
  // One entry per training forward; empty mask vector == no clipping.
  std::vector<std::vector<std::uint8_t>> masks_;
};

}  // namespace cq::quant
