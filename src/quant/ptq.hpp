// CPT-V-style contrastive post-training quantization (Frumkin et al.; see
// PAPERS.md): calibrate the per-output-channel weight scales of a compiled
// int8 plan WITHOUT backprop, by perturbing one layer's scales at a time
// and accepting a proposal only when it lowers the InfoNCE loss between the
// quantized embeddings and the frozen fp32 embeddings over a calibration
// batch. The contrastive objective — each calibration sample's fp32
// embedding is the positive, every other sample's the negatives — directly
// preserves the *relative geometry* retrieval consumes, where a plain MSE
// objective would spend its budget on absolute coordinates.
//
// The loop drives graph::CompiledModel::requantize_node, so the accepted
// scales land on the exact igemm deploy path serving runs; the emitted
// ScaleTable re-applies byte-identically to any plan compiled from the same
// checkpoint (label-matched), including serve::ModelInstance::compiled().
//
// Everything is deterministic from PtqConfig::seed: fixed proposal stream,
// bitwise-reproducible forwards (the executor's thread-invariance contract),
// therefore byte-identical scale tables run to run (tests/test_ptq.cpp).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/executor.hpp"
#include "tensor/tensor.hpp"

namespace cq::quant {

struct PtqConfig {
  int rounds = 2;        // full sweeps over the int8 layers
  int candidates = 6;    // scale proposals per layer per sweep
  float spread = 0.15f;  // per-layer jitter: scales *= (1 + U(-spread, spread))
  float tau = 0.2f;      // InfoNCE temperature (paper Eq. 1 form)
  /// A proposal must beat the incumbent loss by this relative margin on
  /// BOTH halves of the calibration batch. Near an already-good operating
  /// point (per-channel min-max at int8) the loss differences are noise;
  /// without the margin the greedy search accepts them and drifts away
  /// from the optimum. Real headroom (e.g. a per-tensor starting point)
  /// clears the margin easily.
  float min_rel_improvement = 1e-3f;
  std::uint64_t seed = 0x517ac5ULL;
};

/// Accepted per-output-channel scales for every int8 node, label-keyed, in
/// execution order. The on-disk form (save/load) is the checkpoint binary
/// format with a record count, so foreign/truncated files fail loudly.
struct ScaleTable {
  std::vector<std::string> labels;
  std::vector<std::vector<float>> scales;

  void save(const std::string& path) const;
  static ScaleTable load(const std::string& path);
};

struct PtqResult {
  ScaleTable table;
  float initial_loss = 0.0f;  // InfoNCE at the min-max scales
  float final_loss = 0.0f;    // after calibration
  int proposed = 0;
  int accepted = 0;
};

/// L2-normalize each row of a [N, D] feature matrix (copy). The calibration
/// loss and the recall study both compare in cosine space.
Tensor l2_normalize_rows(const Tensor& features);

/// Calibrate `qm` (an int8-lowered compiled plan) against frozen fp32
/// reference embeddings `zfp` ([N, D], rows matching `calib`'s samples) over
/// the calibration batch `calib` ([N, ...sample dims], N >= 2, N <=
/// qm.max_batch()). Mutates qm's quantization state in place (accepted
/// proposals stay applied; rejected ones are rolled back) and returns the
/// accepted scale table plus the loss trajectory.
PtqResult calibrate(graph::CompiledModel& qm, const Tensor& calib,
                    const Tensor& zfp, const PtqConfig& config);

/// Re-apply a calibrated table to a plan compiled from the same checkpoint:
/// every table entry must match an int8 node by label and channel count.
void apply(graph::CompiledModel& qm, const ScaleTable& table);

}  // namespace cq::quant
