#include "quant/quantizer.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "tensor/ops.hpp"
#include "util/check.hpp"

namespace cq::quant {

LinearQuantizer::LinearQuantizer(QuantizerConfig config) : config_(config) {
  CQ_CHECK(config_.percentile > 0.5 && config_.percentile <= 1.0);
}

LinearQuantizer::Range LinearQuantizer::dynamic_range(const Tensor& a) const {
  Range r;
  if (config_.range == RangeMode::kMinMax) {
    r.lo = ops::min(a);
    r.hi = ops::max(a);
    return r;
  }
  // Percentile clipping: take the (1-p) and p quantiles.
  const auto n = a.numel();
  std::vector<float> sorted(a.data(), a.data() + n);
  const auto lo_idx = static_cast<std::int64_t>(
      (1.0 - config_.percentile) * static_cast<double>(n - 1));
  const auto hi_idx = static_cast<std::int64_t>(
      config_.percentile * static_cast<double>(n - 1));
  std::nth_element(sorted.begin(), sorted.begin() + lo_idx, sorted.end());
  r.lo = sorted[static_cast<std::size_t>(lo_idx)];
  std::nth_element(sorted.begin(), sorted.begin() + hi_idx, sorted.end());
  r.hi = sorted[static_cast<std::size_t>(hi_idx)];
  if (r.lo > r.hi) std::swap(r.lo, r.hi);
  return r;
}

float LinearQuantizer::step_size(const Tensor& a, int bits) const {
  CQ_CHECK_MSG(bits >= 1, "bit-width must be >= 1");
  if (bits >= kFullPrecisionBits) return 0.0f;
  const auto r = dynamic_range(a);
  const double levels = std::pow(2.0, bits) - 1.0;
  return static_cast<float>(static_cast<double>(r.width()) / levels);
}

Tensor LinearQuantizer::quantize(
    const Tensor& a, int bits,
    std::vector<std::uint8_t>* clip_mask_out) const {
  CQ_CHECK_MSG(bits >= 1, "bit-width must be >= 1");
  if (clip_mask_out != nullptr)
    clip_mask_out->assign(static_cast<std::size_t>(a.numel()), 1);
  if (bits >= kFullPrecisionBits) return a;

  const auto r = dynamic_range(a);
  const double width = static_cast<double>(r.hi) - r.lo;
  if (!(width > 0.0) || !std::isfinite(width)) return a;  // constant tensor

  const double levels = std::pow(2.0, bits) - 1.0;
  const float s = static_cast<float>(width / levels);
  const float inv_s = 1.0f / s;
  const bool clip = config_.range == RangeMode::kPercentile;

  Tensor out = a;
  float* d = out.data();
  const auto n = out.numel();
  if (config_.rounding == RoundingMode::kNearest) {
    for (std::int64_t i = 0; i < n; ++i) {
      float v = d[i];
      if (clip) {
        const float c = std::clamp(v, r.lo, r.hi);
        if (clip_mask_out != nullptr && c != v)
          (*clip_mask_out)[static_cast<std::size_t>(i)] = 0;
        v = c;
      }
      d[i] = s * std::nearbyint(v * inv_s);
    }
  } else {
    for (std::int64_t i = 0; i < n; ++i) {
      float v = d[i];
      if (clip) {
        const float c = std::clamp(v, r.lo, r.hi);
        if (clip_mask_out != nullptr && c != v)
          (*clip_mask_out)[static_cast<std::size_t>(i)] = 0;
        v = c;
      }
      d[i] = s * std::floor(v * inv_s);
    }
  }
  return out;
}

Tensor LinearQuantizer::perturb_gaussian(const Tensor& a, int bits,
                                         Rng& rng) const {
  CQ_CHECK_MSG(bits >= 1, "bit-width must be >= 1");
  if (bits >= kFullPrecisionBits) return a;
  const float s = step_size(a, bits);
  if (!(s > 0.0f) || !std::isfinite(s)) return a;
  const float sigma = 0.5f * s;
  Tensor out = a;
  for (std::int64_t i = 0; i < out.numel(); ++i)
    out[i] += static_cast<float>(rng.normal(0.0, sigma));
  return out;
}

}  // namespace cq::quant
