#include "quant/quantizer.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "tensor/kernels/kernels.hpp"
#include "tensor/ops.hpp"
#include "util/check.hpp"

namespace cq::quant {

LinearQuantizer::LinearQuantizer(QuantizerConfig config) : config_(config) {
  CQ_CHECK(config_.percentile > 0.5 && config_.percentile <= 1.0);
}

LinearQuantizer::Range LinearQuantizer::dynamic_range(const Tensor& a) const {
  Range r;
  if (config_.range == RangeMode::kMinMax) {
    if (a.numel() == 0) {  // empty: preserve the historical inf/-inf bounds
      r.lo = std::numeric_limits<float>::infinity();
      r.hi = -std::numeric_limits<float>::infinity();
      return r;
    }
    kernels::minmax(a.data(), a.numel(), &r.lo, &r.hi);  // one fused pass
    return r;
  }
  // Percentile clipping: take the (1-p) and p quantiles.
  const auto n = a.numel();
  std::vector<float> sorted(a.data(), a.data() + n);
  const auto lo_idx = static_cast<std::int64_t>(
      (1.0 - config_.percentile) * static_cast<double>(n - 1));
  const auto hi_idx = static_cast<std::int64_t>(
      config_.percentile * static_cast<double>(n - 1));
  std::nth_element(sorted.begin(), sorted.begin() + lo_idx, sorted.end());
  r.lo = sorted[static_cast<std::size_t>(lo_idx)];
  std::nth_element(sorted.begin(), sorted.begin() + hi_idx, sorted.end());
  r.hi = sorted[static_cast<std::size_t>(hi_idx)];
  if (r.lo > r.hi) std::swap(r.lo, r.hi);
  return r;
}

float LinearQuantizer::step_size(const Tensor& a, int bits) const {
  CQ_CHECK_MSG(bits >= 1, "bit-width must be >= 1");
  if (bits >= kFullPrecisionBits) return 0.0f;
  const auto r = dynamic_range(a);
  const double levels = std::pow(2.0, bits) - 1.0;
  return static_cast<float>(static_cast<double>(r.width()) / levels);
}

gemm::QuantSpec LinearQuantizer::make_spec(const Tensor& a, int bits) const {
  CQ_CHECK_MSG(bits >= 1, "bit-width must be >= 1");
  gemm::QuantSpec q;  // identity by default
  if (bits >= kFullPrecisionBits) return q;

  const auto r = dynamic_range(a);
  const double width = static_cast<double>(r.hi) - r.lo;
  if (!(width > 0.0) || !std::isfinite(width)) return q;  // constant tensor

  const double levels = std::pow(2.0, bits) - 1.0;
  q.step = static_cast<float>(width / levels);
  q.inv_step = 1.0f / q.step;
  q.lo = r.lo;
  q.hi = r.hi;
  q.clip = config_.range == RangeMode::kPercentile;
  q.nearest = config_.rounding == RoundingMode::kNearest;
  q.identity = false;
  return q;
}

Tensor LinearQuantizer::quantize(
    const Tensor& a, int bits,
    std::vector<std::uint8_t>* clip_mask_out) const {
  if (clip_mask_out != nullptr)
    clip_mask_out->assign(static_cast<std::size_t>(a.numel()), 1);
  const gemm::QuantSpec q = make_spec(a, bits);
  if (q.identity) return a;

  Tensor out = a;
  float* d = out.data();
  if (clip_mask_out != nullptr)
    kernels::quantize_masked(d, d, out.numel(), q, clip_mask_out->data());
  else
    kernels::quantize(d, d, out.numel(), q);
  return out;
}

Tensor LinearQuantizer::perturb_gaussian(const Tensor& a, int bits,
                                         Rng& rng) const {
  CQ_CHECK_MSG(bits >= 1, "bit-width must be >= 1");
  if (bits >= kFullPrecisionBits) return a;
  const float s = step_size(a, bits);
  if (!(s > 0.0f) || !std::isfinite(s)) return a;
  const float sigma = 0.5f * s;
  Tensor out = a;
  for (std::int64_t i = 0; i < out.numel(); ++i)
    out[i] += static_cast<float>(rng.normal(0.0, sigma));
  return out;
}

}  // namespace cq::quant
