// QuantPolicy — the shared "current bit-width" knob of a quantized encoder —
// and PrecisionSet, the pool CQ samples (q1, q2) from each iteration.
#pragma once

#include <memory>
#include <utility>
#include <vector>

#include "nn/module.hpp"
#include "quant/quantizer.hpp"
#include "util/rng.hpp"

namespace cq::quant {

/// Shared by every quant-aware layer of one encoder. Setting the bit-width
/// here switches the whole encoder: F_q(x, theta_q) in the paper's Eq. 4.
class QuantPolicy {
 public:
  explicit QuantPolicy(QuantizerConfig config = {})
      : quantizer_(config) {}

  /// Current bit-width; >= kFullPrecisionBits means full precision.
  int bits() const { return bits_; }
  void set_bits(int bits) { bits_ = bits; }
  /// Convenience: full precision.
  void set_full_precision() { bits_ = kFullPrecisionBits; }

  bool enabled() const { return enabled_; }
  void set_enabled(bool enabled) { enabled_ = enabled; }

  /// Whether quantization currently changes anything.
  bool active() const { return enabled_ && bits_ < kFullPrecisionBits; }

  const LinearQuantizer& quantizer() const { return quantizer_; }

  /// Apply the configured perturbation (Eq. 10 fake quantization, or the
  /// magnitude-matched Gaussian of PerturbMode::kGaussian) at the current
  /// bit-width. Identity when inactive. The noise stream is internal and
  /// deterministic per policy instance (seeded at construction).
  Tensor transform(const Tensor& a) const;

 private:
  LinearQuantizer quantizer_;
  int bits_ = kFullPrecisionBits;
  bool enabled_ = true;
  mutable Rng noise_rng_{0xC0FFEEULL};
};

/// WeightTransform that fake-quantizes layer weights at the policy's current
/// bit-width. Installed on Conv2d / Linear layers; the layers implement the
/// straight-through estimator by applying the effective-weight gradient to
/// the fp32 master weight.
///
/// Results are memoized per (parameter, bits, parameter version): CQ-B/CQ-C
/// push 4 branches at 2 precisions through the same encoder each iteration,
/// so without memoization every weight is re-examined 4x per step. Two slots
/// cover the two precisions in flight; the version bump on optimizer step
/// invalidates both. The slots cache the *range/scale spec* (one range pass
/// over the weight) — layers consume it via pack_spec() and fold Eq. 10 into
/// the GEMM packing stage, so no quantized weight tensor exists in the
/// steady state. apply() still materializes one lazily (from the cached
/// spec, at no extra quantizer_calls) for callers that need a tensor.
/// Gaussian perturbation is NOT memoized and NOT pack-fusable — its noise
/// must stay independent per branch.
class FakeQuantWeight : public nn::WeightTransform {
 public:
  explicit FakeQuantWeight(std::shared_ptr<const QuantPolicy> policy)
      : policy_(std::move(policy)) {}

  bool active() const override { return policy_->active(); }
  Tensor apply(const nn::Parameter& weight) const override;
  std::optional<gemm::QuantSpec> pack_spec(
      const nn::Parameter& weight) const override;

  /// Lifetime count of range/scale computations (spec cache misses; for
  /// Gaussian mode, perturbation draws). Tests assert this grows by at most
  /// one per (weight, bits) per step.
  std::uint64_t quantizer_calls() const { return quantizer_calls_; }

 private:
  struct Slot {
    const nn::Parameter* param = nullptr;
    int bits = 0;
    std::uint64_t version = 0;
    gemm::QuantSpec spec;
    Tensor value;            // lazily materialized from spec by apply()
    bool has_value = false;
  };

  /// Slot holding the memoized spec for (weight, current bits, version);
  /// fills it (one quantizer call) on miss.
  Slot& lookup(const nn::Parameter& weight) const;

  std::shared_ptr<const QuantPolicy> policy_;
  // One transform instance is owned by one layer, so `param` is effectively
  // fixed; the two slots track the two bit-widths of one CQ iteration.
  mutable Slot slots_[2];
  mutable std::uint64_t quantizer_calls_ = 0;
};

/// A set of candidate bit-widths. The paper uses contiguous ranges ("4-16",
/// "6-16", "8-16": every integer precision in the range).
class PrecisionSet {
 public:
  PrecisionSet() = default;
  explicit PrecisionSet(std::vector<int> bits);

  /// Every integer bit-width in [lo, hi].
  static PrecisionSet range(int lo, int hi);

  bool empty() const { return bits_.empty(); }
  std::size_t size() const { return bits_.size(); }
  const std::vector<int>& bits() const { return bits_; }

  /// Sample one bit-width uniformly.
  int sample(Rng& rng) const;

  /// Sample the per-iteration pair (q1, q2). With `distinct` (default, and
  /// what the paper's "differently augmented weights/activations" implies),
  /// q1 != q2 whenever the set has at least two entries.
  std::pair<int, int> sample_pair(Rng& rng, bool distinct = true) const;

  std::string str() const;

 private:
  std::vector<int> bits_;
};

}  // namespace cq::quant
