#include "eval/metrics.hpp"

#include "tensor/ops.hpp"
#include "util/check.hpp"

namespace cq::eval {

float top1_accuracy(const Tensor& logits, const std::vector<int>& labels) {
  CQ_CHECK(logits.shape().rank() == 2);
  CQ_CHECK(static_cast<std::int64_t>(labels.size()) == logits.dim(0));
  const auto pred = ops::row_argmax(logits);
  std::int64_t correct = 0;
  for (std::size_t i = 0; i < labels.size(); ++i)
    if (pred[i] == labels[i]) ++correct;
  return 100.0f * static_cast<float>(correct) /
         static_cast<float>(labels.size());
}

ConfusionMatrix::ConfusionMatrix(int num_classes)
    : num_classes_(num_classes),
      counts_(static_cast<std::size_t>(num_classes) *
                  static_cast<std::size_t>(num_classes),
              0) {
  CQ_CHECK(num_classes > 0);
}

void ConfusionMatrix::add(int truth, int predicted) {
  CQ_CHECK(truth >= 0 && truth < num_classes_ && predicted >= 0 &&
           predicted < num_classes_);
  ++counts_[static_cast<std::size_t>(truth) *
                static_cast<std::size_t>(num_classes_) +
            static_cast<std::size_t>(predicted)];
  ++total_;
}

std::int64_t ConfusionMatrix::count(int truth, int predicted) const {
  CQ_CHECK(truth >= 0 && truth < num_classes_ && predicted >= 0 &&
           predicted < num_classes_);
  return counts_[static_cast<std::size_t>(truth) *
                     static_cast<std::size_t>(num_classes_) +
                 static_cast<std::size_t>(predicted)];
}

float ConfusionMatrix::accuracy() const {
  if (total_ == 0) return 0.0f;
  std::int64_t diag = 0;
  for (int c = 0; c < num_classes_; ++c) diag += count(c, c);
  return 100.0f * static_cast<float>(diag) / static_cast<float>(total_);
}

std::vector<float> ConfusionMatrix::per_class_recall() const {
  std::vector<float> recall(static_cast<std::size_t>(num_classes_), 0.0f);
  for (int t = 0; t < num_classes_; ++t) {
    std::int64_t row = 0;
    for (int p = 0; p < num_classes_; ++p) row += count(t, p);
    if (row > 0)
      recall[static_cast<std::size_t>(t)] =
          100.0f * static_cast<float>(count(t, t)) / static_cast<float>(row);
  }
  return recall;
}

}  // namespace cq::eval
