// Quantitative separability of labeled point sets — turns the paper's
// qualitative Fig. 2 claim ("better linear separability") into numbers.
#pragma once

#include <vector>

#include "tensor/tensor.hpp"

namespace cq::eval {

/// Mean silhouette coefficient in [-1, 1] over all points (euclidean).
/// Points in singleton classes contribute 0.
float silhouette_score(const Tensor& points, const std::vector<int>& labels);

/// Leave-one-out k-nearest-neighbour accuracy in percent.
float knn_accuracy(const Tensor& points, const std::vector<int>& labels,
                   int k = 5);

}  // namespace cq::eval
