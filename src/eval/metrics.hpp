// Classification metrics.
#pragma once

#include <vector>

#include "tensor/tensor.hpp"

namespace cq::eval {

/// Top-1 accuracy (percent) of row-argmax predictions.
float top1_accuracy(const Tensor& logits, const std::vector<int>& labels);

/// Row-normalized confusion matrix.
class ConfusionMatrix {
 public:
  explicit ConfusionMatrix(int num_classes);

  void add(int truth, int predicted);
  std::int64_t count(int truth, int predicted) const;
  std::int64_t total() const { return total_; }
  /// Overall accuracy in percent.
  float accuracy() const;
  /// Per-class recall in percent (nan-free: empty classes report 0).
  std::vector<float> per_class_recall() const;

 private:
  int num_classes_;
  std::vector<std::int64_t> counts_;
  std::int64_t total_ = 0;
};

}  // namespace cq::eval
