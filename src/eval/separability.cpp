#include "eval/separability.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>

#include "util/check.hpp"

namespace cq::eval {

namespace {
std::vector<double> pairwise_dists(const Tensor& x) {
  const auto n = x.dim(0), d = x.dim(1);
  std::vector<double> dist(static_cast<std::size_t>(n * n), 0.0);
  for (std::int64_t i = 0; i < n; ++i)
    for (std::int64_t j = i + 1; j < n; ++j) {
      double s = 0.0;
      for (std::int64_t c = 0; c < d; ++c) {
        const double diff = static_cast<double>(x.at(i, c)) - x.at(j, c);
        s += diff * diff;
      }
      const double dd = std::sqrt(s);
      dist[static_cast<std::size_t>(i * n + j)] = dd;
      dist[static_cast<std::size_t>(j * n + i)] = dd;
    }
  return dist;
}
}  // namespace

float silhouette_score(const Tensor& points, const std::vector<int>& labels) {
  CQ_CHECK(points.shape().rank() == 2);
  const auto n = points.dim(0);
  CQ_CHECK(static_cast<std::int64_t>(labels.size()) == n);
  CQ_CHECK(n >= 2);

  const auto dist = pairwise_dists(points);
  std::map<int, std::int64_t> class_counts;
  for (int label : labels) ++class_counts[label];
  CQ_CHECK_MSG(class_counts.size() >= 2,
               "silhouette needs at least 2 classes");

  double total = 0.0;
  for (std::int64_t i = 0; i < n; ++i) {
    const int yi = labels[static_cast<std::size_t>(i)];
    if (class_counts[yi] < 2) continue;  // singleton contributes 0
    // a = mean intra-class distance; b = min over other classes of the mean
    // distance to that class.
    std::map<int, double> sums;
    for (std::int64_t j = 0; j < n; ++j) {
      if (j == i) continue;
      sums[labels[static_cast<std::size_t>(j)]] +=
          dist[static_cast<std::size_t>(i * n + j)];
    }
    const double a =
        sums[yi] / static_cast<double>(class_counts[yi] - 1);
    double b = std::numeric_limits<double>::infinity();
    for (const auto& [cls, sum] : sums) {
      if (cls == yi) continue;
      b = std::min(b, sum / static_cast<double>(class_counts[cls]));
    }
    const double denom = std::max(a, b);
    if (denom > 0.0) total += (b - a) / denom;
  }
  return static_cast<float>(total / static_cast<double>(n));
}

float knn_accuracy(const Tensor& points, const std::vector<int>& labels,
                   int k) {
  CQ_CHECK(points.shape().rank() == 2);
  const auto n = points.dim(0);
  CQ_CHECK(static_cast<std::int64_t>(labels.size()) == n);
  CQ_CHECK(k >= 1 && n >= 2);

  const auto dist = pairwise_dists(points);
  std::int64_t correct = 0;
  std::vector<std::int64_t> order;
  for (std::int64_t i = 0; i < n; ++i) {
    order.clear();
    for (std::int64_t j = 0; j < n; ++j)
      if (j != i) order.push_back(j);
    const auto kk = std::min<std::int64_t>(k, n - 1);
    std::partial_sort(order.begin(), order.begin() + kk, order.end(),
                      [&](std::int64_t a, std::int64_t b) {
                        return dist[static_cast<std::size_t>(i * n + a)] <
                               dist[static_cast<std::size_t>(i * n + b)];
                      });
    std::map<int, int> votes;
    for (std::int64_t j = 0; j < kk; ++j)
      ++votes[labels[static_cast<std::size_t>(
          order[static_cast<std::size_t>(j)])]];
    int best_class = -1, best_votes = -1;
    for (const auto& [cls, v] : votes)
      if (v > best_votes) {
        best_votes = v;
        best_class = cls;
      }
    if (best_class == labels[static_cast<std::size_t>(i)]) ++correct;
  }
  return 100.0f * static_cast<float>(correct) / static_cast<float>(n);
}

}  // namespace cq::eval
