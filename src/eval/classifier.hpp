// Downstream evaluation protocols (paper Sec. 4.1):
//  * fine-tuning: encoder + linear head trained end-to-end on a (small)
//    labeled split, at a fixed precision (FP or 4-bit);
//  * linear evaluation: encoder frozen, linear classifier on its features.
#pragma once

#include "data/dataset.hpp"
#include "models/encoder.hpp"

namespace cq::eval {

struct EvalConfig {
  std::int64_t epochs = 30;
  std::int64_t batch_size = 32;
  float lr = 0.05f;
  float momentum = 0.9f;
  float weight_decay = 1e-4f;
  /// Fixed precision during fine-tuning and test (32 = FP, 4 = "4-bit").
  int eval_bits = 32;
  /// Horizontal-flip augmentation during (fine-)tuning.
  bool augment_flip = true;
  std::uint64_t seed = 11;
};

struct EvalResult {
  float test_accuracy = 0.0f;  // percent
  float final_train_loss = 0.0f;
};

/// Fine-tune encoder + head on `train`, report top-1 on `test`. The
/// encoder's pretrained state is snapshotted on entry and restored on exit,
/// so repeated evaluations of one pretrained encoder are independent.
EvalResult finetune_eval(models::Encoder& encoder,
                         const data::Dataset& train,
                         const data::Dataset& test, const EvalConfig& config);

/// Linear evaluation: features are extracted once with the frozen encoder
/// (at config.eval_bits), then a linear classifier is trained on them.
EvalResult linear_eval(models::Encoder& encoder, const data::Dataset& train,
                       const data::Dataset& test, const EvalConfig& config);

/// Extract [N, feature_dim] features in eval mode at the given precision.
Tensor extract_features(models::Encoder& encoder, const data::Dataset& ds,
                        int bits, std::int64_t batch_size = 64);

}  // namespace cq::eval
