#include "eval/classifier.hpp"

#include "core/losses.hpp"
#include "data/image.hpp"
#include "models/heads.hpp"
#include "optim/schedule.hpp"
#include "optim/sgd.hpp"
#include "tensor/ops.hpp"
#include "util/logging.hpp"

namespace cq::eval {

namespace {

Tensor flip_batch_images(const data::Dataset& ds,
                         std::span<const std::int64_t> idx, bool augment,
                         Rng& rng) {
  std::vector<Tensor> images;
  images.reserve(idx.size());
  for (auto i : idx) {
    const Tensor& img = ds.images[static_cast<std::size_t>(i)];
    images.push_back(augment && rng.bernoulli(0.5) ? data::hflip(img) : img);
  }
  return data::stack_images(images);
}

float test_accuracy_full(models::Encoder& encoder, nn::Sequential& head,
                         const data::Dataset& test, int bits,
                         std::int64_t batch_size) {
  encoder.backbone->set_mode(nn::Mode::kEval);
  head.set_mode(nn::Mode::kEval);
  encoder.policy->set_bits(bits);
  std::int64_t correct = 0;
  for (std::int64_t start = 0; start < test.size(); start += batch_size) {
    const auto stop = std::min(test.size(), start + batch_size);
    std::vector<std::int64_t> idx;
    for (std::int64_t i = start; i < stop; ++i) idx.push_back(i);
    const Tensor logits =
        head.forward(encoder.forward(data::gather_images(test, idx)));
    const auto pred = ops::row_argmax(logits);
    for (std::size_t k = 0; k < idx.size(); ++k)
      if (pred[k] ==
          test.labels[static_cast<std::size_t>(idx[k])])
        ++correct;
  }
  encoder.policy->set_full_precision();
  return 100.0f * static_cast<float>(correct) /
         static_cast<float>(test.size());
}

}  // namespace

Tensor extract_features(models::Encoder& encoder, const data::Dataset& ds,
                        int bits, std::int64_t batch_size) {
  CQ_CHECK(!ds.empty());
  encoder.backbone->set_mode(nn::Mode::kEval);
  encoder.policy->set_bits(bits);
  Tensor features(Shape{ds.size(), encoder.feature_dim});
  for (std::int64_t start = 0; start < ds.size(); start += batch_size) {
    const auto stop = std::min(ds.size(), start + batch_size);
    std::vector<std::int64_t> idx;
    for (std::int64_t i = start; i < stop; ++i) idx.push_back(i);
    const Tensor f = encoder.forward(data::gather_images(ds, idx));
    for (std::int64_t r = 0; r < f.dim(0); ++r)
      for (std::int64_t c = 0; c < encoder.feature_dim; ++c)
        features.at(start + r, c) = f.at(r, c);
  }
  encoder.policy->set_full_precision();
  return features;
}

EvalResult finetune_eval(models::Encoder& encoder, const data::Dataset& train,
                         const data::Dataset& test,
                         const EvalConfig& config) {
  train.validate();
  test.validate();
  CQ_CHECK(train.num_classes == test.num_classes);
  Rng rng(config.seed);

  // Snapshot so the caller's pretrained encoder is untouched afterwards.
  const auto pretrained = nn::snapshot_state(*encoder.backbone);

  auto head = models::make_classifier(encoder.feature_dim, train.num_classes,
                                      rng);
  encoder.backbone->set_mode(nn::Mode::kTrain);
  head->set_mode(nn::Mode::kTrain);
  encoder.policy->set_bits(config.eval_bits);

  auto params = encoder.backbone->parameters();
  for (nn::Parameter* p : head->parameters()) params.push_back(p);
  optim::Sgd sgd(params, {.lr = config.lr,
                          .momentum = config.momentum,
                          .weight_decay = config.weight_decay});

  const auto batch =
      std::min<std::int64_t>(config.batch_size, train.size());
  data::Batcher batcher(train.size(), batch, rng);
  const auto iters_per_epoch = batcher.batches_per_epoch();
  optim::CosineSchedule schedule(config.lr,
                                 iters_per_epoch * config.epochs);

  float last_loss = 0.0f;
  std::int64_t step = 0;
  for (std::int64_t epoch = 0; epoch < config.epochs; ++epoch) {
    for (std::int64_t it = 0; it < iters_per_epoch; ++it, ++step) {
      sgd.set_lr(schedule.lr_at(step));
      const auto idx = batcher.next();
      const Tensor images =
          flip_batch_images(train, idx, config.augment_flip, rng);
      const auto labels = data::gather_labels(train, idx);
      const Tensor logits = head->forward(encoder.forward(images));
      const auto loss = core::cross_entropy(logits, labels);
      last_loss = loss.value;
      encoder.backbone->backward(head->backward(loss.grad_logits));
      sgd.step();
    }
  }

  EvalResult result;
  result.final_train_loss = last_loss;
  result.test_accuracy =
      test_accuracy_full(encoder, *head, test, config.eval_bits,
                         config.batch_size);
  nn::restore_state(*encoder.backbone, pretrained);
  encoder.backbone->set_mode(nn::Mode::kTrain);
  encoder.policy->set_full_precision();
  return result;
}

EvalResult linear_eval(models::Encoder& encoder, const data::Dataset& train,
                       const data::Dataset& test, const EvalConfig& config) {
  train.validate();
  test.validate();
  CQ_CHECK(train.num_classes == test.num_classes);
  Rng rng(config.seed);

  const Tensor train_features =
      extract_features(encoder, train, config.eval_bits);
  const Tensor test_features =
      extract_features(encoder, test, config.eval_bits);

  auto head = models::make_classifier(encoder.feature_dim, train.num_classes,
                                      rng);
  head->set_mode(nn::Mode::kTrain);
  optim::Sgd sgd(head->parameters(), {.lr = config.lr,
                                      .momentum = config.momentum,
                                      .weight_decay = config.weight_decay});
  const auto batch =
      std::min<std::int64_t>(config.batch_size, train.size());
  data::Batcher batcher(train.size(), batch, rng);
  const auto iters_per_epoch = batcher.batches_per_epoch();
  optim::CosineSchedule schedule(config.lr,
                                 iters_per_epoch * config.epochs);

  float last_loss = 0.0f;
  std::int64_t step = 0;
  for (std::int64_t epoch = 0; epoch < config.epochs; ++epoch) {
    for (std::int64_t it = 0; it < iters_per_epoch; ++it, ++step) {
      sgd.set_lr(schedule.lr_at(step));
      const auto idx = batcher.next();
      Tensor fb(Shape{static_cast<std::int64_t>(idx.size()),
                      encoder.feature_dim});
      for (std::size_t r = 0; r < idx.size(); ++r)
        for (std::int64_t c = 0; c < encoder.feature_dim; ++c)
          fb.at(static_cast<std::int64_t>(r), c) =
              train_features.at(idx[r], c);
      const auto labels = data::gather_labels(train, idx);
      const Tensor logits = head->forward(fb);
      const auto loss = core::cross_entropy(logits, labels);
      last_loss = loss.value;
      head->backward(loss.grad_logits);
      sgd.step();
    }
  }

  head->set_mode(nn::Mode::kEval);
  const Tensor logits = head->forward(test_features);
  const auto pred = ops::row_argmax(logits);
  std::int64_t correct = 0;
  for (std::int64_t i = 0; i < test.size(); ++i)
    if (pred[static_cast<std::size_t>(i)] ==
        test.labels[static_cast<std::size_t>(i)])
      ++correct;

  EvalResult result;
  result.final_train_loss = last_loss;
  result.test_accuracy =
      100.0f * static_cast<float>(correct) / static_cast<float>(test.size());
  return result;
}

}  // namespace cq::eval
