// Exact t-SNE (van der Maaten & Hinton 2008) — reproduces the paper's
// Fig. 2 representation visualizations.
#pragma once

#include "tensor/tensor.hpp"
#include "util/rng.hpp"

namespace cq::eval {

struct TsneConfig {
  double perplexity = 15.0;
  std::int64_t iterations = 350;
  double learning_rate = 100.0;
  /// Early exaggeration: P scaled by `exaggeration` for the first
  /// `exaggeration_iters` iterations.
  double exaggeration = 4.0;
  std::int64_t exaggeration_iters = 80;
  double initial_momentum = 0.5;
  double final_momentum = 0.8;
  std::int64_t momentum_switch_iter = 120;
  std::uint64_t seed = 42;
};

/// Embed [N, D] features into [N, 2]. N must exceed 3 * perplexity.
Tensor tsne(const Tensor& features, const TsneConfig& config = {});

}  // namespace cq::eval
