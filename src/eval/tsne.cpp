#include "eval/tsne.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/check.hpp"

namespace cq::eval {

namespace {

/// Squared euclidean distance matrix of the rows of x.
std::vector<double> pairwise_sq_dists(const Tensor& x) {
  const auto n = x.dim(0), d = x.dim(1);
  std::vector<double> dist(static_cast<std::size_t>(n * n), 0.0);
  for (std::int64_t i = 0; i < n; ++i)
    for (std::int64_t j = i + 1; j < n; ++j) {
      double s = 0.0;
      for (std::int64_t c = 0; c < d; ++c) {
        const double diff =
            static_cast<double>(x.at(i, c)) - x.at(j, c);
        s += diff * diff;
      }
      dist[static_cast<std::size_t>(i * n + j)] = s;
      dist[static_cast<std::size_t>(j * n + i)] = s;
    }
  return dist;
}

/// Row-conditional probabilities p_{j|i} at the beta (=1/2sigma^2) that hits
/// the target perplexity, via binary search.
void conditional_probs(const std::vector<double>& dist, std::int64_t n,
                       double perplexity, std::vector<double>& p) {
  const double target_entropy = std::log(perplexity);
  p.assign(static_cast<std::size_t>(n * n), 0.0);
  std::vector<double> row(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) {
    double beta_lo = 0.0, beta_hi = 1e18, beta = 1.0;
    for (int iter = 0; iter < 64; ++iter) {
      double sum = 0.0;
      for (std::int64_t j = 0; j < n; ++j) {
        row[static_cast<std::size_t>(j)] =
            (j == i) ? 0.0
                     : std::exp(-beta *
                                dist[static_cast<std::size_t>(i * n + j)]);
        sum += row[static_cast<std::size_t>(j)];
      }
      if (sum <= 0.0) sum = 1e-12;
      // Shannon entropy of the row distribution.
      double entropy = 0.0;
      for (std::int64_t j = 0; j < n; ++j) {
        const double pj = row[static_cast<std::size_t>(j)] / sum;
        if (pj > 1e-12) entropy -= pj * std::log(pj);
      }
      if (std::fabs(entropy - target_entropy) < 1e-5) break;
      if (entropy > target_entropy) {
        beta_lo = beta;
        beta = (beta_hi >= 1e18) ? beta * 2.0 : 0.5 * (beta + beta_hi);
      } else {
        beta_hi = beta;
        beta = 0.5 * (beta + beta_lo);
      }
    }
    double sum = 0.0;
    for (std::int64_t j = 0; j < n; ++j) {
      row[static_cast<std::size_t>(j)] =
          (j == i) ? 0.0
                   : std::exp(-beta *
                              dist[static_cast<std::size_t>(i * n + j)]);
      sum += row[static_cast<std::size_t>(j)];
    }
    if (sum <= 0.0) sum = 1e-12;
    for (std::int64_t j = 0; j < n; ++j)
      p[static_cast<std::size_t>(i * n + j)] =
          row[static_cast<std::size_t>(j)] / sum;
  }
}

}  // namespace

Tensor tsne(const Tensor& features, const TsneConfig& config) {
  CQ_CHECK(features.shape().rank() == 2);
  const auto n = features.dim(0);
  CQ_CHECK_MSG(static_cast<double>(n) > 3.0 * config.perplexity,
               "tsne needs N > 3 * perplexity");

  const auto dist = pairwise_sq_dists(features);
  std::vector<double> p_cond;
  conditional_probs(dist, n, config.perplexity, p_cond);

  // Symmetrize: p_ij = (p_{j|i} + p_{i|j}) / 2n, floored for stability.
  std::vector<double> p(static_cast<std::size_t>(n * n), 0.0);
  for (std::int64_t i = 0; i < n; ++i)
    for (std::int64_t j = 0; j < n; ++j)
      p[static_cast<std::size_t>(i * n + j)] =
          std::max((p_cond[static_cast<std::size_t>(i * n + j)] +
                    p_cond[static_cast<std::size_t>(j * n + i)]) /
                       (2.0 * static_cast<double>(n)),
                   1e-12);

  Rng rng(config.seed);
  std::vector<double> y(static_cast<std::size_t>(n * 2));
  for (auto& v : y) v = rng.normal(0.0, 1e-2);
  std::vector<double> velocity(y.size(), 0.0);
  std::vector<double> grad(y.size(), 0.0);
  std::vector<double> q(static_cast<std::size_t>(n * n), 0.0);

  for (std::int64_t iter = 0; iter < config.iterations; ++iter) {
    const double exag =
        iter < config.exaggeration_iters ? config.exaggeration : 1.0;
    const double momentum = iter < config.momentum_switch_iter
                                ? config.initial_momentum
                                : config.final_momentum;
    // Student-t low-dimensional affinities.
    double q_sum = 0.0;
    for (std::int64_t i = 0; i < n; ++i)
      for (std::int64_t j = i + 1; j < n; ++j) {
        const double dy0 = y[static_cast<std::size_t>(2 * i)] -
                           y[static_cast<std::size_t>(2 * j)];
        const double dy1 = y[static_cast<std::size_t>(2 * i + 1)] -
                           y[static_cast<std::size_t>(2 * j + 1)];
        const double num = 1.0 / (1.0 + dy0 * dy0 + dy1 * dy1);
        q[static_cast<std::size_t>(i * n + j)] = num;
        q[static_cast<std::size_t>(j * n + i)] = num;
        q_sum += 2.0 * num;
      }
    if (q_sum <= 0.0) q_sum = 1e-12;

    std::fill(grad.begin(), grad.end(), 0.0);
    for (std::int64_t i = 0; i < n; ++i)
      for (std::int64_t j = 0; j < n; ++j) {
        if (i == j) continue;
        const double num = q[static_cast<std::size_t>(i * n + j)];
        const double qij = std::max(num / q_sum, 1e-12);
        const double coeff =
            4.0 * (exag * p[static_cast<std::size_t>(i * n + j)] - qij) * num;
        grad[static_cast<std::size_t>(2 * i)] +=
            coeff * (y[static_cast<std::size_t>(2 * i)] -
                     y[static_cast<std::size_t>(2 * j)]);
        grad[static_cast<std::size_t>(2 * i + 1)] +=
            coeff * (y[static_cast<std::size_t>(2 * i + 1)] -
                     y[static_cast<std::size_t>(2 * j + 1)]);
      }
    for (std::size_t k = 0; k < y.size(); ++k) {
      velocity[k] = momentum * velocity[k] - config.learning_rate * grad[k];
      y[k] += velocity[k];
    }
    // Re-center.
    double mean0 = 0.0, mean1 = 0.0;
    for (std::int64_t i = 0; i < n; ++i) {
      mean0 += y[static_cast<std::size_t>(2 * i)];
      mean1 += y[static_cast<std::size_t>(2 * i + 1)];
    }
    mean0 /= static_cast<double>(n);
    mean1 /= static_cast<double>(n);
    for (std::int64_t i = 0; i < n; ++i) {
      y[static_cast<std::size_t>(2 * i)] -= mean0;
      y[static_cast<std::size_t>(2 * i + 1)] -= mean1;
    }
  }

  Tensor out(Shape{n, 2});
  for (std::int64_t i = 0; i < n; ++i) {
    out.at(i, 0) = static_cast<float>(y[static_cast<std::size_t>(2 * i)]);
    out.at(i, 1) = static_cast<float>(y[static_cast<std::size_t>(2 * i + 1)]);
  }
  return out;
}

}  // namespace cq::eval
