#include "search/service.hpp"

#include <algorithm>
#include <sstream>

#include "util/check.hpp"

namespace cq::search {

namespace {

void json_latency(std::ostringstream& os, const char* key,
                  const serve::LatencyHistogram& h) {
  os << "\"" << key << "\": {\"count\": " << h.count()
     << ", \"mean_us\": " << h.mean_micros()
     << ", \"p50_us\": " << h.percentile(50.0)
     << ", \"p95_us\": " << h.percentile(95.0)
     << ", \"p99_us\": " << h.percentile(99.0)
     << ", \"max_us\": " << h.max_micros() << "}";
}

std::uint64_t micros_between(serve::Clock::time_point a,
                             serve::Clock::time_point b) {
  return static_cast<std::uint64_t>(std::max<std::int64_t>(
      0, std::chrono::duration_cast<std::chrono::microseconds>(b - a)
             .count()));
}

}  // namespace

std::string SearchStats::to_json() const {
  std::ostringstream os;
  os << "{\"queries\": " << queries << ", \"results\": " << results
     << ", \"codes_scanned\": " << codes_scanned
     << ", \"candidates\": " << candidates
     << ", \"scan_micros\": " << scan_micros
     << ", \"uptime_seconds\": " << uptime_seconds
     << ", \"scan_codes_per_s\": " << scan_codes_per_s
     << ", \"candidates_per_s\": " << candidates_per_s
     << ", \"queries_per_s\": " << queries_per_s << ", ";
  json_latency(os, "scan_latency", scan_latency);
  os << ", ";
  json_latency(os, "e2e_latency", e2e_latency);
  os << "}";
  return os.str();
}

Service::Service(const ServiceConfig& config, Index index)
    : config_(config),
      engine_(config.engine),
      index_(std::move(index)),
      start_time_(serve::Clock::now()) {
  CQ_CHECK_MSG(engine_.feature_dim() == index_.dim(),
               "encoder feature_dim " << engine_.feature_dim()
                                      << " != index dim " << index_.dim());
}

std::int64_t Service::run_scan(const float* embedding,
                               const QueryOptions& opts, QueryScratch& scratch,
                               Result* out) const {
  const auto t0 = serve::Clock::now();
  const std::int64_t rows = index_.size();
  const std::int64_t n = index_.query(embedding, opts, scratch, out);
  const auto us = micros_between(t0, serve::Clock::now());
  std::lock_guard<std::mutex> lock(stats_mu_);
  stats_.queries += 1;
  stats_.results += static_cast<std::uint64_t>(n);
  stats_.codes_scanned += static_cast<std::uint64_t>(rows);
  stats_.candidates += static_cast<std::uint64_t>(
      std::min(opts.k * opts.overfetch, rows));
  stats_.scan_micros += us;
  stats_.scan_latency.record(us);
  return n;
}

std::int64_t Service::search_features(const float* embedding,
                                      const QueryOptions& opts,
                                      QueryScratch& scratch,
                                      Result* out) const {
  return run_scan(embedding, opts, scratch, out);
}

serve::Status Service::search(const float* image, const QueryOptions& opts,
                              Context& ctx, Result* out,
                              std::int64_t* out_count,
                              serve::Clock::time_point deadline) {
  *out_count = 0;
  const auto t0 = serve::Clock::now();
  if (static_cast<std::int64_t>(ctx.feature.size()) != engine_.feature_dim())
    ctx.feature.resize(static_cast<std::size_t>(engine_.feature_dim()));
  ctx.request.reset();
  ctx.request.input = image;
  ctx.request.output = ctx.feature.data();
  ctx.request.deadline = deadline;
  if (!engine_.submit(&ctx.request)) return serve::Status::kRejectedFull;
  const serve::Status st = ctx.request.wait();
  if (st != serve::Status::kOk) return st;
  // The deadline covers the whole search, not just the encode: a query that
  // comes back from the batcher already late must not burn a scan.
  if (deadline != serve::Clock::time_point::max() &&
      serve::Clock::now() > deadline)
    return serve::Status::kTimeout;
  *out_count = run_scan(ctx.feature.data(), opts, ctx.scratch, out);
  std::lock_guard<std::mutex> lock(stats_mu_);
  stats_.e2e_latency.record(micros_between(t0, serve::Clock::now()));
  return serve::Status::kOk;
}

void Service::prewarm(const QueryOptions& opts, Context& ctx) {
  ctx.feature.resize(static_cast<std::size_t>(engine_.feature_dim()));
  index_.prepare(opts, ctx.scratch);
}

SearchStats Service::search_stats() const {
  SearchStats s;
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    s = stats_;
  }
  s.uptime_seconds =
      static_cast<double>(micros_between(start_time_, serve::Clock::now())) /
      1e6;
  const double scan_s = static_cast<double>(s.scan_micros) / 1e6;
  s.scan_codes_per_s =
      scan_s > 0.0 ? static_cast<double>(s.codes_scanned) / scan_s : 0.0;
  s.candidates_per_s = s.uptime_seconds > 0.0
                           ? static_cast<double>(s.candidates) /
                                 s.uptime_seconds
                           : 0.0;
  s.queries_per_s = s.uptime_seconds > 0.0
                        ? static_cast<double>(s.queries) / s.uptime_seconds
                        : 0.0;
  return s;
}

std::string Service::stats_json() const {
  std::ostringstream os;
  os << "{\"engine\": " << engine_.stats_json()
     << ",\n\"search\": " << search_stats().to_json() << "}";
  return os.str();
}

}  // namespace cq::search
