// search::Service — the binary-embedding retrieval endpoint (DESIGN.md §15).
//
// Wires a search::Index behind the serving engine: a query image is encoded
// through serve::Engine (compiled graph plan, dynamic micro-batching across
// concurrent callers), the feature vector is binarized, and the packed code
// drives the blocked Hamming top-k scan — optionally cosine-reranked.
//
//   Service svc(config, std::move(index));
//   Service::Context ctx;                 // one per querying thread
//   svc.prewarm(opts, ctx);               // -> 0-alloc steady state
//   Result hits[16];
//   std::int64_t n = 0;
//   auto st = svc.search(image, opts, ctx, hits, &n, deadline);
//
// The whole path inherits the repo's determinism contract: batched encode is
// bitwise-identical to serial (graph executor), the scan is block-structured
// (Index), so two services at different CQ_THREADS/worker counts return
// identical results. Search-side stats (scan rate, candidates/s, e2e
// latency percentiles) merge with the engine's in stats_json().
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "search/index.hpp"
#include "serve/engine.hpp"

namespace cq::search {

struct ServiceConfig {
  /// Encoder + worker/batching setup. The checkpoint's feature_dim must
  /// equal the index dim.
  serve::EngineConfig engine;
};

/// Search-side counters (the encode leg is accounted by the engine).
struct SearchStats {
  std::uint64_t queries = 0;        // searches that reached the scan
  std::uint64_t results = 0;        // result rows emitted
  std::uint64_t codes_scanned = 0;  // index rows Hamming-scanned
  std::uint64_t candidates = 0;     // overfetched pool entries considered
  std::uint64_t scan_micros = 0;    // time inside Index::query
  double uptime_seconds = 0.0;
  double scan_codes_per_s = 0.0;    // codes_scanned / scan time
  double candidates_per_s = 0.0;    // candidates / uptime
  double queries_per_s = 0.0;       // queries / uptime
  serve::LatencyHistogram scan_latency;  // Index::query only
  serve::LatencyHistogram e2e_latency;   // submit -> results written

  std::string to_json() const;
};

class Service {
 public:
  /// Per-caller state: the engine Request, its feature buffer, and the scan
  /// scratch. Reused across searches; prewarm() sizes it so the steady-state
  /// search path allocates nothing.
  struct Context {
    std::vector<float> feature;
    QueryScratch scratch;
    serve::Request request;
  };

  /// Starts the engine (loads + compiles the checkpoint) and takes ownership
  /// of the index. Throws CheckError when feature_dim != index dim.
  Service(const ServiceConfig& config, Index index);

  /// Encode `image` (Engine::sample_numel() floats) and run top-k. Writes up
  /// to opts.k results nearest-first into `out`, sets *out_count, returns
  /// the request status: kOk on success; kRejectedFull / kTimeout /
  /// kShutdown propagate from the encode leg, and a deadline that expires
  /// before the scan starts returns kTimeout without scanning.
  serve::Status search(const float* image, const QueryOptions& opts,
                       Context& ctx, Result* out, std::int64_t* out_count,
                       serve::Clock::time_point deadline =
                           serve::Clock::time_point::max());

  /// Skip the encoder: search directly from an embedding ([dim] floats, any
  /// norm). Same stats accounting minus the encode leg.
  std::int64_t search_features(const float* embedding,
                               const QueryOptions& opts, QueryScratch& scratch,
                               Result* out) const;

  /// Incremental add (exclusive-locks the index against in-flight scans).
  void add(const float* embeddings, const std::uint64_t* ids, std::int64_t n) {
    index_.add(embeddings, ids, n);
  }

  /// Size ctx for `opts` so the next search is allocation-free.
  void prewarm(const QueryOptions& opts, Context& ctx);

  SearchStats search_stats() const;
  /// {"engine": <serve::EngineStats>, "search": <SearchStats>}.
  std::string stats_json() const;

  const Index& index() const { return index_; }
  serve::Engine& engine() { return engine_; }
  std::int64_t dim() const { return index_.dim(); }

  void stop() { engine_.stop(); }

 private:
  std::int64_t run_scan(const float* embedding, const QueryOptions& opts,
                        QueryScratch& scratch, Result* out) const;

  ServiceConfig config_;
  serve::Engine engine_;
  Index index_;
  serve::Clock::time_point start_time_;
  mutable std::mutex stats_mu_;
  // Mutable: search_features/run_scan are logically const (the index is
  // read-only) but still account their work.
  mutable SearchStats stats_;  // uptime/rates filled on read
};

}  // namespace cq::search
