// Bounded top-k selection for the Hamming scan (DESIGN.md §15).
//
// A TopK is a fixed-capacity max-heap over (distance, row) pairs ordered by
// the TOTAL order (dist, row) lexicographic — ties on distance break toward
// the lower row index. Because the order is total, the top-k SET and its
// sorted order are unique properties of the candidate stream: the result is
// independent of push order, which is what makes the blocked parallel scan
// (per-block heaps merged in block order) bitwise-identical to the serial
// scan at every pool size.
//
// Storage is a caller-provided vector that reset() reuses — after the first
// query sized a scratch, pushes never allocate (the 0-alloc steady-state
// contract of the query path).
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

namespace cq::search {

/// One scan candidate: packed-code Hamming distance + row position in the
/// index (NOT the user id; ids resolve at result emission).
struct Candidate {
  std::uint32_t dist = 0;
  std::int64_t row = 0;
};

/// The total order: nearer first, ties to the lower row.
inline bool candidate_less(const Candidate& a, const Candidate& b) {
  return a.dist != b.dist ? a.dist < b.dist : a.row < b.row;
}

class TopK {
 public:
  /// Arm for a fresh scan keeping at most `k` nearest. Reuses the slot
  /// vector's capacity; only the first call at a given k may allocate.
  void reset(std::int64_t k) {
    k_ = k;
    slots_.clear();
    if (static_cast<std::int64_t>(slots_.capacity()) < k) slots_.reserve(k);
  }

  /// Offer one candidate; keeps it iff it precedes the current k-th best.
  void push(Candidate c) {
    if (static_cast<std::int64_t>(slots_.size()) < k_) {
      slots_.push_back(c);
      std::push_heap(slots_.begin(), slots_.end(), candidate_less);
      return;
    }
    if (k_ > 0 && candidate_less(c, slots_.front())) {
      std::pop_heap(slots_.begin(), slots_.end(), candidate_less);
      slots_.back() = c;
      std::push_heap(slots_.begin(), slots_.end(), candidate_less);
    }
  }

  /// The kept candidates in heap order (unsorted). Valid until reset().
  const std::vector<Candidate>& heap() const { return slots_; }

  /// Sort the kept candidates nearest-first in place and return them.
  const std::vector<Candidate>& sorted() {
    std::sort(slots_.begin(), slots_.end(), candidate_less);
    return slots_;
  }

  std::int64_t size() const { return static_cast<std::int64_t>(slots_.size()); }
  std::int64_t k() const { return k_; }

 private:
  std::int64_t k_ = 0;
  std::vector<Candidate> slots_;
};

}  // namespace cq::search
