// Recall@k-vs-bits evaluation (DESIGN.md §15): how much retrieval quality
// survives binary quantization of the embedding space — the paper's claim
// ("quantization-aware contrastive pretraining yields embeddings that
// survive aggressive compression") measured on the workload that actually
// consumes contrastive encoders.
//
// Ground truth is exact fp32 cosine top-k over L2-normalized embeddings
// (kernels::dot_scan). Each code variant (1-bit, 2-bit thermometer, each
// with and without exact-cosine rerank of an overfetched pool) retrieves
// through a real search::Index, and recall@k is the averaged overlap with
// the ground-truth id set. bench/search.cpp runs this for a CQ-pretrained
// encoder vs a plain-SimCLR one on the same data.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "search/index.hpp"
#include "tensor/tensor.hpp"

namespace cq::search {

struct RecallConfig {
  std::int64_t k = 10;
  /// Candidate-pool widening for the rerank variants (k * overfetch Hamming
  /// candidates, exact-cosine top-k among them).
  std::int64_t overfetch = 4;
};

/// One measured operating point.
struct RecallPoint {
  std::string variant;  // "1bit", "1bit_rerank", "2bit", "2bit_rerank"
  CodeLayout layout = CodeLayout::k1Bit;
  bool rerank = false;
  double bits_per_dim = 1.0;
  double recall_at_k = 0.0;
};

struct RecallReport {
  std::int64_t base_rows = 0;
  std::int64_t num_queries = 0;
  std::int64_t dim = 0;
  std::int64_t k = 0;
  std::vector<RecallPoint> points;

  /// recall_at_k of `variant`, or -1 when absent.
  double recall(const std::string& variant) const;
};

/// Exact cosine ground truth: per query, the row indices of the k nearest
/// base rows by dot product over L2-normalized copies (ties to lower row).
std::vector<std::vector<std::int64_t>> cosine_ground_truth(
    const float* base, std::int64_t rows, const float* queries,
    std::int64_t nq, std::int64_t dim, std::int64_t k);

/// Run all four code variants over raw [rows, dim] / [nq, dim] embedding
/// matrices (any norm; normalization happens inside).
RecallReport recall_vs_bits(const float* base, std::int64_t rows,
                            const float* queries, std::int64_t nq,
                            std::int64_t dim, const RecallConfig& config);

/// Convenience split over one [N, dim] feature matrix (e.g. from
/// eval::extract_features): the first `num_queries` rows query the rest.
RecallReport recall_vs_bits_features(const Tensor& features,
                                     std::int64_t num_queries,
                                     const RecallConfig& config);

}  // namespace cq::search
