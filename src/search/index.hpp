// Binary-embedding vector index (DESIGN.md §15).
//
// An Index stores one packed bitplane code per embedding (1-bit or 2-bit per
// dimension, layout contract in tensor/kernels/hamming.hpp) plus a u64 id
// side array and, optionally, the fp32 embeddings for exact cosine rerank.
// Queries are EXACT bounded-heap top-k over a blocked Hamming scan:
//
//   * The row range splits into fixed kScanBlock-row blocks. A
//     core::ThreadPool::parallel_for runs hamming_scan per block into a
//     disjoint slice of the scratch distance buffer and feeds a per-chunk
//     TopK while the slice is cache-hot; once the heap is full, a SIMD
//     filter (kernels::filter_lt_u32) rejects 8 distances per compare
//     against the heap's current bound before any heap code runs.
//   * A chunk heap retains the top-m of its whole subrange, and the
//     (dist, row) total order makes the merged top-m the unique global
//     top-m for every chunk partition — results are bitwise-identical at
//     every CQ_THREADS, the same determinism contract as the GEMM macro
//     loops.
//   * All scan state lives in a caller-owned QueryScratch: after
//     prepare()/the first query at a given (k, overfetch), the query path
//     performs zero heap allocations until the index grows.
//
// Concurrency: queries take a shared lock, add() takes an exclusive lock —
// incremental adds are safe against concurrent queries (tsan-covered).
#pragma once

#include <cstdint>
#include <shared_mutex>
#include <string>
#include <vector>

#include "search/topk.hpp"
#include "util/serialize.hpp"

namespace cq::search {

/// Bits spent per embedding dimension. k2Bit is the thermometer layout whose
/// Hamming distance is a 3-level quantized L1 (hamming.hpp).
enum class CodeLayout : std::uint32_t { k1Bit = 1, k2Bit = 2 };

inline std::int64_t bits_per_dim(CodeLayout layout) {
  return layout == CodeLayout::k1Bit ? 1 : 2;
}

/// Per-coordinate threshold binarizer. PAPERS.md ("Covariance Structure and
/// Coordinate Heterogeneity Govern Binary Quantization of Contrastive
/// Embeddings"): contrastive coordinates have heterogeneous scales, so
/// per-coordinate medians/tertiles beat a global sign split; sign() is the
/// classic choice when the embedding space is L2-normalized and centered
/// (SimCLR projection geometry).
class Binarizer {
 public:
  /// Zero thresholds (sign binarization). For k2Bit, lo = hi = 0 — codes
  /// collapse to the 1-bit levels encoded at 2 bits (useful as a baseline).
  static Binarizer sign(std::int64_t dim, CodeLayout layout);

  /// Per-coordinate order-statistic thresholds from a [rows, dim] sample:
  /// the median for k1Bit, tertiles (ranks n/3 and 2n/3) for k2Bit.
  static Binarizer fit(const float* data, std::int64_t rows, std::int64_t dim,
                       CodeLayout layout);

  /// Pack `rows` embeddings of `dim` floats into codes
  /// ([rows * words_per_row] u64s). Inputs should be L2-normalized when the
  /// thresholds were fit on normalized data (Index handles this).
  void encode(const float* x, std::int64_t rows, std::uint64_t* codes) const;

  std::int64_t dim() const { return dim_; }
  CodeLayout layout() const { return layout_; }
  /// u64 words per packed code: ceil(dim * bits_per_dim / 64).
  std::int64_t words_per_row() const { return words_; }

  void save(BinaryWriter& w) const;
  static Binarizer load(BinaryReader& r);

 private:
  Binarizer() = default;

  std::int64_t dim_ = 0;
  std::int64_t words_ = 0;
  CodeLayout layout_ = CodeLayout::k1Bit;
  std::vector<float> lo_;  // k1Bit: the only threshold; k2Bit: lower level
  std::vector<float> hi_;  // k2Bit only (lo <= hi per coordinate)
};

struct IndexConfig {
  std::int64_t dim = 0;
  CodeLayout layout = CodeLayout::k1Bit;
  /// Keep the fp32 embeddings so queries can rerank Hamming candidates by
  /// exact cosine. Costs 32 bits/dim of memory; recall@k at small code sizes
  /// usually wants overfetch + rerank (see search::recall).
  bool store_embeddings = false;
};

struct QueryOptions {
  std::int64_t k = 10;
  /// Scan keeps k * overfetch Hamming candidates; with rerank they are
  /// re-scored by exact cosine before the best k are returned. Without
  /// rerank overfetch only widens the internal pool (still k results).
  std::int64_t overfetch = 1;
  /// Exact-cosine rerank of the overfetched pool. Requires an index built
  /// with store_embeddings.
  bool rerank = false;
};

/// One search hit. `dist` is the packed-code Hamming distance; `score` is
/// the exact cosine when the query reranked, else the negated distance (both
/// orders descending-is-better, so callers can sort on score uniformly).
struct Result {
  std::uint64_t id = 0;
  std::uint32_t dist = 0;
  float score = 0.0f;
};

/// Caller-owned scan state; one per querying thread. Sized lazily by the
/// first query (or explicitly by Index::prepare) and reused allocation-free
/// afterwards while the index size and (k, overfetch) stay put.
class QueryScratch {
 public:
  std::int64_t steady_bytes() const {
    return static_cast<std::int64_t>(dist.capacity()) * 4;
  }

 private:
  friend class Index;
  std::vector<float> qnorm;          // [dim] normalized query
  std::vector<std::uint64_t> qcode;  // [words_per_row] packed query
  std::vector<std::uint32_t> dist;   // [rows] block-sliced distances
  std::vector<std::int32_t> hits;    // [rows] filter_lt_u32 output, sliced
  std::vector<TopK> blocks;          // per-chunk heaps, keyed by first block
  TopK merged;                       // block-merge accumulator
  std::vector<Candidate> pool;       // overfetched pool, scan order
  std::vector<float> rerank_score;   // [pool] exact cosine scores
  std::vector<std::int64_t> order;   // rerank permutation
};

class Index {
 public:
  /// An empty index over `binarizer`'s geometry (dim/layout taken from it).
  Index(const IndexConfig& config, Binarizer binarizer);

  /// Movable (fresh mutex — moving is only legal before concurrent use,
  /// i.e. load()/construction handoff), not copyable.
  Index(Index&& other) noexcept;
  Index& operator=(Index&&) = delete;
  Index(const Index&) = delete;
  Index& operator=(const Index&) = delete;

  /// Append `n` embeddings ([n, dim] fp32, any norm) with their ids.
  /// Normalizes a copy, packs codes, and (when configured) stores the
  /// normalized embeddings. Exclusive-locks against queries.
  void add(const float* embeddings, const std::uint64_t* ids, std::int64_t n);

  /// Exact top-k by Hamming distance (optionally cosine-reranked). Writes at
  /// most opts.k results nearest-first into `out` and returns the count
  /// (min(k, size)). `embedding` is [dim] fp32, any norm. Thread-safe
  /// against concurrent add(); scratch must be private to the caller.
  std::int64_t query(const float* embedding, const QueryOptions& opts,
                     QueryScratch& scratch, Result* out) const;

  /// Size `scratch` for this index and `opts` so the next query allocates
  /// nothing (the prewarm step of the 0-alloc steady-state contract).
  void prepare(const QueryOptions& opts, QueryScratch& scratch) const;

  std::int64_t size() const;
  std::int64_t dim() const { return binarizer_.dim(); }
  CodeLayout layout() const { return binarizer_.layout(); }
  std::int64_t words_per_row() const { return binarizer_.words_per_row(); }
  bool stores_embeddings() const { return config_.store_embeddings; }
  const Binarizer& binarizer() const { return binarizer_; }

  /// Read-only view of the packed codes / stored embeddings (benches and the
  /// recall eval scan them directly).
  const std::vector<std::uint64_t>& codes() const { return codes_; }
  const std::vector<float>& embeddings() const { return embeddings_; }

  /// Checkpoint the whole index (header + config + binarizer + codes + ids
  /// [+ embeddings]); load() validates the trailer with expect_eof.
  void save(const std::string& path) const;
  static Index load(const std::string& path);

  /// Rows per scan block — the unit of parallel_for dispatch AND of the
  /// deterministic merge order; fixed so results never depend on pool size.
  static constexpr std::int64_t kScanBlock = 4096;

 private:
  void ensure_scratch(const QueryOptions& opts, QueryScratch& s) const;

  IndexConfig config_;
  Binarizer binarizer_;
  mutable std::shared_mutex mu_;  // queries shared, add exclusive
  std::vector<std::uint64_t> codes_;  // [size * words_per_row]
  std::vector<std::uint64_t> ids_;    // [size]
  std::vector<float> embeddings_;     // [size * dim] iff store_embeddings
};

}  // namespace cq::search
