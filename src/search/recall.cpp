#include "search/recall.hpp"

#include <algorithm>
#include <cstring>
#include <unordered_set>

#include "tensor/kernels/hamming.hpp"
#include "tensor/kernels/kernels.hpp"
#include "util/check.hpp"

namespace cq::search {

namespace {
constexpr float kNormEps = 1e-12f;

std::vector<float> normalized_copy(const float* x, std::int64_t rows,
                                   std::int64_t dim) {
  std::vector<float> out(static_cast<std::size_t>(rows * dim));
  std::memcpy(out.data(), x, out.size() * sizeof(float));
  kernels::l2_normalize_rows(out.data(), rows, dim, nullptr, kNormEps);
  return out;
}
}  // namespace

double RecallReport::recall(const std::string& variant) const {
  for (const auto& p : points)
    if (p.variant == variant) return p.recall_at_k;
  return -1.0;
}

std::vector<std::vector<std::int64_t>> cosine_ground_truth(
    const float* base, std::int64_t rows, const float* queries,
    std::int64_t nq, std::int64_t dim, std::int64_t k) {
  CQ_CHECK(rows > 0 && nq > 0 && dim > 0 && k > 0);
  const std::vector<float> nbase = normalized_copy(base, rows, dim);
  const std::vector<float> nq_mat = normalized_copy(queries, nq, dim);
  const std::int64_t kk = std::min(k, rows);
  std::vector<float> scores(static_cast<std::size_t>(rows));
  std::vector<std::int64_t> order(static_cast<std::size_t>(rows));
  std::vector<std::vector<std::int64_t>> gt(static_cast<std::size_t>(nq));
  for (std::int64_t q = 0; q < nq; ++q) {
    kernels::dot_scan(nq_mat.data() + q * dim, nbase.data(), rows, dim,
                      scores.data());
    for (std::int64_t r = 0; r < rows; ++r) order[r] = r;
    // Total order (score desc, row asc): the ground-truth set is unique.
    std::partial_sort(order.begin(), order.begin() + kk, order.end(),
                      [&](std::int64_t a, std::int64_t b) {
                        if (scores[a] != scores[b])
                          return scores[a] > scores[b];
                        return a < b;
                      });
    gt[q].assign(order.begin(), order.begin() + kk);
  }
  return gt;
}

RecallReport recall_vs_bits(const float* base, std::int64_t rows,
                            const float* queries, std::int64_t nq,
                            std::int64_t dim, const RecallConfig& config) {
  CQ_CHECK(config.k > 0 && config.overfetch >= 1);
  RecallReport report;
  report.base_rows = rows;
  report.num_queries = nq;
  report.dim = dim;
  report.k = std::min(config.k, rows);
  const auto gt =
      cosine_ground_truth(base, rows, queries, nq, dim, report.k);

  std::vector<std::uint64_t> ids(static_cast<std::size_t>(rows));
  for (std::int64_t r = 0; r < rows; ++r)
    ids[r] = static_cast<std::uint64_t>(r);

  struct Variant {
    const char* name;
    CodeLayout layout;
    bool rerank;
  };
  const Variant variants[] = {
      {"1bit", CodeLayout::k1Bit, false},
      {"1bit_rerank", CodeLayout::k1Bit, true},
      {"2bit", CodeLayout::k2Bit, false},
      {"2bit_rerank", CodeLayout::k2Bit, true},
  };

  std::vector<Result> hits(static_cast<std::size_t>(report.k));
  for (const Variant& v : variants) {
    IndexConfig icfg;
    icfg.dim = dim;
    icfg.layout = v.layout;
    icfg.store_embeddings = v.rerank;
    // Thresholds fit on the indexed corpus itself — the deployment setting
    // (PAPERS.md: per-coordinate statistics, not a global sign split).
    const std::vector<float> nbase = normalized_copy(base, rows, dim);
    Index index(icfg, Binarizer::fit(nbase.data(), rows, dim, v.layout));
    index.add(base, ids.data(), rows);

    QueryOptions opts;
    opts.k = report.k;
    opts.overfetch = v.rerank ? config.overfetch : 1;
    opts.rerank = v.rerank;
    QueryScratch scratch;
    index.prepare(opts, scratch);

    std::int64_t overlap = 0;
    for (std::int64_t q = 0; q < nq; ++q) {
      const std::int64_t n =
          index.query(queries + q * dim, opts, scratch, hits.data());
      std::unordered_set<std::uint64_t> want(gt[q].begin(), gt[q].end());
      for (std::int64_t i = 0; i < n; ++i)
        overlap += want.count(hits[i].id) ? 1 : 0;
    }
    RecallPoint point;
    point.variant = v.name;
    point.layout = v.layout;
    point.rerank = v.rerank;
    point.bits_per_dim = static_cast<double>(bits_per_dim(v.layout));
    point.recall_at_k = static_cast<double>(overlap) /
                        static_cast<double>(nq * report.k);
    report.points.push_back(point);
  }
  return report;
}

RecallReport recall_vs_bits_features(const Tensor& features,
                                     std::int64_t num_queries,
                                     const RecallConfig& config) {
  CQ_CHECK(features.shape().rank() == 2);
  const std::int64_t n = features.dim(0);
  const std::int64_t dim = features.dim(1);
  CQ_CHECK_MSG(num_queries > 0 && num_queries < n,
               "need a non-empty query/base split");
  const float* data = features.data();
  return recall_vs_bits(data + num_queries * dim, n - num_queries, data,
                        num_queries, dim, config);
}

}  // namespace cq::search
