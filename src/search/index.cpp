#include "search/index.hpp"

#include <algorithm>
#include <cstring>
#include <mutex>

#include "core/threadpool.hpp"
#include "tensor/kernels/hamming.hpp"
#include "tensor/kernels/kernels.hpp"
#include "util/check.hpp"

namespace cq::search {

namespace {
constexpr float kNormEps = 1e-12f;

std::int64_t words_for(std::int64_t dim, CodeLayout layout) {
  return (dim * bits_per_dim(layout) + 63) / 64;
}
}  // namespace

// ---- Binarizer -------------------------------------------------------------

Binarizer Binarizer::sign(std::int64_t dim, CodeLayout layout) {
  CQ_CHECK(dim > 0);
  Binarizer b;
  b.dim_ = dim;
  b.layout_ = layout;
  b.words_ = words_for(dim, layout);
  b.lo_.assign(static_cast<std::size_t>(dim), 0.0f);
  if (layout == CodeLayout::k2Bit)
    b.hi_.assign(static_cast<std::size_t>(dim), 0.0f);
  return b;
}

Binarizer Binarizer::fit(const float* data, std::int64_t rows,
                         std::int64_t dim, CodeLayout layout) {
  CQ_CHECK(rows > 0 && dim > 0);
  Binarizer b = sign(dim, layout);
  // Order statistics per coordinate: the VALUE at a rank is a deterministic
  // function of the sample regardless of nth_element's internal ordering.
  std::vector<float> col(static_cast<std::size_t>(rows));
  for (std::int64_t j = 0; j < dim; ++j) {
    for (std::int64_t r = 0; r < rows; ++r) col[r] = data[r * dim + j];
    if (layout == CodeLayout::k1Bit) {
      auto mid = col.begin() + rows / 2;
      std::nth_element(col.begin(), mid, col.end());
      b.lo_[j] = *mid;
    } else {
      auto t1 = col.begin() + rows / 3;
      std::nth_element(col.begin(), t1, col.end());
      b.lo_[j] = *t1;
      auto t2 = col.begin() + (2 * rows) / 3;
      std::nth_element(t1, t2, col.end());  // upper tertile of the top part
      b.hi_[j] = *t2;
    }
  }
  return b;
}

void Binarizer::encode(const float* x, std::int64_t rows,
                       std::uint64_t* codes) const {
  if (layout_ == CodeLayout::k1Bit) {
    kernels::binarize_1bit(x, rows, dim_, lo_.data(), words_, codes);
  } else {
    kernels::binarize_2bit(x, rows, dim_, lo_.data(), hi_.data(), words_,
                           codes);
  }
}

void Binarizer::save(BinaryWriter& w) const {
  w.write_u32(static_cast<std::uint32_t>(layout_));
  w.write_u64(static_cast<std::uint64_t>(dim_));
  w.write_f32_array(lo_);
  w.write_f32_array(hi_);
}

Binarizer Binarizer::load(BinaryReader& r) {
  const auto layout_raw = r.read_u32();
  CQ_CHECK_MSG(layout_raw == 1 || layout_raw == 2,
               "bad code layout " << layout_raw);
  const auto layout = static_cast<CodeLayout>(layout_raw);
  const auto dim = static_cast<std::int64_t>(r.read_u64());
  CQ_CHECK(dim > 0);
  Binarizer b;
  b.dim_ = dim;
  b.layout_ = layout;
  b.words_ = words_for(dim, layout);
  b.lo_ = r.read_f32_array();
  b.hi_ = r.read_f32_array();
  CQ_CHECK(static_cast<std::int64_t>(b.lo_.size()) == dim);
  CQ_CHECK(static_cast<std::int64_t>(b.hi_.size()) ==
           (layout == CodeLayout::k2Bit ? dim : 0));
  return b;
}

// ---- Index -----------------------------------------------------------------

Index::Index(const IndexConfig& config, Binarizer binarizer)
    : config_(config), binarizer_(std::move(binarizer)) {
  CQ_CHECK(config_.dim == binarizer_.dim());
  CQ_CHECK(config_.layout == binarizer_.layout());
}

Index::Index(Index&& other) noexcept
    : config_(other.config_),
      binarizer_(std::move(other.binarizer_)),
      codes_(std::move(other.codes_)),
      ids_(std::move(other.ids_)),
      embeddings_(std::move(other.embeddings_)) {}

void Index::add(const float* embeddings, const std::uint64_t* ids,
                std::int64_t n) {
  CQ_CHECK(n >= 0);
  if (n == 0) return;
  const std::int64_t dim = binarizer_.dim();
  const std::int64_t words = binarizer_.words_per_row();
  // Normalize + pack outside the lock; only the appends serialize against
  // queries.
  std::vector<float> norm(static_cast<std::size_t>(n * dim));
  std::memcpy(norm.data(), embeddings, norm.size() * sizeof(float));
  kernels::l2_normalize_rows(norm.data(), n, dim, nullptr, kNormEps);
  std::vector<std::uint64_t> packed(static_cast<std::size_t>(n * words));
  binarizer_.encode(norm.data(), n, packed.data());

  std::unique_lock lock(mu_);
  codes_.insert(codes_.end(), packed.begin(), packed.end());
  ids_.insert(ids_.end(), ids, ids + n);
  if (config_.store_embeddings)
    embeddings_.insert(embeddings_.end(), norm.begin(), norm.end());
}

std::int64_t Index::size() const {
  std::shared_lock lock(mu_);
  return static_cast<std::int64_t>(ids_.size());
}

void Index::ensure_scratch(const QueryOptions& opts, QueryScratch& s) const {
  const std::int64_t rows = static_cast<std::int64_t>(ids_.size());
  const std::int64_t dim = binarizer_.dim();
  const std::int64_t m = std::max<std::int64_t>(
      1, std::min(opts.k * opts.overfetch, std::max<std::int64_t>(rows, 1)));
  const std::int64_t nblocks = (rows + kScanBlock - 1) / kScanBlock;
  if (static_cast<std::int64_t>(s.qnorm.size()) != dim) s.qnorm.resize(dim);
  if (static_cast<std::int64_t>(s.qcode.size()) !=
      binarizer_.words_per_row())
    s.qcode.resize(binarizer_.words_per_row());
  if (static_cast<std::int64_t>(s.dist.size()) < rows) s.dist.resize(rows);
  if (static_cast<std::int64_t>(s.hits.size()) < rows) s.hits.resize(rows);
  if (static_cast<std::int64_t>(s.blocks.size()) < nblocks)
    s.blocks.resize(nblocks);
  // reset() reserves; arming everything here makes prepare() a true prewarm.
  for (std::int64_t b = 0; b < nblocks; ++b) s.blocks[b].reset(m);
  s.merged.reset(m);
  if (static_cast<std::int64_t>(s.rerank_score.capacity()) < m) {
    s.rerank_score.reserve(m);
    s.order.reserve(m);
  }
}

void Index::prepare(const QueryOptions& opts, QueryScratch& s) const {
  std::shared_lock lock(mu_);
  ensure_scratch(opts, s);
}

std::int64_t Index::query(const float* embedding, const QueryOptions& opts,
                          QueryScratch& s, Result* out) const {
  CQ_CHECK(opts.k >= 1 && opts.overfetch >= 1);
  std::shared_lock lock(mu_);
  CQ_CHECK_MSG(!opts.rerank || config_.store_embeddings,
               "rerank requires store_embeddings");
  const std::int64_t rows = static_cast<std::int64_t>(ids_.size());
  if (rows == 0) return 0;
  ensure_scratch(opts, s);

  const std::int64_t dim = binarizer_.dim();
  const std::int64_t words = binarizer_.words_per_row();
  std::memcpy(s.qnorm.data(), embedding,
              static_cast<std::size_t>(dim) * sizeof(float));
  kernels::l2_normalize_rows(s.qnorm.data(), 1, dim, nullptr, kNormEps);
  binarizer_.encode(s.qnorm.data(), 1, s.qcode.data());

  const std::int64_t m = std::min(opts.k * opts.overfetch, rows);
  const std::int64_t nblocks = (rows + kScanBlock - 1) / kScanBlock;
  // Blocked scan: each block's distances land in a disjoint dist slice and
  // feed a bounded heap while the slice is cache-hot. The heap is per CHUNK
  // (keyed by the chunk's first block — chunks are disjoint, so no two
  // chunks share a slot), not per block: one heap amortizes its warm-up
  // over the whole chunk, and a chunk heap always retains its range's top-m
  // under the (dist, row) total order, so the merged top-m is the unique
  // global top-m for EVERY chunk partition — pool size stays unobservable.
  core::parallel_for(nblocks, 1, [&](std::int64_t b0, std::int64_t b1) {
    TopK& heap = s.blocks[b0];
    // Rows ascend within a chunk, so once the heap is full its max distance
    // is a STRICT rejection bound: a later candidate tying it loses the
    // (dist, row) order outright. filter_lt_u32 applies that bound 8 rows
    // per compare; the bound refreshes per block, so stale-limit survivors
    // just fall through to push's own compare — exactness never depends on
    // how often the limit tightens.
    std::uint32_t limit = 0;  // 0 = heap not yet full, no pruning
    for (std::int64_t b = b0; b < b1; ++b) {
      const std::int64_t r0 = b * kScanBlock;
      const std::int64_t r1 = std::min(rows, r0 + kScanBlock);
      kernels::hamming_scan(s.qcode.data(), codes_.data() + r0 * words,
                            r1 - r0, words, s.dist.data() + r0);
      if (heap.size() < m) {
        for (std::int64_t r = r0; r < r1; ++r) heap.push({s.dist[r], r});
      } else {
        const std::int64_t nhit = kernels::filter_lt_u32(
            s.dist.data() + r0, r1 - r0, limit, s.hits.data() + r0);
        for (std::int64_t h = 0; h < nhit; ++h) {
          const std::int64_t r = r0 + s.hits[r0 + h];
          heap.push({s.dist[r], r});
        }
      }
      if (heap.size() == m) limit = heap.heap().front().dist;
    }
  });
  // Serial merge (unused chunk slots are empty); the total order makes the
  // merged top-m unique, so even the merge order only matters for speed.
  for (std::int64_t b = 0; b < nblocks; ++b)
    for (const Candidate& c : s.blocks[b].heap()) s.merged.push(c);
  const auto& pool = s.merged.sorted();  // nearest-first, ties to lower row
  const std::int64_t pooled = static_cast<std::int64_t>(pool.size());
  const std::int64_t emit = std::min(opts.k, pooled);

  if (!opts.rerank) {
    for (std::int64_t i = 0; i < emit; ++i) {
      out[i] = {ids_[pool[i].row], pool[i].dist,
                -static_cast<float>(pool[i].dist)};
    }
    return emit;
  }

  // Exact-cosine rerank of the overfetched pool. dot_scan keeps the fixed
  // 8-lane reduction, so reranked scores (and thus results) are identical
  // across SIMD backends too.
  s.rerank_score.resize(static_cast<std::size_t>(pooled));
  s.order.resize(static_cast<std::size_t>(pooled));
  for (std::int64_t i = 0; i < pooled; ++i) {
    kernels::dot_scan(s.qnorm.data(), embeddings_.data() + pool[i].row * dim,
                      1, dim, &s.rerank_score[i]);
    s.order[i] = i;
  }
  std::sort(s.order.begin(), s.order.end(),
            [&](std::int64_t a, std::int64_t b) {
              if (s.rerank_score[a] != s.rerank_score[b])
                return s.rerank_score[a] > s.rerank_score[b];
              return pool[a].row < pool[b].row;
            });
  for (std::int64_t i = 0; i < emit; ++i) {
    const std::int64_t p = s.order[i];
    out[i] = {ids_[pool[p].row], pool[p].dist, s.rerank_score[p]};
  }
  return emit;
}

// ---- checkpointing ---------------------------------------------------------

void Index::save(const std::string& path) const {
  std::shared_lock lock(mu_);
  BinaryWriter w(path);
  write_checkpoint_header(w);
  w.write_string("search_index");
  w.write_u32(config_.store_embeddings ? 1u : 0u);
  binarizer_.save(w);
  w.write_u64_array(codes_);
  w.write_u64_array(ids_);
  w.write_f32_array(embeddings_);
  w.close();
}

Index Index::load(const std::string& path) {
  BinaryReader r(path);
  read_checkpoint_header(r);
  const auto kind = r.read_string();
  CQ_CHECK_MSG(kind == "search_index", "not a search index: " << path);
  const bool store = r.read_u32() != 0;
  Binarizer b = Binarizer::load(r);
  IndexConfig config;
  config.dim = b.dim();
  config.layout = b.layout();
  config.store_embeddings = store;
  Index index(config, std::move(b));
  index.codes_ = r.read_u64_array();
  index.ids_ = r.read_u64_array();
  index.embeddings_ = r.read_f32_array();
  r.expect_eof();
  const auto n = static_cast<std::int64_t>(index.ids_.size());
  CQ_CHECK(static_cast<std::int64_t>(index.codes_.size()) ==
           n * index.words_per_row());
  CQ_CHECK(static_cast<std::int64_t>(index.embeddings_.size()) ==
           (store ? n * config.dim : 0));
  return index;
}

}  // namespace cq::search
