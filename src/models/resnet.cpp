#include "models/resnet.hpp"

#include "nn/activations.hpp"
#include "nn/pooling.hpp"
#include "tensor/ops.hpp"

namespace cq::models {

namespace {

nn::Conv2d& add_qconv(nn::Sequential& seq, const nn::Conv2dSpec& spec,
                      std::shared_ptr<const quant::QuantPolicy> policy,
                      Rng& rng, const std::string& name) {
  auto& conv = seq.emplace<nn::Conv2d>(spec, rng, name);
  conv.set_weight_transform(
      std::make_shared<quant::FakeQuantWeight>(std::move(policy)));
  return conv;
}

}  // namespace

BasicBlock::BasicBlock(std::int64_t in_ch, std::int64_t out_ch,
                       std::int64_t stride,
                       std::shared_ptr<const quant::QuantPolicy> policy,
                       Rng& rng, const std::string& name)
    : actq_(policy) {
  nn::Conv2dSpec c1{.in_channels = in_ch,
                    .out_channels = out_ch,
                    .kernel = 3,
                    .stride = stride,
                    .pad = 1};
  add_qconv(main_, c1, policy, rng, name + ".conv1");
  main_.emplace<nn::BatchNorm2d>(out_ch, 0.1f, 1e-5f, name + ".bn1");
  main_.emplace<nn::ReLU>();
  nn::Conv2dSpec c2{.in_channels = out_ch,
                    .out_channels = out_ch,
                    .kernel = 3,
                    .stride = 1,
                    .pad = 1};
  add_qconv(main_, c2, policy, rng, name + ".conv2");
  main_.emplace<nn::BatchNorm2d>(out_ch, 0.1f, 1e-5f, name + ".bn2");

  if (stride != 1 || in_ch != out_ch) {
    shortcut_ = std::make_unique<nn::Sequential>();
    nn::Conv2dSpec cs{.in_channels = in_ch,
                      .out_channels = out_ch,
                      .kernel = 1,
                      .stride = stride,
                      .pad = 0};
    add_qconv(*shortcut_, cs, policy, rng, name + ".down");
    shortcut_->emplace<nn::BatchNorm2d>(out_ch, 0.1f, 1e-5f, name + ".bn_down");
  }
}

Tensor BasicBlock::forward(const Tensor& x) {
  Tensor m = main_.forward(x);
  Tensor s = shortcut_ ? shortcut_->forward(x) : x;
  Tensor y = relu_.forward(ops::add(m, s));
  return actq_.forward(y);
}

Tensor BasicBlock::backward(const Tensor& grad_out) {
  Tensor g = actq_.backward(grad_out);
  g = relu_.backward(g);
  // d(main + shortcut): the same gradient flows down both paths.
  Tensor grad_short = shortcut_ ? shortcut_->backward(g) : g;
  Tensor grad_main = main_.backward(g);
  return ops::add(grad_main, grad_short);
}

void BasicBlock::visit_children(const std::function<void(Module&)>& fn) {
  fn(main_);
  if (shortcut_) fn(*shortcut_);
  fn(relu_);
  fn(actq_);
}

ResNetConfig resnet18_config() { return {{2, 2, 2, 2}, 8, 3}; }
ResNetConfig resnet34_config() { return {{3, 4, 6, 3}, 8, 3}; }
ResNetConfig resnet74_config() { return {{12, 12, 12}, 4, 3}; }
ResNetConfig resnet110_config() { return {{18, 18, 18}, 4, 3}; }
ResNetConfig resnet152_config() { return {{25, 25, 25}, 4, 3}; }

std::unique_ptr<nn::Sequential> build_resnet(
    const ResNetConfig& config,
    std::shared_ptr<const quant::QuantPolicy> policy, Rng& rng,
    std::int64_t* feature_dim_out, bool include_gap) {
  CQ_CHECK(!config.stage_blocks.empty() && config.base_width > 0);
  auto net = std::make_unique<nn::Sequential>();

  // Stem: 3x3 stride-1 conv (the CIFAR-resolution stem; a 7x7/maxpool stem
  // would destroy 16-32 px inputs).
  nn::Conv2dSpec stem{.in_channels = config.in_channels,
                      .out_channels = config.base_width,
                      .kernel = 3,
                      .stride = 1,
                      .pad = 1};
  add_qconv(*net, stem, policy, rng, "stem");
  net->emplace<nn::BatchNorm2d>(config.base_width, 0.1f, 1e-5f, "stem.bn");
  net->emplace<nn::ReLU>();
  net->emplace<quant::ActQuant>(policy);

  std::int64_t in_ch = config.base_width;
  for (std::size_t stage = 0; stage < config.stage_blocks.size(); ++stage) {
    const std::int64_t out_ch = config.base_width << stage;
    for (std::int64_t b = 0; b < config.stage_blocks[stage]; ++b) {
      const std::int64_t stride = (stage > 0 && b == 0) ? 2 : 1;
      net->emplace<BasicBlock>(in_ch, out_ch, stride, policy, rng,
                               "s" + std::to_string(stage) + ".b" +
                                   std::to_string(b));
      in_ch = out_ch;
    }
  }
  if (include_gap) net->emplace<nn::GlobalAvgPool>();
  if (feature_dim_out != nullptr) *feature_dim_out = in_ch;
  return net;
}

}  // namespace cq::models
