// ViT-style transformer encoder — the third backbone family.
//
// Patchify is a strided im2row + Linear (one GEMM), attention is batched
// gemm kNT/kNN calls around kernels::softmax_rows, and the MLP is two
// Linears around kernels::gelu. Every Linear carries the encoder's
// FakeQuantWeight transform and every block ends in ActQuant, so the shared
// QuantPolicy quantizes the whole backbone exactly like the conv families
// (paper Eq. 4) — and the graph compiler lowers the same Linears onto the
// int8 VNNI path for serving.
//
// Activations flow as [N, seq, dim]; blocks reshape to [N*seq, dim] around
// the token-wise Linears (zero-copy, the GEMM just sees more rows).
#pragma once

#include <memory>

#include "nn/activations.hpp"
#include "nn/layernorm.hpp"
#include "nn/linear.hpp"
#include "nn/sequential.hpp"
#include "quant/actquant.hpp"
#include "quant/policy.hpp"
#include "tensor/im2col.hpp"

namespace cq::models {

namespace detail {

/// Scratch floats attention_forward needs beyond the gathered q/k/v:
/// one [seq, seq] score matrix plus one [seq, dim/heads] context tile.
std::int64_t attention_scratch_floats(std::int64_t seq, std::int64_t dim,
                                      std::int64_t heads);

/// Mean over the sequence axis for ONE sample: x [seq, dim] -> out [dim],
/// fixed-order float accumulation. Shared by SeqMeanPool and the graph
/// executor (compiled == eager bitwise).
void seq_mean_forward(const float* x, std::int64_t seq, std::int64_t dim,
                      float* out);

/// Multi-head self-attention over ONE sample's fused-QKV activations.
/// `qkv` is [seq, 3*dim] with each row laid out [q(dim) | k(dim) | v(dim)];
/// head h owns columns [h*dh, (h+1)*dh) of each third (dh = dim/heads).
/// Gathers the per-head matrices into qh/kh/vh ([heads, seq, dh] each),
/// computes softmax(Q K^T / sqrt(dh)) V per head via gemm kNT + softmax_rows
/// + gemm kNN, and writes the heads side by side into out [seq, dim].
/// When `probs` is non-null it receives the attention maps
/// ([heads, seq, seq]) for the backward pass; otherwise they live in
/// `scratch` (attention_scratch_floats(seq, dim, heads) floats). Shared
/// verbatim
/// by the eager module and the graph executor, so compiled == eager bitwise.
void attention_forward(const float* qkv, std::int64_t seq, std::int64_t dim,
                       std::int64_t heads, float* qh, float* kh, float* vh,
                       float* probs, float* scratch, float* out);

}  // namespace detail

/// Patchify: strided im2row (kernel = stride = patch, pad 0) feeding a
/// Linear [dim, C*patch*patch], then learned positional embeddings.
/// [N, C, H, W] -> [N, seq, dim] with seq = (H/patch)*(W/patch).
class PatchEmbed : public nn::Module {
 public:
  PatchEmbed(std::int64_t in_channels, std::int64_t image_size,
             std::int64_t patch, std::int64_t dim,
             std::shared_ptr<const quant::QuantPolicy> policy, Rng& rng,
             const std::string& name);

  const char* type_name() const override { return "PatchEmbed"; }
  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;
  void collect_parameters(std::vector<nn::Parameter*>& out) override;
  void visit_children(const std::function<void(Module&)>& fn) override;
  std::size_t pending_caches() const override { return shapes_.size(); }

  const ConvGeometry& geometry() const { return geo_; }
  std::int64_t seq() const { return seq_; }
  std::int64_t dim() const { return dim_; }
  nn::Linear& proj() { return proj_; }
  nn::Parameter& pos() { return pos_; }

 protected:
  void on_clear_cache() override { shapes_.clear(); }

 private:
  ConvGeometry geo_;
  std::int64_t seq_;
  std::int64_t dim_;
  nn::Linear proj_;
  nn::Parameter pos_;  // [seq, dim]
  std::vector<Shape> shapes_;
};

/// One pre-LN transformer block:
///   x  + proj(attn(ln1(x)))  ->  x2;  x2 + fc2(gelu(fc1(ln2(x2))))
/// followed by ActQuant. qkv is one fused Linear [3*dim, dim].
class VitBlock : public nn::Module {
 public:
  VitBlock(std::int64_t dim, std::int64_t heads, std::int64_t mlp_dim,
           std::shared_ptr<const quant::QuantPolicy> policy, Rng& rng,
           const std::string& name);

  const char* type_name() const override { return "VitBlock"; }
  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;
  void visit_children(const std::function<void(Module&)>& fn) override;
  std::size_t pending_caches() const override { return cache_.size(); }

  std::int64_t dim() const { return dim_; }
  std::int64_t heads() const { return heads_; }
  nn::LayerNorm& ln1() { return ln1_; }
  nn::Linear& qkv() { return qkv_; }
  nn::Linear& proj() { return proj_; }
  nn::LayerNorm& ln2() { return ln2_; }
  nn::Linear& fc1() { return fc1_; }
  nn::Linear& fc2() { return fc2_; }

 protected:
  void on_clear_cache() override { cache_.clear(); }

 private:
  struct Cache {
    Tensor qh, kh, vh;  // [N, heads, seq, dh]
    Tensor probs;       // [N, heads, seq, seq]
  };

  std::int64_t dim_;
  std::int64_t heads_;
  nn::LayerNorm ln1_;
  nn::Linear qkv_;
  nn::Linear proj_;
  nn::LayerNorm ln2_;
  nn::Linear fc1_;
  nn::GELU gelu_;
  nn::Linear fc2_;
  quant::ActQuant actq_;
  std::vector<Cache> cache_;
};

/// Mean over the sequence axis: [N, seq, dim] -> [N, dim].
class SeqMeanPool : public nn::Module {
 public:
  const char* type_name() const override { return "SeqMeanPool"; }
  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;
  std::size_t pending_caches() const override { return seqs_.size(); }

 protected:
  void on_clear_cache() override { seqs_.clear(); }

 private:
  std::vector<std::int64_t> seqs_;
};

struct VitConfig {
  std::int64_t image_size = 16;  // square inputs
  std::int64_t in_channels = 3;
  std::int64_t patch = 4;        // seq = (image_size / patch)^2
  std::int64_t dim = 32;
  std::int64_t depth = 2;
  std::int64_t heads = 4;
  std::int64_t mlp_ratio = 2;
};

/// The thumbnail-scale default, sized for the 16x16 SynthVision images the
/// conv families train on: seq 16, dim 32, 2 blocks, 4 heads.
VitConfig vit_tiny_config();

/// Builds [N, C, H, W] -> [N, dim]: PatchEmbed, `depth` VitBlocks, a final
/// LayerNorm, and SeqMeanPool. Writes `dim` to feature_dim_out.
std::unique_ptr<nn::Sequential> build_vit(
    const VitConfig& config,
    std::shared_ptr<const quant::QuantPolicy> policy, Rng& rng,
    std::int64_t* feature_dim_out);

}  // namespace cq::models
