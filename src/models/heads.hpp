// MLP heads used by the SSL pipelines and the evaluators.
#pragma once

#include <memory>

#include "nn/batchnorm.hpp"
#include "nn/linear.hpp"
#include "nn/sequential.hpp"

namespace cq::models {

/// BatchNorm over [N, D] features (adapter around BatchNorm2d).
class BatchNorm1d : public nn::Module {
 public:
  explicit BatchNorm1d(std::int64_t features, std::string name = "bn1d");

  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;
  void visit_children(const std::function<void(Module&)>& fn) override;

 private:
  std::int64_t features_;
  nn::BatchNorm2d bn_;
};

/// SimCLR projection head: Linear -> ReLU -> Linear (Chen et al. 2020).
std::unique_ptr<nn::Sequential> make_projection_head(std::int64_t in_dim,
                                                     std::int64_t hidden_dim,
                                                     std::int64_t out_dim,
                                                     Rng& rng);

/// BYOL projector/predictor: Linear -> BN -> ReLU -> Linear (Grill et al.).
std::unique_ptr<nn::Sequential> make_byol_mlp(std::int64_t in_dim,
                                              std::int64_t hidden_dim,
                                              std::int64_t out_dim, Rng& rng);

/// Linear classifier head.
std::unique_ptr<nn::Sequential> make_classifier(std::int64_t in_dim,
                                                std::int64_t num_classes,
                                                Rng& rng);

}  // namespace cq::models
