#include "models/encoder.hpp"

#include <algorithm>

#include "models/mobilenetv2.hpp"
#include "models/resnet.hpp"
#include "models/vit.hpp"
#include "util/serialize.hpp"

namespace cq::models {

Tensor Encoder::forward_at(const Tensor& x, int bits) {
  const int previous = policy->bits();
  policy->set_bits(bits);
  Tensor f = backbone->forward(x);
  policy->set_bits(previous);
  return f;
}

const std::vector<std::string>& known_archs() {
  static const std::vector<std::string> archs = {
      "resnet18", "resnet34",  "resnet74",
      "resnet110", "resnet152", "mobilenetv2", "vit"};
  return archs;
}

bool is_known_arch(const std::string& arch) {
  const auto& archs = known_archs();
  return std::find(archs.begin(), archs.end(), arch) != archs.end();
}

Encoder make_encoder(const std::string& arch, Rng& rng,
                     quant::QuantizerConfig qconfig) {
  Encoder enc;
  enc.arch = arch;
  enc.qconfig = qconfig;
  enc.policy = std::make_shared<quant::QuantPolicy>(qconfig);
  if (arch == "resnet18") {
    enc.backbone = build_resnet(resnet18_config(), enc.policy, rng,
                                &enc.feature_dim);
  } else if (arch == "resnet34") {
    enc.backbone = build_resnet(resnet34_config(), enc.policy, rng,
                                &enc.feature_dim);
  } else if (arch == "resnet74") {
    enc.backbone = build_resnet(resnet74_config(), enc.policy, rng,
                                &enc.feature_dim);
  } else if (arch == "resnet110") {
    enc.backbone = build_resnet(resnet110_config(), enc.policy, rng,
                                &enc.feature_dim);
  } else if (arch == "resnet152") {
    enc.backbone = build_resnet(resnet152_config(), enc.policy, rng,
                                &enc.feature_dim);
  } else if (arch == "mobilenetv2") {
    enc.backbone = build_mobilenetv2(mobilenetv2_config(), enc.policy, rng,
                                     &enc.feature_dim);
  } else if (arch == "vit") {
    enc.backbone =
        build_vit(vit_tiny_config(), enc.policy, rng, &enc.feature_dim);
  } else {
    CQ_CHECK_MSG(false, "unknown architecture '" << arch << "'");
  }
  return enc;
}

void save_module(const std::string& path, nn::Module& module) {
  BinaryWriter w(path);
  write_checkpoint_header(w);
  auto params = module.parameters();
  std::vector<Tensor*> buffers;
  module.collect_buffers(buffers);
  w.write_u64(params.size());
  for (nn::Parameter* p : params) {
    w.write_string(p->name);
    const auto& data = p->value;
    w.write_f32_array(
        std::vector<float>(data.data(), data.data() + data.numel()));
  }
  w.write_u64(buffers.size());
  for (Tensor* b : buffers)
    w.write_f32_array(std::vector<float>(b->data(), b->data() + b->numel()));
  w.close();
}

void load_module(const std::string& path, nn::Module& module) {
  BinaryReader r(path);
  read_checkpoint_header(r);
  auto params = module.parameters();
  const auto n_params = r.read_u64();
  CQ_CHECK_MSG(n_params == params.size(),
               "checkpoint has " << n_params << " params, module expects "
                                 << params.size());
  for (nn::Parameter* p : params) {
    const auto name = r.read_string();
    CQ_CHECK_MSG(name == p->name, "checkpoint param '"
                                      << name << "' does not match module '"
                                      << p->name << "'");
    const auto values = r.read_f32_array();
    CQ_CHECK_MSG(static_cast<std::int64_t>(values.size()) == p->value.numel(),
                 "size mismatch for " << name);
    std::copy(values.begin(), values.end(), p->value.data());
    p->bump_version();
  }
  std::vector<Tensor*> buffers;
  module.collect_buffers(buffers);
  const auto n_buffers = r.read_u64();
  CQ_CHECK_MSG(n_buffers == buffers.size(), "checkpoint buffer count mismatch");
  for (Tensor* b : buffers) {
    const auto values = r.read_f32_array();
    CQ_CHECK_MSG(static_cast<std::int64_t>(values.size()) == b->numel(),
                 "buffer size mismatch");
    std::copy(values.begin(), values.end(), b->data());
  }
  r.expect_eof();
}

}  // namespace cq::models
