// MobileNetV2 backbone (Sandler et al. 2018), width/expansion-reduced.
//
// Inverted residual block: 1x1 expand (ReLU6) -> 3x3 depthwise (ReLU6) ->
// 1x1 linear projection, residual add when stride == 1 and channels match.
// Quantized like the ResNets (weight transforms on every conv, ActQuant on
// every block output).
#pragma once

#include <memory>

#include "nn/batchnorm.hpp"
#include "nn/conv2d.hpp"
#include "nn/sequential.hpp"
#include "quant/actquant.hpp"
#include "quant/policy.hpp"

namespace cq::models {

class InvertedResidual : public nn::Module {
 public:
  InvertedResidual(std::int64_t in_ch, std::int64_t out_ch,
                   std::int64_t stride, std::int64_t expand_ratio,
                   std::shared_ptr<const quant::QuantPolicy> policy, Rng& rng,
                   const std::string& name);

  const char* type_name() const override { return "InvertedResidual"; }
  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;
  void visit_children(const std::function<void(Module&)>& fn) override;

  /// Structure accessors (used by the int8 deployment compiler).
  nn::Sequential& body() { return body_; }
  bool uses_residual() const { return use_residual_; }

 private:
  bool use_residual_;
  nn::Sequential body_;
  quant::ActQuant actq_;
};

struct MobileNetV2Config {
  struct BlockSpec {
    std::int64_t expand;
    std::int64_t out_ch;
    std::int64_t repeats;
    std::int64_t stride;  // stride of the first repeat
  };
  std::int64_t in_channels = 3;
  std::int64_t stem_ch = 8;
  std::int64_t head_ch = 48;
  std::vector<BlockSpec> blocks;
};

MobileNetV2Config mobilenetv2_config();

std::unique_ptr<nn::Sequential> build_mobilenetv2(
    const MobileNetV2Config& config,
    std::shared_ptr<const quant::QuantPolicy> policy, Rng& rng,
    std::int64_t* feature_dim_out);

}  // namespace cq::models
