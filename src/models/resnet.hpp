// ResNet backbones, width-reduced for single-core experiments.
//
// Two families, matching the paper's six-network zoo:
//  * "ImageNet-style" ResNet-18/34 — 4 stages of BasicBlocks, channel
//    doubling, base width 8 (the paper's 64, scaled 8x down).
//  * "CIFAR-style" ResNet-74/110/152 — 3 stages of n BasicBlocks each
//    (depth = 6n+2; n = 12/18/25), base width 4. These are the thin deep
//    nets whose lower absolute accuracy in the paper's Tables 4/5 the
//    family structure preserves.
//
// Every Conv2d gets the encoder's FakeQuantWeight transform and every block
// output passes through ActQuant, so setting the shared QuantPolicy's
// bit-width quantizes the whole backbone (paper Eq. 4).
#pragma once

#include <memory>

#include "nn/activations.hpp"
#include "nn/batchnorm.hpp"
#include "nn/conv2d.hpp"
#include "nn/sequential.hpp"
#include "quant/actquant.hpp"
#include "quant/policy.hpp"

namespace cq::models {

/// Standard pre-activation-free BasicBlock: conv-bn-relu-conv-bn (+ skip),
/// final ReLU, then activation fake-quant.
class BasicBlock : public nn::Module {
 public:
  BasicBlock(std::int64_t in_ch, std::int64_t out_ch, std::int64_t stride,
             std::shared_ptr<const quant::QuantPolicy> policy, Rng& rng,
             const std::string& name);

  const char* type_name() const override { return "BasicBlock"; }
  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;
  void visit_children(const std::function<void(Module&)>& fn) override;

  /// Structure accessors (used by the int8 deployment compiler).
  nn::Sequential& main_path() { return main_; }
  nn::Sequential* shortcut_path() { return shortcut_.get(); }

 private:
  nn::Sequential main_;
  std::unique_ptr<nn::Sequential> shortcut_;  // null = identity skip
  nn::ReLU relu_;
  quant::ActQuant actq_;
};

struct ResNetConfig {
  /// Blocks per stage; stage i uses base_width << i channels (capped by the
  /// stage list length) and stride 2 from the second stage on.
  std::vector<std::int64_t> stage_blocks;
  std::int64_t base_width = 8;
  std::int64_t in_channels = 3;
};

/// ImageNet-style: 4 stages.
ResNetConfig resnet18_config();
ResNetConfig resnet34_config();
/// CIFAR-style: 3 stages, depth 6n+2.
ResNetConfig resnet74_config();
ResNetConfig resnet110_config();
ResNetConfig resnet152_config();

/// Builds the full backbone [N,3,H,W] -> [N, feature_dim]; writes the
/// resulting feature dimension to `feature_dim_out`. With
/// include_gap = false the net stops before global pooling and returns the
/// spatial feature map [N, feature_dim, h, w] — the detection trunk.
/// (GlobalAvgPool has no parameters, so classification checkpoints load
/// into detection trunks unchanged.)
std::unique_ptr<nn::Sequential> build_resnet(
    const ResNetConfig& config,
    std::shared_ptr<const quant::QuantPolicy> policy, Rng& rng,
    std::int64_t* feature_dim_out, bool include_gap = true);

}  // namespace cq::models
