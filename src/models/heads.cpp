#include "models/heads.hpp"

#include "nn/activations.hpp"

namespace cq::models {

BatchNorm1d::BatchNorm1d(std::int64_t features, std::string name)
    : features_(features), bn_(features, 0.1f, 1e-5f, std::move(name)) {}

Tensor BatchNorm1d::forward(const Tensor& x) {
  CQ_CHECK(x.shape().rank() == 2 && x.dim(1) == features_);
  const auto n = x.dim(0);
  Tensor y = bn_.forward(x.reshape(Shape{n, features_, 1, 1}));
  return y.reshape(Shape{n, features_});
}

Tensor BatchNorm1d::backward(const Tensor& grad_out) {
  const auto n = grad_out.dim(0);
  Tensor g = bn_.backward(grad_out.reshape(Shape{n, features_, 1, 1}));
  return g.reshape(Shape{n, features_});
}

void BatchNorm1d::visit_children(const std::function<void(Module&)>& fn) {
  fn(bn_);
}

std::unique_ptr<nn::Sequential> make_projection_head(std::int64_t in_dim,
                                                     std::int64_t hidden_dim,
                                                     std::int64_t out_dim,
                                                     Rng& rng) {
  auto head = std::make_unique<nn::Sequential>();
  head->emplace<nn::Linear>(in_dim, hidden_dim, rng, true, "proj.fc1");
  head->emplace<nn::ReLU>();
  head->emplace<nn::Linear>(hidden_dim, out_dim, rng, true, "proj.fc2");
  return head;
}

std::unique_ptr<nn::Sequential> make_byol_mlp(std::int64_t in_dim,
                                              std::int64_t hidden_dim,
                                              std::int64_t out_dim, Rng& rng) {
  auto head = std::make_unique<nn::Sequential>();
  head->emplace<nn::Linear>(in_dim, hidden_dim, rng, true, "byol.fc1");
  head->emplace<BatchNorm1d>(hidden_dim, "byol.bn");
  head->emplace<nn::ReLU>();
  head->emplace<nn::Linear>(hidden_dim, out_dim, rng, true, "byol.fc2");
  return head;
}

std::unique_ptr<nn::Sequential> make_classifier(std::int64_t in_dim,
                                                std::int64_t num_classes,
                                                Rng& rng) {
  auto head = std::make_unique<nn::Sequential>();
  head->emplace<nn::Linear>(in_dim, num_classes, rng, true, "cls.fc");
  return head;
}

}  // namespace cq::models
