// Encoder: a quantization-aware backbone plus its shared QuantPolicy.
//
// This is the F_q(x, theta_q) of the paper: `policy->set_bits(q)` switches
// every conv weight and intermediate activation of the backbone to q-bit
// fake quantization for subsequent forward passes.
#pragma once

#include <memory>
#include <string>

#include "nn/sequential.hpp"
#include "quant/policy.hpp"

namespace cq::models {

struct Encoder {
  std::unique_ptr<nn::Sequential> backbone;  // [N,3,H,W] -> [N, feature_dim]
  std::shared_ptr<quant::QuantPolicy> policy;
  std::int64_t feature_dim = 0;
  std::string arch;
  quant::QuantizerConfig qconfig;

  /// Forward at the policy's current precision.
  Tensor forward(const Tensor& x) { return backbone->forward(x); }
  /// Forward at an explicit precision (restores the previous one after).
  Tensor forward_at(const Tensor& x, int bits);
};

/// Known architectures: resnet18, resnet34, resnet74, resnet110, resnet152,
/// mobilenetv2, vit.
bool is_known_arch(const std::string& arch);
const std::vector<std::string>& known_archs();

/// Build an encoder by name. Throws CheckError for unknown names.
Encoder make_encoder(const std::string& arch, Rng& rng,
                     quant::QuantizerConfig qconfig = {});

/// Save/load every parameter and buffer of a module (in collection order) to
/// a checkpoint file. Loading validates names and shapes.
void save_module(const std::string& path, nn::Module& module);
void load_module(const std::string& path, nn::Module& module);

}  // namespace cq::models
