#include "models/vit.hpp"

#include <cmath>
#include <cstring>
#include <utility>

#include "tensor/gemm.hpp"
#include "tensor/kernels/kernels.hpp"
#include "tensor/ops.hpp"

namespace cq::models {

namespace detail {

std::int64_t attention_scratch_floats(std::int64_t seq, std::int64_t dim,
                                      std::int64_t heads) {
  return seq * seq + seq * (dim / heads);
}

void attention_forward(const float* qkv, std::int64_t seq, std::int64_t dim,
                       std::int64_t heads, float* qh, float* kh, float* vh,
                       float* probs, float* scratch, float* out) {
  const std::int64_t dh = dim / heads;
  const float scale = 1.0f / std::sqrt(static_cast<float>(dh));
  // Gather the strided head columns of the fused [q | k | v] rows into
  // contiguous [seq, dh] matrices so each head is one dense GEMM pair.
  for (std::int64_t h = 0; h < heads; ++h) {
    for (std::int64_t s = 0; s < seq; ++s) {
      const float* row = qkv + s * 3 * dim + h * dh;
      float* dst = (h * seq + s) * dh + qh;
      std::memcpy(dst, row, dh * sizeof(float));
      std::memcpy(kh + (h * seq + s) * dh, row + dim, dh * sizeof(float));
      std::memcpy(vh + (h * seq + s) * dh, row + 2 * dim, dh * sizeof(float));
    }
  }
  float* score_scratch = scratch;          // [seq, seq]
  float* ctx = scratch + seq * seq;        // [seq, dh]
  for (std::int64_t h = 0; h < heads; ++h) {
    float* S = probs != nullptr ? probs + h * seq * seq : score_scratch;
    gemm::gemm(gemm::Trans::kNT, seq, seq, dh, qh + h * seq * dh,
               kh + h * seq * dh, S, /*accumulate=*/false);
    for (std::int64_t i = 0; i < seq * seq; ++i) S[i] *= scale;
    kernels::softmax_rows(S, seq, seq);
    gemm::gemm(gemm::Trans::kNN, seq, dh, seq, S, vh + h * seq * dh, ctx,
               /*accumulate=*/false);
    for (std::int64_t s = 0; s < seq; ++s)
      std::memcpy(out + s * dim + h * dh, ctx + s * dh, dh * sizeof(float));
  }
}

void seq_mean_forward(const float* x, std::int64_t seq, std::int64_t dim,
                      float* out) {
  for (std::int64_t d = 0; d < dim; ++d) out[d] = 0.0f;
  for (std::int64_t s = 0; s < seq; ++s) {
    const float* row = x + s * dim;
    for (std::int64_t d = 0; d < dim; ++d) out[d] += row[d];
  }
  const float inv = 1.0f / static_cast<float>(seq);
  for (std::int64_t d = 0; d < dim; ++d) out[d] *= inv;
}

}  // namespace detail

namespace {

void install_fake_quant(nn::Linear& linear,
                        std::shared_ptr<const quant::QuantPolicy> policy) {
  linear.set_weight_transform(
      std::make_shared<quant::FakeQuantWeight>(std::move(policy)));
}

}  // namespace

// ---- PatchEmbed ------------------------------------------------------------

PatchEmbed::PatchEmbed(std::int64_t in_channels, std::int64_t image_size,
                       std::int64_t patch, std::int64_t dim,
                       std::shared_ptr<const quant::QuantPolicy> policy,
                       Rng& rng, const std::string& name)
    : geo_{.in_channels = in_channels,
           .in_h = image_size,
           .in_w = image_size,
           .kernel_h = patch,
           .kernel_w = patch,
           .stride = patch,
           .pad = 0},
      seq_(geo_.col_cols()),
      dim_(dim),
      proj_(geo_.col_rows(), dim, rng, /*bias=*/true, name + ".proj"),
      pos_(Tensor::randn(Shape{seq_, dim}, rng, 0.0f, 0.02f), name + ".pos",
           /*decay=*/false) {
  CQ_CHECK_MSG(image_size % patch == 0,
               "patch " << patch << " must divide image size " << image_size);
  install_fake_quant(proj_, std::move(policy));
}

Tensor PatchEmbed::forward(const Tensor& x) {
  CQ_CHECK_MSG(x.shape().rank() == 4 && x.dim(1) == geo_.in_channels &&
                   x.dim(2) == geo_.in_h && x.dim(3) == geo_.in_w,
               "patch embed input " << x.shape().str() << " expects [N, "
                                    << geo_.in_channels << ", " << geo_.in_h
                                    << ", " << geo_.in_w << "]");
  const auto n = x.dim(0);
  const auto krows = geo_.col_rows();
  const auto sample = geo_.in_channels * geo_.in_h * geo_.in_w;
  Tensor patches = Tensor::empty(Shape{n * seq_, krows});
  for (std::int64_t i = 0; i < n; ++i)
    im2row(x.data() + i * sample, geo_, patches.data() + i * seq_ * krows);
  Tensor emb = proj_.forward(patches);  // [N*seq, dim]
  float* e = emb.data();
  const float* pos = pos_.value.data();
  for (std::int64_t row = 0; row < n * seq_; ++row) {
    const float* p = pos + (row % seq_) * dim_;
    float* dst = e + row * dim_;
    for (std::int64_t d = 0; d < dim_; ++d) dst[d] += p[d];
  }
  if (mode_ == nn::Mode::kTrain) shapes_.push_back(x.shape());
  return emb.reshape(Shape{n, seq_, dim_});
}

Tensor PatchEmbed::backward(const Tensor& grad_out) {
  CQ_CHECK_MSG(!shapes_.empty(),
               "patch embed backward without matching forward");
  Shape in_shape = std::move(shapes_.back());
  shapes_.pop_back();
  const auto n = grad_out.dim(0);
  CQ_CHECK(grad_out.shape().rank() == 3 && grad_out.dim(1) == seq_ &&
           grad_out.dim(2) == dim_);
  float* dpos = pos_.grad.data();
  const float* g = grad_out.data();
  for (std::int64_t row = 0; row < n * seq_; ++row) {
    float* p = dpos + (row % seq_) * dim_;
    const float* src = g + row * dim_;
    for (std::int64_t d = 0; d < dim_; ++d) p[d] += src[d];
  }
  Tensor gp = proj_.backward(grad_out.reshape(Shape{n * seq_, dim_}));
  const auto krows = geo_.col_rows();
  const auto sample = geo_.in_channels * geo_.in_h * geo_.in_w;
  Tensor dx = Tensor::zeros(in_shape);
  Tensor colsT = Tensor::empty(Shape{krows, seq_});
  for (std::int64_t i = 0; i < n; ++i) {
    // gp holds patch-major rows [seq, krows]; col2im wants [krows, seq].
    const float* rows = gp.data() + i * seq_ * krows;
    for (std::int64_t s = 0; s < seq_; ++s)
      for (std::int64_t r = 0; r < krows; ++r)
        colsT.data()[r * seq_ + s] = rows[s * krows + r];
    col2im(colsT.data(), geo_, dx.data() + i * sample);
  }
  return dx;
}

void PatchEmbed::collect_parameters(std::vector<nn::Parameter*>& out) {
  proj_.collect_parameters(out);
  out.push_back(&pos_);
}

void PatchEmbed::visit_children(const std::function<void(Module&)>& fn) {
  fn(proj_);
}

// ---- VitBlock --------------------------------------------------------------

VitBlock::VitBlock(std::int64_t dim, std::int64_t heads, std::int64_t mlp_dim,
                   std::shared_ptr<const quant::QuantPolicy> policy, Rng& rng,
                   const std::string& name)
    : dim_(dim),
      heads_(heads),
      ln1_(dim, 1e-5f, name + ".ln1"),
      qkv_(dim, 3 * dim, rng, /*bias=*/true, name + ".qkv"),
      proj_(dim, dim, rng, /*bias=*/true, name + ".proj"),
      ln2_(dim, 1e-5f, name + ".ln2"),
      fc1_(dim, mlp_dim, rng, /*bias=*/true, name + ".fc1"),
      fc2_(mlp_dim, dim, rng, /*bias=*/true, name + ".fc2"),
      actq_(policy) {
  CQ_CHECK_MSG(dim % heads == 0,
               "heads " << heads << " must divide dim " << dim);
  install_fake_quant(qkv_, policy);
  install_fake_quant(proj_, policy);
  install_fake_quant(fc1_, policy);
  install_fake_quant(fc2_, policy);
}

Tensor VitBlock::forward(const Tensor& x) {
  CQ_CHECK_MSG(x.shape().rank() == 3 && x.dim(2) == dim_,
               "vit block input " << x.shape().str() << " expects [N, seq, "
                                  << dim_ << "]");
  const auto n = x.dim(0), seq = x.dim(1);
  const auto dh = dim_ / heads_;
  const bool train = mode_ == nn::Mode::kTrain;

  Tensor h1 = ln1_.forward(x);
  Tensor qkv = qkv_.forward(h1.reshape(Shape{n * seq, dim_}));

  Cache c;
  Tensor qh, kh, vh;
  if (train) {
    c.qh = Tensor::empty(Shape{n, heads_, seq, dh});
    c.kh = Tensor::empty(Shape{n, heads_, seq, dh});
    c.vh = Tensor::empty(Shape{n, heads_, seq, dh});
    c.probs = Tensor::empty(Shape{n, heads_, seq, seq});
  } else {
    qh = Tensor::empty(Shape{heads_, seq, dh});
    kh = Tensor::empty(Shape{heads_, seq, dh});
    vh = Tensor::empty(Shape{heads_, seq, dh});
  }
  Tensor scratch =
      Tensor::empty(Shape{detail::attention_scratch_floats(seq, dim_, heads_)});
  Tensor attn = Tensor::empty(Shape{n * seq, dim_});
  const auto head_block = heads_ * seq * dh;
  for (std::int64_t i = 0; i < n; ++i) {
    detail::attention_forward(
        qkv.data() + i * seq * 3 * dim_, seq, dim_, heads_,
        train ? c.qh.data() + i * head_block : qh.data(),
        train ? c.kh.data() + i * head_block : kh.data(),
        train ? c.vh.data() + i * head_block : vh.data(),
        train ? c.probs.data() + i * heads_ * seq * seq : nullptr,
        scratch.data(), attn.data() + i * seq * dim_);
  }

  Tensor proj_out = proj_.forward(attn);
  Tensor x2 = ops::add(x, proj_out.reshape(Shape{n, seq, dim_}));

  Tensor h2 = ln2_.forward(x2);
  Tensor m = fc1_.forward(h2.reshape(Shape{n * seq, dim_}));
  m = gelu_.forward(m);
  m = fc2_.forward(m);
  Tensor y = ops::add(x2, m.reshape(Shape{n, seq, dim_}));

  if (train) cache_.push_back(std::move(c));
  return actq_.forward(y);
}

Tensor VitBlock::backward(const Tensor& grad_out) {
  CQ_CHECK_MSG(!cache_.empty(), "vit block backward without matching forward");
  Cache c = std::move(cache_.back());
  cache_.pop_back();
  const auto n = grad_out.dim(0), seq = grad_out.dim(1);
  const auto dh = dim_ / heads_;

  Tensor g = actq_.backward(grad_out);  // [N, seq, dim]

  // y = x2 + mlp(ln2(x2)): the same gradient feeds both paths.
  Tensor gm = fc2_.backward(g.reshape(Shape{n * seq, dim_}));
  gm = gelu_.backward(gm);
  gm = fc1_.backward(gm);
  Tensor gln2 = ln2_.backward(gm.reshape(Shape{n, seq, dim_}));
  Tensor gx2 = ops::add(g, gln2);

  // x2 = x + proj(attn(ln1(x))).
  Tensor gattn = proj_.backward(gx2.reshape(Shape{n * seq, dim_}));

  Tensor dqkv = Tensor::empty(Shape{n * seq, 3 * dim_});
  Tensor dctx = Tensor::empty(Shape{seq, dh});
  Tensor dP = Tensor::empty(Shape{seq, seq});
  Tensor dQ = Tensor::empty(Shape{seq, dh});
  Tensor dK = Tensor::empty(Shape{seq, dh});
  Tensor dV = Tensor::empty(Shape{seq, dh});
  const float scale = 1.0f / std::sqrt(static_cast<float>(dh));
  for (std::int64_t i = 0; i < n; ++i) {
    for (std::int64_t h = 0; h < heads_; ++h) {
      const float* P = c.probs.data() + (i * heads_ + h) * seq * seq;
      const float* Q = c.qh.data() + (i * heads_ + h) * seq * dh;
      const float* K = c.kh.data() + (i * heads_ + h) * seq * dh;
      const float* V = c.vh.data() + (i * heads_ + h) * seq * dh;
      for (std::int64_t s = 0; s < seq; ++s)
        std::memcpy(dctx.data() + s * dh,
                    gattn.data() + (i * seq + s) * dim_ + h * dh,
                    dh * sizeof(float));
      // dV = P^T dctx; dP = dctx V^T.
      gemm::gemm(gemm::Trans::kTN, seq, dh, seq, P, dctx.data(), dV.data(),
                 /*accumulate=*/false);
      gemm::gemm(gemm::Trans::kNT, seq, seq, dh, dctx.data(), V, dP.data(),
                 /*accumulate=*/false);
      // Softmax backward, then the 1/sqrt(dh) scale applied before softmax.
      for (std::int64_t s = 0; s < seq; ++s) {
        float* dp = dP.data() + s * seq;
        const float* p = P + s * seq;
        double dot = 0.0;
        for (std::int64_t t = 0; t < seq; ++t)
          dot += static_cast<double>(dp[t]) * p[t];
        const float d = static_cast<float>(dot);
        for (std::int64_t t = 0; t < seq; ++t)
          dp[t] = p[t] * (dp[t] - d) * scale;
      }
      gemm::gemm(gemm::Trans::kNN, seq, dh, seq, dP.data(), K, dQ.data(),
                 /*accumulate=*/false);
      gemm::gemm(gemm::Trans::kTN, seq, dh, seq, dP.data(), Q, dK.data(),
                 /*accumulate=*/false);
      for (std::int64_t s = 0; s < seq; ++s) {
        float* row = dqkv.data() + (i * seq + s) * 3 * dim_ + h * dh;
        std::memcpy(row, dQ.data() + s * dh, dh * sizeof(float));
        std::memcpy(row + dim_, dK.data() + s * dh, dh * sizeof(float));
        std::memcpy(row + 2 * dim_, dV.data() + s * dh, dh * sizeof(float));
      }
    }
  }

  Tensor gq = qkv_.backward(dqkv);
  Tensor gln1 = ln1_.backward(gq.reshape(Shape{n, seq, dim_}));
  return ops::add(gx2, gln1);
}

void VitBlock::visit_children(const std::function<void(Module&)>& fn) {
  fn(ln1_);
  fn(qkv_);
  fn(proj_);
  fn(ln2_);
  fn(fc1_);
  fn(gelu_);
  fn(fc2_);
  fn(actq_);
}

// ---- SeqMeanPool -----------------------------------------------------------

Tensor SeqMeanPool::forward(const Tensor& x) {
  CQ_CHECK_MSG(x.shape().rank() == 3,
               "seq mean pool input " << x.shape().str()
                                      << " expects [N, seq, dim]");
  const auto n = x.dim(0), seq = x.dim(1), dim = x.dim(2);
  Tensor y = Tensor::empty(Shape{n, dim});
  for (std::int64_t i = 0; i < n; ++i)
    detail::seq_mean_forward(x.data() + i * seq * dim, seq, dim,
                             y.data() + i * dim);
  if (mode_ == nn::Mode::kTrain) seqs_.push_back(seq);
  return y;
}

Tensor SeqMeanPool::backward(const Tensor& grad_out) {
  CQ_CHECK_MSG(!seqs_.empty(),
               "seq mean pool backward without matching forward");
  const auto seq = seqs_.back();
  seqs_.pop_back();
  const auto n = grad_out.dim(0), dim = grad_out.dim(1);
  Tensor dx = Tensor::empty(Shape{n, seq, dim});
  const float inv = 1.0f / static_cast<float>(seq);
  for (std::int64_t i = 0; i < n; ++i)
    for (std::int64_t s = 0; s < seq; ++s)
      for (std::int64_t d = 0; d < dim; ++d)
        dx.data()[(i * seq + s) * dim + d] =
            grad_out.data()[i * dim + d] * inv;
  return dx;
}

// ---- builder ---------------------------------------------------------------

VitConfig vit_tiny_config() { return {}; }

std::unique_ptr<nn::Sequential> build_vit(
    const VitConfig& config,
    std::shared_ptr<const quant::QuantPolicy> policy, Rng& rng,
    std::int64_t* feature_dim_out) {
  CQ_CHECK(config.dim > 0 && config.depth > 0 && config.heads > 0);
  auto net = std::make_unique<nn::Sequential>();
  net->emplace<PatchEmbed>(config.in_channels, config.image_size, config.patch,
                           config.dim, policy, rng, "patch");
  for (std::int64_t b = 0; b < config.depth; ++b)
    net->emplace<VitBlock>(config.dim, config.heads,
                           config.dim * config.mlp_ratio, policy, rng,
                           "blk" + std::to_string(b));
  net->emplace<nn::LayerNorm>(config.dim, 1e-5f, "ln_f");
  net->emplace<SeqMeanPool>();
  if (feature_dim_out != nullptr) *feature_dim_out = config.dim;
  return net;
}

}  // namespace cq::models
