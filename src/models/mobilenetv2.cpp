#include "models/mobilenetv2.hpp"

#include "nn/activations.hpp"
#include "nn/pooling.hpp"
#include "tensor/ops.hpp"

namespace cq::models {

namespace {
nn::Conv2d& add_qconv(nn::Sequential& seq, const nn::Conv2dSpec& spec,
                      std::shared_ptr<const quant::QuantPolicy> policy,
                      Rng& rng, const std::string& name) {
  auto& conv = seq.emplace<nn::Conv2d>(spec, rng, name);
  conv.set_weight_transform(
      std::make_shared<quant::FakeQuantWeight>(std::move(policy)));
  return conv;
}
}  // namespace

InvertedResidual::InvertedResidual(
    std::int64_t in_ch, std::int64_t out_ch, std::int64_t stride,
    std::int64_t expand_ratio,
    std::shared_ptr<const quant::QuantPolicy> policy, Rng& rng,
    const std::string& name)
    : use_residual_(stride == 1 && in_ch == out_ch), actq_(policy) {
  CQ_CHECK(expand_ratio >= 1);
  const std::int64_t hidden = in_ch * expand_ratio;
  if (expand_ratio != 1) {
    nn::Conv2dSpec expand{.in_channels = in_ch,
                          .out_channels = hidden,
                          .kernel = 1,
                          .stride = 1,
                          .pad = 0};
    add_qconv(body_, expand, policy, rng, name + ".expand");
    body_.emplace<nn::BatchNorm2d>(hidden, 0.1f, 1e-5f, name + ".bn_e");
    body_.emplace<nn::ReLU>(6.0f);
  }
  nn::Conv2dSpec dw{.in_channels = hidden,
                    .out_channels = hidden,
                    .kernel = 3,
                    .stride = stride,
                    .pad = 1,
                    .groups = hidden};
  add_qconv(body_, dw, policy, rng, name + ".dw");
  body_.emplace<nn::BatchNorm2d>(hidden, 0.1f, 1e-5f, name + ".bn_dw");
  body_.emplace<nn::ReLU>(6.0f);
  nn::Conv2dSpec project{.in_channels = hidden,
                         .out_channels = out_ch,
                         .kernel = 1,
                         .stride = 1,
                         .pad = 0};
  add_qconv(body_, project, policy, rng, name + ".project");
  body_.emplace<nn::BatchNorm2d>(out_ch, 0.1f, 1e-5f, name + ".bn_p");
  // Linear bottleneck: no activation after the projection.
}

Tensor InvertedResidual::forward(const Tensor& x) {
  Tensor y = body_.forward(x);
  if (use_residual_) y = ops::add(y, x);
  return actq_.forward(y);
}

Tensor InvertedResidual::backward(const Tensor& grad_out) {
  Tensor g = actq_.backward(grad_out);
  Tensor grad_in = body_.backward(g);
  if (use_residual_) grad_in.add_(g);
  return grad_in;
}

void InvertedResidual::visit_children(const std::function<void(Module&)>& fn) {
  fn(body_);
  fn(actq_);
}

MobileNetV2Config mobilenetv2_config() {
  MobileNetV2Config c;
  c.blocks = {
      {1, 8, 1, 1},
      {2, 12, 2, 2},
      {2, 16, 2, 2},
      {2, 24, 2, 1},
  };
  return c;
}

std::unique_ptr<nn::Sequential> build_mobilenetv2(
    const MobileNetV2Config& config,
    std::shared_ptr<const quant::QuantPolicy> policy, Rng& rng,
    std::int64_t* feature_dim_out) {
  auto net = std::make_unique<nn::Sequential>();
  nn::Conv2dSpec stem{.in_channels = config.in_channels,
                      .out_channels = config.stem_ch,
                      .kernel = 3,
                      .stride = 1,
                      .pad = 1};
  add_qconv(*net, stem, policy, rng, "stem");
  net->emplace<nn::BatchNorm2d>(config.stem_ch, 0.1f, 1e-5f, "stem.bn");
  net->emplace<nn::ReLU>(6.0f);
  net->emplace<quant::ActQuant>(policy);

  std::int64_t in_ch = config.stem_ch;
  int idx = 0;
  for (const auto& spec : config.blocks) {
    for (std::int64_t r = 0; r < spec.repeats; ++r, ++idx) {
      const std::int64_t stride = (r == 0) ? spec.stride : 1;
      net->emplace<InvertedResidual>(in_ch, spec.out_ch, stride, spec.expand,
                                     policy, rng,
                                     "ir" + std::to_string(idx));
      in_ch = spec.out_ch;
    }
  }
  nn::Conv2dSpec head{.in_channels = in_ch,
                      .out_channels = config.head_ch,
                      .kernel = 1,
                      .stride = 1,
                      .pad = 0};
  add_qconv(*net, head, policy, rng, "head");
  net->emplace<nn::BatchNorm2d>(config.head_ch, 0.1f, 1e-5f, "head.bn");
  net->emplace<nn::ReLU>(6.0f);
  net->emplace<quant::ActQuant>(policy);
  net->emplace<nn::GlobalAvgPool>();
  if (feature_dim_out != nullptr) *feature_dim_out = config.head_ch;
  return net;
}

}  // namespace cq::models
