// Int8 deployment: compile a trained fp32 backbone into an integer-
// arithmetic inference network (Jacob et al. 2018 — the paper's ref [5]).
//
// The training side of this repo *fake*-quantizes (fp32 values snapped to a
// q-bit grid); this module realizes the efficiency claim behind the paper's
// premise ("quantization ... itself can boost the model efficiency") with
// real int8 storage and int32 accumulation:
//
//  * BatchNorm layers are folded into the preceding convolution,
//  * weights are per-output-channel symmetric int8,
//  * activations are per-SAMPLE symmetric int8, quantized dynamically at
//    each op boundary (no calibration pass needed). Per-sample (rather than
//    per-batch) ranges make batched inference bitwise identical to running
//    each sample alone: requests that share a dynamic batch in the serving
//    engine cannot perturb each other's quantization grids,
//  * residual blocks (BasicBlock / InvertedResidual) compile recursively,
//  * conv/linear forwards run on the int8 GEMM micro-kernels
//    (tensor/kernels/igemm.hpp): weights prepacked at compile time, the
//    whole batch lowered into one column matrix per group (the serve fp32
//    pipeline's shape), activations quantized as they are packed, int32
//    accumulation, and the scales folded back to fp32 at write-back.
#pragma once

#include <memory>
#include <vector>

#include "nn/batchnorm.hpp"
#include "nn/sequential.hpp"
#include "tensor/tensor.hpp"

namespace cq::deploy {

/// Per-tensor symmetric int8 quantization of an fp32 tensor:
/// q = clamp(round(x / scale), -127, 127), scale = max|x| / 127.
struct QTensor {
  std::vector<std::int8_t> data;
  float scale = 1.0f;
  Shape shape;
};

QTensor quantize_symmetric(const Tensor& t);
Tensor dequantize(const QTensor& q);

/// A compiled inference op: fp32 tensor in, fp32 tensor out (integer
/// arithmetic inside). Weights are immutable after compilation; ops may keep
/// mutable scratch buffers (re-used across calls so steady-state inference
/// stops allocating), so forward() is const but NOT concurrently reentrant —
/// give each serving thread its own compiled network.
class Int8Op {
 public:
  virtual ~Int8Op() = default;
  virtual Tensor forward(const Tensor& x) const = 0;
  virtual const char* name() const = 0;
};

/// A compiled network: an op pipeline plus bookkeeping. forward() is const
/// but not thread-safe (see Int8Op); compile one instance per thread.
class Int8Network {
 public:
  Tensor forward(const Tensor& x) const;

  std::size_t op_count() const { return ops_.size(); }
  const Int8Op& op(std::size_t i) const { return *ops_.at(i); }

  /// Total int8 weight bytes (the memory-footprint win vs 4x fp32).
  std::int64_t weight_bytes() const { return weight_bytes_; }

 private:
  friend Int8Network compile_int8(nn::Sequential& net);
  std::vector<std::unique_ptr<Int8Op>> ops_;
  std::int64_t weight_bytes_ = 0;
};

/// Compile a trained backbone. Supported children: Conv2d (+ following
/// BatchNorm2d, folded), Linear, ReLU, MaxPool2d, AvgPool2d, GlobalAvgPool,
/// Flatten, ActQuant (dropped — deployment IS the quantization),
/// models::BasicBlock and models::InvertedResidual (recursive). Throws
/// CheckError on anything else. The source network must be in eval mode
/// semantics (running BN statistics are what gets folded).
Int8Network compile_int8(nn::Sequential& net);

/// Fold a BatchNorm's affine transform (running stats + gamma/beta) into the
/// preceding convolution's weight [Cout, Cin*K*K] and bias. An empty `bias`
/// is treated as all-zero and resized. Shared by the int8 compiler and the
/// serving engine's fp32 instance compiler (serve/fp32.cpp).
void fold_batchnorm(const nn::BatchNorm2d& bn, Tensor& weight,
                    std::vector<float>& bias);

/// Array form of fold_batchnorm for callers that hold BN constants outside a
/// module (the graph compiler's fold pass owns copies on its nodes). All
/// arrays are length weight.dim(0). fold_batchnorm delegates here so the two
/// paths cannot drift numerically.
void fold_batchnorm_arrays(const float* gamma, const float* beta,
                           const float* running_mean, const float* running_var,
                           float eps, Tensor& weight, std::vector<float>& bias);

namespace detail {

/// Quantize an arbitrary fp32 buffer with a fixed scale:
/// dst[i] = clamp(round(src[i] * inv_scale), -127, 127).
void quantize_buffer(const float* src, std::int64_t n, float inv_scale,
                     std::int8_t* dst);

/// Per-sample symmetric activation scale max(max|x| / 127, 1e-12): the range
/// pass covers only this sample, so a batched forward is bitwise identical
/// to N single-sample forwards. Shared by the eager Int8Network ops and the
/// graph executor's int8 node bodies.
float sample_scale(const float* src, std::int64_t n);

}  // namespace detail

}  // namespace cq::deploy
