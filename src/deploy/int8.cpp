#include "deploy/int8.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>

#include "models/mobilenetv2.hpp"
#include "models/resnet.hpp"
#include "nn/activations.hpp"
#include "nn/batchnorm.hpp"
#include "nn/conv2d.hpp"
#include "nn/linear.hpp"
#include "nn/pooling.hpp"
#include "quant/actquant.hpp"
#include "tensor/im2col.hpp"
#include "tensor/kernels/igemm.hpp"
#include "tensor/kernels/kernels.hpp"
#include "util/check.hpp"

namespace cq::deploy {

QTensor quantize_symmetric(const Tensor& t) {
  QTensor q;
  q.shape = t.shape();
  q.data.resize(static_cast<std::size_t>(t.numel()));
  float max_abs = 0.0f;
  for (std::int64_t i = 0; i < t.numel(); ++i)
    max_abs = std::max(max_abs, std::fabs(t[i]));
  q.scale = max_abs > 0.0f ? max_abs / 127.0f : 1.0f;
  const float inv = 1.0f / q.scale;
  for (std::int64_t i = 0; i < t.numel(); ++i)
    q.data[static_cast<std::size_t>(i)] = static_cast<std::int8_t>(
        std::clamp<long>(std::lround(t[i] * inv), -127L, 127L));
  return q;
}

Tensor dequantize(const QTensor& q) {
  Tensor t(q.shape);
  for (std::int64_t i = 0; i < t.numel(); ++i)
    t[i] = static_cast<float>(q.data[static_cast<std::size_t>(i)]) * q.scale;
  return t;
}

namespace detail {

void quantize_buffer(const float* src, std::int64_t n, float inv_scale,
                     std::int8_t* dst) {
  for (std::int64_t i = 0; i < n; ++i)
    dst[i] = static_cast<std::int8_t>(
        std::clamp<long>(std::lround(src[i] * inv_scale), -127L, 127L));
}

float sample_scale(const float* src, std::int64_t n) {
  float lo, hi;
  kernels::minmax(src, n, &lo, &hi);
  const float max_abs = std::max(std::fabs(lo), std::fabs(hi));
  return std::max(max_abs / 127.0f, 1e-12f);
}

}  // namespace detail

namespace {

using detail::quantize_buffer;
using detail::sample_scale;

class ConvOp : public Int8Op {
 public:
  ConvOp(const nn::Conv2dSpec& spec, const Tensor& weight,
         std::vector<float> bias)
      : spec_(spec), bias_(std::move(bias)) {
    // Per-output-channel symmetric int8 weights, prepacked per group into
    // the igemm A layout (row sums included — the epilogue's offset
    // correction), so forward never touches raw weight bytes again.
    const auto cout = weight.dim(0);
    const auto krows = weight.dim(1);
    const auto cout_g = cout / spec_.groups;
    bytes_ = cout * krows;
    scales_.resize(static_cast<std::size_t>(cout));
    rowsum_.resize(static_cast<std::size_t>(cout));
    std::vector<std::int8_t> wq(static_cast<std::size_t>(cout * krows));
    for (std::int64_t oc = 0; oc < cout; ++oc) {
      float max_abs = 0.0f;
      for (std::int64_t k = 0; k < krows; ++k)
        max_abs = std::max(max_abs, std::fabs(weight.at(oc, k)));
      const float scale = max_abs > 0.0f ? max_abs / 127.0f : 1.0f;
      scales_[static_cast<std::size_t>(oc)] = scale;
      quantize_buffer(weight.data() + oc * krows, krows, 1.0f / scale,
                      wq.data() + oc * krows);
    }
    pa_group_ = igemm::packed_a_bytes(cout_g, krows);
    packed_a_.resize(static_cast<std::size_t>(spec_.groups * pa_group_));
    for (std::int64_t grp = 0; grp < spec_.groups; ++grp)
      igemm::pack_a_s8(wq.data() + grp * cout_g * krows, cout_g, krows,
                       packed_a_.data() + grp * pa_group_,
                       rowsum_.data() + grp * cout_g);
  }

  Tensor forward(const Tensor& x) const override {
    CQ_CHECK(x.shape().rank() == 4 && x.dim(1) == spec_.in_channels);
    const auto n = x.dim(0), in_h = x.dim(2), in_w = x.dim(3);
    ConvGeometry g;
    g.in_channels = spec_.in_channels / spec_.groups;
    g.in_h = in_h;
    g.in_w = in_w;
    g.kernel_h = g.kernel_w = spec_.kernel;
    g.stride = spec_.stride;
    g.pad = spec_.pad;
    const auto oh = g.out_h(), ow = g.out_w();
    const auto spatial = oh * ow;
    const auto krows = g.col_rows();
    const auto cout_g = spec_.out_channels / spec_.groups;
    const auto cin_g = g.in_channels;
    const auto cols = n * spatial;  // all images side by side

    Tensor y(Shape{n, spec_.out_channels, oh, ow});
    cols_f_.resize(static_cast<std::size_t>(krows * cols));
    bp_.resize(static_cast<std::size_t>(igemm::packed_b_bytes(krows, cols)));
    gout_.resize(static_cast<std::size_t>(cout_g * cols));
    col_scale_.resize(static_cast<std::size_t>(cols));
    col_inv_.resize(static_cast<std::size_t>(cols));

    // Image i owns columns [i*spatial, (i+1)*spatial): every one of its
    // columns quantizes with that image's scale, whatever the batch width.
    const std::int64_t sample_numel = spec_.in_channels * in_h * in_w;
    for (std::int64_t img = 0; img < n; ++img) {
      const float in_scale = sample_scale(x.data() + img * sample_numel,
                                          sample_numel);
      const float inv = 1.0f / in_scale;
      for (std::int64_t s = 0; s < spatial; ++s) {
        col_scale_[static_cast<std::size_t>(img * spatial + s)] = in_scale;
        col_inv_[static_cast<std::size_t>(img * spatial + s)] = inv;
      }
    }

    igemm::Epilogue ep;
    ep.col_scale = col_scale_.data();
    for (std::int64_t grp = 0; grp < spec_.groups; ++grp) {
      // Batched lowering (the serve fp32 pipeline's shape): one shared
      // [krows, n*spatial] column matrix per group, quantized on pack, one
      // integer GEMM over the whole batch against the prepacked weights.
      im2col_batched(x.data() + grp * cin_g * in_h * in_w, n, sample_numel,
                     g, cols_f_.data(), cols);
      igemm::pack_b_quantized(cols_f_.data(), /*rs=*/cols, /*cs=*/1, krows,
                              cols, col_inv_.data(), bp_.data());
      ep.row_scale = scales_.data() + grp * cout_g;
      ep.bias = bias_.data() + grp * cout_g;
      igemm::gemm(cout_g, cols, krows,
                  packed_a_.data() + grp * pa_group_,
                  rowsum_.data() + grp * cout_g, bp_.data(), gout_.data(),
                  /*ldc=*/cols, ep);
      // GEMM output is channel-major over the whole batch; scatter each
      // (channel, image) plane back to NCHW. One-pixel planes are a plain
      // [cout_g, n] transpose — skip the per-plane memcpy machinery.
      if (spatial == 1) {
        for (std::int64_t oc_local = 0; oc_local < cout_g; ++oc_local) {
          const float* src = gout_.data() + oc_local * cols;
          const std::int64_t oc = grp * cout_g + oc_local;
          for (std::int64_t img = 0; img < n; ++img)
            y.data()[img * spec_.out_channels + oc] = src[img];
        }
      } else {
        for (std::int64_t oc_local = 0; oc_local < cout_g; ++oc_local) {
          const float* src = gout_.data() + oc_local * cols;
          const std::int64_t oc = grp * cout_g + oc_local;
          for (std::int64_t img = 0; img < n; ++img)
            std::memcpy(y.data() + (img * spec_.out_channels + oc) * spatial,
                        src + img * spatial,
                        static_cast<std::size_t>(spatial) * sizeof(float));
        }
      }
    }
    return y;
  }

  const char* name() const override { return "int8_conv"; }

  std::int64_t bytes() const { return bytes_; }

 private:
  nn::Conv2dSpec spec_;
  std::vector<std::int8_t> packed_a_;  // igemm layout, groups side by side
  std::int64_t pa_group_ = 0;          // packed bytes per group
  std::vector<std::int32_t> rowsum_;   // per output channel
  std::vector<float> scales_;          // per output channel
  std::vector<float> bias_;
  std::int64_t bytes_ = 0;
  // Per-call scratch, retained across forwards (malloc-free steady state).
  mutable std::vector<float> cols_f_, gout_, col_scale_, col_inv_;
  mutable std::vector<std::uint8_t> bp_;
};

class LinearOp : public Int8Op {
 public:
  LinearOp(const Tensor& weight, std::vector<float> bias)
      : out_(weight.dim(0)), in_(weight.dim(1)), bias_(std::move(bias)) {
    bytes_ = out_ * in_;
    scales_.resize(static_cast<std::size_t>(out_));
    rowsum_.resize(static_cast<std::size_t>(out_));
    std::vector<std::int8_t> wq(static_cast<std::size_t>(out_ * in_));
    for (std::int64_t r = 0; r < out_; ++r) {
      float max_abs = 0.0f;
      for (std::int64_t c = 0; c < in_; ++c)
        max_abs = std::max(max_abs, std::fabs(weight.at(r, c)));
      const float scale = max_abs > 0.0f ? max_abs / 127.0f : 1.0f;
      scales_[static_cast<std::size_t>(r)] = scale;
      quantize_buffer(weight.data() + r * in_, in_, 1.0f / scale,
                      wq.data() + r * in_);
    }
    packed_a_.resize(static_cast<std::size_t>(igemm::packed_a_bytes(out_, in_)));
    igemm::pack_a_s8(wq.data(), out_, in_, packed_a_.data(), rowsum_.data());
  }

  Tensor forward(const Tensor& x) const override {
    CQ_CHECK(x.shape().rank() == 2 && x.dim(1) == in_);
    const auto n = x.dim(0);
    // Per-sample dynamic range (see ConvOp): batch-invariant by design.
    // Samples are GEMM columns here; op(B)(p, j) reads x[j, p] transposed.
    in_scale_.resize(static_cast<std::size_t>(n));
    in_inv_.resize(static_cast<std::size_t>(n));
    for (std::int64_t i = 0; i < n; ++i) {
      in_scale_[static_cast<std::size_t>(i)] =
          sample_scale(x.data() + i * in_, in_);
      in_inv_[static_cast<std::size_t>(i)] =
          1.0f / in_scale_[static_cast<std::size_t>(i)];
    }
    bp_.resize(static_cast<std::size_t>(igemm::packed_b_bytes(in_, n)));
    igemm::pack_b_quantized(x.data(), /*rs=*/1, /*cs=*/in_, in_, n,
                            in_inv_.data(), bp_.data());
    igemm::Epilogue ep;
    ep.row_scale = scales_.data();
    ep.col_scale = in_scale_.data();
    ep.bias = bias_.data();
    gout_.resize(static_cast<std::size_t>(out_ * n));
    igemm::gemm(out_, n, in_, packed_a_.data(), rowsum_.data(), bp_.data(),
                gout_.data(), /*ldc=*/n, ep);
    Tensor y(Shape{n, out_});  // transpose the [out, n] GEMM result
    for (std::int64_t i = 0; i < n; ++i)
      for (std::int64_t r = 0; r < out_; ++r)
        y.data()[i * out_ + r] = gout_[static_cast<std::size_t>(r * n + i)];
    return y;
  }

  const char* name() const override { return "int8_linear"; }

  std::int64_t bytes() const { return bytes_; }

 private:
  std::int64_t out_, in_;
  std::vector<std::int8_t> packed_a_;
  std::vector<std::int32_t> rowsum_;
  std::vector<float> scales_;
  std::vector<float> bias_;
  std::int64_t bytes_ = 0;
  // Per-call scratch, retained across forwards (malloc-free steady state).
  mutable std::vector<float> in_scale_, in_inv_, gout_;
  mutable std::vector<std::uint8_t> bp_;
};

class ReluOp : public Int8Op {
 public:
  explicit ReluOp(float cap) : cap_(cap) {}
  Tensor forward(const Tensor& x) const override {
    // x.like() skips the copy-on-write detach a `Tensor y = x` would pay;
    // the kernel overwrites every element.
    Tensor y = x.like();
    if (cap_ > 0.0f)
      kernels::relu_cap(x.data(), y.data(), x.numel(), cap_);
    else
      kernels::relu(x.data(), y.data(), x.numel());
    return y;
  }
  const char* name() const override { return "relu"; }

 private:
  float cap_;
};

class MaxPoolOp : public Int8Op {
 public:
  MaxPoolOp(std::int64_t kernel, std::int64_t stride, std::int64_t pad)
      : kernel_(kernel), stride_(stride), pad_(pad) {}
  Tensor forward(const Tensor& x) const override {
    const auto n = x.dim(0), c = x.dim(1), h = x.dim(2), w = x.dim(3);
    const auto oh = (h + 2 * pad_ - kernel_) / stride_ + 1;
    const auto ow = (w + 2 * pad_ - kernel_) / stride_ + 1;
    Tensor y = Tensor::empty(Shape{n, c, oh, ow});
    float* out = y.data();  // hoisted: operator[] re-checks CoW per element
    std::int64_t o = 0;
    for (std::int64_t img = 0; img < n; ++img)
      for (std::int64_t ch = 0; ch < c; ++ch) {
        const float* plane = x.data() + (img * c + ch) * h * w;
        for (std::int64_t oy = 0; oy < oh; ++oy)
          for (std::int64_t ox = 0; ox < ow; ++ox, ++o) {
            float best = -std::numeric_limits<float>::infinity();
            for (std::int64_t ky = 0; ky < kernel_; ++ky)
              for (std::int64_t kx = 0; kx < kernel_; ++kx) {
                const auto iy = oy * stride_ + ky - pad_;
                const auto ix = ox * stride_ + kx - pad_;
                if (iy < 0 || iy >= h || ix < 0 || ix >= w) continue;
                best = std::max(best, plane[iy * w + ix]);
              }
            out[o] = best;
          }
      }
    return y;
  }
  const char* name() const override { return "maxpool"; }

 private:
  std::int64_t kernel_, stride_, pad_;
};

class GlobalAvgPoolOp : public Int8Op {
 public:
  Tensor forward(const Tensor& x) const override {
    const auto n = x.dim(0), c = x.dim(1), spatial = x.dim(2) * x.dim(3);
    Tensor y = Tensor::empty(Shape{n, c});
    float* out = y.data();
    for (std::int64_t img = 0; img < n; ++img)
      for (std::int64_t ch = 0; ch < c; ++ch) {
        const float* plane = x.data() + (img * c + ch) * spatial;
        double s = 0.0;
        for (std::int64_t i = 0; i < spatial; ++i) s += plane[i];
        out[img * c + ch] = static_cast<float>(s / spatial);
      }
    return y;
  }
  const char* name() const override { return "gap"; }
};

class FlattenOp : public Int8Op {
 public:
  Tensor forward(const Tensor& x) const override {
    const auto n = x.dim(0);
    return x.reshape(Shape{n, x.numel() / n});
  }
  const char* name() const override { return "flatten"; }
};

class ResidualOp : public Int8Op {
 public:
  ResidualOp(std::vector<std::unique_ptr<Int8Op>> body,
             std::vector<std::unique_ptr<Int8Op>> shortcut, bool relu_after)
      : body_(std::move(body)),
        shortcut_(std::move(shortcut)),
        relu_after_(relu_after) {}

  Tensor forward(const Tensor& x) const override {
    Tensor main = x;
    for (const auto& op : body_) main = op->forward(main);
    Tensor skip = x;
    for (const auto& op : shortcut_) skip = op->forward(skip);
    CQ_CHECK(main.same_shape(skip));
    main.add_(skip);
    if (relu_after_) {
      float* d = main.data();
      kernels::relu(d, d, main.numel());
    }
    return main;
  }
  const char* name() const override { return "residual"; }

 private:
  std::vector<std::unique_ptr<Int8Op>> body_;
  std::vector<std::unique_ptr<Int8Op>> shortcut_;
  bool relu_after_;
};

std::int64_t compile_into(nn::Sequential& seq,
                          std::vector<std::unique_ptr<Int8Op>>& ops);
/// Compile one child (+ optional following BN); returns how many children
/// were consumed and adds weight bytes to *bytes.
std::int64_t compile_child(nn::Sequential& seq, std::size_t index,
                           std::vector<std::unique_ptr<Int8Op>>& ops,
                           std::int64_t* bytes) {
  nn::Module& child = seq.child(index);
  if (auto* conv = dynamic_cast<nn::Conv2d*>(&child)) {
    Tensor weight = conv->weight().value;
    std::vector<float> bias;
    std::int64_t consumed = 1;
    if (index + 1 < seq.size()) {
      if (auto* bn = dynamic_cast<nn::BatchNorm2d*>(&seq.child(index + 1))) {
        fold_batchnorm(*bn, weight, bias);
        consumed = 2;
      }
    }
    if (bias.empty())
      bias.assign(static_cast<std::size_t>(conv->spec().out_channels), 0.0f);
    auto op = std::make_unique<ConvOp>(conv->spec(), weight, std::move(bias));
    *bytes += op->bytes();
    ops.push_back(std::move(op));
    return consumed;
  }
  if (auto* linear = dynamic_cast<nn::Linear*>(&child)) {
    std::vector<float> bias(
        static_cast<std::size_t>(linear->out_features()), 0.0f);
    if (linear->bias() != nullptr)
      for (std::int64_t i = 0; i < linear->out_features(); ++i)
        bias[static_cast<std::size_t>(i)] = linear->bias()->value[i];
    auto op = std::make_unique<LinearOp>(linear->weight().value,
                                         std::move(bias));
    *bytes += op->bytes();
    ops.push_back(std::move(op));
    return 1;
  }
  if (auto* relu = dynamic_cast<nn::ReLU*>(&child)) {
    ops.push_back(std::make_unique<ReluOp>(relu->cap()));
    return 1;
  }
  if (dynamic_cast<quant::ActQuant*>(&child) != nullptr) {
    return 1;  // deployment replaces fake quantization
  }
  if (auto* pool = dynamic_cast<nn::MaxPool2d*>(&child)) {
    ops.push_back(std::make_unique<MaxPoolOp>(pool->kernel(), pool->stride(),
                                              pool->pad()));
    return 1;
  }
  if (dynamic_cast<nn::GlobalAvgPool*>(&child) != nullptr) {
    ops.push_back(std::make_unique<GlobalAvgPoolOp>());
    return 1;
  }
  if (dynamic_cast<nn::Flatten*>(&child) != nullptr) {
    ops.push_back(std::make_unique<FlattenOp>());
    return 1;
  }
  if (auto* block = dynamic_cast<models::BasicBlock*>(&child)) {
    std::vector<std::unique_ptr<Int8Op>> body, shortcut;
    *bytes += compile_into(block->main_path(), body);
    if (block->shortcut_path() != nullptr)
      *bytes += compile_into(*block->shortcut_path(), shortcut);
    ops.push_back(std::make_unique<ResidualOp>(
        std::move(body), std::move(shortcut), /*relu_after=*/true));
    return 1;
  }
  if (auto* block = dynamic_cast<models::InvertedResidual*>(&child)) {
    std::vector<std::unique_ptr<Int8Op>> body;
    *bytes += compile_into(block->body(), body);
    if (block->uses_residual()) {
      ops.push_back(std::make_unique<ResidualOp>(
          std::move(body), std::vector<std::unique_ptr<Int8Op>>{},
          /*relu_after=*/false));
    } else {
      for (auto& op : body) ops.push_back(std::move(op));
    }
    return 1;
  }
  CQ_CHECK_MSG(false, "int8 compiler: unsupported module at index " << index);
}

std::int64_t compile_into(nn::Sequential& seq,
                          std::vector<std::unique_ptr<Int8Op>>& ops) {
  std::int64_t bytes = 0;
  std::size_t index = 0;
  while (index < seq.size())
    index += static_cast<std::size_t>(compile_child(seq, index, ops, &bytes));
  return bytes;
}

}  // namespace

void fold_batchnorm(const nn::BatchNorm2d& bn, Tensor& weight,
                    std::vector<float>& bias) {
  CQ_CHECK_MSG(bn.channels() == weight.dim(0),
               "BN channels != conv out channels");
  fold_batchnorm_arrays(bn.gamma().data(), bn.beta().data(),
                        bn.running_mean().data(), bn.running_var().data(),
                        bn.eps(), weight, bias);
}

void fold_batchnorm_arrays(const float* gamma, const float* beta,
                           const float* running_mean, const float* running_var,
                           float eps, Tensor& weight, std::vector<float>& bias) {
  const auto cout = weight.dim(0);
  if (bias.empty()) bias.assign(static_cast<std::size_t>(cout), 0.0f);
  for (std::int64_t c = 0; c < cout; ++c) {
    const float inv_std = 1.0f / std::sqrt(running_var[c] + eps);
    const float scale = gamma[c] * inv_std;
    for (std::int64_t k = 0; k < weight.dim(1); ++k)
      weight.at(c, k) *= scale;
    bias[static_cast<std::size_t>(c)] =
        beta[c] + (bias[static_cast<std::size_t>(c)] - running_mean[c]) * scale;
  }
}

Tensor Int8Network::forward(const Tensor& x) const {
  Tensor h = x;
  for (const auto& op : ops_) h = op->forward(h);
  return h;
}

Int8Network compile_int8(nn::Sequential& net) {
  Int8Network compiled;
  compiled.weight_bytes_ = compile_into(net, compiled.ops_);
  return compiled;
}

}  // namespace cq::deploy
