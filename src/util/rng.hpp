// Deterministic random number generation.
//
// Every stochastic component in the library takes an explicit Rng& so that
// experiments are reproducible from a single seed. The generator is
// xoshiro256** seeded through splitmix64 (the reference seeding procedure).
#pragma once

#include <cstdint>
#include <vector>

namespace cq {

/// splitmix64 step — used for seeding and for cheap stateless hashing.
std::uint64_t splitmix64(std::uint64_t& state);

/// xoshiro256** PRNG with convenience samplers for common distributions.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Raw 64 random bits.
  std::uint64_t next_u64();

  /// Uniform double in [0, 1).
  double uniform();
  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);
  /// Uniform integer in [0, n). Requires n > 0.
  std::uint64_t uniform_index(std::uint64_t n);
  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int uniform_int(int lo, int hi);
  /// Standard normal via Box–Muller (cached pair).
  double normal();
  /// Normal with the given mean / stddev.
  double normal(double mean, double stddev);
  /// Bernoulli trial.
  bool bernoulli(double p);

  /// Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      const auto j = uniform_index(i);
      std::swap(v[i - 1], v[j]);
    }
  }

  /// Derive an independent child generator (for per-worker / per-phase
  /// streams that must not perturb the parent's sequence).
  Rng split();

 private:
  std::uint64_t s_[4];
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace cq
