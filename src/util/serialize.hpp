// Tiny binary (de)serialization for model checkpoints.
//
// Format: magic "CQCK", u32 version, then a sequence of records written by
// the caller. Readers validate the magic/version and every length prefix, so
// a truncated or foreign file fails loudly instead of yielding garbage
// weights.
#pragma once

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

namespace cq {

class BinaryWriter {
 public:
  explicit BinaryWriter(const std::string& path);

  void write_u32(std::uint32_t v);
  void write_u64(std::uint64_t v);
  void write_f32(float v);
  void write_string(const std::string& s);
  void write_f32_array(const std::vector<float>& v);
  void write_u64_array(const std::vector<std::uint64_t>& v);

  /// Flushes and closes; throws on I/O failure.
  void close();

  ~BinaryWriter();
  BinaryWriter(const BinaryWriter&) = delete;
  BinaryWriter& operator=(const BinaryWriter&) = delete;

 private:
  std::ofstream out_;
  std::string path_;
  bool closed_ = false;
};

class BinaryReader {
 public:
  explicit BinaryReader(const std::string& path);

  std::uint32_t read_u32();
  std::uint64_t read_u64();
  float read_f32();
  std::string read_string();
  std::vector<float> read_f32_array();
  std::vector<std::uint64_t> read_u64_array();

  /// Validates that the stream is positioned exactly at end-of-file, i.e.
  /// every byte of the file was consumed by the records read so far. Throws
  /// CheckError on trailing bytes — a checkpoint with garbage (or a second
  /// concatenated checkpoint) after the last record is corrupt, not merely
  /// over-long. Call after the final expected record.
  void expect_eof();

  /// True when the full header matched and no read has failed.
  bool ok() const { return ok_; }

 private:
  void require(bool cond, const char* what);

  std::ifstream in_;
  std::string path_;
  bool ok_ = true;
};

/// Checkpoint file version written by BinaryWriter's header helpers.
inline constexpr std::uint32_t kCheckpointVersion = 1;

/// Writes the "CQCK" magic + version header.
void write_checkpoint_header(BinaryWriter& w);
/// Reads and validates the header; throws CheckError on mismatch.
void read_checkpoint_header(BinaryReader& r);

}  // namespace cq
