// CSV emission for figure data (t-SNE embeddings, training curves).
#pragma once

#include <string>
#include <vector>

namespace cq {

class CsvWriter {
 public:
  /// Opens (truncates) `path` and writes the header row.
  CsvWriter(const std::string& path, std::vector<std::string> header);

  /// Append a data row; arity must match the header.
  void add_row(const std::vector<std::string>& row);
  void add_row(const std::vector<double>& row);

  /// Flush and close; also invoked by the destructor.
  void close();

  ~CsvWriter();
  CsvWriter(const CsvWriter&) = delete;
  CsvWriter& operator=(const CsvWriter&) = delete;

 private:
  std::string path_;
  std::size_t arity_;
  std::string buffer_;
  bool closed_ = false;
};

}  // namespace cq
