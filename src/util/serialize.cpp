#include "util/serialize.hpp"

#include <cstring>

#include "util/check.hpp"

namespace cq {

namespace {
constexpr char kMagic[4] = {'C', 'Q', 'C', 'K'};
}

BinaryWriter::BinaryWriter(const std::string& path)
    : out_(path, std::ios::binary), path_(path) {
  CQ_CHECK_MSG(out_.good(), "cannot open " << path << " for writing");
}

void BinaryWriter::write_u32(std::uint32_t v) {
  out_.write(reinterpret_cast<const char*>(&v), sizeof v);
}

void BinaryWriter::write_u64(std::uint64_t v) {
  out_.write(reinterpret_cast<const char*>(&v), sizeof v);
}

void BinaryWriter::write_f32(float v) {
  out_.write(reinterpret_cast<const char*>(&v), sizeof v);
}

void BinaryWriter::write_string(const std::string& s) {
  write_u64(s.size());
  out_.write(s.data(), static_cast<std::streamsize>(s.size()));
}

void BinaryWriter::write_f32_array(const std::vector<float>& v) {
  write_u64(v.size());
  out_.write(reinterpret_cast<const char*>(v.data()),
             static_cast<std::streamsize>(v.size() * sizeof(float)));
}

void BinaryWriter::write_u64_array(const std::vector<std::uint64_t>& v) {
  write_u64(v.size());
  out_.write(reinterpret_cast<const char*>(v.data()),
             static_cast<std::streamsize>(v.size() * sizeof(std::uint64_t)));
}

void BinaryWriter::close() {
  if (closed_) return;
  out_.flush();
  CQ_CHECK_MSG(out_.good(), "write failure on " << path_);
  out_.close();
  closed_ = true;
}

BinaryWriter::~BinaryWriter() {
  try {
    close();
  } catch (...) {
  }
}

BinaryReader::BinaryReader(const std::string& path)
    : in_(path, std::ios::binary), path_(path) {
  CQ_CHECK_MSG(in_.good(), "cannot open " << path << " for reading");
}

void BinaryReader::require(bool cond, const char* what) {
  if (!cond) {
    ok_ = false;
    CQ_CHECK_MSG(false, "corrupt checkpoint " << path_ << ": " << what);
  }
}

std::uint32_t BinaryReader::read_u32() {
  std::uint32_t v = 0;
  in_.read(reinterpret_cast<char*>(&v), sizeof v);
  require(in_.good(), "truncated u32");
  return v;
}

std::uint64_t BinaryReader::read_u64() {
  std::uint64_t v = 0;
  in_.read(reinterpret_cast<char*>(&v), sizeof v);
  require(in_.good(), "truncated u64");
  return v;
}

float BinaryReader::read_f32() {
  float v = 0;
  in_.read(reinterpret_cast<char*>(&v), sizeof v);
  require(in_.good(), "truncated f32");
  return v;
}

std::string BinaryReader::read_string() {
  const auto n = read_u64();
  require(n < (1ULL << 20), "implausible string length");
  std::string s(n, '\0');
  in_.read(s.data(), static_cast<std::streamsize>(n));
  require(in_.good(), "truncated string");
  return s;
}

std::vector<float> BinaryReader::read_f32_array() {
  const auto n = read_u64();
  require(n < (1ULL << 30), "implausible array length");
  std::vector<float> v(n);
  in_.read(reinterpret_cast<char*>(v.data()),
           static_cast<std::streamsize>(n * sizeof(float)));
  require(in_.good(), "truncated f32 array");
  return v;
}

std::vector<std::uint64_t> BinaryReader::read_u64_array() {
  const auto n = read_u64();
  require(n < (1ULL << 30), "implausible array length");
  std::vector<std::uint64_t> v(n);
  in_.read(reinterpret_cast<char*>(v.data()),
           static_cast<std::streamsize>(n * sizeof(std::uint64_t)));
  require(in_.good(), "truncated u64 array");
  return v;
}

void BinaryReader::expect_eof() {
  require(in_.peek() == std::char_traits<char>::eof(),
          "trailing bytes after final record");
}

void write_checkpoint_header(BinaryWriter& w) {
  std::uint32_t magic = 0;
  std::memcpy(&magic, kMagic, 4);
  w.write_u32(magic);
  w.write_u32(kCheckpointVersion);
}

void read_checkpoint_header(BinaryReader& r) {
  std::uint32_t magic_expect = 0;
  std::memcpy(&magic_expect, kMagic, 4);
  const auto magic = r.read_u32();
  CQ_CHECK_MSG(magic == magic_expect, "bad checkpoint magic");
  const auto version = r.read_u32();
  CQ_CHECK_MSG(version == kCheckpointVersion,
               "unsupported checkpoint version " << version);
}

}  // namespace cq
