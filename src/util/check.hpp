// Lightweight contract-checking macros (Core Guidelines I.6 / E.12 style).
//
// CQ_CHECK     — precondition / invariant that depends on caller input; always
//                on, throws cq::CheckError with a formatted message.
// CQ_DCHECK    — internal invariant; compiled out in NDEBUG builds.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace cq {

/// Thrown when a CQ_CHECK contract is violated.
class CheckError : public std::logic_error {
 public:
  explicit CheckError(const std::string& what) : std::logic_error(what) {}
};

namespace detail {

[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const std::string& msg) {
  std::ostringstream os;
  os << "CQ_CHECK failed: (" << expr << ") at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw CheckError(os.str());
}

}  // namespace detail
}  // namespace cq

#define CQ_CHECK(cond)                                                \
  do {                                                                \
    if (!(cond)) ::cq::detail::check_failed(#cond, __FILE__, __LINE__, ""); \
  } while (false)

#define CQ_CHECK_MSG(cond, msg)                                       \
  do {                                                                \
    if (!(cond)) {                                                    \
      std::ostringstream cq_check_os_;                                \
      cq_check_os_ << msg;                                            \
      ::cq::detail::check_failed(#cond, __FILE__, __LINE__,           \
                                 cq_check_os_.str());                 \
    }                                                                 \
  } while (false)

#ifdef NDEBUG
#define CQ_DCHECK(cond) \
  do {                  \
  } while (false)
#else
#define CQ_DCHECK(cond) CQ_CHECK(cond)
#endif
