#include "util/table.hpp"

#include <cstdio>
#include <iomanip>
#include <iostream>
#include <sstream>

#include "util/check.hpp"

namespace cq {

TableWriter::TableWriter(std::vector<std::string> header)
    : header_(std::move(header)) {
  CQ_CHECK(!header_.empty());
}

void TableWriter::add_row(std::vector<std::string> row) {
  CQ_CHECK_MSG(row.size() == header_.size(),
               "row arity " << row.size() << " != header " << header_.size());
  rows_.push_back(std::move(row));
}

std::string TableWriter::num(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string TableWriter::render() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& row) {
    os << "|";
    for (std::size_t c = 0; c < row.size(); ++c)
      os << " " << row[c] << std::string(widths[c] - row[c].size(), ' ') << " |";
    os << "\n";
  };
  emit_row(header_);
  os << "|";
  for (std::size_t c = 0; c < header_.size(); ++c)
    os << std::string(widths[c] + 2, '-') << "|";
  os << "\n";
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

void TableWriter::print() const { std::cout << render() << std::flush; }

}  // namespace cq
