// Minimal leveled logger. Single-threaded by design (target machine has one
// core); writes to stderr so experiment tables on stdout stay machine-readable.
#pragma once

#include <sstream>
#include <string>

namespace cq {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global log threshold; messages below it are dropped.
void set_log_level(LogLevel level);
LogLevel log_level();

namespace detail {
void log_emit(LogLevel level, const std::string& msg);

class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { log_emit(level_, os_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream os_;
};
}  // namespace detail

}  // namespace cq

#define CQ_LOG(level) ::cq::detail::LogLine(::cq::LogLevel::level)
#define CQ_LOG_INFO CQ_LOG(kInfo)
#define CQ_LOG_WARN CQ_LOG(kWarn)
#define CQ_LOG_ERROR CQ_LOG(kError)
#define CQ_LOG_DEBUG CQ_LOG(kDebug)
