#include "util/csv.hpp"

#include <fstream>
#include <sstream>

#include "util/check.hpp"

namespace cq {

namespace {
std::string join(const std::vector<std::string>& fields) {
  std::string line;
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i) line += ',';
    line += fields[i];
  }
  line += '\n';
  return line;
}
}  // namespace

CsvWriter::CsvWriter(const std::string& path, std::vector<std::string> header)
    : path_(path), arity_(header.size()) {
  CQ_CHECK(arity_ > 0);
  buffer_ = join(header);
}

void CsvWriter::add_row(const std::vector<std::string>& row) {
  CQ_CHECK(!closed_);
  CQ_CHECK_MSG(row.size() == arity_, "csv row arity mismatch");
  buffer_ += join(row);
}

void CsvWriter::add_row(const std::vector<double>& row) {
  std::vector<std::string> fields;
  fields.reserve(row.size());
  for (double v : row) {
    std::ostringstream os;
    os << v;
    fields.push_back(os.str());
  }
  add_row(fields);
}

void CsvWriter::close() {
  if (closed_) return;
  std::ofstream out(path_);
  CQ_CHECK_MSG(out.good(), "cannot open csv file " << path_);
  out << buffer_;
  closed_ = true;
}

CsvWriter::~CsvWriter() {
  try {
    close();
  } catch (...) {
    // Destructors must not throw (Core Guidelines C.36).
  }
}

}  // namespace cq
