// Aligned console tables for the experiment harness.
//
// Every bench binary regenerating a paper table prints through TableWriter so
// the output lines up with the paper's rows (see EXPERIMENTS.md).
#pragma once

#include <string>
#include <vector>

namespace cq {

class TableWriter {
 public:
  explicit TableWriter(std::vector<std::string> header);

  /// Append a row; must have the same arity as the header.
  void add_row(std::vector<std::string> row);

  /// Convenience: format a double with the given precision.
  static std::string num(double v, int precision = 2);

  /// Render with column alignment (markdown-style pipes).
  std::string render() const;

  /// Render and write to stdout.
  void print() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace cq
