#include "util/rng.hpp"

#include <cmath>
#include <numbers>

#include "util/check.hpp"

namespace cq {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 top bits -> double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

std::uint64_t Rng::uniform_index(std::uint64_t n) {
  CQ_CHECK(n > 0);
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = n * (UINT64_MAX / n);
  std::uint64_t x;
  do {
    x = next_u64();
  } while (x >= limit);
  return x % n;
}

int Rng::uniform_int(int lo, int hi) {
  CQ_CHECK(lo <= hi);
  return lo + static_cast<int>(uniform_index(
                  static_cast<std::uint64_t>(hi - lo) + 1));
}

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1;
  do {
    u1 = uniform();
  } while (u1 <= 0.0);
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * std::numbers::pi * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::normal(double mean, double stddev) {
  return mean + stddev * normal();
}

bool Rng::bernoulli(double p) { return uniform() < p; }

Rng Rng::split() { return Rng(next_u64()); }

}  // namespace cq
