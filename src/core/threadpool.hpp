// Work-stealing thread pool driving every multi-core path in the repo: the
// GEMM macro loops (fp32 and int8), batched im2col lowering, the graph
// executor's per-op batch splits, and the serve engine's sharded workers all
// dispatch through ThreadPool::parallel_for.
//
// Design (DESIGN.md §14):
//  * One process-wide pool (ThreadPool::instance()), sized from the
//    CQ_THREADS environment variable at first use (default: hardware
//    concurrency) and resizable at runtime via set_size(). Size 1 means NO
//    worker threads: every parallel_for runs inline on the caller — exactly
//    the pre-threadpool behaviour, with zero dispatch overhead and zero
//    allocation.
//  * Work-stealing deques: each worker owns a fixed-capacity deque of task
//    descriptors. parallel_for chunks its index range, deals the chunks
//    round-robin across the deques, and the caller participates: it executes
//    chunks of ITS OWN job (stolen from any deque) until none remain, then
//    sleeps on the job latch. Workers pop LIFO from their own deque and
//    steal FIFO from siblings. The deques are mutex-guarded — at chunk
//    granularity (thousands of micro-kernel tiles per chunk) the lock is
//    noise; the LOCK-FREE structure in this PR is the serve RequestQueue,
//    which sits on the request hot path.
//  * Determinism: the pool never changes WHAT a chunk computes, only WHERE
//    it runs. Callers partition output tiles so every chunk writes a
//    disjoint region and each tile's accumulation order is independent of
//    the partition — results are bitwise-identical at every pool size,
//    enforced by the parallel-vs-serial fuzz suites in tests/.
//  * Nesting: a parallel_for issued from inside a pool worker runs inline
//    (serially) on that worker. This keeps one level of parallelism — the
//    outermost dispatch — and makes the pool deadlock-free by construction.
//  * No allocation per dispatch: task descriptors are POD, the job latch
//    lives on the caller's stack, and the deques are preallocated. A
//    steady-state serving forward stays at zero heap allocations with the
//    pool engaged (pinned by the ZeroAllocSteadyState tests).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <thread>
#include <vector>

namespace cq::core {

class ThreadPool {
 public:
  /// The process-wide pool. First call reads CQ_THREADS (clamped to
  /// [1, kMaxThreads]; unset/invalid -> hardware concurrency) and spawns
  /// size-1 workers.
  static ThreadPool& instance();

  /// Parallelism degree (worker threads + the participating caller). 1 means
  /// fully inline execution.
  std::size_t size() const { return size_; }

  /// Resize the pool: joins existing workers and spawns n-1 fresh ones.
  /// Not safe to call concurrently with parallel_for from other threads;
  /// intended for startup configuration and tests.
  void set_size(std::size_t n);

  /// True on a pool worker thread (used to run nested dispatches inline).
  static bool on_worker_thread();

  /// Invoke fn(begin, end) over disjoint sub-ranges covering [0, total).
  /// Chunks are at least `grain` indices (the last may be smaller); at most
  /// kChunksPerThread chunks per pool thread are created. Runs inline when
  /// the pool has size 1, when the range fits one grain, or when called
  /// from a pool worker. Returns after every chunk has executed.
  /// fn must be safe to run concurrently on disjoint ranges.
  template <typename F>
  void parallel_for(std::int64_t total, std::int64_t grain, F&& fn) {
    if (total <= 0) return;
    if (grain < 1) grain = 1;
    if (size_ <= 1 || total <= grain || on_worker_thread()) {
      fn(std::int64_t{0}, total);
      return;
    }
    const auto invoke = [](void* ctx, std::int64_t b, std::int64_t e) {
      (*static_cast<std::remove_reference_t<F>*>(ctx))(b, e);
    };
    run_job(total, grain, invoke, &fn);
  }

  /// parallel_for with an automatic grain: one chunk per pool thread times
  /// kChunksPerThread, each at least `min_grain`.
  template <typename F>
  void parallel_for(std::int64_t total, F&& fn) {
    parallel_for(total, std::int64_t{1}, static_cast<F&&>(fn));
  }

  static constexpr std::size_t kMaxThreads = 256;
  static constexpr std::int64_t kChunksPerThread = 4;

  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

 private:
  using InvokeFn = void (*)(void*, std::int64_t, std::int64_t);

  /// Completion latch for one parallel_for, living on the caller's stack.
  struct Job {
    InvokeFn invoke;
    void* ctx;
    std::atomic<std::int64_t> remaining;  // chunks not yet finished
    std::mutex done_mu;
    std::condition_variable done_cv;
  };

  /// One chunk of one job. POD so deque slots never allocate.
  struct Task {
    Job* job = nullptr;
    std::int64_t begin = 0;
    std::int64_t end = 0;
  };

  /// Fixed-capacity work-stealing deque. Owner pops LIFO at the bottom
  /// (cache-warm chunks first), thieves steal FIFO at the top. Guarded by a
  /// per-deque mutex; see the header comment for why that is the right
  /// trade at chunk granularity.
  struct Deque {
    std::mutex mu;
    std::vector<Task> slots;
    std::size_t top = 0;     // next steal position
    std::size_t bottom = 0;  // next push position
  };

  ThreadPool();  // sized from CQ_THREADS / hardware concurrency

  void start_workers();
  void stop_workers();
  void worker_main(std::size_t index);
  void run_job(std::int64_t total, std::int64_t grain, InvokeFn invoke,
               void* ctx);
  bool try_pop(std::size_t index, Task& out);    // LIFO from own deque
  bool try_steal(std::size_t avoid, Task& out);  // FIFO from any other
  /// Steal a chunk belonging to `job` from any deque (the caller helping
  /// drain its own dispatch).
  bool try_steal_job(const Job* job, Task& out);
  static void finish(Task& t);

  std::size_t size_ = 1;
  std::vector<std::thread> threads_;
  std::vector<std::unique_ptr<Deque>> deques_;
  // Sleep/wake for idle workers. pending_ counts queued (unexecuted) tasks:
  // incremented before a pusher acquires wake_mu_ to notify, decremented
  // under the owning deque's mutex at pop. A worker evaluates the wait
  // predicate while holding wake_mu_, and a pusher notifies while holding
  // it, so the worker either sees pending_ > 0 or blocks before the pusher
  // can acquire the lock — no missed wakeups.
  std::mutex wake_mu_;
  std::condition_variable wake_cv_;
  std::atomic<std::int64_t> pending_{0};
  bool stop_ = false;  // guarded by wake_mu_
};

/// The pool size CQ_THREADS requests: the parsed value clamped to
/// [1, kMaxThreads], or hardware_concurrency() (min 1) when unset/invalid.
std::size_t configured_threads();

/// Convenience forwarding to the global pool.
template <typename F>
inline void parallel_for(std::int64_t total, std::int64_t grain, F&& fn) {
  ThreadPool::instance().parallel_for(total, grain, static_cast<F&&>(fn));
}

}  // namespace cq::core
