#include "core/cq.hpp"

#include <cmath>
#include <sstream>

#include "core/prof.hpp"
#include "tensor/storage.hpp"
#include "util/check.hpp"

namespace cq::core {

AllocTracker::AllocTracker() {
  const auto s = tensor::alloc_stats();
  base_allocs_ = s.cumulative_allocations;
  base_hits_ = s.pool_hits;
  base_misses_ = s.pool_misses;
  epoch_start_allocs_ = s.cumulative_allocations;
}

void AllocTracker::end_first_iteration() {
  first_iter_allocs_ = tensor::alloc_stats().cumulative_allocations -
                       base_allocs_;
}

void AllocTracker::end_epoch(double seconds, std::int64_t iterations) {
  const auto now = tensor::alloc_stats().cumulative_allocations;
  epoch_allocs_.push_back(now - epoch_start_allocs_);
  epoch_seconds_.push_back(seconds);
  epoch_start_allocs_ = now;
  last_epoch_iterations_ = iterations;
}

std::uint64_t AllocTracker::thread_allocs() {
  return tensor::alloc_stats().cumulative_allocations;
}

void AllocTracker::finish(PretrainStats& stats) const {
  const auto s = tensor::alloc_stats();
  stats.first_iteration_heap_allocs = first_iter_allocs_;
  stats.epoch_heap_allocs = epoch_allocs_;
  stats.epoch_seconds = epoch_seconds_;
  stats.pool_hits = s.pool_hits - base_hits_;
  stats.pool_misses = s.pool_misses - base_misses_;
  if (!epoch_allocs_.empty() && last_epoch_iterations_ > 0)
    stats.steady_allocs_per_iteration =
        static_cast<double>(epoch_allocs_.back()) /
        static_cast<double>(last_epoch_iterations_);
  stats.profile_json = prof::json();
}

std::string variant_name(CqVariant variant) {
  switch (variant) {
    case CqVariant::kVanilla:
      return "vanilla";
    case CqVariant::kCqA:
      return "cq-a";
    case CqVariant::kCqB:
      return "cq-b";
    case CqVariant::kCqC:
      return "cq-c";
    case CqVariant::kCqQuant:
      return "cq-quant";
  }
  return "?";
}

CqVariant parse_variant(const std::string& name) {
  if (name == "vanilla" || name == "simclr" || name == "byol")
    return CqVariant::kVanilla;
  if (name == "cq-a") return CqVariant::kCqA;
  if (name == "cq-b") return CqVariant::kCqB;
  if (name == "cq-c") return CqVariant::kCqC;
  if (name == "cq-quant") return CqVariant::kCqQuant;
  CQ_CHECK_MSG(false, "unknown CQ variant '" << name << "'");
}

int branches_per_iteration(CqVariant variant) {
  switch (variant) {
    case CqVariant::kVanilla:
    case CqVariant::kCqA:
    case CqVariant::kCqQuant:
      return 2;
    case CqVariant::kCqB:
    case CqVariant::kCqC:
      return 4;
  }
  return 0;
}

std::pair<int, int> cyclic_precision_pair(const quant::PrecisionSet& set,
                                          std::int64_t step,
                                          std::int64_t total_steps,
                                          std::int64_t cycles) {
  CQ_CHECK(!set.empty() && total_steps > 0 && cycles > 0);
  CQ_CHECK(step >= 0 && step < total_steps);
  const auto n = static_cast<std::int64_t>(set.size());
  // Triangular wave position in [0, 1].
  const double phase =
      std::fmod(static_cast<double>(step * cycles) /
                    static_cast<double>(total_steps),
                1.0);
  const double pos = phase < 0.5 ? 2.0 * phase : 2.0 - 2.0 * phase;
  const auto idx = static_cast<std::int64_t>(
      pos * static_cast<double>(n - 1) + 0.5);
  const auto mirror = (n - 1) - idx;
  return {set.bits()[static_cast<std::size_t>(idx)],
          set.bits()[static_cast<std::size_t>(mirror)]};
}

std::string PretrainConfig::cache_key() const {
  std::ostringstream os;
  os << variant_name(variant) << "|p=" << precisions.str()
     << "|dp=" << distinct_pair
     << "|ps=" << static_cast<int>(precision_sampling)
     << "|pc=" << precision_cycles << "|tau=" << tau
     << "|e=" << epochs << "|b=" << batch_size << "|lr=" << lr
     << "|m=" << momentum << "|wd=" << weight_decay << "|w=" << warmup_epochs
     << "|ph=" << proj_hidden << "|pd=" << proj_dim
     << "|aug=" << augment.min_crop_scale << "," << augment.flip_prob << ","
     << augment.jitter_strength << "," << augment.jitter_prob << ","
     << augment.grayscale_prob << "," << augment.noise_sigma << ","
     << augment.cutout_prob << "," << augment.cutout_frac << ","
     << augment.identity << "|ema=" << byol_ema << "|predh=" << pred_hidden
     << "|mq=" << moco_queue
     << "|seed=" << seed;
  return os.str();
}

}  // namespace cq::core
