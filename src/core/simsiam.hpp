// SimSiam pretrainer (Chen & He 2020 — the paper's reference [12]): the
// minimal stop-gradient siamese method — no negatives, no momentum encoder.
//
// Another extension beyond the paper's SimCLR/BYOL experiments, closing out
// the contrastive-family coverage. Loss per view pair:
//   L = D(p1, z2)/2 + D(p2, z1)/2,   D(p, z) = |p/|p| - z/|z||^2,  z stop-grad
// (equivalent up to affine terms to negative cosine similarity).
// CQ-C adaptation mirrors the BYOL one: per-iteration precisions q1/q2, the
// symmetrized loss at each precision, plus cross-precision consistency
// between the predictions of the same view.
#pragma once

#include <memory>

#include "core/cq.hpp"
#include "data/dataset.hpp"
#include "models/encoder.hpp"
#include "nn/sequential.hpp"

namespace cq::core {

class SimSiamCqTrainer {
 public:
  /// Supported variants: kVanilla and kCqC.
  SimSiamCqTrainer(models::Encoder& encoder, PretrainConfig config);

  PretrainStats train(const data::Dataset& dataset);

 private:
  models::Encoder& encoder_;
  PretrainConfig config_;
  Rng rng_;
  std::unique_ptr<nn::Sequential> projector_;
  std::unique_ptr<nn::Sequential> predictor_;
};

}  // namespace cq::core
