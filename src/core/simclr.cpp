#include "core/simclr.hpp"

#include <cmath>

#include "core/losses.hpp"
#include "core/trace.hpp"
#include "models/heads.hpp"
#include "optim/schedule.hpp"
#include "optim/sgd.hpp"
#include "tensor/ops.hpp"
#include "util/logging.hpp"
#include "util/timer.hpp"

namespace cq::core {

namespace {
/// Gradient-norm threshold past which we declare divergence (the paper's
/// "severe gradient explosion" failure mode of CQ-B).
constexpr float kDivergenceGradNorm = 1e4f;

bool is_finite(float v) { return std::isfinite(v); }
}  // namespace

SimClrCqTrainer::SimClrCqTrainer(models::Encoder& encoder,
                                 PretrainConfig config)
    : encoder_(encoder), config_(std::move(config)), rng_(config_.seed) {
  if (config_.variant != CqVariant::kVanilla)
    CQ_CHECK_MSG(!config_.precisions.empty(),
                 "CQ variants need a non-empty precision set");
  if (config_.variant == CqVariant::kCqQuant)
    CQ_CHECK_MSG(config_.augment.identity,
                 "CQ-Quant uses the identity augmentation (Sec. 4.5)");
  projection_ = models::make_projection_head(
      encoder_.feature_dim, config_.proj_hidden, config_.proj_dim, rng_);
}

PretrainStats SimClrCqTrainer::train(const data::Dataset& dataset) {
  CQ_CHECK(dataset.size() >= config_.batch_size);
  Timer timer;
  PretrainStats stats;
  AllocTracker alloc_tracker;

  encoder_.backbone->set_mode(nn::Mode::kTrain);
  projection_->set_mode(nn::Mode::kTrain);
  encoder_.policy->set_full_precision();

  auto params = encoder_.backbone->parameters();
  for (nn::Parameter* p : projection_->parameters()) params.push_back(p);
  optim::Sgd sgd(params, {.lr = config_.lr,
                          .momentum = config_.momentum,
                          .weight_decay = config_.weight_decay});

  data::Batcher batcher(dataset.size(), config_.batch_size, rng_,
                        /*drop_last=*/true);
  const auto iters_per_epoch = batcher.batches_per_epoch();
  const auto total_steps = iters_per_epoch * config_.epochs;
  const auto warmup = std::min<std::int64_t>(
      config_.warmup_epochs * iters_per_epoch, total_steps - 1);
  optim::CosineSchedule schedule(config_.lr, total_steps, warmup);

  const data::AugmentPipeline augment(config_.augment);
  const bool quantized = config_.variant != CqVariant::kVanilla;

  std::int64_t step = 0;
  for (std::int64_t epoch = 0; epoch < config_.epochs && !stats.diverged;
       ++epoch) {
    const double epoch_start = timer.seconds();
    const auto epoch_iter_start = stats.iterations;
    double epoch_loss = 0.0;
    for (std::int64_t it = 0; it < iters_per_epoch; ++it, ++step) {
      CQ_TRACE_SCOPE_N("simclr.iteration", step);
      sgd.set_lr(schedule.lr_at(step));
      const auto idx = batcher.next();

      int q1 = quant::kFullPrecisionBits, q2 = quant::kFullPrecisionBits;
      if (quantized) {
        if (config_.precision_sampling ==
            PretrainConfig::PrecisionSampling::kCyclic) {
          std::tie(q1, q2) = cyclic_precision_pair(
              config_.precisions, step, total_steps,
              config_.precision_cycles);
        } else {
          std::tie(q1, q2) =
              config_.precisions.sample_pair(rng_, config_.distinct_pair);
        }
      }

      // Build views and the branch plan: (view, bits) per encoder pass.
      struct Branch {
        Tensor view;
        int bits;
        Tensor z;       // projection output
        Tensor grad_z;  // accumulated dL/dz
      };
      std::vector<Branch> branches;
      Tensor v1, v2;
      {
        CQ_TRACE_SCOPE("simclr.augment");
        v1 = augment.batch(dataset, idx, rng_);
        v2 = augment.batch(dataset, idx, rng_);
      }
      switch (config_.variant) {
        case CqVariant::kVanilla:
          branches.push_back({v1, quant::kFullPrecisionBits, {}, {}});
          branches.push_back({v2, quant::kFullPrecisionBits, {}, {}});
          break;
        case CqVariant::kCqA:
          branches.push_back({v1, q1, {}, {}});
          branches.push_back({v2, q2, {}, {}});
          break;
        case CqVariant::kCqB:
        case CqVariant::kCqC:
          // f1, f1+, f2, f2+ (Eq. 6-7): index 0..3.
          branches.push_back({v1, q1, {}, {}});
          branches.push_back({v2, q1, {}, {}});
          branches.push_back({v1, q2, {}, {}});
          branches.push_back({v2, q2, {}, {}});
          break;
        case CqVariant::kCqQuant:
          // Identity augmentation: both branches see the same input.
          branches.push_back({v1, q1, {}, {}});
          branches.push_back({v1, q2, {}, {}});
          break;
      }

      // Branch forwards (cache stacks build up in order).
      for (auto& branch : branches) {
        CQ_TRACE_SCOPE_N("simclr.forward", branch.bits);
        encoder_.policy->set_bits(branch.bits);
        branch.z = projection_->forward(encoder_.forward(branch.view));
        branch.grad_z = Tensor::zeros(branch.z.shape());
      }
      encoder_.policy->set_full_precision();

      // Assemble the variant's NT-Xent terms.
      float loss = 0.0f;
      auto add_term = [&](std::size_t a, std::size_t b) {
        PairLoss term =
            nt_xent(branches[a].z, branches[b].z, config_.tau);
        loss += term.value;
        branches[a].grad_z.add_(term.grad_a);
        branches[b].grad_z.add_(term.grad_b);
      };
      {
        CQ_TRACE_SCOPE("simclr.loss");
        switch (config_.variant) {
          case CqVariant::kVanilla:
          case CqVariant::kCqA:
          case CqVariant::kCqQuant:
            add_term(0, 1);
            break;
          case CqVariant::kCqB:
            add_term(0, 1);  // NCE(f1, f1+)
            add_term(2, 3);  // NCE(f2, f2+)
            break;
          case CqVariant::kCqC:
            add_term(0, 1);  // NCE(f1, f1+)
            add_term(2, 3);  // NCE(f2, f2+)
            add_term(0, 2);  // NCE(f1, f2)
            add_term(1, 3);  // NCE(f1+, f2+)
            break;
        }
      }

      // Branch backwards in reverse order (LIFO cache contract).
      {
        CQ_TRACE_SCOPE("simclr.backward");
        for (auto it_b = branches.rbegin(); it_b != branches.rend(); ++it_b)
          encoder_.backbone->backward(projection_->backward(it_b->grad_z));
      }

      {
        CQ_TRACE_SCOPE("simclr.step");
        sgd.step();
      }
      stats.max_grad_norm = std::max(stats.max_grad_norm,
                                     sgd.last_grad_norm());
      epoch_loss += loss;
      ++stats.iterations;
      if (stats.iterations == 1) alloc_tracker.end_first_iteration();
      if (!is_finite(loss) || sgd.last_grad_norm() > kDivergenceGradNorm) {
        stats.diverged = true;
        CQ_LOG_WARN << variant_name(config_.variant)
                    << " diverged at step " << step << " (loss=" << loss
                    << ", grad_norm=" << sgd.last_grad_norm() << ")";
        break;
      }
    }
    stats.epoch_loss.push_back(
        static_cast<float>(epoch_loss / static_cast<double>(iters_per_epoch)));
    alloc_tracker.end_epoch(timer.seconds() - epoch_start,
                            stats.iterations - epoch_iter_start);
    CQ_LOG_DEBUG << variant_name(config_.variant) << " epoch " << epoch
                 << " loss " << stats.epoch_loss.back();
  }
  stats.final_loss =
      stats.epoch_loss.empty() ? 0.0f : stats.epoch_loss.back();
  stats.seconds = timer.seconds();
  alloc_tracker.finish(stats);
  CQ_LOG_DEBUG << variant_name(config_.variant) << " alloc stats: first-iter "
               << stats.first_iteration_heap_allocs << ", steady "
               << stats.steady_allocs_per_iteration << "/iter, pool hits "
               << stats.pool_hits << ", misses " << stats.pool_misses;
  encoder_.policy->set_full_precision();
  encoder_.backbone->clear_cache();
  projection_->clear_cache();
  return stats;
}

}  // namespace cq::core
