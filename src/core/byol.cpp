#include "core/byol.hpp"

#include <cmath>

#include "core/losses.hpp"
#include "core/trace.hpp"
#include "models/heads.hpp"
#include "optim/schedule.hpp"
#include "optim/sgd.hpp"
#include "util/logging.hpp"
#include "util/timer.hpp"

namespace cq::core {

namespace {
constexpr float kDivergenceGradNorm = 1e4f;
}

ByolCqTrainer::ByolCqTrainer(models::Encoder& online, PretrainConfig config)
    : online_(online),
      config_(std::move(config)),
      rng_(config_.seed),
      target_(models::make_encoder(online.arch, rng_, online.qconfig)) {
  CQ_CHECK_MSG(config_.variant == CqVariant::kVanilla ||
                   config_.variant == CqVariant::kCqC,
               "BYOL trainer supports vanilla and CQ-C");
  if (config_.variant == CqVariant::kCqC)
    CQ_CHECK_MSG(!config_.precisions.empty(),
                 "CQ-C needs a non-empty precision set");
  proj_online_ = models::make_byol_mlp(online_.feature_dim,
                                       config_.proj_hidden, config_.proj_dim,
                                       rng_);
  proj_target_ = models::make_byol_mlp(online_.feature_dim,
                                       config_.proj_hidden, config_.proj_dim,
                                       rng_);
  predictor_ = models::make_byol_mlp(config_.proj_dim, config_.pred_hidden,
                                     config_.proj_dim, rng_);
  // Target starts as an exact copy of the online network.
  nn::copy_parameters(*online_.backbone, *target_.backbone);
  nn::copy_parameters(*proj_online_, *proj_target_);
}

PretrainStats ByolCqTrainer::train(const data::Dataset& dataset) {
  CQ_CHECK(dataset.size() >= config_.batch_size);
  Timer timer;
  PretrainStats stats;
  AllocTracker alloc_tracker;

  online_.backbone->set_mode(nn::Mode::kTrain);
  proj_online_->set_mode(nn::Mode::kTrain);
  predictor_->set_mode(nn::Mode::kTrain);
  // Target is inference-only: eval mode pushes no caches and uses its own
  // (EMA-tracked) BatchNorm running statistics.
  target_.backbone->set_mode(nn::Mode::kEval);
  proj_target_->set_mode(nn::Mode::kEval);

  auto params = online_.backbone->parameters();
  for (nn::Parameter* p : proj_online_->parameters()) params.push_back(p);
  for (nn::Parameter* p : predictor_->parameters()) params.push_back(p);
  optim::Sgd sgd(params, {.lr = config_.lr,
                          .momentum = config_.momentum,
                          .weight_decay = config_.weight_decay});

  data::Batcher batcher(dataset.size(), config_.batch_size, rng_,
                        /*drop_last=*/true);
  const auto iters_per_epoch = batcher.batches_per_epoch();
  const auto total_steps = iters_per_epoch * config_.epochs;
  const auto warmup = std::min<std::int64_t>(
      config_.warmup_epochs * iters_per_epoch, total_steps - 1);
  optim::CosineSchedule schedule(config_.lr, total_steps, warmup);
  const data::AugmentPipeline augment(config_.augment);
  const bool quantized = config_.variant == CqVariant::kCqC;

  std::int64_t step = 0;
  for (std::int64_t epoch = 0; epoch < config_.epochs && !stats.diverged;
       ++epoch) {
    const double epoch_start = timer.seconds();
    const auto epoch_iter_start = stats.iterations;
    double epoch_loss = 0.0;
    for (std::int64_t it = 0; it < iters_per_epoch; ++it, ++step) {
      CQ_TRACE_SCOPE_N("byol.iteration", step);
      sgd.set_lr(schedule.lr_at(step));
      const auto idx = batcher.next();
      Tensor v1, v2;
      {
        CQ_TRACE_SCOPE("byol.augment");
        v1 = augment.batch(dataset, idx, rng_);
        v2 = augment.batch(dataset, idx, rng_);
      }

      std::vector<int> precisions = {quant::kFullPrecisionBits};
      if (quantized) {
        auto [q1, q2] = (config_.precision_sampling ==
                         PretrainConfig::PrecisionSampling::kCyclic)
                            ? cyclic_precision_pair(config_.precisions, step,
                                                    total_steps,
                                                    config_.precision_cycles)
                            : config_.precisions.sample_pair(
                                  rng_, config_.distinct_pair);
        precisions = {q1, q2};
      }

      // Online branches: for each precision q_i, predictions for both
      // views. Order: (q1,v1), (q1,v2), (q2,v1), (q2,v2).
      struct Branch {
        Tensor z;       // predictor output
        Tensor grad_z;  // accumulated gradient
      };
      std::vector<Branch> branches;
      std::vector<Tensor> targets;  // matching target projections
      for (int bits : precisions) {
        CQ_TRACE_SCOPE_N("byol.forward", bits);
        online_.policy->set_bits(bits);
        target_.policy->set_bits(bits);
        for (const Tensor* view : {&v1, &v2}) {
          Branch branch;
          branch.z = predictor_->forward(
              proj_online_->forward(online_.forward(*view)));
          branch.grad_z = Tensor::zeros(branch.z.shape());
          branches.push_back(std::move(branch));
          // Target sees the *other* view (feature consistency across views).
          const Tensor& other = (view == &v1) ? v2 : v1;
          targets.push_back(proj_target_->forward(target_.forward(other)));
        }
      }
      online_.policy->set_full_precision();
      target_.policy->set_full_precision();

      float loss = 0.0f;
      {
        CQ_TRACE_SCOPE("byol.loss");
        for (std::size_t k = 0; k < branches.size(); ++k) {
          PairLoss term = byol_mse(branches[k].z, targets[k]);
          loss += term.value;
          branches[k].grad_z.add_(term.grad_a);
        }
        if (quantized && branches.size() == 4) {
          // CQ-C cross-precision consistency: same view, different precision.
          const std::pair<std::size_t, std::size_t> cross_terms[] = {{0, 2},
                                                                     {1, 3}};
          for (const auto& [a, b] : cross_terms) {
            PairLoss term = symmetric_mse(branches[a].z, branches[b].z);
            loss += term.value;
            branches[a].grad_z.add_(term.grad_a);
            branches[b].grad_z.add_(term.grad_b);
          }
        }
      }

      {
        CQ_TRACE_SCOPE("byol.backward");
        for (auto it_b = branches.rbegin(); it_b != branches.rend(); ++it_b) {
          Tensor g = predictor_->backward(it_b->grad_z);
          g = proj_online_->backward(g);
          online_.backbone->backward(g);
        }
      }
      {
        CQ_TRACE_SCOPE("byol.step");
        sgd.step();
        nn::ema_update(*online_.backbone, *target_.backbone, config_.byol_ema);
        nn::ema_update(*proj_online_, *proj_target_, config_.byol_ema);
      }

      stats.max_grad_norm =
          std::max(stats.max_grad_norm, sgd.last_grad_norm());
      epoch_loss += loss;
      ++stats.iterations;
      if (stats.iterations == 1) alloc_tracker.end_first_iteration();
      if (!std::isfinite(loss) ||
          sgd.last_grad_norm() > kDivergenceGradNorm) {
        stats.diverged = true;
        CQ_LOG_WARN << "byol/" << variant_name(config_.variant)
                    << " diverged at step " << step;
        break;
      }
    }
    stats.epoch_loss.push_back(
        static_cast<float>(epoch_loss / static_cast<double>(iters_per_epoch)));
    alloc_tracker.end_epoch(timer.seconds() - epoch_start,
                            stats.iterations - epoch_iter_start);
    CQ_LOG_DEBUG << "byol/" << variant_name(config_.variant) << " epoch "
                 << epoch << " loss " << stats.epoch_loss.back();
  }
  stats.final_loss =
      stats.epoch_loss.empty() ? 0.0f : stats.epoch_loss.back();
  stats.seconds = timer.seconds();
  alloc_tracker.finish(stats);
  CQ_LOG_DEBUG << "byol/" << variant_name(config_.variant)
               << " alloc stats: first-iter "
               << stats.first_iteration_heap_allocs << ", steady "
               << stats.steady_allocs_per_iteration << "/iter, pool hits "
               << stats.pool_hits << ", misses " << stats.pool_misses;
  online_.policy->set_full_precision();
  online_.backbone->clear_cache();
  proj_online_->clear_cache();
  predictor_->clear_cache();
  return stats;
}

}  // namespace cq::core
