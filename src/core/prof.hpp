// Always-on aggregate profiler: per-op call counts, wall-ns, bytes moved,
// and heap-allocation deltas, accumulated into named counters.
//
// Unlike the scoped-span tracer (core/trace.hpp), the profiler never records
// individual events — each instrumented scope folds into four relaxed
// atomic adds on a counter that is resolved ONCE per call site (function-
// local static), so it stays on in every build and costs two clock reads
// plus the atomics per scope. Counters are shared across threads; the
// serving engine's workers therefore aggregate into the same table the
// training loop writes, and snapshot() needs no merging step.
//
// Heap-allocation deltas come from an injected per-thread source
// (set_alloc_source): tensor/storage.cpp registers its cumulative
// heap-allocation counter at static-init time, keeping this layer free of
// upward dependencies. A scope's alloc delta is only meaningful when the
// scope begins and ends on the same thread — true for every RAII use.
//
// Typical use is via the macros in core/trace.hpp (CQ_TRACE_SCOPE and
// friends), which pair a profiler counter with an optional trace span.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace cq::prof {

/// One named counter. Totals are relaxed atomics so any thread may record;
/// reads (snapshot) are racy-but-monotone, exact at quiescent points.
class Counter {
 public:
  /// Registry lookup (creates on first use). The returned reference is
  /// stable for the process lifetime — call sites cache it in a static.
  /// `name` must outlive the process (string literals).
  static Counter& get(const char* name);

  /// Registry lookup for a RUNTIME-BUILT name ("graph.pass.fold_batchnorm",
  /// per-node executor spans, ...). The registry copies the string into
  /// process-lifetime storage, so the returned counter — and its name() —
  /// are as stable as get()'s. Use with trace::Scope(counter,
  /// counter.name()) where the macros' literal requirement doesn't fit.
  static Counter& intern(const std::string& name);

  void record(std::uint64_t ns, std::uint64_t bytes, std::uint64_t allocs);
  /// Bump the call count alone (instant events: cache hits, evictions).
  void count(std::uint64_t n = 1);

  const char* name() const { return name_; }
  std::uint64_t calls() const;
  std::uint64_t total_ns() const;
  std::uint64_t bytes() const;
  std::uint64_t heap_allocs() const;

  /// Atomic total storage, defined in prof.cpp (kept out of the header so
  /// <atomic> stays out of every instrumented translation unit's hot path).
  struct Totals;

 private:
  friend struct Registry;
  explicit Counter(const char* name) : name_(name) {}

  const char* name_;
  Totals* totals_ = nullptr;  // owned by the registry, never freed
};

struct CounterSnapshot {
  std::string name;
  std::uint64_t calls = 0;
  std::uint64_t total_ns = 0;
  std::uint64_t bytes = 0;
  std::uint64_t heap_allocs = 0;
};

/// Per-thread cumulative heap-allocation count, e.g. the tensor pool's
/// miss counter. Returns 0 until a source is registered.
using AllocSourceFn = std::uint64_t (*)();
void set_alloc_source(AllocSourceFn fn);
std::uint64_t thread_allocs();

/// Zero every counter (the registry and cached references stay valid).
void reset();

/// All counters with calls > 0, sorted by total_ns descending.
std::vector<CounterSnapshot> snapshot();

/// Aggregate table as JSON: {"ops": [{"op": name, "calls": c,
/// "total_ms": t, "mean_us": m, "bytes": b, "heap_allocs": a}, ...]},
/// sorted by total_ms descending. Embedded by the pretraining runners'
/// stats and the serving engine / bench reports.
std::string json();

/// Monotonic nanosecond clock shared with the tracer.
std::uint64_t now_ns();

/// RAII scope accumulating into `c`: wall time, optional bytes, and the
/// thread's heap-allocation delta. Construct via the CQ_TRACE_* /
/// CQ_PROF_* macros in core/trace.hpp rather than directly.
class ScopeTimer {
 public:
  explicit ScopeTimer(Counter& c, std::uint64_t bytes = 0)
      : c_(c), bytes_(bytes), start_ns_(now_ns()), start_allocs_(thread_allocs()) {}
  ~ScopeTimer() {
    c_.record(now_ns() - start_ns_, bytes_, thread_allocs() - start_allocs_);
  }
  ScopeTimer(const ScopeTimer&) = delete;
  ScopeTimer& operator=(const ScopeTimer&) = delete;

  void add_bytes(std::uint64_t n) { bytes_ += n; }
  std::uint64_t start_ns() const { return start_ns_; }

 private:
  Counter& c_;
  std::uint64_t bytes_;
  std::uint64_t start_ns_;
  std::uint64_t start_allocs_;
};

}  // namespace cq::prof
