// SimCLR-family pretrainer covering vanilla SimCLR and the CQ variants.
//
// One trainer implements all five pipelines because they differ only in
// (a) which views are built, (b) which precision each branch runs at, and
// (c) which NT-Xent terms enter the loss. Branch forwards go through the
// shared encoder + projection head; backwards run in reverse branch order
// (the module cache-stack LIFO contract).
#pragma once

#include <memory>

#include "core/cq.hpp"
#include "data/dataset.hpp"
#include "models/encoder.hpp"
#include "nn/sequential.hpp"

namespace cq::core {

class SimClrCqTrainer {
 public:
  /// The encoder is borrowed and trained in place; the projection head is
  /// owned by the trainer (and discarded after pretraining, as in SimCLR).
  SimClrCqTrainer(models::Encoder& encoder, PretrainConfig config);

  /// Run the full pretraining schedule over `dataset` (labels unused).
  PretrainStats train(const data::Dataset& dataset);

  /// The projection head (exposed for tests).
  nn::Sequential& projection_head() { return *projection_; }

 private:
  models::Encoder& encoder_;
  PretrainConfig config_;
  Rng rng_;
  std::unique_ptr<nn::Sequential> projection_;
};

}  // namespace cq::core
