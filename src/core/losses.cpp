#include "core/losses.hpp"

#include <cmath>
#include <limits>

#include "tensor/ops.hpp"
#include "util/check.hpp"

namespace cq::core {

namespace {

/// Backprop through row-wise L2 normalization: given u = z / |z| and
/// dL/du, returns dL/dz = (dL/du - (dL/du . u) u) / |z|.
Tensor normalize_backward(const Tensor& u, const Tensor& norms,
                          const Tensor& grad_u) {
  const auto n = u.dim(0), d = u.dim(1);
  Tensor grad_z(u.shape());
  for (std::int64_t i = 0; i < n; ++i) {
    double dot = 0.0;
    for (std::int64_t c = 0; c < d; ++c)
      dot += static_cast<double>(grad_u.at(i, c)) * u.at(i, c);
    const float inv = norms[i] > 1e-12f ? 1.0f / norms[i] : 1.0f;
    for (std::int64_t c = 0; c < d; ++c)
      grad_z.at(i, c) =
          inv * (grad_u.at(i, c) - static_cast<float>(dot) * u.at(i, c));
  }
  return grad_z;
}

}  // namespace

PairLoss nt_xent(const Tensor& za, const Tensor& zb, float tau) {
  CQ_CHECK(za.shape().rank() == 2 && za.same_shape(zb));
  CQ_CHECK_MSG(tau > 0.0f, "temperature must be positive");
  const auto n = za.dim(0), d = za.dim(1);
  CQ_CHECK_MSG(n >= 2, "nt_xent needs at least 2 pairs for negatives");
  const auto m = 2 * n;

  // z = [za; zb], normalized.
  Tensor z(Shape{m, d});
  for (std::int64_t i = 0; i < n; ++i)
    for (std::int64_t c = 0; c < d; ++c) {
      z.at(i, c) = za.at(i, c);
      z.at(n + i, c) = zb.at(i, c);
    }
  Tensor norms;
  Tensor u = ops::l2_normalize_rows(z, &norms);

  // Similarities s = u u^T.
  Tensor s = ops::matmul_nt(u, u);

  // Per-anchor softmax over j != i at temperature tau.
  // pos(i) = i + n (mod m).
  Tensor g_s(Shape{m, m});  // dL/dS
  double loss = 0.0;
  const float inv_tau = 1.0f / tau;
  const float anchor_w = 1.0f / static_cast<float>(m);
  for (std::int64_t i = 0; i < m; ++i) {
    const std::int64_t pos = (i + n) % m;
    float row_max = -std::numeric_limits<float>::infinity();
    for (std::int64_t j = 0; j < m; ++j)
      if (j != i) row_max = std::max(row_max, s.at(i, j) * inv_tau);
    double denom = 0.0;
    for (std::int64_t j = 0; j < m; ++j)
      if (j != i) denom += std::exp(s.at(i, j) * inv_tau - row_max);
    loss += anchor_w *
            (-(static_cast<double>(s.at(i, pos)) * inv_tau - row_max) +
             std::log(denom));
    for (std::int64_t j = 0; j < m; ++j) {
      if (j == i) continue;
      const float p =
          static_cast<float>(std::exp(s.at(i, j) * inv_tau - row_max) / denom);
      g_s.at(i, j) =
          anchor_w * inv_tau * (p - (j == pos ? 1.0f : 0.0f));
    }
  }

  // dL/dU = (G + G^T) U  (u_i appears in row i and column i of S).
  Tensor g_sym = ops::add(g_s, ops::transpose(g_s));
  Tensor grad_u = ops::matmul(g_sym, u);
  Tensor grad_z = normalize_backward(u, norms, grad_u);

  PairLoss out;
  out.value = static_cast<float>(loss);
  out.grad_a = Tensor(za.shape());
  out.grad_b = Tensor(zb.shape());
  for (std::int64_t i = 0; i < n; ++i)
    for (std::int64_t c = 0; c < d; ++c) {
      out.grad_a.at(i, c) = grad_z.at(i, c);
      out.grad_b.at(i, c) = grad_z.at(n + i, c);
    }
  return out;
}

PairLoss byol_mse(const Tensor& predictions, const Tensor& targets) {
  CQ_CHECK(predictions.shape().rank() == 2 &&
           predictions.same_shape(targets));
  const auto n = predictions.dim(0);
  Tensor p_norms, t_norms;
  Tensor u = ops::l2_normalize_rows(predictions, &p_norms);
  Tensor v = ops::l2_normalize_rows(targets, &t_norms);

  // L = (1/N) sum_i |u_i - v_i|^2 = (1/N) sum_i (2 - 2 u_i . v_i)
  double loss = 0.0;
  const auto d = predictions.dim(1);
  Tensor grad_u(u.shape());
  const float w = 1.0f / static_cast<float>(n);
  for (std::int64_t i = 0; i < n; ++i) {
    double dot = 0.0;
    for (std::int64_t c = 0; c < d; ++c)
      dot += static_cast<double>(u.at(i, c)) * v.at(i, c);
    loss += w * (2.0 - 2.0 * dot);
    for (std::int64_t c = 0; c < d; ++c)
      grad_u.at(i, c) = -2.0f * w * v.at(i, c);
  }
  PairLoss out;
  out.value = static_cast<float>(loss);
  out.grad_a = normalize_backward(u, p_norms, grad_u);
  out.grad_b = Tensor(targets.shape());  // stop-gradient on the target
  return out;
}

PairLoss symmetric_mse(const Tensor& za, const Tensor& zb) {
  CQ_CHECK(za.shape().rank() == 2 && za.same_shape(zb));
  const auto n = za.dim(0), d = za.dim(1);
  Tensor a_norms, b_norms;
  Tensor u = ops::l2_normalize_rows(za, &a_norms);
  Tensor v = ops::l2_normalize_rows(zb, &b_norms);

  double loss = 0.0;
  Tensor grad_u(u.shape()), grad_v(v.shape());
  const float w = 1.0f / static_cast<float>(n);
  for (std::int64_t i = 0; i < n; ++i) {
    for (std::int64_t c = 0; c < d; ++c) {
      const float diff = u.at(i, c) - v.at(i, c);
      loss += w * static_cast<double>(diff) * diff;
      grad_u.at(i, c) = 2.0f * w * diff;
      grad_v.at(i, c) = -2.0f * w * diff;
    }
  }
  PairLoss out;
  out.value = static_cast<float>(loss);
  out.grad_a = normalize_backward(u, a_norms, grad_u);
  out.grad_b = normalize_backward(v, b_norms, grad_v);
  return out;
}

PairLoss info_nce_queue(const Tensor& queries, const Tensor& keys,
                        const Tensor& queue, float tau) {
  CQ_CHECK(queries.shape().rank() == 2 && queries.same_shape(keys));
  CQ_CHECK(queue.shape().rank() == 2 && queue.dim(1) == queries.dim(1));
  CQ_CHECK_MSG(tau > 0.0f, "temperature must be positive");
  const auto n = queries.dim(0), d = queries.dim(1), m = queue.dim(0);

  Tensor q_norms;
  Tensor u = ops::l2_normalize_rows(queries, &q_norms);
  Tensor v = ops::l2_normalize_rows(keys);

  const float inv_tau = 1.0f / tau;
  const float w = 1.0f / static_cast<float>(n);
  double loss = 0.0;
  Tensor grad_u(u.shape());
  std::vector<float> logits(static_cast<std::size_t>(m + 1));
  for (std::int64_t i = 0; i < n; ++i) {
    // logits[0] = positive, logits[1..m] = queue negatives.
    double pos = 0.0;
    for (std::int64_t c = 0; c < d; ++c)
      pos += static_cast<double>(u.at(i, c)) * v.at(i, c);
    logits[0] = static_cast<float>(pos) * inv_tau;
    float mx = logits[0];
    for (std::int64_t k = 0; k < m; ++k) {
      double s = 0.0;
      for (std::int64_t c = 0; c < d; ++c)
        s += static_cast<double>(u.at(i, c)) * queue.at(k, c);
      logits[static_cast<std::size_t>(k + 1)] =
          static_cast<float>(s) * inv_tau;
      mx = std::max(mx, logits[static_cast<std::size_t>(k + 1)]);
    }
    double denom = 0.0;
    for (std::size_t j = 0; j < logits.size(); ++j)
      denom += std::exp(logits[j] - mx);
    loss += w * (-(static_cast<double>(logits[0]) - mx) + std::log(denom));
    // Softmax over [pos, negatives]; dL/du_i accumulates each direction.
    const float p0 =
        static_cast<float>(std::exp(logits[0] - mx) / denom);
    for (std::int64_t c = 0; c < d; ++c)
      grad_u.at(i, c) = w * inv_tau * (p0 - 1.0f) * v.at(i, c);
    for (std::int64_t k = 0; k < m; ++k) {
      const float pk = static_cast<float>(
          std::exp(logits[static_cast<std::size_t>(k + 1)] - mx) / denom);
      for (std::int64_t c = 0; c < d; ++c)
        grad_u.at(i, c) += w * inv_tau * pk * queue.at(k, c);
    }
  }

  PairLoss out;
  out.value = static_cast<float>(loss);
  out.grad_a = normalize_backward(u, q_norms, grad_u);
  out.grad_b = Tensor(keys.shape());  // stop-gradient on keys
  return out;
}

ClassificationLoss cross_entropy(const Tensor& logits,
                                 const std::vector<int>& labels) {
  CQ_CHECK(logits.shape().rank() == 2);
  const auto n = logits.dim(0), c = logits.dim(1);
  CQ_CHECK(static_cast<std::int64_t>(labels.size()) == n);
  for (int label : labels) CQ_CHECK(label >= 0 && label < c);

  Tensor log_p = ops::log_softmax_rows(logits);
  ClassificationLoss out;
  out.grad_logits = Tensor(logits.shape());
  const float w = 1.0f / static_cast<float>(n);
  double loss = 0.0;
  for (std::int64_t i = 0; i < n; ++i) {
    const int y = labels[static_cast<std::size_t>(i)];
    loss -= w * log_p.at(i, y);
    std::int64_t best = 0;
    for (std::int64_t j = 0; j < c; ++j) {
      const float p = std::exp(log_p.at(i, j));
      out.grad_logits.at(i, j) = w * (p - (j == y ? 1.0f : 0.0f));
      if (log_p.at(i, j) > log_p.at(i, best)) best = j;
    }
    if (best == y) ++out.correct;
  }
  out.value = static_cast<float>(loss);
  return out;
}

}  // namespace cq::core
