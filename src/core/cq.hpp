// Contrastive Quant: variant taxonomy and pretraining configuration.
//
// The paper's Fig. 1 pipelines:
//   Vanilla  — plain SimCLR/BYOL, full precision:  NCE(f, f+)
//   CQ-A     — sequential augmentation (Eq. 5):
//                f = F_q1(Aug1(x)), f+ = F_q2(Aug2(x)), NCE(f, f+)
//   CQ-B     — per-precision view consistency (Eq. 6-8):
//                NCE(f1, f1+) + NCE(f2, f2+)
//   CQ-C     — CQ-B plus cross-precision consistency (Eq. 9):
//                + NCE(f1, f2) + NCE(f1+, f2+)
//   CQ-Quant — quantization as the *only* augmentation (Sec. 4.5):
//                NCE(f1, f2) with identity input augmentation
#pragma once

#include <string>
#include <vector>

#include "data/augment.hpp"
#include "quant/policy.hpp"

namespace cq::core {

enum class CqVariant { kVanilla, kCqA, kCqB, kCqC, kCqQuant };

std::string variant_name(CqVariant variant);
/// Parses "simclr"/"vanilla", "cq-a", "cq-b", "cq-c", "cq-quant".
CqVariant parse_variant(const std::string& name);
/// Number of encoder branches per iteration (2 for vanilla/CQ-A/CQ-Quant,
/// 4 for CQ-B/CQ-C).
int branches_per_iteration(CqVariant variant);

struct PretrainConfig {
  CqVariant variant = CqVariant::kVanilla;
  /// Bit-width pool for (q1, q2); ignored by kVanilla. The paper's sets are
  /// PrecisionSet::range(4,16) / (6,16) / (8,16).
  quant::PrecisionSet precisions;
  /// Whether q1 != q2 is enforced when sampling the per-iteration pair
  /// (ablation; the paper's "differently augmented" wording implies true).
  bool distinct_pair = true;
  /// How the per-iteration precisions are chosen:
  ///  kRandomPair — the paper's scheme (uniform from the precision set);
  ///  kCyclic     — CPT-style (Fu et al., the paper's ref [3]) triangular
  ///                schedule across the set; q2 mirrors q1 within the set.
  enum class PrecisionSampling { kRandomPair, kCyclic };
  PrecisionSampling precision_sampling = PrecisionSampling::kRandomPair;
  /// Number of triangular cycles over the whole run (kCyclic only).
  std::int64_t precision_cycles = 4;
  float tau = 0.5f;
  std::int64_t epochs = 10;
  std::int64_t batch_size = 32;
  float lr = 0.2f;
  float momentum = 0.9f;
  float weight_decay = 5e-4f;
  std::int64_t warmup_epochs = 1;
  std::int64_t proj_hidden = 64;
  std::int64_t proj_dim = 32;
  data::AugmentConfig augment;
  /// BYOL only: target-network EMA momentum and predictor hidden width.
  float byol_ema = 0.99f;
  std::int64_t pred_hidden = 32;
  /// MoCo only: negative-queue length.
  std::int64_t moco_queue = 256;
  std::uint64_t seed = 7;

  /// Stable string key covering every field (used for checkpoint caching).
  std::string cache_key() const;
};

/// The (q1, q2) of a CPT-style triangular schedule at `step` of
/// `total_steps` with `cycles` full triangles: q1 walks low->high->low
/// through the sorted set; q2 is q1's mirror within the set.
std::pair<int, int> cyclic_precision_pair(const quant::PrecisionSet& set,
                                          std::int64_t step,
                                          std::int64_t total_steps,
                                          std::int64_t cycles);

struct PretrainStats {
  std::vector<float> epoch_loss;
  float final_loss = 0.0f;
  float max_grad_norm = 0.0f;
  /// Loss went non-finite or the gradient norm exploded; training stopped.
  bool diverged = false;
  std::int64_t iterations = 0;
  double seconds = 0.0;

  // ---- allocation accounting (tensor::alloc_stats() deltas) ----
  /// Heap allocations performed by the very first training iteration, while
  /// the tensor pool is cold. This approximates pre-pool per-iteration
  /// allocation behavior and is the baseline for the steady-state reduction
  /// reported by bench/pipeline_alloc.
  std::uint64_t first_iteration_heap_allocs = 0;
  /// New heap allocations per epoch (pool misses; ~0 once the pool is warm).
  std::vector<std::uint64_t> epoch_heap_allocs;
  /// Pool hit/miss totals over the whole run.
  std::uint64_t pool_hits = 0;
  std::uint64_t pool_misses = 0;
  /// Heap allocations per iteration averaged over the final epoch.
  double steady_allocs_per_iteration = 0.0;
  /// Wall-clock seconds per epoch (for ms/iteration reporting).
  std::vector<double> epoch_seconds;

  /// Aggregate profiler table (core/prof.hpp json()) captured when the run
  /// finished. Cumulative across the process — callers wanting a per-run
  /// view call prof::reset() before train().
  std::string profile_json;
};

/// Captures tensor::alloc_stats() deltas over a pretraining run so every
/// runner (SimCLR / BYOL / MoCo) reports identical allocation accounting.
/// Construct at the start of train(), call end_first_iteration() once after
/// the first optimizer step, end_epoch() per epoch, and finish() before
/// returning stats.
class AllocTracker {
 public:
  AllocTracker();
  void end_first_iteration();
  void end_epoch(double seconds, std::int64_t iterations);
  void finish(PretrainStats& stats) const;

  /// Cumulative heap allocations (tensor-pool misses) made by the CALLING
  /// thread. A delta of zero across a window proves the window ran entirely
  /// off pooled storage; the serving engine samples this per worker to
  /// report its zero-allocation steady state.
  static std::uint64_t thread_allocs();

 private:
  std::uint64_t base_allocs_ = 0;
  std::uint64_t base_hits_ = 0;
  std::uint64_t base_misses_ = 0;
  std::uint64_t first_iter_allocs_ = 0;
  std::uint64_t epoch_start_allocs_ = 0;
  std::vector<std::uint64_t> epoch_allocs_;
  std::vector<double> epoch_seconds_;
  std::int64_t last_epoch_iterations_ = 0;
};

}  // namespace cq::core
