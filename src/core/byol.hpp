// BYOL-family pretrainer: vanilla BYOL and Contrastive Quant on top of it.
//
// Paper Sec. 3.4 ("Applying on top of BYOL"): the NCE loss becomes the
// normalized MSE, a projection head and prediction head follow the online
// encoder, the target network is an EMA copy with stopped gradients, and
// both views pass through online/target alternately (the symmetrized loss).
// For CQ-C, the cross-precision consistency terms NCE(f1,f2)/NCE(f1+,f2+)
// become symmetric normalized-MSE terms between the online predictions of
// the same view at the two sampled precisions (documented substitution —
// BYOL has no negatives, so the MSE form is the natural analogue).
#pragma once

#include <memory>

#include "core/cq.hpp"
#include "data/dataset.hpp"
#include "models/encoder.hpp"
#include "nn/sequential.hpp"

namespace cq::core {

class ByolCqTrainer {
 public:
  /// Supported variants: kVanilla and kCqC (the ones the paper evaluates on
  /// BYOL). The online encoder is borrowed and trained in place; the target
  /// network is an internal EMA copy.
  ByolCqTrainer(models::Encoder& online, PretrainConfig config);

  PretrainStats train(const data::Dataset& dataset);

  /// Target network (exposed for tests).
  models::Encoder& target_encoder() { return target_; }

 private:
  models::Encoder& online_;
  PretrainConfig config_;
  Rng rng_;
  models::Encoder target_;
  std::unique_ptr<nn::Sequential> proj_online_;
  std::unique_ptr<nn::Sequential> proj_target_;
  std::unique_ptr<nn::Sequential> predictor_;
};

}  // namespace cq::core
