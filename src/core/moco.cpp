#include "core/moco.hpp"

#include <cmath>

#include "core/losses.hpp"
#include "core/trace.hpp"
#include "models/heads.hpp"
#include "optim/schedule.hpp"
#include "optim/sgd.hpp"
#include "tensor/ops.hpp"
#include "util/logging.hpp"
#include "util/timer.hpp"

namespace cq::core {

namespace {
constexpr float kDivergenceGradNorm = 1e4f;
}

MocoCqTrainer::MocoCqTrainer(models::Encoder& query_encoder,
                             PretrainConfig config)
    : query_(query_encoder),
      config_(std::move(config)),
      rng_(config_.seed),
      key_(models::make_encoder(query_encoder.arch, rng_,
                                query_encoder.qconfig)) {
  CQ_CHECK_MSG(config_.variant == CqVariant::kVanilla ||
                   config_.variant == CqVariant::kCqA,
               "MoCo trainer supports vanilla and CQ-A");
  if (config_.variant == CqVariant::kCqA)
    CQ_CHECK_MSG(!config_.precisions.empty(),
                 "CQ-A needs a non-empty precision set");
  CQ_CHECK(config_.moco_queue >= 1);
  proj_query_ = models::make_projection_head(
      query_.feature_dim, config_.proj_hidden, config_.proj_dim, rng_);
  proj_key_ = models::make_projection_head(
      query_.feature_dim, config_.proj_hidden, config_.proj_dim, rng_);
  nn::copy_parameters(*query_.backbone, *key_.backbone);
  nn::copy_parameters(*proj_query_, *proj_key_);
  // Queue starts with random normalized vectors (standard MoCo init).
  queue_ = ops::l2_normalize_rows(
      Tensor::randn(Shape{config_.moco_queue, config_.proj_dim}, rng_));
}

void MocoCqTrainer::enqueue_keys(const Tensor& normalized_keys) {
  const auto n = normalized_keys.dim(0), d = normalized_keys.dim(1);
  CQ_CHECK(d == queue_.dim(1));
  for (std::int64_t i = 0; i < n; ++i) {
    for (std::int64_t c = 0; c < d; ++c)
      queue_.at(queue_cursor_, c) = normalized_keys.at(i, c);
    queue_cursor_ = (queue_cursor_ + 1) % queue_.dim(0);
  }
}

PretrainStats MocoCqTrainer::train(const data::Dataset& dataset) {
  CQ_CHECK(dataset.size() >= config_.batch_size);
  Timer timer;
  PretrainStats stats;
  AllocTracker alloc_tracker;

  query_.backbone->set_mode(nn::Mode::kTrain);
  proj_query_->set_mode(nn::Mode::kTrain);
  key_.backbone->set_mode(nn::Mode::kEval);  // inference-only EMA network
  proj_key_->set_mode(nn::Mode::kEval);

  auto params = query_.backbone->parameters();
  for (nn::Parameter* p : proj_query_->parameters()) params.push_back(p);
  optim::Sgd sgd(params, {.lr = config_.lr,
                          .momentum = config_.momentum,
                          .weight_decay = config_.weight_decay});

  data::Batcher batcher(dataset.size(), config_.batch_size, rng_,
                        /*drop_last=*/true);
  const auto iters_per_epoch = batcher.batches_per_epoch();
  const auto total_steps = iters_per_epoch * config_.epochs;
  const auto warmup = std::min<std::int64_t>(
      config_.warmup_epochs * iters_per_epoch, total_steps - 1);
  optim::CosineSchedule schedule(config_.lr, total_steps, warmup);
  const data::AugmentPipeline augment(config_.augment);
  const bool quantized = config_.variant == CqVariant::kCqA;

  std::int64_t step = 0;
  for (std::int64_t epoch = 0; epoch < config_.epochs && !stats.diverged;
       ++epoch) {
    const double epoch_start = timer.seconds();
    const auto epoch_iter_start = stats.iterations;
    double epoch_loss = 0.0;
    for (std::int64_t it = 0; it < iters_per_epoch; ++it, ++step) {
      CQ_TRACE_SCOPE_N("moco.iteration", step);
      sgd.set_lr(schedule.lr_at(step));
      const auto idx = batcher.next();
      Tensor v_query, v_key;
      {
        CQ_TRACE_SCOPE("moco.augment");
        v_query = augment.batch(dataset, idx, rng_);
        v_key = augment.batch(dataset, idx, rng_);
      }

      int q1 = quant::kFullPrecisionBits, q2 = quant::kFullPrecisionBits;
      if (quantized) {
        if (config_.precision_sampling ==
            PretrainConfig::PrecisionSampling::kCyclic) {
          std::tie(q1, q2) = cyclic_precision_pair(
              config_.precisions, step, total_steps,
              config_.precision_cycles);
        } else {
          std::tie(q1, q2) =
              config_.precisions.sample_pair(rng_, config_.distinct_pair);
        }
      }

      Tensor q, k;
      {
        CQ_TRACE_SCOPE_N("moco.forward", q1);
        query_.policy->set_bits(q1);
        q = proj_query_->forward(query_.forward(v_query));
        query_.policy->set_full_precision();
      }
      {
        CQ_TRACE_SCOPE_N("moco.forward", q2);
        key_.policy->set_bits(q2);
        k = proj_key_->forward(key_.forward(v_key));
        key_.policy->set_full_precision();
      }

      PairLoss loss;
      {
        CQ_TRACE_SCOPE("moco.loss");
        loss = info_nce_queue(q, k, queue_, config_.tau);
      }
      {
        CQ_TRACE_SCOPE("moco.backward");
        query_.backbone->backward(proj_query_->backward(loss.grad_a));
      }
      {
        CQ_TRACE_SCOPE("moco.step");
        sgd.step();
        nn::ema_update(*query_.backbone, *key_.backbone, config_.byol_ema);
        nn::ema_update(*proj_query_, *proj_key_, config_.byol_ema);
        enqueue_keys(ops::l2_normalize_rows(k));
      }

      stats.max_grad_norm =
          std::max(stats.max_grad_norm, sgd.last_grad_norm());
      epoch_loss += loss.value;
      ++stats.iterations;
      if (stats.iterations == 1) alloc_tracker.end_first_iteration();
      if (!std::isfinite(loss.value) ||
          sgd.last_grad_norm() > kDivergenceGradNorm) {
        stats.diverged = true;
        CQ_LOG_WARN << "moco/" << variant_name(config_.variant)
                    << " diverged at step " << step;
        break;
      }
    }
    stats.epoch_loss.push_back(
        static_cast<float>(epoch_loss / static_cast<double>(iters_per_epoch)));
    alloc_tracker.end_epoch(timer.seconds() - epoch_start,
                            stats.iterations - epoch_iter_start);
    CQ_LOG_DEBUG << "moco/" << variant_name(config_.variant) << " epoch "
                 << epoch << " loss " << stats.epoch_loss.back();
  }
  stats.final_loss =
      stats.epoch_loss.empty() ? 0.0f : stats.epoch_loss.back();
  stats.seconds = timer.seconds();
  alloc_tracker.finish(stats);
  CQ_LOG_DEBUG << "moco/" << variant_name(config_.variant)
               << " alloc stats: first-iter "
               << stats.first_iteration_heap_allocs << ", steady "
               << stats.steady_allocs_per_iteration << "/iter, pool hits "
               << stats.pool_hits << ", misses " << stats.pool_misses;
  query_.policy->set_full_precision();
  query_.backbone->clear_cache();
  proj_query_->clear_cache();
  return stats;
}

}  // namespace cq::core
