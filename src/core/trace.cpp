#include "core/trace.hpp"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <memory>
#include <mutex>

namespace cq::trace {

namespace {

constexpr std::size_t kDefaultRingCapacity = std::size_t{1} << 15;

/// One thread's span ring. The owning thread writes under `mu` (taken only
/// on the runtime-enabled path); readers (snapshot/export/reset) take the
/// same mutex, so concurrent export is race-free — it just misses spans
/// recorded after it passes the ring.
struct ThreadBuf {
  std::mutex mu;
  std::vector<Span> ring;  // preallocated to capacity; slots overwritten
  std::size_t head = 0;    // next write index
  std::uint64_t total = 0;  // spans ever written since last reset
  std::uint32_t depth = 0;  // current nesting depth (owner thread only)
  std::uint32_t tid = 0;    // 1-based registration order
};

struct TraceState {
  std::atomic<bool> enabled{false};
  std::mutex registry_mu;
  std::vector<std::shared_ptr<ThreadBuf>> bufs;
  std::size_t ring_capacity = kDefaultRingCapacity;

  static TraceState& instance() {
    static TraceState s;
    return s;
  }
};

/// Shared ownership keeps a buffer exportable after its thread exits.
ThreadBuf& thread_buf() {
  thread_local std::shared_ptr<ThreadBuf> buf = [] {
    TraceState& s = TraceState::instance();
    auto b = std::make_shared<ThreadBuf>();
    std::lock_guard<std::mutex> lock(s.registry_mu);
    b->ring.resize(s.ring_capacity);
    b->tid = static_cast<std::uint32_t>(s.bufs.size() + 1);
    s.bufs.push_back(b);
    return b;
  }();
  return *buf;
}

}  // namespace

void enable(bool on) {
  TraceState::instance().enabled.store(on, std::memory_order_release);
}

bool enabled() {
  return TraceState::instance().enabled.load(std::memory_order_acquire);
}

void reset() {
  TraceState& s = TraceState::instance();
  std::lock_guard<std::mutex> lock(s.registry_mu);
  for (auto& b : s.bufs) {
    std::lock_guard<std::mutex> bl(b->mu);
    b->head = 0;
    b->total = 0;
  }
}

void set_ring_capacity(std::size_t spans) {
  TraceState& s = TraceState::instance();
  std::lock_guard<std::mutex> lock(s.registry_mu);
  s.ring_capacity = spans > 0 ? spans : 1;
  for (auto& b : s.bufs) {
    std::lock_guard<std::mutex> bl(b->mu);
    b->ring.assign(s.ring_capacity, Span{});
    b->head = 0;
    b->total = 0;
  }
}

std::size_t span_count() {
  TraceState& s = TraceState::instance();
  std::lock_guard<std::mutex> lock(s.registry_mu);
  std::size_t n = 0;
  for (auto& b : s.bufs) {
    std::lock_guard<std::mutex> bl(b->mu);
    n += static_cast<std::size_t>(
        std::min<std::uint64_t>(b->total, b->ring.size()));
  }
  return n;
}

std::uint64_t dropped() {
  TraceState& s = TraceState::instance();
  std::lock_guard<std::mutex> lock(s.registry_mu);
  std::uint64_t n = 0;
  for (auto& b : s.bufs) {
    std::lock_guard<std::mutex> bl(b->mu);
    const auto cap = static_cast<std::uint64_t>(b->ring.size());
    if (b->total > cap) n += b->total - cap;
  }
  return n;
}

std::vector<Span> snapshot() {
  TraceState& s = TraceState::instance();
  std::vector<Span> out;
  {
    std::lock_guard<std::mutex> lock(s.registry_mu);
    for (auto& b : s.bufs) {
      std::lock_guard<std::mutex> bl(b->mu);
      const auto cap = static_cast<std::uint64_t>(b->ring.size());
      const auto n = std::min<std::uint64_t>(b->total, cap);
      // Oldest surviving span first: when wrapped, head is also the oldest.
      const std::size_t start = b->total > cap ? b->head : 0;
      for (std::uint64_t i = 0; i < n; ++i)
        out.push_back(b->ring[(start + i) % cap]);
    }
  }
  std::sort(out.begin(), out.end(), [](const Span& a, const Span& b) {
    if (a.start_ns != b.start_ns) return a.start_ns < b.start_ns;
    if (a.end_ns != b.end_ns) return a.end_ns > b.end_ns;  // parent first
    return a.depth < b.depth;
  });
  return out;
}

namespace detail {

void record(const char* name, std::uint64_t start_ns, std::uint64_t end_ns,
            std::int64_t arg) {
  ThreadBuf& b = thread_buf();
  std::lock_guard<std::mutex> lock(b.mu);
  Span& s = b.ring[b.head];
  s.name = name;
  s.start_ns = start_ns;
  s.end_ns = end_ns;
  s.depth = b.depth;  // already back at the parent's depth (leave() ran)
  s.tid = b.tid;
  s.arg = arg;
  b.head = (b.head + 1) % b.ring.size();
  ++b.total;
}

std::uint32_t enter() { return thread_buf().depth++; }

void leave() { --thread_buf().depth; }

}  // namespace detail
}  // namespace cq::trace

namespace cq::trace_export {

namespace {

void append_events(std::string& out) {
  const auto spans = trace::snapshot();
  std::uint64_t t0 = 0;
  for (const auto& s : spans)
    if (t0 == 0 || s.start_ns < t0) t0 = s.start_ns;
  char line[256];
  for (std::size_t i = 0; i < spans.size(); ++i) {
    const trace::Span& s = spans[i];
    const double ts = static_cast<double>(s.start_ns - t0) / 1e3;
    const double dur = static_cast<double>(s.end_ns - s.start_ns) / 1e3;
    int n;
    if (s.arg != trace::Span::kNoArg) {
      n = std::snprintf(line, sizeof(line),
                        "{\"name\": \"%s\", \"cat\": \"cq\", \"ph\": \"X\", "
                        "\"ts\": %.3f, \"dur\": %.3f, \"pid\": 1, "
                        "\"tid\": %u, \"args\": {\"n\": %lld}}",
                        s.name, ts, dur, s.tid,
                        static_cast<long long>(s.arg));
    } else {
      n = std::snprintf(line, sizeof(line),
                        "{\"name\": \"%s\", \"cat\": \"cq\", \"ph\": \"X\", "
                        "\"ts\": %.3f, \"dur\": %.3f, \"pid\": 1, "
                        "\"tid\": %u}",
                        s.name, ts, dur, s.tid);
    }
    if (n < 0) continue;
    if (i) out += ",\n  ";
    out += line;
  }
}

}  // namespace

std::string chrome_json() {
  std::string out = "{\"traceEvents\": [\n  ";
  append_events(out);
  out += "\n], \"displayTimeUnit\": \"ms\"}\n";
  return out;
}

bool chrome(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::string doc = chrome_json();
  const bool ok = std::fwrite(doc.data(), 1, doc.size(), f) == doc.size();
  return std::fclose(f) == 0 && ok;
}

}  // namespace cq::trace_export
