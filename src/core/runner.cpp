#include "core/runner.hpp"

#include <cstdlib>
#include <filesystem>
#include <sstream>

#include "util/check.hpp"
#include "util/logging.hpp"

namespace cq::core {

std::int64_t env_int(const char* name, std::int64_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  char* end = nullptr;
  const long long parsed = std::strtoll(v, &end, 10);
  return (end != nullptr && *end == '\0') ? parsed : fallback;
}

double env_double(const char* name, double fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  char* end = nullptr;
  const double parsed = std::strtod(v, &end);
  return (end != nullptr && *end == '\0') ? parsed : fallback;
}

double experiment_scale() { return env_double("CQ_SCALE", 1.0); }

namespace {
std::int64_t scaled(std::int64_t base) {
  return std::max<std::int64_t>(
      32, static_cast<std::int64_t>(static_cast<double>(base) *
                                    experiment_scale()));
}
}  // namespace

DatasetBundle make_bundle(const std::string& name) {
  DatasetBundle bundle;
  bundle.name = name;
  std::int64_t ssl = 0, labeled = 0, test = 0;
  if (name == "synth-cifar") {
    bundle.config = data::synth_cifar_config();
    ssl = 384;
    labeled = 640;
    test = 240;
  } else if (name == "synth-imagenet") {
    bundle.config = data::synth_imagenet_config();
    ssl = 448;
    labeled = 800;
    test = 256;
  } else {
    CQ_CHECK_MSG(false, "unknown dataset bundle '" << name << "'");
  }
  // Three independent deterministic streams so split contents do not shift
  // when one split's size changes.
  Rng ssl_rng(bundle.config.seed * 1000003 + 1);
  Rng labeled_rng(bundle.config.seed * 1000003 + 2);
  Rng test_rng(bundle.config.seed * 1000003 + 3);
  bundle.ssl_train = data::make_synth_dataset(bundle.config, scaled(ssl),
                                              ssl_rng);
  bundle.labeled = data::make_synth_dataset(bundle.config, scaled(labeled),
                                            labeled_rng);
  bundle.test = data::make_synth_dataset(bundle.config, scaled(test),
                                         test_rng);
  return bundle;
}

std::string cache_dir() {
  const char* dir = std::getenv("CQ_CACHE_DIR");
  std::string path = (dir != nullptr && *dir != '\0') ? dir : ".cq_cache";
  std::filesystem::create_directories(path);
  return path;
}

namespace {
std::uint64_t fnv1a(const std::string& s) {
  std::uint64_t h = 0xCBF29CE484222325ULL;
  for (unsigned char ch : s) {
    h ^= ch;
    h *= 0x100000001B3ULL;
  }
  return h;
}
}  // namespace

PretrainResult pretrain_cached(models::Encoder& encoder,
                               const PretrainConfig& config,
                               const DatasetBundle& bundle,
                               const std::string& family, bool cache) {
  CQ_CHECK(family == "simclr" || family == "byol" || family == "moco");
  std::ostringstream key;
  key << family << "|" << encoder.arch << "|" << bundle.name << "|n="
      << bundle.ssl_train.size() << "|" << config.cache_key();
  std::ostringstream path;
  path << cache_dir() << "/" << family << "_" << encoder.arch << "_"
       << variant_name(config.variant) << "_" << std::hex << fnv1a(key.str())
       << ".ckpt";

  PretrainResult result;
  result.checkpoint_path = path.str();
  if (cache && std::filesystem::exists(path.str())) {
    models::load_module(path.str(), *encoder.backbone);
    result.from_cache = true;
    CQ_LOG_INFO << "loaded cached encoder " << path.str();
    return result;
  }
  CQ_LOG_INFO << "pretraining " << family << "/"
              << variant_name(config.variant) << " " << encoder.arch
              << " on " << bundle.name << " (" << bundle.ssl_train.size()
              << " images, " << config.epochs << " epochs)";
  if (family == "simclr") {
    SimClrCqTrainer trainer(encoder, config);
    result.stats = trainer.train(bundle.ssl_train);
  } else if (family == "byol") {
    ByolCqTrainer trainer(encoder, config);
    result.stats = trainer.train(bundle.ssl_train);
  } else {
    MocoCqTrainer trainer(encoder, config);
    result.stats = trainer.train(bundle.ssl_train);
  }
  if (cache && !result.stats.diverged)
    models::save_module(path.str(), *encoder.backbone);
  return result;
}

}  // namespace cq::core
