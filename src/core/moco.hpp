// MoCo-family pretrainer (He et al. 2020 — the paper's reference [1]), with
// Contrastive Quant applied on top.
//
// This is an *extension* beyond the paper's SimCLR/BYOL experiments: the
// paper positions CQ as a general recipe for contrastive pipelines, and
// MoCo's momentum encoder + negative queue is the third canonical pipeline.
// CQ-A maps naturally: the query encoder runs at q1 and the (EMA) key
// encoder at q2, so the queue accumulates keys produced under many
// quantization levels — quantization-as-augmentation of the negatives too.
#pragma once

#include <memory>

#include "core/cq.hpp"
#include "data/dataset.hpp"
#include "models/encoder.hpp"
#include "nn/sequential.hpp"

namespace cq::core {

class MocoCqTrainer {
 public:
  /// Supported variants: kVanilla (plain MoCo) and kCqA (quantization
  /// augmentation on query/key encoders). The query encoder is borrowed and
  /// trained in place; the key network is an internal EMA copy.
  MocoCqTrainer(models::Encoder& query_encoder, PretrainConfig config);

  PretrainStats train(const data::Dataset& dataset);

  /// The negative queue (exposed for tests): [queue_size, proj_dim],
  /// row-normalized.
  const Tensor& queue() const { return queue_; }
  std::int64_t queue_cursor() const { return queue_cursor_; }

 private:
  void enqueue_keys(const Tensor& normalized_keys);

  models::Encoder& query_;
  PretrainConfig config_;
  Rng rng_;
  models::Encoder key_;
  std::unique_ptr<nn::Sequential> proj_query_;
  std::unique_ptr<nn::Sequential> proj_key_;
  Tensor queue_;
  std::int64_t queue_cursor_ = 0;
};

}  // namespace cq::core
