// Contrastive losses with analytic gradients.
//
// These are the objectives of the paper: the NT-Xent / NCE loss (Eq. 1-2,
// SimCLR form) and BYOL's normalized MSE, plus softmax cross-entropy for the
// evaluation classifiers. Gradients are returned with respect to the
// *unnormalized* input features (the losses normalize internally), so
// callers feed them straight into Module::backward.
#pragma once

#include <vector>

#include "tensor/tensor.hpp"

namespace cq::core {

struct PairLoss {
  float value = 0.0f;
  Tensor grad_a;  // dL/d(za)
  Tensor grad_b;  // dL/d(zb)
};

/// NT-Xent (normalized temperature-scaled cross entropy) over a batch of N
/// positive pairs (za[i], zb[i]). All 2N-2 other embeddings act as
/// negatives for each anchor; the loss is averaged over the 2N anchors.
PairLoss nt_xent(const Tensor& za, const Tensor& zb, float tau);

/// BYOL regression loss: mean_i || p_i/|p_i| - t_i/|t_i| ||^2. The target is
/// stop-gradient: only grad_a (w.r.t. predictions) is populated; grad_b is
/// zero.
PairLoss byol_mse(const Tensor& predictions, const Tensor& targets);

/// Symmetric normalized MSE: like byol_mse but gradients flow to both
/// sides. Used for CQ-C's cross-precision consistency terms on BYOL.
PairLoss symmetric_mse(const Tensor& za, const Tensor& zb);

/// MoCo-style InfoNCE with a memory queue (He et al. 2020): each query's
/// positive is its key row; negatives are the queue rows. Keys and queue are
/// stop-gradient — only grad_a (w.r.t. queries) is populated. `queue` rows
/// are expected L2-normalized (the trainer maintains that invariant).
PairLoss info_nce_queue(const Tensor& queries, const Tensor& keys,
                        const Tensor& queue, float tau);

struct ClassificationLoss {
  float value = 0.0f;
  Tensor grad_logits;  // [N, C]
  std::int64_t correct = 0;
};

/// Softmax cross entropy, averaged over the batch; also reports top-1 hits.
ClassificationLoss cross_entropy(const Tensor& logits,
                                 const std::vector<int>& labels);

}  // namespace cq::core
