#include "core/simsiam.hpp"

#include <cmath>

#include "core/losses.hpp"
#include "models/heads.hpp"
#include "optim/schedule.hpp"
#include "optim/sgd.hpp"
#include "util/logging.hpp"
#include "util/timer.hpp"

namespace cq::core {

namespace {
constexpr float kDivergenceGradNorm = 1e4f;
}

SimSiamCqTrainer::SimSiamCqTrainer(models::Encoder& encoder,
                                   PretrainConfig config)
    : encoder_(encoder), config_(std::move(config)), rng_(config_.seed) {
  CQ_CHECK_MSG(config_.variant == CqVariant::kVanilla ||
                   config_.variant == CqVariant::kCqC,
               "SimSiam trainer supports vanilla and CQ-C");
  if (config_.variant == CqVariant::kCqC)
    CQ_CHECK_MSG(!config_.precisions.empty(),
                 "CQ-C needs a non-empty precision set");
  projector_ = models::make_byol_mlp(encoder_.feature_dim,
                                     config_.proj_hidden, config_.proj_dim,
                                     rng_);
  predictor_ = models::make_byol_mlp(config_.proj_dim, config_.pred_hidden,
                                     config_.proj_dim, rng_);
}

PretrainStats SimSiamCqTrainer::train(const data::Dataset& dataset) {
  CQ_CHECK(dataset.size() >= config_.batch_size);
  Timer timer;
  PretrainStats stats;

  encoder_.backbone->set_mode(nn::Mode::kTrain);
  projector_->set_mode(nn::Mode::kTrain);
  predictor_->set_mode(nn::Mode::kTrain);

  auto params = encoder_.backbone->parameters();
  for (nn::Parameter* p : projector_->parameters()) params.push_back(p);
  for (nn::Parameter* p : predictor_->parameters()) params.push_back(p);
  optim::Sgd sgd(params, {.lr = config_.lr,
                          .momentum = config_.momentum,
                          .weight_decay = config_.weight_decay});

  data::Batcher batcher(dataset.size(), config_.batch_size, rng_,
                        /*drop_last=*/true);
  const auto iters_per_epoch = batcher.batches_per_epoch();
  const auto total_steps = iters_per_epoch * config_.epochs;
  const auto warmup = std::min<std::int64_t>(
      config_.warmup_epochs * iters_per_epoch, total_steps - 1);
  optim::CosineSchedule schedule(config_.lr, total_steps, warmup);
  const data::AugmentPipeline augment(config_.augment);
  const bool quantized = config_.variant == CqVariant::kCqC;

  std::int64_t step = 0;
  for (std::int64_t epoch = 0; epoch < config_.epochs && !stats.diverged;
       ++epoch) {
    double epoch_loss = 0.0;
    for (std::int64_t it = 0; it < iters_per_epoch; ++it, ++step) {
      sgd.set_lr(schedule.lr_at(step));
      const auto idx = batcher.next();
      const Tensor v1 = augment.batch(dataset, idx, rng_);
      const Tensor v2 = augment.batch(dataset, idx, rng_);

      std::vector<int> precisions = {quant::kFullPrecisionBits};
      if (quantized) {
        auto [q1, q2] = (config_.precision_sampling ==
                         PretrainConfig::PrecisionSampling::kCyclic)
                            ? cyclic_precision_pair(config_.precisions, step,
                                                    total_steps,
                                                    config_.precision_cycles)
                            : config_.precisions.sample_pair(
                                  rng_, config_.distinct_pair);
        precisions = {q1, q2};
      }

      // Branch order: (q_i, v1), (q_i, v2) for each precision.
      struct Branch {
        Tensor z;       // projector output (stop-grad target role)
        Tensor p;       // predictor output (gradient-carrying role)
        Tensor grad_p;  // accumulated dL/dp
      };
      std::vector<Branch> branches;
      for (int bits : precisions) {
        encoder_.policy->set_bits(bits);
        for (const Tensor* view : {&v1, &v2}) {
          Branch branch;
          branch.z = projector_->forward(encoder_.forward(*view));
          branch.p = predictor_->forward(branch.z);
          branch.grad_p = Tensor::zeros(branch.p.shape());
          branches.push_back(std::move(branch));
        }
      }
      encoder_.policy->set_full_precision();

      float loss = 0.0f;
      // Symmetrized stop-gradient loss per precision: branch pairs
      // (2i, 2i+1) hold (v1, v2) at precision i.
      for (std::size_t i = 0; i + 1 < branches.size(); i += 2) {
        PairLoss t1 = byol_mse(branches[i].p, branches[i + 1].z);
        PairLoss t2 = byol_mse(branches[i + 1].p, branches[i].z);
        loss += 0.5f * (t1.value + t2.value);
        branches[i].grad_p.add_(t1.grad_a, 0.5f);
        branches[i + 1].grad_p.add_(t2.grad_a, 0.5f);
      }
      if (quantized && branches.size() == 4) {
        // Cross-precision consistency on the predictions of each view.
        const std::pair<std::size_t, std::size_t> cross[] = {{0, 2}, {1, 3}};
        for (const auto& [a, b] : cross) {
          PairLoss term = symmetric_mse(branches[a].p, branches[b].p);
          loss += term.value;
          branches[a].grad_p.add_(term.grad_a);
          branches[b].grad_p.add_(term.grad_b);
        }
      }

      for (auto it_b = branches.rbegin(); it_b != branches.rend(); ++it_b) {
        Tensor g = predictor_->backward(it_b->grad_p);
        g = projector_->backward(g);
        encoder_.backbone->backward(g);
      }
      sgd.step();
      stats.max_grad_norm =
          std::max(stats.max_grad_norm, sgd.last_grad_norm());
      epoch_loss += loss;
      ++stats.iterations;
      if (!std::isfinite(loss) ||
          sgd.last_grad_norm() > kDivergenceGradNorm) {
        stats.diverged = true;
        CQ_LOG_WARN << "simsiam/" << variant_name(config_.variant)
                    << " diverged at step " << step;
        break;
      }
    }
    stats.epoch_loss.push_back(
        static_cast<float>(epoch_loss / static_cast<double>(iters_per_epoch)));
  }
  stats.final_loss =
      stats.epoch_loss.empty() ? 0.0f : stats.epoch_loss.back();
  stats.seconds = timer.seconds();
  encoder_.policy->set_full_precision();
  encoder_.backbone->clear_cache();
  projector_->clear_cache();
  predictor_->clear_cache();
  return stats;
}

}  // namespace cq::core
