#include "core/prof.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <deque>
#include <mutex>
#include <sstream>
#include <unordered_map>

namespace cq::prof {

struct Counter::Totals {
  std::atomic<std::uint64_t> calls{0};
  std::atomic<std::uint64_t> ns{0};
  std::atomic<std::uint64_t> bytes{0};
  std::atomic<std::uint64_t> allocs{0};
};

// Meyers-singleton registry: safe to use from static initializers in other
// translation units (storage.cpp registers the alloc source that way).
struct Registry {
  std::mutex mu;
  std::deque<Counter> counters;  // deque: stable addresses
  std::deque<Counter::Totals> totals;
  std::deque<std::string> names;  // interned runtime names (stable c_str)
  std::unordered_map<std::string, Counter*> by_name;

  static Registry& instance() {
    static Registry r;
    return r;
  }
};

namespace {
std::atomic<AllocSourceFn> g_alloc_source{nullptr};
}  // namespace

Counter& Counter::get(const char* name) {
  Registry& r = Registry::instance();
  std::lock_guard<std::mutex> lock(r.mu);
  auto it = r.by_name.find(name);
  if (it != r.by_name.end()) return *it->second;
  r.counters.push_back(Counter(name));
  r.totals.emplace_back();
  Counter& c = r.counters.back();
  c.totals_ = &r.totals.back();
  r.by_name.emplace(name, &c);
  return c;
}

Counter& Counter::intern(const std::string& name) {
  Registry& r = Registry::instance();
  std::lock_guard<std::mutex> lock(r.mu);
  auto it = r.by_name.find(name);
  if (it != r.by_name.end()) return *it->second;
  r.names.push_back(name);  // deque: the c_str below stays valid forever
  r.counters.push_back(Counter(r.names.back().c_str()));
  r.totals.emplace_back();
  Counter& c = r.counters.back();
  c.totals_ = &r.totals.back();
  r.by_name.emplace(r.names.back(), &c);
  return c;
}

void Counter::record(std::uint64_t ns, std::uint64_t bytes,
                     std::uint64_t allocs) {
  totals_->calls.fetch_add(1, std::memory_order_relaxed);
  totals_->ns.fetch_add(ns, std::memory_order_relaxed);
  if (bytes != 0) totals_->bytes.fetch_add(bytes, std::memory_order_relaxed);
  if (allocs != 0)
    totals_->allocs.fetch_add(allocs, std::memory_order_relaxed);
}

void Counter::count(std::uint64_t n) {
  totals_->calls.fetch_add(n, std::memory_order_relaxed);
}

std::uint64_t Counter::calls() const {
  return totals_->calls.load(std::memory_order_relaxed);
}
std::uint64_t Counter::total_ns() const {
  return totals_->ns.load(std::memory_order_relaxed);
}
std::uint64_t Counter::bytes() const {
  return totals_->bytes.load(std::memory_order_relaxed);
}
std::uint64_t Counter::heap_allocs() const {
  return totals_->allocs.load(std::memory_order_relaxed);
}

void set_alloc_source(AllocSourceFn fn) {
  g_alloc_source.store(fn, std::memory_order_release);
}

std::uint64_t thread_allocs() {
  AllocSourceFn fn = g_alloc_source.load(std::memory_order_acquire);
  return fn != nullptr ? fn() : 0;
}

void reset() {
  Registry& r = Registry::instance();
  std::lock_guard<std::mutex> lock(r.mu);
  for (Counter::Totals& t : r.totals) {
    t.calls.store(0, std::memory_order_relaxed);
    t.ns.store(0, std::memory_order_relaxed);
    t.bytes.store(0, std::memory_order_relaxed);
    t.allocs.store(0, std::memory_order_relaxed);
  }
}

std::vector<CounterSnapshot> snapshot() {
  Registry& r = Registry::instance();
  std::vector<CounterSnapshot> out;
  {
    std::lock_guard<std::mutex> lock(r.mu);
    out.reserve(r.counters.size());
    for (const Counter& c : r.counters) {
      if (c.calls() == 0) continue;
      CounterSnapshot s;
      s.name = c.name();
      s.calls = c.calls();
      s.total_ns = c.total_ns();
      s.bytes = c.bytes();
      s.heap_allocs = c.heap_allocs();
      out.push_back(std::move(s));
    }
  }
  std::sort(out.begin(), out.end(),
            [](const CounterSnapshot& a, const CounterSnapshot& b) {
              return a.total_ns > b.total_ns;
            });
  return out;
}

std::string json() {
  const auto ops = snapshot();
  std::ostringstream os;
  os << "{\"ops\": [";
  for (std::size_t i = 0; i < ops.size(); ++i) {
    const CounterSnapshot& s = ops[i];
    const double total_ms = static_cast<double>(s.total_ns) / 1e6;
    const double mean_us =
        s.calls > 0 ? static_cast<double>(s.total_ns) /
                          (1e3 * static_cast<double>(s.calls))
                    : 0.0;
    if (i) os << ", ";
    os << "{\"op\": \"" << s.name << "\", \"calls\": " << s.calls
       << ", \"total_ms\": " << total_ms << ", \"mean_us\": " << mean_us
       << ", \"bytes\": " << s.bytes << ", \"heap_allocs\": " << s.heap_allocs
       << "}";
  }
  os << "]}";
  return os.str();
}

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace cq::prof
