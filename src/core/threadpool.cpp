#include "core/threadpool.hpp"

#include <cstdlib>
#include <string>

namespace cq::core {
namespace {

// Set for the lifetime of each pool worker thread; parallel_for consults it
// to run nested dispatches inline (one level of parallelism, no deadlocks).
thread_local bool t_on_worker = false;

// Per-worker deque capacity. Pushers never block on a full deque — run_job
// executes overflow chunks inline on the caller — so this only needs to
// cover the common case: kChunksPerThread chunks per job times a handful of
// concurrent jobs.
constexpr std::size_t kDequeSlots = 64;

}  // namespace

std::size_t configured_threads() {
  const char* env = std::getenv("CQ_THREADS");
  if (env != nullptr && *env != '\0') {
    char* end = nullptr;
    const long v = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && v >= 1) {
      return static_cast<std::size_t>(
          v > static_cast<long>(ThreadPool::kMaxThreads)
              ? ThreadPool::kMaxThreads
              : v);
    }
  }
  const unsigned hw = std::thread::hardware_concurrency();
  if (hw < 1) return 1;
  return hw > ThreadPool::kMaxThreads ? ThreadPool::kMaxThreads : hw;
}

ThreadPool& ThreadPool::instance() {
  static ThreadPool pool;
  return pool;
}

ThreadPool::ThreadPool() : size_(configured_threads()) { start_workers(); }

ThreadPool::~ThreadPool() { stop_workers(); }

bool ThreadPool::on_worker_thread() { return t_on_worker; }

void ThreadPool::set_size(std::size_t n) {
  if (n < 1) n = 1;
  if (n > kMaxThreads) n = kMaxThreads;
  if (n == size_) return;
  stop_workers();
  size_ = n;
  start_workers();
}

void ThreadPool::start_workers() {
  if (size_ <= 1) return;
  stop_ = false;
  pending_.store(0, std::memory_order_relaxed);
  deques_.clear();
  deques_.reserve(size_ - 1);
  for (std::size_t i = 0; i + 1 < size_; ++i) {
    deques_.push_back(std::make_unique<Deque>());
    deques_.back()->slots.resize(kDequeSlots);
  }
  threads_.reserve(size_ - 1);
  for (std::size_t i = 0; i + 1 < size_; ++i) {
    threads_.emplace_back([this, i] { worker_main(i); });
  }
}

void ThreadPool::stop_workers() {
  if (threads_.empty()) return;
  {
    std::lock_guard<std::mutex> lk(wake_mu_);
    stop_ = true;
  }
  wake_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
  threads_.clear();
  deques_.clear();
}

bool ThreadPool::try_pop(std::size_t index, Task& out) {
  Deque& dq = *deques_[index];
  std::lock_guard<std::mutex> lk(dq.mu);
  if (dq.bottom == dq.top) return false;
  --dq.bottom;
  out = dq.slots[dq.bottom % kDequeSlots];
  pending_.fetch_sub(1, std::memory_order_relaxed);
  return true;
}

bool ThreadPool::try_steal(std::size_t avoid, Task& out) {
  const std::size_t n = deques_.size();
  for (std::size_t k = 1; k <= n; ++k) {
    const std::size_t i = (avoid + k) % n;
    if (i == avoid) continue;
    Deque& dq = *deques_[i];
    std::lock_guard<std::mutex> lk(dq.mu);
    if (dq.bottom == dq.top) continue;
    out = dq.slots[dq.top % kDequeSlots];
    ++dq.top;
    pending_.fetch_sub(1, std::memory_order_relaxed);
    return true;
  }
  return false;
}

bool ThreadPool::try_steal_job(const Job* job, Task& out) {
  for (std::size_t i = 0; i < deques_.size(); ++i) {
    Deque& dq = *deques_[i];
    std::lock_guard<std::mutex> lk(dq.mu);
    // Scan from the bottom so the caller drains its (LIFO-recent) chunks
    // before workers would reach them.
    for (std::size_t p = dq.bottom; p != dq.top; --p) {
      Task& slot = dq.slots[(p - 1) % kDequeSlots];
      if (slot.job != job) continue;
      out = slot;
      // Close the gap by shifting the stack above the hole down one slot.
      for (std::size_t q = p; q != dq.bottom; ++q) {
        dq.slots[(q - 1) % kDequeSlots] = dq.slots[q % kDequeSlots];
      }
      --dq.bottom;
      pending_.fetch_sub(1, std::memory_order_relaxed);
      return true;
    }
  }
  return false;
}

void ThreadPool::finish(Task& t) {
  Job* job = t.job;
  // Decrement under done_mu so the caller cannot observe remaining == 0 and
  // destroy the stack-allocated Job while this thread still touches it.
  std::lock_guard<std::mutex> lk(job->done_mu);
  if (job->remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    job->done_cv.notify_all();
  }
}

void ThreadPool::worker_main(std::size_t index) {
  t_on_worker = true;
  for (;;) {
    Task t;
    if (try_pop(index, t) || try_steal(index, t)) {
      t.job->invoke(t.job->ctx, t.begin, t.end);
      finish(t);
      continue;
    }
    std::unique_lock<std::mutex> lk(wake_mu_);
    wake_cv_.wait(lk, [this] {
      return stop_ || pending_.load(std::memory_order_acquire) > 0;
    });
    if (stop_) return;
  }
}

void ThreadPool::run_job(std::int64_t total, std::int64_t grain,
                         InvokeFn invoke, void* ctx) {
  const std::int64_t max_chunks =
      static_cast<std::int64_t>(size_) * kChunksPerThread;
  std::int64_t chunks = (total + grain - 1) / grain;
  if (chunks > max_chunks) chunks = max_chunks;

  Job job;
  job.invoke = invoke;
  job.ctx = ctx;
  job.remaining.store(chunks, std::memory_order_relaxed);

  // Deal chunks round-robin across the worker deques. The partition is a
  // pure function of (total, chunks): chunk ci covers base indices plus one
  // extra for the first `total % chunks` chunks, so the ranges — and thus
  // the results — never depend on scheduling.
  const std::int64_t base = total / chunks;
  const std::int64_t rem = total % chunks;
  std::int64_t begin = 0;
  std::int64_t queued = 0;
  const std::size_t n = deques_.size();
  for (std::int64_t ci = 0; ci < chunks; ++ci) {
    const std::int64_t len = base + (ci < rem ? 1 : 0);
    Task t{&job, begin, begin + len};
    begin += len;
    bool pushed = false;
    for (std::size_t k = 0; k < n && !pushed; ++k) {
      Deque& dq = *deques_[(static_cast<std::size_t>(ci) + k) % n];
      std::lock_guard<std::mutex> lk(dq.mu);
      if (dq.bottom - dq.top < kDequeSlots) {
        dq.slots[dq.bottom % kDequeSlots] = t;
        ++dq.bottom;
        pushed = true;
      }
    }
    if (pushed) {
      ++queued;
    } else {
      // Every deque full: run the chunk inline rather than blocking.
      invoke(ctx, t.begin, t.end);
      finish(t);
    }
  }

  if (queued > 0) {
    pending_.fetch_add(queued, std::memory_order_release);
    // Empty critical section pairs with the worker's predicate evaluation
    // under wake_mu_ (see header): no missed wakeups.
    { std::lock_guard<std::mutex> lk(wake_mu_); }
    wake_cv_.notify_all();
  }

  // The caller participates: execute chunks of THIS job until none are
  // queued, then wait for in-flight chunks on worker threads.
  Task t;
  while (try_steal_job(&job, t)) {
    invoke(ctx, t.begin, t.end);
    finish(t);
  }
  std::unique_lock<std::mutex> lk(job.done_mu);
  job.done_cv.wait(lk, [&job] {
    return job.remaining.load(std::memory_order_acquire) == 0;
  });
}

}  // namespace cq::core
