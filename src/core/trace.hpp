// Near-zero-overhead scoped-span tracer with thread-local ring buffers.
//
// Every instrumented scope (CQ_TRACE_SCOPE and friends) does two things:
//  * always feeds the aggregate profiler (core/prof.hpp) — call counts,
//    wall-ns, bytes, alloc deltas; and
//  * when tracing is compiled in (CMake option CQ_TRACE, on by default;
//    -DCQ_TRACE=OFF removes the span machinery entirely) AND enabled at
//    runtime (trace::enable), records a span into the calling thread's
//    preallocated ring buffer. Recording a span performs no heap
//    allocation in steady state: one mutex, two stores into a fixed slot.
//
// Rings are registered globally on each thread's first span; the registry
// holds shared ownership so spans survive thread exit (the serving engine's
// workers are joined before export, but their buffers outlive them either
// way). When a ring fills, the oldest spans are overwritten (wraparound) and
// dropped() counts the loss — tracing never blocks or grows the hot path.
//
// Export: trace_export::chrome(path) writes chrome://tracing "traceEvents"
// JSON (open via chrome://tracing or https://ui.perfetto.dev). Events are
// sorted by start time (parents before children), with the optional numeric
// span tag — e.g. the serve batch width — under args. snapshot() returns the
// same merged view for tests. Export while other threads are actively
// recording is safe for the registry but may drop in-flight spans; call it
// at quiescent points (after Engine::stop(), after train()).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/prof.hpp"

namespace cq::trace {

/// One completed span. `arg` is an optional numeric tag (kNoArg when
/// absent) — the serve pipeline tags spans with the micro-batch width.
struct Span {
  const char* name = nullptr;  // static string literal
  std::uint64_t start_ns = 0;
  std::uint64_t end_ns = 0;
  std::uint32_t depth = 0;  // nesting depth on the recording thread
  std::uint32_t tid = 0;    // registration-order thread id (1-based)
  std::int64_t arg = kNoArg;

  static constexpr std::int64_t kNoArg = -1;
};

/// Runtime gate. Off by default: compiled-in scopes then cost one relaxed
/// atomic load beyond their (always-on) profiler accounting.
void enable(bool on);
bool enabled();

/// Drop every recorded span on every registered thread.
void reset();

/// Set the per-thread ring capacity in spans (default 1 << 15). Resizes
/// already-registered rings (dropping their contents) and applies to
/// threads that register later. Call at quiescent points only.
void set_ring_capacity(std::size_t spans);

/// Total spans currently held across all rings.
std::size_t span_count();
/// Spans lost to ring wraparound since the last reset().
std::uint64_t dropped();

/// Merged view of every thread's ring, sorted by (start_ns, -end_ns) so a
/// parent sorts before its children.
std::vector<Span> snapshot();

namespace detail {
void record(const char* name, std::uint64_t start_ns, std::uint64_t end_ns,
            std::int64_t arg);
/// Current nesting depth bookkeeping for the calling thread.
std::uint32_t enter();
void leave();
}  // namespace detail

/// RAII span: profiler accounting always; ring recording when compiled in
/// and runtime-enabled. Use the macros below, which cache the profiler
/// counter per call site.
class Scope {
 public:
  Scope(prof::Counter& counter, const char* name,
        std::int64_t arg = Span::kNoArg, std::uint64_t bytes = 0)
      : timer_(counter, bytes), name_(name), arg_(arg) {
#if defined(CQ_TRACE_COMPILED)
    live_ = enabled();
    if (live_) detail::enter();
#endif
  }
  ~Scope() {
#if defined(CQ_TRACE_COMPILED)
    if (live_) {
      const std::uint64_t end = prof::now_ns();
      detail::leave();
      detail::record(name_, timer_.start_ns(), end, arg_);
    }
#endif
  }
  Scope(const Scope&) = delete;
  Scope& operator=(const Scope&) = delete;

  void add_bytes(std::uint64_t n) { timer_.add_bytes(n); }

 private:
  prof::ScopeTimer timer_;
  const char* name_;
  std::int64_t arg_;
#if defined(CQ_TRACE_COMPILED)
  bool live_ = false;
#endif
};

/// Hot-path spans: the per-cache-block GEMM internals fire hundreds of
/// thousands of times per training run, so even the always-on profiler
/// accounting (two clock reads + relaxed adds per scope) costs whole
/// percents of iteration time there. A HotScope therefore skips ALL
/// accounting — profiler included — unless tracing is compiled in AND
/// runtime-enabled; when disabled it costs one relaxed atomic load (and
/// nothing at all in a CQ_TRACE=OFF build). Its counters consequently
/// appear in the aggregate table only for traced runs.
class HotScope {
 public:
  HotScope(prof::Counter& counter, const char* name,
           std::int64_t arg = Span::kNoArg, std::uint64_t bytes = 0) {
#if defined(CQ_TRACE_COMPILED)
    if (enabled()) {
      counter_ = &counter;
      name_ = name;
      arg_ = arg;
      bytes_ = bytes;
      start_allocs_ = prof::thread_allocs();
      detail::enter();
      start_ns_ = prof::now_ns();
    }
#else
    (void)counter;
    (void)name;
    (void)arg;
    (void)bytes;
#endif
  }
  ~HotScope() {
#if defined(CQ_TRACE_COMPILED)
    if (counter_ != nullptr) {
      const std::uint64_t end = prof::now_ns();
      counter_->record(end - start_ns_, bytes_,
                       prof::thread_allocs() - start_allocs_);
      detail::leave();
      detail::record(name_, start_ns_, end, arg_);
    }
#endif
  }
  HotScope(const HotScope&) = delete;
  HotScope& operator=(const HotScope&) = delete;

 private:
#if defined(CQ_TRACE_COMPILED)
  prof::Counter* counter_ = nullptr;
  const char* name_ = nullptr;
  std::int64_t arg_ = Span::kNoArg;
  std::uint64_t bytes_ = 0;
  std::uint64_t start_ns_ = 0;
  std::uint64_t start_allocs_ = 0;
#endif
};

}  // namespace cq::trace

namespace cq::trace_export {

/// Write the merged spans as chrome://tracing JSON. Returns false when the
/// file cannot be opened. Timestamps are microseconds relative to the
/// earliest span.
bool chrome(const std::string& path);
/// Same document as a string (tests parse it).
std::string chrome_json();

}  // namespace cq::trace_export

// ---- instrumentation macros -------------------------------------------------
//
// CQ_TRACE_SCOPE("simclr.loss")          span + profiler counter
// CQ_TRACE_SCOPE_N("serve.forward", n)   ... tagged with a numeric arg
// CQ_TRACE_SCOPE_BYTES("gemm", nbytes)   ... accounting bytes moved
// CQ_TRACE_SCOPE_HOT("gemm.kernel")      HotScope: all accounting skipped
// CQ_TRACE_SCOPE_HOT_BYTES(name, nbytes)   unless tracing is enabled
// CQ_PROF_COUNT("quant.weight.memo_hit") instant event: call count only
//
// Each expands to a function-local static counter lookup (once per site)
// plus one RAII object; names must be string literals.

#define CQ_TRACE_CAT2(a, b) a##b
#define CQ_TRACE_CAT(a, b) CQ_TRACE_CAT2(a, b)

#define CQ_TRACE_SCOPE(name)                                    \
  static ::cq::prof::Counter& CQ_TRACE_CAT(cq_prof_counter_,    \
                                           __LINE__) =          \
      ::cq::prof::Counter::get(name);                           \
  ::cq::trace::Scope CQ_TRACE_CAT(cq_trace_scope_, __LINE__)(   \
      CQ_TRACE_CAT(cq_prof_counter_, __LINE__), name)

#define CQ_TRACE_SCOPE_N(name, arg_value)                       \
  static ::cq::prof::Counter& CQ_TRACE_CAT(cq_prof_counter_,    \
                                           __LINE__) =          \
      ::cq::prof::Counter::get(name);                           \
  ::cq::trace::Scope CQ_TRACE_CAT(cq_trace_scope_, __LINE__)(   \
      CQ_TRACE_CAT(cq_prof_counter_, __LINE__), name,           \
      static_cast<std::int64_t>(arg_value))

#define CQ_TRACE_SCOPE_BYTES(name, byte_count)                  \
  static ::cq::prof::Counter& CQ_TRACE_CAT(cq_prof_counter_,    \
                                           __LINE__) =          \
      ::cq::prof::Counter::get(name);                           \
  ::cq::trace::Scope CQ_TRACE_CAT(cq_trace_scope_, __LINE__)(   \
      CQ_TRACE_CAT(cq_prof_counter_, __LINE__), name,           \
      ::cq::trace::Span::kNoArg, static_cast<std::uint64_t>(byte_count))

#define CQ_TRACE_SCOPE_HOT(name)                                \
  static ::cq::prof::Counter& CQ_TRACE_CAT(cq_prof_counter_,    \
                                           __LINE__) =          \
      ::cq::prof::Counter::get(name);                           \
  ::cq::trace::HotScope CQ_TRACE_CAT(cq_trace_scope_, __LINE__)( \
      CQ_TRACE_CAT(cq_prof_counter_, __LINE__), name)

#define CQ_TRACE_SCOPE_HOT_BYTES(name, byte_count)              \
  static ::cq::prof::Counter& CQ_TRACE_CAT(cq_prof_counter_,    \
                                           __LINE__) =          \
      ::cq::prof::Counter::get(name);                           \
  ::cq::trace::HotScope CQ_TRACE_CAT(cq_trace_scope_, __LINE__)( \
      CQ_TRACE_CAT(cq_prof_counter_, __LINE__), name,           \
      ::cq::trace::Span::kNoArg, static_cast<std::uint64_t>(byte_count))

#define CQ_PROF_COUNT(name)                                     \
  do {                                                          \
    static ::cq::prof::Counter& cq_prof_event_counter =         \
        ::cq::prof::Counter::get(name);                         \
    cq_prof_event_counter.count();                              \
  } while (0)
