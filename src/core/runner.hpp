// Experiment orchestration: dataset bundles, environment scaling knobs, and
// cached pretraining so bench binaries can share encoders.
#pragma once

#include <string>

#include "core/byol.hpp"
#include "core/cq.hpp"
#include "core/moco.hpp"
#include "core/simclr.hpp"
#include "data/synth.hpp"
#include "models/encoder.hpp"

namespace cq::core {

/// A dataset stand-in plus its evaluation splits.
struct DatasetBundle {
  std::string name;
  data::SynthConfig config;
  data::Dataset ssl_train;  // unlabeled pool used for pretraining
  data::Dataset labeled;    // full labeled pool (10%/1% splits come from it)
  data::Dataset test;
};

/// Integer / float environment overrides (unset or unparsable -> fallback).
std::int64_t env_int(const char* name, std::int64_t fallback);
double env_double(const char* name, double fallback);

/// Global experiment scale: CQ_SCALE (default 1.0) multiplies dataset sizes
/// and epoch counts of the bench harnesses.
double experiment_scale();

/// Builds "synth-cifar" or "synth-imagenet" with deterministic contents.
/// Sizes honor CQ_SCALE.
DatasetBundle make_bundle(const std::string& name);

/// Checkpoint cache directory (CQ_CACHE_DIR, default ".cq_cache"); created
/// on demand.
std::string cache_dir();

struct PretrainResult {
  PretrainStats stats;
  bool from_cache = false;
  std::string checkpoint_path;
};

/// Pretrain `encoder` with the given config on `bundle.ssl_train`, or load
/// a previously trained checkpoint with the same key. `family` is "simclr",
/// "byol", or "moco". Pass cache=false to force retraining (stats are only
/// meaningful for a fresh run; cached loads return empty stats).
PretrainResult pretrain_cached(models::Encoder& encoder,
                               const PretrainConfig& config,
                               const DatasetBundle& bundle,
                               const std::string& family, bool cache = true);

}  // namespace cq::core
