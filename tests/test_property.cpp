// Parameterized property sweeps (TEST_P) over the quantizer, convolution
// geometry, the NT-Xent loss, and precision sets.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "core/losses.hpp"
#include "nn/conv2d.hpp"
#include "quant/policy.hpp"
#include "quant/quantizer.hpp"
#include "tensor/ops.hpp"
#include "testutil.hpp"

namespace cq {
namespace {

// ---- Quantizer properties over (bits, rounding, range) -------------------

struct QuantCase {
  int bits;
  quant::RoundingMode rounding;
  quant::RangeMode range;
};

class QuantizerProperty : public ::testing::TestWithParam<QuantCase> {};

TEST_P(QuantizerProperty, ValuesStayWithinObservedRangePlusStep) {
  const auto param = GetParam();
  quant::QuantizerConfig cfg;
  cfg.rounding = param.rounding;
  cfg.range = param.range;
  quant::LinearQuantizer q(cfg);
  Rng rng(static_cast<std::uint64_t>(param.bits) * 31 + 7);
  Tensor a = Tensor::randn(Shape{300}, rng);
  Tensor b = q.quantize(a, param.bits);
  const float lo = ops::min(a), hi = ops::max(a);
  const float s = q.step_size(a, param.bits);
  for (std::int64_t i = 0; i < b.numel(); ++i) {
    EXPECT_GE(b[i], lo - s - 1e-5f);
    EXPECT_LE(b[i], hi + s + 1e-5f);
  }
}

TEST_P(QuantizerProperty, GridSpacingIsStepSize) {
  const auto param = GetParam();
  quant::QuantizerConfig cfg;
  cfg.rounding = param.rounding;
  cfg.range = param.range;
  quant::LinearQuantizer q(cfg);
  Rng rng(static_cast<std::uint64_t>(param.bits) * 17 + 3);
  Tensor a = Tensor::uniform(Shape{500}, rng, -2.0f, 2.0f);
  const float s = q.step_size(a, param.bits);
  ASSERT_GT(s, 0.0f);
  Tensor b = q.quantize(a, param.bits);
  std::set<long long> grid;
  for (std::int64_t i = 0; i < b.numel(); ++i) {
    const double k = b[i] / s;
    EXPECT_NEAR(k, std::nearbyint(k), 1e-2);
    grid.insert(static_cast<long long>(std::nearbyint(k)));
  }
  // Distinct levels bounded by the bit budget (plus boundary slack).
  EXPECT_LE(grid.size(),
            static_cast<std::size_t>((1LL << param.bits) + 1));
}

TEST_P(QuantizerProperty, QuantizationErrorShrinksWithMoreBits) {
  const auto param = GetParam();
  if (param.bits >= 12) GTEST_SKIP() << "comparison needs headroom";
  quant::QuantizerConfig cfg;
  cfg.rounding = param.rounding;
  cfg.range = param.range;
  quant::LinearQuantizer q(cfg);
  Rng rng(static_cast<std::uint64_t>(param.bits) * 13 + 1);
  Tensor a = Tensor::randn(Shape{400}, rng);
  double err_lo = 0.0, err_hi = 0.0;
  Tensor b_lo = q.quantize(a, param.bits);
  Tensor b_hi = q.quantize(a, param.bits + 4);
  for (std::int64_t i = 0; i < a.numel(); ++i) {
    err_lo += std::abs(a[i] - b_lo[i]);
    err_hi += std::abs(a[i] - b_hi[i]);
  }
  EXPECT_LT(err_hi, err_lo + 1e-6);
}

std::vector<QuantCase> quant_cases() {
  std::vector<QuantCase> cases;
  for (int bits : {2, 3, 4, 6, 8, 10, 12, 16})
    for (auto rounding :
         {quant::RoundingMode::kNearest, quant::RoundingMode::kFloor})
      for (auto range :
           {quant::RangeMode::kMinMax, quant::RangeMode::kPercentile})
        cases.push_back({bits, rounding, range});
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    BitsSweep, QuantizerProperty, ::testing::ValuesIn(quant_cases()),
    [](const ::testing::TestParamInfo<QuantCase>& info) {
      const auto& p = info.param;
      return "b" + std::to_string(p.bits) +
             (p.rounding == quant::RoundingMode::kNearest ? "_near"
                                                          : "_floor") +
             (p.range == quant::RangeMode::kMinMax ? "_minmax" : "_pct");
    });

// ---- Conv2d gradcheck over geometry ---------------------------------------

struct ConvCase {
  std::int64_t cin, cout, kernel, stride, pad, groups;
};

class ConvProperty : public ::testing::TestWithParam<ConvCase> {};

TEST_P(ConvProperty, GradientsMatchFiniteDifferences) {
  const auto p = GetParam();
  Rng rng(static_cast<std::uint64_t>(p.cin * 100 + p.kernel * 10 + p.stride));
  nn::Conv2d conv({.in_channels = p.cin,
                   .out_channels = p.cout,
                   .kernel = p.kernel,
                   .stride = p.stride,
                   .pad = p.pad,
                   .groups = p.groups},
                  rng);
  Tensor x = Tensor::randn(Shape{2, p.cin, 6, 6}, rng);
  test::check_module_gradients(conv, x, rng);
}

INSTANTIATE_TEST_SUITE_P(
    GeometrySweep, ConvProperty,
    ::testing::Values(ConvCase{1, 1, 3, 1, 1, 1}, ConvCase{2, 4, 3, 1, 1, 1},
                      ConvCase{2, 2, 3, 2, 1, 1}, ConvCase{3, 3, 1, 1, 0, 1},
                      ConvCase{4, 4, 3, 1, 1, 4}, ConvCase{4, 8, 3, 2, 1, 2},
                      ConvCase{2, 2, 5, 1, 2, 1}, ConvCase{1, 3, 3, 3, 0, 1}),
    [](const ::testing::TestParamInfo<ConvCase>& info) {
      const auto& p = info.param;
      return "c" + std::to_string(p.cin) + "o" + std::to_string(p.cout) +
             "k" + std::to_string(p.kernel) + "s" + std::to_string(p.stride) +
             "p" + std::to_string(p.pad) + "g" + std::to_string(p.groups);
    });

// ---- NT-Xent gradient over temperature / batch size -----------------------

struct NtXentCase {
  float tau;
  std::int64_t n;
  std::int64_t d;
};

class NtXentProperty : public ::testing::TestWithParam<NtXentCase> {};

TEST_P(NtXentProperty, GradientMatchesFiniteDifferences) {
  const auto p = GetParam();
  Rng rng(static_cast<std::uint64_t>(p.n * 10 + p.d));
  Tensor za = Tensor::randn(Shape{p.n, p.d}, rng);
  Tensor zb = Tensor::randn(Shape{p.n, p.d}, rng);
  const auto loss = core::nt_xent(za, zb, p.tau);
  EXPECT_TRUE(std::isfinite(loss.value));
  test::check_loss_gradient(
      [&](const Tensor& z) {
        return static_cast<double>(core::nt_xent(z, zb, p.tau).value);
      },
      za, loss.grad_a, 1e-3, 4e-2, 2e-4);
}

TEST_P(NtXentProperty, AlignedPairsBeatIndependentPairsOnAverage) {
  // Aligned positives should score lower than independent random positives
  // in expectation (averaged over several draws — a single draw can invert
  // with tiny batches).
  const auto p = GetParam();
  double aligned_sum = 0.0, independent_sum = 0.0;
  for (int trial = 0; trial < 8; ++trial) {
    Rng rng(static_cast<std::uint64_t>(p.n * 7 + p.d + 1 + trial * 101));
    Tensor za = Tensor::randn(Shape{p.n, p.d}, rng);
    Tensor zb = Tensor::randn(Shape{p.n, p.d}, rng);
    aligned_sum += core::nt_xent(za, za, p.tau).value;
    independent_sum += core::nt_xent(za, zb, p.tau).value;
  }
  EXPECT_LT(aligned_sum, independent_sum);
}

INSTANTIATE_TEST_SUITE_P(
    TauBatchSweep, NtXentProperty,
    ::testing::Values(NtXentCase{0.1f, 3, 4}, NtXentCase{0.5f, 3, 4},
                      NtXentCase{1.0f, 3, 4}, NtXentCase{0.5f, 2, 6},
                      NtXentCase{0.5f, 6, 3}, NtXentCase{2.0f, 4, 4}),
    [](const ::testing::TestParamInfo<NtXentCase>& info) {
      const auto& p = info.param;
      return "tau" + std::to_string(static_cast<int>(p.tau * 10)) + "_n" +
             std::to_string(p.n) + "_d" + std::to_string(p.d);
    });

// ---- Precision-set sampling over set definitions ---------------------------

class PrecisionSetProperty
    : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(PrecisionSetProperty, PairsAreDistinctAndInRange) {
  const auto [lo, hi] = GetParam();
  const auto ps = quant::PrecisionSet::range(lo, hi);
  Rng rng(static_cast<std::uint64_t>(lo * 100 + hi));
  for (int i = 0; i < 100; ++i) {
    const auto [q1, q2] = ps.sample_pair(rng);
    EXPECT_GE(q1, lo);
    EXPECT_LE(q1, hi);
    EXPECT_GE(q2, lo);
    EXPECT_LE(q2, hi);
    if (lo != hi) EXPECT_NE(q1, q2);
  }
}

TEST_P(PrecisionSetProperty, EveryMemberEventuallySampled) {
  const auto [lo, hi] = GetParam();
  const auto ps = quant::PrecisionSet::range(lo, hi);
  Rng rng(static_cast<std::uint64_t>(lo * 7 + hi * 3));
  std::set<int> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(ps.sample(rng));
  EXPECT_EQ(seen.size(), ps.size());
}

INSTANTIATE_TEST_SUITE_P(PaperSets, PrecisionSetProperty,
                         ::testing::Values(std::pair{4, 16}, std::pair{6, 16},
                                           std::pair{8, 16}, std::pair{4, 4},
                                           std::pair{2, 3}),
                         [](const auto& info) {
                           return "p" + std::to_string(info.param.first) +
                                  "_" + std::to_string(info.param.second);
                         });

}  // namespace
}  // namespace cq
