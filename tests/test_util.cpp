#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <set>

#include "util/check.hpp"
#include "util/csv.hpp"
#include "util/rng.hpp"
#include "util/serialize.hpp"
#include "util/table.hpp"

namespace cq {
namespace {

TEST(Check, ThrowsWithMessage) {
  EXPECT_THROW(CQ_CHECK(1 == 2), CheckError);
  try {
    CQ_CHECK_MSG(false, "context " << 42);
    FAIL() << "should have thrown";
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("context 42"), std::string::npos);
  }
}

TEST(Check, PassesSilently) {
  EXPECT_NO_THROW(CQ_CHECK(true));
  EXPECT_NO_THROW(CQ_CHECK_MSG(2 > 1, "unused"));
}

TEST(Rng, DeterministicGivenSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next_u64() == b.next_u64()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanApproxHalf) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(Rng, UniformIndexCoversRangeWithoutBias) {
  Rng rng(13);
  std::vector<int> counts(10, 0);
  const int n = 50000;
  for (int i = 0; i < n; ++i) ++counts[rng.uniform_index(10)];
  for (int c : counts) EXPECT_NEAR(c, n / 10, n / 60);
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng rng(17);
  std::set<int> seen;
  for (int i = 0; i < 1000; ++i) {
    const int v = rng.uniform_int(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, NormalMoments) {
  Rng rng(19);
  double sum = 0.0, sq = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.normal();
    sum += v;
    sq += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(Rng, NormalScaleAndShift) {
  Rng rng(23);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.normal(5.0, 0.5);
  EXPECT_NEAR(sum / n, 5.0, 0.05);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(29);
  std::vector<int> v(50);
  for (int i = 0; i < 50; ++i) v[static_cast<std::size_t>(i)] = i;
  auto sorted = v;
  rng.shuffle(v);
  EXPECT_NE(v, sorted);  // astronomically unlikely to be identity
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(Rng, BernoulliProbability) {
  Rng rng(31);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i)
    if (rng.bernoulli(0.3)) ++hits;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(Rng, SplitIndependence) {
  Rng parent(37);
  Rng child = parent.split();
  // Child stream differs from the continued parent stream.
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (parent.next_u64() == child.next_u64()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Splitmix, KnownSequenceIsDeterministic) {
  std::uint64_t s1 = 42, s2 = 42;
  EXPECT_EQ(splitmix64(s1), splitmix64(s2));
  EXPECT_EQ(s1, s2);
}

TEST(Table, RendersAlignedRows) {
  TableWriter t({"Network", "Acc"});
  t.add_row({"resnet18", "42.44"});
  t.add_row({"r34", "47.53"});
  const auto s = t.render();
  EXPECT_NE(s.find("| Network"), std::string::npos);
  EXPECT_NE(s.find("resnet18"), std::string::npos);
  EXPECT_NE(s.find("47.53"), std::string::npos);
  // Header separator present.
  EXPECT_NE(s.find("|---"), std::string::npos);
}

TEST(Table, RejectsWrongArity) {
  TableWriter t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), CheckError);
}

TEST(Table, NumFormatsPrecision) {
  EXPECT_EQ(TableWriter::num(3.14159, 2), "3.14");
  EXPECT_EQ(TableWriter::num(2.0, 1), "2.0");
}

TEST(Csv, WritesHeaderAndRows) {
  const std::string path = "test_csv_out.csv";
  {
    CsvWriter csv(path, {"x", "y"});
    csv.add_row(std::vector<std::string>{"1", "2"});
    csv.add_row(std::vector<double>{3.5, 4.5});
    csv.close();
  }
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "x,y");
  std::getline(in, line);
  EXPECT_EQ(line, "1,2");
  std::getline(in, line);
  EXPECT_EQ(line, "3.5,4.5");
  std::filesystem::remove(path);
}

TEST(Csv, RejectsArityMismatch) {
  CsvWriter csv("test_csv_bad.csv", {"a", "b"});
  EXPECT_THROW(csv.add_row(std::vector<std::string>{"1"}), CheckError);
  csv.close();
  std::filesystem::remove("test_csv_bad.csv");
}

TEST(Serialize, RoundTripsAllTypes) {
  const std::string path = "test_ser.bin";
  {
    BinaryWriter w(path);
    write_checkpoint_header(w);
    w.write_u32(7);
    w.write_u64(1ULL << 40);
    w.write_f32(2.5f);
    w.write_string("hello");
    w.write_f32_array({1.0f, -2.0f, 3.0f});
    w.close();
  }
  BinaryReader r(path);
  read_checkpoint_header(r);
  EXPECT_EQ(r.read_u32(), 7u);
  EXPECT_EQ(r.read_u64(), 1ULL << 40);
  EXPECT_FLOAT_EQ(r.read_f32(), 2.5f);
  EXPECT_EQ(r.read_string(), "hello");
  const auto arr = r.read_f32_array();
  ASSERT_EQ(arr.size(), 3u);
  EXPECT_FLOAT_EQ(arr[1], -2.0f);
  std::filesystem::remove(path);
}

TEST(Serialize, RejectsBadMagic) {
  const std::string path = "test_ser_bad.bin";
  {
    std::ofstream out(path, std::ios::binary);
    out << "NOTACKPT-garbage-bytes";
  }
  BinaryReader r(path);
  EXPECT_THROW(read_checkpoint_header(r), CheckError);
  std::filesystem::remove(path);
}

TEST(Serialize, ExpectEofAcceptsCleanEnd) {
  const std::string path = "test_ser_eof.bin";
  {
    BinaryWriter w(path);
    write_checkpoint_header(w);
    w.write_u32(42);
    w.close();
  }
  BinaryReader r(path);
  read_checkpoint_header(r);
  EXPECT_EQ(r.read_u32(), 42u);
  EXPECT_NO_THROW(r.expect_eof());
  std::filesystem::remove(path);
}

TEST(Serialize, ExpectEofRejectsTrailingBytes) {
  // An oversized file means the reader's idea of the format disagrees with
  // the writer's — load must fail loudly, not silently ignore the tail.
  const std::string path = "test_ser_tail.bin";
  {
    BinaryWriter w(path);
    write_checkpoint_header(w);
    w.write_u32(42);
    w.close();
    std::ofstream out(path, std::ios::binary | std::ios::app);
    out << '\0';
  }
  BinaryReader r(path);
  read_checkpoint_header(r);
  EXPECT_EQ(r.read_u32(), 42u);
  EXPECT_THROW(r.expect_eof(), CheckError);
  std::filesystem::remove(path);
}

TEST(Serialize, RejectsTruncatedFile) {
  const std::string path = "test_ser_trunc.bin";
  {
    BinaryWriter w(path);
    write_checkpoint_header(w);
    w.write_u64(1000);  // claims a long string that is not there
    w.close();
  }
  BinaryReader r(path);
  read_checkpoint_header(r);
  EXPECT_THROW(r.read_string(), CheckError);
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace cq
