// Cross-thread Tensor hand-off: the storage refcount is atomic, so moving
// or sharing tensors between threads (the serving engine's collate/scatter
// path) is safe as long as accesses to the payload are externally
// synchronized. These run under the `tsan` preset (label: serve).
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "tensor/tensor.hpp"

namespace cq {
namespace {

TEST(StorageThreads, MoveFreeCrossThread) {
  // Build on this thread, consume + destroy on another. The buffer parks in
  // the consuming thread's pool (documented fallback in storage.hpp).
  for (int round = 0; round < 50; ++round) {
    Tensor t = Tensor::full(Shape{64, 64}, static_cast<float>(round));
    std::thread consumer([t = std::move(t), round] {
      EXPECT_FLOAT_EQ(t[0], static_cast<float>(round));
      EXPECT_FLOAT_EQ(t[t.numel() - 1], static_cast<float>(round));
    });
    consumer.join();
  }
}

TEST(StorageThreads, SharedCopyTwoThreads) {
  // Two threads holding COPIES of the same tensor read concurrently and
  // release concurrently; the atomic refcount keeps exactly one final free.
  Tensor shared = Tensor::full(Shape{256}, 3.5f);
  std::vector<std::thread> readers;
  for (int i = 0; i < 4; ++i) {
    readers.emplace_back([shared] {  // copy -> refcount bump on this thread
      float sum = 0.0f;
      for (std::int64_t j = 0; j < shared.numel(); ++j) sum += shared[j];
      EXPECT_FLOAT_EQ(sum, 3.5f * 256.0f);
    });
  }
  for (auto& t : readers) t.join();
  EXPECT_FALSE(shared.shares_storage());  // all reader copies released
}

TEST(StorageThreads, CrossThreadCowDetach) {
  // A thread that writes through its own copy detaches first (copy-on-
  // write), so the writer never races the reader's payload.
  Tensor original = Tensor::full(Shape{128}, 1.0f);
  Tensor copy = original;
  std::thread writer([&copy] {
    copy.fill(2.0f);  // non-const access -> detach on the writer thread
    EXPECT_FLOAT_EQ(copy[0], 2.0f);
  });
  writer.join();
  EXPECT_FLOAT_EQ(original[0], 1.0f);
  EXPECT_FALSE(original.shares_storage());
}

TEST(StorageThreads, HandOffThroughQueuePattern) {
  // The serving engine's shape: producer fills tensors, consumer thread
  // reads and drops them. Repeated to give TSan interleavings to chew on.
  constexpr int kRounds = 100;
  std::vector<Tensor> slots(kRounds);
  for (int i = 0; i < kRounds; ++i)
    slots[static_cast<std::size_t>(i)] =
        Tensor::full(Shape{32}, static_cast<float>(i));
  std::thread consumer([&slots] {
    for (int i = 0; i < kRounds; ++i) {
      Tensor taken = std::move(slots[static_cast<std::size_t>(i)]);
      EXPECT_FLOAT_EQ(taken[5], static_cast<float>(i));
    }
  });
  consumer.join();
}

}  // namespace
}  // namespace cq
