#include <gtest/gtest.h>

#include "data/augment.hpp"
#include "data/synth.hpp"

namespace cq {
namespace {

TEST(Augment, PreservesShapeAndRange) {
  Rng rng(1);
  data::AugmentPipeline aug;
  Tensor img = Tensor::uniform(Shape{3, 16, 16}, rng);
  for (int i = 0; i < 20; ++i) {
    Tensor v = aug(img, rng);
    ASSERT_EQ(v.shape(), img.shape());
    for (std::int64_t j = 0; j < v.numel(); ++j) {
      ASSERT_GE(v[j], 0.0f);
      ASSERT_LE(v[j], 1.0f);
    }
  }
}

TEST(Augment, IdentityPipelinePassesThrough) {
  Rng rng(2);
  const auto aug = data::identity_pipeline();
  Tensor img = Tensor::uniform(Shape{3, 8, 8}, rng);
  Tensor v = aug(img, rng);
  for (std::int64_t i = 0; i < img.numel(); ++i)
    EXPECT_FLOAT_EQ(img[i], v[i]);
}

TEST(Augment, TwoViewsDiffer) {
  Rng rng(3);
  data::AugmentPipeline aug;
  Tensor img = Tensor::uniform(Shape{3, 16, 16}, rng);
  Tensor v1 = aug(img, rng);
  Tensor v2 = aug(img, rng);
  float diff = 0.0f;
  for (std::int64_t i = 0; i < v1.numel(); ++i)
    diff += std::abs(v1[i] - v2[i]);
  EXPECT_GT(diff, 0.01f);
}

TEST(Augment, DeterministicGivenRngState) {
  Rng rng_a(7), rng_b(7);
  data::AugmentPipeline aug;
  Tensor img = Tensor::uniform(Shape{3, 12, 12}, rng_a);
  Tensor img_b = Tensor::uniform(Shape{3, 12, 12}, rng_b);
  Tensor v1 = aug(img, rng_a);
  Tensor v2 = aug(img_b, rng_b);
  for (std::int64_t i = 0; i < v1.numel(); ++i)
    ASSERT_FLOAT_EQ(v1[i], v2[i]);
}

TEST(Augment, BatchStacksViews) {
  Rng rng(4);
  const auto cfg = data::synth_cifar_config();
  const auto ds = data::make_synth_dataset(cfg, 8, rng);
  data::AugmentPipeline aug;
  const std::vector<std::int64_t> idx = {0, 3, 7};
  Tensor batch = aug.batch(ds, idx, rng);
  EXPECT_EQ(batch.shape(), Shape({3, 3, cfg.height, cfg.width}));
}

TEST(Augment, NoJitterWhenStrengthZero) {
  Rng rng(5);
  data::AugmentConfig cfg;
  cfg.min_crop_scale = 1.0f;  // full-frame crop
  cfg.flip_prob = 0.0f;
  cfg.jitter_strength = 0.0f;
  cfg.grayscale_prob = 0.0f;
  cfg.noise_sigma = 0.0f;
  data::AugmentPipeline aug(cfg);
  Tensor img = Tensor::uniform(Shape{3, 10, 10}, rng);
  Tensor v = aug(img, rng);
  for (std::int64_t i = 0; i < img.numel(); ++i)
    EXPECT_NEAR(img[i], v[i], 1e-5);
}

TEST(Augment, RejectsInvalidCropScale) {
  data::AugmentConfig cfg;
  cfg.min_crop_scale = 0.0f;
  EXPECT_THROW(data::AugmentPipeline{cfg}, CheckError);
}


TEST(Augment, CutoutErasesASquare) {
  Rng rng(6);
  data::AugmentConfig cfg;
  cfg.min_crop_scale = 1.0f;
  cfg.flip_prob = 0.0f;
  cfg.jitter_prob = 0.0f;
  cfg.grayscale_prob = 0.0f;
  cfg.noise_sigma = 0.0f;
  cfg.cutout_prob = 1.0f;
  cfg.cutout_frac = 0.5f;
  data::AugmentPipeline aug(cfg);
  Tensor img = Tensor::ones(Shape{3, 12, 12});
  Tensor v = aug(img, rng);
  std::int64_t erased = 0;
  for (std::int64_t i = 0; i < v.numel(); ++i)
    if (v[i] == 0.5f) ++erased;
  EXPECT_EQ(erased, 3 * 6 * 6);  // one 6x6 square per channel
}

}  // namespace
}  // namespace cq
