// Concurrency tests for the work-stealing ThreadPool and the lock-free MPMC
// RequestQueue — the two scale-out substrates of DESIGN.md §14. Labeled
// substrate_serve so both sanitizer sweeps AND the tsan preset run them; the
// stress cases here are sized to give TSan real interleavings, not just a
// smoke pass.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <set>
#include <thread>
#include <vector>

#include "core/threadpool.hpp"
#include "serve/queue.hpp"
#include "serve/request.hpp"

namespace cq {
namespace {

using core::ThreadPool;

/// RAII pool resize: every test restores the global pool so test order
/// cannot leak a size into unrelated suites.
class PoolSizeGuard {
 public:
  explicit PoolSizeGuard(std::size_t n)
      : old_(ThreadPool::instance().size()) {
    ThreadPool::instance().set_size(n);
  }
  ~PoolSizeGuard() { ThreadPool::instance().set_size(old_); }

 private:
  std::size_t old_;
};

TEST(ThreadPool, CoversEveryIndexExactlyOnceAtEverySize) {
  for (std::size_t threads : {1u, 2u, 3u, 8u}) {
    PoolSizeGuard guard(threads);
    for (std::int64_t total : {1, 2, 7, 64, 1000}) {
      for (std::int64_t grain : {1, 3, 64}) {
        std::vector<std::atomic<int>> hits(static_cast<std::size_t>(total));
        for (auto& h : hits) h.store(0, std::memory_order_relaxed);
        core::parallel_for(total, grain,
                           [&](std::int64_t b, std::int64_t e) {
                             for (std::int64_t i = b; i < e; ++i)
                               hits[static_cast<std::size_t>(i)].fetch_add(
                                   1, std::memory_order_relaxed);
                           });
        for (std::int64_t i = 0; i < total; ++i)
          ASSERT_EQ(hits[static_cast<std::size_t>(i)].load(), 1)
              << "threads=" << threads << " total=" << total
              << " grain=" << grain << " @" << i;
      }
    }
  }
}

TEST(ThreadPool, SizeOneRunsInlineOnTheCaller) {
  PoolSizeGuard guard(1);
  const auto caller = std::this_thread::get_id();
  int calls = 0;
  core::parallel_for(100, 1, [&](std::int64_t b, std::int64_t e) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
    EXPECT_FALSE(ThreadPool::on_worker_thread());
    EXPECT_EQ(b, 0);
    EXPECT_EQ(e, 100);
    ++calls;  // safe: single-threaded by contract
  });
  EXPECT_EQ(calls, 1);
}

TEST(ThreadPool, RangeAtMostOneGrainRunsAsOneInlineChunk) {
  PoolSizeGuard guard(4);
  const auto caller = std::this_thread::get_id();
  int calls = 0;
  core::parallel_for(64, 64, [&](std::int64_t b, std::int64_t e) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
    EXPECT_EQ(e - b, 64);
    ++calls;
  });
  EXPECT_EQ(calls, 1);
}

TEST(ThreadPool, ChunkPartitionIsThePureFunctionOfTotalAndChunks) {
  // The deterministic-partition contract: chunk boundaries depend only on
  // (total, grain, pool size), never on scheduling. Collect the actual
  // ranges and compare with the documented split — ceil-distributed
  // remainders, first `total % chunks` chunks one longer.
  for (std::size_t threads : {2u, 3u, 8u}) {
    PoolSizeGuard guard(threads);
    const std::int64_t total = 1003, grain = 5;
    std::mutex mu;
    std::vector<std::pair<std::int64_t, std::int64_t>> ranges;
    for (int rep = 0; rep < 3; ++rep) {
      std::vector<std::pair<std::int64_t, std::int64_t>> got;
      core::parallel_for(total, grain, [&](std::int64_t b, std::int64_t e) {
        std::lock_guard<std::mutex> lk(mu);
        got.emplace_back(b, e);
      });
      std::sort(got.begin(), got.end());
      const std::int64_t want_chunks = std::min<std::int64_t>(
          (total + grain - 1) / grain,
          static_cast<std::int64_t>(threads) * ThreadPool::kChunksPerThread);
      ASSERT_EQ(static_cast<std::int64_t>(got.size()), want_chunks);
      const std::int64_t base = total / want_chunks;
      const std::int64_t rem = total % want_chunks;
      std::int64_t begin = 0;
      for (std::int64_t c = 0; c < want_chunks; ++c) {
        const std::int64_t len = base + (c < rem ? 1 : 0);
        ASSERT_EQ(got[static_cast<std::size_t>(c)].first, begin);
        ASSERT_EQ(got[static_cast<std::size_t>(c)].second, begin + len);
        begin += len;
      }
      if (rep == 0)
        ranges = got;
      else
        ASSERT_EQ(got, ranges) << "partition changed between dispatches";
    }
  }
}

TEST(ThreadPool, PoolLargerThanChunkCountStillCoversRange) {
  PoolSizeGuard guard(8);  // 8 threads, only 3 chunks to hand out
  std::atomic<std::int64_t> sum{0};
  core::parallel_for(3, 1, [&](std::int64_t b, std::int64_t e) {
    for (std::int64_t i = b; i < e; ++i)
      sum.fetch_add(i + 1, std::memory_order_relaxed);
  });
  EXPECT_EQ(sum.load(), 6);
}

TEST(ThreadPool, NestedDispatchRunsInlineWithoutDeadlock) {
  PoolSizeGuard guard(4);
  constexpr std::int64_t kOuter = 16, kInner = 32;
  std::vector<std::atomic<int>> hits(kOuter * kInner);
  for (auto& h : hits) h.store(0, std::memory_order_relaxed);
  core::parallel_for(kOuter, 1, [&](std::int64_t ob, std::int64_t oe) {
    for (std::int64_t o = ob; o < oe; ++o) {
      // Inner dispatch from (possibly) a worker thread: must run inline and
      // still cover its whole range.
      core::parallel_for(kInner, 1, [&, o](std::int64_t ib, std::int64_t ie) {
        for (std::int64_t i = ib; i < ie; ++i)
          hits[static_cast<std::size_t>(o * kInner + i)].fetch_add(
              1, std::memory_order_relaxed);
      });
    }
  });
  for (auto& h : hits) ASSERT_EQ(h.load(), 1);
}

TEST(ThreadPool, ConcurrentCallersEachCoverTheirOwnRange) {
  // Several EXTERNAL threads dispatching into the shared pool at once — the
  // serve engine's shape (N workers all hitting parallel GEMM). Each caller
  // must see exactly its own job completed.
  PoolSizeGuard guard(4);
  constexpr int kCallers = 4;
  constexpr std::int64_t kTotal = 512;
  std::vector<std::vector<std::atomic<int>>> hits(kCallers);
  for (auto& v : hits) {
    std::vector<std::atomic<int>> fresh(kTotal);
    for (auto& h : fresh) h.store(0, std::memory_order_relaxed);
    v.swap(fresh);
  }
  std::vector<std::thread> callers;
  for (int c = 0; c < kCallers; ++c) {
    callers.emplace_back([&, c] {
      for (int rep = 0; rep < 50; ++rep) {
        core::parallel_for(kTotal, 8, [&](std::int64_t b, std::int64_t e) {
          for (std::int64_t i = b; i < e; ++i)
            hits[static_cast<std::size_t>(c)][static_cast<std::size_t>(i)]
                .fetch_add(1, std::memory_order_relaxed);
        });
      }
    });
  }
  for (auto& t : callers) t.join();
  for (int c = 0; c < kCallers; ++c)
    for (std::int64_t i = 0; i < kTotal; ++i)
      ASSERT_EQ(hits[static_cast<std::size_t>(c)][static_cast<std::size_t>(i)]
                    .load(),
                50)
          << "caller " << c << " @" << i;
}

TEST(ThreadPool, ConfiguredThreadsParsesAndClampsEnv) {
  const char* old = std::getenv("CQ_THREADS");
  const std::string saved = old ? old : "";
  setenv("CQ_THREADS", "3", 1);
  EXPECT_EQ(core::configured_threads(), 3u);
  setenv("CQ_THREADS", "100000", 1);
  EXPECT_EQ(core::configured_threads(), ThreadPool::kMaxThreads);
  // Invalid values fall back to hardware concurrency (>= 1), never throw.
  for (const char* bad : {"0", "-2", "abc", ""}) {
    setenv("CQ_THREADS", bad, 1);
    EXPECT_GE(core::configured_threads(), 1u) << "CQ_THREADS=" << bad;
    EXPECT_LE(core::configured_threads(), ThreadPool::kMaxThreads);
  }
  if (old)
    setenv("CQ_THREADS", saved.c_str(), 1);
  else
    unsetenv("CQ_THREADS");
}

// ---------------------------------------------------------------------------
// Lock-free MPMC RequestQueue: concurrency properties beyond the functional
// cases in test_serve.cpp.
// ---------------------------------------------------------------------------

TEST(MpmcQueue, FifoOrderAcrossManyLapsOfANonPowerOfTwoRing) {
  // capacity 3 forces the sequence-number lap arithmetic through the
  // pos % capacity (non-power-of-two) path thousands of times.
  serve::RequestQueue q(3);
  std::vector<serve::Request> reqs(3);
  std::vector<serve::Request*> out;
  int next_in = 0, next_out = 0;
  for (int lap = 0; lap < 2000; ++lap) {
    ASSERT_TRUE(q.try_push(&reqs[static_cast<std::size_t>(next_in % 3)]));
    ++next_in;
    if (lap % 3 == 2) {  // drain in bursts so the ring wraps at every phase
      while (q.try_pop_some(out, 16) > 0) {
      }
      for (serve::Request* r : out) {
        ASSERT_EQ(r, &reqs[static_cast<std::size_t>(next_out % 3)]);
        ++next_out;
      }
      out.clear();
    }
  }
  EXPECT_EQ(q.depth(), static_cast<std::size_t>(next_in - next_out));
  EXPECT_EQ(q.peak_depth(), 3u);
}

TEST(MpmcQueue, ConcurrentProducersAndConsumersDeliverEveryRequestOnce) {
  constexpr int kProducers = 4, kConsumers = 4, kPerProducer = 2000;
  constexpr int kTotal = kProducers * kPerProducer;
  serve::RequestQueue q(8);  // small ring: constant full/empty contention
  std::vector<serve::Request> reqs(kTotal);
  std::vector<std::atomic<int>> delivered(kTotal);
  for (auto& d : delivered) d.store(0, std::memory_order_relaxed);

  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        serve::Request* r =
            &reqs[static_cast<std::size_t>(p * kPerProducer + i)];
        while (!q.try_push(r)) std::this_thread::yield();  // ring full
      }
    });
  }
  std::vector<std::thread> consumers;
  std::atomic<int> popped{0};
  for (int c = 0; c < kConsumers; ++c) {
    consumers.emplace_back([&] {
      std::vector<serve::Request*> batch;
      for (;;) {
        const std::size_t n =
            q.pop_batch(batch, 8, std::chrono::microseconds{50});
        if (n == 0) return;  // closed and drained
        for (serve::Request* r : batch) {
          const auto idx = static_cast<std::size_t>(r - reqs.data());
          delivered[idx].fetch_add(1, std::memory_order_relaxed);
        }
        popped.fetch_add(static_cast<int>(n), std::memory_order_relaxed);
      }
    });
  }
  for (auto& t : producers) t.join();
  q.close();
  for (auto& t : consumers) t.join();

  EXPECT_EQ(popped.load(), kTotal);
  for (int i = 0; i < kTotal; ++i)
    ASSERT_EQ(delivered[static_cast<std::size_t>(i)].load(), 1) << "@" << i;
  EXPECT_EQ(q.depth(), 0u);
  EXPECT_LE(q.peak_depth(), 8u);
  EXPECT_GE(q.peak_depth(), 1u);
}

TEST(MpmcQueue, PopBatchForTimesOutEmptyWithoutClosing) {
  serve::RequestQueue q(4);
  std::vector<serve::Request*> out{reinterpret_cast<serve::Request*>(1)};
  const auto t0 = serve::Clock::now();
  EXPECT_EQ(q.pop_batch_for(out, 8, std::chrono::microseconds{0},
                            std::chrono::microseconds{2000}),
            0u);
  EXPECT_TRUE(out.empty());  // cleared even on timeout
  EXPECT_FALSE(q.closed());
  EXPECT_GE(serve::Clock::now() - t0, std::chrono::microseconds{1000});
  // And a request arriving during the first-wait is picked up promptly.
  serve::Request r;
  std::thread pusher([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds{2});
    ASSERT_TRUE(q.try_push(&r));
  });
  EXPECT_EQ(q.pop_batch_for(out, 8, std::chrono::microseconds{0},
                            std::chrono::microseconds{500000}),
            1u);
  EXPECT_EQ(out[0], &r);
  pusher.join();
}

TEST(MpmcQueue, TryPopSomeAppendsAndRespectsMax) {
  serve::RequestQueue q(8);
  std::vector<serve::Request> reqs(5);
  for (auto& r : reqs) ASSERT_TRUE(q.try_push(&r));
  std::vector<serve::Request*> out;
  EXPECT_EQ(q.try_pop_some(out, 2), 2u);
  EXPECT_EQ(q.try_pop_some(out, 16), 3u);  // appends after the first two
  ASSERT_EQ(out.size(), 5u);
  for (std::size_t i = 0; i < 5; ++i) EXPECT_EQ(out[i], &reqs[i]);
  EXPECT_EQ(q.try_pop_some(out, 16), 0u);
}

TEST(MpmcQueue, CloseWakesBlockedConsumerPromptly) {
  serve::RequestQueue q(4);
  std::atomic<bool> done{false};
  std::thread consumer([&] {
    std::vector<serve::Request*> batch;
    EXPECT_EQ(q.pop_batch(batch, 8, std::chrono::microseconds{1000}), 0u);
    done.store(true, std::memory_order_release);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds{5});
  EXPECT_FALSE(done.load(std::memory_order_acquire));
  q.close();
  consumer.join();
  EXPECT_TRUE(done.load(std::memory_order_acquire));
}

}  // namespace
}  // namespace cq
