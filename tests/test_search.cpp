// Vector search subsystem (DESIGN.md §15): Hamming/binarize kernel fuzz
// (backend vs scalar twin, odd tails, 2-bit layout), bounded top-k vs a
// std::partial_sort oracle, index build/query/save/load, threaded-scan
// bitwise parity across pool sizes, the 0-alloc steady-state contract of the
// query path, and the serve-engine-backed Service (encode -> binarize ->
// scan) including concurrent query + incremental add (the tsan target).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <bit>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "core/threadpool.hpp"
#include "models/encoder.hpp"
#include "search/index.hpp"
#include "search/recall.hpp"
#include "search/service.hpp"
#include "search/topk.hpp"
#include "tensor/kernels/hamming.hpp"
#include "tensor/kernels/kernels.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

// Global allocation counter for the 0-alloc steady-state assertions. The
// tensor-pool AllocTracker can't see QueryScratch's std::vectors, so the
// test binary replaces operator new wholesale and counts every heap
// allocation from any thread.
static std::atomic<std::uint64_t> g_heap_allocs{0};

void* operator new(std::size_t n) {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t n) { return ::operator new(n); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace cq {
namespace {

using search::Candidate;
using search::CodeLayout;
using search::Index;
using search::IndexConfig;
using search::QueryOptions;
using search::QueryScratch;
using search::Result;
using search::TopK;

std::vector<std::uint64_t> random_words(Rng& rng, std::int64_t n) {
  std::vector<std::uint64_t> v(static_cast<std::size_t>(n));
  for (auto& w : v) w = rng.next_u64();
  return v;
}

std::vector<float> random_floats(Rng& rng, std::int64_t n, double lo = -1.0,
                                 double hi = 1.0) {
  std::vector<float> v(static_cast<std::size_t>(n));
  for (auto& x : v) x = static_cast<float>(rng.uniform(lo, hi));
  return v;
}

// ---- kernel fuzz: backend vs scalar twin -----------------------------------

TEST(HammingKernels, PopcountMatchesScalarAndOracle) {
  Rng rng(101);
  for (std::int64_t n : {0, 1, 2, 3, 4, 5, 7, 8, 9, 31, 64, 100, 1023}) {
    const auto words = random_words(rng, n);
    std::uint64_t oracle = 0;
    for (auto w : words)
      oracle += static_cast<std::uint64_t>(std::popcount(w));
    EXPECT_EQ(kernels::popcount_u64(words.data(), n), oracle) << "n=" << n;
    EXPECT_EQ(kernels::scalar::popcount_u64(words.data(), n), oracle);
  }
}

TEST(HammingKernels, DistanceAndScanMatchScalarFuzz) {
  Rng rng(202);
  for (std::int64_t words : {1, 2, 3, 4, 5, 7, 8, 13}) {
    for (std::int64_t rows : {1, 2, 3, 5, 17, 100, 259}) {
      const auto base = random_words(rng, rows * words);
      const auto query = random_words(rng, words);
      std::vector<std::uint32_t> got(static_cast<std::size_t>(rows));
      std::vector<std::uint32_t> want(static_cast<std::size_t>(rows));
      kernels::hamming_scan(query.data(), base.data(), rows, words,
                            got.data());
      kernels::scalar::hamming_scan(query.data(), base.data(), rows, words,
                                    want.data());
      for (std::int64_t r = 0; r < rows; ++r) {
        ASSERT_EQ(got[r], want[r]) << "words=" << words << " row=" << r;
        // The scan must agree with the pairwise primitive and a naive oracle.
        std::uint32_t oracle = 0;
        for (std::int64_t w = 0; w < words; ++w)
          oracle += static_cast<std::uint32_t>(
              std::popcount(base[r * words + w] ^ query[w]));
        ASSERT_EQ(got[r], oracle);
        ASSERT_EQ(kernels::hamming_distance(base.data() + r * words,
                                            query.data(), words),
                  oracle);
        ASSERT_EQ(kernels::scalar::hamming_distance(base.data() + r * words,
                                                    query.data(), words),
                  oracle);
      }
    }
  }
}

TEST(HammingKernels, FilterLtMatchesScalarAtBoundaryLimits) {
  Rng rng(2020);
  for (std::int64_t n : {0, 1, 7, 8, 9, 63, 64, 100, 4097}) {
    std::vector<std::uint32_t> x(static_cast<std::size_t>(n));
    for (auto& v : x) v = static_cast<std::uint32_t>(rng.next_u64() % 97);
    // Limits straddle the value range: 0 (reject all), 1, a mid value, the
    // max value, past-the-end, and the extreme. Index lists must be
    // identical (both ascending) and match a naive oracle.
    for (std::uint32_t limit : {0u, 1u, 48u, 96u, 97u, 0xFFFFFFFFu}) {
      std::vector<std::int32_t> got(static_cast<std::size_t>(n) + 1, -1);
      std::vector<std::int32_t> want(static_cast<std::size_t>(n) + 1, -1);
      const std::int64_t ng =
          kernels::filter_lt_u32(x.data(), n, limit, got.data());
      const std::int64_t nw =
          kernels::scalar::filter_lt_u32(x.data(), n, limit, want.data());
      ASSERT_EQ(ng, nw) << "n=" << n << " limit=" << limit;
      std::int64_t cnt = 0;
      for (std::int64_t i = 0; i < n; ++i) {
        if (x[static_cast<std::size_t>(i)] >= limit) continue;
        ASSERT_EQ(got[static_cast<std::size_t>(cnt)], i) << "limit=" << limit;
        ++cnt;
      }
      ASSERT_EQ(ng, cnt);
      for (std::int64_t i = 0; i < ng; ++i)
        ASSERT_EQ(got[static_cast<std::size_t>(i)],
                  want[static_cast<std::size_t>(i)]);
    }
  }
}

TEST(HammingKernels, Binarize1BitMatchesScalarWithOddTails) {
  Rng rng(303);
  for (std::int64_t cols : {1, 3, 7, 8, 9, 31, 63, 64, 65, 100, 129}) {
    const std::int64_t rows = 5;
    const std::int64_t words = (cols + 63) / 64;
    auto x = random_floats(rng, rows * cols);
    auto thr = random_floats(rng, cols, -0.5, 0.5);
    // Exercise the strict-> boundary and the NaN->false convention.
    x[0] = thr[0];
    if (cols > 2) x[2] = std::numeric_limits<float>::quiet_NaN();
    std::vector<std::uint64_t> got(static_cast<std::size_t>(rows * words),
                                   0xFFFFFFFFFFFFFFFFull);
    auto want = got;
    kernels::binarize_1bit(x.data(), rows, cols, thr.data(), words,
                           got.data());
    kernels::scalar::binarize_1bit(x.data(), rows, cols, thr.data(), words,
                                   want.data());
    EXPECT_EQ(got, want) << "cols=" << cols;
    for (std::int64_t r = 0; r < rows; ++r)
      for (std::int64_t j = 0; j < cols; ++j) {
        const bool bit =
            (got[r * words + (j >> 6)] >> (j & 63)) & 1;
        EXPECT_EQ(bit, x[r * cols + j] > thr[j]) << r << "," << j;
      }
    // Trailing bits of the last word must be zeroed, never garbage.
    if (cols % 64 != 0) {
      for (std::int64_t r = 0; r < rows; ++r)
        EXPECT_EQ(got[r * words + words - 1] >> (cols % 64), 0u);
    }
  }
}

TEST(HammingKernels, Binarize2BitThermometerMatchesScalar) {
  Rng rng(404);
  for (std::int64_t cols : {1, 3, 5, 8, 16, 31, 32, 33, 64, 100}) {
    const std::int64_t rows = 4;
    const std::int64_t words = (2 * cols + 63) / 64;
    const auto x = random_floats(rng, rows * cols);
    auto lo = random_floats(rng, cols, -0.5, 0.0);
    auto hi = random_floats(rng, cols, 0.0, 0.5);
    std::vector<std::uint64_t> got(static_cast<std::size_t>(rows * words),
                                   0xFFFFFFFFFFFFFFFFull);
    auto want = got;
    kernels::binarize_2bit(x.data(), rows, cols, lo.data(), hi.data(), words,
                           got.data());
    kernels::scalar::binarize_2bit(x.data(), rows, cols, lo.data(),
                                   hi.data(), words, want.data());
    EXPECT_EQ(got, want) << "cols=" << cols;
    // Thermometer property: XOR-popcount == sum of per-dim level gaps.
    auto level = [&](std::int64_t r, std::int64_t j) {
      const float v = x[r * cols + j];
      return (v > lo[j] ? 1 : 0) + (v > hi[j] ? 1 : 0);
    };
    for (std::int64_t a = 0; a < rows; ++a)
      for (std::int64_t b = 0; b < rows; ++b) {
        std::uint32_t gap = 0;
        for (std::int64_t j = 0; j < cols; ++j)
          gap += static_cast<std::uint32_t>(
              std::abs(level(a, j) - level(b, j)));
        EXPECT_EQ(kernels::hamming_distance(got.data() + a * words,
                                            got.data() + b * words, words),
                  gap);
      }
  }
}

TEST(HammingKernels, DotScanBitwiseAcrossBackends) {
  Rng rng(505);
  for (std::int64_t dim : {1, 7, 8, 15, 16, 17, 64, 100}) {
    for (std::int64_t rows : {1, 3, 33}) {
      const auto base = random_floats(rng, rows * dim);
      const auto query = random_floats(rng, dim);
      std::vector<float> got(static_cast<std::size_t>(rows));
      std::vector<float> want(static_cast<std::size_t>(rows));
      kernels::dot_scan(query.data(), base.data(), rows, dim, got.data());
      kernels::scalar::dot_scan(query.data(), base.data(), rows, dim,
                                want.data());
      for (std::int64_t r = 0; r < rows; ++r) {
        ASSERT_EQ(got[r], want[r]) << "dim=" << dim << " row=" << r;
        double oracle = 0;
        for (std::int64_t j = 0; j < dim; ++j)
          oracle += static_cast<double>(query[j]) *
                    static_cast<double>(base[r * dim + j]);
        ASSERT_NEAR(got[r], oracle, 1e-4) << "dim=" << dim;
      }
    }
  }
}

// ---- bounded top-k vs oracle -----------------------------------------------

TEST(TopKHeap, MatchesPartialSortOracle) {
  Rng rng(606);
  TopK topk;
  for (int trial = 0; trial < 50; ++trial) {
    const std::int64_t n = 1 + static_cast<std::int64_t>(
                                   rng.uniform_index(400));
    const std::int64_t k = 1 + static_cast<std::int64_t>(
                                   rng.uniform_index(40));
    std::vector<Candidate> stream(static_cast<std::size_t>(n));
    for (std::int64_t i = 0; i < n; ++i)
      // Small distance range forces heavy ties -> exercises the row
      // tiebreak of the total order.
      stream[i] = {static_cast<std::uint32_t>(rng.uniform_index(8)), i};
    topk.reset(k);
    for (const auto& c : stream) topk.push(c);
    auto got = topk.sorted();

    auto oracle = stream;
    const auto kk = std::min<std::int64_t>(k, n);
    std::partial_sort(oracle.begin(), oracle.begin() + kk, oracle.end(),
                      search::candidate_less);
    ASSERT_EQ(static_cast<std::int64_t>(got.size()), kk);
    for (std::int64_t i = 0; i < kk; ++i) {
      EXPECT_EQ(got[i].dist, oracle[i].dist) << trial << ":" << i;
      EXPECT_EQ(got[i].row, oracle[i].row) << trial << ":" << i;
    }
  }
}

// ---- Binarizer fit ---------------------------------------------------------

TEST(Binarizer, FitUsesPerCoordinateOrderStatistics) {
  // Column 0 constant, column 1 a known ramp: the median/tertiles are
  // exact order statistics of each coordinate independently.
  const std::int64_t rows = 9, dim = 2;
  std::vector<float> data(rows * dim);
  for (std::int64_t r = 0; r < rows; ++r) {
    data[r * dim + 0] = 5.0f;
    data[r * dim + 1] = static_cast<float>(r);  // 0..8
  }
  auto b1 = search::Binarizer::fit(data.data(), rows, dim,
                                   CodeLayout::k1Bit);
  std::vector<std::uint64_t> code(1);
  std::vector<float> probe = {5.0f, 4.0f};  // exactly at both medians
  b1.encode(probe.data(), 1, code.data());
  EXPECT_EQ(code[0] & 3u, 0u);  // strict >: at-threshold stays 0
  probe = {5.5f, 4.5f};
  b1.encode(probe.data(), 1, code.data());
  EXPECT_EQ(code[0] & 3u, 3u);

  auto b2 = search::Binarizer::fit(data.data(), rows, dim,
                                   CodeLayout::k2Bit);
  // Ramp column: lo = value at rank 3 (=3), hi = value at rank 6 (=6).
  probe = {5.0f, 3.5f};
  b2.encode(probe.data(), 1, code.data());
  EXPECT_EQ((code[0] >> 2) & 3u, 1u);  // above lo, below hi
  probe = {5.0f, 6.5f};
  b2.encode(probe.data(), 1, code.data());
  EXPECT_EQ((code[0] >> 2) & 3u, 3u);  // above both
}

// ---- Index -----------------------------------------------------------------

Index make_random_index(Rng& rng, std::int64_t rows, std::int64_t dim,
                        CodeLayout layout, bool store_embeddings,
                        std::vector<float>* embeddings_out = nullptr) {
  auto embeddings = random_floats(rng, rows * dim);
  std::vector<std::uint64_t> ids(static_cast<std::size_t>(rows));
  for (std::int64_t r = 0; r < rows; ++r)
    ids[r] = 1000 + static_cast<std::uint64_t>(r);
  IndexConfig cfg;
  cfg.dim = dim;
  cfg.layout = layout;
  cfg.store_embeddings = store_embeddings;
  Index index(cfg, search::Binarizer::sign(dim, layout));
  index.add(embeddings.data(), ids.data(), rows);
  if (embeddings_out) *embeddings_out = std::move(embeddings);
  return index;
}

TEST(SearchIndex, QueryMatchesBruteForceOracle) {
  Rng rng(707);
  const std::int64_t rows = 500, dim = 48;
  Index index = make_random_index(rng, rows, dim, CodeLayout::k1Bit, false);
  QueryOptions opts;
  opts.k = 7;
  QueryScratch scratch;
  std::vector<Result> hits(7);
  for (int q = 0; q < 10; ++q) {
    const auto query = random_floats(rng, dim);
    const auto n = index.query(query.data(), opts, scratch, hits.data());
    ASSERT_EQ(n, 7);
    // Oracle: scalar-twin scan over the index's own codes + partial_sort.
    std::vector<std::uint64_t> qcode(
        static_cast<std::size_t>(index.words_per_row()));
    std::vector<float> qn = query;
    kernels::l2_normalize_rows(qn.data(), 1, dim, nullptr, 1e-12f);
    index.binarizer().encode(qn.data(), 1, qcode.data());
    std::vector<Candidate> all(static_cast<std::size_t>(rows));
    for (std::int64_t r = 0; r < rows; ++r)
      all[r] = {kernels::scalar::hamming_distance(
                    index.codes().data() + r * index.words_per_row(),
                    qcode.data(), index.words_per_row()),
                r};
    std::partial_sort(all.begin(), all.begin() + 7, all.end(),
                      search::candidate_less);
    for (int i = 0; i < 7; ++i) {
      EXPECT_EQ(hits[i].id, 1000 + static_cast<std::uint64_t>(all[i].row));
      EXPECT_EQ(hits[i].dist, all[i].dist);
    }
  }
}

TEST(SearchIndex, RerankReturnsExactCosineOrder) {
  Rng rng(808);
  const std::int64_t rows = 300, dim = 32;
  std::vector<float> embeddings;
  Index index = make_random_index(rng, rows, dim, CodeLayout::k1Bit, true,
                                  &embeddings);
  QueryOptions opts;
  opts.k = 5;
  opts.overfetch = 60;  // pool = 300 = whole index -> rerank is exact
  opts.rerank = true;
  QueryScratch scratch;
  std::vector<Result> hits(5);
  const auto query = random_floats(rng, dim);
  ASSERT_EQ(index.query(query.data(), opts, scratch, hits.data()), 5);

  const auto gt = search::cosine_ground_truth(embeddings.data(), rows,
                                              query.data(), 1, dim, 5);
  for (int i = 0; i < 5; ++i)
    EXPECT_EQ(hits[i].id, 1000 + static_cast<std::uint64_t>(gt[0][i])) << i;
  for (int i = 1; i < 5; ++i)
    EXPECT_GE(hits[i - 1].score, hits[i].score);
}

TEST(SearchIndex, ThreadedScanBitwiseParityAcrossPoolSizes) {
  Rng rng(909);
  // > 2 full scan blocks so parallel_for actually splits.
  const std::int64_t rows = 3 * Index::kScanBlock + 517, dim = 24;
  Index index = make_random_index(rng, rows, dim, CodeLayout::k2Bit, false);
  QueryOptions opts;
  opts.k = 13;
  opts.overfetch = 3;
  const auto query = random_floats(rng, dim);

  auto& pool = core::ThreadPool::instance();
  const auto original = pool.size();
  std::vector<Result> baseline(13);
  std::int64_t baseline_n = 0;
  for (std::size_t size : {1u, 2u, 3u, 8u}) {
    pool.set_size(size);
    QueryScratch scratch;
    std::vector<Result> hits(13);
    const auto n = index.query(query.data(), opts, scratch, hits.data());
    if (size == 1) {
      baseline = hits;
      baseline_n = n;
      continue;
    }
    ASSERT_EQ(n, baseline_n) << "pool=" << size;
    for (std::int64_t i = 0; i < n; ++i) {
      EXPECT_EQ(hits[i].id, baseline[i].id) << "pool=" << size;
      EXPECT_EQ(hits[i].dist, baseline[i].dist) << "pool=" << size;
      // Bitwise, not approximate: scores must survive re-partitioning.
      EXPECT_EQ(std::bit_cast<std::uint32_t>(hits[i].score),
                std::bit_cast<std::uint32_t>(baseline[i].score));
    }
  }
  pool.set_size(original);
}

TEST(SearchIndex, ZeroAllocQuerySteadyState) {
  Rng rng(1010);
  const std::int64_t rows = 2 * Index::kScanBlock, dim = 64;
  Index index = make_random_index(rng, rows, dim, CodeLayout::k1Bit, false);
  QueryOptions opts;
  opts.k = 10;
  QueryScratch scratch;
  index.prepare(opts, scratch);
  const auto query = random_floats(rng, dim);
  std::vector<Result> hits(10);
  // First query may still size lazy pieces; afterwards the path is clean.
  index.query(query.data(), opts, scratch, hits.data());
  const auto before = g_heap_allocs.load();
  for (int i = 0; i < 20; ++i)
    index.query(query.data(), opts, scratch, hits.data());
  EXPECT_EQ(g_heap_allocs.load() - before, 0u)
      << "steady-state query path must not touch the heap";
}

TEST(SearchIndex, SaveLoadRoundTripAndTruncationRegression) {
  Rng rng(1111);
  const std::int64_t rows = 200, dim = 40;
  Index index = make_random_index(rng, rows, dim, CodeLayout::k2Bit, true);
  const std::string path = testing::TempDir() + "cq_search_index.bin";
  index.save(path);

  Index loaded = Index::load(path);
  EXPECT_EQ(loaded.size(), rows);
  EXPECT_EQ(loaded.dim(), dim);
  EXPECT_EQ(loaded.layout(), CodeLayout::k2Bit);
  EXPECT_EQ(loaded.codes(), index.codes());
  EXPECT_EQ(loaded.embeddings(), index.embeddings());

  QueryOptions opts;
  opts.k = 9;
  opts.overfetch = 4;
  opts.rerank = true;
  QueryScratch s1, s2;
  std::vector<Result> a(9), b(9);
  const auto query = random_floats(rng, dim);
  ASSERT_EQ(index.query(query.data(), opts, s1, a.data()),
            loaded.query(query.data(), opts, s2, b.data()));
  for (int i = 0; i < 9; ++i) {
    EXPECT_EQ(a[i].id, b[i].id);
    EXPECT_EQ(a[i].dist, b[i].dist);
    EXPECT_EQ(a[i].score, b[i].score);
  }

  // Truncation must fail loudly, at any cut point.
  std::ifstream in(path, std::ios::binary);
  std::vector<char> bytes((std::istreambuf_iterator<char>(in)),
                          std::istreambuf_iterator<char>());
  in.close();
  for (const std::size_t keep :
       {bytes.size() - 1, bytes.size() / 2, std::size_t{10}}) {
    const std::string cut = testing::TempDir() + "cq_search_truncated.bin";
    std::ofstream out(cut, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(keep));
    out.close();
    EXPECT_THROW(Index::load(cut), CheckError) << "keep=" << keep;
  }
  // expect_eof regression: trailing garbage is corruption, not slack.
  const std::string padded = testing::TempDir() + "cq_search_padded.bin";
  std::ofstream out(padded, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  out.put('\x7f');
  out.close();
  EXPECT_THROW(Index::load(padded), CheckError);
}

TEST(SearchIndex, IncrementalAddIsQueriedImmediately) {
  Rng rng(1212);
  const std::int64_t dim = 16;
  Index index = make_random_index(rng, 50, dim, CodeLayout::k1Bit, false);
  const auto query = random_floats(rng, dim);
  // Adding the query itself (new id 9999) must make it the top hit.
  const std::uint64_t id = 9999;
  index.add(query.data(), &id, 1);
  EXPECT_EQ(index.size(), 51);
  QueryOptions opts;
  opts.k = 1;
  QueryScratch scratch;
  Result hit;
  ASSERT_EQ(index.query(query.data(), opts, scratch, &hit), 1);
  EXPECT_EQ(hit.id, id);
  EXPECT_EQ(hit.dist, 0u);
}

// ---- recall eval -----------------------------------------------------------

TEST(Recall, RerankAndMoreBitsImproveOrMatchRecall) {
  Rng rng(1313);
  const std::int64_t rows = 400, nq = 30, dim = 32;
  // Clustered data (not uniform noise) so Hamming codes carry real signal.
  std::vector<float> base(rows * dim), queries(nq * dim);
  auto fill = [&](std::vector<float>& m, std::int64_t n) {
    for (std::int64_t r = 0; r < n; ++r) {
      const std::int64_t c = r % 8;
      for (std::int64_t j = 0; j < dim; ++j)
        m[r * dim + j] = static_cast<float>(
            ((j % 8 == c) ? 1.0 : 0.0) + 0.3 * rng.normal());
    }
  };
  fill(base, rows);
  fill(queries, nq);
  search::RecallConfig cfg;
  cfg.k = 10;
  cfg.overfetch = 8;
  const auto report =
      search::recall_vs_bits(base.data(), rows, queries.data(), nq, dim, cfg);
  ASSERT_EQ(report.points.size(), 4u);
  for (const auto& p : report.points) {
    EXPECT_GT(p.recall_at_k, 0.1) << p.variant;
    EXPECT_LE(p.recall_at_k, 1.0) << p.variant;
  }
  // Reranking an overfetched pool can only improve the expected overlap.
  EXPECT_GE(report.recall("1bit_rerank") + 1e-9, report.recall("1bit"));
  EXPECT_GE(report.recall("2bit_rerank") + 1e-9, report.recall("2bit"));
}

// ---- Service (engine-backed end-to-end) ------------------------------------

constexpr std::int64_t kH = 12, kW = 12;

/// Train-warmed tiny resnet18 checkpoint shared across service tests (same
/// fixture recipe as test_serve.cpp).
const std::string& checkpoint_path() {
  static const std::string path = [] {
    Rng rng(7);
    auto enc = models::make_encoder("resnet18", rng);
    enc.backbone->set_mode(nn::Mode::kTrain);
    for (int i = 0; i < 8; ++i) {
      enc.forward(Tensor::uniform(Shape{4, 3, kH, kW}, rng));
      enc.backbone->clear_cache();
    }
    enc.backbone->set_mode(nn::Mode::kEval);
    std::string p = testing::TempDir() + "cq_search_ckpt.bin";
    models::save_module(p, *enc.backbone);
    return p;
  }();
  return path;
}

search::ServiceConfig service_config(std::size_t workers) {
  search::ServiceConfig cfg;
  cfg.engine.checkpoint = checkpoint_path();
  cfg.engine.arch = "resnet18";
  cfg.engine.in_h = kH;
  cfg.engine.in_w = kW;
  cfg.engine.workers = workers;
  cfg.engine.max_batch = 4;
  return cfg;
}

Index make_service_index(std::int64_t rows, std::int64_t dim,
                         std::uint64_t seed) {
  Rng rng(seed);
  return make_random_index(rng, rows, dim, CodeLayout::k1Bit, false);
}

TEST(SearchService, EndToEndDeterministicAcrossWorkerCounts) {
  const std::int64_t dim = 64;  // resnet18 feature_dim
  std::vector<Result> a(5), b(5);
  std::int64_t na = 0, nb = 0;
  Rng rng(42);
  const Tensor image = Tensor::uniform(Shape{1, 3, kH, kW}, rng, -1.f, 1.f);
  QueryOptions opts;
  opts.k = 5;
  for (int pass = 0; pass < 2; ++pass) {
    search::Service svc(service_config(pass == 0 ? 1 : 2),
                        make_service_index(3000, dim, 99));
    search::Service::Context ctx;
    svc.prewarm(opts, ctx);
    auto* hits = pass == 0 ? a.data() : b.data();
    auto* n = pass == 0 ? &na : &nb;
    ASSERT_EQ(svc.search(image.data(), opts, ctx, hits, n),
              serve::Status::kOk);
    svc.stop();
  }
  ASSERT_EQ(na, nb);
  ASSERT_EQ(na, 5);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(a[i].id, b[i].id) << i;
    EXPECT_EQ(a[i].dist, b[i].dist) << i;
    EXPECT_EQ(std::bit_cast<std::uint32_t>(a[i].score),
              std::bit_cast<std::uint32_t>(b[i].score));
  }
}

TEST(SearchService, ExpiredDeadlineNeverScans) {
  search::Service svc(service_config(1), make_service_index(100, 64, 5));
  search::Service::Context ctx;
  Rng rng(43);
  const Tensor image = Tensor::uniform(Shape{1, 3, kH, kW}, rng, -1.f, 1.f);
  QueryOptions opts;
  std::vector<Result> hits(10);
  std::int64_t n = 0;
  const auto already_past = serve::Clock::now() - std::chrono::seconds(1);
  EXPECT_EQ(svc.search(image.data(), opts, ctx, hits.data(), &n,
                       already_past),
            serve::Status::kTimeout);
  EXPECT_EQ(n, 0);
  EXPECT_EQ(svc.search_stats().queries, 0u);  // the scan never ran
  svc.stop();
}

TEST(SearchService, StatsJsonReportsEngineAndSearchSections) {
  search::Service svc(service_config(1), make_service_index(2000, 64, 6));
  search::Service::Context ctx;
  Rng rng(44);
  const Tensor image = Tensor::uniform(Shape{1, 3, kH, kW}, rng, -1.f, 1.f);
  QueryOptions opts;
  opts.k = 3;
  svc.prewarm(opts, ctx);
  std::vector<Result> hits(3);
  std::int64_t n = 0;
  for (int i = 0; i < 4; ++i)
    ASSERT_EQ(svc.search(image.data(), opts, ctx, hits.data(), &n),
              serve::Status::kOk);
  const auto stats = svc.search_stats();
  EXPECT_EQ(stats.queries, 4u);
  EXPECT_EQ(stats.results, 12u);
  EXPECT_EQ(stats.codes_scanned, 4u * 2000u);
  EXPECT_EQ(stats.e2e_latency.count(), 4u);
  EXPECT_GT(stats.scan_codes_per_s, 0.0);
  const std::string json = svc.stats_json();
  for (const char* key :
       {"\"engine\"", "\"search\"", "\"codes_scanned\"",
        "\"scan_codes_per_s\"", "\"candidates_per_s\"", "\"e2e_latency\"",
        "\"p99_us\"", "\"steady_heap_allocs\""})
    EXPECT_NE(json.find(key), std::string::npos) << key;
  svc.stop();
}

// The tsan target: concurrent queries against concurrent incremental adds
// must be race-free (shared vs exclusive lock on the index) while every
// query still sees a consistent snapshot (count == min(k, some valid size)).
TEST(SearchService, ConcurrentQueryAndIncrementalAdd) {
  search::Service svc(service_config(1), make_service_index(1500, 64, 8));
  const std::int64_t dim = 64;
  std::atomic<bool> go{false}, stop{false};
  std::atomic<std::uint64_t> searches{0};

  std::thread adder([&] {
    Rng rng(77);
    while (!go.load()) std::this_thread::yield();
    for (int batch = 0; batch < 40; ++batch) {
      // Pace against query progress so adds genuinely interleave with
      // scans (otherwise a single core can drain all 40 batches before the
      // queriers ever run).
      while (searches.load() < static_cast<std::uint64_t>(batch))
        std::this_thread::yield();
      std::vector<float> rows(16 * dim);
      for (auto& v : rows) v = static_cast<float>(rng.uniform(-1.0, 1.0));
      std::vector<std::uint64_t> ids(16);
      for (int i = 0; i < 16; ++i)
        ids[i] = 100000 + static_cast<std::uint64_t>(batch * 16 + i);
      svc.add(rows.data(), ids.data(), 16);
    }
    stop.store(true);
  });

  std::vector<std::thread> queriers;
  for (int t = 0; t < 3; ++t)
    queriers.emplace_back([&, t] {
      Rng rng(500 + static_cast<std::uint64_t>(t));
      QueryOptions opts;
      opts.k = 10;
      QueryScratch scratch;
      std::vector<Result> hits(10);
      std::vector<float> q(dim);
      while (!go.load()) std::this_thread::yield();
      while (!stop.load()) {
        for (auto& v : q) v = static_cast<float>(rng.uniform(-1.0, 1.0));
        const auto n =
            svc.search_features(q.data(), opts, scratch, hits.data());
        ASSERT_EQ(n, 10);
        searches.fetch_add(1);
      }
    });

  go.store(true);
  adder.join();
  for (auto& th : queriers) th.join();
  EXPECT_EQ(svc.index().size(), 1500 + 40 * 16);
  EXPECT_GT(searches.load(), 0u);
  svc.stop();
}

}  // namespace
}  // namespace cq
