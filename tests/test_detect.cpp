// Detection substrate: boxes, AP, synthetic dataset, detector head.
#include <gtest/gtest.h>

#include "detect/ap.hpp"
#include "detect/dataset.hpp"
#include "detect/head.hpp"
#include "models/resnet.hpp"
#include "util/check.hpp"

namespace cq {
namespace {

using detect::BBox;
using detect::Detection;

TEST(BBox, AreaAndValidity) {
  BBox b{0.1f, 0.2f, 0.5f, 0.6f};
  EXPECT_TRUE(b.valid());
  EXPECT_NEAR(b.area(), 0.16f, 1e-6);
  EXPECT_NEAR(b.cx(), 0.3f, 1e-6);
  BBox degenerate{0.5f, 0.5f, 0.5f, 0.5f};
  EXPECT_FALSE(degenerate.valid());
  EXPECT_FLOAT_EQ(degenerate.area(), 0.0f);
}

TEST(BBox, IouIdenticalIsOne) {
  BBox b{0.1f, 0.1f, 0.4f, 0.4f};
  EXPECT_NEAR(detect::iou(b, b), 1.0f, 1e-6);
}

TEST(BBox, IouDisjointIsZero) {
  BBox a{0.0f, 0.0f, 0.2f, 0.2f};
  BBox b{0.5f, 0.5f, 0.7f, 0.7f};
  EXPECT_FLOAT_EQ(detect::iou(a, b), 0.0f);
}

TEST(BBox, IouHalfOverlap) {
  BBox a{0.0f, 0.0f, 0.2f, 0.2f};
  BBox b{0.1f, 0.0f, 0.3f, 0.2f};
  // intersection = 0.1*0.2 = 0.02; union = 0.04+0.04-0.02 = 0.06.
  EXPECT_NEAR(detect::iou(a, b), 0.02f / 0.06f, 1e-5);
}

TEST(BBox, IouSymmetric) {
  BBox a{0.0f, 0.1f, 0.5f, 0.9f};
  BBox b{0.2f, 0.0f, 0.8f, 0.5f};
  EXPECT_FLOAT_EQ(detect::iou(a, b), detect::iou(b, a));
}

TEST(BBox, FromCenterClamps) {
  BBox b = detect::box_from_center(0.05f, 0.5f, 0.3f, 0.4f);
  EXPECT_FLOAT_EQ(b.x0, 0.0f);  // clamped at the border
  EXPECT_NEAR(b.x1, 0.2f, 1e-5);
}

TEST(Ap, PerfectDetectionsScoreOne) {
  std::vector<BBox> gt = {{0.1f, 0.1f, 0.3f, 0.3f}, {0.5f, 0.5f, 0.8f, 0.8f}};
  std::vector<Detection> dets = {{0.9f, gt[0], 0}, {0.8f, gt[1], 1}};
  EXPECT_NEAR(detect::average_precision(dets, gt, 0.5f), 1.0f, 1e-5);
  const auto r = detect::evaluate_ap(dets, gt);
  EXPECT_NEAR(r.ap, 1.0f, 1e-5);
  EXPECT_NEAR(r.ap50, 1.0f, 1e-5);
  EXPECT_NEAR(r.ap75, 1.0f, 1e-5);
}

TEST(Ap, CompletelyWrongBoxesScoreZero) {
  std::vector<BBox> gt = {{0.1f, 0.1f, 0.3f, 0.3f}};
  std::vector<Detection> dets = {{0.9f, {0.6f, 0.6f, 0.9f, 0.9f}, 0}};
  EXPECT_FLOAT_EQ(detect::average_precision(dets, gt, 0.5f), 0.0f);
}

TEST(Ap, LooseBoxPassesAp50NotAp75) {
  // A detection whose IoU with GT is ~0.6.
  std::vector<BBox> gt = {{0.0f, 0.0f, 0.5f, 0.5f}};
  std::vector<Detection> dets = {{0.9f, {0.0f, 0.0f, 0.5f, 0.35f}, 0}};
  const float i = detect::iou(dets[0].box, gt[0]);
  ASSERT_GT(i, 0.5f);
  ASSERT_LT(i, 0.75f);
  const auto r = detect::evaluate_ap(dets, gt);
  EXPECT_NEAR(r.ap50, 1.0f, 1e-5);
  EXPECT_FLOAT_EQ(r.ap75, 0.0f);
  EXPECT_LT(r.ap, r.ap50);
}

TEST(Ap, ConfidenceRankingMatters) {
  // Image 0: good box at LOW confidence; image 1: bad box at HIGH
  // confidence. Precision at rank 1 is 0 -> AP < 1 even though one match.
  std::vector<BBox> gt = {{0.1f, 0.1f, 0.3f, 0.3f}, {0.5f, 0.5f, 0.8f, 0.8f}};
  std::vector<Detection> dets = {{0.2f, gt[0], 0},
                                 {0.9f, {0.0f, 0.6f, 0.1f, 0.9f}, 1}};
  const float ap = detect::average_precision(dets, gt, 0.5f);
  EXPECT_NEAR(ap, 0.25f, 1e-5);  // recall 0.5 at precision 0.5
}

TEST(Ap, RejectsBadImageIds) {
  std::vector<BBox> gt = {{0.1f, 0.1f, 0.3f, 0.3f}};
  std::vector<Detection> dets = {{0.9f, gt[0], 5}};
  EXPECT_THROW(detect::average_precision(dets, gt, 0.5f), CheckError);
}

TEST(DetectionDataset, GeneratesValidBoxes) {
  detect::DetectionConfig cfg;
  Rng rng(1);
  const auto ds = detect::make_detection_dataset(cfg, 20, rng);
  ASSERT_EQ(ds.size(), 20);
  for (std::int64_t i = 0; i < ds.size(); ++i) {
    const auto& box = ds.boxes[static_cast<std::size_t>(i)];
    EXPECT_TRUE(box.valid());
    EXPECT_GE(box.x0, 0.0f);
    EXPECT_LE(box.x1, 1.0f);
    EXPECT_GE(box.y0, 0.0f);
    EXPECT_LE(box.y1, 1.0f);
    EXPECT_EQ(ds.images[static_cast<std::size_t>(i)].shape(),
              Shape({3, cfg.synth.height, cfg.synth.width}));
  }
}

TEST(DetectionDataset, DeterministicGivenSeed) {
  detect::DetectionConfig cfg;
  Rng a(2), b(2);
  const auto d1 = detect::make_detection_dataset(cfg, 5, a);
  const auto d2 = detect::make_detection_dataset(cfg, 5, b);
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_FLOAT_EQ(d1.boxes[i].x0, d2.boxes[i].x0);
    EXPECT_FLOAT_EQ(d1.boxes[i].y1, d2.boxes[i].y1);
  }
}

TEST(Detector, TrainingImprovesApOverUntrained) {
  detect::DetectionConfig cfg;
  Rng rng(3);
  const auto train = detect::make_detection_dataset(cfg, 48, rng);
  const auto test = detect::make_detection_dataset(cfg, 24, rng);

  Rng model_rng(4);
  auto policy = std::make_shared<quant::QuantPolicy>();
  std::int64_t trunk_dim = 0;
  auto trunk = models::build_resnet(models::resnet18_config(), policy,
                                    model_rng, &trunk_dim,
                                    /*include_gap=*/false);

  detect::DetectorConfig dcfg;
  dcfg.epochs = 10;
  detect::Detector detector(*trunk, trunk_dim, dcfg);
  const auto before = detect::evaluate_ap(detector.detect(test), test.boxes);
  detector.train(train);
  const auto after = detect::evaluate_ap(detector.detect(test), test.boxes);
  EXPECT_GE(after.ap50, before.ap50);
  EXPECT_GT(after.ap50, 0.0f);
}

TEST(Detector, EmitsOneDetectionPerImage) {
  detect::DetectionConfig cfg;
  Rng rng(5);
  const auto test = detect::make_detection_dataset(cfg, 7, rng);
  Rng model_rng(6);
  auto policy = std::make_shared<quant::QuantPolicy>();
  std::int64_t trunk_dim = 0;
  auto trunk = models::build_resnet(models::resnet18_config(), policy,
                                    model_rng, &trunk_dim, false);
  detect::Detector detector(*trunk, trunk_dim, {});
  const auto dets = detector.detect(test);
  ASSERT_EQ(dets.size(), 7u);
  for (std::size_t i = 0; i < dets.size(); ++i) {
    EXPECT_EQ(dets[i].image_id, static_cast<std::int64_t>(i));
    EXPECT_GE(dets[i].confidence, 0.0f);
    EXPECT_LE(dets[i].confidence, 1.0f);
    EXPECT_TRUE(dets[i].box.valid());
  }
}

}  // namespace
}  // namespace cq
