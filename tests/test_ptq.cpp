// CPT-V contrastive post-training quantization (quant/ptq.hpp): the
// determinism contract — fixed-seed calibration emits byte-identical scale
// tables and bitwise-stable quantized forwards across independent runs —
// plus the loss-monotonicity accept rule, the ScaleTable disk round trip,
// and the serve-instance apply path.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <vector>

#include "graph/executor.hpp"
#include "models/encoder.hpp"
#include "quant/ptq.hpp"
#include "serve/model.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace cq {
namespace {

constexpr std::int64_t kImg = 16;
constexpr std::int64_t kBatch = 8;

models::Encoder eval_vit(std::uint64_t seed) {
  Rng rng(seed);
  auto enc = models::make_encoder("vit", rng);
  enc.policy->set_full_precision();
  enc.backbone->set_mode(nn::Mode::kEval);
  return enc;
}

Tensor calib_batch(std::uint64_t seed) {
  Rng rng(seed);
  return Tensor::uniform(Shape{kBatch, 3, kImg, kImg}, rng, -1.0f, 1.0f);
}

quant::PtqConfig fast_config() {
  quant::PtqConfig cfg;
  cfg.rounds = 1;
  cfg.candidates = 3;
  return cfg;
}

// One full calibration from a fresh plan; returns the result plus the
// quantized embeddings the calibrated plan produces.
quant::PtqResult run_calibration(const Tensor& calib, const Tensor& zfp,
                                 Tensor* zq_out) {
  auto enc = eval_vit(61);
  auto qm = graph::compile(*enc.backbone, Shape{3, kImg, kImg},
                           graph::CompileOptions{kBatch,
                                                 graph::Precision::kInt8,
                                                 true});
  auto result = quant::calibrate(qm, calib, zfp, fast_config());
  if (zq_out != nullptr) *zq_out = qm.forward(calib);  // refcounted copy
  return result;
}

TEST(Ptq, L2NormalizeRows) {
  Rng rng(67);
  Tensor x = Tensor::uniform(Shape{5, 9}, rng, -3.0f, 3.0f);
  const Tensor z = quant::l2_normalize_rows(x);
  for (std::int64_t i = 0; i < 5; ++i) {
    double sq = 0.0;
    for (std::int64_t j = 0; j < 9; ++j)
      sq += static_cast<double>(z.at(i, j)) * z.at(i, j);
    EXPECT_NEAR(sq, 1.0, 1e-5) << i;
  }
  // All-zero rows stay zero instead of dividing by zero.
  Tensor zero = Tensor::zeros(Shape{2, 4});
  const Tensor zz = quant::l2_normalize_rows(zero);
  for (std::int64_t i = 0; i < zz.numel(); ++i) EXPECT_EQ(zz.data()[i], 0.0f);
}

// The accept rule only ever keeps loss-reducing proposals, so the final
// InfoNCE can never exceed the min-max starting point.
TEST(Ptq, CalibrationNeverIncreasesLoss) {
  auto enc = eval_vit(61);
  const Tensor calib = calib_batch(71);
  const Tensor zfp = enc.backbone->forward(calib);
  const auto result = run_calibration(calib, zfp, nullptr);
  EXPECT_GT(result.proposed, 0);
  EXPECT_LE(result.final_loss, result.initial_loss);
  EXPECT_EQ(result.table.labels.size(), result.table.scales.size());
  EXPECT_EQ(result.table.labels.size(), 8u);  // 2 blocks x 4 int8 linears
}

// Fixed seed => byte-identical scale tables from two independent fresh-plan
// calibrations (the satellite's headline gate).
TEST(Ptq, FixedSeedTablesAreByteIdentical) {
  auto enc = eval_vit(61);
  const Tensor calib = calib_batch(71);
  const Tensor zfp = enc.backbone->forward(calib);
  Tensor zq1, zq2;
  const auto r1 = run_calibration(calib, zfp, &zq1);
  const auto r2 = run_calibration(calib, zfp, &zq2);
  ASSERT_EQ(r1.table.labels, r2.table.labels);
  ASSERT_EQ(r1.table.scales.size(), r2.table.scales.size());
  for (std::size_t e = 0; e < r1.table.scales.size(); ++e) {
    ASSERT_EQ(r1.table.scales[e].size(), r2.table.scales[e].size()) << e;
    for (std::size_t c = 0; c < r1.table.scales[e].size(); ++c)
      EXPECT_EQ(r1.table.scales[e][c], r2.table.scales[e][c]) << e << "," << c;
  }
  EXPECT_EQ(r1.accepted, r2.accepted);
  EXPECT_EQ(r1.final_loss, r2.final_loss);
  // ...and the calibrated plans' quantized embeddings are bitwise equal.
  ASSERT_EQ(zq1.shape(), zq2.shape());
  for (std::int64_t i = 0; i < zq1.numel(); ++i)
    EXPECT_EQ(zq1.data()[i], zq2.data()[i]) << i;
}

// ScaleTable disk round trip, then apply() onto a fresh min-max plan: the
// re-applied plan must reproduce the calibrated plan's forwards bitwise.
TEST(Ptq, SaveLoadApplyRoundTripBitwise) {
  auto enc = eval_vit(61);
  const Tensor calib = calib_batch(71);
  const Tensor zfp = enc.backbone->forward(calib);
  Tensor zq_cal;
  const auto result = run_calibration(calib, zfp, &zq_cal);

  const std::string path = "test_ptq_scales.bin";
  result.table.save(path);
  const auto loaded = quant::ScaleTable::load(path);
  std::remove(path.c_str());
  ASSERT_EQ(loaded.labels, result.table.labels);

  auto enc2 = eval_vit(61);  // same checkpoint seed -> same weights
  auto qm = graph::compile(*enc2.backbone, Shape{3, kImg, kImg},
                           graph::CompileOptions{kBatch,
                                                 graph::Precision::kInt8,
                                                 true});
  quant::apply(qm, loaded);
  const Tensor& zq_applied = qm.forward(calib);
  ASSERT_EQ(zq_applied.shape(), zq_cal.shape());
  for (std::int64_t i = 0; i < zq_cal.numel(); ++i)
    EXPECT_EQ(zq_applied.data()[i], zq_cal.data()[i]) << i;
}

// The serve path: ModelInstance::compiled() exposes the plan so a calibrated
// table lands on the exact instance the engine runs.
TEST(Ptq, AppliesThroughServeInstance) {
  auto enc = eval_vit(61);
  const Tensor calib = calib_batch(71);
  const Tensor zfp = enc.backbone->forward(calib);
  Tensor zq_cal;
  const auto result = run_calibration(calib, zfp, &zq_cal);

  auto enc2 = eval_vit(61);
  auto inst = serve::make_instance(serve::InstanceKind::kInt8, *enc2.backbone,
                                   Shape{3, kImg, kImg}, kBatch);
  ASSERT_NE(inst->compiled(), nullptr);
  quant::apply(*inst->compiled(), result.table);
  const Tensor& zq_served = inst->forward(calib);
  ASSERT_EQ(zq_served.shape(), zq_cal.shape());
  for (std::int64_t i = 0; i < zq_cal.numel(); ++i)
    EXPECT_EQ(zq_served.data()[i], zq_cal.data()[i]) << i;
}

TEST(Ptq, ApplyRejectsUnknownLabel) {
  auto enc = eval_vit(61);
  auto qm = graph::compile(*enc.backbone, Shape{3, kImg, kImg},
                           graph::CompileOptions{2, graph::Precision::kInt8,
                                                 true});
  quant::ScaleTable bogus;
  bogus.labels.push_back("no_such_layer");
  bogus.scales.push_back({1.0f});
  EXPECT_THROW(quant::apply(qm, bogus), CheckError);
}

TEST(Ptq, CalibrateValidatesInputs) {
  auto enc = eval_vit(61);
  auto qm = graph::compile(*enc.backbone, Shape{3, kImg, kImg},
                           graph::CompileOptions{4, graph::Precision::kInt8,
                                                 true});
  Rng rng(73);
  const Tensor calib = Tensor::uniform(Shape{4, 3, kImg, kImg}, rng,
                                       -1.0f, 1.0f);
  const Tensor zfp = enc.backbone->forward(calib);
  // Single sample: no negatives for InfoNCE.
  Tensor one(Shape{1, 3, kImg, kImg});
  std::copy(calib.data(), calib.data() + 3 * kImg * kImg, one.data());
  Tensor zfp_one(Shape{1, zfp.dim(1)});
  std::copy(zfp.data(), zfp.data() + zfp.dim(1), zfp_one.data());
  EXPECT_THROW(quant::calibrate(qm, one, zfp_one, fast_config()), CheckError);
  // Batch beyond the plan's max.
  Rng rng2(79);
  const Tensor big = Tensor::uniform(Shape{6, 3, kImg, kImg}, rng2,
                                     -1.0f, 1.0f);
  EXPECT_THROW(quant::calibrate(qm, big, zfp, fast_config()), CheckError);
  // An fp32 plan has no int8 nodes to calibrate.
  auto enc2 = eval_vit(61);
  auto fp = graph::compile(*enc2.backbone, Shape{3, kImg, kImg},
                           graph::CompileOptions{4, graph::Precision::kF32,
                                                 true});
  EXPECT_THROW(quant::calibrate(fp, calib, zfp, fast_config()), CheckError);
}

// requantize_node rejects out-of-range indices, fp32 nodes, and wrong-width
// scale vectors — the executor-side guardrails PTQ leans on.
TEST(Ptq, RequantizeNodeValidates) {
  auto enc = eval_vit(61);
  auto qm = graph::compile(*enc.backbone, Shape{3, kImg, kImg},
                           graph::CompileOptions{2, graph::Precision::kInt8,
                                                 true});
  const auto nodes = qm.int8_nodes();
  ASSERT_FALSE(nodes.empty());
  const auto idx = nodes.front();
  std::vector<float> wrong(qm.node_scales(idx).size() + 1, 0.01f);
  EXPECT_THROW(qm.requantize_node(idx, wrong), CheckError);
  EXPECT_THROW(qm.requantize_node(qm.graph().nodes.size(), {0.01f}),
               CheckError);
}

}  // namespace
}  // namespace cq
