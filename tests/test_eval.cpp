// Evaluation protocols: fine-tuning, linear eval, metrics.
#include <gtest/gtest.h>

#include "data/synth.hpp"
#include "eval/classifier.hpp"
#include "eval/metrics.hpp"
#include "util/check.hpp"

namespace cq {
namespace {

struct Splits {
  data::Dataset train;
  data::Dataset test;
};

Splits tiny_splits() {
  auto cfg = data::synth_cifar_config();
  Rng rng(cfg.seed + 9);
  Splits s;
  s.train = data::make_synth_dataset(cfg, 64, rng);
  s.test = data::make_synth_dataset(cfg, 48, rng);
  return s;
}

eval::EvalConfig quick_eval() {
  eval::EvalConfig cfg;
  cfg.epochs = 8;
  cfg.batch_size = 16;
  cfg.lr = 0.05f;
  return cfg;
}

TEST(ExtractFeatures, ShapeAndPolicyRestored) {
  Rng rng(1);
  auto enc = models::make_encoder("resnet18", rng);
  const auto s = tiny_splits();
  enc.policy->set_bits(9);
  Tensor f = eval::extract_features(enc, s.test, 4);
  EXPECT_EQ(f.shape(), Shape({s.test.size(), enc.feature_dim}));
  EXPECT_FALSE(enc.policy->active());  // restored to FP
}

TEST(FinetuneEval, BeatsChanceOnEasyData) {
  Rng rng(2);
  auto enc = models::make_encoder("resnet18", rng);
  const auto s = tiny_splits();
  const auto result = eval::finetune_eval(enc, s.train, s.test, quick_eval());
  const float chance = 100.0f / static_cast<float>(s.train.num_classes);
  EXPECT_GT(result.test_accuracy, chance);
}

TEST(FinetuneEval, RestoresPretrainedEncoderState) {
  Rng rng(3);
  auto enc = models::make_encoder("resnet18", rng);
  const auto before = nn::snapshot_state(*enc.backbone);
  const auto s = tiny_splits();
  eval::finetune_eval(enc, s.train, s.test, quick_eval());
  const auto after = nn::snapshot_state(*enc.backbone);
  ASSERT_EQ(before.size(), after.size());
  for (std::size_t i = 0; i < before.size(); ++i)
    for (std::int64_t j = 0; j < before[i].numel(); ++j)
      ASSERT_FLOAT_EQ(before[i][j], after[i][j]);
}

TEST(FinetuneEval, FourBitPathRuns) {
  Rng rng(4);
  auto enc = models::make_encoder("resnet18", rng);
  const auto s = tiny_splits();
  auto cfg = quick_eval();
  cfg.eval_bits = 4;
  cfg.epochs = 4;
  const auto result = eval::finetune_eval(enc, s.train, s.test, cfg);
  EXPECT_GE(result.test_accuracy, 0.0f);
  EXPECT_LE(result.test_accuracy, 100.0f);
  EXPECT_FALSE(enc.policy->active());
}

TEST(FinetuneEval, RejectsClassCountMismatch) {
  Rng rng(5);
  auto enc = models::make_encoder("resnet18", rng);
  auto s = tiny_splits();
  s.test.num_classes = s.train.num_classes + 1;
  EXPECT_THROW(eval::finetune_eval(enc, s.train, s.test, quick_eval()),
               CheckError);
}

TEST(LinearEval, RunsAndLeavesEncoderUntouched) {
  Rng rng(6);
  auto enc = models::make_encoder("resnet18", rng);
  const auto before = nn::snapshot_state(*enc.backbone);
  const auto s = tiny_splits();
  auto cfg = quick_eval();
  cfg.epochs = 20;
  const auto result = eval::linear_eval(enc, s.train, s.test, cfg);
  EXPECT_GE(result.test_accuracy, 0.0f);
  const auto after = nn::snapshot_state(*enc.backbone);
  for (std::size_t i = 0; i < before.size(); ++i)
    for (std::int64_t j = 0; j < before[i].numel(); ++j)
      ASSERT_FLOAT_EQ(before[i][j], after[i][j]);
}

TEST(Metrics, Top1Accuracy) {
  Tensor logits(Shape{3, 2}, {2.0f, 0.0f, 0.0f, 2.0f, 0.0f, 2.0f});
  EXPECT_FLOAT_EQ(eval::top1_accuracy(logits, {0, 1, 0}), 100.0f * 2 / 3);
}

TEST(Metrics, ConfusionMatrixBasics) {
  eval::ConfusionMatrix cm(3);
  cm.add(0, 0);
  cm.add(0, 1);
  cm.add(1, 1);
  cm.add(2, 2);
  EXPECT_EQ(cm.total(), 4);
  EXPECT_EQ(cm.count(0, 1), 1);
  EXPECT_FLOAT_EQ(cm.accuracy(), 75.0f);
  const auto recall = cm.per_class_recall();
  EXPECT_FLOAT_EQ(recall[0], 50.0f);
  EXPECT_FLOAT_EQ(recall[1], 100.0f);
}

TEST(Metrics, ConfusionRejectsOutOfRange) {
  eval::ConfusionMatrix cm(2);
  EXPECT_THROW(cm.add(2, 0), CheckError);
  EXPECT_THROW(cm.add(0, -1), CheckError);
}

TEST(Metrics, EmptyClassRecallIsZero) {
  eval::ConfusionMatrix cm(2);
  cm.add(0, 0);
  EXPECT_FLOAT_EQ(cm.per_class_recall()[1], 0.0f);
}

}  // namespace
}  // namespace cq
