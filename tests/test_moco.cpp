// MoCo trainer and queue-based InfoNCE loss.
#include <gtest/gtest.h>

#include <cmath>

#include "core/losses.hpp"
#include "core/moco.hpp"
#include "data/synth.hpp"
#include "tensor/ops.hpp"
#include "testutil.hpp"
#include "util/check.hpp"

namespace cq {
namespace {

data::Dataset tiny_dataset(std::int64_t n = 24) {
  auto cfg = data::synth_cifar_config();
  Rng rng(cfg.seed + 3);
  return data::make_synth_dataset(cfg, n, rng);
}

core::PretrainConfig tiny_config(core::CqVariant variant) {
  core::PretrainConfig cfg;
  cfg.variant = variant;
  cfg.precisions = quant::PrecisionSet::range(6, 16);
  cfg.epochs = 2;
  cfg.batch_size = 8;
  cfg.lr = 0.05f;
  cfg.warmup_epochs = 0;
  cfg.proj_hidden = 16;
  cfg.proj_dim = 8;
  cfg.moco_queue = 32;
  cfg.byol_ema = 0.9f;  // reused as the key-encoder momentum
  return cfg;
}

TEST(InfoNceQueue, ValueFiniteAndPositive) {
  Rng rng(1);
  Tensor q = Tensor::randn(Shape{4, 6}, rng);
  Tensor k = Tensor::randn(Shape{4, 6}, rng);
  Tensor queue = ops::l2_normalize_rows(Tensor::randn(Shape{16, 6}, rng));
  const auto loss = core::info_nce_queue(q, k, queue, 0.5f);
  EXPECT_TRUE(std::isfinite(loss.value));
  EXPECT_GT(loss.value, 0.0f);
}

TEST(InfoNceQueue, AlignedKeysScoreLowerThanRandom) {
  Rng rng(2);
  Tensor q = Tensor::randn(Shape{6, 8}, rng);
  Tensor queue = ops::l2_normalize_rows(Tensor::randn(Shape{32, 8}, rng));
  const float aligned = core::info_nce_queue(q, q, queue, 0.2f).value;
  Tensor k = Tensor::randn(Shape{6, 8}, rng);
  const float random = core::info_nce_queue(q, k, queue, 0.2f).value;
  EXPECT_LT(aligned, random);
}

TEST(InfoNceQueue, KeyGradientIsZero) {
  Rng rng(3);
  Tensor q = Tensor::randn(Shape{3, 5}, rng);
  Tensor k = Tensor::randn(Shape{3, 5}, rng);
  Tensor queue = ops::l2_normalize_rows(Tensor::randn(Shape{8, 5}, rng));
  const auto loss = core::info_nce_queue(q, k, queue, 0.5f);
  EXPECT_FLOAT_EQ(ops::norm(loss.grad_b), 0.0f);
  EXPECT_GT(ops::norm(loss.grad_a), 0.0f);
}

TEST(InfoNceQueue, GradientMatchesFiniteDifferences) {
  Rng rng(4);
  Tensor q = Tensor::randn(Shape{3, 4}, rng);
  Tensor k = Tensor::randn(Shape{3, 4}, rng);
  Tensor queue = ops::l2_normalize_rows(Tensor::randn(Shape{6, 4}, rng));
  const auto loss = core::info_nce_queue(q, k, queue, 0.5f);
  test::check_loss_gradient(
      [&](const Tensor& z) {
        return static_cast<double>(
            core::info_nce_queue(z, k, queue, 0.5f).value);
      },
      q, loss.grad_a);
}

TEST(InfoNceQueue, RejectsMismatchedDims) {
  Rng rng(5);
  Tensor q = Tensor::randn(Shape{3, 4}, rng);
  Tensor k = Tensor::randn(Shape{3, 4}, rng);
  Tensor queue = Tensor::randn(Shape{8, 5}, rng);
  EXPECT_THROW(core::info_nce_queue(q, k, queue, 0.5f), CheckError);
}

TEST(MocoTrainer, VanillaRunsAndStaysFinite) {
  const auto ds = tiny_dataset();
  Rng rng(6);
  auto enc = models::make_encoder("resnet18", rng);
  core::MocoCqTrainer trainer(enc, tiny_config(core::CqVariant::kVanilla));
  const auto stats = trainer.train(ds);
  EXPECT_TRUE(std::isfinite(stats.final_loss));
  EXPECT_FALSE(stats.diverged);
}

TEST(MocoTrainer, CqARunsWithQuantization) {
  const auto ds = tiny_dataset();
  Rng rng(7);
  auto enc = models::make_encoder("resnet18", rng);
  core::MocoCqTrainer trainer(enc, tiny_config(core::CqVariant::kCqA));
  const auto stats = trainer.train(ds);
  EXPECT_FALSE(stats.diverged);
}

TEST(MocoTrainer, RejectsUnsupportedVariants) {
  Rng rng(8);
  auto enc = models::make_encoder("resnet18", rng);
  EXPECT_THROW(
      core::MocoCqTrainer(enc, tiny_config(core::CqVariant::kCqC)),
      CheckError);
}

TEST(MocoTrainer, QueueRowsStayNormalized) {
  const auto ds = tiny_dataset();
  Rng rng(9);
  auto enc = models::make_encoder("resnet18", rng);
  core::MocoCqTrainer trainer(enc, tiny_config(core::CqVariant::kVanilla));
  trainer.train(ds);
  const Tensor& queue = trainer.queue();
  for (std::int64_t r = 0; r < queue.dim(0); ++r) {
    double s = 0.0;
    for (std::int64_t c = 0; c < queue.dim(1); ++c)
      s += static_cast<double>(queue.at(r, c)) * queue.at(r, c);
    EXPECT_NEAR(s, 1.0, 1e-3);
  }
}

TEST(MocoTrainer, QueueCursorAdvancesAndWraps) {
  const auto ds = tiny_dataset(16);
  Rng rng(10);
  auto enc = models::make_encoder("resnet18", rng);
  auto cfg = tiny_config(core::CqVariant::kVanilla);
  cfg.moco_queue = 12;  // batch 8, 2 batches/epoch, 2 epochs = 32 keys
  core::MocoCqTrainer trainer(enc, cfg);
  trainer.train(ds);
  // 32 keys into a 12-slot ring: cursor = 32 mod 12 = 8.
  EXPECT_EQ(trainer.queue_cursor(), 8);
}

TEST(MocoTrainer, LossDecreasesAfterQueueWarmup) {
  // The queue starts with random (easy) negatives, so the loss *rises*
  // while real keys replace them; compare against the post-warmup epoch.
  const auto ds = tiny_dataset(32);
  Rng rng(11);
  auto enc = models::make_encoder("resnet18", rng);
  auto cfg = tiny_config(core::CqVariant::kVanilla);
  cfg.epochs = 12;
  core::MocoCqTrainer trainer(enc, cfg);
  const auto stats = trainer.train(ds);
  ASSERT_GE(stats.epoch_loss.size(), 12u);
  EXPECT_LT(stats.epoch_loss.back(), stats.epoch_loss[2]);
}

TEST(MocoTrainer, NoPendingCachesAfterTraining) {
  const auto ds = tiny_dataset();
  Rng rng(12);
  auto enc = models::make_encoder("resnet18", rng);
  core::MocoCqTrainer trainer(enc, tiny_config(core::CqVariant::kCqA));
  trainer.train(ds);
  std::size_t pending = 0;
  std::function<void(nn::Module&)> count = [&](nn::Module& m) {
    pending += m.pending_caches();
    m.visit_children(count);
  };
  count(*enc.backbone);
  EXPECT_EQ(pending, 0u);
}

}  // namespace
}  // namespace cq
