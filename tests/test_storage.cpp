// Storage/pool semantics: copy-on-write aliasing, buffer reuse, and
// allocation accounting — including the steady-state "zero churn" property
// of full training loops at 2 and 4 branches per iteration.
#include <gtest/gtest.h>

#include <utility>

#include "core/simclr.hpp"
#include "data/synth.hpp"
#include "tensor/ops.hpp"
#include "tensor/storage.hpp"
#include "tensor/tensor.hpp"
#include "util/check.hpp"

namespace cq {
namespace {

const float* raw(const Tensor& t) { return t.data(); }

TEST(Storage, AcquireGivesUniqueBuffer) {
  Storage s = Storage::acquire(100);
  EXPECT_TRUE(static_cast<bool>(s));
  EXPECT_TRUE(s.unique());
  EXPECT_GE(s.capacity(), 100);
  Storage t = s;
  EXPECT_EQ(s.use_count(), 2u);
  EXPECT_EQ(s.data(), t.data());
  t.reset();
  EXPECT_TRUE(s.unique());
}

TEST(Storage, MoveStealsWithoutTouchingPool) {
  tensor::reset_alloc_counters();
  Storage s = Storage::acquire(64);
  const float* p = s.data();
  Storage t = std::move(s);
  EXPECT_EQ(t.data(), p);
  EXPECT_FALSE(static_cast<bool>(s));
  const auto stats = tensor::alloc_stats();
  EXPECT_EQ(stats.pool_hits + stats.pool_misses, 1u);  // only the acquire
}

TEST(TensorCow, CopySharesUntilFirstWrite) {
  Tensor a = Tensor::from({1.0f, 2.0f, 3.0f});
  Tensor b = a;
  EXPECT_TRUE(a.shares_storage());
  EXPECT_TRUE(b.shares_storage());
  EXPECT_EQ(raw(a), raw(b));  // const reads do not detach

  b[0] = 9.0f;  // non-const access detaches b
  EXPECT_NE(raw(a), raw(b));
  EXPECT_FALSE(a.shares_storage());
  EXPECT_FLOAT_EQ(a[0], 1.0f);
  EXPECT_FLOAT_EQ(b[0], 9.0f);
  EXPECT_FLOAT_EQ(b[1], 2.0f);  // detach copied the old contents
}

TEST(TensorCow, ReshapeIsZeroCopyAndCowSafe) {
  Tensor m = Tensor::from({1.0f, 2.0f, 3.0f, 4.0f});
  Tensor r = m.reshape(Shape{2, 2});
  EXPECT_EQ(raw(m), raw(r));  // no data copied

  r.at(0, 0) = 7.0f;  // write through the view detaches it
  EXPECT_NE(raw(m), raw(r));
  EXPECT_FLOAT_EQ(m[0], 1.0f);
  EXPECT_FLOAT_EQ(r.at(0, 0), 7.0f);
  EXPECT_FLOAT_EQ(r.at(1, 1), 4.0f);
}

TEST(TensorCow, FillDetachesWithoutCopy) {
  Tensor a = Tensor::from({1.0f, 2.0f});
  Tensor b = a;
  b.fill(5.0f);
  EXPECT_FLOAT_EQ(a[0], 1.0f);
  EXPECT_FLOAT_EQ(b[0], 5.0f);
  EXPECT_FLOAT_EQ(b[1], 5.0f);
}

TEST(TensorReuse, ResizeKeepsBufferWhenUniqueAndBigEnough) {
  Tensor t = Tensor::empty(Shape{100});  // bucket capacity 128
  const float* p = raw(t);
  t.resize(Shape{60});
  EXPECT_EQ(raw(t), p);
  t.resize(Shape{10, 12});  // 120 still fits the 128-float bucket
  EXPECT_EQ(raw(t), p);
  EXPECT_EQ(t.shape(), (Shape{10, 12}));
  t.resize(Shape{300});  // outgrows the bucket
  EXPECT_NE(raw(t), p);
}

TEST(TensorReuse, ResizeDetachesWhenShared) {
  Tensor a = Tensor::empty(Shape{64});
  a.fill(3.0f);
  Tensor b = a;
  b.resize(Shape{64});  // shared storage may not be clobbered
  EXPECT_NE(raw(a), raw(b));
  EXPECT_FLOAT_EQ(a[0], 3.0f);
}

TEST(TensorReuse, LikeMatchesShapeWithFreshStorage) {
  Tensor a = Tensor::empty(Shape{3, 5});
  Tensor b = a.like();
  EXPECT_TRUE(a.same_shape(b));
  EXPECT_NE(raw(a), raw(b));
}

TEST(Pool, RecyclesReleasedBuffersBySizeBucket) {
  tensor::reset_alloc_counters();
  const float* released = nullptr;
  {
    Tensor t = Tensor::empty(Shape{1000});
    released = raw(t);
  }
  // Same power-of-two bucket (1024 floats) -> the parked block comes back.
  Tensor u = Tensor::empty(Shape{900});
  EXPECT_EQ(raw(u), released);
  EXPECT_GE(tensor::alloc_stats().pool_hits, 1u);
}

TEST(Pool, GaugesTrackLiveAndPooledBytes) {
  tensor::trim_pool();  // start from an empty pool so deltas are exact
  const auto before = tensor::alloc_stats();
  {
    Tensor t = Tensor::empty(Shape{1024});  // exactly one 4096-byte bucket
    const auto during = tensor::alloc_stats();
    EXPECT_EQ(during.live_bytes - before.live_bytes, 4096);
    EXPECT_GE(during.peak_live_bytes, during.live_bytes);
  }
  const auto after = tensor::alloc_stats();
  EXPECT_EQ(after.live_bytes, before.live_bytes);
  EXPECT_EQ(after.pooled_bytes - before.pooled_bytes, 4096);
}

TEST(Pool, TrimReleasesParkedBlocks) {
  { Tensor t = Tensor::empty(Shape{2048}); }
  const auto freed = tensor::trim_pool();
  EXPECT_GE(freed, static_cast<std::int64_t>(2048 * sizeof(float)));
  EXPECT_EQ(tensor::alloc_stats().pooled_bytes, 0);
}

TEST(OpsInto, ElementwiseToleratesAliasedDestination) {
  Tensor a = Tensor::from({1.0f, -2.0f, 3.0f});
  Tensor b = a;  // shares storage with a
  ops::relu_into(a, b);
  EXPECT_FLOAT_EQ(a[1], -2.0f);  // source untouched
  EXPECT_FLOAT_EQ(b[0], 1.0f);
  EXPECT_FLOAT_EQ(b[1], 0.0f);
  EXPECT_FLOAT_EQ(b[2], 3.0f);

  ops::add_into(a, a, a);  // full self-alias runs in place
  EXPECT_FLOAT_EQ(a[0], 2.0f);
  EXPECT_FLOAT_EQ(a[1], -4.0f);
  EXPECT_FLOAT_EQ(a[2], 6.0f);
}

TEST(OpsInto, ReusesDestinationStorageAcrossCalls) {
  Tensor a = Tensor::ones(Shape{8, 8});
  Tensor b = Tensor::ones(Shape{8, 8});
  Tensor out;
  ops::matmul_into(a, b, out);
  const float* p = raw(out);
  EXPECT_FLOAT_EQ(out.at(0, 0), 8.0f);
  tensor::reset_alloc_counters();
  ops::matmul_into(a, b, out);  // same shape -> same buffer, no pool traffic
  EXPECT_EQ(raw(out), p);
  const auto stats = tensor::alloc_stats();
  EXPECT_EQ(stats.pool_hits + stats.pool_misses, 0u);
}

TEST(OpsInto, MatmulRejectsSelfAliasedOutput) {
  Tensor a = Tensor::ones(Shape{4, 4});
  Tensor b = Tensor::ones(Shape{4, 4});
  EXPECT_THROW(ops::matmul_into(a, b, a), CheckError);
  EXPECT_THROW(ops::transpose_into(a, a), CheckError);
}

TEST(TensorInPlace, AddSelfAliasDoubles) {
  Tensor t = Tensor::from({1.0f, 2.0f});
  t.add_(t);
  EXPECT_FLOAT_EQ(t[0], 2.0f);
  EXPECT_FLOAT_EQ(t[1], 4.0f);
}

// ---- steady-state allocation regression over real training loops ----------

core::PretrainConfig loop_config(core::CqVariant variant) {
  core::PretrainConfig cfg;
  cfg.variant = variant;
  cfg.precisions = quant::PrecisionSet::range(6, 16);
  cfg.epochs = 3;
  cfg.batch_size = 8;
  cfg.lr = 0.05f;
  cfg.warmup_epochs = 0;
  cfg.proj_hidden = 16;
  cfg.proj_dim = 8;
  return cfg;
}

class PoolTrainingLoop
    : public ::testing::TestWithParam<core::CqVariant> {};

// After the first epoch warms the pool, later epochs must allocate nothing:
// every per-iteration tensor comes back out of the free lists. This is the
// allocation-regression guard for both 2-branch (CQ-A) and 4-branch (CQ-C)
// pipelines.
TEST_P(PoolTrainingLoop, SteadyStateHeapAllocationsAreZero) {
  auto scfg = data::synth_cifar_config();
  Rng data_rng(scfg.seed);
  const auto ds = data::make_synth_dataset(scfg, 24, data_rng);

  Rng rng(21);
  auto enc = models::make_encoder("resnet18", rng);
  core::SimClrCqTrainer trainer(enc, loop_config(GetParam()));
  const auto stats = trainer.train(ds);

  ASSERT_FALSE(stats.diverged);
  ASSERT_EQ(stats.epoch_heap_allocs.size(), 3u);
  EXPECT_GT(stats.first_iteration_heap_allocs, 0u);  // cold pool baseline
  EXPECT_EQ(stats.epoch_heap_allocs[1], 0u);
  EXPECT_EQ(stats.epoch_heap_allocs[2], 0u);
  EXPECT_DOUBLE_EQ(stats.steady_allocs_per_iteration, 0.0);
  EXPECT_GT(stats.pool_hits, stats.pool_misses);
}

INSTANTIATE_TEST_SUITE_P(BranchCounts, PoolTrainingLoop,
                         ::testing::Values(core::CqVariant::kCqA,
                                           core::CqVariant::kCqC),
                         [](const auto& info) {
                           return core::variant_name(info.param) == "cq-a"
                                      ? std::string("two_branches")
                                      : std::string("four_branches");
                         });

}  // namespace
}  // namespace cq
