// Scoped-span tracer + aggregate profiler (core/trace.hpp, core/prof.hpp):
// nesting/ordering, thread-local ring merge (incl. serve engine workers),
// ring wraparound, chrome://tracing export validity, profiler counters vs a
// hand-counted SimCLR toy run, and allocation-free steady-state recording.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "core/simclr.hpp"
#include "core/trace.hpp"
#include "data/synth.hpp"
#include "models/encoder.hpp"
#include "serve/engine.hpp"
#include "serve/queue.hpp"
#include "util/rng.hpp"

// Global operator new/delete instrumentation for the steady-state
// allocation test. Counting is the only side effect; every other test sees
// plain malloc behavior.
namespace {
std::atomic<std::uint64_t> g_global_news{0};
}  // namespace

// GCC pairs the free() below with the *implicit* ::operator new at inlined
// call sites and warns; the replacement new above allocates with malloc, so
// the pairing is in fact correct.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
void* operator new(std::size_t n) {
  g_global_news.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t n) { return ::operator new(n); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
#pragma GCC diagnostic pop

namespace cq {
namespace {

constexpr std::size_t kDefaultRing = std::size_t{1} << 15;

void leaf_scope() { CQ_TRACE_SCOPE("ttrace.leaf"); }

void mid_scope() {
  CQ_TRACE_SCOPE("ttrace.mid");
  leaf_scope();
  leaf_scope();
}

void top_scope() {
  CQ_TRACE_SCOPE_N("ttrace.top", 42);
  mid_scope();
}

std::uint64_t prof_calls(const char* name) {
  for (const auto& c : prof::snapshot())
    if (c.name == name) return c.calls;
  return 0;
}

/// Fresh tracer state with a known ring size; disables tracing on scope
/// exit so no other test records by accident.
struct TraceSession {
  explicit TraceSession(std::size_t ring = kDefaultRing) {
    trace::enable(false);
    trace::set_ring_capacity(ring);
    trace::reset();
    trace::enable(true);
  }
  ~TraceSession() {
    trace::enable(false);
    trace::set_ring_capacity(kDefaultRing);
    trace::reset();
  }
};

TEST(Trace, NestedSpansDepthAndParentFirstOrdering) {
  TraceSession session;
  top_scope();
  trace::enable(false);

  const auto spans = trace::snapshot();
  ASSERT_EQ(spans.size(), 4u);

  // Sorted parent-before-child: top, mid, leaf, leaf.
  EXPECT_STREQ(spans[0].name, "ttrace.top");
  EXPECT_STREQ(spans[1].name, "ttrace.mid");
  EXPECT_STREQ(spans[2].name, "ttrace.leaf");
  EXPECT_STREQ(spans[3].name, "ttrace.leaf");

  EXPECT_EQ(spans[0].depth, 0u);
  EXPECT_EQ(spans[1].depth, 1u);
  EXPECT_EQ(spans[2].depth, 2u);
  EXPECT_EQ(spans[3].depth, 2u);

  EXPECT_EQ(spans[0].arg, 42);
  EXPECT_EQ(spans[1].arg, trace::Span::kNoArg);

  // Temporal containment: parent brackets child; siblings don't overlap.
  for (int i = 1; i < 4; ++i) {
    EXPECT_LE(spans[0].start_ns, spans[i].start_ns);
    EXPECT_GE(spans[0].end_ns, spans[i].end_ns);
    EXPECT_LE(spans[i].start_ns, spans[i].end_ns);
  }
  EXPECT_LE(spans[2].end_ns, spans[3].start_ns);

  // Same recording thread throughout.
  EXPECT_EQ(spans[0].tid, spans[3].tid);
}

TEST(Trace, RuntimeGateOffRecordsNoSpansButStillProfiles) {
  TraceSession session;
  trace::enable(false);
  const auto calls_before = prof_calls("ttrace.leaf");
  for (int i = 0; i < 10; ++i) leaf_scope();
  EXPECT_EQ(trace::span_count(), 0u);
  EXPECT_EQ(prof_calls("ttrace.leaf"), calls_before + 10);
}

TEST(Trace, RingWraparoundKeepsNewestSpansAndCountsDrops) {
  TraceSession session(/*ring=*/8);
  for (int i = 0; i < 20; ++i) {
    CQ_TRACE_SCOPE_N("ttrace.wrap", i);
  }
  trace::enable(false);

  const auto spans = trace::snapshot();
  ASSERT_EQ(spans.size(), 8u);
  EXPECT_EQ(trace::span_count(), 8u);
  EXPECT_EQ(trace::dropped(), 12u);
  // The survivors are the NEWEST eight, oldest-first.
  for (std::size_t i = 0; i < spans.size(); ++i) {
    EXPECT_STREQ(spans[i].name, "ttrace.wrap");
    EXPECT_EQ(spans[i].arg, static_cast<std::int64_t>(12 + i));
  }
}

TEST(Trace, ThreadLocalBuffersMergeWithDistinctTids) {
  TraceSession session;
  constexpr int kThreads = 3, kSpansEach = 5;
  {
    CQ_TRACE_SCOPE("ttrace.main");
  }
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([] {
      for (int i = 0; i < kSpansEach; ++i) {
        CQ_TRACE_SCOPE_N("ttrace.worker", i);
      }
    });
  for (auto& t : threads) t.join();
  trace::enable(false);

  // Buffers survive thread exit: all spans are in the merged snapshot.
  const auto spans = trace::snapshot();
  ASSERT_EQ(spans.size(), 1u + kThreads * kSpansEach);

  std::set<std::uint32_t> worker_tids;
  std::uint32_t main_tid = 0;
  for (const auto& s : spans) {
    if (std::string(s.name) == "ttrace.main")
      main_tid = s.tid;
    else
      worker_tids.insert(s.tid);
  }
  EXPECT_EQ(worker_tids.size(), static_cast<std::size_t>(kThreads));
  EXPECT_EQ(worker_tids.count(main_tid), 0u);

  // Merged view stays sorted by start time across threads.
  for (std::size_t i = 1; i < spans.size(); ++i)
    EXPECT_LE(spans[i - 1].start_ns, spans[i].start_ns);
}

// ---------------------------------------------------------------------------
// chrome://tracing export. A tiny structural scan stands in for a JSON
// parser: quote-aware brace balancing plus extraction of the "ts" fields in
// document order.
// ---------------------------------------------------------------------------

bool json_balanced(const std::string& s) {
  int depth = 0;
  bool in_string = false;
  for (std::size_t i = 0; i < s.size(); ++i) {
    const char c = s[i];
    if (in_string) {
      if (c == '\\')
        ++i;
      else if (c == '"')
        in_string = false;
      continue;
    }
    if (c == '"') in_string = true;
    if (c == '{' || c == '[') ++depth;
    if (c == '}' || c == ']') {
      if (--depth < 0) return false;
    }
  }
  return depth == 0 && !in_string;
}

std::vector<double> extract_field(const std::string& doc, const char* key) {
  std::vector<double> out;
  const std::string needle = std::string("\"") + key + "\":";
  for (std::size_t pos = doc.find(needle); pos != std::string::npos;
       pos = doc.find(needle, pos + 1))
    out.push_back(std::strtod(doc.c_str() + pos + needle.size(), nullptr));
  return out;
}

TEST(TraceExport, ChromeJsonIsBalancedOrderedAndNamesSpans) {
  TraceSession session;
  top_scope();
  std::thread([] { CQ_TRACE_SCOPE("ttrace.worker"); }).join();
  trace::enable(false);

  const std::string doc = trace_export::chrome_json();
  EXPECT_TRUE(json_balanced(doc));
  EXPECT_NE(doc.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(doc.find("\"displayTimeUnit\""), std::string::npos);
  for (const char* name : {"ttrace.top", "ttrace.mid", "ttrace.leaf",
                           "ttrace.worker"})
    EXPECT_NE(doc.find(std::string("\"name\": \"") + name + "\""),
              std::string::npos)
        << name;
  // The numeric span tag rides under args.
  EXPECT_NE(doc.find("\"args\": {\"n\": 42}"), std::string::npos);

  // Events are strictly ordered by timestamp, starting at zero.
  const auto ts = extract_field(doc, "ts");
  ASSERT_EQ(ts.size(), 5u);
  EXPECT_EQ(ts.front(), 0.0);
  for (std::size_t i = 1; i < ts.size(); ++i) EXPECT_LE(ts[i - 1], ts[i]);
  for (const double d : extract_field(doc, "dur")) EXPECT_GE(d, 0.0);

  // File export writes the same document.
  const std::string path = testing::TempDir() + "cq_trace_test.json";
  ASSERT_TRUE(trace_export::chrome(path));
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::fseek(f, 0, SEEK_END);
  EXPECT_EQ(static_cast<std::size_t>(std::ftell(f)), doc.size());
  std::fclose(f);
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Serve engine: worker-thread spans land in the merged snapshot.
// ---------------------------------------------------------------------------

constexpr std::int64_t kH = 8, kW = 8;

const std::string& trace_checkpoint() {
  static const std::string path = [] {
    Rng rng(7);
    auto enc = models::make_encoder("resnet18", rng);
    enc.backbone->set_mode(nn::Mode::kTrain);
    for (int i = 0; i < 4; ++i) {
      enc.forward(Tensor::uniform(Shape{2, 3, kH, kW}, rng));
      enc.backbone->clear_cache();
    }
    enc.backbone->set_mode(nn::Mode::kEval);
    std::string p = testing::TempDir() + "cq_trace_ckpt.bin";
    models::save_module(p, *enc.backbone);
    return p;
  }();
  return path;
}

TEST(Trace, ServeWorkerSpansMergeIntoSnapshot) {
  serve::EngineConfig cfg;
  cfg.checkpoint = trace_checkpoint();
  cfg.arch = "resnet18";
  cfg.in_channels = 3;
  cfg.in_h = kH;
  cfg.in_w = kW;
  cfg.workers = 2;
  cfg.max_batch = 4;

  TraceSession session;
  serve::Engine engine(cfg);

  Rng rng(5);
  constexpr std::size_t kReqs = 8;
  std::vector<Tensor> inputs;
  for (std::size_t i = 0; i < kReqs; ++i)
    inputs.push_back(Tensor::uniform(Shape{1, 3, kH, kW}, rng, -1.0f, 1.0f));
  std::vector<serve::Request> reqs(kReqs);
  std::vector<std::vector<float>> outs(
      kReqs,
      std::vector<float>(static_cast<std::size_t>(engine.feature_dim())));
  for (std::size_t i = 0; i < kReqs; ++i) {
    reqs[i].input = inputs[i].data();
    reqs[i].output = outs[i].data();
    ASSERT_TRUE(engine.submit(&reqs[i]));
  }
  for (auto& r : reqs) ASSERT_EQ(r.wait(), serve::Status::kOk);
  engine.stop();  // quiescent point: workers joined before snapshot
  trace::enable(false);

  const auto spans = trace::snapshot();
  std::uint32_t submit_tid = 0;
  std::set<std::uint32_t> forward_tids;
  std::uint64_t forward_spans = 0, batch_widths = 0;
  bool saw_batch_form = false, saw_complete = false;
  for (const auto& s : spans) {
    const std::string name = s.name;
    if (name == "serve.enqueue") submit_tid = s.tid;
    if (name == "serve.batch_form") saw_batch_form = true;
    if (name == "serve.complete") saw_complete = true;
    if (name == "serve.forward") {
      forward_tids.insert(s.tid);
      ++forward_spans;
      ASSERT_GT(s.arg, 0);  // tagged with the micro-batch width
      batch_widths += static_cast<std::uint64_t>(s.arg);
    }
  }
  EXPECT_TRUE(saw_batch_form);
  EXPECT_TRUE(saw_complete);
  ASSERT_GT(forward_spans, 0u);
  // Every request passed through exactly one traced forward.
  EXPECT_EQ(batch_widths, kReqs);
  // Forwards ran on worker threads, not the submitting thread.
  EXPECT_NE(submit_tid, 0u);
  EXPECT_EQ(forward_tids.count(submit_tid), 0u);
}

// ---------------------------------------------------------------------------
// Profiler vs a hand-counted SimCLR toy run: dataset size == batch size and
// epochs == 3 gives exactly one iteration per epoch, so per-phase call
// counts are knowable in advance (vanilla variant: 2 branches/iteration).
// ---------------------------------------------------------------------------

TEST(Prof, CountersMatchHandCountedSimClrToyRun) {
#if defined(__SANITIZE_THREAD__)
  GTEST_SKIP() << "training run too slow under TSan; covered by the "
                  "default/sanitize presets";
#else
  const int kIters = 3;
  auto scfg = data::synth_cifar_config();
  Rng data_rng(scfg.seed);
  const auto ds = data::make_synth_dataset(scfg, 8, data_rng);

  core::PretrainConfig cfg;
  cfg.variant = core::CqVariant::kVanilla;
  cfg.epochs = kIters;
  cfg.batch_size = 8;  // == dataset size -> 1 iteration per epoch
  cfg.lr = 0.01f;
  cfg.warmup_epochs = 0;
  cfg.proj_hidden = 16;
  cfg.proj_dim = 8;

  Rng rng(3);
  auto enc = models::make_encoder("resnet18", rng);
  core::SimClrCqTrainer trainer(enc, cfg);

  TraceSession session;
  prof::reset();
  const auto stats = trainer.train(ds);
  trace::enable(false);
  ASSERT_FALSE(stats.diverged);
  ASSERT_EQ(stats.iterations, kIters);

  EXPECT_EQ(prof_calls("simclr.iteration"), 3u);
  EXPECT_EQ(prof_calls("simclr.augment"), 3u);
  EXPECT_EQ(prof_calls("augment.batch"), 6u);  // two views per iteration
  EXPECT_EQ(prof_calls("simclr.forward"), 6u);  // two branches per iteration
  EXPECT_EQ(prof_calls("simclr.loss"), 3u);
  EXPECT_EQ(prof_calls("simclr.backward"), 3u);
  EXPECT_EQ(prof_calls("simclr.step"), 3u);
  EXPECT_EQ(prof_calls("optim.sgd.step"), 3u);
  // The substrate underneath ran too.
  EXPECT_GT(prof_calls("gemm"), 0u);
  EXPECT_GT(prof_calls("nn.conv.fwd"), 0u);
  EXPECT_GT(prof_calls("kernels.sgd_update"), 0u);

  // The runner embeds the aggregate table in its stats ...
  EXPECT_NE(stats.profile_json.find("\"ops\""), std::string::npos);
  EXPECT_NE(stats.profile_json.find("simclr.iteration"), std::string::npos);
  EXPECT_TRUE(json_balanced(stats.profile_json));

  // ... and the toy run's trace names every training phase.
  const std::string doc = trace_export::chrome_json();
  EXPECT_TRUE(json_balanced(doc));
  for (const char* name :
       {"simclr.iteration", "simclr.augment", "simclr.forward", "simclr.loss",
        "simclr.backward", "simclr.step", "augment.batch", "nn.conv.fwd",
        "nn.conv.bwd", "nn.linear.fwd", "gemm", "gemm.pack_a", "gemm.kernel",
        "im2col", "optim.sgd.step", "kernels.sgd_update"})
    EXPECT_NE(doc.find(std::string("\"name\": \"") + name + "\""),
              std::string::npos)
        << name;
#endif
}

TEST(Prof, ResetZeroesCounters) {
  for (int i = 0; i < 4; ++i) leaf_scope();
  EXPECT_GT(prof_calls("ttrace.leaf"), 0u);
  prof::reset();
  EXPECT_EQ(prof_calls("ttrace.leaf"), 0u);
  EXPECT_TRUE(json_balanced(prof::json()));
}

TEST(Trace, SteadyStateSpanRecordingIsAllocationFree) {
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
  GTEST_SKIP() << "sanitizer runtimes change allocation behavior";
#else
  TraceSession session;
  // Warm: resolve the call-site counter and register this thread's ring.
  for (int i = 0; i < 16; ++i) {
    CQ_TRACE_SCOPE_BYTES("ttrace.steady", 64);
  }
  const auto before = g_global_news.load(std::memory_order_relaxed);
  for (int i = 0; i < 1000; ++i) {
    CQ_TRACE_SCOPE_BYTES("ttrace.steady", 64);
  }
  const auto after = g_global_news.load(std::memory_order_relaxed);
  trace::enable(false);
  EXPECT_EQ(after - before, 0u) << "span recording allocated on the heap";
  EXPECT_EQ(trace::span_count(), 1016u);
#endif
}

}  // namespace
}  // namespace cq
