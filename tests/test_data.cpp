// SynthVision generators, image ops, datasets, batching.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "data/augment.hpp"
#include "data/image.hpp"
#include "data/synth.hpp"
#include "util/check.hpp"

namespace cq {
namespace {

TEST(SynthClassDef, DeterministicGivenSeed) {
  const auto a = data::make_class_def(3, 8, 42);
  const auto b = data::make_class_def(3, 8, 42);
  EXPECT_EQ(a.motif, b.motif);
  EXPECT_FLOAT_EQ(a.fg[0], b.fg[0]);
  EXPECT_FLOAT_EQ(a.freq, b.freq);
}

TEST(SynthClassDef, ClassesDiffer) {
  const auto a = data::make_class_def(0, 8, 42);
  const auto b = data::make_class_def(1, 8, 42);
  const bool motif_differs = a.motif != b.motif;
  const bool color_differs = std::abs(a.fg[0] - b.fg[0]) > 1e-3f ||
                             std::abs(a.fg[1] - b.fg[1]) > 1e-3f;
  EXPECT_TRUE(motif_differs || color_differs);
}

TEST(SynthClassDef, MotifCyclesThroughAllTwelve) {
  std::set<data::Motif> motifs;
  for (int c = 0; c < 12; ++c)
    motifs.insert(data::make_class_def(c, 24, 1).motif);
  EXPECT_EQ(motifs.size(), 12u);
}

TEST(SynthRender, PixelValuesInUnitRange) {
  Rng rng(1);
  const auto cls = data::make_class_def(2, 8, 7);
  const auto inst = data::sample_instance(rng, 0.8f);
  Tensor img = data::render_instance(cls, inst, 16, 16, rng);
  EXPECT_EQ(img.shape(), Shape({3, 16, 16}));
  for (std::int64_t i = 0; i < img.numel(); ++i) {
    EXPECT_GE(img[i], 0.0f);
    EXPECT_LE(img[i], 1.0f);
  }
}

TEST(SynthRender, ForegroundActuallyAppears) {
  Rng rng(2);
  const auto cls = data::make_class_def(0, 8, 7);  // disk
  data::InstanceParams inst;  // centered, default scale
  Tensor img = data::render_instance(cls, inst, 16, 16, rng);
  // Center pixel should be near the foreground color, corner near bg.
  const float center = img.at(0, 8, 8);
  const float corner = img.at(0, 0, 0);
  EXPECT_NEAR(center, cls.fg[0], 0.15f);
  EXPECT_NEAR(corner, cls.bg[0], 0.15f);
}

TEST(SynthRender, RenderOntoReturnsTightBox) {
  const auto cls = data::make_class_def(0, 8, 7);  // disk motif
  data::InstanceParams inst;
  inst.cx = 0.5f;
  inst.cy = 0.5f;
  inst.scale = 1.0f;
  Tensor canvas(Shape{3, 32, 32});
  const auto box = data::render_onto(canvas, cls, inst);
  ASSERT_TRUE(box.valid());
  // Disk of half-extent base_scale*scale -> box roughly centered.
  const float cx = 0.5f * static_cast<float>(box.x0 + box.x1) / 32.0f;
  const float cy = 0.5f * static_cast<float>(box.y0 + box.y1) / 32.0f;
  EXPECT_NEAR(cx, 0.5f, 0.1f);
  EXPECT_NEAR(cy, 0.5f, 0.1f);
}

TEST(SynthDataset, DeterministicAndLabeled) {
  const auto cfg = data::synth_cifar_config();
  Rng rng1(5), rng2(5);
  const auto a = data::make_synth_dataset(cfg, 32, rng1);
  const auto b = data::make_synth_dataset(cfg, 32, rng2);
  ASSERT_EQ(a.size(), 32);
  EXPECT_EQ(a.labels, b.labels);
  for (std::int64_t i = 0; i < a.images[0].numel(); ++i)
    ASSERT_FLOAT_EQ(a.images[0][i], b.images[0][i]);
  a.validate();
}

TEST(SynthDataset, CoversAllClasses) {
  const auto cfg = data::synth_cifar_config();
  Rng rng(6);
  const auto ds = data::make_synth_dataset(cfg, 200, rng);
  std::set<int> seen(ds.labels.begin(), ds.labels.end());
  EXPECT_EQ(static_cast<int>(seen.size()), cfg.num_classes);
}

TEST(SynthDataset, PresetsDifferInScale) {
  const auto cifar = data::synth_cifar_config();
  const auto imnet = data::synth_imagenet_config();
  EXPECT_LT(cifar.num_classes, imnet.num_classes);
  EXPECT_LT(cifar.height, imnet.height);
  EXPECT_LT(cifar.nuisance, imnet.nuisance);
}

TEST(ImageOps, ResizeBilinearShapeAndRange) {
  Rng rng(7);
  Tensor img = Tensor::uniform(Shape{3, 8, 8}, rng);
  Tensor out = data::resize_bilinear(img, 16, 12);
  EXPECT_EQ(out.shape(), Shape({3, 16, 12}));
  for (std::int64_t i = 0; i < out.numel(); ++i) {
    EXPECT_GE(out[i], 0.0f);
    EXPECT_LE(out[i], 1.0f);
  }
}

TEST(ImageOps, ResizeIdentityWhenSameSize) {
  Rng rng(8);
  Tensor img = Tensor::uniform(Shape{3, 6, 6}, rng);
  Tensor out = data::resize_bilinear(img, 6, 6);
  for (std::int64_t i = 0; i < img.numel(); ++i)
    EXPECT_NEAR(img[i], out[i], 1e-5);
}

TEST(ImageOps, CropExtractsRegion) {
  Tensor img(Shape{3, 4, 4});
  img.at(0, 2, 3) = 0.77f;
  Tensor c = data::crop(img, 2, 3, 2, 1);
  EXPECT_EQ(c.shape(), Shape({3, 2, 1}));
  EXPECT_FLOAT_EQ(c.at(0, 0, 0), 0.77f);
  EXPECT_THROW(data::crop(img, 3, 3, 3, 3), CheckError);
}

TEST(ImageOps, HflipIsInvolution) {
  Rng rng(9);
  Tensor img = Tensor::uniform(Shape{3, 5, 7}, rng);
  Tensor back = data::hflip(data::hflip(img));
  for (std::int64_t i = 0; i < img.numel(); ++i)
    EXPECT_FLOAT_EQ(img[i], back[i]);
}

TEST(ImageOps, HflipMirrorsColumns) {
  Tensor img(Shape{3, 1, 3}, {1, 2, 3, 4, 5, 6, 7, 8, 9});
  Tensor f = data::hflip(img);
  EXPECT_FLOAT_EQ(f.at(0, 0, 0), 3.0f);
  EXPECT_FLOAT_EQ(f.at(0, 0, 2), 1.0f);
}

TEST(ImageOps, GrayscaleChannelsEqual) {
  Rng rng(10);
  Tensor img = Tensor::uniform(Shape{3, 4, 4}, rng);
  Tensor g = data::grayscale(img);
  for (std::int64_t i = 0; i < 16; ++i) {
    EXPECT_FLOAT_EQ(g[i], g[16 + i]);
    EXPECT_FLOAT_EQ(g[i], g[32 + i]);
  }
}

TEST(ImageOps, ChannelAffineClamps) {
  Tensor img = Tensor::full(Shape{3, 2, 2}, 0.9f);
  const float scale[3] = {5.0f, 1.0f, 1.0f};
  const float shift[3] = {0.0f, 0.5f, -2.0f};
  Tensor out = data::channel_affine(img, scale, shift);
  EXPECT_FLOAT_EQ(out[0], 1.0f);   // clamped high
  EXPECT_FLOAT_EQ(out[8], 0.0f);   // clamped low
}

TEST(ImageOps, StackImagesShape) {
  Rng rng(11);
  std::vector<Tensor> imgs = {Tensor::uniform(Shape{3, 4, 4}, rng),
                              Tensor::uniform(Shape{3, 4, 4}, rng)};
  Tensor batch = data::stack_images(imgs);
  EXPECT_EQ(batch.shape(), Shape({2, 3, 4, 4}));
  EXPECT_FLOAT_EQ(batch.at(1, 0, 0, 0), imgs[1].at(0, 0, 0));
  imgs.push_back(Tensor(Shape{3, 5, 5}));
  EXPECT_THROW(data::stack_images(imgs), CheckError);
}

TEST(Subset, StratifiedFractionKeepsAllClasses) {
  const auto cfg = data::synth_cifar_config();
  Rng rng(12);
  const auto full = data::make_synth_dataset(cfg, 400, rng);
  const auto sub = data::subset_fraction(full, 0.1, rng);
  std::set<int> seen(sub.labels.begin(), sub.labels.end());
  EXPECT_EQ(static_cast<int>(seen.size()), cfg.num_classes);
  EXPECT_NEAR(static_cast<double>(sub.size()), 40.0, 12.0);
}

TEST(Subset, TinyFractionKeepsAtLeastOnePerClass) {
  const auto cfg = data::synth_cifar_config();
  Rng rng(13);
  const auto full = data::make_synth_dataset(cfg, 300, rng);
  const auto sub = data::subset_fraction(full, 0.001, rng);
  std::set<int> seen(sub.labels.begin(), sub.labels.end());
  EXPECT_EQ(static_cast<int>(seen.size()), cfg.num_classes);
}

TEST(Subset, FullFractionKeepsEverything) {
  const auto cfg = data::synth_cifar_config();
  Rng rng(14);
  const auto full = data::make_synth_dataset(cfg, 64, rng);
  const auto sub = data::subset_fraction(full, 1.0, rng);
  EXPECT_EQ(sub.size(), full.size());
}

TEST(Batcher, CoversEveryIndexEachEpoch) {
  Rng rng(15);
  data::Batcher batcher(20, 6, rng);
  std::multiset<std::int64_t> seen;
  for (std::int64_t b = 0; b < batcher.batches_per_epoch(); ++b)
    for (auto i : batcher.next()) seen.insert(i);
  EXPECT_EQ(seen.size(), 20u);
  for (std::int64_t i = 0; i < 20; ++i) EXPECT_EQ(seen.count(i), 1u);
}

TEST(Batcher, DropLastYieldsFullBatchesOnly) {
  Rng rng(16);
  data::Batcher batcher(20, 6, rng, /*drop_last=*/true);
  EXPECT_EQ(batcher.batches_per_epoch(), 3);
  for (int b = 0; b < 9; ++b)
    EXPECT_EQ(batcher.next().size(), 6u);
}

TEST(Batcher, ReshufflesBetweenEpochs) {
  Rng rng(17);
  data::Batcher batcher(32, 32, rng);
  const auto e1 = batcher.next();
  const auto e2 = batcher.next();
  EXPECT_NE(e1, e2);
}

TEST(GatherImages, BuildsBatch) {
  const auto cfg = data::synth_cifar_config();
  Rng rng(18);
  const auto ds = data::make_synth_dataset(cfg, 10, rng);
  const std::vector<std::int64_t> idx = {0, 5, 9};
  Tensor batch = data::gather_images(ds, idx);
  EXPECT_EQ(batch.dim(0), 3);
  const auto labels = data::gather_labels(ds, idx);
  EXPECT_EQ(labels[2], ds.labels[9]);
}

}  // namespace
}  // namespace cq
