// Module protocol semantics: cache stacks, modes, parameter plumbing.
#include <gtest/gtest.h>

#include <cmath>

#include "models/heads.hpp"
#include "nn/activations.hpp"
#include "nn/batchnorm.hpp"
#include "nn/conv2d.hpp"
#include "nn/init.hpp"
#include "nn/linear.hpp"
#include "nn/pooling.hpp"
#include "nn/sequential.hpp"
#include "tensor/ops.hpp"
#include "util/check.hpp"

namespace cq {
namespace {

TEST(Module, BackwardWithoutForwardThrows) {
  Rng rng(1);
  nn::Linear layer(3, 2, rng);
  EXPECT_THROW(layer.backward(Tensor(Shape{1, 2})), CheckError);
}

TEST(Module, EvalModePushesNoCaches) {
  Rng rng(2);
  nn::Linear layer(3, 2, rng);
  layer.set_mode(nn::Mode::kEval);
  layer.forward(Tensor::randn(Shape{4, 3}, rng));
  EXPECT_EQ(layer.pending_caches(), 0u);
  EXPECT_THROW(layer.backward(Tensor(Shape{4, 2})), CheckError);
}

TEST(Module, CacheStackLifoMultiBranch) {
  // Two forwards with different inputs, then two backwards in reverse
  // order: each backward must use its own branch's cached input.
  Rng rng(3);
  nn::Linear layer(2, 2, rng, /*bias=*/false);
  Tensor x1(Shape{1, 2}, {1.0f, 0.0f});
  Tensor x2(Shape{1, 2}, {0.0f, 1.0f});
  layer.forward(x1);
  layer.forward(x2);
  EXPECT_EQ(layer.pending_caches(), 2u);
  Tensor g(Shape{1, 2}, {1.0f, 1.0f});
  layer.backward(g);  // consumes x2's cache
  EXPECT_EQ(layer.pending_caches(), 1u);
  // Weight grad after first backward: outer(g, x2) -> column 1 populated.
  const Tensor grad_after_first = layer.weight().grad;
  EXPECT_FLOAT_EQ(grad_after_first.at(0, 0), 0.0f);
  EXPECT_FLOAT_EQ(grad_after_first.at(0, 1), 1.0f);
  layer.backward(g);  // consumes x1's cache, accumulates
  EXPECT_EQ(layer.pending_caches(), 0u);
  EXPECT_FLOAT_EQ(layer.weight().grad.at(0, 0), 1.0f);
  EXPECT_FLOAT_EQ(layer.weight().grad.at(0, 1), 1.0f);
}

TEST(Module, ClearCacheDropsPendingForwards) {
  Rng rng(4);
  nn::Linear layer(2, 2, rng);
  layer.forward(Tensor::randn(Shape{1, 2}, rng));
  layer.forward(Tensor::randn(Shape{1, 2}, rng));
  layer.clear_cache();
  EXPECT_EQ(layer.pending_caches(), 0u);
}

TEST(Module, ZeroGradClearsAll) {
  Rng rng(5);
  nn::Linear layer(2, 3, rng);
  layer.forward(Tensor::randn(Shape{2, 2}, rng));
  layer.backward(Tensor::ones(Shape{2, 3}));
  EXPECT_GT(ops::norm(layer.weight().grad), 0.0f);
  layer.zero_grad();
  EXPECT_FLOAT_EQ(ops::norm(layer.weight().grad), 0.0f);
}

TEST(Module, ParameterCountLinear) {
  Rng rng(6);
  nn::Linear layer(5, 4, rng);
  EXPECT_EQ(layer.parameter_count(), 5 * 4 + 4);
  nn::Linear nobias(5, 4, rng, false);
  EXPECT_EQ(nobias.parameter_count(), 20);
}

TEST(Module, BiasExcludedFromDecay) {
  Rng rng(7);
  nn::Linear layer(2, 2, rng);
  auto params = layer.parameters();
  ASSERT_EQ(params.size(), 2u);
  EXPECT_TRUE(params[0]->decay);   // weight
  EXPECT_FALSE(params[1]->decay);  // bias
}

TEST(Module, BatchNormParamsExcludedFromDecay) {
  nn::BatchNorm2d bn(4);
  for (auto* p : bn.parameters()) EXPECT_FALSE(p->decay);
}

TEST(Sequential, ForwardBackwardChains) {
  Rng rng(8);
  nn::Sequential seq;
  seq.emplace<nn::Linear>(3, 4, rng, true, "l1");
  seq.emplace<nn::ReLU>();
  seq.emplace<nn::Linear>(4, 2, rng, true, "l2");
  Tensor x = Tensor::randn(Shape{2, 3}, rng);
  Tensor y = seq.forward(x);
  EXPECT_EQ(y.shape(), Shape({2, 2}));
  Tensor gx = seq.backward(Tensor::ones(Shape{2, 2}));
  EXPECT_EQ(gx.shape(), x.shape());
  EXPECT_EQ(seq.parameters().size(), 4u);
}

TEST(Sequential, SetModePropagates) {
  Rng rng(9);
  nn::Sequential seq;
  auto& l1 = seq.emplace<nn::Linear>(2, 2, rng);
  seq.set_mode(nn::Mode::kEval);
  EXPECT_EQ(l1.mode(), nn::Mode::kEval);
  seq.set_mode(nn::Mode::kTrain);
  EXPECT_EQ(l1.mode(), nn::Mode::kTrain);
}

TEST(Sequential, EmplaceInheritsCurrentMode) {
  Rng rng(10);
  nn::Sequential seq;
  seq.set_mode(nn::Mode::kEval);
  auto& l1 = seq.emplace<nn::Linear>(2, 2, rng);
  EXPECT_EQ(l1.mode(), nn::Mode::kEval);
}

TEST(BatchNorm, NormalizesTrainBatch) {
  Rng rng(11);
  nn::BatchNorm2d bn(2);
  Tensor x = Tensor::randn(Shape{8, 2, 4, 4}, rng, 3.0f, 2.0f);
  Tensor y = bn.forward(x);
  // Per-channel output mean ~0, var ~1 (gamma=1, beta=0 at init).
  for (std::int64_t c = 0; c < 2; ++c) {
    double sum = 0.0, sq = 0.0;
    std::int64_t count = 0;
    for (std::int64_t n = 0; n < 8; ++n)
      for (std::int64_t h = 0; h < 4; ++h)
        for (std::int64_t w = 0; w < 4; ++w) {
          const double v = y.at(n, c, h, w);
          sum += v;
          sq += v * v;
          ++count;
        }
    EXPECT_NEAR(sum / count, 0.0, 1e-4);
    EXPECT_NEAR(sq / count, 1.0, 1e-2);
  }
}

TEST(BatchNorm, RunningStatsConvergeAndDriveEval) {
  Rng rng(12);
  nn::BatchNorm2d bn(1, /*momentum=*/0.5f);
  Tensor x = Tensor::randn(Shape{16, 1, 4, 4}, rng, 2.0f, 1.0f);
  for (int i = 0; i < 30; ++i) {
    bn.forward(x);
    bn.clear_cache();
  }
  EXPECT_NEAR(bn.running_mean()[0], 2.0f, 0.2f);
  EXPECT_NEAR(bn.running_var()[0], 1.0f, 0.3f);
  bn.set_mode(nn::Mode::kEval);
  Tensor y = bn.forward(x);
  double sum = 0.0;
  for (std::int64_t i = 0; i < y.numel(); ++i) sum += y[i];
  EXPECT_NEAR(sum / y.numel(), 0.0, 0.2);
}

TEST(MaxPool, SelectsMaximaAndRoutesGradient) {
  nn::MaxPool2d pool(2, 2);
  Tensor x(Shape{1, 1, 2, 2}, {1.0f, 5.0f, 3.0f, 2.0f});
  Tensor y = pool.forward(x);
  EXPECT_FLOAT_EQ(y[0], 5.0f);
  Tensor g = pool.backward(Tensor::ones(Shape{1, 1, 1, 1}));
  EXPECT_FLOAT_EQ(g[0], 0.0f);
  EXPECT_FLOAT_EQ(g[1], 1.0f);  // gradient only at the argmax
  EXPECT_FLOAT_EQ(g[2], 0.0f);
}

TEST(GlobalAvgPool, AveragesSpatial) {
  nn::GlobalAvgPool pool;
  Tensor x(Shape{1, 2, 1, 2}, {1.0f, 3.0f, 10.0f, 20.0f});
  Tensor y = pool.forward(x);
  EXPECT_EQ(y.shape(), Shape({1, 2}));
  EXPECT_FLOAT_EQ(y[0], 2.0f);
  EXPECT_FLOAT_EQ(y[1], 15.0f);
}

TEST(CopyParameters, CopiesValuesAndBuffers) {
  Rng rng(13);
  nn::Sequential a, b;
  a.emplace<nn::Linear>(3, 3, rng);
  a.emplace<nn::BatchNorm2d>(3);
  b.emplace<nn::Linear>(3, 3, rng);
  b.emplace<nn::BatchNorm2d>(3);
  // Make a's BN running stats distinctive.
  std::vector<Tensor*> abuf;
  a.collect_buffers(abuf);
  abuf[0]->fill(7.0f);
  nn::copy_parameters(a, b);
  std::vector<Tensor*> bbuf;
  b.collect_buffers(bbuf);
  EXPECT_FLOAT_EQ((*bbuf[0])[0], 7.0f);
  EXPECT_FLOAT_EQ(a.parameters()[0]->value[0], b.parameters()[0]->value[0]);
}

TEST(EmaUpdate, InterpolatesTowardsSource) {
  Rng rng(14);
  nn::Sequential src, dst;
  src.emplace<nn::Linear>(2, 2, rng, false);
  dst.emplace<nn::Linear>(2, 2, rng, false);
  src.parameters()[0]->value.fill(1.0f);
  dst.parameters()[0]->value.fill(0.0f);
  nn::ema_update(src, dst, 0.9f);
  EXPECT_NEAR(dst.parameters()[0]->value[0], 0.1f, 1e-6);
  nn::ema_update(src, dst, 0.9f);
  EXPECT_NEAR(dst.parameters()[0]->value[0], 0.19f, 1e-6);
}

TEST(SnapshotRestore, RoundTripsState) {
  Rng rng(15);
  nn::Sequential net;
  net.emplace<nn::Linear>(3, 3, rng);
  net.emplace<nn::BatchNorm2d>(3);
  const auto saved = nn::snapshot_state(net);
  const float w0 = net.parameters()[0]->value[0];
  net.parameters()[0]->value.fill(42.0f);
  std::vector<Tensor*> buf;
  net.collect_buffers(buf);
  buf[0]->fill(-3.0f);
  nn::restore_state(net, saved);
  EXPECT_FLOAT_EQ(net.parameters()[0]->value[0], w0);
  EXPECT_FLOAT_EQ((*buf[0])[0], 0.0f);
}

TEST(Init, HeUniformBounds) {
  Rng rng(16);
  Tensor w = nn::init::he_uniform(Shape{100, 9}, 9, rng);
  const float bound = std::sqrt(6.0f / 9.0f);
  for (std::int64_t i = 0; i < w.numel(); ++i) {
    EXPECT_GE(w[i], -bound);
    EXPECT_LE(w[i], bound);
  }
}

TEST(Init, HeNormalStddev) {
  Rng rng(17);
  Tensor w = nn::init::he_normal(Shape{200, 50}, 50, rng);
  double sq = 0.0;
  for (std::int64_t i = 0; i < w.numel(); ++i)
    sq += static_cast<double>(w[i]) * w[i];
  EXPECT_NEAR(sq / w.numel(), 2.0 / 50.0, 0.005);
}

TEST(Conv2d, RejectsInvalidGroups) {
  Rng rng(18);
  EXPECT_THROW(nn::Conv2d({.in_channels = 3, .out_channels = 4, .kernel = 3,
                           .stride = 1, .pad = 1, .groups = 2},
                          rng),
               CheckError);
}

TEST(Conv2d, RejectsWrongInputChannels) {
  Rng rng(19);
  nn::Conv2d conv({.in_channels = 3, .out_channels = 4}, rng);
  EXPECT_THROW(conv.forward(Tensor(Shape{1, 2, 8, 8})), CheckError);
}

TEST(Conv2d, OutputShape) {
  Rng rng(20);
  nn::Conv2d conv({.in_channels = 3, .out_channels = 8, .kernel = 3,
                   .stride = 2, .pad = 1},
                  rng);
  Tensor y = conv.forward(Tensor::randn(Shape{2, 3, 9, 9}, rng));
  EXPECT_EQ(y.shape(), Shape({2, 8, 5, 5}));
}

}  // namespace
}  // namespace cq
