// Quantizer (paper Eq. 10), policy, precision sets, and STE plumbing.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "nn/conv2d.hpp"
#include "nn/linear.hpp"
#include "optim/sgd.hpp"
#include "quant/actquant.hpp"
#include "quant/policy.hpp"
#include "quant/quantizer.hpp"
#include "tensor/kernels/kernels.hpp"
#include "tensor/ops.hpp"
#include "util/check.hpp"

namespace cq {
namespace {

using quant::LinearQuantizer;
using quant::PrecisionSet;
using quant::QuantizerConfig;
using quant::QuantPolicy;
using quant::RangeMode;
using quant::RoundingMode;

TEST(Quantizer, FullPrecisionIsIdentity) {
  Rng rng(1);
  LinearQuantizer q;
  Tensor a = Tensor::randn(Shape{50}, rng);
  Tensor b = q.quantize(a, 32);
  for (std::int64_t i = 0; i < a.numel(); ++i) EXPECT_FLOAT_EQ(a[i], b[i]);
}

TEST(Quantizer, ConstantTensorUnchanged) {
  LinearQuantizer q;
  Tensor a = Tensor::full(Shape{10}, 3.3f);
  Tensor b = q.quantize(a, 4);
  for (std::int64_t i = 0; i < 10; ++i) EXPECT_FLOAT_EQ(b[i], 3.3f);
}

TEST(Quantizer, StepSizeMatchesEq10) {
  // S_a = A_range / (2^q - 1).
  Tensor a = Tensor::from({-1.0f, 0.0f, 3.0f});
  LinearQuantizer q;
  EXPECT_NEAR(q.step_size(a, 4), 4.0f / 15.0f, 1e-6);
  EXPECT_NEAR(q.step_size(a, 8), 4.0f / 255.0f, 1e-7);
  EXPECT_FLOAT_EQ(q.step_size(a, 32), 0.0f);
}

TEST(Quantizer, OutputsAreMultiplesOfStep) {
  Rng rng(2);
  LinearQuantizer q;
  Tensor a = Tensor::randn(Shape{100}, rng);
  const float s = q.step_size(a, 5);
  Tensor b = q.quantize(a, 5);
  for (std::int64_t i = 0; i < b.numel(); ++i) {
    const float k = b[i] / s;
    EXPECT_NEAR(k, std::nearbyint(k), 1e-3) << "value " << b[i];
  }
}

TEST(Quantizer, LevelCountBounded) {
  Rng rng(3);
  LinearQuantizer q;
  Tensor a = Tensor::uniform(Shape{4000}, rng, -1.0f, 1.0f);
  for (int bits : {2, 3, 4}) {
    std::set<float> levels;
    Tensor b = q.quantize(a, bits);
    for (std::int64_t i = 0; i < b.numel(); ++i) levels.insert(b[i]);
    // Grid has at most 2^bits + 1 representable points over the range
    // (round-to-nearest of range/(2^q - 1)-spaced grid).
    EXPECT_LE(levels.size(),
              static_cast<std::size_t>((1 << bits) + 1))
        << "bits=" << bits;
    EXPECT_GE(levels.size(), 2u);
  }
}

TEST(Quantizer, ErrorBoundedByHalfStep) {
  Rng rng(4);
  LinearQuantizer q;
  Tensor a = Tensor::randn(Shape{200}, rng);
  for (int bits : {4, 8}) {
    const float s = q.step_size(a, bits);
    Tensor b = q.quantize(a, bits);
    for (std::int64_t i = 0; i < a.numel(); ++i)
      EXPECT_LE(std::abs(a[i] - b[i]), 0.5f * s + 1e-6f);
  }
}

TEST(Quantizer, IdempotentAtSameBits) {
  Rng rng(5);
  LinearQuantizer q;
  Tensor a = Tensor::randn(Shape{100}, rng);
  Tensor b = q.quantize(a, 6);
  Tensor c = q.quantize(b, 6);
  // Quantizing twice may shift the grid slightly (range shrinks), but values
  // that are already on the new grid stay. Check the error stays within one
  // step of the second quantizer.
  const float s = q.step_size(b, 6);
  for (std::int64_t i = 0; i < b.numel(); ++i)
    EXPECT_LE(std::abs(b[i] - c[i]), s + 1e-6f);
}

TEST(Quantizer, MoreBitsLessError) {
  Rng rng(6);
  LinearQuantizer q;
  Tensor a = Tensor::randn(Shape{500}, rng);
  double prev_err = 1e9;
  for (int bits : {2, 4, 8, 12}) {
    Tensor b = q.quantize(a, bits);
    double err = 0.0;
    for (std::int64_t i = 0; i < a.numel(); ++i)
      err += std::abs(a[i] - b[i]);
    EXPECT_LT(err, prev_err) << "bits=" << bits;
    prev_err = err;
  }
}

TEST(Quantizer, FloorModeRoundsDown) {
  QuantizerConfig cfg;
  cfg.rounding = RoundingMode::kFloor;
  LinearQuantizer q(cfg);
  Tensor a = Tensor::from({0.0f, 0.9f, 1.0f});  // range 1, 1-bit -> step 1
  Tensor b = q.quantize(a, 1);
  EXPECT_FLOAT_EQ(b[0], 0.0f);
  EXPECT_FLOAT_EQ(b[1], 0.0f);  // floor(0.9) = 0; nearest would give 1
  EXPECT_FLOAT_EQ(b[2], 1.0f);
}

TEST(Quantizer, NearestModeRoundsToNearest) {
  LinearQuantizer q;
  Tensor a = Tensor::from({0.0f, 0.9f, 1.0f});
  Tensor b = q.quantize(a, 1);
  EXPECT_FLOAT_EQ(b[1], 1.0f);
}

TEST(Quantizer, PercentileClipsOutliersAndMasks) {
  QuantizerConfig cfg;
  cfg.range = RangeMode::kPercentile;
  cfg.percentile = 0.9;
  LinearQuantizer q(cfg);
  Rng rng(7);
  Tensor a = Tensor::uniform(Shape{1000}, rng, -1.0f, 1.0f);
  a[0] = 100.0f;  // extreme outlier
  std::vector<std::uint8_t> mask;
  Tensor b = q.quantize(a, 8, &mask);
  EXPECT_LT(b[0], 2.0f);  // clamped
  EXPECT_EQ(mask[0], 0);  // masked for STE
  // Most values pass through unclipped.
  std::int64_t kept = 0;
  for (auto m : mask) kept += m;
  EXPECT_GT(kept, 800);
}

TEST(Quantizer, MinMaxRangeMatchesExtrema) {
  Tensor a = Tensor::from({-2.0f, 0.5f, 7.0f});
  LinearQuantizer q;
  const auto r = q.dynamic_range(a);
  EXPECT_FLOAT_EQ(r.lo, -2.0f);
  EXPECT_FLOAT_EQ(r.hi, 7.0f);
  EXPECT_FLOAT_EQ(r.width(), 9.0f);
}

TEST(Quantizer, RejectsInvalidBits) {
  LinearQuantizer q;
  Tensor a = Tensor::from({1.0f, 2.0f});
  EXPECT_THROW(q.quantize(a, 0), CheckError);
}

TEST(Policy, ActiveOnlyWhenQuantized) {
  QuantPolicy policy;
  EXPECT_FALSE(policy.active());  // starts at full precision
  policy.set_bits(8);
  EXPECT_TRUE(policy.active());
  policy.set_enabled(false);
  EXPECT_FALSE(policy.active());
  policy.set_enabled(true);
  policy.set_full_precision();
  EXPECT_FALSE(policy.active());
}

TEST(PrecisionSet, RangeConstructionAndStr) {
  const auto ps = PrecisionSet::range(6, 16);
  EXPECT_EQ(ps.size(), 11u);
  EXPECT_EQ(ps.str(), "6-16");
  EXPECT_EQ(PrecisionSet({4, 8, 16}).str(), "{4,8,16}");
  EXPECT_TRUE(PrecisionSet().empty());
}

TEST(PrecisionSet, SampleWithinSet) {
  Rng rng(8);
  const auto ps = PrecisionSet::range(4, 16);
  for (int i = 0; i < 200; ++i) {
    const int b = ps.sample(rng);
    EXPECT_GE(b, 4);
    EXPECT_LE(b, 16);
  }
}

TEST(PrecisionSet, SamplePairDistinct) {
  Rng rng(9);
  const auto ps = PrecisionSet::range(6, 16);
  for (int i = 0; i < 200; ++i) {
    const auto [q1, q2] = ps.sample_pair(rng);
    EXPECT_NE(q1, q2);
  }
}

TEST(PrecisionSet, SamplePairSingletonRepeats) {
  Rng rng(10);
  const PrecisionSet ps({8});
  const auto [q1, q2] = ps.sample_pair(rng);
  EXPECT_EQ(q1, 8);
  EXPECT_EQ(q2, 8);
}

TEST(PrecisionSet, CoversAllMembers) {
  Rng rng(11);
  const auto ps = PrecisionSet::range(4, 8);
  std::set<int> seen;
  for (int i = 0; i < 500; ++i) seen.insert(ps.sample(rng));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(ActQuant, ForwardQuantizesWhenActive) {
  auto policy = std::make_shared<QuantPolicy>();
  quant::ActQuant aq(policy);
  Rng rng(12);
  Tensor x = Tensor::randn(Shape{2, 3}, rng);
  policy->set_bits(2);
  Tensor y = aq.forward(x);
  std::set<float> levels(y.data(), y.data() + y.numel());
  EXPECT_LE(levels.size(), 5u);
  policy->set_full_precision();
  Tensor z = aq.forward(x);
  for (std::int64_t i = 0; i < x.numel(); ++i) EXPECT_FLOAT_EQ(z[i], x[i]);
}

TEST(ActQuant, BackwardIsStraightThrough) {
  auto policy = std::make_shared<QuantPolicy>();
  policy->set_bits(3);
  quant::ActQuant aq(policy);
  Rng rng(13);
  Tensor x = Tensor::randn(Shape{2, 4}, rng);
  aq.forward(x);
  Tensor g = Tensor::randn(Shape{2, 4}, rng);
  Tensor gx = aq.backward(g);
  for (std::int64_t i = 0; i < g.numel(); ++i) EXPECT_FLOAT_EQ(gx[i], g[i]);
}

TEST(ActQuant, LifoAcrossPrecisions) {
  auto policy = std::make_shared<QuantPolicy>();
  quant::ActQuant aq(policy);
  Rng rng(14);
  Tensor x = Tensor::randn(Shape{1, 4}, rng);
  policy->set_bits(2);
  aq.forward(x);
  policy->set_bits(8);
  aq.forward(x);
  EXPECT_EQ(aq.pending_caches(), 2u);
  aq.backward(Tensor::ones(Shape{1, 4}));
  aq.backward(Tensor::ones(Shape{1, 4}));
  EXPECT_EQ(aq.pending_caches(), 0u);
}

TEST(FakeQuantWeight, QuantizesThroughLinearForward) {
  Rng rng(15);
  auto policy = std::make_shared<QuantPolicy>();
  nn::Linear layer(4, 4, rng, /*bias=*/false);
  layer.set_weight_transform(
      std::make_shared<quant::FakeQuantWeight>(policy));
  Tensor x = Tensor::randn(Shape{2, 4}, rng);
  policy->set_full_precision();
  Tensor y_fp = layer.forward(x);
  policy->set_bits(2);
  Tensor y_q2 = layer.forward(x);
  policy->set_bits(12);
  Tensor y_q12 = layer.forward(x);
  layer.clear_cache();
  // 2-bit output differs clearly from FP; 12-bit is near-identical.
  float diff2 = 0.0f, diff12 = 0.0f;
  for (std::int64_t i = 0; i < y_fp.numel(); ++i) {
    diff2 += std::abs(y_fp[i] - y_q2[i]);
    diff12 += std::abs(y_fp[i] - y_q12[i]);
  }
  EXPECT_GT(diff2, 1e-2f);
  EXPECT_LT(diff12, diff2 * 0.1f);
}

TEST(FakeQuantWeight, SteAppliesGradToMasterWeight) {
  // Gradient computed with quantized weights must land on the fp32 master
  // weight unchanged (straight-through estimator).
  Rng rng(16);
  auto policy = std::make_shared<QuantPolicy>();
  nn::Linear layer(3, 2, rng, /*bias=*/false);
  layer.set_weight_transform(
      std::make_shared<quant::FakeQuantWeight>(policy));
  policy->set_bits(4);
  Tensor x = Tensor::randn(Shape{2, 3}, rng);
  layer.forward(x);
  Tensor g = Tensor::ones(Shape{2, 2});
  layer.backward(g);
  // dL/dW = g^T x regardless of quantization (STE) — compare to manual.
  Tensor expected = ops::matmul_tn(g, x);
  for (std::int64_t i = 0; i < expected.numel(); ++i)
    EXPECT_NEAR(layer.weight().grad[i], expected[i], 1e-5);
}

TEST(FakeQuantWeight, InputGradUsesQuantizedWeight) {
  Rng rng(17);
  auto policy = std::make_shared<QuantPolicy>();
  nn::Linear layer(3, 2, rng, /*bias=*/false);
  layer.set_weight_transform(
      std::make_shared<quant::FakeQuantWeight>(policy));
  policy->set_bits(2);
  const Tensor w_q =
      policy->quantizer().quantize(layer.weight().value, 2);
  Tensor x = Tensor::randn(Shape{1, 3}, rng);
  layer.forward(x);
  Tensor g = Tensor::ones(Shape{1, 2});
  Tensor gx = layer.backward(g);
  Tensor expected = ops::matmul(g, w_q);
  for (std::int64_t i = 0; i < gx.numel(); ++i)
    EXPECT_NEAR(gx[i], expected[i], 1e-5);
}

// CQ-B/CQ-C push 4 branches at 2 precisions through the encoder each
// iteration; the memo cache must collapse that to one quantizer call per
// (weight, bits) until the optimizer rewrites the weight.
TEST(FakeQuantWeight, MemoizesPerBitsAndWeightVersion) {
  Rng rng(18);
  auto policy = std::make_shared<QuantPolicy>();
  auto fq = std::make_shared<quant::FakeQuantWeight>(policy);
  nn::Linear layer(4, 4, rng, /*bias=*/false);
  layer.set_weight_transform(fq);
  Tensor x = Tensor::randn(Shape{2, 4}, rng);

  // SimCLR CQ branch order: (v1,q1), (v2,q1), (v1,q2), (v2,q2).
  policy->set_bits(4);
  layer.forward(x);
  layer.forward(x);
  policy->set_bits(8);
  layer.forward(x);
  layer.forward(x);
  layer.clear_cache();
  EXPECT_EQ(fq->quantizer_calls(), 2u);  // one per (weight, bits)

  // Revisiting a cached precision within the same step stays free.
  policy->set_bits(4);
  Tensor y_cached = layer.forward(x);
  layer.clear_cache();
  EXPECT_EQ(fq->quantizer_calls(), 2u);
  // And the cached result equals a fresh quantization.
  const Tensor w_q = policy->quantizer().quantize(layer.weight().value, 4);
  Tensor expected = ops::matmul_nt(x, w_q);
  for (std::int64_t i = 0; i < y_cached.numel(); ++i)
    EXPECT_NEAR(y_cached[i], expected[i], 1e-5);
}

TEST(FakeQuantWeight, OptimizerStepInvalidatesMemo) {
  Rng rng(19);
  auto policy = std::make_shared<QuantPolicy>();
  auto fq = std::make_shared<quant::FakeQuantWeight>(policy);
  nn::Linear layer(4, 2, rng, /*bias=*/false);
  layer.set_weight_transform(fq);
  Tensor x = Tensor::randn(Shape{2, 4}, rng);
  policy->set_bits(4);

  layer.forward(x);
  layer.backward(Tensor::ones(Shape{2, 2}));
  EXPECT_EQ(fq->quantizer_calls(), 1u);

  optim::Sgd sgd(layer.parameters(), {.lr = 0.1f});
  sgd.step();  // bumps the weight version

  Tensor y = layer.forward(x);
  layer.clear_cache();
  EXPECT_EQ(fq->quantizer_calls(), 2u);  // stale entry was re-quantized
  const Tensor w_q = policy->quantizer().quantize(layer.weight().value, 4);
  Tensor expected = ops::matmul_nt(x, w_q);
  for (std::int64_t i = 0; i < y.numel(); ++i)
    EXPECT_NEAR(y[i], expected[i], 1e-5);
}

TEST(FakeQuantWeight, GaussianPerturbIsNeverMemoized) {
  Rng rng(22);
  QuantizerConfig qcfg;
  qcfg.perturb = quant::PerturbMode::kGaussian;
  auto policy = std::make_shared<QuantPolicy>(qcfg);
  auto fq = std::make_shared<quant::FakeQuantWeight>(policy);
  nn::Linear layer(8, 8, rng, /*bias=*/false);
  layer.set_weight_transform(fq);
  policy->set_bits(4);
  Tensor x = Tensor::randn(Shape{1, 8}, rng);
  // Same weight, same bits, same step — outputs must still differ because
  // each branch draws fresh noise.
  Tensor y1 = layer.forward(x);
  Tensor y2 = layer.forward(x);
  layer.clear_cache();
  EXPECT_EQ(fq->quantizer_calls(), 2u);
  float diff = 0.0f;
  for (std::int64_t i = 0; i < y1.numel(); ++i)
    diff += std::abs(y1[i] - y2[i]);
  EXPECT_GT(diff, 0.0f);
}

TEST(PerturbGaussian, MatchesStepMagnitude) {
  Rng rng(20);
  quant::LinearQuantizer q;
  Tensor a = Tensor::randn(Shape{5000}, rng);
  Rng noise_rng(21);
  Tensor b = q.perturb_gaussian(a, 6, noise_rng);
  const float sigma_expected = 0.5f * q.step_size(a, 6);
  double sq = 0.0;
  for (std::int64_t i = 0; i < a.numel(); ++i) {
    const double d = static_cast<double>(b[i]) - a[i];
    sq += d * d;
  }
  const double sigma_measured = std::sqrt(sq / a.numel());
  EXPECT_NEAR(sigma_measured, sigma_expected, 0.1 * sigma_expected);
}

TEST(PerturbGaussian, IdentityAtFullPrecision) {
  Rng rng(22);
  quant::LinearQuantizer q;
  Tensor a = Tensor::randn(Shape{50}, rng);
  Rng noise_rng(23);
  Tensor b = q.perturb_gaussian(a, 32, noise_rng);
  for (std::int64_t i = 0; i < a.numel(); ++i) EXPECT_FLOAT_EQ(a[i], b[i]);
}

TEST(PolicyTransform, DispatchesOnPerturbMode) {
  using quant::PerturbMode;
  quant::QuantizerConfig cfg;
  cfg.perturb = PerturbMode::kGaussian;
  quant::QuantPolicy noisy(cfg);
  quant::QuantPolicy quantizing;
  noisy.set_bits(4);
  quantizing.set_bits(4);
  Rng rng(24);
  Tensor a = Tensor::randn(Shape{100}, rng);
  // Quantize mode: deterministic, values on a grid.
  Tensor q1 = quantizing.transform(a);
  Tensor q2 = quantizing.transform(a);
  for (std::int64_t i = 0; i < a.numel(); ++i) EXPECT_FLOAT_EQ(q1[i], q2[i]);
  // Gaussian mode: stochastic, two applications differ.
  Tensor n1 = noisy.transform(a);
  Tensor n2 = noisy.transform(a);
  float diff = 0.0f;
  for (std::int64_t i = 0; i < a.numel(); ++i)
    diff += std::abs(n1[i] - n2[i]);
  EXPECT_GT(diff, 1e-4f);
}

// ---- quantizer edge cases at the PrecisionSet extremes + spec plumbing -----

TEST(Quantizer, BehavesAtPrecisionSetEnds) {
  // The paper's widest set is 4-16; CQ ablations go down to 2. Both ends
  // must stay on the Eq. 10 grid with the expected level counts.
  Rng rng(30);
  LinearQuantizer q;
  Tensor a = Tensor::uniform(Shape{2000}, rng, -1.0f, 1.0f);
  std::set<float> lo_levels;
  Tensor b2 = q.quantize(a, 2);
  for (std::int64_t i = 0; i < b2.numel(); ++i) lo_levels.insert(b2[i]);
  EXPECT_LE(lo_levels.size(), 5u);  // 2^2 + 1
  EXPECT_GE(lo_levels.size(), 3u);
  Tensor b16 = q.quantize(a, 16);
  const float s16 = q.step_size(a, 16);
  for (std::int64_t i = 0; i < a.numel(); ++i)
    EXPECT_LE(std::abs(a[i] - b16[i]), 0.5f * s16 + 1e-7f);
}

TEST(Quantizer, MakeSpecIdentityForZeroRangeAndFullPrecision) {
  Rng rng(31);
  LinearQuantizer q;
  Tensor constant = Tensor::full(Shape{16}, -2.5f);  // zero dynamic range
  EXPECT_TRUE(q.make_spec(constant, 4).identity);
  Tensor a = Tensor::randn(Shape{16}, rng);
  EXPECT_TRUE(q.make_spec(a, 32).identity);   // full precision
  EXPECT_TRUE(q.make_spec(a, 100).identity);  // beyond full precision
  const gemm::QuantSpec live = q.make_spec(a, 4);
  EXPECT_FALSE(live.identity);
  EXPECT_NEAR(live.step, q.step_size(a, 4), 1e-7);
  // Identity specs leave values untouched through the kernel path too.
  Tensor out(Shape{16});
  kernels::quantize(constant.data(), out.data(), 16, q.make_spec(constant, 4));
  for (std::int64_t i = 0; i < 16; ++i) EXPECT_FLOAT_EQ(out[i], -2.5f);
}

// Every quantization route — LinearQuantizer::quantize, the SIMD kernel, and
// its portable twin — must agree BITWISE for both rounding modes, else
// quantize-on-pack would silently drift from the Eq. 10 reference.
TEST(Quantizer, FloorAndNearestIdenticalAcrossScalarAndSimd) {
  Rng rng(32);
  Tensor a = Tensor::randn(Shape{1013}, rng);  // odd length: vector tails
  for (auto mode : {RoundingMode::kNearest, RoundingMode::kFloor}) {
    QuantizerConfig cfg;
    cfg.rounding = mode;
    LinearQuantizer q(cfg);
    const gemm::QuantSpec spec = q.make_spec(a, 5);
    EXPECT_EQ(spec.nearest, mode == RoundingMode::kNearest);
    Tensor ref = q.quantize(a, 5);
    Tensor simd(Shape{a.numel()}), port(Shape{a.numel()});
    kernels::quantize(a.data(), simd.data(), a.numel(), spec);
    kernels::scalar::quantize(a.data(), port.data(), a.numel(), spec);
    for (std::int64_t i = 0; i < a.numel(); ++i) {
      ASSERT_FLOAT_EQ(ref[i], simd[i]) << "mode=" << int(mode) << " @" << i;
      ASSERT_FLOAT_EQ(simd[i], port[i]) << "mode=" << int(mode) << " @" << i;
    }
  }
}

TEST(Quantizer, PercentileSpecClipMaskMatchesQuantize) {
  QuantizerConfig cfg;
  cfg.range = RangeMode::kPercentile;
  cfg.percentile = 0.95;
  LinearQuantizer q(cfg);
  Rng rng(33);
  Tensor a = Tensor::uniform(Shape{501}, rng, -1.0f, 1.0f);
  a[0] = 50.0f;
  a[1] = -50.0f;
  const gemm::QuantSpec spec = q.make_spec(a, 6);
  EXPECT_TRUE(spec.clip);
  std::vector<std::uint8_t> want_mask;
  Tensor want = q.quantize(a, 6, &want_mask);
  Tensor got(Shape{a.numel()});
  std::vector<std::uint8_t> got_mask(a.numel());
  kernels::quantize_masked(a.data(), got.data(), a.numel(), spec,
                           got_mask.data());
  for (std::int64_t i = 0; i < a.numel(); ++i) {
    ASSERT_FLOAT_EQ(want[i], got[i]) << i;
    ASSERT_EQ(want_mask[i], got_mask[i]) << i;
  }
  EXPECT_EQ(got_mask[0], 0);
  EXPECT_EQ(got_mask[1], 0);
}

// ---- quantize-on-pack through the layers -----------------------------------

// The tentpole regression: folding quantization into GEMM packing must not
// change the memoization accounting — pack_spec() hits the same slots
// apply() fed, and materializing from a cached spec is free.
TEST(FakeQuantWeight, QuantizeOnPackKeepsMemoCountAndExactOutputs) {
  Rng rng(34);
  auto policy = std::make_shared<QuantPolicy>();
  auto fq = std::make_shared<quant::FakeQuantWeight>(policy);
  nn::Linear layer(8, 6, rng, /*bias=*/true);
  layer.set_weight_transform(fq);
  Tensor x = Tensor::randn(Shape{3, 8}, rng);

  policy->set_bits(3);
  EXPECT_TRUE(fq->pack_spec(layer.weight()).has_value());
  EXPECT_EQ(fq->quantizer_calls(), 1u);

  Tensor y1 = layer.forward(x);
  Tensor y2 = layer.forward(x);
  layer.clear_cache();
  EXPECT_EQ(fq->quantizer_calls(), 1u);  // forwards rode the cached spec

  // apply() materializes from the cached spec without a new range pass, and
  // the packed-GEMM forward equals the materialized GEMM bit-for-bit.
  Tensor w_eff = fq->apply(layer.weight());
  EXPECT_EQ(fq->quantizer_calls(), 1u);
  Tensor expected = ops::matmul_nt(x, w_eff);
  for (std::int64_t r = 0; r < expected.dim(0); ++r)
    for (std::int64_t c = 0; c < expected.dim(1); ++c)
      expected.at(r, c) += layer.bias()->value[c];
  for (std::int64_t i = 0; i < y1.numel(); ++i) {
    ASSERT_FLOAT_EQ(y1[i], expected[i]) << i;
    ASSERT_FLOAT_EQ(y2[i], expected[i]) << i;
  }
}

TEST(FakeQuantWeight, GaussianModeBypassesPackFusion) {
  Rng rng(35);
  QuantizerConfig cfg;
  cfg.perturb = quant::PerturbMode::kGaussian;
  auto policy = std::make_shared<QuantPolicy>(cfg);
  auto fq = std::make_shared<quant::FakeQuantWeight>(policy);
  nn::Linear layer(6, 4, rng, /*bias=*/false);
  layer.set_weight_transform(fq);
  policy->set_bits(4);
  // No spec: the layer must fall back to materializing noisy weights, and
  // every request draws fresh noise (never cached, never fused).
  EXPECT_FALSE(fq->pack_spec(layer.weight()).has_value());
  EXPECT_EQ(fq->quantizer_calls(), 0u);
  Tensor x = Tensor::randn(Shape{2, 6}, rng);
  Tensor y1 = layer.forward(x);
  Tensor y2 = layer.forward(x);
  layer.clear_cache();
  EXPECT_EQ(fq->quantizer_calls(), 2u);
  float diff = 0.0f;
  for (std::int64_t i = 0; i < y1.numel(); ++i)
    diff += std::abs(y1[i] - y2[i]);
  EXPECT_GT(diff, 0.0f);
}

TEST(FakeQuantWeight, FusedConvForwardMatchesMaterializedWeights) {
  Rng rng(36);
  const nn::Conv2dSpec spec{.in_channels = 3, .out_channels = 4, .kernel = 3,
                            .stride = 1, .pad = 1, .groups = 1, .bias = true};
  nn::Conv2d fused(spec, rng);
  Rng rng2(36);  // identical init
  nn::Conv2d manual(spec, rng2);

  auto policy = std::make_shared<QuantPolicy>();
  policy->set_bits(3);
  fused.set_weight_transform(
      std::make_shared<quant::FakeQuantWeight>(policy));
  manual.weight().value =
      policy->quantizer().quantize(manual.weight().value, 3);

  Rng xrng(37);
  Tensor x = Tensor::randn(Shape{2, 3, 8, 8}, xrng);
  Tensor y_fused = fused.forward(x);
  Tensor y_manual = manual.forward(x);
  fused.clear_cache();
  manual.clear_cache();
  ASSERT_EQ(y_fused.numel(), y_manual.numel());
  for (std::int64_t i = 0; i < y_fused.numel(); ++i)
    ASSERT_FLOAT_EQ(y_fused[i], y_manual[i]) << i;
}

TEST(PolicyTransform, IdentityWhenInactive) {
  quant::QuantPolicy policy;
  Rng rng(25);
  Tensor a = Tensor::randn(Shape{20}, rng);
  Tensor b = policy.transform(a);
  for (std::int64_t i = 0; i < a.numel(); ++i) EXPECT_FLOAT_EQ(a[i], b[i]);
}

}  // namespace
}  // namespace cq
