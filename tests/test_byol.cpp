// BYOL trainer: vanilla and CQ-C pipelines, EMA target behaviour.
#include <gtest/gtest.h>

#include <cmath>

#include "core/byol.hpp"
#include "data/synth.hpp"
#include "tensor/ops.hpp"
#include "util/check.hpp"

namespace cq {
namespace {

data::Dataset tiny_dataset(std::int64_t n = 24) {
  auto cfg = data::synth_cifar_config();
  Rng rng(cfg.seed + 1);
  return data::make_synth_dataset(cfg, n, rng);
}

core::PretrainConfig tiny_config(core::CqVariant variant) {
  core::PretrainConfig cfg;
  cfg.variant = variant;
  cfg.precisions = quant::PrecisionSet::range(6, 16);
  cfg.epochs = 2;
  cfg.batch_size = 8;
  cfg.lr = 0.05f;
  cfg.warmup_epochs = 0;
  cfg.proj_hidden = 16;
  cfg.proj_dim = 8;
  cfg.pred_hidden = 8;
  cfg.byol_ema = 0.9f;
  return cfg;
}

TEST(ByolTrainer, VanillaRunsAndStaysFinite) {
  const auto ds = tiny_dataset();
  Rng rng(1);
  auto enc = models::make_encoder("resnet18", rng);
  core::ByolCqTrainer trainer(enc, tiny_config(core::CqVariant::kVanilla));
  const auto stats = trainer.train(ds);
  EXPECT_TRUE(std::isfinite(stats.final_loss));
  EXPECT_FALSE(stats.diverged);
  // BYOL loss lives in [0, 4] per term; two symmetric terms -> [0, 8].
  EXPECT_GE(stats.final_loss, 0.0f);
  EXPECT_LE(stats.final_loss, 8.0f);
}

TEST(ByolTrainer, CqCRunsWithQuantBranches) {
  const auto ds = tiny_dataset();
  Rng rng(2);
  auto enc = models::make_encoder("resnet18", rng);
  core::ByolCqTrainer trainer(enc, tiny_config(core::CqVariant::kCqC));
  const auto stats = trainer.train(ds);
  EXPECT_TRUE(std::isfinite(stats.final_loss));
  EXPECT_FALSE(stats.diverged);
}

TEST(ByolTrainer, RejectsUnsupportedVariants) {
  Rng rng(3);
  auto enc = models::make_encoder("resnet18", rng);
  EXPECT_THROW(
      core::ByolCqTrainer(enc, tiny_config(core::CqVariant::kCqA)),
      CheckError);
  EXPECT_THROW(
      core::ByolCqTrainer(enc, tiny_config(core::CqVariant::kCqB)),
      CheckError);
}

TEST(ByolTrainer, CqCNeedsPrecisionSet) {
  Rng rng(4);
  auto enc = models::make_encoder("resnet18", rng);
  auto cfg = tiny_config(core::CqVariant::kCqC);
  cfg.precisions = quant::PrecisionSet();
  EXPECT_THROW(core::ByolCqTrainer(enc, cfg), CheckError);
}

TEST(ByolTrainer, TargetStartsAsCopyOfOnline) {
  Rng rng(5);
  auto enc = models::make_encoder("resnet18", rng);
  core::ByolCqTrainer trainer(enc, tiny_config(core::CqVariant::kVanilla));
  auto& target = trainer.target_encoder();
  const auto op = enc.backbone->parameters();
  const auto tp = target.backbone->parameters();
  ASSERT_EQ(op.size(), tp.size());
  for (std::size_t i = 0; i < op.size(); ++i)
    for (std::int64_t j = 0; j < op[i]->value.numel(); ++j)
      ASSERT_FLOAT_EQ(op[i]->value[j], tp[i]->value[j]);
}

TEST(ByolTrainer, TargetLagsOnlineAfterTraining) {
  const auto ds = tiny_dataset();
  Rng rng(6);
  auto enc = models::make_encoder("resnet18", rng);
  core::ByolCqTrainer trainer(enc, tiny_config(core::CqVariant::kVanilla));
  trainer.train(ds);
  // After training, online has moved; target is an EMA and should differ
  // from online but not be stuck at the initial weights either.
  auto& target = trainer.target_encoder();
  float online_vs_target = 0.0f;
  const auto op = enc.backbone->parameters();
  const auto tp = target.backbone->parameters();
  for (std::size_t i = 0; i < op.size(); ++i)
    for (std::int64_t j = 0; j < op[i]->value.numel(); ++j)
      online_vs_target += std::abs(op[i]->value[j] - tp[i]->value[j]);
  EXPECT_GT(online_vs_target, 1e-5f);
}

TEST(ByolTrainer, NoPendingCachesAfterTraining) {
  const auto ds = tiny_dataset();
  Rng rng(7);
  auto enc = models::make_encoder("resnet18", rng);
  core::ByolCqTrainer trainer(enc, tiny_config(core::CqVariant::kCqC));
  trainer.train(ds);
  std::size_t pending = 0;
  std::function<void(nn::Module&)> count = [&](nn::Module& m) {
    pending += m.pending_caches();
    m.visit_children(count);
  };
  count(*enc.backbone);
  EXPECT_EQ(pending, 0u);
}

TEST(ByolTrainer, LossDecreasesOverTraining) {
  const auto ds = tiny_dataset(32);
  Rng rng(8);
  auto enc = models::make_encoder("resnet18", rng);
  auto cfg = tiny_config(core::CqVariant::kVanilla);
  cfg.epochs = 6;
  core::ByolCqTrainer trainer(enc, cfg);
  const auto stats = trainer.train(ds);
  EXPECT_LT(stats.epoch_loss.back(), stats.epoch_loss.front());
}

}  // namespace
}  // namespace cq
