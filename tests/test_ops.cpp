#include <gtest/gtest.h>

#include <cmath>

#include "tensor/ops.hpp"
#include "util/check.hpp"

namespace cq {
namespace {

TEST(Ops, ElementwiseAddSubMul) {
  Tensor a = Tensor::from({1, 2, 3});
  Tensor b = Tensor::from({4, 5, 6});
  EXPECT_FLOAT_EQ(ops::add(a, b)[1], 7.0f);
  EXPECT_FLOAT_EQ(ops::sub(a, b)[2], -3.0f);
  EXPECT_FLOAT_EQ(ops::mul(a, b)[0], 4.0f);
  EXPECT_THROW(ops::add(a, Tensor(Shape{2})), CheckError);
}

TEST(Ops, ScaleAndAddScalar) {
  Tensor a = Tensor::from({1, -2});
  EXPECT_FLOAT_EQ(ops::scale(a, 3.0f)[1], -6.0f);
  EXPECT_FLOAT_EQ(ops::add_scalar(a, 1.5f)[0], 2.5f);
}

TEST(Ops, MapAppliesFunction) {
  Tensor a = Tensor::from({1, 4, 9});
  Tensor r = ops::map(a, [](float v) { return std::sqrt(v); });
  EXPECT_FLOAT_EQ(r[2], 3.0f);
}

TEST(Ops, ReluClampsNegatives) {
  Tensor a = Tensor::from({-1, 0, 2});
  Tensor r = ops::relu(a);
  EXPECT_FLOAT_EQ(r[0], 0.0f);
  EXPECT_FLOAT_EQ(r[2], 2.0f);
}

TEST(Ops, ExpLogSqrtClamp) {
  Tensor a = Tensor::from({0.0f, 1.0f});
  EXPECT_FLOAT_EQ(ops::exp(a)[0], 1.0f);
  EXPECT_NEAR(ops::log(ops::exp(a))[1], 1.0f, 1e-6);
  EXPECT_FLOAT_EQ(ops::sqrt(Tensor::from({16.0f}))[0], 4.0f);
  Tensor c = ops::clamp(Tensor::from({-5, 0.5f, 5}), 0.0f, 1.0f);
  EXPECT_FLOAT_EQ(c[0], 0.0f);
  EXPECT_FLOAT_EQ(c[1], 0.5f);
  EXPECT_FLOAT_EQ(c[2], 1.0f);
}

TEST(Ops, Reductions) {
  Tensor a = Tensor::from({1, -2, 3, 4});
  EXPECT_FLOAT_EQ(ops::sum(a), 6.0f);
  EXPECT_FLOAT_EQ(ops::mean(a), 1.5f);
  EXPECT_FLOAT_EQ(ops::max(a), 4.0f);
  EXPECT_FLOAT_EQ(ops::min(a), -2.0f);
  EXPECT_EQ(ops::argmax(a), 3);
  EXPECT_NEAR(ops::norm(a), std::sqrt(30.0f), 1e-5);
}

TEST(Ops, DotProduct) {
  Tensor a = Tensor::from({1, 2, 3});
  Tensor b = Tensor::from({4, 5, 6});
  EXPECT_FLOAT_EQ(ops::dot(a, b), 32.0f);
}

TEST(Ops, RowReductions) {
  Tensor a(Shape{2, 3}, {1, 2, 3, 4, 6, 5});
  Tensor rs = ops::row_sum(a);
  EXPECT_FLOAT_EQ(rs[0], 6.0f);
  EXPECT_FLOAT_EQ(rs[1], 15.0f);
  Tensor rm = ops::row_max(a);
  EXPECT_FLOAT_EQ(rm[1], 6.0f);
  const auto am = ops::row_argmax(a);
  EXPECT_EQ(am[0], 2);
  EXPECT_EQ(am[1], 1);
}

TEST(Ops, MatmulMatchesManual) {
  Tensor a(Shape{2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor b(Shape{3, 2}, {7, 8, 9, 10, 11, 12});
  Tensor c = ops::matmul(a, b);
  EXPECT_FLOAT_EQ(c.at(0, 0), 58.0f);
  EXPECT_FLOAT_EQ(c.at(0, 1), 64.0f);
  EXPECT_FLOAT_EQ(c.at(1, 0), 139.0f);
  EXPECT_FLOAT_EQ(c.at(1, 1), 154.0f);
}

TEST(Ops, MatmulRejectsBadInnerDims) {
  EXPECT_THROW(ops::matmul(Tensor(Shape{2, 3}), Tensor(Shape{2, 3})),
               CheckError);
}

TEST(Ops, MatmulVariantsAgree) {
  Rng rng(3);
  Tensor a = Tensor::randn(Shape{4, 5}, rng);
  Tensor b = Tensor::randn(Shape{5, 6}, rng);
  Tensor c = ops::matmul(a, b);
  // A^T path: matmul_tn(A^T stored as [5,4]... ) — build transposes.
  Tensor at = ops::transpose(a);
  Tensor bt = ops::transpose(b);
  Tensor c_tn = ops::matmul_tn(at, b);
  Tensor c_nt = ops::matmul_nt(a, bt);
  for (std::int64_t i = 0; i < c.numel(); ++i) {
    EXPECT_NEAR(c[i], c_tn[i], 1e-4);
    EXPECT_NEAR(c[i], c_nt[i], 1e-4);
  }
}

TEST(Ops, TransposeInvolution) {
  Rng rng(4);
  Tensor a = Tensor::randn(Shape{3, 7}, rng);
  Tensor att = ops::transpose(ops::transpose(a));
  for (std::int64_t i = 0; i < a.numel(); ++i)
    EXPECT_FLOAT_EQ(a[i], att[i]);
}

TEST(Ops, SoftmaxRowsSumToOne) {
  Rng rng(5);
  Tensor a = Tensor::randn(Shape{4, 9}, rng, 0.0f, 5.0f);
  Tensor s = ops::softmax_rows(a);
  for (std::int64_t r = 0; r < 4; ++r) {
    double sum = 0.0;
    for (std::int64_t c = 0; c < 9; ++c) {
      EXPECT_GT(s.at(r, c), 0.0f);
      sum += s.at(r, c);
    }
    EXPECT_NEAR(sum, 1.0, 1e-5);
  }
}

TEST(Ops, SoftmaxNumericallyStableForLargeLogits) {
  Tensor a(Shape{1, 3}, {1000.0f, 1000.0f, 1000.0f});
  Tensor s = ops::softmax_rows(a);
  for (std::int64_t i = 0; i < 3; ++i) EXPECT_NEAR(s[i], 1.0f / 3.0f, 1e-5);
}

TEST(Ops, LogSoftmaxMatchesLogOfSoftmax) {
  Rng rng(6);
  Tensor a = Tensor::randn(Shape{3, 5}, rng);
  Tensor ls = ops::log_softmax_rows(a);
  Tensor s = ops::softmax_rows(a);
  for (std::int64_t i = 0; i < a.numel(); ++i)
    EXPECT_NEAR(ls[i], std::log(s[i]), 1e-5);
}

TEST(Ops, L2NormalizeRowsUnitNorm) {
  Rng rng(7);
  Tensor a = Tensor::randn(Shape{5, 8}, rng);
  Tensor norms;
  Tensor u = ops::l2_normalize_rows(a, &norms);
  for (std::int64_t r = 0; r < 5; ++r) {
    double s = 0.0;
    for (std::int64_t c = 0; c < 8; ++c)
      s += static_cast<double>(u.at(r, c)) * u.at(r, c);
    EXPECT_NEAR(s, 1.0, 1e-5);
    EXPECT_GT(norms[r], 0.0f);
  }
}

TEST(Ops, L2NormalizeLeavesZeroRowsAlone) {
  Tensor a(Shape{1, 4});
  Tensor u = ops::l2_normalize_rows(a);
  for (std::int64_t i = 0; i < 4; ++i) EXPECT_FLOAT_EQ(u[i], 0.0f);
}

}  // namespace
}  // namespace cq
