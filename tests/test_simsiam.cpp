// SimSiam trainer (stop-gradient siamese, paper ref [12]).
#include <gtest/gtest.h>

#include <cmath>

#include "core/simsiam.hpp"
#include "data/synth.hpp"
#include "eval/classifier.hpp"
#include "eval/separability.hpp"
#include "util/check.hpp"

namespace cq {
namespace {

data::Dataset tiny_dataset(std::int64_t n = 24) {
  auto cfg = data::synth_cifar_config();
  Rng rng(cfg.seed + 5);
  return data::make_synth_dataset(cfg, n, rng);
}

core::PretrainConfig tiny_config(core::CqVariant variant) {
  core::PretrainConfig cfg;
  cfg.variant = variant;
  cfg.precisions = quant::PrecisionSet::range(6, 16);
  cfg.epochs = 2;
  cfg.batch_size = 8;
  cfg.lr = 0.05f;
  cfg.warmup_epochs = 0;
  cfg.proj_hidden = 16;
  cfg.proj_dim = 8;
  cfg.pred_hidden = 8;
  return cfg;
}

TEST(SimSiamTrainer, VanillaRunsAndStaysFinite) {
  const auto ds = tiny_dataset();
  Rng rng(1);
  auto enc = models::make_encoder("resnet18", rng);
  core::SimSiamCqTrainer trainer(enc, tiny_config(core::CqVariant::kVanilla));
  const auto stats = trainer.train(ds);
  EXPECT_TRUE(std::isfinite(stats.final_loss));
  EXPECT_FALSE(stats.diverged);
  // Normalized-MSE range: one symmetrized term in [0, 4].
  EXPECT_GE(stats.final_loss, 0.0f);
  EXPECT_LE(stats.final_loss, 4.0f);
}

TEST(SimSiamTrainer, CqCRunsWithQuantBranches) {
  const auto ds = tiny_dataset();
  Rng rng(2);
  auto enc = models::make_encoder("resnet18", rng);
  core::SimSiamCqTrainer trainer(enc, tiny_config(core::CqVariant::kCqC));
  const auto stats = trainer.train(ds);
  EXPECT_FALSE(stats.diverged);
}

TEST(SimSiamTrainer, RejectsUnsupportedVariants) {
  Rng rng(3);
  auto enc = models::make_encoder("resnet18", rng);
  EXPECT_THROW(
      core::SimSiamCqTrainer(enc, tiny_config(core::CqVariant::kCqA)),
      CheckError);
}

TEST(SimSiamTrainer, NoPendingCachesAfterTraining) {
  const auto ds = tiny_dataset();
  Rng rng(4);
  auto enc = models::make_encoder("resnet18", rng);
  core::SimSiamCqTrainer trainer(enc, tiny_config(core::CqVariant::kCqC));
  trainer.train(ds);
  std::size_t pending = 0;
  std::function<void(nn::Module&)> count = [&](nn::Module& m) {
    pending += m.pending_caches();
    m.visit_children(count);
  };
  count(*enc.backbone);
  EXPECT_EQ(pending, 0u);
}

TEST(SimSiamTrainer, DoesNotCollapseImmediately) {
  // The stop-gradient should prevent instant representation collapse:
  // feature variance across the test set stays clearly non-zero.
  const auto ds = tiny_dataset(48);
  Rng rng(5);
  auto enc = models::make_encoder("resnet18", rng);
  auto cfg = tiny_config(core::CqVariant::kVanilla);
  cfg.epochs = 6;
  core::SimSiamCqTrainer trainer(enc, cfg);
  trainer.train(ds);
  const Tensor f = eval::extract_features(enc, ds, 32);
  double var = 0.0;
  for (std::int64_t c = 0; c < f.dim(1); ++c) {
    double mean = 0.0, sq = 0.0;
    for (std::int64_t r = 0; r < f.dim(0); ++r) {
      mean += f.at(r, c);
      sq += static_cast<double>(f.at(r, c)) * f.at(r, c);
    }
    mean /= static_cast<double>(f.dim(0));
    var += sq / static_cast<double>(f.dim(0)) - mean * mean;
  }
  EXPECT_GT(var, 1e-6);
}

TEST(SimSiamTrainer, TrainingChangesWeights) {
  const auto ds = tiny_dataset();
  Rng rng(6);
  auto enc = models::make_encoder("resnet18", rng);
  const auto before = nn::snapshot_state(*enc.backbone);
  core::SimSiamCqTrainer trainer(enc, tiny_config(core::CqVariant::kVanilla));
  trainer.train(ds);
  const auto after = nn::snapshot_state(*enc.backbone);
  float diff = 0.0f;
  for (std::size_t i = 0; i < before.size(); ++i)
    for (std::int64_t j = 0; j < before[i].numel(); ++j)
      diff += std::abs(before[i][j] - after[i][j]);
  EXPECT_GT(diff, 1e-4f);
}

}  // namespace
}  // namespace cq
