// Numeric gradient verification of every layer's backward pass.
#include <gtest/gtest.h>

#include "models/heads.hpp"
#include "models/mobilenetv2.hpp"
#include "models/resnet.hpp"
#include "nn/activations.hpp"
#include "nn/batchnorm.hpp"
#include "nn/conv2d.hpp"
#include "nn/linear.hpp"
#include "nn/pooling.hpp"
#include "nn/sequential.hpp"
#include "testutil.hpp"

namespace cq {
namespace {

TEST(GradCheck, Linear) {
  Rng rng(1);
  nn::Linear layer(5, 4, rng);
  Tensor x = Tensor::randn(Shape{3, 5}, rng);
  test::check_module_gradients(layer, x, rng);
}

TEST(GradCheck, LinearNoBias) {
  Rng rng(2);
  nn::Linear layer(4, 3, rng, /*bias=*/false);
  Tensor x = Tensor::randn(Shape{2, 4}, rng);
  test::check_module_gradients(layer, x, rng);
}

TEST(GradCheck, Conv2dBasic) {
  Rng rng(3);
  nn::Conv2d conv({.in_channels = 2, .out_channels = 3, .kernel = 3,
                   .stride = 1, .pad = 1},
                  rng);
  Tensor x = Tensor::randn(Shape{2, 2, 5, 5}, rng);
  test::check_module_gradients(conv, x, rng);
}

TEST(GradCheck, Conv2dStridedWithBias) {
  Rng rng(4);
  nn::Conv2d conv({.in_channels = 2, .out_channels = 2, .kernel = 3,
                   .stride = 2, .pad = 1, .bias = true},
                  rng);
  Tensor x = Tensor::randn(Shape{2, 2, 6, 6}, rng);
  test::check_module_gradients(conv, x, rng);
}

TEST(GradCheck, Conv2d1x1) {
  Rng rng(5);
  nn::Conv2d conv({.in_channels = 3, .out_channels = 4, .kernel = 1,
                   .stride = 1, .pad = 0},
                  rng);
  Tensor x = Tensor::randn(Shape{2, 3, 4, 4}, rng);
  test::check_module_gradients(conv, x, rng);
}

TEST(GradCheck, Conv2dDepthwise) {
  Rng rng(6);
  nn::Conv2d conv({.in_channels = 4, .out_channels = 4, .kernel = 3,
                   .stride = 1, .pad = 1, .groups = 4},
                  rng);
  Tensor x = Tensor::randn(Shape{2, 4, 4, 4}, rng);
  test::check_module_gradients(conv, x, rng);
}

TEST(GradCheck, Conv2dGrouped) {
  Rng rng(7);
  nn::Conv2d conv({.in_channels = 4, .out_channels = 6, .kernel = 3,
                   .stride = 1, .pad = 1, .groups = 2},
                  rng);
  Tensor x = Tensor::randn(Shape{1, 4, 4, 4}, rng);
  test::check_module_gradients(conv, x, rng);
}

// The next three cases size every GEMM dimension off the blocked kernel's
// 8x16 register tile (see tensor/gemm.hpp), so the backward GEMMs run
// through partial edge tiles in m, n, and k simultaneously.

TEST(GradCheck, LinearPartialTileEdges) {
  Rng rng(40);
  // batch=5 (m edge), out=9 (one full 8-sliver + 1), in=13 (k not a tile
  // multiple) — partial tiles in every dimension of all three GEMMs.
  nn::Linear layer(13, 9, rng);
  Tensor x = Tensor::randn(Shape{5, 13}, rng);
  test::check_module_gradients(layer, x, rng);
}

TEST(GradCheck, Conv2dPartialTileEdges) {
  Rng rng(41);
  // cout=7 (< one 8-row tile), krows=3*9=27, spatial=7*5=35 (two 16-column
  // tiles + 3): dW (NT) and dcols (TN) both hit ragged edges.
  nn::Conv2d conv({.in_channels = 3, .out_channels = 7, .kernel = 3,
                   .stride = 1, .pad = 1},
                  rng);
  Tensor x = Tensor::randn(Shape{2, 3, 7, 5}, rng);
  test::check_module_gradients(conv, x, rng);
}

TEST(GradCheck, Conv2dOutChannelsJustPastTile) {
  Rng rng(42);
  // cout=17 = 2 full 8-row tiles + 1 leftover row; stride-2 geometry keeps
  // spatial (3*3=9) below one column tile.
  nn::Conv2d conv({.in_channels = 5, .out_channels = 17, .kernel = 3,
                   .stride = 2, .pad = 1, .bias = true},
                  rng);
  Tensor x = Tensor::randn(Shape{1, 5, 6, 6}, rng);
  test::check_module_gradients(conv, x, rng);
}

TEST(GradCheck, BatchNorm2d) {
  Rng rng(8);
  nn::BatchNorm2d bn(3);
  // Shift gamma/beta off their init so gradients are non-trivial.
  bn.parameters()[0]->value = Tensor::randn(Shape{3}, rng, 1.0f, 0.2f);
  bn.parameters()[1]->value = Tensor::randn(Shape{3}, rng, 0.0f, 0.2f);
  Tensor x = Tensor::randn(Shape{3, 3, 3, 3}, rng);
  // BN grads are sensitive to fp32 batch-stat noise; loosen a bit.
  test::GradCheckOptions opt;
  opt.eps = 1e-2;
  opt.rtol = 6e-2;
  opt.atol = 3e-3;
  test::check_module_gradients(bn, x, rng, opt);
}

TEST(GradCheck, ReLU) {
  Rng rng(9);
  nn::ReLU relu;
  // Keep values away from the kink at 0 for clean finite differences.
  Tensor x = Tensor::randn(Shape{4, 6}, rng);
  for (std::int64_t i = 0; i < x.numel(); ++i)
    if (std::abs(x[i]) < 0.05f) x[i] = 0.2f;
  test::check_module_gradients(relu, x, rng);
}

TEST(GradCheck, ReLU6Cap) {
  Rng rng(10);
  nn::ReLU relu(6.0f);
  Tensor x = Tensor::randn(Shape{3, 5}, rng, 3.0f, 4.0f);
  for (std::int64_t i = 0; i < x.numel(); ++i) {
    if (std::abs(x[i]) < 0.05f) x[i] = 0.2f;
    if (std::abs(x[i] - 6.0f) < 0.05f) x[i] = 5.5f;
  }
  test::check_module_gradients(relu, x, rng);
}

TEST(GradCheck, MaxPool) {
  Rng rng(11);
  nn::MaxPool2d pool(2, 2);
  Tensor x = Tensor::randn(Shape{2, 2, 4, 4}, rng, 0.0f, 3.0f);
  test::check_module_gradients(pool, x, rng);
}

TEST(GradCheck, AvgPool) {
  Rng rng(12);
  nn::AvgPool2d pool(2, 2);
  Tensor x = Tensor::randn(Shape{2, 2, 4, 4}, rng);
  test::check_module_gradients(pool, x, rng);
}

TEST(GradCheck, GlobalAvgPool) {
  Rng rng(13);
  nn::GlobalAvgPool pool;
  Tensor x = Tensor::randn(Shape{2, 3, 3, 3}, rng);
  test::check_module_gradients(pool, x, rng);
}

TEST(GradCheck, Flatten) {
  Rng rng(14);
  nn::Flatten flatten;
  Tensor x = Tensor::randn(Shape{2, 2, 2, 2}, rng);
  test::check_module_gradients(flatten, x, rng);
}

TEST(GradCheck, SequentialConvBnRelu) {
  Rng rng(15);
  nn::Sequential seq;
  seq.emplace<nn::Conv2d>(
      nn::Conv2dSpec{.in_channels = 2, .out_channels = 3, .kernel = 3,
                     .stride = 1, .pad = 1},
      rng, "c");
  seq.emplace<nn::BatchNorm2d>(3);
  seq.emplace<nn::ReLU>();
  Tensor x = Tensor::randn(Shape{2, 2, 4, 4}, rng);
  test::GradCheckOptions opt;
  opt.eps = 5e-3;
  opt.rtol = 8e-2;
  opt.atol = 4e-3;
  opt.allow_kink_fraction = 0.08;
  test::check_module_gradients(seq, x, rng, opt);
}

TEST(GradCheck, BasicBlockWithDownsample) {
  Rng rng(16);
  auto policy = std::make_shared<quant::QuantPolicy>();
  models::BasicBlock block(2, 4, 2, policy, rng, "b");
  Tensor x = Tensor::randn(Shape{2, 2, 4, 4}, rng);
  test::GradCheckOptions opt;
  opt.eps = 5e-3;
  opt.rtol = 8e-2;
  opt.atol = 5e-3;
  opt.allow_kink_fraction = 0.08;
  test::check_module_gradients(block, x, rng, opt);
}

TEST(GradCheck, BasicBlockIdentitySkip) {
  Rng rng(17);
  auto policy = std::make_shared<quant::QuantPolicy>();
  models::BasicBlock block(3, 3, 1, policy, rng, "b");
  Tensor x = Tensor::randn(Shape{2, 3, 3, 3}, rng);
  test::GradCheckOptions opt;
  opt.eps = 5e-3;
  opt.rtol = 8e-2;
  opt.atol = 5e-3;
  opt.allow_kink_fraction = 0.08;
  test::check_module_gradients(block, x, rng, opt);
}

TEST(GradCheck, InvertedResidual) {
  Rng rng(18);
  auto policy = std::make_shared<quant::QuantPolicy>();
  models::InvertedResidual block(3, 3, 1, 2, policy, rng, "ir");
  Tensor x = Tensor::randn(Shape{2, 3, 3, 3}, rng);
  test::GradCheckOptions opt;
  opt.eps = 5e-3;
  opt.rtol = 8e-2;
  opt.atol = 5e-3;
  opt.allow_kink_fraction = 0.08;
  test::check_module_gradients(block, x, rng, opt);
}

TEST(GradCheck, BatchNorm1dHead) {
  Rng rng(19);
  models::BatchNorm1d bn(4);
  bn.parameters()[0]->value = Tensor::randn(Shape{4}, rng, 1.0f, 0.2f);
  Tensor x = Tensor::randn(Shape{6, 4}, rng);
  test::GradCheckOptions opt;
  opt.rtol = 6e-2;
  opt.atol = 3e-3;
  test::check_module_gradients(bn, x, rng, opt);
}

TEST(GradCheck, ProjectionHead) {
  Rng rng(20);
  auto head = models::make_projection_head(6, 5, 4, rng);
  Tensor x = Tensor::randn(Shape{3, 6}, rng);
  test::GradCheckOptions opt;
  opt.eps = 5e-3;
  opt.allow_kink_fraction = 0.08;
  test::check_module_gradients(*head, x, rng, opt);
}

}  // namespace
}  // namespace cq
