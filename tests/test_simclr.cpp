// SimCLR/CQ trainer: all five pipelines, cache hygiene, learning signal.
#include <gtest/gtest.h>

#include <cmath>

#include "core/simclr.hpp"
#include "data/synth.hpp"
#include "util/check.hpp"

namespace cq {
namespace {

data::Dataset tiny_dataset(std::int64_t n = 24) {
  auto cfg = data::synth_cifar_config();
  Rng rng(cfg.seed);
  return data::make_synth_dataset(cfg, n, rng);
}

core::PretrainConfig tiny_config(core::CqVariant variant) {
  core::PretrainConfig cfg;
  cfg.variant = variant;
  cfg.precisions = quant::PrecisionSet::range(6, 16);
  cfg.epochs = 2;
  cfg.batch_size = 8;
  cfg.lr = 0.05f;
  cfg.warmup_epochs = 0;
  cfg.proj_hidden = 16;
  cfg.proj_dim = 8;
  if (variant == core::CqVariant::kCqQuant) cfg.augment.identity = true;
  return cfg;
}

TEST(Variant, NamesRoundTrip) {
  using core::CqVariant;
  for (auto v : {CqVariant::kVanilla, CqVariant::kCqA, CqVariant::kCqB,
                 CqVariant::kCqC, CqVariant::kCqQuant})
    EXPECT_EQ(core::parse_variant(core::variant_name(v)), v);
  EXPECT_EQ(core::parse_variant("simclr"), CqVariant::kVanilla);
  EXPECT_THROW(core::parse_variant("cq-z"), CheckError);
}

TEST(Variant, BranchCounts) {
  EXPECT_EQ(core::branches_per_iteration(core::CqVariant::kVanilla), 2);
  EXPECT_EQ(core::branches_per_iteration(core::CqVariant::kCqA), 2);
  EXPECT_EQ(core::branches_per_iteration(core::CqVariant::kCqB), 4);
  EXPECT_EQ(core::branches_per_iteration(core::CqVariant::kCqC), 4);
  EXPECT_EQ(core::branches_per_iteration(core::CqVariant::kCqQuant), 2);
}

TEST(Config, CacheKeyDistinguishesVariants) {
  auto a = tiny_config(core::CqVariant::kCqA);
  auto c = tiny_config(core::CqVariant::kCqC);
  EXPECT_NE(a.cache_key(), c.cache_key());
  auto a2 = a;
  a2.seed += 1;
  EXPECT_NE(a.cache_key(), a2.cache_key());
  auto a3 = a;
  a3.distinct_pair = false;
  EXPECT_NE(a.cache_key(), a3.cache_key());
}

TEST(SimClrTrainer, WithReplacementPairSamplingRuns) {
  const auto ds = tiny_dataset();
  Rng rng(21);
  auto enc = models::make_encoder("resnet18", rng);
  auto cfg = tiny_config(core::CqVariant::kCqC);
  cfg.distinct_pair = false;
  cfg.precisions = quant::PrecisionSet({8});  // q1 == q2 now allowed
  core::SimClrCqTrainer trainer(enc, cfg);
  const auto stats = trainer.train(ds);
  EXPECT_FALSE(stats.diverged);
}

TEST(SimClrTrainer, AllVariantsRunAndStayFinite) {
  const auto ds = tiny_dataset();
  using core::CqVariant;
  for (auto variant : {CqVariant::kVanilla, CqVariant::kCqA, CqVariant::kCqB,
                       CqVariant::kCqC, CqVariant::kCqQuant}) {
    Rng rng(1);
    auto enc = models::make_encoder("resnet18", rng);
    core::SimClrCqTrainer trainer(enc, tiny_config(variant));
    const auto stats = trainer.train(ds);
    EXPECT_EQ(stats.epoch_loss.size(), 2u) << core::variant_name(variant);
    EXPECT_TRUE(std::isfinite(stats.final_loss))
        << core::variant_name(variant);
    EXPECT_FALSE(stats.diverged) << core::variant_name(variant);
    EXPECT_GT(stats.iterations, 0) << core::variant_name(variant);
  }
}

TEST(SimClrTrainer, LossDecreasesOverTraining) {
  const auto ds = tiny_dataset(48);
  Rng rng(2);
  auto enc = models::make_encoder("resnet18", rng);
  auto cfg = tiny_config(core::CqVariant::kVanilla);
  cfg.epochs = 10;
  cfg.lr = 0.1f;
  core::SimClrCqTrainer trainer(enc, cfg);
  const auto stats = trainer.train(ds);
  EXPECT_LT(stats.epoch_loss.back(), stats.epoch_loss.front());
}

TEST(SimClrTrainer, NoPendingCachesAfterTraining) {
  const auto ds = tiny_dataset();
  Rng rng(3);
  auto enc = models::make_encoder("resnet18", rng);
  core::SimClrCqTrainer trainer(enc, tiny_config(core::CqVariant::kCqC));
  trainer.train(ds);
  std::size_t pending = 0;
  std::function<void(nn::Module&)> count = [&](nn::Module& m) {
    pending += m.pending_caches();
    m.visit_children(count);
  };
  count(*enc.backbone);
  EXPECT_EQ(pending, 0u);
}

TEST(SimClrTrainer, PolicyRestoredToFullPrecision) {
  const auto ds = tiny_dataset();
  Rng rng(4);
  auto enc = models::make_encoder("resnet18", rng);
  core::SimClrCqTrainer trainer(enc, tiny_config(core::CqVariant::kCqA));
  trainer.train(ds);
  EXPECT_FALSE(enc.policy->active());
}

TEST(SimClrTrainer, CqVariantRequiresPrecisions) {
  Rng rng(5);
  auto enc = models::make_encoder("resnet18", rng);
  auto cfg = tiny_config(core::CqVariant::kCqC);
  cfg.precisions = quant::PrecisionSet();
  EXPECT_THROW(core::SimClrCqTrainer(enc, cfg), CheckError);
}

TEST(SimClrTrainer, CqQuantRequiresIdentityAugment) {
  Rng rng(6);
  auto enc = models::make_encoder("resnet18", rng);
  auto cfg = tiny_config(core::CqVariant::kCqQuant);
  cfg.augment.identity = false;
  EXPECT_THROW(core::SimClrCqTrainer(enc, cfg), CheckError);
}

TEST(SimClrTrainer, TrainingChangesWeights) {
  const auto ds = tiny_dataset();
  Rng rng(7);
  auto enc = models::make_encoder("resnet18", rng);
  const auto before = nn::snapshot_state(*enc.backbone);
  core::SimClrCqTrainer trainer(enc, tiny_config(core::CqVariant::kCqC));
  trainer.train(ds);
  const auto after = nn::snapshot_state(*enc.backbone);
  float diff = 0.0f;
  for (std::size_t i = 0; i < before.size(); ++i)
    for (std::int64_t j = 0; j < before[i].numel(); ++j)
      diff += std::abs(before[i][j] - after[i][j]);
  EXPECT_GT(diff, 1e-3f);
}

TEST(SimClrTrainer, DeterministicGivenSeed) {
  const auto ds = tiny_dataset();
  auto run = [&](std::uint64_t seed) {
    Rng rng(9);
    auto enc = models::make_encoder("resnet18", rng);
    auto cfg = tiny_config(core::CqVariant::kCqA);
    cfg.seed = seed;
    core::SimClrCqTrainer trainer(enc, cfg);
    return trainer.train(ds).final_loss;
  };
  EXPECT_FLOAT_EQ(run(5), run(5));
  EXPECT_NE(run(5), run(6));
}

TEST(SimClrTrainer, DivergenceDetectedAtInsaneLr) {
  const auto ds = tiny_dataset();
  Rng rng(8);
  auto enc = models::make_encoder("resnet18", rng);
  auto cfg = tiny_config(core::CqVariant::kVanilla);
  cfg.lr = 1e6f;
  cfg.epochs = 4;
  core::SimClrCqTrainer trainer(enc, cfg);
  const auto stats = trainer.train(ds);
  EXPECT_TRUE(stats.diverged);
}


TEST(CyclicPrecision, WalksTriangleAndMirrors) {
  const auto set = quant::PrecisionSet::range(4, 8);  // {4,5,6,7,8}
  const std::int64_t total = 100, cycles = 1;
  // Start of the cycle: lowest precision, mirror = highest.
  auto [q1a, q2a] = core::cyclic_precision_pair(set, 0, total, cycles);
  EXPECT_EQ(q1a, 4);
  EXPECT_EQ(q2a, 8);
  // Mid-cycle: highest precision.
  auto [q1b, q2b] = core::cyclic_precision_pair(set, 50, total, cycles);
  EXPECT_EQ(q1b, 8);
  EXPECT_EQ(q2b, 4);
  // All outputs stay within the set.
  for (std::int64_t t = 0; t < total; ++t) {
    auto [q1, q2] = core::cyclic_precision_pair(set, t, total, cycles);
    EXPECT_GE(q1, 4);
    EXPECT_LE(q1, 8);
    EXPECT_EQ(q2, 12 - q1);  // mirror within {4..8}
  }
}

TEST(CyclicPrecision, MultipleCyclesRepeatPattern) {
  const auto set = quant::PrecisionSet::range(4, 8);
  auto [a1, a2] = core::cyclic_precision_pair(set, 0, 100, 4);
  auto [b1, b2] = core::cyclic_precision_pair(set, 25, 100, 4);
  EXPECT_EQ(a1, b1);
  EXPECT_EQ(a2, b2);
}

TEST(SimClrTrainer, CyclicPrecisionScheduleRuns) {
  const auto ds = tiny_dataset();
  Rng rng(31);
  auto enc = models::make_encoder("resnet18", rng);
  auto cfg = tiny_config(core::CqVariant::kCqC);
  cfg.precision_sampling = core::PretrainConfig::PrecisionSampling::kCyclic;
  cfg.precision_cycles = 2;
  core::SimClrCqTrainer trainer(enc, cfg);
  const auto stats = trainer.train(ds);
  EXPECT_FALSE(stats.diverged);
}

TEST(SimClrTrainer, GaussianPerturbModeRuns) {
  // The paper's "future direction": noise perturbation instead of
  // quantization as the weight/activation augmentation.
  const auto ds = tiny_dataset();
  Rng rng(32);
  quant::QuantizerConfig qcfg;
  qcfg.perturb = quant::PerturbMode::kGaussian;
  auto enc = models::make_encoder("resnet18", rng, qcfg);
  core::SimClrCqTrainer trainer(enc, tiny_config(core::CqVariant::kCqC));
  const auto stats = trainer.train(ds);
  EXPECT_FALSE(stats.diverged);
}

}  // namespace
}  // namespace cq
