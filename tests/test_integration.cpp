// End-to-end integration: SSL pretraining -> downstream evaluation, the full
// Contrastive Quant pipeline at miniature scale.
#include <gtest/gtest.h>

#include "core/simclr.hpp"
#include "data/synth.hpp"
#include "eval/classifier.hpp"
#include "eval/separability.hpp"

namespace cq {
namespace {

struct World {
  data::Dataset ssl;
  data::Dataset labeled;
  data::Dataset test;
};

World make_world() {
  auto cfg = data::synth_cifar_config();
  Rng r1(1001), r2(1002), r3(1003);
  World w;
  w.ssl = data::make_synth_dataset(cfg, 128, r1);
  w.labeled = data::make_synth_dataset(cfg, 96, r2);
  w.test = data::make_synth_dataset(cfg, 64, r3);
  return w;
}

core::PretrainConfig pretrain_cfg(core::CqVariant variant) {
  core::PretrainConfig cfg;
  cfg.variant = variant;
  cfg.precisions = quant::PrecisionSet::range(6, 16);
  cfg.epochs = 8;
  cfg.batch_size = 16;
  cfg.lr = 0.1f;
  cfg.warmup_epochs = 1;
  cfg.proj_hidden = 32;
  cfg.proj_dim = 16;
  return cfg;
}

TEST(Integration, CqCPretrainingImprovesLinearProbeOverRandomInit) {
  const auto w = make_world();
  eval::EvalConfig ecfg;
  ecfg.epochs = 25;
  ecfg.batch_size = 16;

  Rng rng_a(7);
  auto random_enc = models::make_encoder("resnet18", rng_a);
  const float random_acc =
      eval::linear_eval(random_enc, w.labeled, w.test, ecfg).test_accuracy;

  Rng rng_b(7);
  auto trained_enc = models::make_encoder("resnet18", rng_b);
  core::SimClrCqTrainer trainer(trained_enc,
                                pretrain_cfg(core::CqVariant::kCqC));
  const auto stats = trainer.train(w.ssl);
  ASSERT_FALSE(stats.diverged);
  const float trained_acc =
      eval::linear_eval(trained_enc, w.labeled, w.test, ecfg).test_accuracy;

  EXPECT_GT(trained_acc, random_acc - 1.0f)
      << "SSL-pretrained features should not be worse than random init";
}

TEST(Integration, FinetuneWithSubsetLabelsBeatsChance) {
  const auto w = make_world();
  Rng rng(8);
  auto enc = models::make_encoder("resnet18", rng);
  core::SimClrCqTrainer trainer(enc, pretrain_cfg(core::CqVariant::kCqA));
  trainer.train(w.ssl);

  Rng split_rng(9);
  const auto small = data::subset_fraction(w.labeled, 0.25, split_rng);
  eval::EvalConfig ecfg;
  ecfg.epochs = 15;
  ecfg.batch_size = 8;
  const auto result = eval::finetune_eval(enc, small, w.test, ecfg);
  const float chance = 100.0f / static_cast<float>(w.test.num_classes);
  EXPECT_GT(result.test_accuracy, chance);
}

TEST(Integration, PretrainedFeaturesClusterByClass) {
  const auto w = make_world();
  Rng rng(10);
  auto enc = models::make_encoder("resnet18", rng);
  core::SimClrCqTrainer trainer(enc, pretrain_cfg(core::CqVariant::kCqC));
  trainer.train(w.ssl);
  const Tensor features = eval::extract_features(enc, w.test, 32);
  const float knn = eval::knn_accuracy(features, w.test.labels, 5);
  const float chance = 100.0f / static_cast<float>(w.test.num_classes);
  EXPECT_GT(knn, chance);
}

TEST(Integration, FourBitEvalTracksFullPrecision) {
  // 4-bit fine-tuning should work and land within a sane band of FP
  // (the paper's Tables 1/4 show a few points of degradation).
  const auto w = make_world();
  Rng rng(11);
  auto enc = models::make_encoder("resnet18", rng);
  core::SimClrCqTrainer trainer(enc, pretrain_cfg(core::CqVariant::kCqC));
  trainer.train(w.ssl);

  eval::EvalConfig fp;
  fp.epochs = 12;
  fp.batch_size = 16;
  auto q4 = fp;
  q4.eval_bits = 4;
  const float acc_fp = eval::finetune_eval(enc, w.labeled, w.test, fp)
                           .test_accuracy;
  const float acc_q4 = eval::finetune_eval(enc, w.labeled, w.test, q4)
                           .test_accuracy;
  const float chance = 100.0f / static_cast<float>(w.test.num_classes);
  EXPECT_GT(acc_fp, chance);
  EXPECT_GT(acc_q4, chance * 0.8f);
}

}  // namespace
}  // namespace cq
