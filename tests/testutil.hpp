// Shared test helpers: numeric gradient checking against Module::backward.
#pragma once

#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "nn/module.hpp"
#include "tensor/tensor.hpp"

namespace cq::test {

/// Scalar probe loss: L = sum_i w_i * y_i for fixed random weights w. Its
/// gradient w.r.t. y is exactly w, which we feed to backward().
struct GradCheckOptions {
  double eps = 1e-2;        // central-difference step
  double rtol = 4e-2;       // relative tolerance
  double atol = 1e-3;       // absolute tolerance
  bool check_params = true; // also verify parameter gradients
  /// Fraction of coordinates allowed to disagree. Finite differences
  /// straddle ReLU kinks in composite nets, so a few coordinates of an
  /// otherwise-correct gradient can mismatch; layers without kinks should
  /// keep this at 0.
  double allow_kink_fraction = 0.0;
};

inline void expect_close(double expected, double actual, double rtol,
                         double atol, const std::string& what) {
  const double tol = atol + rtol * std::abs(expected);
  EXPECT_NEAR(actual, expected, tol) << what;
}

/// Verifies dL/dx and (optionally) dL/dtheta of `module` against central
/// finite differences of the probe loss. The module must be in train mode.
inline void check_module_gradients(nn::Module& module, const Tensor& x,
                                   Rng& rng,
                                   const GradCheckOptions& opt = {}) {
  // Probe weights for the output.
  module.clear_cache();
  module.zero_grad();
  Tensor y0 = module.forward(x);
  Tensor w = Tensor::uniform(y0.shape(), rng, -1.0f, 1.0f);

  auto loss_at = [&](const Tensor& input) {
    Tensor y = module.forward(input);
    module.clear_cache();
    double s = 0.0;
    for (std::int64_t i = 0; i < y.numel(); ++i)
      s += static_cast<double>(w[i]) * y[i];
    return s;
  };

  // Analytic pass (consumes the cache pushed by the y0 forward).
  Tensor grad_x = module.backward(w);
  std::vector<Tensor> param_grads;
  for (nn::Parameter* p : module.parameters()) param_grads.push_back(p->grad);

  std::int64_t checked = 0, mismatched = 0;
  auto compare = [&](double numeric, double analytic,
                     const std::string& what) {
    ++checked;
    if (opt.allow_kink_fraction > 0.0) {
      const double tol = opt.atol + opt.rtol * std::abs(numeric);
      if (std::abs(numeric - analytic) > tol) ++mismatched;
    } else {
      expect_close(numeric, analytic, opt.rtol, opt.atol, what);
    }
  };

  // Numeric dL/dx.
  Tensor xm = x;
  for (std::int64_t i = 0; i < x.numel(); ++i) {
    const float orig = xm[i];
    xm[i] = orig + static_cast<float>(opt.eps);
    const double lp = loss_at(xm);
    xm[i] = orig - static_cast<float>(opt.eps);
    const double lm = loss_at(xm);
    xm[i] = orig;
    const double numeric = (lp - lm) / (2.0 * opt.eps);
    compare(numeric, grad_x[i], "input grad @" + std::to_string(i));
  }

  auto params = module.parameters();
  if (opt.check_params) {
    for (std::size_t k = 0; k < params.size(); ++k) {
      Tensor& v = params[k]->value;
      for (std::int64_t i = 0; i < v.numel(); ++i) {
        const float orig = v[i];
        v[i] = orig + static_cast<float>(opt.eps);
        const double lp = loss_at(x);
        v[i] = orig - static_cast<float>(opt.eps);
        const double lm = loss_at(x);
        v[i] = orig;
        const double numeric = (lp - lm) / (2.0 * opt.eps);
        compare(numeric, param_grads[k][i],
                params[k]->name + " grad @" + std::to_string(i));
      }
    }
  }
  if (opt.allow_kink_fraction > 0.0) {
    EXPECT_LE(static_cast<double>(mismatched),
              opt.allow_kink_fraction * static_cast<double>(checked))
        << mismatched << " of " << checked
        << " gradient coordinates disagree (beyond kink allowance)";
  }
}

/// Finite-difference check for a standalone loss function returning
/// (value, grad) for input z.
inline void check_loss_gradient(
    const std::function<double(const Tensor&)>& value_of, const Tensor& z,
    const Tensor& analytic_grad, double eps = 1e-3, double rtol = 3e-2,
    double atol = 1e-4) {
  Tensor zm = z;
  for (std::int64_t i = 0; i < z.numel(); ++i) {
    const float orig = zm[i];
    zm[i] = orig + static_cast<float>(eps);
    const double lp = value_of(zm);
    zm[i] = orig - static_cast<float>(eps);
    const double lm = value_of(zm);
    zm[i] = orig;
    const double numeric = (lp - lm) / (2.0 * eps);
    expect_close(numeric, analytic_grad[i], rtol, atol,
                 "loss grad @" + std::to_string(i));
  }
}

}  // namespace cq::test
