// Graph compiler tests: tracer round-trips, pass-by-pass bitwise
// equivalence against the eager serving twins, arena-planner properties,
// and dead-op elimination. The bitwise cases are the compiler's contract:
// every pass must keep the compiled forward EXACTLY equal to the eager
// reference — any relaxation here silently changes served bytes.
#include <gtest/gtest.h>

#include <vector>

#include "core/threadpool.hpp"
#include "deploy/int8.hpp"
#include "graph/executor.hpp"
#include "graph/ir.hpp"
#include "graph/passes.hpp"
#include "graph/plan.hpp"
#include "graph/tracer.hpp"
#include "models/encoder.hpp"
#include "models/heads.hpp"
#include "serve/fp32.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace cq {
namespace {

constexpr std::int64_t kH = 12, kW = 12;

models::Encoder eval_encoder(const std::string& arch, std::uint64_t seed) {
  Rng rng(seed);
  auto enc = models::make_encoder(arch, rng);
  enc.policy->set_full_precision();
  enc.backbone->set_mode(nn::Mode::kEval);
  return enc;
}

void expect_bitwise(const Tensor& got, const Tensor& want) {
  ASSERT_EQ(got.shape(), want.shape());
  const float* g = got.data();
  const float* w = want.data();
  for (std::int64_t i = 0; i < got.numel(); ++i) EXPECT_EQ(g[i], w[i]) << i;
}

TEST(GraphTracer, ResnetRoundTripShapes) {
  for (const char* arch : {"resnet18", "resnet34"}) {
    auto enc = eval_encoder(arch, 3);
    graph::Graph g = graph::trace(*enc.backbone, Shape{3, kH, kW});
    ASSERT_FALSE(g.nodes.empty()) << arch;
    EXPECT_EQ(g.value(g.input).shape, (Shape{3, kH, kW}));
    EXPECT_EQ(g.value(g.output).shape, (Shape{enc.feature_dim}));
    // Every node output must carry a shape and the dump must render.
    for (const graph::Node& n : g.nodes)
      EXPECT_GT(g.value(n.output).shape.numel(), 0);
    const std::string text = graph::dump(g);
    EXPECT_NE(text.find("conv2d"), std::string::npos);
    EXPECT_NE(text.find("batchnorm"), std::string::npos);
  }
}

TEST(GraphTracer, MlpHeadRoundTrip) {
  Rng rng(11);
  auto head = models::make_projection_head(24, 32, 16, rng);
  head->set_mode(nn::Mode::kEval);
  graph::Graph g = graph::trace(*head, Shape{24});
  EXPECT_EQ(g.value(g.output).shape, (Shape{16}));
  const std::string text = graph::dump(g);
  EXPECT_NE(text.find("linear"), std::string::npos);
  EXPECT_NE(text.find("relu"), std::string::npos);
}

TEST(GraphPasses, DefaultPipelineRemovesFoldableOps) {
  auto enc = eval_encoder("resnet18", 5);
  graph::Graph g = graph::trace(*enc.backbone, Shape{3, kH, kW});
  std::size_t bn_before = 0;
  for (const graph::Node& n : g.nodes)
    bn_before += n.op == graph::Op::kBatchNorm ? 1 : 0;
  ASSERT_GT(bn_before, 0u);
  const auto log = graph::run_default_passes(g, graph::Precision::kF32);
  ASSERT_FALSE(log.empty());
  for (const graph::Node& n : g.nodes) {
    EXPECT_NE(n.op, graph::Op::kBatchNorm);
    EXPECT_NE(n.op, graph::Op::kIdentity);
    EXPECT_NE(n.op, graph::Op::kFlatten);
    if (n.op == graph::Op::kConv2d)
      EXPECT_NE(n.lowering, graph::ConvLowering::kUndecided);
  }
}

// The anchor: after identities are dropped and BN is folded (the arithmetic
// the eager Fp32Network performs at compile time), the compiled plan must be
// bitwise-equal to the eager forward — and must STAY bitwise-equal as each
// subsequent pass (epilogue fusion, lowering selection, DCE) is applied.
TEST(GraphPasses, PassByPassBitwiseFp32) {
  auto enc = eval_encoder("resnet18", 7);
  serve::Fp32Network eager = serve::compile_fp32(*enc.backbone);

  graph::Graph g = graph::trace(*enc.backbone, Shape{3, kH, kW});
  graph::eliminate_identities(g);
  graph::fold_batchnorm(g);

  Rng rng(23);
  const Tensor batch = Tensor::uniform(Shape{3, 3, kH, kW}, rng, -1.0f, 1.0f);
  const Tensor want = eager.forward(batch);

  const auto check_stage = [&](const char* stage) {
    graph::Graph copy = g;
    graph::CompiledModel model(std::move(copy), /*max_batch=*/4);
    SCOPED_TRACE(stage);
    expect_bitwise(model.forward(batch), want);
  };
  check_stage("identities+fold_bn");
  graph::fuse_epilogues(g);
  check_stage("+fuse_epilogues");
  graph::select_conv_lowering(g);
  check_stage("+select_conv_lowering");
  graph::eliminate_dead_ops(g);
  check_stage("+eliminate_dead_ops");
}

TEST(GraphExecutor, CompiledMatchesEagerFp32AcrossWidths) {
  auto enc = eval_encoder("resnet18", 9);
  serve::Fp32Network eager = serve::compile_fp32(*enc.backbone);
  auto model = graph::compile(
      *enc.backbone, Shape{3, kH, kW},
      graph::CompileOptions{4, graph::Precision::kF32, true});
  Rng rng(31);
  for (std::int64_t n = 1; n <= 4; ++n) {
    SCOPED_TRACE(n);
    const Tensor batch =
        Tensor::uniform(Shape{n, 3, kH, kW}, rng, -1.0f, 1.0f);
    expect_bitwise(model.forward(batch), eager.forward(batch));
  }
}

TEST(GraphExecutor, CompiledMatchesEagerInt8AcrossWidths) {
  auto enc = eval_encoder("resnet18", 13);
  deploy::Int8Network eager = deploy::compile_int8(*enc.backbone);
  auto model = graph::compile(
      *enc.backbone, Shape{3, kH, kW},
      graph::CompileOptions{4, graph::Precision::kInt8, true});
  Rng rng(37);
  for (std::int64_t n = 1; n <= 4; ++n) {
    SCOPED_TRACE(n);
    const Tensor batch =
        Tensor::uniform(Shape{n, 3, kH, kW}, rng, -1.0f, 1.0f);
    expect_bitwise(model.forward(batch), eager.forward(batch));
  }
}

TEST(GraphExecutor, CompiledBatchedEqualsSerial) {
  auto enc = eval_encoder("resnet18", 17);
  auto model = graph::compile(
      *enc.backbone, Shape{3, kH, kW},
      graph::CompileOptions{4, graph::Precision::kF32, true});
  Rng rng(41);
  const Tensor batch = Tensor::uniform(Shape{4, 3, kH, kW}, rng, -1.0f, 1.0f);
  const Tensor batched = model.forward(batch);  // copy: arena reused below
  const std::int64_t per = 3 * kH * kW;
  for (std::int64_t i = 0; i < 4; ++i) {
    Tensor single(Shape{1, 3, kH, kW});
    std::copy(batch.data() + i * per, batch.data() + (i + 1) * per,
              single.data());
    const Tensor& feats = model.forward(single);
    for (std::int64_t c = 0; c < feats.dim(1); ++c)
      EXPECT_EQ(batched.at(i, c), feats.at(0, c)) << i << "," << c;
  }
}

// The executor's per-image batch splits and elementwise range splits must be
// invisible in the output: every pool size produces the same bytes as the
// serial run, in BOTH precisions (DESIGN.md §14 — tile ownership + the
// image_slice partition make parallel execution bitwise-deterministic).
TEST(GraphExecutor, CompiledForwardBitwiseIdenticalAcrossThreadCounts) {
  core::ThreadPool& pool = core::ThreadPool::instance();
  const std::size_t old_size = pool.size();
  for (auto precision : {graph::Precision::kF32, graph::Precision::kInt8}) {
    SCOPED_TRACE(precision == graph::Precision::kF32 ? "fp32" : "int8");
    auto enc = eval_encoder("resnet18", 43);
    auto model = graph::compile(*enc.backbone, Shape{3, kH, kW},
                                graph::CompileOptions{6, precision, true});
    Rng rng(47);
    const Tensor batch =
        Tensor::uniform(Shape{5, 3, kH, kW}, rng, -1.0f, 1.0f);
    pool.set_size(1);
    const Tensor serial = model.forward(batch);  // copy: arena reused below
    for (std::size_t threads : {2u, 3u, 8u}) {
      SCOPED_TRACE(threads);
      pool.set_size(threads);
      expect_bitwise(model.forward(batch), serial);
    }
    pool.set_size(old_size);
  }
}

// image_slice is the executor's partition contract: exact cover with no
// overlap, even distribution (sizes differ by at most one, larger slices
// first), and pure-function determinism.
TEST(GraphPlanner, ImageSlicePartitionsExactlyAndEvenly) {
  for (std::int64_t batch : {1, 2, 5, 7, 16}) {
    for (std::int64_t parts : {1, 2, 3, 5, 8}) {
      std::int64_t covered = 0;
      std::int64_t prev_len = batch;  // lengths must be non-increasing
      for (std::int64_t s = 0; s < parts; ++s) {
        const graph::ImageSlice sl = graph::image_slice(batch, parts, s);
        ASSERT_EQ(sl.begin, covered) << batch << "/" << parts << "@" << s;
        ASSERT_GE(sl.end, sl.begin);
        const std::int64_t len = sl.end - sl.begin;
        ASSERT_LE(len, prev_len);
        ASSERT_GE(len, batch / parts);
        ASSERT_LE(len, batch / parts + 1);
        prev_len = len;
        covered = sl.end;
      }
      ASSERT_EQ(covered, batch) << batch << "/" << parts;
    }
  }
}

TEST(GraphExecutor, MlpHeadCompiledMatchesEager) {
  Rng rng(19);
  auto head = models::make_projection_head(24, 32, 16, rng);
  head->set_mode(nn::Mode::kEval);
  serve::Fp32Network eager = serve::compile_fp32(*head);
  auto model =
      graph::compile(*head, Shape{24},
                     graph::CompileOptions{4, graph::Precision::kF32, true});
  const Tensor batch = Tensor::uniform(Shape{4, 24}, rng, -1.0f, 1.0f);
  expect_bitwise(model.forward(batch), eager.forward(batch));
}

TEST(GraphExecutor, RejectsUnprocessedGraph) {
  auto enc = eval_encoder("resnet18", 21);
  graph::Graph g = graph::trace(*enc.backbone, Shape{3, kH, kW});
  EXPECT_THROW(graph::CompiledModel(std::move(g), 1), CheckError);
}

TEST(GraphPasses, DeadOpEliminationDropsUnusedBranch) {
  graph::Graph g;
  g.input = g.add_value(Shape{8}, "in");
  graph::Node live;
  live.op = graph::Op::kRelu;
  live.inputs = {g.input};
  live.label = "live";
  live.output = g.add_value(Shape{8}, "live");
  g.nodes.push_back(live);
  graph::Node dead;
  dead.op = graph::Op::kRelu;
  dead.inputs = {g.input};
  dead.label = "dead-branch";
  dead.output = g.add_value(Shape{8}, "dead");
  g.nodes.push_back(dead);
  g.output = g.nodes[0].output;

  EXPECT_EQ(graph::eliminate_dead_ops(g), 1u);
  ASSERT_EQ(g.nodes.size(), 1u);
  EXPECT_EQ(g.nodes[0].label, "live");
  EXPECT_EQ(g.output, g.nodes[0].output);
}

// Planner property: whatever the lifetimes, two buffers alive at the same
// step must never overlap in the arena, and every offset stays aligned.
TEST(GraphPlanner, RandomizedLifetimesNeverOverlap) {
  Rng rng(47);
  for (int trial = 0; trial < 60; ++trial) {
    const int count = rng.uniform_int(2, 40);
    std::vector<graph::PlannedBuffer> buffers;
    for (int i = 0; i < count; ++i) {
      graph::PlannedBuffer b;
      b.bytes = rng.uniform_int(1, 5000);
      b.first = rng.uniform_int(0, 24);
      b.last = b.first + rng.uniform_int(0, 10);
      buffers.push_back(b);
    }
    const std::int64_t peak =
        graph::assign_offsets(buffers, graph::kArenaAlign);
    for (const auto& b : buffers) {
      EXPECT_GE(b.offset, 0);
      EXPECT_EQ(b.offset % graph::kArenaAlign, 0);
      EXPECT_LE(b.offset + b.bytes, peak);
    }
    for (std::size_t i = 0; i < buffers.size(); ++i)
      for (std::size_t j = i + 1; j < buffers.size(); ++j) {
        const auto& a = buffers[i];
        const auto& b = buffers[j];
        if (a.last < b.first || a.first > b.last) continue;  // disjoint lives
        const bool disjoint_mem = a.offset + a.bytes <= b.offset ||
                                  b.offset + b.bytes <= a.offset;
        EXPECT_TRUE(disjoint_mem)
            << "trial " << trial << ": buffers " << i << " and " << j
            << " overlap in time and memory";
      }
  }
}

// Acceptance gate: on ResNet-18 the planned arena must come in at or under
// 60% of the naive one-allocation-per-buffer footprint.
TEST(GraphPlanner, ArenaWellUnderNaiveOnResnet18) {
  auto enc = eval_encoder("resnet18", 29);
  auto model = graph::compile(
      *enc.backbone, Shape{3, kH, kW},
      graph::CompileOptions{4, graph::Precision::kF32, true});
  const graph::ArenaPlan& plan = model.plan();
  ASSERT_GT(plan.naive_bytes, 0);
  ASSERT_GT(plan.arena_bytes, 0);
  EXPECT_LE(plan.arena_bytes * 100, plan.naive_bytes * 60)
      << "arena " << plan.arena_bytes << " vs naive " << plan.naive_bytes;
}

TEST(GraphPlanner, DumpAnnotatesOffsets) {
  auto enc = eval_encoder("resnet18", 33);
  auto model = graph::compile(
      *enc.backbone, Shape{3, kH, kW},
      graph::CompileOptions{2, graph::Precision::kF32, true});
  const std::string text = graph::dump(model.graph(), model.plan());
  EXPECT_NE(text.find("arena "), std::string::npos);
  EXPECT_NE(text.find("@arena+"), std::string::npos);
  EXPECT_NE(text.find("scratch["), std::string::npos);
  EXPECT_NE(text.find("@external"), std::string::npos);
}

}  // namespace
}  // namespace cq
