// Saturating-arithmetic fuzz suite for the int8 GEMM micro-kernel family
// (tensor/kernels/igemm.hpp).
//
// The oracle is a naive per-element int32 loop that never touches the packed
// layouts: it quantizes B straight from the fp32 source with the kernel's
// one shared formula (igemm::detail::quantize_value), accumulates
// a[i,k] * (q[k,j] - zp[j]) in a plain int32, and folds the scales with
// igemm::detail::epilogue_value. Integer arithmetic is exact in any order
// and the epilogue is two specified float steps, so the micro-kernel —
// register tiling, offset-binary storage, rowsum correction and all — must
// match it BITWISE (EXPECT_EQ on floats, no tolerance), for every backend.
#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <cstdint>
#include <vector>

#include "core/threadpool.hpp"
#include "tensor/kernels/igemm.hpp"
#include "util/rng.hpp"

namespace cq {
namespace {

struct Problem {
  std::int64_t m = 0, n = 0, k = 0;
  std::vector<std::int8_t> a;       // [m, k] row-major
  std::vector<float> b;             // op(B)(p, j) = b[p * rs + j * cs]
  std::int64_t rs = 0, cs = 1;
  std::vector<float> col_inv;       // [n]
  std::vector<float> col_scale;     // [n]
  std::vector<float> row_scale;     // [m]
  std::vector<float> bias;          // [m] (may stay empty -> nullptr)
  std::vector<std::int32_t> col_zp; // [n] (may stay empty -> nullptr)
};

Problem make_problem(std::int64_t m, std::int64_t n, std::int64_t k,
                     Rng& rng) {
  Problem p;
  p.m = m;
  p.n = n;
  p.k = k;
  p.rs = n;  // row-major [k, n] by default (the im2col shape)
  p.cs = 1;
  p.a.resize(static_cast<std::size_t>(m * k));
  for (auto& v : p.a)
    v = static_cast<std::int8_t>(rng.uniform_int(-127, 127));
  p.b.resize(static_cast<std::size_t>(k * n));
  for (auto& v : p.b) v = static_cast<float>(rng.uniform(-2.0, 2.0));
  p.col_inv.resize(static_cast<std::size_t>(n));
  p.col_scale.resize(static_cast<std::size_t>(n));
  for (std::int64_t j = 0; j < n; ++j) {
    const float scale = static_cast<float>(rng.uniform(0.005, 0.05));
    p.col_scale[static_cast<std::size_t>(j)] = scale;
    p.col_inv[static_cast<std::size_t>(j)] = 1.0f / scale;
  }
  p.row_scale.resize(static_cast<std::size_t>(m));
  for (auto& v : p.row_scale) v = static_cast<float>(rng.uniform(0.001, 0.1));
  p.bias.resize(static_cast<std::size_t>(m));
  for (auto& v : p.bias) v = static_cast<float>(rng.uniform(-1.0, 1.0));
  return p;
}

/// The oracle: unpacked, untiled, per-element.
std::vector<float> reference(const Problem& p, std::int64_t ldc) {
  std::vector<float> c(static_cast<std::size_t>(p.m * ldc), -999.0f);
  for (std::int64_t i = 0; i < p.m; ++i) {
    for (std::int64_t j = 0; j < p.n; ++j) {
      const std::int32_t zp =
          p.col_zp.empty() ? 0 : p.col_zp[static_cast<std::size_t>(j)];
      std::int32_t acc = 0;
      for (std::int64_t kk = 0; kk < p.k; ++kk) {
        const std::int32_t q = igemm::detail::quantize_value(
            p.b[static_cast<std::size_t>(kk * p.rs + j * p.cs)],
            p.col_inv[static_cast<std::size_t>(j)]);
        acc += static_cast<std::int32_t>(
                   p.a[static_cast<std::size_t>(i * p.k + kk)]) *
               (q - zp);
      }
      c[static_cast<std::size_t>(i * ldc + j)] = igemm::detail::epilogue_value(
          acc, p.row_scale[static_cast<std::size_t>(i)],
          p.col_scale[static_cast<std::size_t>(j)],
          p.bias.empty() ? 0.0f : p.bias[static_cast<std::size_t>(i)]);
    }
  }
  return c;
}

/// Pack + run one backend. `use_scalar` selects the portable twin.
std::vector<float> run_backend(const Problem& p, std::int64_t ldc,
                               bool use_scalar) {
  std::vector<std::int8_t> ap(
      static_cast<std::size_t>(igemm::packed_a_bytes(p.m, p.k)));
  std::vector<std::int32_t> rowsum(static_cast<std::size_t>(p.m));
  igemm::pack_a_s8(p.a.data(), p.m, p.k, ap.data(), rowsum.data());
  std::vector<std::uint8_t> bp(
      static_cast<std::size_t>(igemm::packed_b_bytes(p.k, p.n)));
  igemm::Epilogue ep;
  ep.row_scale = p.row_scale.data();
  ep.col_scale = p.col_scale.data();
  ep.bias = p.bias.empty() ? nullptr : p.bias.data();
  ep.col_zp = p.col_zp.empty() ? nullptr : p.col_zp.data();
  // Pre-fill with a sentinel: lanes outside [0, n) must never be stored.
  std::vector<float> c(static_cast<std::size_t>(p.m * ldc), -999.0f);
  if (use_scalar) {
    igemm::scalar::pack_b_quantized(p.b.data(), p.rs, p.cs, p.k, p.n,
                                    p.col_inv.data(), bp.data());
    igemm::scalar::gemm(p.m, p.n, p.k, ap.data(), rowsum.data(), bp.data(),
                        c.data(), ldc, ep);
  } else {
    igemm::pack_b_quantized(p.b.data(), p.rs, p.cs, p.k, p.n,
                            p.col_inv.data(), bp.data());
    igemm::gemm(p.m, p.n, p.k, ap.data(), rowsum.data(), bp.data(), c.data(),
                ldc, ep);
  }
  return c;
}

/// Assert both backends match the oracle bitwise (and the sentinel outside
/// the written region survived).
void check(const Problem& p, std::int64_t ldc = 0) {
  if (ldc == 0) ldc = p.n;
  const std::vector<float> ref = reference(p, ldc);
  const std::vector<float> got = run_backend(p, ldc, /*use_scalar=*/false);
  const std::vector<float> twin = run_backend(p, ldc, /*use_scalar=*/true);
  ASSERT_EQ(got.size(), ref.size());
  for (std::size_t i = 0; i < ref.size(); ++i) {
    ASSERT_EQ(got[i], ref[i])
        << "backend vs oracle at " << i << " (m=" << p.m << " n=" << p.n
        << " k=" << p.k << ")";
    ASSERT_EQ(twin[i], ref[i])
        << "scalar twin vs oracle at " << i << " (m=" << p.m << " n=" << p.n
        << " k=" << p.k << ")";
  }
}

TEST(Int8Gemm, BackendReportsName) {
  EXPECT_NE(igemm::backend(), nullptr);
}

TEST(Int8Gemm, PackedBuffersMatchScalarTwinBitwise) {
  // The two pack_b implementations must produce byte-identical buffers —
  // including the offset-binary pad bytes — or packed-buffer reuse across
  // backends would silently diverge.
  Rng rng(21);
  for (const auto [k, n] : {std::pair<std::int64_t, std::int64_t>{1, 1},
                            {3, 5}, {4, 16}, {7, 17}, {64, 33}, {129, 47}}) {
    const Problem p = make_problem(4, n, k, rng);
    std::vector<std::uint8_t> bp(
        static_cast<std::size_t>(igemm::packed_b_bytes(k, n)), 0xAB);
    std::vector<std::uint8_t> bp2 = bp;
    igemm::pack_b_quantized(p.b.data(), p.rs, p.cs, k, n, p.col_inv.data(),
                            bp.data());
    igemm::scalar::pack_b_quantized(p.b.data(), p.rs, p.cs, k, n,
                                    p.col_inv.data(), bp2.data());
    EXPECT_EQ(bp, bp2) << "k=" << k << " n=" << n;
  }
}

TEST(Int8Gemm, FuzzShapeSweepWithOddTails) {
  // Every combination of full tiles, odd row/column tails and k-quad tails,
  // including degenerate 1x1.
  Rng rng(22);
  for (std::int64_t m : {1, 7, 8, 9, 16, 23})
    for (std::int64_t n : {1, 15, 16, 17, 33})
      for (std::int64_t k : {1, 3, 4, 5, 37, 128})
        check(make_problem(m, n, k, rng));
}

TEST(Int8Gemm, FuzzRandomizedShapes) {
  Rng rng(23);
  for (int iter = 0; iter < 25; ++iter) {
    const auto m = static_cast<std::int64_t>(rng.uniform_int(1, 40));
    const auto n = static_cast<std::int64_t>(rng.uniform_int(1, 70));
    const auto k = static_cast<std::int64_t>(rng.uniform_int(1, 200));
    Problem p = make_problem(m, n, k, rng);
    if (rng.bernoulli(0.5)) {  // random per-column zero points
      p.col_zp.resize(static_cast<std::size_t>(n));
      for (auto& zp : p.col_zp) zp = rng.uniform_int(-5, 5);
    }
    if (rng.bernoulli(0.3)) p.bias.clear();  // null-bias path
    check(p);
  }
}

TEST(Int8Gemm, SaturationClampsAtPlusMinus127) {
  // B values far outside the representable range: quantization must clamp
  // to +-127 (never wrap to the unused -128), and the kernel must agree
  // with the oracle on every saturated product.
  Rng rng(24);
  Problem p = make_problem(9, 18, 13, rng);
  for (std::size_t i = 0; i < p.b.size(); ++i)
    p.b[i] = (i % 2 == 0) ? 1e6f : -1e6f;
  check(p);
  // Direct formula checks, including round-half-even at the midpoint.
  EXPECT_EQ(igemm::detail::quantize_value(1e9f, 1.0f), 127);
  EXPECT_EQ(igemm::detail::quantize_value(-1e9f, 1.0f), -127);
  EXPECT_EQ(igemm::detail::quantize_value(0.5f, 1.0f), 0);   // half-to-even
  EXPECT_EQ(igemm::detail::quantize_value(1.5f, 1.0f), 2);
  EXPECT_EQ(igemm::detail::quantize_value(-127.5f, 1.0f), -127);  // clamp 1st
}

TEST(Int8Gemm, AllNegativePanels) {
  // Rowsums at their negative extreme exercise the offset correction's sign
  // handling: eff = acc - 128 * rowsum must stay exact.
  Rng rng(25);
  Problem p = make_problem(10, 19, 21, rng);
  for (auto& v : p.a)
    v = static_cast<std::int8_t>(-rng.uniform_int(1, 127));
  for (auto& v : p.b) v = -std::fabs(v) - 0.01f;
  check(p);
}

TEST(Int8Gemm, ZeroScaleGuardQuantizesToZero) {
  // A zero inv-scale encodes a zero-range column (the deploy path's guard
  // for all-zero samples): every element quantizes to 0 and the output
  // column collapses to the bias.
  Rng rng(26);
  Problem p = make_problem(6, 5, 12, rng);
  for (std::int64_t j = 0; j < p.n; ++j) {
    p.col_inv[static_cast<std::size_t>(j)] = 0.0f;
    p.col_scale[static_cast<std::size_t>(j)] = 1e-12f;
  }
  check(p);
  const std::vector<float> got = run_backend(p, p.n, /*use_scalar=*/false);
  for (std::int64_t i = 0; i < p.m; ++i)
    for (std::int64_t j = 0; j < p.n; ++j)
      EXPECT_EQ(got[static_cast<std::size_t>(i * p.n + j)],
                p.bias[static_cast<std::size_t>(i)]);
}

TEST(Int8Gemm, Int32AccumulatorsSurviveWorstCaseK) {
  // k=2048 of saturated products: |acc| grows to 2048 * 127 * 255 raw
  // (~66.3M as stored, 33.0M after the offset correction) — far beyond the
  // +-32767 an int16 accumulator wraps at. Exactness pins 32-bit
  // accumulation end to end.
  Rng rng(27);
  const std::int64_t k = 2048;
  Problem p = make_problem(3, 2, k, rng);
  for (auto& v : p.a) v = 127;
  for (auto& v : p.b) v = 1e6f;  // saturates to q = +127 everywhere
  p.bias.assign(p.bias.size(), 0.0f);
  check(p);
  const std::vector<float> got = run_backend(p, p.n, /*use_scalar=*/false);
  // acc - 128*rowsum = k * 127 * 127 exactly.
  const float eff = static_cast<float>(k * 127 * 127);
  for (std::int64_t i = 0; i < p.m; ++i)
    for (std::int64_t j = 0; j < p.n; ++j)
      EXPECT_EQ(got[static_cast<std::size_t>(i * p.n + j)],
                eff * (p.row_scale[static_cast<std::size_t>(i)] *
                       p.col_scale[static_cast<std::size_t>(j)]));
}

TEST(Int8Gemm, ParallelBitwiseIdenticalToSerialAtEveryThreadCount) {
  // Integer accumulation is exact in any order, but the packed buffers and
  // the output tiles must still land in exactly the same bytes at every
  // pool size — and the epilogue's float folds must happen once per tile
  // regardless of which thread runs it. Shapes are sized past both parallel
  // thresholds (2M flops for the kernel grid, 64K elements for pack_b) and
  // include odd tails plus a pool larger than the tile grid.
  core::ThreadPool& pool = core::ThreadPool::instance();
  const std::size_t old_size = pool.size();
  Rng rng(31);
  const std::vector<std::array<std::int64_t, 3>> shapes = {
      {65, 129, 130},  // odd tails on every axis, deep enough to go parallel
      {8, 1040, 70},   // wide n: many pack_b slivers, single row panel
      {200, 17, 300},  // many row panels, single column sliver
      {3, 5, 7},       // tiny: stays serial at any size, still must match
  };
  for (const auto& [m, n, k] : shapes) {
    Problem p = make_problem(m, n, k, rng);
    if (n > 100) {  // zero-point path on the wide shape
      p.col_zp.resize(static_cast<std::size_t>(n));
      for (auto& zp : p.col_zp) zp = rng.uniform_int(-5, 5);
    }
    pool.set_size(1);
    const std::vector<float> serial = run_backend(p, p.n, false);
    const std::vector<float> serial_twin = run_backend(p, p.n, true);
    for (std::size_t threads : {2u, 3u, 8u}) {
      pool.set_size(threads);
      const std::vector<float> par = run_backend(p, p.n, false);
      const std::vector<float> par_twin = run_backend(p, p.n, true);
      ASSERT_EQ(par, serial) << "threads=" << threads << " m=" << m
                             << " n=" << n << " k=" << k;
      ASSERT_EQ(par_twin, serial_twin)
          << "scalar twin threads=" << threads << " m=" << m << " n=" << n
          << " k=" << k;
    }
    pool.set_size(old_size);
    check(p);  // and the parallel-capable path still matches the oracle
  }
}

TEST(Int8Gemm, LeadingDimensionLargerThanN) {
  // ldc > n: the kernel must stride over C without touching the gap (the
  // sentinel check inside check() covers the untouched tail of each row).
  Rng rng(28);
  const Problem p = make_problem(11, 14, 29, rng);
  check(p, /*ldc=*/23);
}

TEST(Int8Gemm, StridedBSource) {
  // Column-strided op(B) — the linear layer's transposed [n, k] walk.
  Rng rng(29);
  for (std::int64_t n : {1, 4, 16, 19}) {
    Problem p = make_problem(12, n, 45, rng);
    // Re-interpret the buffer as [n, k] row-major: op(B)(p,j) = b[j*k + p].
    p.rs = 1;
    p.cs = p.k;
    check(p);
  }
}

TEST(Int8Gemm, KZeroWritesBias) {
  Rng rng(30);
  Problem p = make_problem(5, 9, 0, rng);
  p.b.clear();
  p.b.push_back(0.0f);  // non-null source pointer, never read
  check(p);
  const std::vector<float> got = run_backend(p, p.n, /*use_scalar=*/false);
  for (std::int64_t i = 0; i < p.m; ++i)
    for (std::int64_t j = 0; j < p.n; ++j)
      EXPECT_EQ(got[static_cast<std::size_t>(i * p.n + j)],
                p.bias[static_cast<std::size_t>(i)]);
}

}  // namespace
}  // namespace cq
