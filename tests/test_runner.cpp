// Experiment runner: bundles, env knobs, checkpoint caching.
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>

#include "core/runner.hpp"
#include "util/check.hpp"

namespace cq {
namespace {

class RunnerEnv : public ::testing::Test {
 protected:
  void SetUp() override {
    setenv("CQ_CACHE_DIR", "test_runner_cache", 1);
    setenv("CQ_SCALE", "1.0", 1);
  }
  void TearDown() override {
    std::filesystem::remove_all("test_runner_cache");
    unsetenv("CQ_CACHE_DIR");
    unsetenv("CQ_SCALE");
  }
};

TEST_F(RunnerEnv, EnvHelpers) {
  setenv("CQ_TEST_INT", "42", 1);
  EXPECT_EQ(core::env_int("CQ_TEST_INT", 7), 42);
  EXPECT_EQ(core::env_int("CQ_TEST_MISSING", 7), 7);
  setenv("CQ_TEST_INT", "garbage", 1);
  EXPECT_EQ(core::env_int("CQ_TEST_INT", 7), 7);
  setenv("CQ_TEST_DBL", "2.5", 1);
  EXPECT_DOUBLE_EQ(core::env_double("CQ_TEST_DBL", 1.0), 2.5);
  unsetenv("CQ_TEST_INT");
  unsetenv("CQ_TEST_DBL");
}

TEST_F(RunnerEnv, BundlesAreDeterministicAndDisjointSeeds) {
  const auto a = core::make_bundle("synth-cifar");
  const auto b = core::make_bundle("synth-cifar");
  EXPECT_EQ(a.ssl_train.size(), b.ssl_train.size());
  EXPECT_EQ(a.ssl_train.labels, b.ssl_train.labels);
  // ssl/labeled/test use independent streams.
  EXPECT_NE(a.ssl_train.labels, a.labeled.labels);
  a.ssl_train.validate();
  a.labeled.validate();
  a.test.validate();
}

TEST_F(RunnerEnv, ImagenetBundleIsBigger) {
  const auto cifar = core::make_bundle("synth-cifar");
  const auto imnet = core::make_bundle("synth-imagenet");
  EXPECT_GT(imnet.config.num_classes, cifar.config.num_classes);
  EXPECT_GT(imnet.config.height, cifar.config.height);
}

TEST_F(RunnerEnv, UnknownBundleThrows) {
  EXPECT_THROW(core::make_bundle("imagenet-1k"), CheckError);
}

TEST_F(RunnerEnv, ScaleShrinksDatasets) {
  const auto full = core::make_bundle("synth-cifar");
  setenv("CQ_SCALE", "0.25", 1);
  const auto quarter = core::make_bundle("synth-cifar");
  EXPECT_LT(quarter.ssl_train.size(), full.ssl_train.size());
  EXPECT_GE(quarter.ssl_train.size(), 32);  // floor
}

TEST_F(RunnerEnv, PretrainCachedRoundTrip) {
  setenv("CQ_SCALE", "0.1", 1);  // tiny for speed (floors at 32)
  auto bundle = core::make_bundle("synth-cifar");

  core::PretrainConfig cfg;
  cfg.variant = core::CqVariant::kCqA;
  cfg.precisions = quant::PrecisionSet::range(6, 16);
  cfg.epochs = 1;
  cfg.batch_size = 8;
  cfg.proj_hidden = 16;
  cfg.proj_dim = 8;

  Rng rng(1);
  auto enc1 = models::make_encoder("resnet18", rng);
  const auto r1 = core::pretrain_cached(enc1, cfg, bundle, "simclr");
  EXPECT_FALSE(r1.from_cache);
  EXPECT_TRUE(std::filesystem::exists(r1.checkpoint_path));

  Rng rng2(999);
  auto enc2 = models::make_encoder("resnet18", rng2);
  const auto r2 = core::pretrain_cached(enc2, cfg, bundle, "simclr");
  EXPECT_TRUE(r2.from_cache);
  EXPECT_EQ(r1.checkpoint_path, r2.checkpoint_path);

  // Loaded weights match the trained ones.
  const auto p1 = enc1.backbone->parameters();
  const auto p2 = enc2.backbone->parameters();
  for (std::size_t i = 0; i < p1.size(); ++i)
    for (std::int64_t j = 0; j < p1[i]->value.numel(); ++j)
      ASSERT_FLOAT_EQ(p1[i]->value[j], p2[i]->value[j]);
}

TEST_F(RunnerEnv, DifferentConfigsGetDifferentCheckpoints) {
  setenv("CQ_SCALE", "0.1", 1);
  auto bundle = core::make_bundle("synth-cifar");
  core::PretrainConfig a;
  a.variant = core::CqVariant::kVanilla;
  a.epochs = 1;
  a.batch_size = 8;
  a.proj_hidden = 16;
  a.proj_dim = 8;
  auto b = a;
  b.tau = 0.7f;
  Rng rng(2);
  auto enc = models::make_encoder("resnet18", rng);
  const auto ra = core::pretrain_cached(enc, a, bundle, "simclr");
  const auto rb = core::pretrain_cached(enc, b, bundle, "simclr");
  EXPECT_NE(ra.checkpoint_path, rb.checkpoint_path);
}

TEST_F(RunnerEnv, CacheDisabledForcesRetrain) {
  setenv("CQ_SCALE", "0.1", 1);
  auto bundle = core::make_bundle("synth-cifar");
  core::PretrainConfig cfg;
  cfg.variant = core::CqVariant::kVanilla;
  cfg.epochs = 1;
  cfg.batch_size = 8;
  cfg.proj_hidden = 16;
  cfg.proj_dim = 8;
  Rng rng(3);
  auto enc = models::make_encoder("resnet18", rng);
  core::pretrain_cached(enc, cfg, bundle, "simclr");
  const auto again =
      core::pretrain_cached(enc, cfg, bundle, "simclr", /*cache=*/false);
  EXPECT_FALSE(again.from_cache);
  EXPECT_GT(again.stats.iterations, 0);
}

TEST_F(RunnerEnv, CorruptCheckpointFailsLoudly) {
  // Failure injection: a truncated/garbage cache file must raise, not load
  // garbage weights silently.
  setenv("CQ_SCALE", "0.1", 1);
  auto bundle = core::make_bundle("synth-cifar");
  core::PretrainConfig cfg;
  cfg.variant = core::CqVariant::kVanilla;
  cfg.epochs = 1;
  cfg.batch_size = 8;
  cfg.proj_hidden = 16;
  cfg.proj_dim = 8;
  Rng rng(4);
  auto enc = models::make_encoder("resnet18", rng);
  const auto first = core::pretrain_cached(enc, cfg, bundle, "simclr");
  {
    std::ofstream out(first.checkpoint_path,
                      std::ios::binary | std::ios::trunc);
    out << "garbage";
  }
  EXPECT_THROW(core::pretrain_cached(enc, cfg, bundle, "simclr"),
               CheckError);
}

TEST_F(RunnerEnv, MocoFamilyPretrainsAndCaches) {
  setenv("CQ_SCALE", "0.1", 1);
  auto bundle = core::make_bundle("synth-cifar");
  core::PretrainConfig cfg;
  cfg.variant = core::CqVariant::kCqA;
  cfg.precisions = quant::PrecisionSet::range(6, 16);
  cfg.epochs = 1;
  cfg.batch_size = 8;
  cfg.proj_hidden = 16;
  cfg.proj_dim = 8;
  cfg.moco_queue = 16;
  Rng rng(5);
  auto enc = models::make_encoder("resnet18", rng);
  const auto r1 = core::pretrain_cached(enc, cfg, bundle, "moco");
  EXPECT_FALSE(r1.from_cache);
  const auto r2 = core::pretrain_cached(enc, cfg, bundle, "moco");
  EXPECT_TRUE(r2.from_cache);
}

}  // namespace
}  // namespace cq
