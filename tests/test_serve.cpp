// Serving engine: compiled fp32 path, dynamic batching, deadlines,
// backpressure, graceful shutdown, zero-allocation steady state.
//
// The batched-equals-serial assertions are BITWISE (EXPECT_EQ on floats):
// the blocked GEMM accumulates each output element in a k-order independent
// of batch position, per-sample int8 quantization sees only its own image,
// and every other op is per-element or per-plane — so sharing a dynamic
// batch must not perturb anyone's result by even an ulp.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <string>
#include <vector>

#include "deploy/int8.hpp"
#include "models/encoder.hpp"
#include "serve/engine.hpp"
#include "serve/fp32.hpp"
#include "serve/queue.hpp"
#include "serve/stats.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace cq {
namespace {

constexpr std::int64_t kH = 12, kW = 12;

/// Train-warm a tiny resnet18 (populated BN running stats), checkpoint it
/// once, and share the path across tests.
const std::string& checkpoint_path() {
  static const std::string path = [] {
    Rng rng(7);
    auto enc = models::make_encoder("resnet18", rng);
    enc.backbone->set_mode(nn::Mode::kTrain);
    for (int i = 0; i < 8; ++i) {
      enc.forward(Tensor::uniform(Shape{4, 3, kH, kW}, rng));
      enc.backbone->clear_cache();
    }
    enc.backbone->set_mode(nn::Mode::kEval);
    std::string p = testing::TempDir() + "cq_serve_ckpt.bin";
    models::save_module(p, *enc.backbone);
    return p;
  }();
  return path;
}

/// Fresh encoder loaded from the shared checkpoint (full precision, eval).
models::Encoder load_reference() {
  Rng rng(1);
  auto enc = models::make_encoder("resnet18", rng);
  models::load_module(checkpoint_path(), *enc.backbone);
  enc.policy->set_full_precision();
  enc.backbone->set_mode(nn::Mode::kEval);
  return enc;
}

serve::EngineConfig base_config() {
  serve::EngineConfig cfg;
  cfg.checkpoint = checkpoint_path();
  cfg.arch = "resnet18";
  cfg.in_channels = 3;
  cfg.in_h = kH;
  cfg.in_w = kW;
  return cfg;
}

std::vector<Tensor> make_inputs(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Tensor> inputs;
  for (std::size_t i = 0; i < n; ++i)
    inputs.push_back(Tensor::uniform(Shape{1, 3, kH, kW}, rng, -1.0f, 1.0f));
  return inputs;
}

TEST(Fp32Compile, MatchesEvalForwardWithinTolerance) {
  auto enc = load_reference();
  Rng rng(11);
  Tensor x = Tensor::uniform(Shape{3, 3, kH, kW}, rng, -1.0f, 1.0f);
  const Tensor want = enc.forward(x);
  auto net = serve::compile_fp32(*enc.backbone);
  const Tensor& got = net.forward(x);
  ASSERT_TRUE(want.same_shape(got));
  float scale = 1e-6f;
  for (std::int64_t i = 0; i < want.numel(); ++i)
    scale = std::max(scale, std::fabs(want[i]));
  for (std::int64_t i = 0; i < want.numel(); ++i)
    EXPECT_NEAR(want[i], got[i], 1e-3f * scale) << "element " << i;
}

TEST(Fp32Compile, BatchForwardBitwiseEqualsSingles) {
  auto enc = load_reference();
  auto net = serve::compile_fp32(*enc.backbone);
  const auto inputs = make_inputs(5, 12);
  Tensor batch(Shape{5, 3, kH, kW});
  for (std::size_t i = 0; i < inputs.size(); ++i)
    for (std::int64_t j = 0; j < inputs[i].numel(); ++j)
      batch[static_cast<std::int64_t>(i) * inputs[i].numel() + j] =
          inputs[i][j];
  Tensor batched = net.forward(batch);  // copy before scratch reuse
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    const Tensor& single = net.forward(inputs[i]);
    for (std::int64_t c = 0; c < single.dim(1); ++c)
      EXPECT_EQ(batched.at(static_cast<std::int64_t>(i), c),
                single.at(0, c))
          << "sample " << i << " feature " << c;
  }
}

TEST(RequestQueue, FailsFastWhenFull) {
  serve::RequestQueue q(2);
  serve::Request a, b, c;
  EXPECT_TRUE(q.try_push(&a));
  EXPECT_TRUE(q.try_push(&b));
  EXPECT_FALSE(q.try_push(&c));  // full: immediate rejection, no block
  EXPECT_EQ(q.depth(), 2u);
  EXPECT_EQ(q.peak_depth(), 2u);
}

TEST(RequestQueue, PopBatchDrainsThenSignalsClose) {
  serve::RequestQueue q(8);
  serve::Request a, b;
  ASSERT_TRUE(q.try_push(&a));
  ASSERT_TRUE(q.try_push(&b));
  q.close();
  EXPECT_FALSE(q.try_push(&a));  // closed: no new admissions
  std::vector<serve::Request*> out;
  // Already-queued requests still drain after close.
  EXPECT_EQ(q.pop_batch(out, 8, std::chrono::microseconds(0)), 2u);
  EXPECT_EQ(q.pop_batch(out, 8, std::chrono::microseconds(0)), 0u);
}

TEST(LatencyHistogram, PercentilesAndMerge) {
  serve::LatencyHistogram h;
  for (std::uint64_t us = 1; us <= 1000; ++us) h.record(us);
  EXPECT_EQ(h.count(), 1000u);
  EXPECT_EQ(h.max_micros(), 1000u);
  const double p50 = h.percentile(50.0), p99 = h.percentile(99.0);
  EXPECT_GT(p50, 300.0);   // log buckets: ~19% relative error allowed
  EXPECT_LT(p50, 700.0);
  EXPECT_GT(p99, 800.0);
  EXPECT_LE(p99, 1000.0);
  EXPECT_GE(p99, p50);
  serve::LatencyHistogram other;
  other.record(5000);
  h.merge(other);
  EXPECT_EQ(h.count(), 1001u);
  EXPECT_EQ(h.max_micros(), 5000u);
}

TEST(Engine, ServesCorrectFeaturesBitwise) {
  auto cfg = base_config();
  cfg.workers = 1;
  cfg.max_batch = 4;
  serve::Engine engine(cfg);
  ASSERT_EQ(engine.feature_dim(), 64);

  const auto inputs = make_inputs(6, 13);
  std::vector<serve::Request> reqs(6);
  std::vector<std::vector<float>> outs(
      6, std::vector<float>(static_cast<std::size_t>(engine.feature_dim())));
  for (std::size_t i = 0; i < reqs.size(); ++i) {
    reqs[i].input = inputs[i].data();
    reqs[i].output = outs[i].data();
    ASSERT_TRUE(engine.submit(&reqs[i]));
  }
  for (auto& r : reqs) EXPECT_EQ(r.wait(), serve::Status::kOk);
  engine.stop();

  // Ground truth: the same compiled fp32 path, one sample at a time.
  auto enc = load_reference();
  auto net = serve::compile_fp32(*enc.backbone);
  for (std::size_t i = 0; i < reqs.size(); ++i) {
    const Tensor& want = net.forward(inputs[i]);
    for (std::int64_t c = 0; c < engine.feature_dim(); ++c)
      EXPECT_EQ(outs[i][static_cast<std::size_t>(c)], want.at(0, c))
          << "request " << i << " feature " << c;
  }

  const auto stats = engine.stats();
  EXPECT_EQ(stats.submitted, 6u);
  EXPECT_EQ(stats.served, 6u);
  EXPECT_EQ(stats.timed_out, 0u);
  EXPECT_GE(stats.batches, 1u);
}

TEST(Engine, DynamicBatchingCoalescesBursts) {
  auto cfg = base_config();
  cfg.workers = 1;
  cfg.max_batch = 8;
  // Generous window: the whole burst must land in few batches.
  cfg.max_wait = std::chrono::microseconds(200000);
  serve::Engine engine(cfg);

  const auto inputs = make_inputs(8, 14);
  std::vector<serve::Request> reqs(8);
  std::vector<std::vector<float>> outs(
      8, std::vector<float>(static_cast<std::size_t>(engine.feature_dim())));
  for (std::size_t i = 0; i < reqs.size(); ++i) {
    reqs[i].input = inputs[i].data();
    reqs[i].output = outs[i].data();
    ASSERT_TRUE(engine.submit(&reqs[i]));
  }
  for (auto& r : reqs) EXPECT_EQ(r.wait(), serve::Status::kOk);
  const auto stats = engine.stats();
  engine.stop();

  // The burst was submitted well inside the batching window, so at least
  // one multi-request batch must have formed...
  EXPECT_GE(stats.max_batch_seen, 2u);
  EXPECT_LE(stats.batches, 7u);
  // ...and batching must not have changed a single bit of any result.
  auto enc = load_reference();
  auto net = serve::compile_fp32(*enc.backbone);
  for (std::size_t i = 0; i < reqs.size(); ++i) {
    const Tensor& want = net.forward(inputs[i]);
    for (std::int64_t c = 0; c < engine.feature_dim(); ++c)
      EXPECT_EQ(outs[i][static_cast<std::size_t>(c)], want.at(0, c));
  }
}

TEST(Engine, ExpiredDeadlineTimesOutWithoutForwarding) {
  auto cfg = base_config();
  cfg.workers = 1;
  serve::Engine engine(cfg);

  const auto inputs = make_inputs(1, 15);
  std::vector<float> out(static_cast<std::size_t>(engine.feature_dim()),
                         -42.0f);
  serve::Request r;
  r.input = inputs[0].data();
  r.output = out.data();
  r.deadline = serve::Clock::now() - std::chrono::milliseconds(1);
  ASSERT_TRUE(engine.submit(&r));
  EXPECT_EQ(r.wait(), serve::Status::kTimeout);
  engine.stop();

  const auto stats = engine.stats();
  EXPECT_EQ(stats.timed_out, 1u);
  EXPECT_EQ(stats.served, 0u);
  EXPECT_EQ(stats.batches, 0u);  // never reached a model
  for (float v : out) EXPECT_EQ(v, -42.0f);  // output untouched
}

TEST(Engine, BackpressureFailsFastAndShutdownDrains) {
  auto cfg = base_config();
  cfg.workers = 0;  // nothing consumes: the queue saturates deterministically
  cfg.queue_capacity = 4;
  cfg.prewarm = false;
  serve::Engine engine(cfg);

  const auto inputs = make_inputs(5, 16);
  std::vector<serve::Request> reqs(5);
  std::vector<std::vector<float>> outs(
      5, std::vector<float>(static_cast<std::size_t>(engine.feature_dim())));
  for (std::size_t i = 0; i < 4; ++i) {
    reqs[i].input = inputs[i].data();
    reqs[i].output = outs[i].data();
    EXPECT_TRUE(engine.submit(&reqs[i]));
  }
  reqs[4].input = inputs[4].data();
  reqs[4].output = outs[4].data();
  EXPECT_FALSE(engine.submit(&reqs[4]));  // full: fail fast, no completion
  EXPECT_EQ(reqs[4].status(), serve::Status::kPending);

  engine.stop();  // accepted-but-unrunnable requests fail with kShutdown
  for (std::size_t i = 0; i < 4; ++i)
    EXPECT_EQ(reqs[i].wait(), serve::Status::kShutdown);
  EXPECT_FALSE(engine.submit(&reqs[4]));  // stopped: no new admissions

  const auto stats = engine.stats();
  EXPECT_EQ(stats.submitted, 4u);
  EXPECT_EQ(stats.rejected_full, 2u);  // the overflow + the post-stop submit
  EXPECT_EQ(stats.shutdown_failed, 4u);
  EXPECT_EQ(stats.queue_peak_depth, 4u);
}

TEST(Engine, ZeroAllocSteadyState) {
  auto cfg = base_config();
  cfg.workers = 1;
  cfg.max_batch = 4;
  cfg.prewarm = true;
  serve::Engine engine(cfg);

  const auto inputs = make_inputs(4, 17);
  std::vector<std::vector<float>> outs(
      4, std::vector<float>(static_cast<std::size_t>(engine.feature_dim())));
  for (int burst = 0; burst < 5; ++burst) {
    std::vector<serve::Request> reqs(4);
    for (std::size_t i = 0; i < reqs.size(); ++i) {
      reqs[i].input = inputs[i].data();
      reqs[i].output = outs[i].data();
      ASSERT_TRUE(engine.submit(&reqs[i]));
    }
    for (auto& r : reqs) ASSERT_EQ(r.wait(), serve::Status::kOk);
  }
  engine.stop();

  const auto stats = engine.stats();
  EXPECT_EQ(stats.served, 20u);
  // Prewarm paid for every buffer; serving itself must never hit the heap.
  EXPECT_GT(stats.warmup_heap_allocs, 0u);
  EXPECT_EQ(stats.steady_heap_allocs, 0u);
}

// Regression for the prewarm rework: the compiled plan's arena is sized at
// max_batch, so warming ONLY at max_batch must leave every narrower width
// allocation-free too — bursts of widths 1..max_batch all run inside the
// same arena, with the output and collate tensors shrinking in place.
TEST(Engine, ZeroAllocSteadyStateAcrossWidths) {
  auto cfg = base_config();
  cfg.workers = 1;
  cfg.max_batch = 4;
  cfg.prewarm = true;
  serve::Engine engine(cfg);

  const auto inputs = make_inputs(4, 19);
  std::vector<std::vector<float>> outs(
      4, std::vector<float>(static_cast<std::size_t>(engine.feature_dim())));
  std::uint64_t expected = 0;
  for (int burst = 0; burst < 3; ++burst)
    for (std::size_t width = 1; width <= 4; ++width) {
      std::vector<serve::Request> reqs(width);
      for (std::size_t i = 0; i < width; ++i) {
        reqs[i].input = inputs[i].data();
        reqs[i].output = outs[i].data();
        ASSERT_TRUE(engine.submit(&reqs[i]));
      }
      for (auto& r : reqs) ASSERT_EQ(r.wait(), serve::Status::kOk);
      expected += width;
    }
  engine.stop();

  const auto stats = engine.stats();
  EXPECT_EQ(stats.served, expected);
  EXPECT_GT(stats.warmup_heap_allocs, 0u);
  EXPECT_EQ(stats.steady_heap_allocs, 0u)
      << "a narrower-than-max batch re-grew scratch after prewarm";
}

TEST(Engine, Int8InstanceServesBitwiseEqualToSingleSample) {
  auto cfg = base_config();
  cfg.workers = 1;
  cfg.instance = serve::InstanceKind::kInt8;
  cfg.max_batch = 4;
  serve::Engine engine(cfg);

  const auto inputs = make_inputs(4, 18);
  std::vector<serve::Request> reqs(4);
  std::vector<std::vector<float>> outs(
      4, std::vector<float>(static_cast<std::size_t>(engine.feature_dim())));
  for (std::size_t i = 0; i < reqs.size(); ++i) {
    reqs[i].input = inputs[i].data();
    reqs[i].output = outs[i].data();
    ASSERT_TRUE(engine.submit(&reqs[i]));
  }
  for (auto& r : reqs) EXPECT_EQ(r.wait(), serve::Status::kOk);
  engine.stop();

  auto enc = load_reference();
  const auto net = deploy::compile_int8(*enc.backbone);
  for (std::size_t i = 0; i < reqs.size(); ++i) {
    const Tensor want = net.forward(inputs[i]);
    for (std::int64_t c = 0; c < engine.feature_dim(); ++c)
      EXPECT_EQ(outs[i][static_cast<std::size_t>(c)], want.at(0, c))
          << "request " << i << " feature " << c;
  }
}

TEST(Engine, Int8BatchedBitwiseEqualsSerialAcrossWidths) {
  // The int8 GEMM path accumulates each output element in int32 over the
  // full k independently of batch position, and activation scales are
  // per-sample — so every batch width from 1 to max_batch must reproduce
  // the serial results exactly, bit for bit.
  constexpr std::int64_t kMaxBatch = 8;
  auto enc = load_reference();
  const auto net = deploy::compile_int8(*enc.backbone);
  const auto inputs = make_inputs(kMaxBatch, 21);
  std::vector<Tensor> serial;
  for (const auto& in : inputs) serial.push_back(net.forward(in));
  const auto per = inputs[0].numel();
  for (std::int64_t width = 1; width <= kMaxBatch; ++width) {
    Tensor batch(Shape{width, 3, kH, kW});
    for (std::int64_t i = 0; i < width; ++i)
      std::memcpy(batch.data() + i * per,
                  inputs[static_cast<std::size_t>(i)].data(),
                  static_cast<std::size_t>(per) * sizeof(float));
    const Tensor got = net.forward(batch);
    ASSERT_EQ(got.dim(0), width);
    for (std::int64_t i = 0; i < width; ++i)
      for (std::int64_t c = 0; c < got.dim(1); ++c)
        EXPECT_EQ(got.at(i, c), serial[static_cast<std::size_t>(i)].at(0, c))
            << "width " << width << " sample " << i << " feature " << c;
  }
}

TEST(Engine, Int8DeadlineUnderLoad) {
  // A request whose deadline has already expired must time out without ever
  // reaching the int8 model — its output untouched — while the live
  // requests sharing the queue are served bitwise-correctly.
  auto cfg = base_config();
  cfg.workers = 1;
  cfg.instance = serve::InstanceKind::kInt8;
  cfg.max_batch = 4;
  serve::Engine engine(cfg);

  const auto inputs = make_inputs(7, 22);
  std::vector<serve::Request> reqs(7);
  std::vector<std::vector<float>> outs(
      7, std::vector<float>(static_cast<std::size_t>(engine.feature_dim()),
                            -42.0f));
  const std::size_t kExpired = 3;
  for (std::size_t i = 0; i < reqs.size(); ++i) {
    reqs[i].input = inputs[i].data();
    reqs[i].output = outs[i].data();
    if (i == kExpired)
      reqs[i].deadline = serve::Clock::now() - std::chrono::milliseconds(1);
    ASSERT_TRUE(engine.submit(&reqs[i]));
  }
  for (std::size_t i = 0; i < reqs.size(); ++i)
    EXPECT_EQ(reqs[i].wait(), i == kExpired ? serve::Status::kTimeout
                                            : serve::Status::kOk);
  engine.stop();

  const auto stats = engine.stats();
  EXPECT_EQ(stats.timed_out, 1u);
  EXPECT_EQ(stats.served, 6u);
  for (float v : outs[kExpired]) EXPECT_EQ(v, -42.0f);  // never forwarded

  auto enc = load_reference();
  const auto net = deploy::compile_int8(*enc.backbone);
  for (std::size_t i = 0; i < reqs.size(); ++i) {
    if (i == kExpired) continue;
    const Tensor want = net.forward(inputs[i]);
    for (std::int64_t c = 0; c < engine.feature_dim(); ++c)
      EXPECT_EQ(outs[i][static_cast<std::size_t>(c)], want.at(0, c))
          << "request " << i << " feature " << c;
  }
}

TEST(Engine, MultiWorkerServesEveryRequestCorrectly) {
  auto cfg = base_config();
  cfg.workers = 2;
  cfg.max_batch = 4;
  serve::Engine engine(cfg);

  const auto inputs = make_inputs(12, 19);
  std::vector<serve::Request> reqs(12);
  std::vector<std::vector<float>> outs(
      12, std::vector<float>(static_cast<std::size_t>(engine.feature_dim())));
  for (std::size_t i = 0; i < reqs.size(); ++i) {
    reqs[i].input = inputs[i].data();
    reqs[i].output = outs[i].data();
    ASSERT_TRUE(engine.submit(&reqs[i]));
  }
  for (auto& r : reqs) EXPECT_EQ(r.wait(), serve::Status::kOk);
  engine.stop();

  auto enc = load_reference();
  auto net = serve::compile_fp32(*enc.backbone);
  for (std::size_t i = 0; i < reqs.size(); ++i) {
    const Tensor& want = net.forward(inputs[i]);
    for (std::int64_t c = 0; c < engine.feature_dim(); ++c)
      EXPECT_EQ(outs[i][static_cast<std::size_t>(c)], want.at(0, c))
          << "request " << i;
  }
  EXPECT_EQ(engine.stats().served, 12u);
}

TEST(Engine, PerWorkerStatsAccountForEveryRequestAndBatch) {
  auto cfg = base_config();
  cfg.workers = 2;
  cfg.max_batch = 4;
  serve::Engine engine(cfg);

  const auto inputs = make_inputs(16, 23);
  std::vector<serve::Request> reqs(16);
  std::vector<std::vector<float>> outs(
      16, std::vector<float>(static_cast<std::size_t>(engine.feature_dim())));
  for (std::size_t i = 0; i < reqs.size(); ++i) {
    reqs[i].input = inputs[i].data();
    reqs[i].output = outs[i].data();
    ASSERT_TRUE(engine.submit(&reqs[i]));
  }
  for (auto& r : reqs) ASSERT_EQ(r.wait(), serve::Status::kOk);
  engine.stop();

  const auto stats = engine.stats();
  ASSERT_EQ(stats.workers.size(), 2u);
  std::uint64_t served = 0, batches = 0, stolen = 0;
  for (const serve::WorkerSnapshot& w : stats.workers) {
    served += w.served;
    batches += w.batches;
    stolen += w.stolen;
    EXPECT_EQ(w.queue_depth, 0u);  // drained at stop
    // The batch-size histogram is the per-worker batch ledger: bucket
    // counts sum to the worker's batches, and size-weighted they sum to
    // its served requests.
    std::uint64_t hist_batches = 0, hist_served = 0;
    for (std::size_t b = 0; b < serve::kBatchHistBuckets; ++b) {
      hist_batches += w.batch_hist[b];
      hist_served += w.batch_hist[b] * (b + 1);
      if (b + 1 > cfg.max_batch) EXPECT_EQ(w.batch_hist[b], 0u);
    }
    EXPECT_EQ(hist_batches, w.batches);
    EXPECT_EQ(hist_served, w.served);
    if (w.batches > 0) EXPECT_GT(w.mean_batch_size, 0.0);
  }
  EXPECT_EQ(served, 16u);
  EXPECT_EQ(served, stats.served);
  EXPECT_EQ(batches, stats.batches);
  EXPECT_EQ(stolen, stats.stolen);
  // Engine-level histogram is the merge of the per-worker ones.
  std::uint64_t merged = 0;
  for (std::size_t b = 0; b < serve::kBatchHistBuckets; ++b)
    merged += stats.batch_hist[b];
  EXPECT_EQ(merged, stats.batches);
  // Round-robin admission spreads across both shard queues.
  EXPECT_EQ(stats.queue_depth, 0u);
  EXPECT_GE(stats.queue_peak_depth, 1u);
}

TEST(Engine, StatsJsonIsWellFormed) {
  auto cfg = base_config();
  cfg.workers = 1;
  serve::Engine engine(cfg);

  const auto inputs = make_inputs(2, 20);
  std::vector<serve::Request> reqs(2);
  std::vector<std::vector<float>> outs(
      2, std::vector<float>(static_cast<std::size_t>(engine.feature_dim())));
  for (std::size_t i = 0; i < reqs.size(); ++i) {
    reqs[i].input = inputs[i].data();
    reqs[i].output = outs[i].data();
    ASSERT_TRUE(engine.submit(&reqs[i]));
  }
  for (auto& r : reqs) EXPECT_EQ(r.wait(), serve::Status::kOk);
  engine.stop();

  const std::string json = engine.stats_json();
  std::int64_t depth = 0;
  for (char ch : json) {
    if (ch == '{') ++depth;
    if (ch == '}') --depth;
    EXPECT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
  for (const char* key :
       {"\"submitted\"", "\"served\"", "\"throughput_rps\"",
        "\"queue_latency\"", "\"total_latency\"", "\"p50_us\"", "\"p99_us\"",
        "\"steady_heap_allocs\"", "\"mean_batch_size\"", "\"batch_hist\"",
        "\"workers\"", "\"stolen\""})
    EXPECT_NE(json.find(key), std::string::npos) << "missing " << key;
}

TEST(Engine, RejectsCorruptCheckpoint) {
  auto cfg = base_config();
  cfg.checkpoint = testing::TempDir() + "cq_serve_missing.bin";
  EXPECT_THROW(serve::Engine engine(cfg), CheckError);
}

}  // namespace
}  // namespace cq
