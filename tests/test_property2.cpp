// Second parameterized property suite: optimizers, augmentation invariants,
// architecture shape sweeps, batchnorm statistics.
#include <gtest/gtest.h>

#include <cmath>

#include "data/augment.hpp"
#include "data/synth.hpp"
#include "models/encoder.hpp"
#include "nn/batchnorm.hpp"
#include "optim/schedule.hpp"
#include "optim/sgd.hpp"
#include "tensor/ops.hpp"

namespace cq {
namespace {

// ---- SGD convergence across hyperparameters -------------------------------

struct SgdCase {
  float lr;
  float momentum;
};

class SgdProperty : public ::testing::TestWithParam<SgdCase> {};

TEST_P(SgdProperty, ConvergesOnQuadraticBowl) {
  const auto p = GetParam();
  nn::Parameter w(Tensor::from({4.0f, -7.0f, 2.0f}), "w");
  const Tensor target = Tensor::from({1.0f, 0.0f, -1.0f});
  optim::Sgd sgd({&w}, {.lr = p.lr, .momentum = p.momentum});
  for (int s = 0; s < 800; ++s) {
    for (std::int64_t i = 0; i < 3; ++i) w.grad[i] = w.value[i] - target[i];
    sgd.step();
  }
  for (std::int64_t i = 0; i < 3; ++i)
    EXPECT_NEAR(w.value[i], target[i], 0.05f)
        << "lr=" << p.lr << " m=" << p.momentum;
}

INSTANTIATE_TEST_SUITE_P(
    HyperSweep, SgdProperty,
    ::testing::Values(SgdCase{0.01f, 0.0f}, SgdCase{0.05f, 0.0f},
                      SgdCase{0.1f, 0.5f}, SgdCase{0.05f, 0.9f},
                      SgdCase{0.2f, 0.5f}),
    [](const ::testing::TestParamInfo<SgdCase>& info) {
      return "lr" + std::to_string(static_cast<int>(info.param.lr * 100)) +
             "_m" + std::to_string(static_cast<int>(info.param.momentum * 10));
    });

// ---- Cosine schedule invariants over configurations -----------------------

struct ScheduleCase {
  std::int64_t total;
  std::int64_t warmup;
};

class ScheduleProperty : public ::testing::TestWithParam<ScheduleCase> {};

TEST_P(ScheduleProperty, BoundedAndPeaksAfterWarmup) {
  const auto p = GetParam();
  optim::CosineSchedule sched(1.0f, p.total, p.warmup);
  float peak = 0.0f;
  std::int64_t peak_step = 0;
  for (std::int64_t s = 0; s < p.total; ++s) {
    const float lr = sched.lr_at(s);
    EXPECT_GE(lr, 0.0f);
    EXPECT_LE(lr, 1.0f + 1e-6f);
    if (lr > peak) {
      peak = lr;
      peak_step = s;
    }
  }
  EXPECT_NEAR(peak, 1.0f, 1e-5f);
  if (p.warmup > 0) {
    EXPECT_GE(peak_step, p.warmup - 1);
    EXPECT_LE(peak_step, p.warmup);
  } else {
    EXPECT_EQ(peak_step, 0);
  }
}

INSTANTIATE_TEST_SUITE_P(ConfigSweep, ScheduleProperty,
                         ::testing::Values(ScheduleCase{10, 0},
                                           ScheduleCase{100, 10},
                                           ScheduleCase{100, 50},
                                           ScheduleCase{2, 1},
                                           ScheduleCase{1000, 1}),
                         [](const auto& info) {
                           return "t" + std::to_string(info.param.total) +
                                  "_w" + std::to_string(info.param.warmup);
                         });

// ---- Augmentation invariants across strengths ------------------------------

class AugmentProperty : public ::testing::TestWithParam<float> {};

TEST_P(AugmentProperty, OutputAlwaysValidImage) {
  const float strength = GetParam();
  data::AugmentConfig cfg;
  cfg.min_crop_scale = std::max(0.2f, 1.0f - strength);
  cfg.jitter_strength = strength;
  cfg.grayscale_prob = strength * 0.5f;
  cfg.noise_sigma = strength * 0.1f;
  cfg.cutout_prob = strength * 0.5f;
  data::AugmentPipeline aug(cfg);
  Rng rng(static_cast<std::uint64_t>(strength * 1000) + 1);
  const auto ds =
      data::make_synth_dataset(data::synth_cifar_config(), 4, rng);
  for (const auto& img : ds.images) {
    for (int trial = 0; trial < 5; ++trial) {
      const Tensor v = aug(img, rng);
      ASSERT_EQ(v.shape(), img.shape());
      for (std::int64_t i = 0; i < v.numel(); ++i) {
        ASSERT_GE(v[i], 0.0f);
        ASSERT_LE(v[i], 1.0f);
        ASSERT_TRUE(std::isfinite(v[i]));
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(StrengthSweep, AugmentProperty,
                         ::testing::Values(0.0f, 0.2f, 0.5f, 0.8f, 1.0f),
                         [](const auto& info) {
                           return "s" + std::to_string(static_cast<int>(
                                            info.param * 10));
                         });

// ---- Encoder output shapes across architectures and input sizes -----------

struct ArchCase {
  const char* arch;
  std::int64_t hw;
};

class ArchProperty : public ::testing::TestWithParam<ArchCase> {};

TEST_P(ArchProperty, EvalForwardShapeAndFiniteness) {
  const auto p = GetParam();
  Rng rng(11);
  auto enc = models::make_encoder(p.arch, rng);
  enc.backbone->set_mode(nn::Mode::kEval);
  Tensor x = Tensor::uniform(Shape{2, 3, p.hw, p.hw}, rng);
  Tensor f = enc.forward(x);
  EXPECT_EQ(f.shape(), Shape({2, enc.feature_dim}));
  for (std::int64_t i = 0; i < f.numel(); ++i)
    ASSERT_TRUE(std::isfinite(f[i]));
}

INSTANTIATE_TEST_SUITE_P(
    SizeSweep, ArchProperty,
    ::testing::Values(ArchCase{"resnet18", 16}, ArchCase{"resnet18", 24},
                      ArchCase{"resnet18", 32}, ArchCase{"resnet34", 16},
                      ArchCase{"resnet74", 16}, ArchCase{"mobilenetv2", 16},
                      ArchCase{"mobilenetv2", 24}),
    [](const ::testing::TestParamInfo<ArchCase>& info) {
      return std::string(info.param.arch) + "_" +
             std::to_string(info.param.hw);
    });

// ---- BatchNorm statistics across shapes ------------------------------------

class BnProperty
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(BnProperty, TrainOutputIsStandardized) {
  const auto [n, c, hw] = GetParam();
  Rng rng(static_cast<std::uint64_t>(n * 100 + c * 10 + hw));
  nn::BatchNorm2d bn(c);
  Tensor x = Tensor::randn(Shape{n, c, hw, hw}, rng, 2.0f, 3.0f);
  Tensor y = bn.forward(x);
  for (std::int64_t ch = 0; ch < c; ++ch) {
    double mean = 0.0, sq = 0.0;
    std::int64_t count = 0;
    for (std::int64_t img = 0; img < n; ++img)
      for (std::int64_t i = 0; i < hw * hw; ++i) {
        const double v =
            y[(img * c + ch) * hw * hw + i];
        mean += v;
        sq += v * v;
        ++count;
      }
    mean /= static_cast<double>(count);
    EXPECT_NEAR(mean, 0.0, 1e-3);
    EXPECT_NEAR(sq / static_cast<double>(count), 1.0, 0.05);
  }
}

INSTANTIATE_TEST_SUITE_P(ShapeSweep, BnProperty,
                         ::testing::Values(std::tuple{4, 2, 4},
                                           std::tuple{8, 1, 8},
                                           std::tuple{2, 8, 2},
                                           std::tuple{16, 3, 3}),
                         [](const auto& info) {
                           return "n" + std::to_string(std::get<0>(info.param)) +
                                  "c" + std::to_string(std::get<1>(info.param)) +
                                  "s" + std::to_string(std::get<2>(info.param));
                         });

}  // namespace
}  // namespace cq
